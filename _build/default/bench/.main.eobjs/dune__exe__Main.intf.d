bench/main.mli:
