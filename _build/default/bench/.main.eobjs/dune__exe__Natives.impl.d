bench/natives.ml: Analyze Armb_runtime Bechamel Benchmark Float Hashtbl Instance List Measure Printf Staged Test Time Toolkit
