bench/figures.ml: Armb_core Armb_cpu Armb_litmus Armb_mem Armb_platform Armb_sim Armb_sync Armb_workloads Catalogue Enumerate Float Format Lang List Printf Sim_runner String
