bench/main.ml: Array Figures List Natives Printf Sys
