(* Benchmark harness entry point.

   With no arguments, regenerates every table and figure of the paper's
   evaluation on the simulator and then runs the native Bechamel
   micro-benchmarks.  With arguments, runs only the named experiments:

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig3 fig6b # a selection
     dune exec bench/main.exe list       # show available ids *)

let registry = Figures.all @ [ ("native", Natives.run) ]

let list_ids () =
  print_endline "available experiments:";
  List.iter (fun (id, _) -> Printf.printf "  %s\n" id) registry

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] ->
    Printf.printf
      "Regenerating every table and figure (see EXPERIMENTS.md for analysis)...\n%!";
    List.iter (fun (_, f) -> f ()) registry
  | _ :: [ "list" ] -> list_ids ()
  | _ :: ids ->
    List.iter
      (fun id ->
        match List.assoc_opt id registry with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S\n" id;
          list_ids ();
          exit 1)
      ids
