(* Native micro-benchmarks of the runtime library, measured with
   Bechamel on the host.  With a single host core these numbers
   characterize the OCaml implementations (codec cost, per-op overhead
   of each lock discipline), not ARM barrier behaviour — the simulator
   benches do that. *)

open Bechamel
open Toolkit

let codec_test =
  let pool = Armb_runtime.Pilot_codec.make_pool ~seed:1 () in
  let s = Armb_runtime.Pilot_codec.sender pool in
  let r = Armb_runtime.Pilot_codec.receiver pool in
  let data = ref 0 and flag = ref 0 and i = ref 0 in
  Test.make ~name:"pilot-codec encode+decode"
    (Staged.stage (fun () ->
         incr i;
         (match Armb_runtime.Pilot_codec.encode s !i with
         | Armb_runtime.Pilot_codec.Write_data v -> data := v
         | Armb_runtime.Pilot_codec.Toggle_flag -> flag := !flag lxor 1);
         ignore (Armb_runtime.Pilot_codec.try_decode r ~data:!data ~flag:!flag)))

let ring_test =
  let ring = Armb_runtime.Spsc_ring.create ~slots:64 in
  let i = ref 0 in
  Test.make ~name:"spsc-ring send+recv"
    (Staged.stage (fun () ->
         incr i;
         ignore (Armb_runtime.Spsc_ring.try_send ring !i);
         ignore (Armb_runtime.Spsc_ring.try_recv ring)))

let pilot_channel_test =
  let ch = Armb_runtime.Pilot_channel.create ~slots:64 () in
  let i = ref 0 in
  Test.make ~name:"pilot-channel send+recv"
    (Staged.stage (fun () ->
         incr i;
         ignore (Armb_runtime.Pilot_channel.try_send ch !i);
         ignore (Armb_runtime.Pilot_channel.try_recv ch)))

let ticket_test =
  let l = Armb_runtime.Ticket_lock.create () in
  let c = ref 0 in
  Test.make ~name:"ticket lock+unlock (uncontended)"
    (Staged.stage (fun () -> Armb_runtime.Ticket_lock.with_lock l (fun () -> incr c)))

let dsmsynch_test =
  let d = Armb_runtime.Dsmsynch.create () in
  let c = ref 0 in
  Test.make ~name:"dsmsynch exec (uncontended)"
    (Staged.stage (fun () ->
         ignore
           (Armb_runtime.Dsmsynch.exec d (fun () ->
                incr c;
                !c))))

let dsmsynch_pilot_test =
  let d = Armb_runtime.Dsmsynch.create ~pilot:true () in
  let c = ref 0 in
  Test.make ~name:"dsmsynch-pilot exec (uncontended)"
    (Staged.stage (fun () ->
         ignore
           (Armb_runtime.Dsmsynch.exec d (fun () ->
                incr c;
                !c))))

let run () =
  Printf.printf "\n================ Native micro-benchmarks (Bechamel) ================\n%!";
  let tests =
    Test.make_grouped ~name:"native"
      [ codec_test; ring_test; pilot_channel_test; ticket_test; dsmsynch_pilot_test; dsmsynch_test ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) -> Printf.printf "%-45s %10.1f ns/op\n" name ns)
    (List.sort compare rows);
  print_newline ()
