(* Explore weak-memory behaviours: enumerate what the operational WMM
   and TSO models allow for each catalogue test, then witness the
   allowed reorderings dynamically on the timing simulator.

   Run with:  dune exec examples/litmus_explorer.exe *)

module L = Armb_litmus

let () =
  List.iter
    (fun (t : L.Lang.test) ->
      Printf.printf "=== %s ===\n%s\n" t.name t.description;
      List.iteri
        (fun i th ->
          Printf.printf "  P%d: " i;
          List.iter
            (fun instr -> Printf.printf "%s; " (Format.asprintf "%a" L.Lang.pp_instr instr))
            th;
          print_newline ())
        t.threads;
      let wmm = L.Enumerate.enumerate L.Enumerate.Wmm t in
      let tso = L.Enumerate.enumerate L.Enumerate.Tso t in
      Printf.printf "  outcomes: %d under WMM, %d under TSO\n" (List.length wmm)
        (List.length tso);
      Printf.printf "  weak outcome: TSO %s, WMM %s\n"
        (if L.Enumerate.allows L.Enumerate.Tso t then "allowed" else "forbidden")
        (if L.Enumerate.allows L.Enumerate.Wmm t then "allowed" else "forbidden");
      let r = L.Sim_runner.run ~trials:300 t in
      Printf.printf "  simulator (300 trials): weak outcome witnessed = %b\n"
        r.interesting_witnessed;
      List.iter (fun (o, n) -> Printf.printf "    %5d  %s\n" n o) r.outcomes;
      print_newline ())
    [ L.Catalogue.mp; L.Catalogue.mp_dmb; L.Catalogue.sb; L.Catalogue.lb; L.Catalogue.wrc ]
