(* A native 3-stage pipeline over domains, comparing plain SPSC rings
   with Pilot channels end to end (the runtime counterpart of the dedup
   experiment).

   Run with:  dune exec examples/pipeline_native.exe *)

module R = Armb_runtime

let checksum = List.fold_left ( + ) 0

let run kind name =
  let stages = [ (fun x -> x + 1); (fun x -> x * 3); (fun x -> x - 2) ] in
  let inputs = List.init 2_000 (fun i -> i land 0xFF) in
  let spec = { R.Pipeline.channel = kind; slots = 64; stages } in
  let r = R.Pipeline.run spec ~inputs in
  let expect = List.map (fun x -> (((x + 1) * 3) - 2)) inputs in
  assert (checksum r.outputs = checksum expect);
  Printf.printf "%-12s %d messages through 3 stages in %.1f ms (checksum ok)\n" name
    (List.length inputs) (r.elapsed_ns /. 1e6)

let () =
  run R.Pipeline.Plain_ring "plain ring";
  run R.Pipeline.Pilot "pilot";
  print_endline
    "(single-core host: timings show overhead, not parallel speedup — see bench/ for the\n\
     simulator version of this experiment)"
