examples/characterize.mli:
