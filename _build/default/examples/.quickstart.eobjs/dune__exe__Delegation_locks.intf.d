examples/delegation_locks.mli:
