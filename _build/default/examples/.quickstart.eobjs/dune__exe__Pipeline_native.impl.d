examples/pipeline_native.ml: Armb_runtime List Printf
