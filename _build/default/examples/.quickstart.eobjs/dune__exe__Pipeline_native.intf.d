examples/pipeline_native.mli:
