examples/delegation_locks.ml: Armb_platform Armb_runtime Armb_sync Domain List Printf
