examples/litmus_explorer.ml: Armb_litmus Format List Printf
