examples/message_passing.ml: Armb_mem Armb_platform Armb_sync List Printf
