examples/quickstart.ml: Armb_core Armb_cpu Armb_mem Armb_platform Int64 Printf
