examples/characterize.ml: Armb_core Armb_cpu Armb_mem Armb_sim Format Printf
