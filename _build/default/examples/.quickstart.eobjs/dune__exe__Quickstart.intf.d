examples/quickstart.mli:
