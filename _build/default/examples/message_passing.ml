(* Message passing three ways on the simulated ARM server: the classic
   ring with its two barriers, the same ring with the wrong barriers
   (to see the cost), and the Pilot ring that removes the fatal barrier
   (paper §4).

   Run with:  dune exec examples/message_passing.exe *)

module P = Armb_platform.Platform
module S = Armb_sync

let () =
  let cfg = P.kunpeng916 in
  let cores = (0, Armb_mem.Topology.num_cores cfg.topo / 2) in
  Printf.printf "Producer on node 0, consumer on node 1 of %s.\n\n" cfg.name;

  (* 1. The textbook ring: DMB ld guards buffer reuse, DMB st publishes. *)
  let best =
    S.Spsc_ring.verified_run
      { (S.Spsc_ring.default_spec cfg ~cores) with barriers = S.Spsc_ring.combo "DMB ld - DMB st" }
  in
  Printf.printf "ring, DMB ld / DMB st   : %6.1f M msgs/s\n" (best.throughput /. 1e6);

  (* 2. Overkill barriers: DMB full everywhere.  Same semantics, slower,
        because the publish barrier strictly follows the remote store. *)
  let heavy =
    S.Spsc_ring.verified_run
      { (S.Spsc_ring.default_spec cfg ~cores) with barriers = S.Spsc_ring.combo "DMB full - DMB full" }
  in
  Printf.printf "ring, DMB full twice    : %6.1f M msgs/s\n" (heavy.throughput /. 1e6);

  (* 3. Pilot: the flag rides on the data word (single-copy atomicity),
        so the fatal barrier and the producer counter line disappear. *)
  let pilot = S.Pilot_ring.run (S.Pilot_ring.default_spec cfg ~cores) in
  Printf.printf "Pilot ring              : %6.1f M msgs/s (%d collision fallbacks)\n"
    (pilot.throughput /. 1e6) pilot.fallbacks;

  (* Cache-line traffic tells the second half of the story. *)
  let show name (c : Armb_mem.Memsys.counters) =
    Printf.printf "%-24s cross-node transfers: %d\n" name c.cross_node_transfers
  in
  show "ring traffic" best.lines_touched;
  show "pilot traffic" pilot.lines_touched;

  (* Batched transfers: Pilot applied to every 64-bit slice. *)
  print_newline ();
  List.iter
    (fun words ->
      let spec = { (S.Pilot_ring.default_spec cfg ~cores) with messages = 2000 } in
      let p = (S.Pilot_ring.run_batched ~words spec).throughput in
      let b = (S.Pilot_ring.run_batched_baseline ~words spec).throughput in
      Printf.printf "batched %dx8B: pilot/best ring = %.2fx\n" words (p /. b))
    [ 1; 2; 4; 8 ]
