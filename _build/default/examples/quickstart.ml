(* Quickstart: simulate a two-thread program on a modelled ARM server,
   observe a weak-memory hazard, fix it with a barrier, and ask the
   advisor what the cheapest fix would have been.

   Run with:  dune exec examples/quickstart.exe *)

module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Barrier = Armb_cpu.Barrier

let message_passing ~fenced =
  (* A Kunpeng-916-like machine: 2 NUMA nodes x 28 cores. *)
  let m = Machine.create Armb_platform.Platform.kunpeng916 in
  let data = Machine.alloc_line m in
  let flag = Machine.alloc_line m in
  (* Warm the data line into the consumer's cache so the producer's
     store to it is a remote memory reference — the paper's RMR. *)
  Armb_mem.Memsys.place (Machine.mem m) ~core:28 ~addr:data;
  Armb_mem.Memsys.place (Machine.mem m) ~core:0 ~addr:flag;
  let received = ref 0L in
  (* Producer on node 0: with [fenced], DMB st orders data before flag. *)
  Machine.spawn m ~core:0 (fun c ->
      Core.store c data 23L;
      if fenced then Core.barrier c (Barrier.Dmb St);
      Core.store c flag 1L);
  (* Consumer on node 1.  Unfenced: both loads issue concurrently, as an
     out-of-order core would, and the data read can complete first.
     Fenced: wait for the flag, then a DMB ld before reading data. *)
  Machine.spawn m ~core:28 (fun c ->
      if fenced then begin
        ignore (Core.spin_until c flag (Int64.equal 1L));
        Core.barrier c (Barrier.Dmb Ld);
        received := Core.await c (Core.load c data)
      end
      else begin
        let f = Core.load c flag in
        let d = Core.load c data in
        let fv = Core.await c f and dv = Core.await c d in
        if Int64.equal fv 1L then received := dv
      end);
  Machine.run_exn m;
  !received

let () =
  Printf.printf "unfenced message passing: consumer saw data = %Ld (weak!)\n"
    (message_passing ~fenced:false);
  Printf.printf "with DMB st in producer:  consumer saw data = %Ld\n"
    (message_passing ~fenced:true);
  (* What does the paper's Table 3 recommend for ordering a store before
     a later store? *)
  let best =
    Armb_core.Advisor.best ~from_:Armb_core.Advisor.From_store
      ~to_:Armb_core.Advisor.To_store
  in
  Printf.printf "advisor: store -> store is cheapest with %s\n"
    (Armb_core.Ordering.to_string best);
  (* And how much does a barrier cost here?  Run the paper's abstracted
     model once. *)
  let spec =
    {
      (Armb_core.Abstracted_model.default_spec Armb_platform.Platform.kunpeng916) with
      cores = (0, 28);
      approach = Armb_core.Ordering.Bar (Barrier.Dmb St);
      nops = 300;
      iters = 1000;
    }
  in
  Printf.printf "DMB st-1 store-store model, cross-node: %.1f M loops/s\n"
    (Armb_core.Abstracted_model.run spec /. 1e6)
