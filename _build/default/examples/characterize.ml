(* Characterize barrier costs on a platform of your own design: build a
   custom machine config, run the paper's abstracted models and
   observation checks against it, and get Table-3-style advice.

   Run with:  dune exec examples/characterize.exe *)

module Config = Armb_cpu.Config
module Topology = Armb_mem.Topology

(* An imaginary 4-node ARM server with a slow interconnect. *)
let my_server : Config.t =
  {
    name = "myserver4";
    freq_ghz = 3.0;
    topo = Topology.make ~nodes:4 ~clusters_per_node:3 ~cores_per_cluster:4;
    lat =
      {
        l1_hit = 2;
        same_cluster = 12;
        same_node = 18;
        cross_node = 95;
        dram = 120;
        bisection_rt = 8;
        domain_rt = 500;
        rmw_extra = 8;
      };
    alu_ipc = 8;
    rob_size = 48;
    sb_size = 20;
    isb_cost = 30;
    dmb_min = 2;
    stlr_extra = 90;
    quantum = 64;
  }

let () =
  Format.printf "Platform under test:@.%a@.@." Config.pp my_server;
  (* Figure-3-style sweep between the two farthest cores. *)
  let far = Topology.num_cores my_server.topo - 1 in
  Armb_sim.Series.print
    (Armb_core.Characterize.fig3 my_server ~cores:(0, far) ~label:"myserver4 cross-node"
       ~nop_counts:[ 100; 400; 900 ] ~iters:1200);
  (* Where do NOPs start hiding a DMB full? *)
  (match Armb_core.Characterize.tipping_point my_server ~cores:(0, far) () with
  | Some n -> Printf.printf "DMB full hidden behind ~%d independent instructions\n" n
  | None -> print_endline "DMB full never fully hidden in the sweep");
  (* Do the paper's per-platform observations hold here too? *)
  let v = Armb_core.Observations.obs2_location_matters my_server ~cores:(0, far) in
  Printf.printf "observation 2 (location matters): %s [%s]\n"
    (if v.holds then "holds" else "does not hold")
    v.detail;
  let v = Armb_core.Observations.obs6_no_bus_wins my_server ~cores:(0, far) in
  Printf.printf "observation 6 (no-bus wins):      %s [%s]\n"
    (if v.holds then "holds" else "does not hold")
    v.detail
