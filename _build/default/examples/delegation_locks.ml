(* Delegation locks on the simulator and natively: protect a sorted
   list with a ticket lock, DSM-Synch and FFWD, with and without Pilot
   (paper §5).

   Run with:  dune exec examples/delegation_locks.exe *)

module P = Armb_platform.Platform
module S = Armb_sync
module R = Armb_runtime

let simulated () =
  Printf.printf "--- simulated kunpeng916, 16 workers, sorted list of ~100 keys ---\n";
  List.iter
    (fun lock ->
      let spec =
        { (S.Ds_bench.default_spec P.kunpeng916 ~lock) with workers = 16; ops_per_worker = 60 }
      in
      let r = S.Ds_bench.run_sorted_list ~preload:100 spec in
      Printf.printf "%-10s %7.2f M ops/s\n" (S.Ds_bench.lock_name lock)
        (r.throughput /. 1e6))
    S.Ds_bench.all_locks

let native () =
  Printf.printf "\n--- native domains (correctness demo on this host) ---\n";
  (* A DSM-Synch-protected sorted list shared by 3 domains. *)
  let d = R.Dsmsynch.create ~pilot:true () in
  let p = R.Delegated.With_dsmsynch d in
  let list = R.Delegated.Sorted_list_d.create () in
  let worker lo () =
    for k = lo to lo + 999 do
      ignore (R.Delegated.Sorted_list_d.insert list p k)
    done
  in
  let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 1000) ] in
  worker 2000 ();
  List.iter Domain.join ds;
  Printf.printf "3 domains inserted 3000 keys; list length = %d; combines = %d\n"
    (R.Delegated.Sorted_list_d.length list p)
    (R.Dsmsynch.combines d);
  (* An FFWD server executing closures for two clients. *)
  let srv = R.Ffwd.create ~clients:2 () in
  let sum = ref 0 in
  let d1 =
    Domain.spawn (fun () ->
        for i = 1 to 1000 do
          ignore (R.Ffwd.request srv ~client:1 (fun () -> sum := !sum + i; !sum))
        done)
  in
  for i = 1 to 1000 do
    ignore (R.Ffwd.request srv ~client:0 (fun () -> sum := !sum + i; !sum))
  done;
  Domain.join d1;
  R.Ffwd.shutdown srv;
  Printf.printf "FFWD server summed both clients' work: %d (expected %d)\n" !sum
    (2 * 500500)

let () =
  simulated ();
  native ()
