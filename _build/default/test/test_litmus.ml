(* Tests for the litmus layer: the exhaustive enumerator against known
   results, the simulator runner, and the cross-check between them. *)

module Lang = Armb_litmus.Lang
module Enum = Armb_litmus.Enumerate
module Sim = Armb_litmus.Sim_runner
module Cat = Armb_litmus.Catalogue

let check = Alcotest.check

(* ---------- language ---------- *)

let test_vars_collects () =
  check (Alcotest.list Alcotest.string) "vars" [ "data"; "flag" ] (Lang.vars Cat.mp)

let test_regs_of_thread () =
  match Cat.mp.Lang.threads with
  | [ _; consumer ] ->
    check (Alcotest.list Alcotest.string) "consumer regs" [ "r1"; "r2" ]
      (Lang.regs_of_thread consumer)
  | _ -> Alcotest.fail "unexpected thread count"

let test_reads_regs () =
  let i = Lang.st_reg "y" "r1" in
  check (Alcotest.list Alcotest.string) "data dep" [ "r1" ] (Lang.reads_regs i);
  let j = Lang.ld ~addr_dep:"r0" "x" "r2" in
  check (Alcotest.list Alcotest.string) "addr dep" [ "r0" ] (Lang.reads_regs j)

(* ---------- enumerator vs textbook results ---------- *)

let test_catalogue_expectations () =
  List.iter
    (fun (t : Lang.test) ->
      let ok, detail = Enum.verify_expectations t in
      if not ok then Alcotest.failf "%s: %s" t.Lang.name detail)
    Cat.all

let test_sc_outcomes_present () =
  (* every model must at least allow the sequential outcome of MP *)
  let outs = Enum.enumerate Enum.Tso Cat.mp in
  check Alcotest.bool "TSO allows flag+data" true
    (List.exists
       (fun o ->
         List.assoc_opt "1:r1" o = Some 1L && List.assoc_opt "1:r2" o = Some 23L)
       outs)

let test_wmm_superset_of_tso () =
  (* anything TSO allows, the weaker model allows too *)
  List.iter
    (fun (t : Lang.test) ->
      let tso = Enum.enumerate Enum.Tso t in
      let wmm = Enum.enumerate Enum.Wmm t in
      List.iter
        (fun o ->
          if not (List.mem o wmm) then
            Alcotest.failf "%s: TSO outcome %s missing under WMM" t.Lang.name
              (Enum.outcome_to_string o))
        tso)
    Cat.all

let test_fences_monotone () =
  (* adding fences can only shrink the outcome set *)
  let plain = Enum.enumerate Enum.Wmm Cat.mp in
  let fenced = Enum.enumerate Enum.Wmm Cat.mp_dmb in
  check Alcotest.bool "fenced subset of plain" true
    (List.for_all (fun o -> List.mem o plain) fenced);
  check Alcotest.bool "strictly smaller here" true
    (List.length fenced < List.length plain)

let test_coherence_always () =
  (* CoRR is forbidden even under the weak model *)
  check Alcotest.bool "CoRR forbidden" false (Enum.allows Enum.Wmm Cat.coherence)

(* ---------- simulator runner ---------- *)

let test_sim_witnesses_mp () =
  let r = Sim.run ~trials:300 Cat.mp in
  check Alcotest.bool "MP weak outcome witnessed" true r.Sim.interesting_witnessed

let test_sim_never_forbidden () =
  List.iter
    (fun (t : Lang.test) ->
      if not t.Lang.expect_wmm then begin
        let r = Sim.run ~trials:200 t in
        if r.Sim.interesting_witnessed then
          Alcotest.failf "%s: simulator witnessed a WMM-forbidden outcome" t.Lang.name
      end)
    Cat.all

let test_sim_outcomes_within_enumerated () =
  (* soundness cross-check: every simulated outcome must be allowed by
     the operational model *)
  List.iter
    (fun (t : Lang.test) ->
      let allowed =
        List.map Enum.outcome_to_string (Enum.enumerate Enum.Wmm t)
      in
      let r = Sim.run ~trials:150 t in
      List.iter
        (fun (o, _) ->
          if not (List.mem o allowed) then
            Alcotest.failf "%s: simulated outcome %s not in the operational model"
              t.Lang.name o)
        r.Sim.outcomes)
    Cat.all

let test_sim_deterministic_given_seed () =
  let a = Sim.run ~trials:50 ~seed:9 Cat.sb in
  let b = Sim.run ~trials:50 ~seed:9 Cat.sb in
  check Alcotest.bool "same seed, same histogram" true (a.Sim.outcomes = b.Sim.outcomes)

let test_sim_consistency_predicate () =
  let r = Sim.run ~trials:100 Cat.mp_dmb in
  check Alcotest.bool "consistent" true (Sim.consistent_with_model r Cat.mp_dmb)

(* ---------- differential fuzzing ---------- *)

let test_fuzz_no_violations () =
  let r = Armb_litmus.Fuzz.run ~tests:60 ~trials_per_test:50 ~seed:2718 () in
  if r.Armb_litmus.Fuzz.violations <> [] then
    Alcotest.failf "%s" (Format.asprintf "%a" Armb_litmus.Fuzz.pp_report r);
  check Alcotest.bool "outcomes were actually checked" true
    (r.Armb_litmus.Fuzz.sim_outcomes_checked > 50)

let test_fuzz_generator_wellformed () =
  (* generated tests must enumerate without error and have consistent
     register naming *)
  let rng = Armb_sim.Rng.create 5 in
  for _ = 1 to 30 do
    let t = Armb_litmus.Fuzz.generate rng in
    let outs = Enum.enumerate Enum.Wmm t in
    check Alcotest.bool "at least one outcome" true (outs <> []);
    List.iter
      (fun th ->
        let regs = Lang.regs_of_thread th in
        let sorted = List.sort_uniq compare regs in
        check Alcotest.int "unique registers per thread" (List.length regs)
          (List.length sorted))
      t.Lang.threads
  done

let () =
  Alcotest.run "armb_litmus"
    [
      ( "lang",
        [
          Alcotest.test_case "vars" `Quick test_vars_collects;
          Alcotest.test_case "regs of thread" `Quick test_regs_of_thread;
          Alcotest.test_case "register reads" `Quick test_reads_regs;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "catalogue expectations" `Quick test_catalogue_expectations;
          Alcotest.test_case "SC outcome present" `Quick test_sc_outcomes_present;
          Alcotest.test_case "WMM superset of TSO" `Quick test_wmm_superset_of_tso;
          Alcotest.test_case "fences monotone" `Quick test_fences_monotone;
          Alcotest.test_case "coherence forbidden" `Quick test_coherence_always;
        ] );
      ( "sim-runner",
        [
          Alcotest.test_case "witnesses MP" `Slow test_sim_witnesses_mp;
          Alcotest.test_case "never witnesses forbidden" `Slow test_sim_never_forbidden;
          Alcotest.test_case "sound wrt operational model" `Slow
            test_sim_outcomes_within_enumerated;
          Alcotest.test_case "deterministic per seed" `Quick test_sim_deterministic_given_seed;
          Alcotest.test_case "consistency predicate" `Quick test_sim_consistency_predicate;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "generator well-formed" `Quick test_fuzz_generator_wellformed;
          Alcotest.test_case "differential: sim within operational model" `Slow
            test_fuzz_no_violations;
        ] );
    ]
