(* Tests for the extended in-place lock family: spinlock, MCS, cohort.
   Each harness run embeds a mutual-exclusion oracle and an exact
   protected-counter check, so completing a run already proves
   correctness; the assertions add structural and NUMA-behaviour
   invariants. *)

module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module P = Armb_platform.Platform
module S = Armb_sync

let check = Alcotest.check

let compare_spec lock cores =
  { (S.Lock_compare.default_spec P.kunpeng916 ~lock ~cores) with acquisitions = 60 }

let same_node_cores = List.init 12 (fun i -> i)

let cross_node_cores = List.init 12 (fun i -> if i < 6 then i else 22 + i)

(* ---------- all locks pass the oracle harness ---------- *)

let test_all_locks_exact_counter () =
  List.iter
    (fun lk ->
      let r = S.Lock_compare.run (compare_spec lk cross_node_cores) in
      check Alcotest.bool (S.Lock_compare.lock_name lk) true (r.throughput > 0.0))
    S.Lock_compare.all_locks

(* ---------- spinlock ---------- *)

let test_spin_try_acquire () =
  let m = Machine.create P.kunpeng916 in
  let l = S.Spin_lock.create m in
  let first = ref false and second = ref false and third = ref false in
  Machine.spawn m ~core:0 (fun c ->
      first := S.Spin_lock.try_acquire l c;
      second := S.Spin_lock.try_acquire l c;
      S.Spin_lock.release l c;
      third := S.Spin_lock.try_acquire l c);
  Machine.run_exn m;
  check Alcotest.bool "first succeeds" true !first;
  check Alcotest.bool "second fails while held" false !second;
  check Alcotest.bool "reacquire after release" true !third

let test_spin_no_ldar_variant () =
  let m = Machine.create P.kunpeng916 in
  let l = S.Spin_lock.create m in
  let shared = Machine.alloc_line m in
  for core = 0 to 3 do
    Machine.spawn m ~core (fun c ->
        for _ = 1 to 30 do
          S.Spin_lock.acquire ~use_ldar:false l c;
          let v = Core.await c (Core.load c shared) in
          Core.store c shared (Int64.add v 1L);
          S.Spin_lock.release l c
        done)
  done;
  Machine.run_exn m;
  check Alcotest.int64 "barrier-based acquire also safe" 120L
    (Armb_mem.Memsys.load_value (Machine.mem m) ~addr:shared)

(* ---------- MCS ---------- *)

let test_mcs_fifo_handoff () =
  (* MCS grants in queue order: with staggered arrivals the admission
     order must match arrival order *)
  let m = Machine.create P.kunpeng916 in
  let l = S.Mcs_lock.create m ~slots:4 in
  let order = ref [] in
  for slot = 0 to 3 do
    Machine.spawn m ~core:(slot * 8) (fun c ->
        Core.pause c (slot * 2000);
        S.Mcs_lock.acquire l c ~slot;
        order := slot :: !order;
        Core.compute c 50;
        S.Mcs_lock.release l c ~slot)
  done;
  Machine.run_exn m;
  check (Alcotest.list Alcotest.int) "fifo admission" [ 0; 1; 2; 3 ] (List.rev !order)

let test_mcs_bad_slot () =
  let m = Machine.create P.kunpeng916 in
  let l = S.Mcs_lock.create m ~slots:2 in
  Machine.spawn m ~core:0 (fun c -> S.Mcs_lock.acquire l c ~slot:5);
  match Machine.run_exn m with
  | () -> Alcotest.fail "bad slot accepted"
  | exception Machine.Simulation_error _ -> ()

let test_mcs_uncontended_cheap () =
  (* an uncontended MCS acquire+release must not pay cross-node costs *)
  let m = Machine.create P.kunpeng916 in
  let l = S.Mcs_lock.create m ~slots:1 in
  Machine.spawn m ~core:0 (fun c ->
      for _ = 1 to 50 do
        S.Mcs_lock.acquire l c ~slot:0;
        S.Mcs_lock.release l c ~slot:0
      done);
  Machine.run_exn m;
  let per_op = Machine.elapsed m / 50 in
  check Alcotest.bool "uncontended cost bounded" true (per_op < 100)

(* ---------- cohort ---------- *)

let test_cohort_handoff_accounting () =
  let m = Machine.create P.kunpeng916 in
  let l = S.Cohort_lock.create m () in
  let shared = Machine.alloc_line m in
  let iters = 40 in
  List.iter
    (fun core ->
      Machine.spawn m ~core (fun c ->
          for _ = 1 to iters do
            S.Cohort_lock.acquire l c;
            let v = Core.await c (Core.load c shared) in
            Core.store c shared (Int64.add v 1L);
            S.Cohort_lock.release l c
          done))
    cross_node_cores;
  Machine.run_exn m;
  let total = List.length cross_node_cores * iters in
  check Alcotest.int64 "exact count" (Int64.of_int total)
    (Armb_mem.Memsys.load_value (Machine.mem m) ~addr:shared);
  check Alcotest.int "every acquisition released one way or the other" total
    (S.Cohort_lock.handoffs l + S.Cohort_lock.global_transfers l);
  check Alcotest.bool "same-node handoffs happened" true (S.Cohort_lock.handoffs l > 0);
  check Alcotest.bool "but the budget forces global transfers too" true
    (S.Cohort_lock.global_transfers l > 1)

let test_cohort_cuts_cross_node_traffic () =
  let run lk = S.Lock_compare.run (compare_spec lk cross_node_cores) in
  let ticket = run S.Lock_compare.Ticket and cohort = run S.Lock_compare.Cohort in
  check Alcotest.bool "cohort moves far fewer lines across nodes" true
    (cohort.cross_node_per_cs < 0.5 *. ticket.cross_node_per_cs)

let test_cohort_same_node_no_penalty () =
  (* on a single node the cohort lock must not pay cross-node traffic *)
  let r = S.Lock_compare.run (compare_spec S.Lock_compare.Cohort same_node_cores) in
  check (Alcotest.float 0.01) "no cross-node traffic" 0.0 r.cross_node_per_cs

let test_cohort_budget_bounds_unfairness () =
  let m = Machine.create P.kunpeng916 in
  let l = S.Cohort_lock.create m ~max_cohort:2 () in
  let served_nodes = ref [] in
  List.iter
    (fun core ->
      Machine.spawn m ~core (fun c ->
          for _ = 1 to 12 do
            S.Cohort_lock.acquire l c;
            served_nodes :=
              Armb_mem.Topology.node_of P.kunpeng916.topo (Core.id c) :: !served_nodes;
            Core.compute c 30;
            S.Cohort_lock.release l c;
            Core.compute c 30
          done))
    [ 0; 1; 28; 29 ];
  Machine.run_exn m;
  (* with budget 2, no node may be served more than 3 times in a row *)
  let rec max_run best cur prev = function
    | [] -> max best cur
    | n :: rest ->
      if n = prev then max_run best (cur + 1) n rest else max_run (max best cur) 1 n rest
  in
  let longest = max_run 0 0 (-1) (List.rev !served_nodes) in
  check Alcotest.bool "cohort budget respected" true (longest <= 3)

let () =
  Alcotest.run "armb_locks"
    [
      ( "harness",
        [ Alcotest.test_case "all locks verified" `Slow test_all_locks_exact_counter ] );
      ( "spinlock",
        [
          Alcotest.test_case "try_acquire" `Quick test_spin_try_acquire;
          Alcotest.test_case "barrier-based acquire" `Quick test_spin_no_ldar_variant;
        ] );
      ( "mcs",
        [
          Alcotest.test_case "fifo handoff" `Quick test_mcs_fifo_handoff;
          Alcotest.test_case "slot validation" `Quick test_mcs_bad_slot;
          Alcotest.test_case "uncontended cost" `Quick test_mcs_uncontended_cheap;
        ] );
      ( "cohort",
        [
          Alcotest.test_case "handoff accounting" `Quick test_cohort_handoff_accounting;
          Alcotest.test_case "cuts cross-node traffic" `Slow
            test_cohort_cuts_cross_node_traffic;
          Alcotest.test_case "no same-node penalty" `Quick test_cohort_same_node_no_penalty;
          Alcotest.test_case "budget bounds unfairness" `Quick
            test_cohort_budget_bounds_unfairness;
        ] );
    ]
