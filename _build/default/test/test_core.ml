(* Tests for the paper's core contribution library: ordering predicates,
   abstracted models, observations, the advisor and the Pilot codec. *)

module Barrier = Armb_cpu.Barrier
module AM = Armb_core.Abstracted_model
module Advisor = Armb_core.Advisor
module Obs = Armb_core.Observations
module Ordering = Armb_core.Ordering
module Pilot = Armb_core.Pilot
module P = Armb_platform.Platform

let check = Alcotest.check

(* ---------- Ordering predicates ---------- *)

let test_ordering_names () =
  check Alcotest.string "dmb" "DMB full" (Ordering.to_string (Ordering.Bar (Barrier.Dmb Full)));
  check Alcotest.string "stlr" "STLR" (Ordering.to_string Ordering.Stlr_release);
  check Alcotest.string "dep" "ADDR DEP" (Ordering.to_string Ordering.Addr_dep)

let test_ordering_strength () =
  check Alcotest.bool "DMB st does not order loads" false
    (Ordering.orders_load_load (Ordering.Bar (Barrier.Dmb St)));
  check Alcotest.bool "DMB ld orders load-load" true
    (Ordering.orders_load_load (Ordering.Bar (Barrier.Dmb Ld)));
  check Alcotest.bool "only full barriers order store-load" true
    (Ordering.orders_store_load (Ordering.Bar (Barrier.Dmb Full))
    && (not (Ordering.orders_store_load (Ordering.Bar (Barrier.Dmb St))))
    && not (Ordering.orders_store_load Ordering.Stlr_release));
  check Alcotest.bool "ctrl orders load-store only" true
    (Ordering.orders_load_store Ordering.Ctrl_dep
    && not (Ordering.orders_load_load Ordering.Ctrl_dep));
  check Alcotest.bool "ctrl+isb orders load-load" true
    (Ordering.orders_load_load Ordering.Ctrl_isb)

let test_ordering_bus () =
  check Alcotest.bool "DMB full involves the bus" true
    (Ordering.involves_bus (Ordering.Bar (Barrier.Dmb Full)));
  check Alcotest.bool "DMB ld resolved locally" false
    (Ordering.involves_bus (Ordering.Bar (Barrier.Dmb Ld)));
  check Alcotest.bool "deps never involve the bus" false (Ordering.involves_bus Ordering.Addr_dep);
  check Alcotest.bool "LDAR resolved locally" false (Ordering.involves_bus Ordering.Ldar_acquire)

(* ---------- Abstracted models ---------- *)

let small cfg = { (AM.default_spec cfg) with iters = 400; buffer_lines = 16 }

let test_am_labels () =
  let s = { (small P.kunpeng916) with approach = Ordering.Bar (Barrier.Dmb Full) } in
  check Alcotest.string "loc1 label" "DMB full-1" (AM.label s);
  check Alcotest.string "loc2 label" "DMB full-2" (AM.label { s with location = AM.Loc2 });
  check Alcotest.string "no location for STLR" "STLR"
    (AM.label { s with approach = Ordering.Stlr_release })

let test_am_validity () =
  let s = small P.kunpeng916 in
  check Alcotest.bool "data dep invalid for store-store" false
    (AM.valid { s with mem_ops = AM.Store_store; approach = Ordering.Data_dep });
  check Alcotest.bool "stlr invalid for load-load" false
    (AM.valid { s with mem_ops = AM.Load_load; approach = Ordering.Stlr_release });
  check Alcotest.bool "deps valid for load-store" true
    (AM.valid { s with mem_ops = AM.Load_store; approach = Ordering.Data_dep });
  check Alcotest.bool "no-mem accepts only barriers" false
    (AM.valid { s with mem_ops = AM.No_mem; approach = Ordering.Ldar_acquire })

let test_am_deterministic () =
  let s = { (small P.kunpeng916) with approach = Ordering.Bar (Barrier.Dmb St) } in
  check Alcotest.int "same spec, same cycles" (AM.run_cycles s) (AM.run_cycles s)

let test_am_nops_scale () =
  let s = small P.kunpeng916 in
  let t100 = AM.run { s with nops = 100 } in
  let t700 = AM.run { s with nops = 700 } in
  check Alcotest.bool "more nops, lower throughput" true (t700 < t100)

let test_am_dsb_worst () =
  let s = { (small P.kunpeng916) with cores = (0, 28) } in
  let dsb = AM.run { s with approach = Ordering.Bar (Barrier.Dsb Full) } in
  let dmb = AM.run { s with approach = Ordering.Bar (Barrier.Dmb Full) } in
  let none = AM.run { s with approach = Ordering.No_barrier } in
  check Alcotest.bool "DSB < DMB < none" true (dsb < dmb && dmb < none)

let test_am_invalid_raises () =
  let s = { (small P.kunpeng916) with mem_ops = AM.Store_store; approach = Ordering.Data_dep } in
  match AM.run s with
  | _ -> Alcotest.fail "invalid spec accepted"
  | exception Invalid_argument _ -> ()

(* ---------- Observations (the paper's claims as regression tests) ---------- *)

let test_observations_all_hold () =
  List.iter
    (fun (name, (v : Obs.verdict)) ->
      if not v.holds then Alcotest.failf "%s failed: %s" name v.detail)
    (Obs.all ())

(* ---------- Tipping point (Figure 4) ---------- *)

let test_tipping_point_ratio () =
  match Armb_core.Characterize.tipping_point P.kunpeng916 ~cores:(0, 28) ~iters:800 () with
  | None -> Alcotest.fail "no tipping point found"
  | Some nops ->
    (* at the tipping point, DMB full-1 throughput is about half of
       DMB full-2 (the paper's Figure 4 argument) *)
    let spec loc =
      {
        (AM.default_spec P.kunpeng916) with
        cores = (0, 28);
        approach = Ordering.Bar (Barrier.Dmb Full);
        location = loc;
        nops;
        iters = 800;
      }
    in
    let r1 = AM.run (spec AM.Loc1) and r2 = AM.run (spec AM.Loc2) in
    let ratio = r1 /. r2 in
    if ratio < 0.4 || ratio > 0.75 then
      Alcotest.failf "tipping ratio %.2f outside [0.4, 0.75] at %d nops" ratio nops

(* ---------- Advisor (Table 3) ---------- *)

let test_advisor_best_choices () =
  check Alcotest.string "store-store" "DMB st"
    (Ordering.to_string (Advisor.best ~from_:Advisor.From_store ~to_:Advisor.To_stores));
  check Alcotest.string "store-load needs full" "DMB full"
    (Ordering.to_string (Advisor.best ~from_:Advisor.From_store ~to_:Advisor.To_load));
  check Alcotest.string "load-load prefers dep" "ADDR DEP"
    (Ordering.to_string (Advisor.best ~from_:Advisor.From_load ~to_:Advisor.To_load))

let test_advisor_all_sufficient () =
  (* every suggestion in the whole matrix must be architecturally
     sufficient for its cell *)
  List.iter
    (fun f ->
      List.iter
        (fun t ->
          let sugg = Advisor.suggest ~from_:f ~to_:t in
          if sugg = [] then
            Alcotest.failf "no suggestion for %s -> %s" (Advisor.from_to_string f)
              (Advisor.to_to_string t);
          List.iter
            (fun (s : Advisor.suggestion) ->
              if not (Advisor.sufficient s.approach ~from_:f ~to_:t) then
                Alcotest.failf "insufficient %s for %s -> %s"
                  (Ordering.to_string s.approach) (Advisor.from_to_string f)
                  (Advisor.to_to_string t))
            sugg)
        Advisor.all_to)
    Advisor.all_from

let test_advisor_no_barrier_never_sufficient () =
  List.iter
    (fun f ->
      List.iter
        (fun t ->
          if Advisor.sufficient Ordering.No_barrier ~from_:f ~to_:t then
            Alcotest.fail "No_barrier can never be sufficient")
        Advisor.all_to)
    Advisor.all_from

let test_advisor_stlr_caveat () =
  let sugg = Advisor.suggest ~from_:Advisor.From_any ~to_:Advisor.To_store in
  let stlr = List.find_opt (fun s -> s.Advisor.approach = Ordering.Stlr_release) sugg in
  match stlr with
  | Some { caveat = Some _; _ } -> ()
  | Some { caveat = None; _ } -> Alcotest.fail "STLR suggestion must carry its caveat"
  | None -> Alcotest.fail "STLR should be suggested for Any -> Store"

let test_advisor_empirical_cross_check () =
  (* the advisor's preference for the load-store case must match the
     simulator: the suggested approach beats DMB full *)
  let spec approach =
    {
      (AM.default_spec P.kunpeng916) with
      cores = (0, 28);
      mem_ops = AM.Load_store;
      approach;
      nops = 200;
      iters = 600;
    }
  in
  let best = Advisor.best ~from_:Advisor.From_load ~to_:Advisor.To_store in
  let t_best = AM.run (spec best) in
  let t_full = AM.run (spec (Ordering.Bar (Barrier.Dmb Full))) in
  check Alcotest.bool "advisor choice beats DMB full" true (t_best > t_full)

(* ---------- Pilot codec ---------- *)

let test_pilot_roundtrip_sequence () =
  let pool = Pilot.make_pool ~seed:5 () in
  let s = Pilot.sender pool and r = Pilot.receiver pool in
  let data = ref 0L and flag = ref 0L in
  let deliver msg =
    (match Pilot.encode s msg with
    | Pilot.Write_data v -> data := v
    | Pilot.Toggle_flag -> flag := Int64.logxor !flag 1L);
    match Pilot.try_decode r ~data:!data ~flag:!flag with
    | Some got -> check Alcotest.int64 "payload" msg got
    | None -> Alcotest.fail "message lost"
  in
  List.iter deliver [ 1L; 2L; 2L; 2L; 0L; 0L; Int64.max_int; Int64.min_int; 42L ]

let test_pilot_idempotent_poll () =
  let pool = Pilot.make_pool ~seed:6 () in
  let s = Pilot.sender pool and r = Pilot.receiver pool in
  let data = ref 0L and flag = ref 0L in
  (match Pilot.encode s 9L with
  | Pilot.Write_data v -> data := v
  | Pilot.Toggle_flag -> flag := 1L);
  (match Pilot.try_decode r ~data:!data ~flag:!flag with
  | Some _ -> ()
  | None -> Alcotest.fail "should decode");
  check Alcotest.bool "re-poll returns nothing" true
    (Pilot.try_decode r ~data:!data ~flag:!flag = None)

let test_pilot_fallback_used () =
  (* force collisions: a pool of a single zero makes equal consecutive
     messages collide *)
  let pool = [| 0L |] in
  let s = Pilot.sender pool and r = Pilot.receiver pool in
  let data = ref 0L and flag = ref 0L in
  let fallbacks = ref 0 in
  let deliver msg =
    (match Pilot.encode s msg with
    | Pilot.Write_data v -> data := v
    | Pilot.Toggle_flag ->
      incr fallbacks;
      flag := Int64.logxor !flag 1L);
    match Pilot.try_decode r ~data:!data ~flag:!flag with
    | Some got -> check Alcotest.int64 "payload despite collision" msg got
    | None -> Alcotest.fail "message lost in fallback"
  in
  List.iter deliver [ 7L; 7L; 7L; 7L ];
  check Alcotest.bool "fallback exercised" true (!fallbacks >= 3)

let prop_pilot_any_sequence =
  QCheck.Test.make ~name:"pilot delivers any int64 sequence in order" ~count:200
    QCheck.(pair small_int (list int64))
    (fun (seed, msgs) ->
      let pool = Pilot.make_pool ~seed () in
      let s = Pilot.sender pool and r = Pilot.receiver pool in
      let data = ref 0L and flag = ref 0L in
      List.for_all
        (fun msg ->
          (match Pilot.encode s msg with
          | Pilot.Write_data v -> data := v
          | Pilot.Toggle_flag -> flag := Int64.logxor !flag 1L);
          match Pilot.try_decode r ~data:!data ~flag:!flag with
          | Some got -> Int64.equal got msg
          | None -> false)
        msgs)

let prop_pilot_counts_advance =
  QCheck.Test.make ~name:"sender and receiver stay in lock-step" ~count:100
    QCheck.(list int64)
    (fun msgs ->
      let pool = Pilot.make_pool ~seed:3 () in
      let s = Pilot.sender pool and r = Pilot.receiver pool in
      let data = ref 0L and flag = ref 0L in
      List.iter
        (fun msg ->
          (match Pilot.encode s msg with
          | Pilot.Write_data v -> data := v
          | Pilot.Toggle_flag -> flag := Int64.logxor !flag 1L);
          ignore (Pilot.try_decode r ~data:!data ~flag:!flag))
        msgs;
      Pilot.sent s = List.length msgs && Pilot.received r = List.length msgs)

let test_pilot_pool_validation () =
  Alcotest.check_raises "empty pool rejected" (Invalid_argument "Pilot.sender: empty pool")
    (fun () -> ignore (Pilot.sender [||]));
  match Pilot.make_pool ~size:0 ~seed:1 () with
  | _ -> Alcotest.fail "zero-size pool accepted"
  | exception Invalid_argument _ -> ()

(* ---------- Report ---------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_report_generates () =
  let r = Armb_core.Report.generate ~iters:400 P.kirin960 in
  let md = Armb_core.Report.to_markdown r in
  List.iter
    (fun needle ->
      if not (contains md needle) then Alcotest.failf "report missing %S" needle)
    [ "kirin960"; "Intrinsic"; "Store-store"; "Recommendations"; "DMB" ]

let test_report_tipping_present_on_server () =
  let r = Armb_core.Report.generate ~iters:600 P.kunpeng916 in
  match r.Armb_core.Report.tipping with
  | Some n -> check Alcotest.bool "plausible tipping" true (n > 0 && n < 10_000)
  | None -> Alcotest.fail "kunpeng916 must have a tipping point"

let test_report_best_publish_is_legal () =
  let r = Armb_core.Report.generate ~iters:400 P.kunpeng916 in
  check Alcotest.bool "publish choice orders store-store" true
    (Ordering.orders_store_store r.Armb_core.Report.best_store_publish)

let () =
  Alcotest.run "armb_core"
    [
      ( "ordering",
        [
          Alcotest.test_case "names" `Quick test_ordering_names;
          Alcotest.test_case "strength predicates" `Quick test_ordering_strength;
          Alcotest.test_case "bus involvement" `Quick test_ordering_bus;
        ] );
      ( "abstracted-model",
        [
          Alcotest.test_case "labels" `Quick test_am_labels;
          Alcotest.test_case "validity" `Quick test_am_validity;
          Alcotest.test_case "determinism" `Quick test_am_deterministic;
          Alcotest.test_case "nop scaling" `Quick test_am_nops_scale;
          Alcotest.test_case "DSB worst" `Quick test_am_dsb_worst;
          Alcotest.test_case "invalid specs rejected" `Quick test_am_invalid_raises;
        ] );
      ( "observations",
        [
          Alcotest.test_case "all six hold" `Slow test_observations_all_hold;
          Alcotest.test_case "figure-4 tipping ratio" `Slow test_tipping_point_ratio;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "best choices" `Quick test_advisor_best_choices;
          Alcotest.test_case "all suggestions sufficient" `Quick test_advisor_all_sufficient;
          Alcotest.test_case "no-barrier never sufficient" `Quick
            test_advisor_no_barrier_never_sufficient;
          Alcotest.test_case "STLR caveat" `Quick test_advisor_stlr_caveat;
          Alcotest.test_case "empirical cross-check" `Slow test_advisor_empirical_cross_check;
        ] );
      ( "pilot",
        [
          Alcotest.test_case "roundtrip with repeats" `Quick test_pilot_roundtrip_sequence;
          Alcotest.test_case "idempotent poll" `Quick test_pilot_idempotent_poll;
          Alcotest.test_case "collision fallback" `Quick test_pilot_fallback_used;
          Alcotest.test_case "pool validation" `Quick test_pilot_pool_validation;
          QCheck_alcotest.to_alcotest prop_pilot_any_sequence;
          QCheck_alcotest.to_alcotest prop_pilot_counts_advance;
        ] );
      ( "report",
        [
          Alcotest.test_case "generates markdown" `Slow test_report_generates;
          Alcotest.test_case "server tipping point" `Slow test_report_tipping_present_on_server;
          Alcotest.test_case "publish choice legal" `Slow test_report_best_publish_is_legal;
        ] );
    ]
