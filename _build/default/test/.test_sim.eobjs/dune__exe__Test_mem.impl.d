test/test_mem.ml: Alcotest Armb_mem Hashtbl Int64 List QCheck QCheck_alcotest
