test/test_workloads.ml: Alcotest Armb_platform Armb_workloads List
