test/test_platform.ml: Alcotest Armb_core Armb_cpu Armb_mem Armb_platform Armb_sim List
