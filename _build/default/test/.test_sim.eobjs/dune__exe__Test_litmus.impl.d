test/test_litmus.ml: Alcotest Armb_litmus Armb_sim Format List
