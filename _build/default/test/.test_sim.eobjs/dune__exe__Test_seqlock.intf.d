test/test_seqlock.mli:
