test/test_cpu.ml: Alcotest Armb_cpu Armb_mem Int64 List String
