test/test_runtime.ml: Alcotest Armb_runtime Array Domain Fun List QCheck QCheck_alcotest
