test/test_core.ml: Alcotest Armb_core Armb_cpu Armb_platform Int64 List QCheck QCheck_alcotest String
