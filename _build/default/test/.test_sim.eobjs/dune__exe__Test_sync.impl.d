test/test_sync.ml: Alcotest Armb_core Armb_cpu Armb_mem Armb_platform Armb_sync Int64 List Printf
