test/test_sim.ml: Alcotest Armb_sim Array Event_queue Fun Heap List QCheck QCheck_alcotest Rng Series Stats String
