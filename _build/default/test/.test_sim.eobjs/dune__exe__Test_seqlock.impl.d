test/test_seqlock.ml: Alcotest Armb_cpu Armb_mem Armb_platform Armb_runtime Armb_sync Array Domain Int64 List
