test/test_locks.ml: Alcotest Armb_cpu Armb_mem Armb_platform Armb_sync Int64 List
