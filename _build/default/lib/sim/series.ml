type table = {
  title : string;
  col_labels : string list;
  rows : (string * float list) list;
  unit_label : string;
}

let make ~title ~unit_label ~cols rows =
  List.iter
    (fun (name, vs) ->
      if List.length vs <> List.length cols then
        invalid_arg (Printf.sprintf "Series.make: row %S has %d cells, expected %d" name (List.length vs) (List.length cols)))
    rows;
  { title; col_labels = cols; rows; unit_label }

let fmt_cell v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let pp ppf t =
  let first_col_width =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 12 t.rows
  in
  let col_width =
    List.fold_left (fun acc c -> max acc (String.length c + 2)) 10 t.col_labels
  in
  let pad_left s w = String.make (max 0 (w - String.length s)) ' ' ^ s in
  let pad_right s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Format.fprintf ppf "=== %s (%s) ===@." t.title t.unit_label;
  Format.fprintf ppf "%s" (pad_right "" first_col_width);
  List.iter (fun c -> Format.fprintf ppf "%s" (pad_left c col_width)) t.col_labels;
  Format.fprintf ppf "@.";
  List.iter
    (fun (name, vs) ->
      Format.fprintf ppf "%s" (pad_right name first_col_width);
      List.iter (fun v -> Format.fprintf ppf "%s" (pad_left (fmt_cell v) col_width)) vs;
      Format.fprintf ppf "@.")
    t.rows

let print t =
  pp Format.std_formatter t;
  Format.print_newline ()

let cell t ~row ~col =
  let vs = List.assoc row t.rows in
  let rec idx i = function
    | [] -> raise Not_found
    | c :: _ when c = col -> i
    | _ :: rest -> idx (i + 1) rest
  in
  List.nth vs (idx 0 t.col_labels)

let normalize_to t ~row =
  let base = List.assoc row t.rows in
  let rows =
    List.map
      (fun (name, vs) ->
        (name, List.map2 (fun v b -> if b = 0.0 then 0.0 else v /. b) vs base))
      t.rows
  in
  { t with rows; unit_label = "normalized to " ^ row }

let csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," (t.title :: t.col_labels));
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, vs) ->
      Buffer.add_string buf
        (String.concat "," (name :: List.map (Printf.sprintf "%.6g") vs));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf
