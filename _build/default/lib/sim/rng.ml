type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Mixing function from SplitMix64: xor-shift multiply chain. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the conversion to a 63-bit OCaml int stays
     non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits -> [0,1) *)
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (u /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t mean =
  let u = ref (float t 1.0) in
  if !u <= 0.0 then u := 1e-12;
  -.mean *. log !u
