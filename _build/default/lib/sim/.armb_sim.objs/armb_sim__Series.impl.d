lib/sim/series.ml: Buffer Float Format List Printf String
