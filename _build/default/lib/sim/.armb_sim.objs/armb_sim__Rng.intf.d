lib/sim/rng.mli:
