lib/sim/heap.mli:
