type time = int

(* Key packing: we order primarily by time, secondarily by sequence
   number.  Times in this simulator stay well below 2^40 cycles and the
   heap key is a single int, so we keep (time, seq) unpacked by storing
   time in the heap key and resolving FIFO order among equal times with
   a per-event sequence carried in the payload.  The binary heap is not
   stable, so we sort equal-key pops through a small staging check. *)

type event = { seq : int; fn : unit -> unit }

type t = {
  heap : event Heap.t;
  mutable clock : time;
  mutable next_seq : int;
  mutable processed : int;
}

let create () = { heap = Heap.create (); clock = 0; next_seq = 0; processed = 0 }

let now t = t.clock

let schedule t ~at fn =
  let at = if at < t.clock then t.clock else at in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.add t.heap ~key:at { seq; fn }

let schedule_in t ~delay fn = schedule t ~at:(t.clock + max 0 delay) fn

(* Pop all events sharing the earliest timestamp, run them in seq order.
   Running one may schedule more events at the same timestamp; those run
   in a later batch of the same time, still after their scheduler, which
   is the FIFO behaviour we document. *)
let run_next t =
  match Heap.pop t.heap with
  | None -> false
  | Some (time, ev) ->
    let batch = ref [ ev ] in
    let rec drain () =
      match Heap.peek_key t.heap with
      | Some k when k = time -> (
        match Heap.pop t.heap with
        | Some (_, ev') ->
          batch := ev' :: !batch;
          drain ()
        | None -> ())
      | _ -> ()
    in
    drain ();
    let sorted = List.sort (fun a b -> compare a.seq b.seq) !batch in
    t.clock <- time;
    List.iter
      (fun ev ->
        t.processed <- t.processed + 1;
        ev.fn ())
      sorted;
    true

let run ?until ?max_events t =
  let continue () =
    (match max_events with Some m -> t.processed < m | None -> true)
    &&
    match until with
    | Some u -> ( match Heap.peek_key t.heap with Some k -> k <= u | None -> false)
    | None -> not (Heap.is_empty t.heap)
  in
  while continue () do
    ignore (run_next t)
  done

let pending t = Heap.length t.heap

let processed t = t.processed
