(** Deterministic pseudo-random number generation for the simulator.

    All stochastic behaviour in the simulator (latency jitter, workload
    shapes, litmus schedules) draws from this module so that a fixed seed
    reproduces a bit-identical run.  The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): tiny state, full 64-bit output,
    passes BigCrush, and splits cheaply for per-core streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an arbitrary seed. *)

val split : t -> t
(** [split t] derives an independent generator; used to give each
    simulated core its own stream so event order does not perturb
    other cores' draws. *)

val copy : t -> t
(** [copy t] duplicates the current state. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution. *)
