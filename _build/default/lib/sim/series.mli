(** Result-table formatting shared by the benchmark harness.

    Every figure/table in the paper is regenerated as a [table]: a grid
    of labelled rows and columns of floats, printed in an aligned ASCII
    layout so runs can be diffed. *)

type table = {
  title : string;
  col_labels : string list;
  rows : (string * float list) list;
  unit_label : string;
}

val make : title:string -> unit_label:string -> cols:string list -> (string * float list) list -> table

val pp : Format.formatter -> table -> unit
(** Aligned grid with the title, unit and column header. *)

val print : table -> unit
(** [pp] to stdout followed by a blank line. *)

val cell : table -> row:string -> col:string -> float
(** Lookup by labels.  Raises [Not_found] for unknown labels. *)

val normalize_to : table -> row:string -> table
(** Divide every row element-wise by the given row (for the paper's
    "normalized throughput" figures).  Zero cells in the base row yield 0. *)

val csv : table -> string
(** Comma-separated rendering (header line then one line per row). *)
