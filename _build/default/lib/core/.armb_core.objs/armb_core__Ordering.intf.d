lib/core/ordering.mli: Armb_cpu Format
