lib/core/abstracted_model.ml: Armb_cpu Armb_sim Int64 Ordering Printf
