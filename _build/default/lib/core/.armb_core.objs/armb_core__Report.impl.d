lib/core/report.ml: Abstracted_model Armb_cpu Armb_mem Armb_sim Buffer Characterize Format List Observations Ordering Printf
