lib/core/characterize.ml: Abstracted_model Armb_cpu Armb_sim List Ordering Printf
