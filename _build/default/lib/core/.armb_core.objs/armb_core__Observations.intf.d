lib/core/observations.mli: Armb_cpu
