lib/core/report.mli: Armb_cpu Armb_sim Observations Ordering
