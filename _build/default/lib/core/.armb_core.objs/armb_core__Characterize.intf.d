lib/core/characterize.mli: Armb_cpu Armb_sim
