lib/core/pilot.ml: Armb_sim Array Int64
