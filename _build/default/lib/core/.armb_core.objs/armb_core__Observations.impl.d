lib/core/observations.ml: Abstracted_model Armb_cpu Armb_mem Armb_platform Float List Ordering Printf
