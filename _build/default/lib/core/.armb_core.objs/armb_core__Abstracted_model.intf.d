lib/core/abstracted_model.mli: Armb_cpu Ordering
