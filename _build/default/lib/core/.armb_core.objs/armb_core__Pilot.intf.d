lib/core/pilot.mli:
