lib/core/advisor.ml: Armb_cpu Armb_sim List Ordering
