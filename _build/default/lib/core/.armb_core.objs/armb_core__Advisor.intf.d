lib/core/advisor.mli: Armb_sim Ordering
