lib/core/ordering.ml: Armb_cpu Format
