module Barrier = Armb_cpu.Barrier

type from_access = From_load | From_store | From_any

type to_access = To_load | To_loads | To_store | To_stores | To_any

type suggestion = { approach : Ordering.t; rank : int; caveat : string option }

let all_from = [ From_load; From_store; From_any ]

let all_to = [ To_load; To_loads; To_store; To_stores; To_any ]

let from_to_string = function
  | From_load -> "Load"
  | From_store -> "Store"
  | From_any -> "Any"

let to_to_string = function
  | To_load -> "Load"
  | To_loads -> "Loads"
  | To_store -> "Store"
  | To_stores -> "Stores"
  | To_any -> "Any"

(* Architectural sufficiency, derived from the per-approach ordering
   predicates.  Dependencies only order a load against the accesses
   that actually consume its value, so they are sufficient for the
   single-successor cases (To_load / To_store); barriers and LDAR cover
   multiple successors too. *)
let covers_one_to_one approach ~later_is_store =
  if later_is_store then Ordering.orders_load_store approach
  else Ordering.orders_load_load approach

let sufficient approach ~from_ ~to_ =
  match approach with
  | Ordering.No_barrier -> false
  | _ -> (
    match (from_, to_) with
    | From_load, To_load -> covers_one_to_one approach ~later_is_store:false
    | From_load, To_store -> covers_one_to_one approach ~later_is_store:true
    | From_load, (To_loads | To_any) ->
      (* Several later accesses: a dependency must feed all of them
         (address dependency can, by indexing every access), which we
         accept only for Addr_dep/Ctrl_isb; otherwise a real barrier. *)
      Ordering.orders_load_load approach && Ordering.orders_load_store approach
    | From_load, To_stores -> Ordering.orders_load_store approach && approach <> Ordering.Data_dep && approach <> Ordering.Ctrl_dep && approach <> Ordering.Stlr_release
    | From_store, (To_store | To_stores) -> Ordering.orders_store_store approach
    | From_store, (To_load | To_loads | To_any) -> Ordering.orders_store_load approach
    | From_any, (To_store | To_stores) ->
      Ordering.orders_store_store approach && Ordering.orders_load_store approach
    | From_any, (To_load | To_loads | To_any) ->
      Ordering.orders_store_load approach && Ordering.orders_load_load approach)

let rcpc_note =
  "ARMv8.3 Load-Acquire RCpc (not on Kunpeng 916) may give better parallelism than LDAR"

let stlr_note =
  "STLR is sufficient here but its overhead is unstable (Observation 3): compare against \
   DMB full on the target platform before using it"

let dep_note = "bogus dependency: xor the loaded value with itself and fold it in"

let mk ?caveat rank approach = { approach; rank; caveat }

(* Table 3 of the paper, cheapest first. *)
let suggest ~from_ ~to_ =
  let l =
    match (from_, to_) with
    | From_load, To_load ->
      [
        mk 0 Ordering.Addr_dep ~caveat:dep_note;
        mk 1 Ordering.Ldar_acquire ~caveat:rcpc_note;
        mk 2 (Ordering.Bar (Barrier.Dmb Ld));
      ]
    | From_load, To_loads ->
      [
        mk 0 Ordering.Addr_dep ~caveat:dep_note;
        mk 1 (Ordering.Bar (Barrier.Dmb Ld));
        mk 2 Ordering.Ldar_acquire ~caveat:rcpc_note;
      ]
    | From_load, To_store ->
      [
        mk 0 Ordering.Data_dep ~caveat:dep_note;
        mk 0 Ordering.Addr_dep ~caveat:dep_note;
        mk 0 Ordering.Ctrl_dep ~caveat:"natural in conditional code";
        mk 1 Ordering.Ldar_acquire ~caveat:rcpc_note;
        mk 2 (Ordering.Bar (Barrier.Dmb Ld));
      ]
    | From_load, To_stores ->
      [
        mk 0 Ordering.Addr_dep ~caveat:dep_note;
        mk 1 (Ordering.Bar (Barrier.Dmb Ld));
        mk 2 Ordering.Ldar_acquire ~caveat:rcpc_note;
      ]
    | From_load, To_any ->
      [
        mk 0 Ordering.Addr_dep ~caveat:dep_note;
        mk 1 Ordering.Ldar_acquire ~caveat:rcpc_note;
        mk 1 (Ordering.Bar (Barrier.Dmb Ld));
      ]
    | From_store, (To_store | To_stores) -> [ mk 0 (Ordering.Bar (Barrier.Dmb St)) ]
    | From_store, (To_load | To_loads | To_any) -> [ mk 0 (Ordering.Bar (Barrier.Dmb Full)) ]
    | From_any, To_store ->
      [
        mk 0 (Ordering.Bar (Barrier.Dmb Full));
        mk 1 Ordering.Stlr_release ~caveat:stlr_note;
      ]
    | From_any, To_stores -> [ mk 0 (Ordering.Bar (Barrier.Dmb Full)) ]
    | From_any, (To_load | To_loads | To_any) -> [ mk 0 (Ordering.Bar (Barrier.Dmb Full)) ]
  in
  (* Keep only architecturally sufficient entries — a safety net that
     the tests rely on. *)
  List.filter (fun s -> sufficient s.approach ~from_ ~to_) l

let best ~from_ ~to_ =
  match suggest ~from_ ~to_ with
  | s :: _ -> s.approach
  | [] -> Ordering.Bar (Barrier.Dmb Full)

let table () =
  let cols = List.map to_to_string all_to in
  let rows =
    List.map
      (fun f ->
        ( from_to_string f,
          List.map
            (fun t ->
              (* encode the best approach as its index in a stable list
                 for a numeric table; the CLI prints names instead *)
              let a = best ~from_:f ~to_:t in
              let order =
                [
                  Ordering.Addr_dep;
                  Ordering.Data_dep;
                  Ordering.Ctrl_dep;
                  Ordering.Ldar_acquire;
                  Ordering.Bar (Barrier.Dmb Ld);
                  Ordering.Bar (Barrier.Dmb St);
                  Ordering.Stlr_release;
                  Ordering.Bar (Barrier.Dmb Full);
                  Ordering.Bar (Barrier.Dsb Full);
                ]
              in
              let rec idx i = function
                | [] -> float_of_int (List.length order)
                | x :: rest -> if x = a then float_of_int i else idx (i + 1) rest
              in
              idx 0 order)
            all_to ))
      all_from
  in
  Armb_sim.Series.make ~title:"Table 3: best approach index (0=ADDR dep ... 8=DSB)"
    ~unit_label:"approach rank" ~cols rows
