(** The paper's six observations as executable predicates.

    Each check runs the relevant abstracted models on the simulator and
    verifies the claimed relationship.  The test suite asserts all six
    hold on the calibrated platforms, turning the paper's qualitative
    claims into regression tests for the model. *)

type verdict = {
  holds : bool;
  detail : string;  (** human-readable evidence (measured numbers) *)
}

val obs1_intrinsic_overhead : Armb_cpu.Config.t -> verdict
(** "The intrinsic overhead of barriers is stable and intuitive":
    with no memory ops, DMB ~ no-barrier, ISB in between, DSB worst,
    and DMB/DSB options indistinguishable. *)

val obs2_location_matters : Armb_cpu.Config.t -> cores:int * int -> verdict
(** Barriers strictly after an RMR (X-1) are significantly more
    expensive than the same barrier away from it (X-2). *)

val obs3_stlr_unstable : unit -> verdict
(** On at least one platform STLR is slower than the stronger DMB full,
    and on at least one other it is faster; its overhead sits between
    DSB and DMB st. *)

val obs4_bus_complexity : unit -> verdict
(** The barrier-cost spread (max/min over approaches) is far larger on
    the server platform than on the mobile platforms. *)

val obs5_crossing_nodes : unit -> verdict
(** Crossing NUMA nodes inflates DMB full's penalty but not DSB's
    (DSB pays the domain boundary regardless). *)

val obs6_no_bus_wins : Armb_cpu.Config.t -> cores:int * int -> verdict
(** In the load-store model, dependencies / LDAR / DMB ld beat every
    bus-involving approach. *)

val all : unit -> (string * verdict) list
(** Run every check on its canonical platform(s). *)
