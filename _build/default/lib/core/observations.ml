module Barrier = Armb_cpu.Barrier
module AM = Abstracted_model
module P = Armb_platform.Platform

type verdict = { holds : bool; detail : string }

let spec cfg ~cores ~mem_ops ~approach ~location ~nops =
  {
    (AM.default_spec cfg) with
    cores;
    mem_ops;
    approach;
    location;
    nops;
    iters = 1500;
  }

let thr s = AM.run s /. 1e6

let obs1_intrinsic_overhead cfg =
  let nops = 100 in
  let m approach =
    thr (spec cfg ~cores:(0, 1) ~mem_ops:AM.No_mem ~approach ~location:AM.Loc1 ~nops)
  in
  let none = m Ordering.No_barrier in
  let dmb_full = m (Ordering.Bar (Barrier.Dmb Full)) in
  let dmb_st = m (Ordering.Bar (Barrier.Dmb St)) in
  let dmb_ld = m (Ordering.Bar (Barrier.Dmb Ld)) in
  let dsb_full = m (Ordering.Bar (Barrier.Dsb Full)) in
  let dsb_st = m (Ordering.Bar (Barrier.Dsb St)) in
  let isb = m (Ordering.Bar Barrier.Isb) in
  let close a b = Float.abs (a -. b) /. Float.max a b < 0.10 in
  let holds =
    dmb_full <= none
    && close dmb_full dmb_st && close dmb_full dmb_ld
    && close dsb_full dsb_st
    && isb < dmb_full && isb > dsb_full
    && dsb_full < 0.5 *. dmb_full
  in
  {
    holds;
    detail =
      Printf.sprintf
        "none=%.1f dmb(full/st/ld)=%.1f/%.1f/%.1f isb=%.1f dsb(full/st)=%.1f/%.1f M loops/s"
        none dmb_full dmb_st dmb_ld isb dsb_full dsb_st;
  }

let obs2_location_matters cfg ~cores =
  let nops = 300 in
  let m location =
    thr
      (spec cfg ~cores ~mem_ops:AM.Store_store
         ~approach:(Ordering.Bar (Barrier.Dmb Full))
         ~location ~nops)
  in
  let loc1 = m AM.Loc1 and loc2 = m AM.Loc2 in
  {
    holds = loc1 < 0.85 *. loc2;
    detail = Printf.sprintf "DMB full-1=%.1f vs DMB full-2=%.1f M loops/s" loc1 loc2;
  }

let stlr_vs cfg ~cores ~nops =
  let m approach location =
    thr (spec cfg ~cores ~mem_ops:AM.Store_store ~approach ~location ~nops)
  in
  let stlr = m Ordering.Stlr_release AM.Loc1 in
  let dmb_full = m (Ordering.Bar (Barrier.Dmb Full)) AM.Loc1 in
  let dmb_st = m (Ordering.Bar (Barrier.Dmb St)) AM.Loc1 in
  let dsb = m (Ordering.Bar (Barrier.Dsb Full)) AM.Loc1 in
  (stlr, dmb_full, dmb_st, dsb)

let obs3_stlr_unstable () =
  let s_k, f_k, st_k, dsb_k =
    stlr_vs P.kunpeng916
      ~cores:(0, Armb_mem.Topology.num_cores P.kunpeng916.topo / 2)
      ~nops:300
  in
  let s_m, f_m, _, _ = stlr_vs P.kirin960 ~cores:(0, 1) ~nops:30 in
  let holds =
    (* worse than the stronger barrier on the server... *)
    s_k < f_k
    (* ...but fine on the mobile part... *)
    && s_m >= 0.95 *. f_m
    (* ...and always between DSB and DMB st. *)
    && s_k > dsb_k && s_k < st_k
  in
  {
    holds;
    detail =
      Printf.sprintf
        "kunpeng916: stlr=%.1f dmbfull=%.1f dmbst=%.1f dsb=%.1f; kirin960: stlr=%.1f \
         dmbfull=%.1f"
        s_k f_k st_k dsb_k s_m f_m;
  }

(* Absolute overhead in cycles/loop that each bus-involving approach
   adds over the no-barrier baseline, and the spread among them.
   Observation 4 claims both grow with bus complexity: the server's
   deeper interconnect makes barriers cost more cycles and makes the
   choice of approach matter more. *)
let added_cycles cfg ~cores ~nops =
  let cyc approach location =
    let s = spec cfg ~cores ~mem_ops:AM.Store_store ~approach ~location ~nops in
    float_of_int (AM.run_cycles s) /. float_of_int s.AM.iters
  in
  let base = cyc Ordering.No_barrier AM.Loc1 in
  let overheads =
    [
      cyc (Ordering.Bar (Barrier.Dmb Full)) AM.Loc1 -. base;
      cyc (Ordering.Bar (Barrier.Dmb St)) AM.Loc1 -. base;
      cyc Ordering.Stlr_release AM.Loc1 -. base;
    ]
  in
  let worst = List.fold_left Float.max 0.0 overheads in
  let best = List.fold_left Float.min infinity overheads in
  (worst, worst -. best)

let obs4_bus_complexity () =
  let w_server, s_server =
    added_cycles P.kunpeng916
      ~cores:(0, Armb_mem.Topology.num_cores P.kunpeng916.topo / 2)
      ~nops:100
  in
  let w_kirin, s_kirin = added_cycles P.kirin960 ~cores:(0, 1) ~nops:10 in
  let w_rpi, s_rpi = added_cycles P.raspberrypi4 ~cores:(0, 1) ~nops:10 in
  {
    holds =
      w_server > 2.0 *. w_kirin && w_server > 2.0 *. w_rpi && s_server > 2.0 *. s_kirin
      && s_server > 2.0 *. s_rpi;
    detail =
      Printf.sprintf
        "worst added cycles/loop (variation): kunpeng916=%.0f (%.0f) kirin960=%.0f (%.0f) \
         rpi4=%.0f (%.0f)"
        w_server s_server w_kirin s_kirin w_rpi s_rpi;
  }

let obs5_crossing_nodes () =
  let cfg = P.kunpeng916 in
  let far = Armb_mem.Topology.num_cores cfg.topo / 2 in
  let m approach cores =
    thr
      (spec cfg ~cores ~mem_ops:AM.Store_store ~approach ~location:AM.Loc1 ~nops:100)
  in
  let dmb_same = m (Ordering.Bar (Barrier.Dmb Full)) (0, 4) in
  let dmb_cross = m (Ordering.Bar (Barrier.Dmb Full)) (0, far) in
  let dsb_same = m (Ordering.Bar (Barrier.Dsb Full)) (0, 4) in
  let dsb_cross = m (Ordering.Bar (Barrier.Dsb Full)) (0, far) in
  let dmb_penalty = dmb_same /. dmb_cross in
  let dsb_penalty = dsb_same /. dsb_cross in
  {
    holds = dmb_penalty > 1.5 && dsb_penalty < 1.3;
    detail =
      Printf.sprintf
        "DMB full same/cross=%.1f/%.1f (%.1fx); DSB full same/cross=%.1f/%.1f (%.2fx)"
        dmb_same dmb_cross dmb_penalty dsb_same dsb_cross dsb_penalty;
  }

let obs6_no_bus_wins cfg ~cores =
  let nops = 300 in
  let m approach =
    thr (spec cfg ~cores ~mem_ops:AM.Load_store ~approach ~location:AM.Loc1 ~nops)
  in
  let cheap =
    [ m Ordering.Data_dep; m Ordering.Addr_dep; m Ordering.Ctrl_dep; m Ordering.Ldar_acquire;
      m (Ordering.Bar (Barrier.Dmb Ld)) ]
  in
  let bus = [ m (Ordering.Bar (Barrier.Dmb Full)); m (Ordering.Bar (Barrier.Dsb Full)); m Ordering.Stlr_release ] in
  let min_cheap = List.fold_left Float.min infinity cheap in
  let max_bus = List.fold_left Float.max 0.0 bus in
  {
    holds = min_cheap > max_bus;
    detail =
      Printf.sprintf "cheapest no-bus approach=%.1f vs best bus approach=%.1f M loops/s"
        min_cheap max_bus;
  }

let all () =
  let far = Armb_mem.Topology.num_cores P.kunpeng916.topo / 2 in
  [
    ("obs1 intrinsic overhead (kunpeng916)", obs1_intrinsic_overhead P.kunpeng916);
    ("obs2 location matters (kunpeng916 cross-node)", obs2_location_matters P.kunpeng916 ~cores:(0, far));
    ("obs3 STLR unstable", obs3_stlr_unstable ());
    ("obs4 bus complexity", obs4_bus_complexity ());
    ("obs5 crossing nodes", obs5_crossing_nodes ());
    ("obs6 no-bus wins (kunpeng916 cross-node)", obs6_no_bus_wins P.kunpeng916 ~cores:(0, far));
  ]
