module Barrier = Armb_cpu.Barrier
module AM = Abstracted_model

let mega v = v /. 1e6

let run_spec spec = mega (AM.run spec)

let fig2 cfg ~nop_counts ~iters =
  let approaches =
    [
      (Ordering.No_barrier, AM.Loc1);
      (Ordering.Bar (Barrier.Dmb Full), AM.Loc1);
      (Ordering.Bar (Barrier.Dmb Ld), AM.Loc1);
      (Ordering.Bar (Barrier.Dmb St), AM.Loc1);
      (Ordering.Bar (Barrier.Dsb Full), AM.Loc1);
      (Ordering.Bar (Barrier.Dsb Ld), AM.Loc1);
      (Ordering.Bar (Barrier.Dsb St), AM.Loc1);
      (Ordering.Bar Barrier.Isb, AM.Loc1);
    ]
  in
  let rows =
    List.map
      (fun (a, loc) ->
        let name = Ordering.to_string a in
        let cells =
          List.map
            (fun nops ->
              run_spec
                {
                  (AM.default_spec cfg) with
                  mem_ops = AM.No_mem;
                  approach = a;
                  location = loc;
                  nops;
                  iters;
                })
            nop_counts
        in
        (name, cells))
      approaches
  in
  Armb_sim.Series.make
    ~title:(Printf.sprintf "Fig 2: intrinsic overhead, %s" cfg.Armb_cpu.Config.name)
    ~unit_label:"10^6 loops/s" ~cols:(List.map string_of_int nop_counts) rows

let fig3 cfg ~cores ~label ~nop_counts ~iters =
  let specs =
    [
      (Ordering.No_barrier, AM.Loc1);
      (Ordering.Bar (Barrier.Dmb Full), AM.Loc1);
      (Ordering.Bar (Barrier.Dmb Full), AM.Loc2);
      (Ordering.Bar (Barrier.Dmb St), AM.Loc1);
      (Ordering.Bar (Barrier.Dmb St), AM.Loc2);
      (Ordering.Bar (Barrier.Dsb Full), AM.Loc1);
      (Ordering.Bar (Barrier.Dsb Full), AM.Loc2);
      (Ordering.Bar (Barrier.Dsb St), AM.Loc1);
      (Ordering.Bar (Barrier.Dsb St), AM.Loc2);
      (Ordering.Stlr_release, AM.Loc1);
    ]
  in
  let rows =
    List.map
      (fun (a, loc) ->
        let spec0 =
          {
            (AM.default_spec cfg) with
            cores;
            mem_ops = AM.Store_store;
            approach = a;
            location = loc;
            iters;
          }
        in
        let cells = List.map (fun nops -> run_spec { spec0 with nops }) nop_counts in
        (AM.label spec0, cells))
      specs
  in
  Armb_sim.Series.make
    ~title:(Printf.sprintf "Fig 3: store-store model, %s" label)
    ~unit_label:"10^6 loops/s" ~cols:(List.map string_of_int nop_counts) rows

let fig5 cfg ~cores ~nop_counts ~iters =
  let specs =
    [
      (Ordering.No_barrier, AM.Loc1);
      (Ordering.Bar (Barrier.Dmb Full), AM.Loc1);
      (Ordering.Bar (Barrier.Dmb Full), AM.Loc2);
      (Ordering.Bar (Barrier.Dmb Ld), AM.Loc1);
      (Ordering.Bar (Barrier.Dmb Ld), AM.Loc2);
      (Ordering.Bar (Barrier.Dsb Full), AM.Loc1);
      (Ordering.Bar (Barrier.Dsb Full), AM.Loc2);
      (Ordering.Bar (Barrier.Dsb Ld), AM.Loc1);
      (Ordering.Bar (Barrier.Dsb Ld), AM.Loc2);
      (Ordering.Ldar_acquire, AM.Loc1);
      (Ordering.Stlr_release, AM.Loc1);
      (Ordering.Ctrl_dep, AM.Loc1);
      (Ordering.Ctrl_isb, AM.Loc1);
      (Ordering.Data_dep, AM.Loc1);
      (Ordering.Addr_dep, AM.Loc1);
    ]
  in
  let rows =
    List.map
      (fun (a, loc) ->
        let spec0 =
          {
            (AM.default_spec cfg) with
            cores;
            mem_ops = AM.Load_store;
            approach = a;
            location = loc;
            iters;
          }
        in
        let cells = List.map (fun nops -> run_spec { spec0 with nops }) nop_counts in
        (AM.label spec0, cells))
      specs
  in
  Armb_sim.Series.make
    ~title:
      (Printf.sprintf "Fig 5: load-store model, %s" cfg.Armb_cpu.Config.name)
    ~unit_label:"10^6 loops/s" ~cols:(List.map string_of_int nop_counts) rows

let tipping_point cfg ~cores ?(tolerance = 0.05) ?(iters = 1500) () =
  let sweep = [ 50; 100; 150; 200; 300; 400; 500; 600; 700; 900; 1200; 1600 ] in
  let spec a loc nops =
    {
      (AM.default_spec cfg) with
      cores;
      mem_ops = AM.Store_store;
      approach = a;
      location = loc;
      nops;
      iters;
    }
  in
  List.find_opt
    (fun nops ->
      let base = AM.run (spec Ordering.No_barrier AM.Loc1 nops) in
      let full2 = AM.run (spec (Ordering.Bar (Barrier.Dmb Full)) AM.Loc2 nops) in
      base > 0.0 && (base -. full2) /. base <= tolerance)
    sweep
