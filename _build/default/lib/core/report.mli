(** One-shot characterization report for a platform model: runs the
    paper's methodology (intrinsic overhead, store-store and load-store
    models, tipping point, observation checks) against a configuration
    and renders a self-contained Markdown document with the platform's
    numbers and per-scenario recommendations.

    This is the paper operationalized as a tool: point it at a machine
    model (see {!Armb_platform.Platform} or build your own
    {!Armb_cpu.Config.t}) and get its barrier cheat-sheet. *)

type t = {
  cfg : Armb_cpu.Config.t;
  intrinsic : Armb_sim.Series.table;
  store_store : Armb_sim.Series.table;
  load_store : Armb_sim.Series.table;
  tipping : int option;
  observations : (string * Observations.verdict) list;
  best_store_publish : Ordering.t;
      (** empirically best legal publish choice in the ring benchmark *)
}

val generate :
  ?cores:int * int -> ?nop_counts:int list -> ?iters:int -> Armb_cpu.Config.t -> t
(** Defaults: the two most distant cores, NOP counts scaled to the
    platform's ALU width, 1200 iterations. *)

val to_markdown : t -> string
(** Render the full report. *)

val print : t -> unit
