(** Sweep drivers that regenerate the characterization figures
    (Figures 2, 3 and 5) as printable tables. *)

val fig2 : Armb_cpu.Config.t -> nop_counts:int list -> iters:int -> Armb_sim.Series.table
(** Intrinsic overhead: the no-memory-ops model with every barrier on
    the critical path.  One row per barrier choice, one column per NOP
    count. *)

val fig3 :
  Armb_cpu.Config.t ->
  cores:int * int ->
  label:string ->
  nop_counts:int list ->
  iters:int ->
  Armb_sim.Series.table
(** Store-store model: rows are "X-1"/"X-2" barrier placements plus
    No Barrier and STLR, columns are NOP counts. *)

val fig5 :
  Armb_cpu.Config.t ->
  cores:int * int ->
  nop_counts:int list ->
  iters:int ->
  Armb_sim.Series.table
(** Load-store model with the full set of approaches including
    dependencies, LDAR and CTRL+ISB. *)

val tipping_point :
  Armb_cpu.Config.t -> cores:int * int -> ?tolerance:float -> ?iters:int -> unit -> int option
(** Smallest NOP count (among a geometric sweep) at which DMB full-2's
    throughput reaches No Barrier's within [tolerance] — the Figure 4
    tipping point.  [None] if never reached within the sweep. *)
