(** Executable form of the paper's Table 3: given which accesses must be
    ordered, suggest order-preserving approaches from cheapest to most
    expensive, with the paper's caveats attached. *)

type from_access =
  | From_load  (** a single preceding load *)
  | From_store  (** preceding store(s) *)
  | From_any  (** both loads and stores precede *)

type to_access =
  | To_load  (** one later load *)
  | To_loads  (** several later loads (or loads and stores) *)
  | To_store  (** one later store *)
  | To_stores  (** several later stores *)
  | To_any

type suggestion = {
  approach : Ordering.t;
  rank : int;  (** 0 = preferred *)
  caveat : string option;
}

val suggest : from_:from_access -> to_:to_access -> suggestion list
(** Ordered list, cheapest first.  Every returned approach is
    architecturally sufficient for the requested ordering. *)

val best : from_:from_access -> to_:to_access -> Ordering.t

val sufficient : Ordering.t -> from_:from_access -> to_:to_access -> bool
(** Architectural sufficiency check (used to cross-validate the table
    against {!Ordering} predicates and in tests). *)

val table : unit -> Armb_sim.Series.table
(** Render the full suggestion matrix as a printable table. *)

val all_from : from_access list
val all_to : to_access list
val from_to_string : from_access -> string
val to_to_string : to_access -> string
