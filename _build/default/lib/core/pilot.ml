type write_op = Write_data of int64 | Toggle_flag

type sender = {
  s_pool : int64 array;
  mutable s_cnt : int;
  mutable s_old_data : int64;  (* last value written to the shared data word *)
  mutable s_flag : int64;  (* our view of the shared flag word *)
}

type receiver = {
  r_pool : int64 array;
  mutable r_cnt : int;
  mutable r_old_data : int64;
  mutable r_old_flag : int64;
}

let default_pool_size = 64

let make_pool ?(size = default_pool_size) ~seed () =
  if size <= 0 then invalid_arg "Pilot.make_pool: size must be positive";
  let rng = Armb_sim.Rng.create (seed lxor 0x9E37) in
  Array.init size (fun _ -> Armb_sim.Rng.bits64 rng)

let sender pool =
  if Array.length pool = 0 then invalid_arg "Pilot.sender: empty pool";
  { s_pool = pool; s_cnt = 0; s_old_data = 0L; s_flag = 0L }

let receiver pool =
  if Array.length pool = 0 then invalid_arg "Pilot.receiver: empty pool";
  { r_pool = pool; r_cnt = 0; r_old_data = 0L; r_old_flag = 0L }

(* Algorithm 3: shuffle, then either publish the new data word or, when
   the shuffled value collides with the previous one, toggle the flag
   (the data word already holds the right value). *)
let encode s msg =
  let h = s.s_pool.(s.s_cnt mod Array.length s.s_pool) in
  s.s_cnt <- s.s_cnt + 1;
  let shuffled = Int64.logxor msg h in
  if Int64.equal shuffled s.s_old_data then begin
    s.s_flag <- Int64.logxor s.s_flag 1L;
    Toggle_flag
  end
  else begin
    s.s_old_data <- shuffled;
    Write_data shuffled
  end

(* Algorithm 4: a change in [data] or in [flag] both mean "one new
   message"; in the flag case the payload is the (unchanged) data
   word. *)
let try_decode r ~data ~flag =
  let fresh =
    if not (Int64.equal data r.r_old_data) then begin
      r.r_old_data <- data;
      true
    end
    else if not (Int64.equal flag r.r_old_flag) then begin
      r.r_old_flag <- flag;
      true
    end
    else false
  in
  if not fresh then None
  else begin
    let h = r.r_pool.(r.r_cnt mod Array.length r.r_pool) in
    r.r_cnt <- r.r_cnt + 1;
    Some (Int64.logxor r.r_old_data h)
  end

let sent s = s.s_cnt

let received r = r.r_cnt
