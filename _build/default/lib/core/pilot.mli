(** Pilot: the paper's mechanism for removing the performance-critical
    barrier between "store the data" and "set the flag" in
    message-passing patterns (§4.3, Algorithms 3 & 4).

    Instead of [data := msg; DMB st; flag := 1], the sender piggybacks
    the flag on the data itself: the receiver detects a new message by
    seeing the shared [data] word {e change}.  Because a 64-bit aligned
    store is single-copy atomic, data and "flag" become visible
    together, so no barrier is needed.  Two complications, both handled
    here:

    - the new message may equal the previous one, in which case writing
      it would not be observable — the sender first {e shuffles} the
      payload by XOR-ing it with a pseudo-random pool value (so
      repeats are unlikely to collide), and
    - if the shuffled value {e still} equals the previous shuffled
      value, a fallback path toggles a separate shared [flag] word.

    This module is the pure codec: it decides what to write and decodes
    what was read.  Simulator programs and the native runtime both
    build on it, which keeps the tricky invariants in one tested
    place. *)

type write_op =
  | Write_data of int64  (** store this shuffled value to the shared [data] word *)
  | Toggle_flag  (** fallback: flip the shared [flag] word *)

type sender

type receiver

val default_pool_size : int

val make_pool : ?size:int -> seed:int -> unit -> int64 array
(** Deterministic pseudo-random shuffle pool.  Sender and receiver must
    use identical pools. *)

val sender : int64 array -> sender

val receiver : int64 array -> receiver

val encode : sender -> int64 -> write_op
(** [encode s msg] advances the sender state and says what to store.
    Exactly one 64-bit store must then be performed. *)

val try_decode : receiver -> data:int64 -> flag:int64 -> int64 option
(** [try_decode r ~data ~flag] inspects a snapshot of the two shared
    words.  [Some msg] means a new message arrived (receiver state is
    advanced); [None] means nothing new yet.  The receiver polls until
    it gets [Some].

    {b Important:} each [Some] consumes one encode step, so sender and
    receiver stay in lock-step — this is a single-producer
    single-consumer protocol where the producer must not overwrite an
    unconsumed message (in the ring-buffer usage, slot reuse is
    prevented by the ring's counters). *)

val sent : sender -> int
(** Number of messages encoded so far. *)

val received : receiver -> int
