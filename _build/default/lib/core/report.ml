module Barrier = Armb_cpu.Barrier
module Config = Armb_cpu.Config
module Series = Armb_sim.Series
module Topology = Armb_mem.Topology

type t = {
  cfg : Config.t;
  intrinsic : Series.table;
  store_store : Series.table;
  load_store : Series.table;
  tipping : int option;
  observations : (string * Observations.verdict) list;
  best_store_publish : Ordering.t;
}

let default_cores cfg = (0, Topology.num_cores cfg.Config.topo - 1)

let generate ?cores ?nop_counts ?(iters = 1200) (cfg : Config.t) =
  let cores = match cores with Some c -> c | None -> default_cores cfg in
  let nop_counts =
    match nop_counts with
    | Some l -> l
    | None ->
      (* scale to the ALU width so the sweep brackets the barrier costs *)
      List.map (fun k -> k * cfg.alu_ipc * 10) [ 1; 3; 7 ]
  in
  let label = Printf.sprintf "%s cores %d,%d" cfg.name (fst cores) (snd cores) in
  let intrinsic = Characterize.fig2 cfg ~nop_counts ~iters in
  let store_store = Characterize.fig3 cfg ~cores ~label ~nop_counts ~iters in
  let load_store = Characterize.fig5 cfg ~cores ~nop_counts ~iters in
  let tipping = Characterize.tipping_point cfg ~cores ~iters () in
  let observations =
    [
      ("intrinsic overhead stable (obs 1)", Observations.obs1_intrinsic_overhead cfg);
      ("barrier location matters (obs 2)", Observations.obs2_location_matters cfg ~cores);
      ("no-bus approaches win (obs 6)", Observations.obs6_no_bus_wins cfg ~cores);
    ]
  in
  (* empirically choose the best legal publish barrier for the
     data-then-flag pattern on this platform (the Obs-3 question) *)
  let publish_cost approach =
    let spec =
      {
        (Abstracted_model.default_spec cfg) with
        cores;
        mem_ops = Abstracted_model.Store_store;
        approach;
        nops = List.hd nop_counts;
        iters;
      }
    in
    Abstracted_model.run spec
  in
  let candidates = [ Ordering.Bar (Barrier.Dmb St); Ordering.Stlr_release ] in
  let best_store_publish =
    fst
      (List.fold_left
         (fun (best, bt) a ->
           let t = publish_cost a in
           if t > bt then (a, t) else (best, bt))
         (Ordering.Bar (Barrier.Dmb St), publish_cost (Ordering.Bar (Barrier.Dmb St)))
         candidates)
  in
  { cfg; intrinsic; store_store; load_store; tipping; observations; best_store_publish }

let to_markdown t =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  p "# Barrier characterization: %s" t.cfg.Config.name;
  p "";
  p "Platform model: %s" (Format.asprintf "%a" Config.pp t.cfg);
  p "";
  p "## Intrinsic barrier overhead (no memory operations)";
  p "";
  p "```";
  Buffer.add_string buf (Format.asprintf "%a" Series.pp t.intrinsic);
  p "```";
  p "";
  p "## Store-store model (data-then-flag publication)";
  p "";
  p "```";
  Buffer.add_string buf (Format.asprintf "%a" Series.pp t.store_store);
  p "```";
  p "";
  p "## Load-store model (consume-then-write)";
  p "";
  p "```";
  Buffer.add_string buf (Format.asprintf "%a" Series.pp t.load_store);
  p "```";
  p "";
  (match t.tipping with
  | Some n ->
    p "A `DMB full` is fully hidden behind ~%d independent instructions on this platform." n
  | None -> p "No instruction count in the sweep fully hides a `DMB full` on this platform.");
  p "";
  p "## Observation checks";
  p "";
  List.iter
    (fun (name, (v : Observations.verdict)) ->
      p "- %s: **%s** — %s" name (if v.holds then "holds" else "does not hold") v.detail)
    t.observations;
  p "";
  p "## Recommendations";
  p "";
  p "- Publish data-then-flag with **%s** (empirically best legal choice here%s)."
    (Ordering.to_string t.best_store_publish)
    (if t.best_store_publish = Ordering.Stlr_release then ""
     else "; STLR measured slower — Observation 3");
  p "- Order load-to-anything with dependencies, LDAR or DMB ld (no bus transaction).";
  p "- Keep DMB full away from remote memory references, or hide it behind ~%s independent instructions."
    (match t.tipping with Some n -> string_of_int n | None -> "(unbounded)");
  p "- Use the Table-3 advisor (`armb advise`) for per-scenario choices.";
  Buffer.contents buf

let print t = print_string (to_markdown t)
