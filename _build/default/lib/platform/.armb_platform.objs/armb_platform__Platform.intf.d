lib/platform/platform.mli: Armb_cpu
