lib/platform/platform.ml: Armb_cpu Armb_mem List String
