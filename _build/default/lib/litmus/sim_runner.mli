(** Run litmus tests on the timing simulator.

    Unlike the exhaustive {!Enumerate}, this witnesses weak behaviours
    {e dynamically}: reorderings happen (or not) because of store-buffer
    drain timing, cache-line placement and issue overlap in the CPU
    model.  Each trial randomizes initial cache-line placement, thread
    start offsets and inter-instruction padding, and the harness counts
    how often each outcome appears.

    A modelling note: the runner issues both loads of a thread before
    awaiting either, so load-load reordering is visible; it cannot
    speculate past control flow (no branch prediction), so
    control-dependency-based tests are exercised only in their ordered
    form. *)

type result = {
  outcomes : (string * int) list;  (** outcome rendering -> occurrence count *)
  interesting_witnessed : bool;
  trials : int;
}

val run :
  ?cfg:Armb_cpu.Config.t ->
  ?trials:int ->
  ?seed:int ->
  Lang.test ->
  result
(** Defaults: kunpeng916, 200 trials, seed 42. *)

val consistent_with_model : result -> Lang.test -> bool
(** No witnessed interesting outcome unless the weak model allows it —
    the cross-check property between the two backends. *)

val pp_result : Format.formatter -> result -> unit
