module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Memsys = Armb_mem.Memsys
module Rng = Armb_sim.Rng

type result = {
  outcomes : (string * int) list;
  interesting_witnessed : bool;
  trials : int;
}

(* Compile one litmus thread to a simulator program.  Loads are issued
   eagerly and awaited lazily (at first use of the register, or at the
   end), which exposes load-load reordering to the timing model. *)
let compile_thread (th : Lang.thread) ~addr_of ~start_pause ~padding ~record (c : Core.t) =
  Core.pause c start_pause;
  let toks : (string, Core.token) Hashtbl.t = Hashtbl.create 8 in
  let reg_value r =
    match Hashtbl.find_opt toks r with
    | Some tok -> Core.await c tok
    | None -> 0L
  in
  List.iteri
    (fun idx instr ->
      if idx > 0 && padding > 0 then Core.compute c padding;
      match instr with
      | Lang.Load { var; reg; acquire; addr_dep } ->
        let addr =
          match addr_dep with
          | Some r ->
            let v = reg_value r in
            Core.compute c 1;
            addr_of var + Int64.to_int (Int64.logxor v v)
          | None -> addr_of var
        in
        let tok = if acquire then Core.ldar c addr else Core.load c addr in
        Hashtbl.replace toks reg tok
      | Lang.Store { var; v; release; addr_dep } ->
        let addr =
          match addr_dep with
          | Some r ->
            let dep = reg_value r in
            Core.compute c 1;
            addr_of var + Int64.to_int (Int64.logxor dep dep)
          | None -> addr_of var
        in
        let value = match v with Lang.Const k -> k | Lang.Reg r -> reg_value r in
        if release then Core.stlr c addr value else Core.store c addr value
      | Lang.Fence f ->
        let b =
          match f with
          | Lang.F_dmb_full -> Armb_cpu.Barrier.Dmb Full
          | Lang.F_dmb_st -> Armb_cpu.Barrier.Dmb St
          | Lang.F_dmb_ld -> Armb_cpu.Barrier.Dmb Ld
          | Lang.F_dsb -> Armb_cpu.Barrier.Dsb Full
        in
        Core.barrier c b)
    th;
  (* Resolve every register at the end of the thread. *)
  Hashtbl.iter (fun r tok -> record r (Core.await c tok)) toks

let run ?(cfg = Armb_platform.Platform.kunpeng916) ?(trials = 200) ?(seed = 42)
    (t : Lang.test) =
  let rng = Rng.create seed in
  let nthreads = List.length t.threads in
  let ncores = Armb_mem.Topology.num_cores cfg.topo in
  if nthreads > ncores then invalid_arg "Sim_runner.run: more threads than cores";
  let outcomes = Hashtbl.create 16 in
  let witnessed = ref false in
  for _trial = 1 to trials do
    let m = Machine.create cfg in
    let mem = Machine.mem m in
    let vars = Lang.vars t in
    let addrs = List.map (fun v -> (v, Machine.alloc_line m)) vars in
    let addr_of v = List.assoc v addrs in
    (* Initial values + randomized initial line placement: pre-touch
       each variable's line from a random core so that some stores hit
       while others miss — the timing asymmetry that makes reorderings
       observable. *)
    (* Spread threads over distant cores when possible. *)
    let core_of i = if nthreads <= 1 then 0 else i * (ncores / nthreads) in
    List.iter
      (fun (v, a) ->
        Memsys.commit_store mem ~addr:a (match List.assoc_opt v t.init with Some x -> x | None -> 0L);
        (* Give each line to one of the participating cores (or leave it
           uncached) so that some accesses hit while others miss — the
           timing asymmetry that exposes reorderings. *)
        let pick = Rng.int rng (nthreads + 1) in
        if pick < nthreads then Memsys.place mem ~core:(core_of pick) ~addr:a)
      addrs;
    let regs : (string, int64) Hashtbl.t = Hashtbl.create 8 in
    List.iteri
      (fun i th ->
        let start_pause = Rng.int rng 40 in
        let padding = Rng.int rng 4 in
        let record r v = Hashtbl.replace regs (Printf.sprintf "%d:%s" i r) v in
        Machine.spawn m ~core:(core_of i)
          (compile_thread th ~addr_of ~start_pause ~padding ~record))
      t.threads;
    Machine.run_exn m;
    (* final memory joins the outcome as "mem:<var>" bindings *)
    List.iter
      (fun (v, a) -> Hashtbl.replace regs ("mem:" ^ v) (Memsys.load_value mem ~addr:a))
      addrs;
    let lookup r = match Hashtbl.find_opt regs r with Some v -> v | None -> 0L in
    let rendering =
      let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) regs [] in
      Enumerate.outcome_to_string (List.sort compare all)
    in
    Hashtbl.replace outcomes rendering
      (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes rendering));
    if t.interesting lookup then witnessed := true
  done;
  {
    outcomes = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcomes []);
    interesting_witnessed = !witnessed;
    trials;
  }

let consistent_with_model r (t : Lang.test) = (not r.interesting_witnessed) || t.expect_wmm

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%d trials, interesting witnessed: %b@," r.trials
    r.interesting_witnessed;
  List.iter (fun (o, n) -> Format.fprintf ppf "  %6d  %s@," n o) r.outcomes;
  Format.fprintf ppf "@]"
