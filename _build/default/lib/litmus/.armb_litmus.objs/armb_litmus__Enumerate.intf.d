lib/litmus/enumerate.mli: Lang
