lib/litmus/sim_runner.mli: Armb_cpu Format Lang
