lib/litmus/catalogue.ml: Lang
