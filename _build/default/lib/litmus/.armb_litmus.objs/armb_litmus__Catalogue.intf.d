lib/litmus/catalogue.mli: Lang
