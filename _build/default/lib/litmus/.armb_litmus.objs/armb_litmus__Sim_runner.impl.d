lib/litmus/sim_runner.ml: Armb_cpu Armb_mem Armb_platform Armb_sim Enumerate Format Hashtbl Int64 Lang List Option Printf
