lib/litmus/lang.mli: Format
