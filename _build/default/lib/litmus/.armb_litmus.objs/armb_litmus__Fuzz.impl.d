lib/litmus/fuzz.ml: Armb_sim Enumerate Format Int64 Lang List Printf Sim_runner
