lib/litmus/lang.ml: Format Hashtbl Int64 List
