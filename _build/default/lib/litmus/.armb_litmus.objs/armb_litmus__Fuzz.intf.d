lib/litmus/fuzz.mli: Armb_sim Format Lang
