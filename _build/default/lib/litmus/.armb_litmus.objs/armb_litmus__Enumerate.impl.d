lib/litmus/enumerate.ml: Array Hashtbl Lang List Printf String
