(** Exhaustive operational exploration of a litmus test's outcomes under
    either a weak ARM-style model or TSO.

    The model is a multi-copy-atomic "out-of-order perform" machine
    (in the spirit of Pulte et al.'s simplified ARMv8 operational
    model): there is one global memory; at each step any thread may
    perform any of its not-yet-performed memory operations whose
    program-order predecessors that {e must} stay ordered have already
    performed.  The must-stay-ordered relation encodes coherence
    (same-address program order), dependencies, acquire/release, and
    fences — and, for TSO, everything except store-to-later-load.

    Suitable for tests of a few instructions per thread; the state
    space is explored with memoization. *)

type model = Wmm | Tso

type outcome = (string * int64) list
(** Sorted binding list: ["thread:reg" -> value] for every register,
    plus ["mem:var" -> value] for each shared variable's final value. *)

val enumerate : model -> Lang.test -> outcome list
(** All reachable final outcomes, sorted and de-duplicated. *)

val allows : model -> Lang.test -> bool
(** Is the test's [interesting] predicate satisfiable under the model? *)

val outcome_to_string : outcome -> string

val verify_expectations : Lang.test -> (bool * string)
(** Check [expect_tso]/[expect_wmm] against the enumerator; returns
    (ok, detail). *)
