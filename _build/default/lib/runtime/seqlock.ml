type t = { seq : int Atomic.t; cells : int Atomic.t array }

let create ~words =
  if words <= 0 then invalid_arg "Seqlock.create";
  { seq = Atomic.make 0; cells = Array.init words (fun _ -> Atomic.make 0) }

let write t payload =
  if Array.length payload <> Array.length t.cells then
    invalid_arg "Seqlock.write: wrong payload arity";
  let s = Atomic.get t.seq in
  Atomic.set t.seq (s + 1);
  Array.iteri (fun i v -> Atomic.set t.cells.(i) v) payload;
  Atomic.set t.seq (s + 2)

let read t =
  let b = Backoff.create () in
  let rec attempt () =
    let s1 = Atomic.get t.seq in
    if s1 land 1 = 1 then begin
      Backoff.once b;
      attempt ()
    end
    else begin
      let snapshot = Array.map Atomic.get t.cells in
      if Atomic.get t.seq = s1 then snapshot
      else begin
        Backoff.once b;
        attempt ()
      end
    end
  in
  attempt ()

let writes t = Atomic.get t.seq / 2
