(** Native DSM-Synch / CC-Synch migratory combining lock over OCaml 5
    atomics (Fatourou & Kallimanis, PPoPP'12), with an optional Pilot
    release path (paper §5.3).

    [exec t f] runs the closure [f] inside the lock — possibly on
    another thread (the current combiner) — and returns its result.
    Closures therefore must not assume thread identity.

    With [pilot = true], the combiner publishes "done + return value"
    with a single atomic store of a Pilot-encoded word instead of
    ret-store / fence / flag-store; with seq_cst-only atomics the
    measurable effect on the host is the reduced number of shared
    stores, not fence removal (documented in DESIGN.md). *)

type t

val create : ?pilot:bool -> ?combine_bound:int -> unit -> t

val exec : t -> (unit -> int) -> int
(** Delegate the closure; blocks until it has executed. *)

val combines : t -> int
(** Operations executed on behalf of other threads so far. *)
