type protect =
  | With_ticket of Ticket_lock.t
  | With_dsmsynch of Dsmsynch.t
  | With_ffwd of Ffwd.t * int

let exec p f =
  match p with
  | With_ticket l -> Ticket_lock.with_lock l f
  | With_dsmsynch d -> Dsmsynch.exec d f
  | With_ffwd (s, client) -> Ffwd.request s ~client f

module Queue_d = struct
  type t = int Queue.t

  let create () = Queue.create ()

  let enqueue t p v =
    ignore
      (exec p (fun () ->
           Queue.push v t;
           0))

  let dequeue t p =
    let r = exec p (fun () -> match Queue.take_opt t with Some v -> v | None -> min_int) in
    if r = min_int then None else Some r

  let length t p = exec p (fun () -> Queue.length t)
end

module Stack_d = struct
  type t = int Stack.t

  let create () = Stack.create ()

  let push t p v =
    ignore
      (exec p (fun () ->
           Stack.push v t;
           0))

  let pop t p =
    let r = exec p (fun () -> match Stack.pop_opt t with Some v -> v | None -> min_int) in
    if r = min_int then None else Some r

  let length t p = exec p (fun () -> Stack.length t)
end

module Sorted_list_d = struct
  (* Plain mutable singly-linked sorted list, as in the paper's
     Synchrobench-derived benchmark. *)
  type node = { key : int; mutable next : node option }

  type t = { mutable head : node option; mutable size : int }

  let create () = { head = None; size = 0 }

  (* Returns (predecessor option, first node with key >= k). *)
  let locate t k =
    let rec go prev cur =
      match cur with
      | Some n when n.key < k -> go cur n.next
      | _ -> (prev, cur)
    in
    go None t.head

  let mem t p k =
    exec p (fun () ->
        match locate t k with _, Some n when n.key = k -> 1 | _ -> 0)
    = 1

  let insert t p k =
    exec p (fun () ->
        match locate t k with
        | _, Some n when n.key = k -> 0
        | prev, cur ->
          let node = { key = k; next = cur } in
          (match prev with None -> t.head <- Some node | Some pn -> pn.next <- Some node);
          t.size <- t.size + 1;
          1)
    = 1

  let remove t p k =
    exec p (fun () ->
        match locate t k with
        | prev, Some n when n.key = k ->
          (match prev with None -> t.head <- n.next | Some pn -> pn.next <- n.next);
          t.size <- t.size - 1;
          1
        | _ -> 0)
    = 1

  let length t p = exec p (fun () -> t.size)
end

module Hash_d = struct
  type t = { buckets : Sorted_list_d.t array; protects : protect array }

  let create ~buckets ~protects =
    if buckets <= 0 then invalid_arg "Hash_d.create: buckets";
    if Array.length protects <> buckets then
      invalid_arg "Hash_d.create: one protect per bucket required";
    { buckets = Array.init buckets (fun _ -> Sorted_list_d.create ()); protects }

  let with_protects t protects =
    if Array.length protects <> Array.length t.buckets then
      invalid_arg "Hash_d.with_protects: one protect per bucket required";
    { t with protects }

  let slot t k =
    let b = k mod Array.length t.buckets in
    let b = if b < 0 then b + Array.length t.buckets else b in
    (t.buckets.(b), t.protects.(b))

  let mem t k =
    let l, p = slot t k in
    Sorted_list_d.mem l p k

  let insert t k =
    let l, p = slot t k in
    Sorted_list_d.insert l p k

  let remove t k =
    let l, p = slot t k in
    Sorted_list_d.remove l p k

  let length t =
    Array.to_list t.buckets
    |> List.mapi (fun i l -> Sorted_list_d.length l t.protects.(i))
    |> List.fold_left ( + ) 0
end
