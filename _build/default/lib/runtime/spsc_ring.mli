(** Native single-producer single-consumer ring buffer over OCaml 5
    atomics — the runtime counterpart of the paper's Algorithm 2.

    OCaml exposes only sequentially-consistent atomics, so the
    counter publication already carries (more than) the DMB st
    ordering; the structure still demonstrates Pilot's other benefit,
    fewer shared cache lines (see {!Pilot_channel}). *)

type t

val create : slots:int -> t
(** [slots] must be a power of two. *)

val try_send : t -> int -> bool

val send : t -> int -> unit
(** Blocking send with exponential backoff. *)

val try_recv : t -> int option

val recv : t -> int

val length : t -> int
(** Messages currently buffered (racy snapshot). *)
