(** Native ticket lock over OCaml 5 atomics (Linux-kernel style). *)

type t

val create : unit -> t

val acquire : t -> unit

val release : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** Exception-safe bracket. *)

val holders_served : t -> int
(** Number of completed acquisitions (racy snapshot). *)
