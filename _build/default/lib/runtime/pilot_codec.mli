(** Native Pilot codec over OCaml [int] payloads — the runtime
    counterpart of {!Armb_core.Pilot} (Algorithms 3 & 4 of the paper).

    The sender piggybacks "a new message is here" on the message word
    itself: payloads are shuffled with a pseudo-random pool so
    consecutive equal messages still change the stored word; the rare
    residual collision falls back to toggling a separate flag word.
    One [Atomic.set] of an immediate [int] is a single-copy-atomic
    store in OCaml, which is all the mechanism requires. *)

type sender

type receiver

val make_pool : ?size:int -> seed:int -> unit -> int array

val sender : int array -> sender

val receiver : int array -> receiver

type write_op = Write_data of int | Toggle_flag

val encode : sender -> int -> write_op
(** Exactly one store (to the data word or the flag word) must follow. *)

val try_decode : receiver -> data:int -> flag:int -> int option
(** [Some msg] consumes one message; sender and receiver advance in
    lock-step (single-producer single-consumer per channel). *)

val sent : sender -> int
val received : receiver -> int
