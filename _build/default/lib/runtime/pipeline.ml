type channel_kind = Plain_ring | Pilot

type spec = { channel : channel_kind; slots : int; stages : (int -> int) list }

type chan = {
  send : int -> unit;
  recv : unit -> int;
  try_send : int -> bool;
  try_recv : unit -> int option;
}

let make_chan spec =
  match spec.channel with
  | Plain_ring ->
    let r = Spsc_ring.create ~slots:spec.slots in
    {
      send = Spsc_ring.send r;
      recv = (fun () -> Spsc_ring.recv r);
      try_send = Spsc_ring.try_send r;
      try_recv = (fun () -> Spsc_ring.try_recv r);
    }
  | Pilot ->
    let r = Pilot_channel.create ~slots:spec.slots () in
    {
      send = Pilot_channel.send r;
      recv = (fun () -> Pilot_channel.recv r);
      try_send = Pilot_channel.try_send r;
      try_recv = (fun () -> Pilot_channel.try_recv r);
    }

type result = { outputs : int list; elapsed_ns : float }

let run spec ~inputs =
  if spec.stages = [] then invalid_arg "Pipeline.run: no stages";
  let n_msgs = List.length inputs in
  let n_stages = List.length spec.stages in
  let chans = Array.init (n_stages + 1) (fun _ -> make_chan spec) in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.mapi
      (fun i stage ->
        let inp = chans.(i) and out = chans.(i + 1) in
        Domain.spawn (fun () ->
            for _ = 1 to n_msgs do
              out.send (stage (inp.recv ()))
            done))
      spec.stages
  in
  (* The caller is both source and sink; feeding and draining interleave
     non-blockingly so bounded channels cannot deadlock on one host
     core. *)
  let first = chans.(0) and last = chans.(n_stages) in
  let outputs = ref [] in
  let fed = ref inputs and drained = ref 0 in
  let b = Backoff.create () in
  while !drained < n_msgs do
    let progress = ref false in
    (match !fed with
    | v :: rest ->
      if first.try_send v then begin
        fed := rest;
        progress := true
      end
    | [] -> ());
    (match last.try_recv () with
    | Some v ->
      outputs := v :: !outputs;
      incr drained;
      progress := true
    | None -> ());
    if !progress then Backoff.reset b else Backoff.once b
  done;
  List.iter Domain.join domains;
  let t1 = Unix.gettimeofday () in
  { outputs = List.rev !outputs; elapsed_ns = (t1 -. t0) *. 1e9 }
