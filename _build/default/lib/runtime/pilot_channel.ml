type t = {
  data : int Atomic.t array;
  flags : int Atomic.t array;
  senders : Pilot_codec.sender array;
  receivers : Pilot_codec.receiver array;
  cons : int Atomic.t;
  mask : int;
  mutable sent : int; (* producer-private *)
  mutable received : int; (* consumer-private *)
  mutable fallback_count : int;
}

let create ?(seed = 7) ?(pool_size = 64) ~slots () =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Pilot_channel.create: slots must be a positive power of two";
  let pool = Pilot_codec.make_pool ~size:pool_size ~seed () in
  {
    data = Array.init slots (fun _ -> Atomic.make 0);
    flags = Array.init slots (fun _ -> Atomic.make 0);
    senders = Array.init slots (fun _ -> Pilot_codec.sender pool);
    receivers = Array.init slots (fun _ -> Pilot_codec.receiver pool);
    cons = Atomic.make 0;
    mask = slots - 1;
    sent = 0;
    received = 0;
    fallback_count = 0;
  }

let try_send t v =
  if t.sent - Atomic.get t.cons > t.mask then false
  else begin
    let slot = t.sent land t.mask in
    (match Pilot_codec.encode t.senders.(slot) v with
    | Pilot_codec.Write_data d -> Atomic.set t.data.(slot) d
    | Pilot_codec.Toggle_flag ->
      t.fallback_count <- t.fallback_count + 1;
      let f = t.flags.(slot) in
      Atomic.set f (Atomic.get f lxor 1));
    t.sent <- t.sent + 1;
    true
  end

let send t v =
  let b = Backoff.create () in
  while not (try_send t v) do
    Backoff.once b
  done

let try_recv t =
  let slot = t.received land t.mask in
  let d = Atomic.get t.data.(slot) in
  let f = Atomic.get t.flags.(slot) in
  match Pilot_codec.try_decode t.receivers.(slot) ~data:d ~flag:f with
  | Some v ->
    t.received <- t.received + 1;
    Atomic.set t.cons t.received;
    Some v
  | None -> None

let recv t =
  let b = Backoff.create () in
  let rec go () =
    match try_recv t with
    | Some v -> v
    | None ->
      Backoff.once b;
      go ()
  in
  go ()

let fallbacks t = t.fallback_count
