type t = { next : int Atomic.t; serving : int Atomic.t }

let create () = { next = Atomic.make 0; serving = Atomic.make 0 }

let acquire t =
  let my = Atomic.fetch_and_add t.next 1 in
  if Atomic.get t.serving <> my then begin
    let b = Backoff.create () in
    while Atomic.get t.serving <> my do
      Backoff.once b
    done
  end

let release t = Atomic.set t.serving (Atomic.get t.serving + 1)

let with_lock t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e

let holders_served t = Atomic.get t.serving
