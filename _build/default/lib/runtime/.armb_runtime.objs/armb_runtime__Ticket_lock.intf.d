lib/runtime/ticket_lock.mli:
