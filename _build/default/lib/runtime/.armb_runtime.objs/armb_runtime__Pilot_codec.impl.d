lib/runtime/pilot_codec.ml: Array Int64
