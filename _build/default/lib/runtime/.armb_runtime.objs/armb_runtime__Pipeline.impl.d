lib/runtime/pipeline.ml: Array Backoff Domain List Pilot_channel Spsc_ring Unix
