lib/runtime/backoff.mli:
