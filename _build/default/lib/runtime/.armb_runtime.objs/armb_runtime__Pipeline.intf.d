lib/runtime/pipeline.mli:
