lib/runtime/ffwd.ml: Array Atomic Backoff Domain Pilot_codec
