lib/runtime/backoff.ml: Domain Thread
