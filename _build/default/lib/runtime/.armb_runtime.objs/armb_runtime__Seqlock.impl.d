lib/runtime/seqlock.ml: Array Atomic Backoff
