lib/runtime/pilot_channel.ml: Array Atomic Backoff Pilot_codec
