lib/runtime/pilot_channel.mli:
