lib/runtime/dsmsynch.ml: Atomic Backoff Domain Hashtbl Mutex Pilot_codec
