lib/runtime/delegated.ml: Array Dsmsynch Ffwd List Queue Stack Ticket_lock
