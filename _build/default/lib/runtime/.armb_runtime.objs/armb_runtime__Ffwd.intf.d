lib/runtime/ffwd.mli:
