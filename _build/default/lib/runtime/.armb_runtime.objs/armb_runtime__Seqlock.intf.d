lib/runtime/seqlock.mli:
