lib/runtime/delegated.mli: Dsmsynch Ffwd Ticket_lock
