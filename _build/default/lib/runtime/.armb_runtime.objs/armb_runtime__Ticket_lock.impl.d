lib/runtime/ticket_lock.ml: Atomic Backoff
