lib/runtime/pilot_codec.mli:
