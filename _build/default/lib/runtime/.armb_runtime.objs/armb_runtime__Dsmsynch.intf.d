lib/runtime/dsmsynch.mli:
