(** Exponential backoff for native spin loops. *)

type t

val create : ?min_spins:int -> ?max_spins:int -> unit -> t

val once : t -> unit
(** Spin (with [Domain.cpu_relax]) for the current budget and double it,
    up to the cap.  On a machine with fewer cores than runnable domains
    the cap also yields to the OS scheduler so spinners cannot starve
    the thread they are waiting for. *)

val reset : t -> unit
