(** Native seqlock over OCaml 5 atomics: single writer publishes an
    [int array] snapshot; readers get torn-free copies through the
    sequence-retry protocol.  The payload cells are plain mutable slots;
    the sequence word's seq_cst accesses provide the two fences each
    side needs. *)

type t

val create : words:int -> t

val write : t -> int array -> unit
(** Single writer only. *)

val read : t -> int array
(** Any number of concurrent readers. *)

val writes : t -> int
(** Completed writes (racy snapshot). *)
