(** Native FFWD-style dedicated-server delegation (Roghanchi et al.,
    SOSP'17): a server domain executes closures submitted through
    per-client slots, keeping the protected data's cache lines on one
    core.

    [pilot = true] publishes responses with a single Pilot-encoded
    atomic store (paper Algorithm 6); clients' requests remain
    closure+flag since closures cannot be piggybacked on one word.

    Typical use:
    {[
      let srv = Ffwd.create ~clients:4 () in
      (* from client thread i: *)
      let r = Ffwd.request srv ~client:i (fun () -> critical_section ()) in
      ...
      Ffwd.shutdown srv
    ]} *)

type t

val create : ?pilot:bool -> clients:int -> unit -> t
(** Starts the server domain. *)

val request : t -> client:int -> (unit -> int) -> int
(** Execute the closure on the server; each client slot must be used by
    at most one thread at a time. *)

val shutdown : t -> unit
(** Drain and stop the server domain (idempotent). *)

val served : t -> int
(** Total requests executed. *)
