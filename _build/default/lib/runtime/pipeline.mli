(** Native multi-stage pipeline harness over SPSC channels — the
    runtime counterpart of the dedup experiment (Figure 6(d)).

    Each stage is a function from message to message running in its own
    domain; adjacent stages are connected by either plain rings or
    Pilot channels.  The source feeds a finite stream; [run] returns
    when the sink has consumed everything. *)

type channel_kind = Plain_ring | Pilot

type spec = {
  channel : channel_kind;
  slots : int;  (** per channel; power of two *)
  stages : (int -> int) list;  (** applied in order *)
}

type result = {
  outputs : int list;  (** sink outputs, in order *)
  elapsed_ns : float;
}

val run : spec -> inputs:int list -> result
(** Spawns one domain per stage (the caller acts as source and sink).
    Raises on empty [stages]. *)
