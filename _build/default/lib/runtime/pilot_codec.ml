type sender = {
  s_pool : int array;
  mutable s_cnt : int;
  mutable s_old_data : int;
}

type receiver = {
  r_pool : int array;
  mutable r_cnt : int;
  mutable r_old_data : int;
  mutable r_old_flag : int;
}

let make_pool ?(size = 64) ~seed () =
  if size <= 0 then invalid_arg "Pilot_codec.make_pool";
  (* SplitMix-style mixing, truncated to OCaml's 63-bit int. *)
  let state = ref (Int64.of_int (seed lxor 0x9E37)) in
  Array.init size (fun _ ->
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      let z = !state in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
      Int64.to_int (Int64.shift_right_logical (Int64.logxor z (Int64.shift_right_logical z 31)) 2))

let sender pool =
  if Array.length pool = 0 then invalid_arg "Pilot_codec.sender";
  { s_pool = pool; s_cnt = 0; s_old_data = 0 }

let receiver pool =
  if Array.length pool = 0 then invalid_arg "Pilot_codec.receiver";
  { r_pool = pool; r_cnt = 0; r_old_data = 0; r_old_flag = 0 }

type write_op = Write_data of int | Toggle_flag

let encode s msg =
  let h = s.s_pool.(s.s_cnt mod Array.length s.s_pool) in
  s.s_cnt <- s.s_cnt + 1;
  let shuffled = msg lxor h in
  if shuffled = s.s_old_data then Toggle_flag
  else begin
    s.s_old_data <- shuffled;
    Write_data shuffled
  end

let try_decode r ~data ~flag =
  let fresh =
    if data <> r.r_old_data then begin
      r.r_old_data <- data;
      true
    end
    else if flag <> r.r_old_flag then begin
      r.r_old_flag <- flag;
      true
    end
    else false
  in
  if not fresh then None
  else begin
    let h = r.r_pool.(r.r_cnt mod Array.length r.r_pool) in
    r.r_cnt <- r.r_cnt + 1;
    Some (r.r_old_data lxor h)
  end

let sent s = s.s_cnt

let received r = r.r_cnt
