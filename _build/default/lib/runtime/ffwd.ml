type slot = {
  mutable fn : (unit -> int) option;
  req_flag : int Atomic.t;
  resp_plain : int Atomic.t; (* response sequence number (plain mode) *)
  resp_ret : int Atomic.t;
  resp_pilot : int Atomic.t; (* Pilot data word *)
  resp_pilot_flag : int Atomic.t;
  mutable snd : Pilot_codec.sender; (* server side *)
  mutable rcv : Pilot_codec.receiver; (* client side *)
  mutable client_seq : int; (* client-private *)
  mutable server_seen : int; (* server-private *)
}

type t = {
  pilot : bool;
  slots : slot array;
  stop : bool Atomic.t;
  served_count : int Atomic.t;
  mutable server : unit Domain.t option;
}

let server_loop t =
  let n = Array.length t.slots in
  let continue = ref true in
  while !continue do
    let progressed = ref false in
    for i = 0 to n - 1 do
      let s = t.slots.(i) in
      let flag = Atomic.get s.req_flag in
      if flag <> s.server_seen then begin
        s.server_seen <- flag;
        let fn = match s.fn with Some f -> f | None -> fun () -> 0 in
        let ret = fn () in
        Atomic.incr t.served_count;
        progressed := true;
        if t.pilot then begin
          (* one single-copy-atomic store carries "done" + the value *)
          match Pilot_codec.encode s.snd ret with
          | Pilot_codec.Write_data d -> Atomic.set s.resp_pilot d
          | Pilot_codec.Toggle_flag ->
            Atomic.set s.resp_pilot_flag (Atomic.get s.resp_pilot_flag lxor 1)
        end
        else begin
          Atomic.set s.resp_ret ret;
          Atomic.set s.resp_plain flag
        end
      end
    done;
    if Atomic.get t.stop && not !progressed then begin
      (* double-check nothing arrived between the scan and the flag *)
      let pending = ref false in
      Array.iter (fun s -> if Atomic.get s.req_flag <> s.server_seen then pending := true) t.slots;
      if not !pending then continue := false
    end;
    if not !progressed then Domain.cpu_relax ()
  done

let create ?(pilot = false) ~clients () =
  if clients <= 0 then invalid_arg "Ffwd.create: clients must be positive";
  let pool = Pilot_codec.make_pool ~seed:31 () in
  let slots =
    Array.init clients (fun _ ->
        {
          fn = None;
          req_flag = Atomic.make 0;
          resp_plain = Atomic.make 0;
          resp_ret = Atomic.make 0;
          resp_pilot = Atomic.make 0;
          resp_pilot_flag = Atomic.make 0;
          snd = Pilot_codec.sender pool;
          rcv = Pilot_codec.receiver pool;
          client_seq = 0;
          server_seen = 0;
        })
  in
  let t =
    { pilot; slots; stop = Atomic.make false; served_count = Atomic.make 0; server = None }
  in
  t.server <- Some (Domain.spawn (fun () -> server_loop t));
  t

let request t ~client fn =
  if client < 0 || client >= Array.length t.slots then invalid_arg "Ffwd.request: bad client";
  let s = t.slots.(client) in
  s.fn <- Some fn;
  s.client_seq <- s.client_seq + 1;
  Atomic.set s.req_flag s.client_seq;
  let b = Backoff.create () in
  if t.pilot then begin
    let rec go () =
      let d = Atomic.get s.resp_pilot in
      let f = Atomic.get s.resp_pilot_flag in
      match Pilot_codec.try_decode s.rcv ~data:d ~flag:f with
      | Some ret -> ret
      | None ->
        Backoff.once b;
        go ()
    in
    go ()
  end
  else begin
    while Atomic.get s.resp_plain <> s.client_seq do
      Backoff.once b
    done;
    Atomic.get s.resp_ret
  end

let shutdown t =
  Atomic.set t.stop true;
  match t.server with
  | Some d ->
    t.server <- None;
    Domain.join d
  | None -> ()

let served t = Atomic.get t.served_count
