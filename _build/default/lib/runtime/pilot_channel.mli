(** Native SPSC channel with Pilot applied (paper §4.3/§4.4): each ring
    slot is a Pilot channel — the consumer detects arrival by the slot
    word changing, so there is no producer-side counter at all; the only
    other shared word is the consumer counter guarding slot reuse.

    Compared to {!Spsc_ring}, a delivery touches one shared slot word
    instead of a slot plus the producer counter — Pilot's
    cache-line-reduction benefit, observable even under OCaml's seq_cst
    atomics. *)

type t

val create : ?seed:int -> ?pool_size:int -> slots:int -> unit -> t
(** [slots] must be a power of two.  [pool_size] sets the shuffle-pool
    length (default 64); a pool of 1 makes equal consecutive payloads
    collide deterministically — useful for exercising the fallback. *)

val try_send : t -> int -> bool

val send : t -> int -> unit

val try_recv : t -> int option

val recv : t -> int

val fallbacks : t -> int
(** Deliveries that used the flag-toggle collision path. *)
