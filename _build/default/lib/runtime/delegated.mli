(** Data structures protected by a pluggable lock discipline — the
    native counterparts of the paper's Figure 8 benchmarks.

    A [protect] value says how critical sections run: in place under a
    {!Ticket_lock}, migrated through a {!Dsmsynch} combiner, or shipped
    to an {!Ffwd} server.  The structures themselves are deliberately
    plain sequential OCaml — the protection discipline supplies all
    mutual exclusion, exactly as in the paper's methodology. *)

type protect =
  | With_ticket of Ticket_lock.t
  | With_dsmsynch of Dsmsynch.t
  | With_ffwd of Ffwd.t * int  (** server handle and this thread's client slot *)

val exec : protect -> (unit -> int) -> int
(** Run a critical section under the discipline. *)

(** {2 Queue (FIFO) of ints} *)

module Queue_d : sig
  type t

  val create : unit -> t
  val enqueue : t -> protect -> int -> unit
  val dequeue : t -> protect -> int option
  val length : t -> protect -> int
end

(** {2 Stack (LIFO) of ints} *)

module Stack_d : sig
  type t

  val create : unit -> t
  val push : t -> protect -> int -> unit
  val pop : t -> protect -> int option
  val length : t -> protect -> int
end

(** {2 Sorted int list (set semantics)} *)

module Sorted_list_d : sig
  type t

  val create : unit -> t
  val mem : t -> protect -> int -> bool
  val insert : t -> protect -> int -> bool
  val remove : t -> protect -> int -> bool
  val length : t -> protect -> int
end

(** {2 Hash table with per-bucket locks} *)

module Hash_d : sig
  type t

  val create : buckets:int -> protects:protect array -> t
  (** [protects] supplies one discipline per bucket (length must equal
      [buckets]). *)

  val with_protects : t -> protect array -> t
  (** A view over the same buckets with different disciplines — use it
      to give each thread its own FFWD client slots. *)

  val mem : t -> int -> bool
  val insert : t -> int -> bool
  val remove : t -> int -> bool
  val length : t -> int
end
