module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Pilot = Armb_core.Pilot
module Rng = Armb_sim.Rng

type queue_kind = Locked_queue | Ring | Ring_pilot

let queue_name = function Locked_queue -> "Q" | Ring -> "RB" | Ring_pilot -> "RB-P"

let all_queues = [ Locked_queue; Ring; Ring_pilot ]

type workload = Small | Middle | Large

let workload_name = function Small -> "Small" | Middle -> "Middle" | Large -> "Large"

let all_workloads = [ Small; Middle; Large ]

type spec = {
  cfg : Armb_cpu.Config.t;
  queue : queue_kind;
  workload : workload;
  cores : int list;
  slots : int;
}

let default_spec cfg ~queue ~workload =
  { cfg; queue; workload; cores = [ 0; 8; 16; 24 ]; slots = 16 }

type result = { throughput : float; cycles : int; chunks : int }

let chunks_of = function Small -> 800 | Middle -> 1500 | Large -> 3000

(* ---------- composable channels ---------- *)

type chan = { send : Core.t -> int64 -> unit; recv : Core.t -> int64 }

(* dedup's original buffer: a ring whose both ends take a ticket lock. *)
let locked_chan m ~slots =
  let lock = Armb_sync.Ticket_lock.create m in
  let ctr = Machine.alloc_line m in
  (* head at +0, tail at +8 *)
  let buf = Machine.alloc_lines m slots in
  let rec send (c : Core.t) v =
    Armb_sync.Ticket_lock.acquire lock c;
    let tail = Int64.to_int (Core.await c (Core.load c (ctr + 8))) in
    let head = Int64.to_int (Core.await c (Core.load c ctr)) in
    if tail - head >= slots then begin
      Armb_sync.Ticket_lock.release lock c;
      Core.compute c 60;
      send c v
    end
    else begin
      Core.store c (buf + (tail mod slots * 64)) v;
      Core.store c (ctr + 8) (Int64.of_int (tail + 1));
      Armb_sync.Ticket_lock.release lock c
    end
  in
  let rec recv (c : Core.t) =
    Armb_sync.Ticket_lock.acquire lock c;
    let tail = Int64.to_int (Core.await c (Core.load c (ctr + 8))) in
    let head = Int64.to_int (Core.await c (Core.load c ctr)) in
    if tail = head then begin
      Armb_sync.Ticket_lock.release lock c;
      Core.compute c 60;
      recv c
    end
    else begin
      let v = Core.await c (Core.load c (buf + (head mod slots * 64))) in
      Core.store c ctr (Int64.of_int (head + 1));
      Armb_sync.Ticket_lock.release lock c;
      v
    end
  in
  { send; recv }

(* Lock-free SPSC ring, best legal barriers (DMB ld - DMB st). *)
let ring_chan m ~slots =
  let prod = Machine.alloc_line m and cons = Machine.alloc_line m in
  let buf = Machine.alloc_lines m slots in
  let sent = ref 0 and received = ref 0 in
  let send (c : Core.t) v =
    let i = !sent in
    let avail w = Int64.to_int w > i - slots in
    let w = Core.await c (Core.load c cons) in
    if not (avail w) then ignore (Core.spin_until c cons avail);
    Core.barrier c (Barrier.Dmb Ld);
    Core.store c (buf + (i mod slots * 64)) v;
    Core.barrier c (Barrier.Dmb St);
    Core.store c prod (Int64.of_int (i + 1));
    incr sent
  in
  let recv (c : Core.t) =
    let i = !received in
    ignore (Core.spin_until c prod (fun w -> Int64.to_int w > i));
    Core.barrier c (Barrier.Dmb Ld);
    let v = Core.await c (Core.load c (buf + (i mod slots * 64))) in
    Core.store c cons (Int64.of_int (i + 1));
    incr received;
    v
  in
  { send; recv }

(* Pilot ring: arrival is piggybacked on the slot word itself. *)
let pilot_chan m ~slots ~seed =
  let cons = Machine.alloc_line m in
  let buf = Machine.alloc_lines m slots in
  let pool = Pilot.make_pool ~seed () in
  let senders = Array.init slots (fun _ -> Pilot.sender pool) in
  let receivers = Array.init slots (fun _ -> Pilot.receiver pool) in
  let sent = ref 0 and received = ref 0 in
  let send (c : Core.t) v =
    let i = !sent in
    let avail w = Int64.to_int w > i - slots in
    let w = Core.await c (Core.load c cons) in
    if not (avail w) then ignore (Core.spin_until c cons avail);
    Core.barrier c (Barrier.Dmb Ld);
    let slot = i mod slots in
    (match Pilot.encode senders.(slot) v with
    | Pilot.Write_data d -> Core.store c (buf + (slot * 64)) d
    | Pilot.Toggle_flag ->
      let fa = buf + (slot * 64) + 8 in
      let cur = Core.await c (Core.load c fa) in
      Core.store c fa (Int64.logxor cur 1L));
    incr sent
  in
  let recv (c : Core.t) =
    let i = !received in
    let slot = i mod slots in
    let d_addr = buf + (slot * 64) in
    let v =
      Core.spin_poll c d_addr (fun () ->
          let d = Core.await c (Core.load c d_addr) in
          let f = Core.await c (Core.load c (d_addr + 8)) in
          Pilot.try_decode receivers.(slot) ~data:d ~flag:f)
    in
    Core.store c cons (Int64.of_int (i + 1));
    incr received;
    v
  in
  { send; recv }

let make_chan spec m ~seed =
  match spec.queue with
  | Locked_queue -> locked_chan m ~slots:spec.slots
  | Ring -> ring_chan m ~slots:spec.slots
  | Ring_pilot -> pilot_chan m ~slots:spec.slots ~seed

(* ---------- the pipeline ---------- *)

(* Chunk descriptor: (id << 8) | size, size in 1..16 "blocks". *)
let desc ~id ~size = Int64.of_int ((id lsl 8) lor size)

let desc_id d = Int64.to_int (Int64.shift_right_logical d 8)

let desc_size d = Int64.to_int (Int64.logand d 0xFFL)

let run spec =
  (match spec.cores with
  | [ _; _; _; _ ] -> ()
  | _ -> invalid_arg "Dedup.run: need exactly four stage cores");
  let n = chunks_of spec.workload in
  let m = Machine.create spec.cfg in
  let c12 = make_chan spec m ~seed:101 in
  let c23 = make_chan spec m ~seed:102 in
  let c34 = make_chan spec m ~seed:103 in
  let rng = Rng.create 4242 in
  let sizes = Array.init n (fun _ -> 1 + Rng.int rng 16) in
  (* Stage work models dedup's compute per chunk (file I/O removed). *)
  let chunker (c : Core.t) =
    for id = 0 to n - 1 do
      let size = sizes.(id) in
      Core.compute c (90 + (10 * size));
      c12.send c (desc ~id ~size)
    done
  in
  let hasher (c : Core.t) =
    for _ = 0 to n - 1 do
      let d = c12.recv c in
      Core.compute c (130 + (14 * desc_size d));
      c23.send c d
    done
  in
  let compressor (c : Core.t) =
    for _ = 0 to n - 1 do
      let d = c23.recv c in
      Core.compute c (200 + (22 * desc_size d));
      c34.send c d
    done
  in
  let total_blocks = ref 0 in
  let gatherer (c : Core.t) =
    for expect = 0 to n - 1 do
      let d = c34.recv c in
      if desc_id d <> expect then
        failwith
          (Printf.sprintf "Dedup: chunk %d arrived out of order (got id %d)" expect
             (desc_id d));
      if desc_size d <> sizes.(expect) then
        failwith (Printf.sprintf "Dedup: chunk %d corrupted" expect);
      total_blocks := !total_blocks + desc_size d;
      Core.compute c 40
    done
  in
  (match spec.cores with
  | [ a; b; c; d ] ->
    Machine.spawn m ~core:a chunker;
    Machine.spawn m ~core:b hasher;
    Machine.spawn m ~core:c compressor;
    Machine.spawn m ~core:d gatherer
  | _ -> assert false);
  Machine.run_exn m;
  let expected_blocks = Array.fold_left ( + ) 0 sizes in
  if !total_blocks <> expected_blocks then
    failwith (Printf.sprintf "Dedup: gathered %d blocks, expected %d" !total_blocks expected_blocks);
  { throughput = Machine.throughput m ~ops:n; cycles = Machine.elapsed m; chunks = n }
