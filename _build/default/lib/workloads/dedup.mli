(** PARSEC-dedup-style pipeline on the simulator (Figure 6(d)).

    The paper evaluates Pilot on dedup's inter-stage communication after
    removing file I/O; we reproduce the same structure synthetically: a
    four-stage pipeline (chunk -> hash -> compress -> gather) of one
    thread per stage, connected by three queues.  Each chunk carries a
    64-bit descriptor; stage work is proportional to the chunk size
    drawn from a deterministic distribution.

    Queue variants, as in the paper:
    - [Locked_queue] ("Q"): a shared ring protected by a ticket lock on
      both ends — dedup's original communication buffer;
    - [Ring] ("RB"): the lock-free SPSC ring with the best legal
      barriers (DMB ld - DMB st);
    - [Ring_pilot] ("RB-P"): the Pilot ring.

    Every chunk descriptor is checksummed end-to-end, so a run also
    validates the channels. *)

type queue_kind = Locked_queue | Ring | Ring_pilot

val queue_name : queue_kind -> string
val all_queues : queue_kind list

type workload = Small | Middle | Large

val workload_name : workload -> string
val all_workloads : workload list

type spec = {
  cfg : Armb_cpu.Config.t;
  queue : queue_kind;
  workload : workload;
  cores : int list;  (** four stage cores, in pipeline order *)
  slots : int;
}

val default_spec : Armb_cpu.Config.t -> queue:queue_kind -> workload:workload -> spec
(** Stages on cores 0,8,16,24 of the same NUMA node (kunpeng916). *)

type result = {
  throughput : float;  (** chunks per second through the pipeline *)
  cycles : int;
  chunks : int;
}

val run : spec -> result
