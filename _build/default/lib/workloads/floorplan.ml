module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Rng = Armb_sim.Rng

type input = Input5 | Input15 | Input20

let input_name = function Input5 -> "input.5" | Input15 -> "input.15" | Input20 -> "input.20"

let all_inputs = [ Input5; Input15; Input20 ]

type spec = {
  cfg : Armb_cpu.Config.t;
  input : input;
  workers : int;
  pilot : bool;
  node_cost : int;
}

let default_spec cfg ~input = { cfg; input; workers = 12; pilot = false; node_cost = 30 }

type result = { cycles : int; best_area : int; nodes_explored : int; lock_updates : int }

(* Cells: alternative (w, h) shapes, deterministic per input size. *)
let cells_of input =
  let n = match input with Input5 -> 6 | Input15 -> 9 | Input20 -> 11 in
  let rng = Rng.create (n * 977) in
  Array.init n (fun _ ->
      let w = 1 + Rng.int rng 6 and h = 1 + Rng.int rng 6 in
      [| (w, h); (h, w) |])

(* Placing shape (w, h) into envelope (ew, eh): extend right or stack
   below. *)
let extend (ew, eh) (w, h) = [ (ew + w, max eh h); (max ew w, eh + h) ]

(* Host-side sequential branch and bound: the validation oracle. *)
let sequential_best cells =
  let n = Array.length cells in
  let best = ref max_int in
  let rec go i env =
    let ew, eh = env in
    if ew * eh >= !best then ()
    else if i = n then best := ew * eh
    else
      Array.iter (fun shape -> List.iter (go (i + 1)) (extend env shape)) cells.(i)
  in
  go 0 (0, 0);
  !best

(* Enumerate the first [depth] levels to get parallel root tasks. *)
let root_tasks cells ~depth =
  let rec go i env acc =
    if i >= depth then (i, env) :: acc
    else
      Array.fold_left
        (fun acc shape -> List.fold_left (fun acc env' -> go (i + 1) env' acc) acc (extend env shape))
        acc cells.(i)
  in
  go 0 (0, 0) []

let run spec =
  if spec.workers <= 0 then invalid_arg "Floorplan.run: no workers";
  let cells = cells_of spec.input in
  let n = Array.length cells in
  let oracle = sequential_best cells in
  let m = Machine.create spec.cfg in
  let best_line = Machine.alloc_line m in
  Armb_mem.Memsys.commit_store (Machine.mem m) ~addr:best_line (Int64.of_int max_int);
  let updates = ref 0 in
  let nodes = ref 0 in
  (* The bound-update critical section: classic test-and-update. *)
  let critical (c : Core.t) ~client:_ area =
    let cur = Core.await c (Core.load c best_line) in
    if Int64.compare area cur < 0 then begin
      Core.store c best_line area;
      incr updates;
      area
    end
    else cur
  in
  let lock =
    Armb_sync.Dsmsynch.create m ~parties:spec.workers ~pilot:spec.pilot ~critical ()
  in
  let tasks = root_tasks cells ~depth:(min 2 n) in
  let worker me (c : Core.t) =
    (* A locally-cached bound, refreshed from shared memory as the
       search descends (plain loads — BOTS reads the bound unlocked). *)
    let local_best = ref max_int in
    let rec go i env =
      Core.compute c spec.node_cost;
      incr nodes;
      let ew, eh = env in
      let area = ew * eh in
      if area < !local_best then begin
        if i = n then begin
          let b = Int64.to_int (Core.await c (Core.load c best_line)) in
          local_best := min !local_best b;
          if area < !local_best then begin
            let nb = Armb_sync.Dsmsynch.exec lock c ~me (Int64.of_int area) in
            local_best := min !local_best (Int64.to_int nb)
          end
        end
        else begin
          (* refresh the bound occasionally on interior nodes *)
          if !nodes land 63 = 0 then begin
            let b = Int64.to_int (Core.await c (Core.load c best_line)) in
            local_best := min !local_best b
          end;
          Array.iter (fun shape -> List.iter (go (i + 1)) (extend env shape)) cells.(i)
        end
      end
    in
    List.iteri (fun k (i, env) -> if k mod spec.workers = me then go i env) tasks
  in
  List.iteri
    (fun i core -> Machine.spawn m ~core (worker i))
    (List.init spec.workers (fun i -> i));
  Machine.run_exn m;
  let final = Int64.to_int (Armb_mem.Memsys.load_value (Machine.mem m) ~addr:best_line) in
  if final <> oracle then
    failwith (Printf.sprintf "Floorplan: parallel best %d != sequential best %d" final oracle);
  {
    cycles = Machine.elapsed m;
    best_area = final;
    nodes_explored = !nodes;
    lock_updates = !updates;
  }
