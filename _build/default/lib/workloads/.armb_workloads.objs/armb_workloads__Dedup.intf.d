lib/workloads/dedup.mli: Armb_cpu
