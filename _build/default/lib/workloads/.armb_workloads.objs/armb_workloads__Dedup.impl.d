lib/workloads/dedup.ml: Armb_core Armb_cpu Armb_sim Armb_sync Array Int64 Printf
