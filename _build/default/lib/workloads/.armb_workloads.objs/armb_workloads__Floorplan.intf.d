lib/workloads/floorplan.mli: Armb_cpu
