lib/workloads/floorplan.ml: Armb_cpu Armb_mem Armb_sim Armb_sync Array Int64 List Printf
