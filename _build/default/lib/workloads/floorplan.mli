(** BOTS-floorplan-style branch-and-bound on the simulator
    (Figure 8(d)).

    Computes the minimum-area floorplan of a set of cells, each with
    alternative shapes, placed by a divide envelope rule (extend right
    or stack below).  Workers explore statically-partitioned subtrees;
    the global best bound lives in shared simulated memory and is read
    with plain loads (pruning) and updated through a DSM-Synch lock —
    with or without Pilot — mirroring how BOTS integrates the paper's
    migratory server lock via OpenMP critical sections.

    The search result is validated against a host-side sequential
    branch-and-bound, so every run is also a correctness test.  Input
    sizes are scaled-down stand-ins for BOTS's input.5/15/20
    (documented in DESIGN.md). *)

type input = Input5 | Input15 | Input20

val input_name : input -> string
val all_inputs : input list

type spec = {
  cfg : Armb_cpu.Config.t;
  input : input;
  workers : int;
  pilot : bool;  (** Pilot applied to the bound-update lock *)
  node_cost : int;  (** simulated cycles of placement arithmetic per tree node *)
}

val default_spec : Armb_cpu.Config.t -> input:input -> spec

type result = {
  cycles : int;  (** makespan — the paper reports execution time *)
  best_area : int;
  nodes_explored : int;
  lock_updates : int;
}

val run : spec -> result
