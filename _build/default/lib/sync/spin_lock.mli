(** Simulated test-and-set spinlock with exponential backoff and
    pluggable barrier choices — the simplest in-place lock, used as a
    baseline against the ticket lock and the queue locks.

    Acquire is a CAS loop with acquire semantics (or a plain CAS plus
    an explicit barrier); release is the paper's §5.1 pattern: a
    barrier ordering the critical section's accesses before the store
    that frees the lock. *)

type t

val create : Armb_cpu.Machine.t -> t

val acquire : ?use_ldar:bool -> t -> Armb_cpu.Core.t -> unit
(** [use_ldar] (default true) attaches acquire semantics to the CAS;
    otherwise a DMB ld follows the successful CAS. *)

val release : ?barrier:Armb_core.Ordering.t -> t -> Armb_cpu.Core.t -> unit
(** [barrier] defaults to [DMB full]; [Stlr_release] frees the lock
    with a store-release. *)

val try_acquire : t -> Armb_cpu.Core.t -> bool
(** Single CAS attempt (with acquire semantics). *)
