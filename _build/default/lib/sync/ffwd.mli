(** FFWD-style dedicated-server delegation lock (Roghanchi et al.,
    SOSP'17) on the simulator — §5.1/§5.3 of the paper, Figures 7(b),
    7(c) and 8.

    A server thread scans per-client request lines; on a toggled request
    flag it executes the client's critical section locally and publishes
    the response (Algorithm 5).  The two barriers are pluggable:

    - [read_req] (line 4) orders the request-flag load before the
      argument load and the critical section's reads;
    - [publish_resp] (line 7) orders the critical section's stores and
      the return-value store before the response-flag store — the
      barrier that lands strictly after an RMR (the response line lives
      in the client's cache).

    Like FFWD, the server batches: all requests found pending in one
    scan share a single publish barrier ([batch]).

    With [pilot = true] the lock applies Algorithm 6: return values
    (and request arguments) are piggybacked on single words via the
    {!Armb_core.Pilot} codec, so each direction moves exactly one cache
    line and no barrier follows an RMR.

    The module is composable: create any number of instances in one
    {!Armb_cpu.Machine.t}, give each client thread an index, and run one
    {!server_body} (serving one or several instances) on a dedicated
    core.  The critical section is a dispatcher fixed at creation;
    requests pass a 62-bit argument (payloads must stay non-negative
    below 2^61 so Pilot packing cannot alias). *)

type barriers = { read_req : Armb_core.Ordering.t; publish_resp : Armb_core.Ordering.t }

val default_barriers : barriers
(** LDAR / DMB st — the best-performing legal combination. *)

type critical = Armb_cpu.Core.t -> client:int -> int64 -> int64

type t

val create :
  Armb_cpu.Machine.t ->
  num_clients:int ->
  ?barriers:barriers ->
  ?pilot:bool ->
  ?batch:bool ->
  critical:critical ->
  unit ->
  t

val request : t -> Armb_cpu.Core.t -> client:int -> int64 -> int64
(** Submit an argument from this client slot and wait for the return
    value.  Each client slot must be used by a single thread. *)

val client_done : t -> client:int -> unit
(** Tell the server this client will submit no more requests; the
    server body returns once every client of every instance it serves
    is done and drained. *)

val server_body : t list -> Armb_cpu.Core.t -> unit
(** Server loop serving one or more instances (spawn on its own core). *)

val fallbacks : t -> int
(** Pilot flag-toggle deliveries so far. *)

(** {2 Figure 7 microbenchmark wrapper} *)

type spec = {
  cfg : Armb_cpu.Config.t;
  server_core : int;
  client_cores : int list;
  rounds : int;
  interval_nops : int;
  barriers : barriers;
  pilot : bool;
  batch : bool;
}

val default_spec : Armb_cpu.Config.t -> server_core:int -> client_cores:int list -> spec

type result = { throughput : float; cycles : int; fallbacks : int }

val run : ?check:bool -> spec -> result
(** Critical section: bump a server-local counter line, return
    argument+counter; [check] (default true) verifies every return
    value reflects a unique counter slot. *)
