module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Ordering = Armb_core.Ordering

(* qnode layout (one line per slot): locked flag at +0 (1 = wait),
   next-slot + 1 at +8 (0 = none).  The tail word holds slot + 1. *)
type t = { tail : int; nodes : int array }

let create m ~slots =
  if slots <= 0 then invalid_arg "Mcs_lock.create";
  { tail = Machine.alloc_line m; nodes = Array.init slots (fun _ -> Machine.alloc_line m) }

let check_slot t slot =
  if slot < 0 || slot >= Array.length t.nodes then invalid_arg "Mcs_lock: bad slot"

let acquire t (c : Core.t) ~slot =
  check_slot t slot;
  let my = t.nodes.(slot) in
  Core.store c my 1L;
  Core.store c (my + 8) 0L;
  (* publish the reset before linking *)
  Core.barrier c (Barrier.Dmb St);
  let prev =
    Int64.to_int
      (Core.await c (Core.rmw ~acq:true ~rel:true c t.tail (fun _ -> Int64.of_int (slot + 1))))
  in
  if prev <> 0 then begin
    (* enqueue behind prev and spin on our own flag *)
    Core.store c (t.nodes.(prev - 1) + 8) (Int64.of_int (slot + 1));
    ignore (Core.spin_until c my (Int64.equal 0L));
    Core.barrier c (Barrier.Dmb Ld)
  end

let release ?(barrier = Ordering.Bar (Barrier.Dmb Full)) t (c : Core.t) ~slot =
  check_slot t slot;
  let my = t.nodes.(slot) in
  let apply () =
    match barrier with
    | Ordering.No_barrier -> ()
    | Ordering.Bar b -> Core.barrier c b
    | other ->
      invalid_arg ("Mcs_lock.release: unsupported barrier " ^ Ordering.to_string other)
  in
  let nxt = Int64.to_int (Core.await c (Core.load c (my + 8))) in
  if nxt <> 0 then begin
    apply ();
    Core.store c t.nodes.(nxt - 1) 0L
  end
  else begin
    (* no known successor: try to swing the tail back to empty *)
    let old = Core.await c (Core.cas ~rel:true c t.tail ~expected:(Int64.of_int (slot + 1)) ~desired:0L) in
    if not (Int64.equal old (Int64.of_int (slot + 1))) then begin
      (* a successor is linking itself; wait for the link *)
      let nxt = Int64.to_int (Core.spin_until c (my + 8) (fun v -> not (Int64.equal v 0L))) in
      apply ();
      Core.store c t.nodes.(nxt - 1) 0L
    end
  end
