(** Cache-line allocator for simulated data structures.

    Pre-allocates a pool of 64-byte lines in a {!Armb_cpu.Machine.t} and
    hands them out through a host-side free list.  Allocation is meant
    to be called from inside a critical section (the protecting lock
    serializes it), mirroring a per-structure node pool. *)

type t

val create : Armb_cpu.Machine.t -> capacity:int -> t

val alloc : t -> int
(** Fresh line address.  Raises [Failure] when the pool is exhausted. *)

val free : t -> int -> unit

val in_use : t -> int
val capacity : t -> int
