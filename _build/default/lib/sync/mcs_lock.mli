(** Simulated MCS queue lock (Mellor-Crummey & Scott, TOCS'91) — the
    paper cites it as the scalable in-place lock family used by the
    Linux kernel.

    Each thread spins on its {e own} qnode's flag instead of a global
    word, so a release invalidates exactly one waiter's cache line —
    contrast with the ticket lock's broadcast.  The data→flag handoff
    in [release] is again the paper's RMR-then-barrier pattern.

    Each participating thread must use a distinct [slot] (its qnode
    index) and may not re-enter. *)

type t

val create : Armb_cpu.Machine.t -> slots:int -> t
(** [slots] = maximum number of participating threads. *)

val acquire : t -> Armb_cpu.Core.t -> slot:int -> unit

val release : ?barrier:Armb_core.Ordering.t -> t -> Armb_cpu.Core.t -> slot:int -> unit
(** [barrier] defaults to [DMB full]. *)
