(** Simulated seqlock — the classic read-mostly publication pattern and
    a third heavy user of barriers beyond rings and mutexes (the
    "memory-based communication" family of the paper's §2.4).

    The writer bumps a sequence word to odd, updates the payload words,
    and bumps it back to even; readers sample the sequence, read the
    payload, re-check the sequence, and retry on any change.  On a
    weakly-ordered machine {e four} orderings are needed: writer
    seq→data and data→seq (store-store: DMB st), reader seq→data and
    data→seq (load-load: DMB ld / LDAR / address dependencies).
    [protected = false] drops them all, letting torn reads through —
    used by tests to demonstrate the hazard, exactly like the paper's
    "Ideal" references. *)

type t

val create : Armb_cpu.Machine.t -> words:int -> t
(** A payload of [words] 8-byte fields, one cache line each (plus the
    sequence line) — partial visibility of a multi-line payload is the
    hazard the protocol guards against. *)

val write : ?protected:bool -> t -> Armb_cpu.Core.t -> int64 array -> unit
(** Publish a new payload snapshot ([protected] defaults to true). *)

val read : ?protected:bool -> t -> Armb_cpu.Core.t -> int64 array
(** Retry loop returning a consistent snapshot (when protected). *)

val torn : t -> int64 array -> bool
(** Is a snapshot inconsistent (fields from different writes)?  The
    writer encodes a checksum in the last field to make this decidable. *)

val make_payload : t -> version:int -> int64 array
(** A well-formed payload for a given version number. *)

val retries : t -> int
(** Total reader retries so far (host-side accounting). *)

val data_addr : t -> int -> int
(** Address of the i-th payload field (for placement in tests). *)
