module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Ordering = Armb_core.Ordering

(* next-ticket and now-serving words share the lock's cache line, as in
   compact kernel ticket locks. *)
type t = { next_addr : int; serving_addr : int }

let create m =
  let base = Machine.alloc_line m in
  { next_addr = base; serving_addr = base + 8 }

let acquire t (c : Core.t) =
  let my = Core.await c (Core.fetch_add ~acq:true c t.next_addr 1L) in
  let serving = Core.await c (Core.load c t.serving_addr) in
  if not (Int64.equal serving my) then
    ignore (Core.spin_until c t.serving_addr (Int64.equal my));
  (* Acquire semantics for the successful spin read. *)
  Core.barrier c (Barrier.Dmb Ld)

let release ?(barrier = Ordering.Bar (Barrier.Dmb Full)) t (c : Core.t) =
  let bump v = Int64.add v 1L in
  let serving = Core.await c (Core.load c t.serving_addr) in
  match barrier with
  | Ordering.No_barrier -> Core.store c t.serving_addr (bump serving)
  | Ordering.Stlr_release -> Core.stlr c t.serving_addr (bump serving)
  | Ordering.Bar b ->
    Core.barrier c b;
    Core.store c t.serving_addr (bump serving)
  | other ->
    invalid_arg ("Ticket_lock.release: unsupported barrier " ^ Ordering.to_string other)

let has_waiters t (c : Core.t) =
  let next = Core.await c (Core.load c t.next_addr) in
  let serving = Core.await c (Core.load c t.serving_addr) in
  Int64.compare next (Int64.add serving 1L) > 0

type spec = {
  cfg : Armb_cpu.Config.t;
  cores : int list;
  acquisitions : int;
  cs_lines : int;
  interval_nops : int;
  release_barrier : Ordering.t;
}

let default_spec cfg ~cores =
  {
    cfg;
    cores;
    acquisitions = 300;
    cs_lines = 1;
    interval_nops = 300;
    release_barrier = Ordering.Bar (Barrier.Dmb Full);
  }

type result = { throughput : float; cycles : int }

let run spec =
  if spec.cores = [] then invalid_arg "Ticket_lock.run: no cores";
  let m = Machine.create spec.cfg in
  let lock = create m in
  let shared = Machine.alloc_lines m (max 1 spec.cs_lines) in
  (* Host-side mutual-exclusion oracle. *)
  let owner = ref None in
  let total = List.length spec.cores * spec.acquisitions in
  let body (c : Core.t) =
    for _ = 1 to spec.acquisitions do
      acquire lock c;
      (match !owner with
      | Some o ->
        failwith
          (Printf.sprintf "Ticket_lock: mutual exclusion violated (%d and %d inside)" o
             (Core.id c))
      | None -> owner := Some (Core.id c));
      (* Read-modify a configurable number of global lines. *)
      for k = 0 to spec.cs_lines - 1 do
        let a = shared + (k * 64) in
        let v = Core.await c (Core.load c a) in
        Core.store c a (Int64.add v 1L)
      done;
      Core.compute c 2;
      owner := None;
      release ~barrier:spec.release_barrier lock c;
      Core.compute c spec.interval_nops
    done
  in
  List.iter (fun core -> Machine.spawn m ~core body) spec.cores;
  Machine.run_exn m;
  { throughput = Machine.throughput m ~ops:total; cycles = Machine.elapsed m }
