(** Simulated ticket lock (after the Linux kernel's implementation),
    with the unlock-path barrier pluggable — the in-place-lock study of
    §5.1/§5.2 (Figure 7(a)).

    Acquire: atomic fetch-add on the next-ticket word, then spin on the
    now-serving word, then an acquire barrier (DMB ld) so critical-
    section accesses cannot hoist above the lock.  Release: the chosen
    barrier, then a plain store bumping now-serving.  When the critical
    section's last access was a remote memory reference, the release
    barrier lands strictly after an RMR — the paper's Observation 2
    cost, measurable by comparing release barriers. *)

type t

val create : Armb_cpu.Machine.t -> t

val acquire : t -> Armb_cpu.Core.t -> unit

val release : ?barrier:Armb_core.Ordering.t -> t -> Armb_cpu.Core.t -> unit
(** [barrier] defaults to [DMB full] ("Normal").  [No_barrier] is the
    unsound reference used by Figure 7(a)'s "Remove barrier after RMR";
    [Stlr_release] releases with STLR. *)

val has_waiters : t -> Armb_cpu.Core.t -> bool
(** Are there tickets beyond the one currently served?  Only meaningful
    when called by the lock holder (used by the cohort lock to decide
    whether to hand off within the node). *)

(** {2 Figure 7(a) microbenchmark} *)

type spec = {
  cfg : Armb_cpu.Config.t;
  cores : int list;  (** competing threads *)
  acquisitions : int;  (** per thread *)
  cs_lines : int;  (** global cache lines read+modified in the CS *)
  interval_nops : int;  (** think time after release *)
  release_barrier : Armb_core.Ordering.t;
}

val default_spec : Armb_cpu.Config.t -> cores:int list -> spec

type result = {
  throughput : float;  (** critical sections per second *)
  cycles : int;
}

val run : spec -> result
(** Runs the microbenchmark and verifies mutual exclusion (a host-side
    in-CS counter must never see two owners); raises [Failure] if
    violated. *)
