(** Simulated NUMA-aware cohort lock (ticket-ticket flavour of Dice,
    Marathe & Shavit's lock cohorting) — the optimization the paper's
    §5.3 points to for in-place locks: "barriers' overhead can be
    reduced by limiting the contention to one NUMA node for a period,
    which diminishes the appearances of cross-NUMA-node accesses".

    Structure: one ticket lock per NUMA node plus a global ticket lock.
    A releasing holder that sees local waiters (and remaining cohort
    budget) hands the {e global} ownership to its node-mate by releasing
    only the local lock; the lock's hot lines then migrate within one
    node, so the release barrier's snoops stay inside the bi-section
    boundary.  The budget bounds unfairness to remote nodes. *)

type t

val create : Armb_cpu.Machine.t -> ?max_cohort:int -> unit -> t
(** [max_cohort] (default 32) bounds consecutive same-node handoffs. *)

val acquire : t -> Armb_cpu.Core.t -> unit
(** The calling core's NUMA node is derived from its id. *)

val release : ?barrier:Armb_core.Ordering.t -> t -> Armb_cpu.Core.t -> unit

val handoffs : t -> int
(** Same-node handoffs performed (global lock retained). *)

val global_transfers : t -> int
(** Releases that let the global lock go to another node. *)
