(** Lock-protected data structures on the simulator and the Figure 8
    benchmark harness: Queue and Stack under a global lock (8a), a
    sorted linked list (8b), and a hash table with per-bucket locks
    (8c), each runnable under a ticket lock, DSM-Synch(-Pilot) or
    FFWD(-Pilot).

    The structures live in simulated memory (every node is a cache
    line), so critical-section length and locality behave as on the
    modelled machine: under delegation the structure stays hot in the
    server/combiner's cache, under the in-place lock it migrates to
    each lock holder — the effect behind Figure 8's rankings.

    Every run validates against a host-side shadow model (lock-order
    equivalence holds because critical sections execute atomically with
    respect to each other), so these benchmarks are also correctness
    tests of the lock implementations. *)

type lock_kind = Ticket | Dsynch | Dsynch_pilot | Ffwd_lock | Ffwd_pilot

val lock_name : lock_kind -> string
val all_locks : lock_kind list

type spec = {
  cfg : Armb_cpu.Config.t;
  lock : lock_kind;
  workers : int;  (** worker thread count (cores assigned automatically) *)
  ops_per_worker : int;
  interval_nops : int;
}

val default_spec : Armb_cpu.Config.t -> lock:lock_kind -> spec

type result = {
  throughput : float;  (** operations per second *)
  cycles : int;
  ops : int;
}

val run_queue : spec -> result
(** Workers alternate enqueue / dequeue under one global lock. *)

val run_stack : spec -> result
(** Workers alternate push / pop under one global lock. *)

val run_sorted_list : preload:int -> spec -> result
(** Sorted linked list: 10 searches, then 1 insert and 1 remove, on
    keys drawn from twice the preload range. *)

val run_hash_table : buckets:int -> preload:int -> spec -> result
(** Hash table of [buckets] sorted lists, one lock per bucket; FFWD
    variants dedicate up to 8 server cores, shared round-robin among
    buckets. *)
