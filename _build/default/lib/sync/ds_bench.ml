module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Topology = Armb_mem.Topology
module Rng = Armb_sim.Rng

type lock_kind = Ticket | Dsynch | Dsynch_pilot | Ffwd_lock | Ffwd_pilot

let lock_name = function
  | Ticket -> "Ticket"
  | Dsynch -> "DSynch"
  | Dsynch_pilot -> "DSynch-P"
  | Ffwd_lock -> "FFWD"
  | Ffwd_pilot -> "FFWD-P"

let all_locks = [ Ticket; Dsynch; Dsynch_pilot; Ffwd_lock; Ffwd_pilot ]

type spec = {
  cfg : Armb_cpu.Config.t;
  lock : lock_kind;
  workers : int;
  ops_per_worker : int;
  interval_nops : int;
}

let default_spec cfg ~lock =
  { cfg; lock; workers = 16; ops_per_worker = 120; interval_nops = 200 }

type result = { throughput : float; cycles : int; ops : int }

(* A lock instance paired with the dispatcher it protects. *)
type instance =
  | I_ticket of Ticket_lock.t * Ffwd.critical
  | I_dsynch of Dsmsynch.t
  | I_ffwd of Ffwd.t

let is_ffwd = function Ffwd_lock | Ffwd_pilot -> true | Ticket | Dsynch | Dsynch_pilot -> false

let is_pilot = function Ffwd_pilot | Dsynch_pilot -> true | Ticket | Dsynch | Ffwd_lock -> false

let make_instance spec m ~critical =
  match spec.lock with
  | Ticket -> I_ticket (Ticket_lock.create m, critical)
  | Dsynch | Dsynch_pilot ->
    I_dsynch
      (Dsmsynch.create m ~parties:spec.workers ~pilot:(is_pilot spec.lock) ~critical ())
  | Ffwd_lock | Ffwd_pilot ->
    I_ffwd
      (Ffwd.create m ~num_clients:spec.workers ~pilot:(is_pilot spec.lock) ~critical ())

let exec_op inst (c : Core.t) ~me arg =
  match inst with
  | I_ticket (l, critical) ->
    Ticket_lock.acquire l c;
    let r = critical c ~client:me arg in
    Ticket_lock.release l c;
    r
  | I_dsynch d -> Dsmsynch.exec d c ~me arg
  | I_ffwd f -> Ffwd.request f c ~client:me arg

(* Core layout: FFWD servers first, then workers. *)
let layout spec ~servers =
  let total = Topology.num_cores spec.cfg.Armb_cpu.Config.topo in
  let needed = servers + spec.workers in
  if needed > total then
    invalid_arg
      (Printf.sprintf "Ds_bench: %d cores needed but platform has %d" needed total);
  ( List.init servers (fun i -> i),
    List.init spec.workers (fun i -> servers + i) )

let finish m ~ops =
  Machine.run_exn m;
  { throughput = Machine.throughput m ~ops; cycles = Machine.elapsed m; ops }

(* ---------- Queue and Stack (global lock, array-backed) ---------- *)

(* arg encoding: op * 2^32 + operand; rets stay below 2^61. *)
let encode ~op ~v = Int64.add (Int64.shift_left (Int64.of_int op) 32) (Int64.of_int v)

let decode arg =
  (Int64.to_int (Int64.shift_right_logical arg 32), Int64.to_int (Int64.logand arg 0xFFFFFFFFL))

let run_fifo_like ~is_queue spec =
  let servers = if is_ffwd spec.lock then 1 else 0 in
  let server_cores, worker_cores = layout spec ~servers in
  let m = Machine.create spec.cfg in
  let cap = 4096 in
  let ctr = Machine.alloc_line m in
  (* head count at +0, tail/top count at +8 *)
  let buf = Machine.alloc_lines m 64 in
  let shadow : int Queue.t = Queue.create () in
  let shadow_stack : int list ref = ref [] in
  let critical (c : Core.t) ~client:_ arg =
    let op, v = decode arg in
    let tail = Int64.to_int (Core.await c (Core.load c (ctr + 8))) in
    let head = Int64.to_int (Core.await c (Core.load c ctr)) in
    match op with
    | 0 ->
      (* enqueue / push *)
      if tail - head >= cap then 0L
      else begin
        let slot = buf + (tail mod 64 * 64) in
        Core.store c slot (Int64.of_int v);
        Core.store c (ctr + 8) (Int64.of_int (tail + 1));
        if is_queue then Queue.push v shadow else shadow_stack := v :: !shadow_stack;
        1L
      end
    | _ ->
      (* dequeue / pop *)
      if tail = head then 0L
      else if is_queue then begin
        let slot = buf + (head mod 64 * 64) in
        let v' = Core.await c (Core.load c slot) in
        Core.store c ctr (Int64.of_int (head + 1));
        let expect = Queue.pop shadow in
        if Int64.to_int v' <> expect then
          failwith
            (Printf.sprintf "Ds_bench queue: dequeued %Ld, shadow says %d" v' expect);
        v'
      end
      else begin
        let slot = buf + ((tail - 1) mod 64 * 64) in
        let v' = Core.await c (Core.load c slot) in
        Core.store c (ctr + 8) (Int64.of_int (tail - 1));
        (match !shadow_stack with
        | e :: rest ->
          if Int64.to_int v' <> e then
            failwith (Printf.sprintf "Ds_bench stack: popped %Ld, shadow says %d" v' e);
          shadow_stack := rest
        | [] -> failwith "Ds_bench stack: shadow empty on pop");
        v'
      end
  in
  let inst = make_instance spec m ~critical in
  let worker me (c : Core.t) =
    for i = 0 to spec.ops_per_worker - 1 do
      let op = i land 1 in
      let v = ((me + 1) * 100000) + i in
      ignore (exec_op inst c ~me (encode ~op ~v));
      Core.compute c spec.interval_nops
    done;
    match inst with I_ffwd f -> Ffwd.client_done f ~client:me | _ -> ()
  in
  List.iteri (fun i core -> Machine.spawn m ~core (worker i)) worker_cores;
  (match inst with
  | I_ffwd f -> List.iter (fun core -> Machine.spawn m ~core (Ffwd.server_body [ f ])) server_cores
  | _ -> ());
  finish m ~ops:(spec.workers * spec.ops_per_worker)

let run_queue spec = run_fifo_like ~is_queue:true spec

let run_stack spec = run_fifo_like ~is_queue:false spec

(* ---------- Sorted linked list ---------- *)

(* Node: key at +0, next-node address at +8; 0 = end of list.  The head
   pointer lives in its own line.  A host-side shadow (sorted list of
   keys) validates every operation. *)
let list_ops m ~alloc ~head ~shadow =
  (* Traverse until the first node with key >= k; returns (prev, cur)
     addresses, prev = 0 when cur is the first node. *)
  let locate (c : Core.t) k =
    let rec go prev cur =
      if cur = 0 then (prev, 0)
      else
        let key = Int64.to_int (Core.await c (Core.load c cur)) in
        if key >= k then (prev, cur)
        else
          let nxt = Int64.to_int (Core.await c (Core.load c (cur + 8))) in
          go cur nxt
    in
    let first = Int64.to_int (Core.await c (Core.load c head)) in
    go 0 first
  in
  let key_at (c : Core.t) cur = Int64.to_int (Core.await c (Core.load c cur)) in
  let search c k =
    let _, cur = locate c k in
    let found = cur <> 0 && key_at c cur = k in
    let shadow_found = List.mem k !shadow in
    if found <> shadow_found then
      failwith (Printf.sprintf "Ds_bench list: search %d = %b, shadow %b" k found shadow_found);
    if found then 1L else 0L
  in
  let insert c k =
    let prev, cur = locate c k in
    if cur <> 0 && key_at c cur = k then 0L
    else begin
      let node = Sim_alloc.alloc alloc in
      Core.store c node (Int64.of_int k);
      Core.store c (node + 8) (Int64.of_int cur);
      if prev = 0 then Core.store c head (Int64.of_int node)
      else Core.store c (prev + 8) (Int64.of_int node);
      shadow := List.sort compare (k :: !shadow);
      1L
    end
  in
  let remove c k =
    let prev, cur = locate c k in
    if cur = 0 || key_at c cur <> k then 0L
    else begin
      let nxt = Int64.to_int (Core.await c (Core.load c (cur + 8))) in
      if prev = 0 then Core.store c head (Int64.of_int nxt)
      else Core.store c (prev + 8) (Int64.of_int nxt);
      Sim_alloc.free alloc cur;
      shadow := List.filter (fun x -> x <> k) !shadow;
      1L
    end
  in
  ignore m;
  (search, insert, remove)

let preload_list m ~alloc ~head ~shadow keys =
  (* Host-side preload: build the chain directly in memory. *)
  let mem = Machine.mem m in
  let sorted = List.sort_uniq compare keys in
  let nodes = List.map (fun k -> (k, Sim_alloc.alloc alloc)) sorted in
  let rec link = function
    | (k, a) :: ((_, b) :: _ as rest) ->
      Armb_mem.Memsys.commit_store mem ~addr:a (Int64.of_int k);
      Armb_mem.Memsys.commit_store mem ~addr:(a + 8) (Int64.of_int b);
      link rest
    | [ (k, a) ] ->
      Armb_mem.Memsys.commit_store mem ~addr:a (Int64.of_int k);
      Armb_mem.Memsys.commit_store mem ~addr:(a + 8) 0L
    | [] -> ()
  in
  link nodes;
  (match nodes with
  | (_, first) :: _ -> Armb_mem.Memsys.commit_store mem ~addr:head (Int64.of_int first)
  | [] -> ());
  shadow := sorted

(* 10 searches, then 1 insert and 1 remove (the paper's mix). *)
let list_op_of_step rng ~key_range step =
  let k = 1 + Rng.int rng key_range in
  if step mod 12 = 10 then (1, k) else if step mod 12 = 11 then (2, k) else (0, k)

let run_sorted_list ~preload spec =
  let servers = if is_ffwd spec.lock then 1 else 0 in
  let server_cores, worker_cores = layout spec ~servers in
  let m = Machine.create spec.cfg in
  let head = Machine.alloc_line m in
  let alloc = Sim_alloc.create m ~capacity:(preload + (2 * spec.workers) + 64) in
  let shadow = ref [] in
  let key_range = max 2 (2 * preload) in
  let rng0 = Rng.create 2024 in
  preload_list m ~alloc ~head ~shadow
    (List.init preload (fun _ -> 1 + Rng.int rng0 key_range));
  let search, insert, remove = list_ops m ~alloc ~head ~shadow in
  let critical (c : Core.t) ~client:_ arg =
    let op, k = decode arg in
    match op with 0 -> search c k | 1 -> insert c k | _ -> remove c k
  in
  let inst = make_instance spec m ~critical in
  let worker me (c : Core.t) =
    let rng = Rng.create ((me * 7919) + 17) in
    for step = 0 to spec.ops_per_worker - 1 do
      let op, k = list_op_of_step rng ~key_range step in
      ignore (exec_op inst c ~me (encode ~op ~v:k));
      Core.compute c spec.interval_nops
    done;
    match inst with I_ffwd f -> Ffwd.client_done f ~client:me | _ -> ()
  in
  List.iteri (fun i core -> Machine.spawn m ~core (worker i)) worker_cores;
  (match inst with
  | I_ffwd f -> List.iter (fun core -> Machine.spawn m ~core (Ffwd.server_body [ f ])) server_cores
  | _ -> ());
  finish m ~ops:(spec.workers * spec.ops_per_worker)

(* ---------- Hash table: per-bucket sorted lists and locks ---------- *)

let run_hash_table ~buckets ~preload spec =
  if buckets <= 0 then invalid_arg "Ds_bench.run_hash_table: buckets";
  let servers = if is_ffwd spec.lock then min buckets 8 else 0 in
  let server_cores, worker_cores = layout spec ~servers in
  let m = Machine.create spec.cfg in
  let key_range = max 2 (2 * preload) in
  let heads = Array.init buckets (fun _ -> Machine.alloc_line m) in
  let allocs =
    Array.init buckets (fun _ ->
        Sim_alloc.create m ~capacity:((preload / buckets) + (2 * spec.workers) + 32))
  in
  let shadows = Array.init buckets (fun _ -> ref []) in
  (* Preload uniformly across buckets. *)
  let rng0 = Rng.create 31337 in
  let preload_keys = List.init preload (fun _ -> 1 + Rng.int rng0 key_range) in
  let by_bucket = Array.make buckets [] in
  List.iter (fun k -> by_bucket.(k mod buckets) <- k :: by_bucket.(k mod buckets)) preload_keys;
  Array.iteri
    (fun b keys ->
      preload_list m ~alloc:allocs.(b) ~head:heads.(b) ~shadow:shadows.(b) keys)
    by_bucket;
  let instances =
    Array.init buckets (fun b ->
        let search, insert, remove =
          list_ops m ~alloc:allocs.(b) ~head:heads.(b) ~shadow:shadows.(b)
        in
        let critical (c : Core.t) ~client:_ arg =
          let op, k = decode arg in
          match op with 0 -> search c k | 1 -> insert c k | _ -> remove c k
        in
        make_instance spec m ~critical)
  in
  let worker me (c : Core.t) =
    let rng = Rng.create ((me * 104729) + 5) in
    for step = 0 to spec.ops_per_worker - 1 do
      let op, k = list_op_of_step rng ~key_range step in
      let b = k mod buckets in
      ignore (exec_op instances.(b) c ~me (encode ~op ~v:k));
      Core.compute c spec.interval_nops
    done;
    Array.iter
      (function I_ffwd f -> Ffwd.client_done f ~client:me | _ -> ())
      instances
  in
  List.iteri (fun i core -> Machine.spawn m ~core (worker i)) worker_cores;
  if servers > 0 then begin
    (* Distribute bucket instances round-robin over the server cores. *)
    let per_server = Array.make servers [] in
    Array.iteri
      (fun b inst ->
        match inst with
        | I_ffwd f -> per_server.(b mod servers) <- f :: per_server.(b mod servers)
        | _ -> ())
      instances;
    List.iteri
      (fun s core -> Machine.spawn m ~core (Ffwd.server_body per_server.(s)))
      server_cores
  end;
  finish m ~ops:(spec.workers * spec.ops_per_worker)
