(** Head-to-head comparison of the in-place lock family (spinlock,
    ticket, MCS, NUMA-aware cohort) on the simulator — the extension
    study suggested by the paper's §5.3: a NUMA-aware lock keeps the
    release barrier's snoops inside one bi-section boundary, so its
    advantage should show up both in throughput and in cross-node
    coherence traffic. *)

type lock_kind = Spin | Ticket | Mcs | Cohort

val lock_name : lock_kind -> string
val all_locks : lock_kind list

type spec = {
  cfg : Armb_cpu.Config.t;
  lock : lock_kind;
  cores : int list;
  acquisitions : int;  (** per thread *)
  cs_lines : int;
  interval_nops : int;
}

val default_spec : Armb_cpu.Config.t -> lock:lock_kind -> cores:int list -> spec

type result = {
  throughput : float;  (** critical sections per second *)
  cycles : int;
  cross_node_per_cs : float;  (** cross-node transfers per critical section *)
}

val run : spec -> result
(** Verifies the protected counter saw every increment exactly once. *)
