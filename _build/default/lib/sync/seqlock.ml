module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine

type t = {
  seq : int;
  data : int;
  words : int;
  mutable retry_count : int;
}

let create m ~words =
  if words < 2 || words > 8 then invalid_arg "Seqlock.create: words must be in 2..8";
  (* one line per field: a realistic multi-line payload, whose partial
     visibility is exactly what the protocol must guard against *)
  { seq = Machine.alloc_line m; data = Machine.alloc_lines m words; words; retry_count = 0 }

(* Payloads carry their own checksum in the last word so tearing is
   detectable by tests. *)
let checksum fields =
  let n = Array.length fields in
  let acc = ref 0L in
  for i = 0 to n - 2 do
    acc := Int64.add (Int64.mul !acc 31L) fields.(i)
  done;
  !acc

let make_payload t ~version =
  let p = Array.init t.words (fun i -> Int64.of_int ((version * 1000) + i)) in
  p.(t.words - 1) <- checksum p;
  p

let torn t snapshot =
  Array.length snapshot <> t.words
  || not (Int64.equal snapshot.(t.words - 1) (checksum snapshot))

let write ?(protected = true) t (c : Core.t) payload =
  if Array.length payload <> t.words then invalid_arg "Seqlock.write: wrong payload arity";
  let seq = Core.await c (Core.load c t.seq) in
  (* enter: odd sequence *)
  Core.store c t.seq (Int64.add seq 1L);
  if protected then Core.barrier c (Barrier.Dmb St);
  Array.iteri (fun i v -> Core.store c (t.data + (i * 64)) v) payload;
  if protected then Core.barrier c (Barrier.Dmb St);
  (* leave: even sequence *)
  Core.store c t.seq (Int64.add seq 2L)

let read ?(protected = true) t (c : Core.t) =
  let rec attempt () =
    let s1 = Core.await c (Core.load c t.seq) in
    if Int64.rem s1 2L = 1L then begin
      (* writer in progress: wait for the sequence to move *)
      t.retry_count <- t.retry_count + 1;
      ignore (Core.spin_until c t.seq (fun v -> not (Int64.equal v s1)));
      attempt ()
    end
    else begin
      if protected then Core.barrier c (Barrier.Dmb Ld);
      (* issue all payload loads, then await: they may overlap *)
      let toks = Array.init t.words (fun i -> Core.load c (t.data + (i * 64))) in
      let snapshot = Array.map (fun tok -> Core.await c tok) toks in
      if protected then Core.barrier c (Barrier.Dmb Ld);
      let s2 = Core.await c (Core.load c t.seq) in
      if Int64.equal s1 s2 then snapshot
      else begin
        t.retry_count <- t.retry_count + 1;
        attempt ()
      end
    end
  in
  attempt ()

let retries t = t.retry_count

let data_addr t i =
  if i < 0 || i >= t.words then invalid_arg "Seqlock.data_addr";
  t.data + (i * 64)
