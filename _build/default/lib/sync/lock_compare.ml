module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Memsys = Armb_mem.Memsys

type lock_kind = Spin | Ticket | Mcs | Cohort

let lock_name = function
  | Spin -> "Spinlock"
  | Ticket -> "Ticket"
  | Mcs -> "MCS"
  | Cohort -> "Cohort"

let all_locks = [ Spin; Ticket; Mcs; Cohort ]

type spec = {
  cfg : Armb_cpu.Config.t;
  lock : lock_kind;
  cores : int list;
  acquisitions : int;
  cs_lines : int;
  interval_nops : int;
}

let default_spec cfg ~lock ~cores =
  { cfg; lock; cores; acquisitions = 150; cs_lines = 1; interval_nops = 300 }

type result = { throughput : float; cycles : int; cross_node_per_cs : float }

type ops = { acq : Core.t -> slot:int -> unit; rel : Core.t -> slot:int -> unit }

let make_ops spec m =
  match spec.lock with
  | Spin ->
    let l = Spin_lock.create m in
    { acq = (fun c ~slot:_ -> Spin_lock.acquire l c); rel = (fun c ~slot:_ -> Spin_lock.release l c) }
  | Ticket ->
    let l = Ticket_lock.create m in
    {
      acq = (fun c ~slot:_ -> Ticket_lock.acquire l c);
      rel = (fun c ~slot:_ -> Ticket_lock.release l c);
    }
  | Mcs ->
    let l = Mcs_lock.create m ~slots:(List.length spec.cores) in
    { acq = (fun c ~slot -> Mcs_lock.acquire l c ~slot); rel = (fun c ~slot -> Mcs_lock.release l c ~slot) }
  | Cohort ->
    let l = Cohort_lock.create m () in
    { acq = (fun c ~slot:_ -> Cohort_lock.acquire l c); rel = (fun c ~slot:_ -> Cohort_lock.release l c) }

let run spec =
  if spec.cores = [] then invalid_arg "Lock_compare.run: no cores";
  let m = Machine.create spec.cfg in
  let ops = make_ops spec m in
  let shared = Machine.alloc_lines m (max 1 spec.cs_lines) in
  let total = List.length spec.cores * spec.acquisitions in
  let owner = ref None in
  let body slot (c : Core.t) =
    for _ = 1 to spec.acquisitions do
      ops.acq c ~slot;
      (match !owner with
      | Some o ->
        failwith
          (Printf.sprintf "%s: mutual exclusion violated (%d and %d inside)"
             (lock_name spec.lock) o (Core.id c))
      | None -> owner := Some (Core.id c));
      for k = 0 to spec.cs_lines - 1 do
        let a = shared + (k * 64) in
        let v = Core.await c (Core.load c a) in
        Core.store c a (Int64.add v 1L)
      done;
      Core.compute c 2;
      owner := None;
      ops.rel c ~slot;
      Core.compute c spec.interval_nops
    done
  in
  List.iteri (fun slot core -> Machine.spawn m ~core (body slot)) spec.cores;
  Memsys.reset_counters (Machine.mem m);
  Machine.run_exn m;
  (* the first CS line absorbed one increment per critical section *)
  let count = Memsys.load_value (Machine.mem m) ~addr:shared in
  if spec.cs_lines > 0 && Int64.to_int count <> total then
    failwith
      (Printf.sprintf "%s: counter %Ld, expected %d" (lock_name spec.lock) count total);
  let ctr = Memsys.counters (Machine.mem m) in
  {
    throughput = Machine.throughput m ~ops:total;
    cycles = Machine.elapsed m;
    cross_node_per_cs = float_of_int ctr.Memsys.cross_node_transfers /. float_of_int total;
  }
