lib/sync/ffwd.mli: Armb_core Armb_cpu
