lib/sync/ds_bench.ml: Armb_cpu Armb_mem Armb_sim Array Dsmsynch Ffwd Int64 List Printf Queue Sim_alloc Ticket_lock
