lib/sync/dsmsynch.mli: Armb_cpu
