lib/sync/ticket_lock.ml: Armb_core Armb_cpu Int64 List Printf
