lib/sync/lock_compare.ml: Armb_cpu Armb_mem Cohort_lock Int64 List Mcs_lock Printf Spin_lock Ticket_lock
