lib/sync/sim_alloc.mli: Armb_cpu
