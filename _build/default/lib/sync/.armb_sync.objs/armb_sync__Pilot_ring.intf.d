lib/sync/pilot_ring.mli: Armb_cpu Armb_mem
