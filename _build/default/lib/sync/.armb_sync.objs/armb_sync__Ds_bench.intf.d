lib/sync/ds_bench.mli: Armb_cpu
