lib/sync/ffwd.ml: Armb_core Armb_cpu Array Int64 List Printf
