lib/sync/mcs_lock.mli: Armb_core Armb_cpu
