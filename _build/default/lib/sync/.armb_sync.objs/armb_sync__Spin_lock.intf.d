lib/sync/spin_lock.mli: Armb_core Armb_cpu
