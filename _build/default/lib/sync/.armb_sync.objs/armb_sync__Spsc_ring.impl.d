lib/sync/spsc_ring.ml: Armb_core Armb_cpu Armb_mem Int64 List Printf
