lib/sync/spsc_ring.mli: Armb_core Armb_cpu Armb_mem
