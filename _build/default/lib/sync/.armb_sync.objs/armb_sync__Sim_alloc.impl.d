lib/sync/sim_alloc.ml: Armb_cpu List
