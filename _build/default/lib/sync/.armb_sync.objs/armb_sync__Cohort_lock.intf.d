lib/sync/cohort_lock.mli: Armb_core Armb_cpu
