lib/sync/cohort_lock.ml: Armb_core Armb_cpu Armb_mem Array Int64 Ticket_lock
