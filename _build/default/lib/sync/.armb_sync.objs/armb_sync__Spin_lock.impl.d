lib/sync/spin_lock.ml: Armb_core Armb_cpu Int64
