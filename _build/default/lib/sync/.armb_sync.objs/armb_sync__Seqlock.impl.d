lib/sync/seqlock.ml: Armb_cpu Array Int64
