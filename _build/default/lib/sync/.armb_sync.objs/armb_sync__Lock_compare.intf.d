lib/sync/lock_compare.mli: Armb_cpu
