lib/sync/pilot_ring.ml: Armb_core Armb_cpu Armb_mem Array Int64 List Printf Queue
