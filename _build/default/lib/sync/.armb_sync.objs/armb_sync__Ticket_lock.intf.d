lib/sync/ticket_lock.mli: Armb_core Armb_cpu
