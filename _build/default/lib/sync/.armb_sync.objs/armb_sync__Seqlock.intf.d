lib/sync/seqlock.mli: Armb_cpu
