lib/sync/dsmsynch.ml: Armb_core Armb_cpu Armb_mem Array Hashtbl Int64 List Printf
