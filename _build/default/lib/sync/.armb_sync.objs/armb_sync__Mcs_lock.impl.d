lib/sync/mcs_lock.ml: Armb_core Armb_cpu Array Int64
