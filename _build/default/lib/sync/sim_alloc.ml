type t = { mutable free_list : int list; capacity : int; mutable used : int }

let create m ~capacity =
  if capacity <= 0 then invalid_arg "Sim_alloc.create";
  let base = Armb_cpu.Machine.alloc_lines m capacity in
  { free_list = List.init capacity (fun i -> base + (i * 64)); capacity; used = 0 }

let alloc t =
  match t.free_list with
  | [] -> failwith "Sim_alloc: pool exhausted"
  | a :: rest ->
    t.free_list <- rest;
    t.used <- t.used + 1;
    a

let free t a =
  t.free_list <- a :: t.free_list;
  t.used <- t.used - 1

let in_use t = t.used

let capacity t = t.capacity
