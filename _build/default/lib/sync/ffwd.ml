module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Ordering = Armb_core.Ordering
module Pilot = Armb_core.Pilot

type barriers = { read_req : Ordering.t; publish_resp : Ordering.t }

let default_barriers =
  { read_req = Ordering.Ldar_acquire; publish_resp = Ordering.Bar (Barrier.Dmb St) }

type critical = Core.t -> client:int -> int64 -> int64

(* Request line: flag word at +0, argument word at +8.
   Response line: flag word at +0, return word at +8.
   Pilot mode uses word +0 as the piggybacked channel and +8 as the
   collision-fallback flag, in both directions. *)
type t = {
  num_clients : int;
  barriers : barriers;
  pilot : bool;
  batch : bool;
  critical : critical;
  req : int array;
  resp : int array;
  req_send : Pilot.sender array;
  req_recv : Pilot.receiver array;
  resp_send : Pilot.sender array;
  resp_recv : Pilot.receiver array;
  mutable fallback_count : int;
  (* host-side bookkeeping *)
  client_seq : int array; (* requests submitted per client *)
  served_seq : int array; (* requests served per client *)
  done_flags : bool array;
  server_old_flag : int64 array;
}

let create m ~num_clients ?(barriers = default_barriers) ?(pilot = false) ?(batch = true)
    ~critical () =
  if num_clients <= 0 then invalid_arg "Ffwd.create: no clients";
  let pool = Pilot.make_pool ~seed:11 () in
  {
    num_clients;
    barriers;
    pilot;
    batch;
    critical;
    req = Array.init num_clients (fun _ -> Machine.alloc_line m);
    resp = Array.init num_clients (fun _ -> Machine.alloc_line m);
    req_send = Array.init num_clients (fun _ -> Pilot.sender pool);
    req_recv = Array.init num_clients (fun _ -> Pilot.receiver pool);
    resp_send = Array.init num_clients (fun _ -> Pilot.sender pool);
    resp_recv = Array.init num_clients (fun _ -> Pilot.receiver pool);
    fallback_count = 0;
    client_seq = Array.make num_clients 0;
    served_seq = Array.make num_clients 0;
    done_flags = Array.make num_clients false;
    server_old_flag = Array.make num_clients 0L;
  }

let fallbacks t = t.fallback_count

let pilot_send t (c : Core.t) sender ~data_addr v =
  match Pilot.encode sender v with
  | Pilot.Write_data w -> Core.store c data_addr w
  | Pilot.Toggle_flag ->
    t.fallback_count <- t.fallback_count + 1;
    let fa = data_addr + 8 in
    let cur = Core.await c (Core.load c fa) in
    Core.store c fa (Int64.logxor cur 1L)

let pilot_wait (c : Core.t) receiver ~data_addr =
  Core.spin_poll c data_addr (fun () ->
      let d = Core.await c (Core.load c data_addr) in
      let f = Core.await c (Core.load c (data_addr + 8)) in
      Pilot.try_decode receiver ~data:d ~flag:f)

let request t (c : Core.t) ~client arg =
  if client < 0 || client >= t.num_clients then invalid_arg "Ffwd.request: bad client";
  t.client_seq.(client) <- t.client_seq.(client) + 1;
  if t.pilot then begin
    pilot_send t c t.req_send.(client) ~data_addr:t.req.(client) arg;
    pilot_wait c t.resp_recv.(client) ~data_addr:t.resp.(client)
  end
  else begin
    (* argument, barrier, flag toggle *)
    Core.store c (t.req.(client) + 8) arg;
    Core.barrier c (Barrier.Dmb St);
    let new_flag = Int64.of_int t.client_seq.(client) in
    Core.store c t.req.(client) new_flag;
    ignore (Core.spin_until c t.resp.(client) (Int64.equal new_flag));
    Core.barrier c (Barrier.Dmb Ld);
    Core.await c (Core.load c (t.resp.(client) + 8))
  end

let client_done t ~client = t.done_flags.(client) <- true

let apply_read_req (c : Core.t) approach ~flag_addr ~flag =
  match approach with
  | Ordering.No_barrier -> ()
  | Ordering.Bar b -> Core.barrier c b
  | Ordering.Ldar_acquire -> ignore (Core.await c (Core.ldar c flag_addr))
  | Ordering.Ctrl_isb ->
    Core.compute c 1;
    if Int64.equal (Int64.logxor flag flag) 0L then Core.barrier c Barrier.Isb
  | Ordering.Addr_dep -> Core.compute c 1
  | other -> invalid_arg ("Ffwd: unsupported read_req approach " ^ Ordering.to_string other)

let apply_publish (c : Core.t) approach =
  match approach with
  | Ordering.No_barrier -> ()
  | Ordering.Bar b -> Core.barrier c b
  | other ->
    invalid_arg ("Ffwd: unsupported publish_resp approach " ^ Ordering.to_string other)

(* One scan of one instance; returns true if any client is still live. *)
let scan_instance t (c : Core.t) =
  let live = ref false in
  let batched = ref [] in
  for idx = 0 to t.num_clients - 1 do
    let pending = t.served_seq.(idx) < t.client_seq.(idx) in
    if (not t.done_flags.(idx)) || pending then live := true;
    if t.pilot then begin
      let d = Core.await c (Core.load c t.req.(idx)) in
      let f = Core.await c (Core.load c (t.req.(idx) + 8)) in
      match Pilot.try_decode t.req_recv.(idx) ~data:d ~flag:f with
      | None -> ()
      | Some arg ->
        (* Algorithm 6: run the CS, one cheap barrier (no RMR precedes
           it), then the piggybacked response store. *)
        let ret = t.critical c ~client:idx arg in
        t.served_seq.(idx) <- t.served_seq.(idx) + 1;
        Core.barrier c (Barrier.Dmb St);
        pilot_send t c t.resp_send.(idx) ~data_addr:t.resp.(idx) ret
    end
    else begin
      let flag = Core.await c (Core.load c t.req.(idx)) in
      if not (Int64.equal flag t.server_old_flag.(idx)) then begin
        t.server_old_flag.(idx) <- flag;
        apply_read_req c t.barriers.read_req ~flag_addr:t.req.(idx) ~flag;
        let arg_addr =
          match t.barriers.read_req with
          | Ordering.Addr_dep -> t.req.(idx) + 8 + Int64.to_int (Int64.logxor flag flag)
          | _ -> t.req.(idx) + 8
        in
        let arg = Core.await c (Core.load c arg_addr) in
        let ret = t.critical c ~client:idx arg in
        t.served_seq.(idx) <- t.served_seq.(idx) + 1;
        (* the return-value store: the RMR the publish barrier follows *)
        Core.store c (t.resp.(idx) + 8) ret;
        if t.batch then batched := (idx, flag) :: !batched
        else begin
          apply_publish c t.barriers.publish_resp;
          Core.store c t.resp.(idx) flag
        end
      end
    end
  done;
  (match !batched with
  | [] -> ()
  | l ->
    (* FFWD-style batching: one publish barrier for the whole scan. *)
    apply_publish c t.barriers.publish_resp;
    List.iter (fun (idx, flag) -> Core.store c t.resp.(idx) flag) (List.rev l));
  !live

let server_body instances (c : Core.t) =
  if instances = [] then invalid_arg "Ffwd.server_body: no instances";
  let live = ref true in
  while !live do
    live := false;
    List.iter (fun t -> if scan_instance t c then live := true) instances;
    Core.compute c 4
  done

(* ---------- Figure 7 microbenchmark ---------- *)

type spec = {
  cfg : Armb_cpu.Config.t;
  server_core : int;
  client_cores : int list;
  rounds : int;
  interval_nops : int;
  barriers : barriers;
  pilot : bool;
  batch : bool;
}

let default_spec cfg ~server_core ~client_cores =
  {
    cfg;
    server_core;
    client_cores;
    rounds = 200;
    interval_nops = 300;
    barriers = default_barriers;
    pilot = false;
    batch = true;
  }

type result = { throughput : float; cycles : int; fallbacks : int }

let run ?(check = true) spec =
  let n = List.length spec.client_cores in
  if n = 0 then invalid_arg "Ffwd.run: no clients";
  if List.mem spec.server_core spec.client_cores then
    invalid_arg "Ffwd.run: server core also a client";
  let m = Machine.create spec.cfg in
  let counter_line = Machine.alloc_line m in
  let count = ref 0 in
  let critical (c : Core.t) ~client:_ arg =
    let v = Core.await c (Core.load c counter_line) in
    Core.store c counter_line (Int64.add v 1L);
    Core.compute c 2;
    incr count;
    Int64.add arg v
  in
  let t =
    create m ~num_clients:n ~barriers:spec.barriers ~pilot:spec.pilot ~batch:spec.batch
      ~critical ()
  in
  let client idx (c : Core.t) =
    for round = 0 to spec.rounds - 1 do
      let arg = Int64.of_int (((idx + 1) * 1000000) + round) in
      let ret = request t c ~client:idx arg in
      if check && Int64.sub ret arg < 0L then
        failwith (Printf.sprintf "Ffwd: client %d round %d: bad return %Ld" idx round ret);
      Core.compute c spec.interval_nops
    done;
    client_done t ~client:idx
  in
  List.iteri (fun i core -> Machine.spawn m ~core (client i)) spec.client_cores;
  Machine.spawn m ~core:spec.server_core (server_body [ t ]);
  Machine.run_exn m;
  if check && !count <> n * spec.rounds then
    failwith
      (Printf.sprintf "Ffwd: executed %d critical sections, expected %d" !count
         (n * spec.rounds));
  {
    throughput = Machine.throughput m ~ops:(n * spec.rounds);
    cycles = Machine.elapsed m;
    fallbacks = fallbacks t;
  }
