module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Ordering = Armb_core.Ordering
module Topology = Armb_mem.Topology

type t = {
  topo : Topology.t;
  global : Ticket_lock.t;
  locals : Ticket_lock.t array;
  state : int array; (* per node: have_global flag at +0, batch count at +8 *)
  max_cohort : int;
  mutable handoff_count : int;
  mutable transfer_count : int;
}

let create m ?(max_cohort = 32) () =
  if max_cohort < 1 then invalid_arg "Cohort_lock.create";
  let topo = (Machine.config m).Armb_cpu.Config.topo in
  let nodes = Topology.num_nodes topo in
  {
    topo;
    global = Ticket_lock.create m;
    locals = Array.init nodes (fun _ -> Ticket_lock.create m);
    state = Array.init nodes (fun _ -> Machine.alloc_line m);
    max_cohort;
    handoff_count = 0;
    transfer_count = 0;
  }

let node_of t (c : Core.t) = Topology.node_of t.topo (Core.id c)

let acquire t (c : Core.t) =
  let n = node_of t c in
  Ticket_lock.acquire t.locals.(n) c;
  (* Inherited the global lock from a node-mate? *)
  let have = Core.await c (Core.load c t.state.(n)) in
  if not (Int64.equal have 1L) then begin
    Ticket_lock.acquire t.global c;
    Core.store c t.state.(n) 1L
  end

let release ?(barrier = Ordering.Bar (Barrier.Dmb Full)) t (c : Core.t) =
  let n = node_of t c in
  let batch = Core.await c (Core.load c (t.state.(n) + 8)) in
  let pass_within_node =
    Int64.to_int batch < t.max_cohort && Ticket_lock.has_waiters t.locals.(n) c
  in
  if pass_within_node then begin
    t.handoff_count <- t.handoff_count + 1;
    Core.store c (t.state.(n) + 8) (Int64.add batch 1L);
    (* The local release's own barrier orders the critical section (and
       the flag above) before the handoff. *)
    Ticket_lock.release ~barrier t.locals.(n) c
  end
  else begin
    t.transfer_count <- t.transfer_count + 1;
    Core.store c t.state.(n) 0L;
    Core.store c (t.state.(n) + 8) 0L;
    Ticket_lock.release ~barrier t.global c;
    Ticket_lock.release ~barrier:(Ordering.Bar (Barrier.Dmb St)) t.locals.(n) c
  end

let handoffs t = t.handoff_count

let global_transfers t = t.transfer_count
