(** DSM-Synch-style migratory combining lock (Fatourou & Kallimanis,
    PPoPP'12) on the simulator — the second delegation-lock family of
    §5 (Figures 7(c) and 8).

    Threads append a node to a global queue with an atomic swap and
    announce their request in the node received from the swap; the
    thread released with the "handoff" payload becomes the {e combiner}
    and executes up to [combine_bound] queued requests before handing
    the role onward.  Releasing a waiter ("your request completed",
    carrying the return value) is the data-then-flag pattern whose
    barrier lands strictly after an RMR — the node line lives in the
    waiter's cache.

    With [pilot = true], the combiner piggybacks the return value and
    the completed/handoff bit on the node's release word via the
    {!Armb_core.Pilot} codec (Algorithm 6 applied to a migratory
    server), removing that barrier.

    Composable: create several instances in one machine; each
    participating thread uses a distinct [me] index.  Return values are
    packed with 2 status bits, so keep them non-negative below 2^61. *)

type critical = Armb_cpu.Core.t -> client:int -> int64 -> int64

type t

val create :
  Armb_cpu.Machine.t ->
  parties:int ->
  ?pilot:bool ->
  ?combine_bound:int ->
  critical:critical ->
  unit ->
  t

val exec : t -> Armb_cpu.Core.t -> me:int -> int64 -> int64
(** Submit an argument; returns the critical section's return value.
    The calling thread may end up combining other parties' requests. *)

val combines : t -> int
(** Requests executed by a combiner on behalf of another thread. *)

val fallbacks : t -> int

(** {2 Figure 7 microbenchmark wrapper} *)

type spec = {
  cfg : Armb_cpu.Config.t;
  cores : int list;
  rounds : int;
  interval_nops : int;
  combine_bound : int;
  pilot : bool;
}

val default_spec : Armb_cpu.Config.t -> cores:int list -> spec

type result = { throughput : float; cycles : int; combines : int; fallbacks : int }

val run : ?check:bool -> spec -> result
