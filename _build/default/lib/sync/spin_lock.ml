module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Ordering = Armb_core.Ordering

type t = { addr : int }

let create m = { addr = Machine.alloc_line m }

let try_acquire t (c : Core.t) =
  let old = Core.await c (Core.cas ~acq:true c t.addr ~expected:0L ~desired:1L) in
  Int64.equal old 0L

let acquire ?(use_ldar = true) t (c : Core.t) =
  let rec attempt backoff =
    (* Test-and-test-and-set: spin read-only until the lock looks free,
       then try the atomic — keeps the line in shared state while
       waiting instead of hammering it with exclusive requests. *)
    let v = Core.await c (Core.load c t.addr) in
    let v = if Int64.equal v 0L then v else Core.spin_until c t.addr (Int64.equal 0L) in
    ignore v;
    let old =
      if use_ldar then Core.await c (Core.cas ~acq:true c t.addr ~expected:0L ~desired:1L)
      else Core.await c (Core.cas c t.addr ~expected:0L ~desired:1L)
    in
    if Int64.equal old 0L then begin
      if not use_ldar then Core.barrier c (Barrier.Dmb Ld)
    end
    else begin
      Core.compute c backoff;
      attempt (min (backoff * 2) 512)
    end
  in
  attempt 4

let release ?(barrier = Ordering.Bar (Barrier.Dmb Full)) t (c : Core.t) =
  match barrier with
  | Ordering.No_barrier -> Core.store c t.addr 0L
  | Ordering.Stlr_release -> Core.stlr c t.addr 0L
  | Ordering.Bar b ->
    Core.barrier c b;
    Core.store c t.addr 0L
  | other ->
    invalid_arg ("Spin_lock.release: unsupported barrier " ^ Ordering.to_string other)
