lib/cpu/core.mli: Armb_mem Armb_sim Barrier Config Effect Trace
