lib/cpu/config.mli: Armb_mem Format
