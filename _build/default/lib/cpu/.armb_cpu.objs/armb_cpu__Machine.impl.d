lib/cpu/machine.ml: Armb_mem Armb_sim Config Core Effect Hashtbl List Printexc Printf String Trace
