lib/cpu/config.ml: Armb_mem Format
