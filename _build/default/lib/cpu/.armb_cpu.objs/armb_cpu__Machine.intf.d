lib/cpu/machine.mli: Armb_mem Armb_sim Config Core Trace
