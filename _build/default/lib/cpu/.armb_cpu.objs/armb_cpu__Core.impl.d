lib/cpu/core.ml: Armb_mem Armb_sim Barrier Config Effect Hashtbl Int64 List Printf Queue Trace
