lib/cpu/trace.ml: Buffer Char Fun List Printf String
