lib/cpu/trace.mli:
