lib/cpu/barrier.ml: Format
