lib/cpu/barrier.mli: Format
