(** Calibrated description of a simulated platform's core
    micro-architecture.  Instances for the paper's four machines live in
    [armb_platform]. *)

type t = {
  name : string;
  freq_ghz : float;  (** converts cycles to wall-clock throughput *)
  topo : Armb_mem.Topology.t;
  lat : Armb_mem.Latency.t;
  alu_ipc : int;  (** NOP/ALU instructions issued per cycle *)
  rob_size : int;  (** in-flight instruction window *)
  sb_size : int;  (** store-buffer entries *)
  isb_cost : int;  (** pipeline flush + refill penalty *)
  dmb_min : int;
      (** cost of a DMB whose transaction terminates internally
          (no outstanding relevant accesses) *)
  stlr_extra : int;
      (** extra cycles an STLR commit spends at the interconnect —
          vendor-defined; large on the platforms where the paper found
          STLR slower than the stronger DMB full (Observation 3),
          zero where STLR behaved well (Kirin 960/970) *)
  quantum : int;
      (** run-ahead bound: a simulated thread yields to the event queue
          once its local cycle counter gets this far ahead of global
          simulated time, so concurrent threads interleave finely enough
          for cache-line ping-pong to be modelled faithfully *)
}

val validate : t -> unit
(** Raises [Invalid_argument] on non-positive resources. *)

val pp : Format.formatter -> t -> unit
