type span = {
  core : int;
  kind : string;
  name : string;
  start_cycle : int;
  duration : int;
}

type t = { mutable rev_spans : span list; mutable count : int; limit : int; mutable drop : int }

let create ?(limit = 200_000) () = { rev_spans = []; count = 0; limit; drop = 0 }

let emit t s =
  if t.count < t.limit then begin
    t.rev_spans <- s :: t.rev_spans;
    t.count <- t.count + 1
  end
  else t.drop <- t.drop + 1

let spans t = List.rev t.rev_spans

let dropped t = t.drop

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun s ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d}"
           (escape s.name) (escape s.kind) s.core s.start_cycle (max 1 s.duration)))
    (spans t);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json t))
