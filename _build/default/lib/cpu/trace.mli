(** Execution tracing: collect per-core timed spans from a simulation
    and export them in the Chrome trace-event format (load the file at
    chrome://tracing or https://ui.perfetto.dev).

    Attach a collector to a machine before spawning threads:
    {[
      let tr = Trace.create () in
      let m = Machine.create ~tracer:(Trace.emit tr) cfg in
      ...
      Trace.write_file tr "run.json"
    ]} *)

type span = {
  core : int;
  kind : string;  (** "load" / "store" / "barrier" / "rmw" / "compute" / "spin" *)
  name : string;  (** e.g. the barrier mnemonic or target address *)
  start_cycle : int;
  duration : int;
}

type t

val create : ?limit:int -> unit -> t
(** [limit] caps collected spans (default 200_000); further spans are
    counted but dropped. *)

val emit : t -> span -> unit

val spans : t -> span list
(** In emission order. *)

val dropped : t -> int

val to_chrome_json : t -> string
(** Chrome trace-event JSON: one complete event per span, one track per
    simulated core, timestamps in simulated cycles. *)

val write_file : t -> string -> unit
