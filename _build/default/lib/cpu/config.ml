type t = {
  name : string;
  freq_ghz : float;
  topo : Armb_mem.Topology.t;
  lat : Armb_mem.Latency.t;
  alu_ipc : int;
  rob_size : int;
  sb_size : int;
  isb_cost : int;
  dmb_min : int;
  stlr_extra : int;
  quantum : int;
}

let validate t =
  if t.alu_ipc <= 0 then invalid_arg "Config: alu_ipc must be positive";
  if t.rob_size <= 0 then invalid_arg "Config: rob_size must be positive";
  if t.sb_size <= 0 then invalid_arg "Config: sb_size must be positive";
  if t.quantum <= 0 then invalid_arg "Config: quantum must be positive";
  if t.freq_ghz <= 0.0 then invalid_arg "Config: freq_ghz must be positive"

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %.2f GHz, %a@,ipc=%d rob=%d sb=%d isb=%d dmb_min=%d stlr+=%d@,%a@]"
    t.name t.freq_ghz Armb_mem.Topology.pp t.topo t.alu_ipc t.rob_size t.sb_size t.isb_cost
    t.dmb_min t.stlr_extra Armb_mem.Latency.pp t.lat
