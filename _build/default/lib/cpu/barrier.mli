(** ARM barrier instructions modelled by the simulator.

    [LDAR]/[STLR] are not listed here because they are memory accesses
    with attached ordering (see {!Core.ldar} and {!Core.stlr});
    dependency-based ordering is expressed in programs through
    {!Core.await} data flow. *)

type access_types =
  | Full  (** any-to-any: [DMB]/[DSB] with no qualifier (sy/ish) *)
  | St  (** store-to-store: [DMB ishst] *)
  | Ld  (** load-to-load/store: [DMB ishld] *)

type t =
  | Dmb of access_types
      (** Data Memory Barrier: orders memory accesses, does not block
          non-memory instructions, may send an ACE {e memory barrier
          transaction}. *)
  | Dsb of access_types
      (** Data Synchronization Barrier: blocks {e all} subsequent
          instructions until prior accesses are observable in the
          domain; sends an ACE {e synchronization barrier transaction}
          to the domain boundary. *)
  | Isb  (** Instruction Synchronization Barrier: pipeline flush. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : t list
(** Every modelled barrier, in strength order used by the figures. *)

val orders_loads : t -> bool
(** Does the barrier wait on prior loads? *)

val orders_stores : t -> bool
(** Does the barrier wait on prior stores? *)
