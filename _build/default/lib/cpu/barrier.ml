type access_types = Full | St | Ld

type t = Dmb of access_types | Dsb of access_types | Isb

let access_to_string = function Full -> "full" | St -> "st" | Ld -> "ld"

let to_string = function
  | Dmb a -> "DMB " ^ access_to_string a
  | Dsb a -> "DSB " ^ access_to_string a
  | Isb -> "ISB"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all = [ Dmb Full; Dmb Ld; Dmb St; Dsb Full; Dsb Ld; Dsb St; Isb ]

let orders_loads = function
  | Dmb Full | Dsb Full | Dmb Ld | Dsb Ld -> true
  | Dmb St | Dsb St -> false
  | Isb -> false

let orders_stores = function
  | Dmb Full | Dsb Full | Dmb St | Dsb St -> true
  | Dmb Ld | Dsb Ld -> false
  | Isb -> false
