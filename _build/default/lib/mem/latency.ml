type t = {
  l1_hit : int;
  same_cluster : int;
  same_node : int;
  cross_node : int;
  dram : int;
  bisection_rt : int;
  domain_rt : int;
  rmw_extra : int;
}

let transfer t = function
  | Topology.Same_core -> t.l1_hit
  | Topology.Same_cluster -> t.same_cluster
  | Topology.Same_node -> t.same_node
  | Topology.Cross_node -> t.cross_node

let pp ppf t =
  Format.fprintf ppf
    "l1=%d cluster=%d node=%d xnode=%d dram=%d bisect=%d domain=%d rmw+=%d" t.l1_hit
    t.same_cluster t.same_node t.cross_node t.dram t.bisection_rt t.domain_rt t.rmw_extra
