type t = {
  num_cores : int;
  num_clusters : int;
  num_nodes : int;
  cluster_of : int array;
  node_of : int array;
}

type distance = Same_core | Same_cluster | Same_node | Cross_node

let max_cores = 62

let build node_of cluster_of =
  let num_cores = Array.length node_of in
  if num_cores = 0 then invalid_arg "Topology: no cores";
  if num_cores > max_cores then invalid_arg "Topology: too many cores";
  {
    num_cores;
    num_clusters = 1 + Array.fold_left max 0 cluster_of;
    num_nodes = 1 + Array.fold_left max 0 node_of;
    cluster_of;
    node_of;
  }

let make ~nodes ~clusters_per_node ~cores_per_cluster =
  if nodes <= 0 || clusters_per_node <= 0 || cores_per_cluster <= 0 then
    invalid_arg "Topology.make: non-positive dimension";
  let total = nodes * clusters_per_node * cores_per_cluster in
  let node_of = Array.make total 0 and cluster_of = Array.make total 0 in
  for c = 0 to total - 1 do
    let cluster = c / cores_per_cluster in
    cluster_of.(c) <- cluster;
    node_of.(c) <- cluster / clusters_per_node
  done;
  build node_of cluster_of

let heterogeneous ~nodes ~cluster_sizes =
  if nodes <= 0 || cluster_sizes = [] then invalid_arg "Topology.heterogeneous";
  let per_node = List.fold_left ( + ) 0 cluster_sizes in
  let clusters_per_node = List.length cluster_sizes in
  let total = nodes * per_node in
  let node_of = Array.make total 0 and cluster_of = Array.make total 0 in
  let core = ref 0 in
  for n = 0 to nodes - 1 do
    List.iteri
      (fun i size ->
        for _ = 1 to size do
          node_of.(!core) <- n;
          cluster_of.(!core) <- (n * clusters_per_node) + i;
          incr core
        done)
      cluster_sizes
  done;
  build node_of cluster_of

let num_cores t = t.num_cores
let num_nodes t = t.num_nodes
let num_clusters t = t.num_clusters

let check_core t c =
  if c < 0 || c >= t.num_cores then invalid_arg "Topology: core out of range"

let cluster_of t c =
  check_core t c;
  t.cluster_of.(c)

let node_of t c =
  check_core t c;
  t.node_of.(c)

let cores_of_node t n =
  List.filter (fun c -> t.node_of.(c) = n) (List.init t.num_cores Fun.id)

let cores_of_cluster t cl =
  List.filter (fun c -> t.cluster_of.(c) = cl) (List.init t.num_cores Fun.id)

let distance t a b =
  check_core t a;
  check_core t b;
  if a = b then Same_core
  else if t.cluster_of.(a) = t.cluster_of.(b) then Same_cluster
  else if t.node_of.(a) = t.node_of.(b) then Same_node
  else Cross_node

let pp_distance ppf = function
  | Same_core -> Format.pp_print_string ppf "same-core"
  | Same_cluster -> Format.pp_print_string ppf "same-cluster"
  | Same_node -> Format.pp_print_string ppf "same-node"
  | Cross_node -> Format.pp_print_string ppf "cross-node"

let pp ppf t =
  Format.fprintf ppf "%d cores / %d clusters / %d NUMA nodes" t.num_cores t.num_clusters
    t.num_nodes
