lib/mem/latency.ml: Format Topology
