lib/mem/memsys.mli: Format Latency Topology
