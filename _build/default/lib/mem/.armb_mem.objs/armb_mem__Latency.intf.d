lib/mem/latency.mli: Format Topology
