lib/mem/memsys.ml: Format Hashtbl Latency List Topology
