lib/mem/topology.mli: Format
