lib/mem/topology.ml: Array Format Fun List
