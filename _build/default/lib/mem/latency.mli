(** Latency parameter set of a simulated platform's memory system and
    interconnect.  All values are in core cycles. *)

type t = {
  l1_hit : int;  (** load/store hit in the local L1 *)
  same_cluster : int;  (** cache-to-cache transfer within a cluster *)
  same_node : int;  (** transfer across clusters of one NUMA node *)
  cross_node : int;  (** transfer across the NUMA interconnect *)
  dram : int;  (** line present in no cache *)
  bisection_rt : int;
      (** round trip of an ACE {e memory barrier transaction} to the
          inner bi-section boundary (DMB when no cross-node snooping is
          in flight) *)
  domain_rt : int;
      (** round trip of an ACE {e synchronization barrier transaction}
          to the inner domain boundary (DSB always; DMB after
          cross-node snoops) *)
  rmw_extra : int;  (** additional cycles for atomic read-modify-write *)
}

val transfer : t -> Topology.distance -> int
(** Cache-to-cache transfer cost for a given distance
    ([Same_core] means hit). *)

val pp : Format.formatter -> t -> unit
