module type SUBSTRATE = sig
  type ctx
  type lock
  type value

  val succ : value -> value
  val equal : value -> value -> bool
  val take_ticket : ctx -> lock -> value
  val read_serving : ctx -> lock -> value
  val wait_serving : ctx -> lock -> value -> unit
  val acquired_fence : ctx -> unit
  val publish_serving : ctx -> lock -> value -> unit
end

module Make (S : SUBSTRATE) = struct
  let acquire ctx lock =
    let my = S.take_ticket ctx lock in
    let serving = S.read_serving ctx lock in
    if not (S.equal serving my) then S.wait_serving ctx lock my;
    S.acquired_fence ctx

  let release ctx lock =
    let serving = S.read_serving ctx lock in
    S.publish_serving ctx lock (S.succ serving)
end
