(** The ticket-lock protocol skeleton, generic in the substrate.

    Acquire: atomically take the next ticket, then wait until the
    now-serving word reaches it (fast path: a single read when the lock
    is free).  Release: advance now-serving by one.  The simulated lock
    ([Armb_sync.Ticket_lock], fetch-add with acquire semantics, a
    cache-line-watch spin and a trailing DMB ld; release publishes with
    a configurable barrier — the paper's Figure 7 axis) and the native
    lock ([Armb_runtime.Ticket_lock], OCaml SC atomics and exponential
    backoff) both instantiate this body. *)

module type SUBSTRATE = sig
  type ctx
  type lock
  type value

  val succ : value -> value
  val equal : value -> value -> bool

  val take_ticket : ctx -> lock -> value
  (** Atomic fetch-and-increment of the next-ticket word. *)

  val read_serving : ctx -> lock -> value

  val wait_serving : ctx -> lock -> value -> unit
  (** Spin until now-serving equals the given ticket. *)

  val acquired_fence : ctx -> unit
  (** Acquire ordering for the successful spin read. *)

  val publish_serving : ctx -> lock -> value -> unit
  (** Store the bumped now-serving word, with whatever release ordering
      the substrate (or its configuration) prescribes. *)
end

module Make (S : SUBSTRATE) : sig
  val acquire : S.ctx -> S.lock -> unit
  val release : S.ctx -> S.lock -> unit
end
