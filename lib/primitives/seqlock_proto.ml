module type SUBSTRATE = sig
  type ctx
  type loc
  type value

  val succ : value -> value
  val equal : value -> value -> bool
  val odd : value -> bool
  val read : ctx -> loc -> value
  val write : ctx -> loc -> value -> unit
  val read_payload : ctx -> loc array -> value array
  val write_payload : ctx -> loc array -> value array -> unit
  val enter_fence : ctx -> unit
  val exit_fence : ctx -> unit
  val pre_read_fence : ctx -> unit
  val post_read_fence : ctx -> unit
  val wait_writer : ctx -> loc -> value -> unit
  val on_retry : ctx -> unit
end

module Make (S : SUBSTRATE) = struct
  type t = { seq : S.loc; cells : S.loc array }

  let write t ctx payload =
    if Array.length payload <> Array.length t.cells then
      invalid_arg "Seqlock.write: wrong payload arity";
    let s = S.read ctx t.seq in
    (* enter: odd sequence *)
    S.write ctx t.seq (S.succ s);
    S.enter_fence ctx;
    S.write_payload ctx t.cells payload;
    S.exit_fence ctx;
    (* leave: even sequence *)
    S.write ctx t.seq (S.succ (S.succ s))

  let read t ctx =
    let rec attempt () =
      let s1 = S.read ctx t.seq in
      if S.odd s1 then begin
        (* writer in progress: wait for the sequence to move *)
        S.wait_writer ctx t.seq s1;
        attempt ()
      end
      else begin
        S.pre_read_fence ctx;
        let snapshot = S.read_payload ctx t.cells in
        S.post_read_fence ctx;
        let s2 = S.read ctx t.seq in
        if S.equal s1 s2 then snapshot
        else begin
          S.on_retry ctx;
          attempt ()
        end
      end
    in
    attempt ()
end
