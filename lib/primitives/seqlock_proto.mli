(** The seqlock protocol skeleton, generic in the substrate it runs on.

    Writer: bump the sequence word to odd, store the payload, bump it to
    even.  Reader: sample the sequence, bail out (and wait) while a
    writer is inside, snapshot the payload, and retry unless the
    sequence is unchanged.  The protocol is identical on real hardware
    and on the simulated machine; what differs is how a word is read or
    written, which fences separate the phases, and what a reader does
    while it waits.  {!SUBSTRATE} captures exactly those points, so the
    simulated seqlock ([Armb_sync.Seqlock], words are simulated
    addresses, fences are DMB instructions, waiting parks on a
    cache-line watch) and the native one ([Armb_runtime.Seqlock], words
    are [Atomic.t]s, fences are free under OCaml's SC atomics, waiting
    is exponential backoff) share this one protocol body. *)

module type SUBSTRATE = sig
  type ctx
  (** Per-operation execution context: the simulated core plus options,
      or a native backoff state. *)

  type loc
  (** One shared word. *)

  type value

  val succ : value -> value
  val equal : value -> value -> bool
  val odd : value -> bool
  val read : ctx -> loc -> value
  val write : ctx -> loc -> value -> unit

  val read_payload : ctx -> loc array -> value array
  (** Snapshot every cell; the substrate chooses how loads overlap. *)

  val write_payload : ctx -> loc array -> value array -> unit

  val enter_fence : ctx -> unit
  (** Orders the odd bump before the payload stores. *)

  val exit_fence : ctx -> unit
  (** Orders the payload stores before the even bump. *)

  val pre_read_fence : ctx -> unit
  (** Orders the first sequence read before the payload loads. *)

  val post_read_fence : ctx -> unit
  (** Orders the payload loads before the validating sequence read. *)

  val wait_writer : ctx -> loc -> value -> unit
  (** A writer is inside ([value] is the odd sequence just read); wait
      until the sequence word plausibly changed. *)

  val on_retry : ctx -> unit
  (** Validation failed (a writer raced the snapshot). *)
end

module Make (S : SUBSTRATE) : sig
  type t = { seq : S.loc; cells : S.loc array }

  val write : t -> S.ctx -> S.value array -> unit
  (** Raises [Invalid_argument] on wrong payload arity. *)

  val read : t -> S.ctx -> S.value array
  (** Loops until it obtains an untorn snapshot. *)
end
