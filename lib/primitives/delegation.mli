(** Release-word payload protocol shared by the delegated-execution
    combiners (DSM-Synch, FFWD).

    A waiter parked on its node's release word can be woken for one of
    two reasons, and the payload must carry a return value alongside:

    {v
      0              waiting (nothing released yet)
      1              handoff: you are the combiner now
      (ret << 2)|3   completed: your request ran, [ret] is the result
    v}

    Bit 0 distinguishes "released" from "waiting", bit 1 distinguishes
    "completed" from "handoff" — so the same word can travel raw or
    Pilot-encoded (where only {e changes} are observable and a zero
    payload must still be representable).  Both the native combiner
    ([Armb_runtime.Dsmsynch], over immediate [int]s) and the simulated
    one ([Armb_sync.Dsmsynch], over [int64] machine words) speak exactly
    this encoding, through the two instances below. *)

module type INT = sig
  type t

  val of_int : int -> t
  val equal : t -> t -> bool
  val logor : t -> t -> t
  val logand : t -> t -> t
  val shift_left : t -> int -> t

  val shift_right : t -> int -> t
  (** The shift used to recover [ret]; instances keep their historical
      choice (arithmetic for [int], logical for [int64]). *)
end

module type S = sig
  type t

  val waiting : t
  val handoff : t

  val pack : ret:t -> completed:bool -> t
  (** [(ret << 2) | (completed ? 3 : 1)]. *)

  val unpack : t -> t * bool
  (** [(ret, completed)] of a released (non-waiting) payload. *)

  val is_handoff : t -> bool
end

module Make (I : INT) : S with type t = I.t

module Over_int : S with type t = int
(** The native encoding (immediate OCaml [int]s). *)

module Over_int64 : S with type t = int64
(** The simulator encoding (64-bit machine words). *)
