let payload i = Int64.of_int ((i * 2654435761) land 0x3FFFFFFF)

let slot_addr ~buf ~slots i = buf + (i mod slots * 64)

let lane_addr ~buf lane = buf + (lane * 64)
