module type WORD = sig
  type t

  val equal : t -> t -> bool
  val logxor : t -> t -> t
  val zero : t
  val of_pool : int64 -> t
end

module type S = sig
  type word
  type write_op = Write_data of word | Toggle_flag
  type sender
  type receiver

  val default_pool_size : int
  val make_pool : ?size:int -> seed:int -> unit -> word array
  val sender : word array -> sender
  val receiver : word array -> receiver
  val encode : sender -> word -> write_op
  val try_decode : receiver -> data:word -> flag:word -> word option
  val sent : sender -> int
  val received : receiver -> int
end

module Make (W : WORD) = struct
  type word = W.t
  type write_op = Write_data of W.t | Toggle_flag

  type sender = {
    s_pool : W.t array;
    mutable s_cnt : int;
    mutable s_old_data : W.t;  (* last value written to the shared data word *)
  }

  type receiver = {
    r_pool : W.t array;
    mutable r_cnt : int;
    mutable r_old_data : W.t;
    mutable r_old_flag : W.t;
  }

  let default_pool_size = 64

  let make_pool ?(size = default_pool_size) ~seed () =
    if size <= 0 then invalid_arg "Pilot.make_pool: size must be positive";
    let rng = Armb_sim.Rng.create (seed lxor 0x9E37) in
    Array.init size (fun _ -> W.of_pool (Armb_sim.Rng.bits64 rng))

  let sender pool =
    if Array.length pool = 0 then invalid_arg "Pilot.sender: empty pool";
    { s_pool = pool; s_cnt = 0; s_old_data = W.zero }

  let receiver pool =
    if Array.length pool = 0 then invalid_arg "Pilot.receiver: empty pool";
    { r_pool = pool; r_cnt = 0; r_old_data = W.zero; r_old_flag = W.zero }

  (* Algorithm 3: shuffle, then either publish the new data word or,
     when the shuffled value collides with the previous one, toggle the
     flag (the data word already holds the right value). *)
  let encode s msg =
    let h = s.s_pool.(s.s_cnt mod Array.length s.s_pool) in
    s.s_cnt <- s.s_cnt + 1;
    let shuffled = W.logxor msg h in
    if W.equal shuffled s.s_old_data then Toggle_flag
    else begin
      s.s_old_data <- shuffled;
      Write_data shuffled
    end

  (* Algorithm 4: a change in [data] or in [flag] both mean "one new
     message"; in the flag case the payload is the (unchanged) data
     word. *)
  let try_decode r ~data ~flag =
    let fresh =
      if not (W.equal data r.r_old_data) then begin
        r.r_old_data <- data;
        true
      end
      else if not (W.equal flag r.r_old_flag) then begin
        r.r_old_flag <- flag;
        true
      end
      else false
    in
    if not fresh then None
    else begin
      let h = r.r_pool.(r.r_cnt mod Array.length r.r_pool) in
      r.r_cnt <- r.r_cnt + 1;
      Some (W.logxor r.r_old_data h)
    end

  let sent s = s.s_cnt
  let received r = r.r_cnt
end
