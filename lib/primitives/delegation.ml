module type INT = sig
  type t

  val of_int : int -> t
  val equal : t -> t -> bool
  val logor : t -> t -> t
  val logand : t -> t -> t
  val shift_left : t -> int -> t
  val shift_right : t -> int -> t
end

module type S = sig
  type t

  val waiting : t
  val handoff : t
  val pack : ret:t -> completed:bool -> t
  val unpack : t -> t * bool
  val is_handoff : t -> bool
end

module Make (I : INT) = struct
  type t = I.t

  let waiting = I.of_int 0
  let handoff = I.of_int 1
  let completed_bit = I.of_int 2

  let pack ~ret ~completed =
    I.logor (I.shift_left ret 2) (I.of_int (if completed then 3 else 1))

  let unpack v =
    (I.shift_right v 2, I.equal (I.logand v completed_bit) completed_bit)

  let is_handoff v = I.equal v handoff
end

module Over_int = Make (struct
  type t = int

  let of_int i = i
  let equal = Int.equal
  let logor = ( lor )
  let logand = ( land )
  let shift_left = ( lsl )
  let shift_right = ( asr )
end)

module Over_int64 = Make (struct
  type t = int64

  let of_int = Int64.of_int
  let equal = Int64.equal
  let logor = Int64.logor
  let logand = Int64.logand
  let shift_left = Int64.shift_left
  let shift_right = Int64.shift_right_logical
end)
