(** Shared helpers for the ring-buffer benchmarks.

    Every SPSC ring variant (barrier-combination ring, Pilot ring and
    its batched baseline) moves the same deterministic payload stream
    and lays slots out one per cache line; keeping the generator and the
    slot arithmetic here ensures the variants stay comparable — a
    corruption check in one variant validates against the very words the
    others move. *)

val payload : int -> int64
(** Payload of message [i]: a Knuth-hash of the index, truncated so it
    survives the Pilot shuffle round-trip in both word widths. *)

val slot_addr : buf:int -> slots:int -> int -> int
(** Address of the 64-byte slot message [i] travels through
    ([buf + (i mod slots) * 64]). *)

val lane_addr : buf:int -> int -> int
(** Address of cache line [lane] in a buffer of one-line lanes — for
    rings that give each channel its own line. *)
