(** The canonical Pilot codec (the paper's Algorithms 3 & 4), generic in
    the word type it shuffles.

    Pilot removes the barrier between "store the data" and "set the
    flag": the sender piggybacks arrival detection on the message word
    itself, the receiver detects a new message by seeing the shared word
    {e change}.  Because an aligned word store is single-copy atomic,
    data and "flag" become visible together.  Two complications, both
    handled here:

    - the new message may equal the previous one, so the sender first
      {e shuffles} the payload by XOR-ing it with a pseudo-random pool
      value (repeats are unlikely to collide), and
    - if the shuffled value {e still} equals the previous shuffled
      value, a fallback path toggles a separate shared flag word.

    There is exactly one implementation of these invariants; the
    simulator codec ({!Armb_core.Pilot}, over [int64] machine words) and
    the native runtime codec ([Armb_runtime.Pilot_codec], over immediate
    OCaml [int]s) are both instances of {!Make}.  Both draw their
    shuffle pools from the same seeded SplitMix64 stream, through
    {!WORD.of_pool}. *)

module type WORD = sig
  type t

  val equal : t -> t -> bool
  val logxor : t -> t -> t
  val zero : t

  val of_pool : int64 -> t
  (** Project one raw 64-bit pool draw into the word type (identity for
      [int64]; a logical truncation for immediate [int]s). *)
end

module type S = sig
  type word

  type write_op =
    | Write_data of word  (** store this shuffled value to the shared data word *)
    | Toggle_flag  (** fallback: flip the shared flag word *)

  type sender
  type receiver

  val default_pool_size : int

  val make_pool : ?size:int -> seed:int -> unit -> word array
  (** Deterministic pseudo-random shuffle pool.  Sender and receiver
      must use identical pools. *)

  val sender : word array -> sender
  val receiver : word array -> receiver

  val encode : sender -> word -> write_op
  (** [encode s msg] advances the sender state and says what to store.
      Exactly one word store must then be performed. *)

  val try_decode : receiver -> data:word -> flag:word -> word option
  (** [try_decode r ~data ~flag] inspects a snapshot of the two shared
      words.  [Some msg] means a new message arrived (receiver state is
      advanced); [None] means nothing new yet.  Each [Some] consumes one
      encode step, so sender and receiver stay in lock-step — this is a
      single-producer single-consumer protocol where the producer must
      not overwrite an unconsumed message. *)

  val sent : sender -> int
  val received : receiver -> int
end

module Make (W : WORD) : S with type word = W.t
