(** Reusable litmus-test mutations.

    One home for the program surgery that used to live inside
    {!Sim_runner}: stripping ordering devices (the sanitizer's
    cross-check), and the point edits the fence synthesizer
    ([Armb_synth]) uses as its placement vocabulary. *)

val has_order_devices : Lang.test -> bool
(** Does the test contain any fence, acquire/release or dependency
    (address or data)? *)

val has_strippable_devices : keep_values:bool -> Lang.test -> bool
(** Like {!has_order_devices}, but with [~keep_values:true] data
    dependencies (register-valued stores) do not count — they are the
    devices {!strip_order} would preserve. *)

val strip_order : ?keep_values:bool -> Lang.test -> Lang.test
(** Remove ordering devices: fences deleted, acquire/release cleared,
    address dependencies dropped.  With [keep_values:false] (default)
    register-valued stores are made constant, severing data dependencies
    — the sanitizer's "surface the latent race" mode.  With
    [keep_values:true] stores keep their [Reg] values: data dependencies
    survive, so outcome {e values} are unchanged and the stripped test's
    allowed set is a superset of the original's — the property the
    synthesizer's round-trip and the fuzz-repair soak rely on (a bogus
    value-neutral edit can never recreate a severed value flow, so only
    value-neutral devices are stripped for repair).  The name gains a
    ["-stripped"] suffix. *)

(** {2 Block-addressed point edits}

    The canonical edit surface over CFG programs: instructions are
    addressed by (thread, block label, index within the block).  All
    edits are value-neutral: they add ordering without changing any
    stored value, so outcome predicates keep their meaning.  Indices
    are 0-based; out-of-range indices or unknown labels leave the
    program unchanged (and an insert position past the block's end
    appends to it). *)

val insert_fence_cfg :
  thread:int -> label:Cfg.label -> pos:int -> Lang.fence -> Cfg.program -> Cfg.program

val set_acquire_cfg :
  thread:int -> label:Cfg.label -> idx:int -> Cfg.program -> Cfg.program

val set_release_cfg :
  thread:int -> label:Cfg.label -> idx:int -> Cfg.program -> Cfg.program

val set_addr_dep_cfg :
  thread:int -> label:Cfg.label -> idx:int -> reg:Lang.reg -> Cfg.program -> Cfg.program

val rename_cfg : string -> Cfg.program -> Cfg.program

(** {2 Flat-offset point edits}

    The historical API over straight-line tests, kept as thin wrappers:
    each lifts the test to a single-block CFG ({!Cfg.of_test}), applies
    the block-addressed edit to {!Cfg.single_label}, and lowers back.
    Behavior is unchanged for existing callers. *)

val insert_fence : thread:int -> pos:int -> Lang.fence -> Lang.test -> Lang.test
(** Insert a fence before the instruction at [pos]. *)

val set_acquire : thread:int -> idx:int -> Lang.test -> Lang.test
(** Upgrade the load at [idx] to a load-acquire (no-op on non-loads). *)

val set_release : thread:int -> idx:int -> Lang.test -> Lang.test
(** Upgrade the store at [idx] to a store-release (no-op on non-stores). *)

val set_addr_dep : thread:int -> idx:int -> reg:Lang.reg -> Lang.test -> Lang.test
(** Give the access at [idx] a (bogus) address dependency on [reg]. *)

val rename : string -> Lang.test -> Lang.test
