module Plan = Armb_fault.Plan

type row = {
  test_name : string;
  intensity : float;
  plan_seed : int;
  trials : int;
  forbidden : bool;
  drift : float;
  illegal : string list;
  findings : int;
  fault_digest : int64;
  fault_delay : int;
  row_ok : bool;
}

type summary = {
  intensity : float;
  rows : int;
  mean_drift : float;
  max_drift : float;
  illegal_total : int;
  findings_on_forbidden : int;
  delay_total : int;
}

type sweep = { results : row list; summaries : summary list; ok : bool }

let drift a b =
  let total h = float_of_int (List.fold_left (fun acc (_, n) -> acc + n) 0 h) in
  let ta = total a and tb = total b in
  if ta = 0. || tb = 0. then 0.
  else begin
    let names = List.sort_uniq compare (List.map fst a @ List.map fst b) in
    let p h t o =
      match List.assoc_opt o h with Some n -> float_of_int n /. t | None -> 0.
    in
    0.5 *. List.fold_left (fun acc o -> acc +. Float.abs (p a ta o -. p b tb o)) 0. names
  end

let sweep ?cfg ?(trials = 40) ?(seed = 42) ?(intensities = [ 0.25; 0.5; 1.0 ])
    ?(plan_seeds = [ 1; 2; 3 ]) ?(tests = Catalogue.all) () =
  let intensities = List.sort_uniq compare intensities in
  let results =
    List.concat_map
      (fun (t : Lang.test) ->
        (* One faults-off baseline per test; the same litmus seed drives
           every perturbed run so drift isolates the plan's effect. *)
        let base = Sim_runner.run ?cfg ~trials ~seed t in
        let allowed =
          List.map Enumerate.outcome_to_string (Enumerate.enumerate Enumerate.Wmm t)
        in
        let forbidden = not t.Lang.expect_wmm in
        List.concat_map
          (fun intensity ->
            List.map
              (fun plan_seed ->
                let plan =
                  Plan.of_intensity ~seed:plan_seed
                    ~name:(Printf.sprintf "sweep-%.2f" intensity)
                    intensity
                in
                let r = Sim_runner.run ?cfg ~trials ~seed ~check:true ~fault:plan t in
                let illegal =
                  List.filter_map
                    (fun (o, _) -> if List.mem o allowed then None else Some o)
                    r.Sim_runner.outcomes
                in
                let findings = List.length r.Sim_runner.findings in
                (* Fenced-to-forbidden tests must stay sanitizer-clean:
                   latency can't break a preserved-order edge.  Racy
                   tests are expected to be flagged; their count is
                   informational. *)
                let row_ok = illegal = [] && ((not forbidden) || findings = 0) in
                {
                  test_name = t.Lang.name;
                  intensity;
                  plan_seed;
                  trials;
                  forbidden;
                  drift = drift r.Sim_runner.outcomes base.Sim_runner.outcomes;
                  illegal;
                  findings;
                  fault_digest = r.Sim_runner.fault_digest;
                  fault_delay = r.Sim_runner.fault_delay;
                  row_ok;
                })
              plan_seeds)
          intensities)
      tests
  in
  let summaries =
    List.map
      (fun intensity ->
        let rs = List.filter (fun (r : row) -> r.intensity = intensity) results in
        let n = List.length rs in
        let sum f = List.fold_left (fun acc r -> acc +. f r) 0. rs in
        {
          intensity;
          rows = n;
          mean_drift = (if n = 0 then 0. else sum (fun r -> r.drift) /. float_of_int n);
          max_drift = List.fold_left (fun acc r -> Float.max acc r.drift) 0. rs;
          illegal_total =
            List.fold_left (fun acc r -> acc + List.length r.illegal) 0 rs;
          findings_on_forbidden =
            List.fold_left (fun acc r -> if r.forbidden then acc + r.findings else acc) 0 rs;
          delay_total = List.fold_left (fun acc r -> acc + r.fault_delay) 0 rs;
        })
      intensities
  in
  { results; summaries; ok = List.for_all (fun r -> r.row_ok) results }

let pp_row ppf r =
  Format.fprintf ppf "%-18s x=%.2f seed=%d drift=%.3f delay=%d findings=%d%s %s" r.test_name
    r.intensity r.plan_seed r.drift r.fault_delay r.findings
    (match r.illegal with
    | [] -> ""
    | os -> Printf.sprintf " ILLEGAL[%s]" (String.concat "; " os))
    (if r.row_ok then "ok" else "FAIL")

let pp_summary ppf s =
  Format.fprintf ppf
    "x=%.2f rows=%d mean-drift=%.3f max-drift=%.3f illegal=%d forbidden-findings=%d \
     extra-cycles=%d"
    s.intensity s.rows s.mean_drift s.max_drift s.illegal_total s.findings_on_forbidden
    s.delay_total

let pp_sweep ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter (fun r -> Format.fprintf ppf "%a@," pp_row r) s.results;
  List.iter (fun x -> Format.fprintf ppf "%a@," pp_summary x) s.summaries;
  Format.fprintf ppf "sweep: %s@]" (if s.ok then "OK" else "VIOLATIONS")
