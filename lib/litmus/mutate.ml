(* Reusable litmus-test mutations, shared by the sanitizer cross-check
   (strip everything, expect the latent race to surface), the fence
   synthesizer (apply candidate point edits) and the fuzz-repair soak
   (strip only what synthesis can re-insert). *)

let has_order_devices (t : Lang.test) =
  List.exists
    (List.exists (function
      | Lang.Fence _ -> true
      | Lang.Load { acquire; addr_dep; _ } -> acquire || addr_dep <> None
      | Lang.Store { release; addr_dep; v; _ } -> (
        release || addr_dep <> None
        || match v with Lang.Reg _ -> true | Lang.Const _ -> false)))
    t.threads

let has_strippable_devices ~keep_values (t : Lang.test) =
  if not keep_values then has_order_devices t
  else
    List.exists
      (List.exists (function
        | Lang.Fence _ -> true
        | Lang.Load { acquire; addr_dep; _ } -> acquire || addr_dep <> None
        | Lang.Store { release; addr_dep; _ } -> release || addr_dep <> None))
      t.threads

let strip_order ?(keep_values = false) (t : Lang.test) =
  let strip_i = function
    | Lang.Load { var; reg; _ } ->
      Some (Lang.Load { var; reg; acquire = false; addr_dep = None })
    | Lang.Store { var; v; _ } ->
      let v =
        match v with
        | Lang.Const k -> Lang.Const k
        | Lang.Reg r -> if keep_values then Lang.Reg r else Lang.Const 1L
      in
      Some (Lang.Store { var; v; release = false; addr_dep = None })
    | Lang.Fence _ -> None
  in
  {
    t with
    Lang.name = t.name ^ "-stripped";
    threads = List.map (List.filter_map strip_i) t.threads;
  }

(* ---------- point edits ---------- *)

let on_thread (t : Lang.test) th f =
  {
    t with
    Lang.threads =
      List.mapi (fun i instrs -> if i = th then f instrs else instrs) t.Lang.threads;
  }

let insert_at pos x l =
  let rec go i = function
    | rest when i = pos -> x :: rest
    | [] -> [ x ] (* pos beyond the end: append *)
    | y :: rest -> y :: go (i + 1) rest
  in
  go 0 l

let insert_fence ~thread ~pos f t =
  on_thread t thread (insert_at pos (Lang.Fence f))

let map_nth idx f l = List.mapi (fun i x -> if i = idx then f x else x) l

let set_acquire ~thread ~idx t =
  on_thread t thread
    (map_nth idx (function
      | Lang.Load l -> Lang.Load { l with acquire = true }
      | i -> i))

let set_release ~thread ~idx t =
  on_thread t thread
    (map_nth idx (function
      | Lang.Store s -> Lang.Store { s with release = true }
      | i -> i))

let set_addr_dep ~thread ~idx ~reg t =
  on_thread t thread
    (map_nth idx (function
      | Lang.Load l -> Lang.Load { l with addr_dep = Some reg }
      | Lang.Store s -> Lang.Store { s with addr_dep = Some reg }
      | i -> i))

let rename name t = { t with Lang.name = name }
