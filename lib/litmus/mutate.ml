(* Reusable litmus-test mutations, shared by the sanitizer cross-check
   (strip everything, expect the latent race to surface), the fence
   synthesizer (apply candidate point edits) and the fuzz-repair soak
   (strip only what synthesis can re-insert). *)

let has_order_devices (t : Lang.test) =
  List.exists
    (List.exists (function
      | Lang.Fence _ -> true
      | Lang.Load { acquire; addr_dep; _ } -> acquire || addr_dep <> None
      | Lang.Store { release; addr_dep; v; _ } -> (
        release || addr_dep <> None
        || match v with Lang.Reg _ -> true | Lang.Const _ -> false)))
    t.threads

let has_strippable_devices ~keep_values (t : Lang.test) =
  if not keep_values then has_order_devices t
  else
    List.exists
      (List.exists (function
        | Lang.Fence _ -> true
        | Lang.Load { acquire; addr_dep; _ } -> acquire || addr_dep <> None
        | Lang.Store { release; addr_dep; _ } -> release || addr_dep <> None))
      t.threads

let strip_order ?(keep_values = false) (t : Lang.test) =
  let strip_i = function
    | Lang.Load { var; reg; _ } ->
      Some (Lang.Load { var; reg; acquire = false; addr_dep = None })
    | Lang.Store { var; v; _ } ->
      let v =
        match v with
        | Lang.Const k -> Lang.Const k
        | Lang.Reg r -> if keep_values then Lang.Reg r else Lang.Const 1L
      in
      Some (Lang.Store { var; v; release = false; addr_dep = None })
    | Lang.Fence _ -> None
  in
  {
    t with
    Lang.name = t.name ^ "-stripped";
    threads = List.map (List.filter_map strip_i) t.threads;
  }

(* ---------- block-addressed point edits over CFG programs ---------- *)

(* The canonical edit surface addresses instructions by (thread, block
   label, index within the block); the historical flat-offset API below
   is a thin wrapper applying the same edits to the single block of a
   lifted straight-line test. *)

let on_block (p : Cfg.program) th lbl f =
  {
    p with
    Cfg.threads =
      List.mapi
        (fun i (g : Cfg.thread_cfg) ->
          if i <> th then g
          else
            {
              g with
              Cfg.blocks =
                List.map (fun (b : Cfg.block) -> if b.Cfg.label = lbl then f b else b) g.Cfg.blocks;
            })
        p.Cfg.threads;
  }

let insert_at pos x l =
  let rec go i = function
    | rest when i = pos -> x :: rest
    | [] -> [ x ] (* pos beyond the end: append *)
    | y :: rest -> y :: go (i + 1) rest
  in
  go 0 l

let map_nth idx f l = List.mapi (fun i x -> if i = idx then f x else x) l

let on_body f (b : Cfg.block) = { b with Cfg.body = f b.Cfg.body }

let insert_fence_cfg ~thread ~label ~pos f p =
  on_block p thread label (on_body (insert_at pos (Lang.Fence f)))

let set_acquire_cfg ~thread ~label ~idx p =
  on_block p thread label
    (on_body
       (map_nth idx (function
         | Lang.Load l -> Lang.Load { l with acquire = true }
         | i -> i)))

let set_release_cfg ~thread ~label ~idx p =
  on_block p thread label
    (on_body
       (map_nth idx (function
         | Lang.Store s -> Lang.Store { s with release = true }
         | i -> i)))

let set_addr_dep_cfg ~thread ~label ~idx ~reg p =
  on_block p thread label
    (on_body
       (map_nth idx (function
         | Lang.Load l -> Lang.Load { l with addr_dep = Some reg }
         | Lang.Store s -> Lang.Store { s with addr_dep = Some reg }
         | i -> i)))

let rename_cfg name p = { p with Cfg.name = name }

(* ---------- flat-offset point edits (wrappers) ---------- *)

(* A lifted straight-line test has exactly one block per thread, so a
   flat offset IS the in-block index; lowering is total on the result. *)
let via_cfg edit t =
  match Cfg.lower (edit (Cfg.of_test t)) with
  | Some t' -> t'
  | None -> assert false (* single-block threads always lower *)

let insert_fence ~thread ~pos f t =
  via_cfg (insert_fence_cfg ~thread ~label:Cfg.single_label ~pos f) t

let set_acquire ~thread ~idx t =
  via_cfg (set_acquire_cfg ~thread ~label:Cfg.single_label ~idx) t

let set_release ~thread ~idx t =
  via_cfg (set_release_cfg ~thread ~label:Cfg.single_label ~idx) t

let set_addr_dep ~thread ~idx ~reg t =
  via_cfg (set_addr_dep_cfg ~thread ~label:Cfg.single_label ~idx ~reg) t

let rename name t = { t with Lang.name = name }
