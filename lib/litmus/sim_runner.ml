module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Memsys = Armb_mem.Memsys
module Rng = Armb_sim.Rng
module San = Armb_check.Sanitizer

type result = {
  outcomes : (string * int) list;
  interesting_witnessed : bool;
  trials : int;
  findings : San.finding list;
  events : int;
  cycles : int;
  fault_digest : int64;
  fault_delay : int;
}

(* Compile one litmus thread to a simulator program.  Loads are issued
   eagerly and awaited lazily (at first use of the register, or at the
   end), which exposes load-load reordering to the timing model. *)
let compile_thread (th : Lang.thread) ~addr_of ~start_pause ~padding ~record (c : Core.t) =
  Core.pause c start_pause;
  let toks : (string, Core.token) Hashtbl.t = Hashtbl.create 8 in
  let reg_value r =
    match Hashtbl.find_opt toks r with
    | Some tok -> Core.await c tok
    | None -> 0L
  in
  (* Syntactic dependencies also flow to the instrumentation hook, so
     the sanitizer sees the same preserved order the hardware would. *)
  let dep_tok r = match Hashtbl.find_opt toks r with Some t -> [ t ] | None -> [] in
  List.iteri
    (fun idx instr ->
      if idx > 0 && padding > 0 then Core.compute c padding;
      match instr with
      | Lang.Load { var; reg; acquire; addr_dep } ->
        let deps, addr =
          match addr_dep with
          | Some r ->
            let v = reg_value r in
            Core.compute c 1;
            (dep_tok r, addr_of var + Int64.to_int (Int64.logxor v v))
          | None -> ([], addr_of var)
        in
        let tok = if acquire then Core.ldar c ~deps addr else Core.load c ~deps addr in
        Hashtbl.replace toks reg tok
      | Lang.Store { var; v; release; addr_dep } ->
        let deps_a, addr =
          match addr_dep with
          | Some r ->
            let dep = reg_value r in
            Core.compute c 1;
            (dep_tok r, addr_of var + Int64.to_int (Int64.logxor dep dep))
          | None -> ([], addr_of var)
        in
        let deps_v, value =
          match v with
          | Lang.Const k -> ([], k)
          | Lang.Reg r -> (dep_tok r, reg_value r)
        in
        let deps = deps_a @ deps_v in
        if release then Core.stlr c ~deps addr value else Core.store c ~deps addr value
      | Lang.Fence f ->
        let b =
          match f with
          | Lang.F_dmb_full -> Armb_cpu.Barrier.Dmb Full
          | Lang.F_dmb_st -> Armb_cpu.Barrier.Dmb St
          | Lang.F_dmb_ld -> Armb_cpu.Barrier.Dmb Ld
          | Lang.F_dsb -> Armb_cpu.Barrier.Dsb Full
          (* ctrl+ISB: the pipeline flush refetches only after every
             prior instruction retires, so earlier loads' sample times
             gate everything later — the ordering the branch+ISB idiom
             provides on hardware. *)
          | Lang.F_isb -> Armb_cpu.Barrier.Isb
        in
        Core.barrier c b)
    th;
  (* Resolve every register at the end of the thread. *)
  Hashtbl.iter (fun r tok -> record r (Core.await c tok)) toks

let run ?(cfg = Armb_platform.Platform.kunpeng916) ?(trials = 200) ?(seed = 42)
    ?(check = false) ?fault ?tracer (t : Lang.test) =
  let rng = Rng.create seed in
  let nthreads = List.length t.threads in
  let ncores = Armb_mem.Topology.num_cores cfg.topo in
  if nthreads > ncores then invalid_arg "Sim_runner.run: more threads than cores";
  (* Per-trial bookkeeping is hot (a short litmus trial simulates only a
     handful of events): hoist everything that is identical across
     trials — the variable list, the "<thread>:<reg>" / "mem:<var>" name
     strings — and defer outcome rendering to the end by keying the
     outcome histogram on the sorted binding list itself. *)
  let vars = Lang.vars t in
  let mem_names = List.map (fun v -> (v, "mem:" ^ v)) vars in
  let name_memos = Array.init (max 1 nthreads) (fun _ -> Hashtbl.create 8) in
  let reg_name i r =
    let memo = name_memos.(i) in
    match Hashtbl.find_opt memo r with
    | Some s -> s
    | None ->
      let s = Printf.sprintf "%d:%s" i r in
      Hashtbl.add memo r s;
      s
  in
  let outcomes : ((string * int64) list, int) Hashtbl.t = Hashtbl.create 16 in
  let witnessed = ref false in
  let events = ref 0 in
  (* Sanitizer findings are value-agnostic, so every trial reports the
     same racy pairs; trials differ only in whether the reordering was
     witnessed.  Dedup by signature, keeping a witnessed copy if any. *)
  let merged : (string, San.finding) Hashtbl.t = Hashtbl.create 8 in
  let fault_digest = ref 0L in
  let fault_delay = ref 0 in
  let cycles = ref 0 in
  for trial = 1 to trials do
    let san = if check then Some (San.create ()) else None in
    let observer = Option.map San.observer san in
    (* Re-seed the plan per trial so a sweep explores [trials] distinct
       fault schedules, while staying a pure function of (plan, trial). *)
    let fault =
      Option.map
        (fun (sp : Armb_fault.Plan.spec) -> Armb_fault.Plan.with_seed sp (sp.seed + trial))
        fault
    in
    let m = Machine.create ?tracer ?observer ?fault cfg in
    let mem = Machine.mem m in
    let addrs = List.map (fun v -> (v, Machine.alloc_line m)) vars in
    let addr_of v = List.assoc v addrs in
    (* Initial values + randomized initial line placement: pre-touch
       each variable's line from a random core so that some stores hit
       while others miss — the timing asymmetry that makes reorderings
       observable. *)
    (* Spread threads over distant cores when possible. *)
    let core_of i = if nthreads <= 1 then 0 else i * (ncores / nthreads) in
    List.iter
      (fun (v, a) ->
        Memsys.commit_store mem ~addr:a (match List.assoc_opt v t.init with Some x -> x | None -> 0L);
        (* Give each line to one of the participating cores (or leave it
           uncached) so that some accesses hit while others miss — the
           timing asymmetry that exposes reorderings. *)
        let pick = Rng.int rng (nthreads + 1) in
        if pick < nthreads then Memsys.place mem ~core:(core_of pick) ~addr:a)
      addrs;
    let regs : (string, int64) Hashtbl.t = Hashtbl.create 8 in
    List.iteri
      (fun i th ->
        let start_pause = Rng.int rng 40 in
        let padding = Rng.int rng 4 in
        let record r v = Hashtbl.replace regs (reg_name i r) v in
        Machine.spawn m ~core:(core_of i)
          (compile_thread th ~addr_of ~start_pause ~padding ~record))
      t.threads;
    Machine.run_exn m;
    events := !events + Armb_sim.Event_queue.processed (Machine.queue m);
    cycles := !cycles + Machine.elapsed m;
    (match Machine.injector m with
    | None -> ()
    | Some i ->
      fault_digest := Armb_fault.Injector.combine !fault_digest (Armb_fault.Injector.digest i);
      fault_delay := !fault_delay + (Armb_fault.Injector.counters i).delay_cycles);
    (* final memory joins the outcome as "mem:<var>" bindings *)
    List.iter2
      (fun (_, a) (_, mname) -> Hashtbl.replace regs mname (Memsys.load_value mem ~addr:a))
      addrs mem_names;
    let lookup r = match Hashtbl.find_opt regs r with Some v -> v | None -> 0L in
    let key =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) regs [])
    in
    Hashtbl.replace outcomes key
      (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes key));
    if t.interesting lookup then witnessed := true;
    match san with
    | None -> ()
    | Some s ->
      List.iter
        (fun (f : San.finding) ->
          let key = San.signature f in
          match Hashtbl.find_opt merged key with
          | Some g when g.witnessed || not f.witnessed -> ()
          | _ -> Hashtbl.replace merged key f)
        (San.findings s)
  done;
  let findings =
    Hashtbl.fold (fun _ f acc -> f :: acc) merged []
    |> List.sort (fun (f : San.finding) (g : San.finding) ->
           compare
             (f.core, f.first.op_seq, f.second.op_seq)
             (g.core, g.first.op_seq, g.second.op_seq))
  in
  {
    outcomes =
      List.sort compare
        (Hashtbl.fold
           (fun k v acc -> (Enumerate.outcome_to_string k, v) :: acc)
           outcomes []);
    interesting_witnessed = !witnessed;
    trials;
    findings;
    events = !events;
    cycles = !cycles;
    fault_digest = !fault_digest;
    fault_delay = !fault_delay;
  }

let consistent_with_model r (t : Lang.test) = (not r.interesting_witnessed) || t.expect_wmm

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%d trials, interesting witnessed: %b@," r.trials
    r.interesting_witnessed;
  List.iter (fun (o, n) -> Format.fprintf ppf "  %6d  %s@," n o) r.outcomes;
  List.iter (fun f -> Format.fprintf ppf "%a@," San.pp_finding f) r.findings;
  Format.fprintf ppf "@]"

(* The service engine's entry point: one validated Run_config instead
   of re-threading (cfg, trials, seed) positionally. *)
let run_rc ?check ?fault ?tracer (rc : Armb_platform.Run_config.t) t =
  run ~cfg:rc.cfg ~trials:rc.trials ~seed:rc.seed ?check ?fault ?tracer t

(* ---------- Sanitizer cross-check over the catalogue ---------- *)

type check_row = {
  test_name : string;
  forbidden : bool;
  base_findings : int;
  stripped_findings : int option;
  row_ok : bool;
}

let check_test ?cfg ?(trials = 50) ?seed ?fault (t : Lang.test) =
  let base = run ?cfg ~trials ?seed ~check:true ?fault t in
  let stripped =
    if Mutate.has_order_devices t then
      Some (run ?cfg ~trials ?seed ~check:true ?fault (Mutate.strip_order t))
    else None
  in
  (base, stripped)

let check_row_of (t : Lang.test) ~base ~stripped =
  let base_findings = List.length base.findings in
  let stripped_findings = Option.map (fun r -> List.length r.findings) stripped in
  let forbidden = not t.expect_wmm in
  let row_ok =
    if forbidden then
      (* A test whose weak outcome the model forbids must carry
         enough ordering that the sanitizer finds nothing — and
         once the ordering devices are stripped, the latent race
         must surface. *)
      base_findings = 0
      && (match stripped_findings with None -> true | Some n -> n > 0)
    else if Mutate.has_order_devices t then true (* partially ordered: informational *)
    else base_findings > 0 (* racy by design: must be flagged *)
  in
  { test_name = t.Lang.name; forbidden; base_findings; stripped_findings; row_ok }

let cross_check ?cfg ?(trials = 50) ?seed ?fault () =
  let rows =
    List.map
      (fun (t : Lang.test) ->
        let base, stripped = check_test ?cfg ~trials ?seed ?fault t in
        check_row_of t ~base ~stripped)
      Catalogue.all
  in
  (rows, List.for_all (fun r -> r.row_ok) rows)

let pp_check_row ppf r =
  Format.fprintf ppf "%-18s %-9s base:%d %s %s" r.test_name
    (if r.forbidden then "forbidden" else "allowed")
    r.base_findings
    (match r.stripped_findings with
    | Some n -> Printf.sprintf "stripped:%d" n
    | None -> "stripped:-")
    (if r.row_ok then "ok" else "FAIL")
