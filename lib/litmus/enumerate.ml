type model = Wmm | Tso

type outcome = (string * int64) list

let outcome_to_string o =
  String.concat " " (List.map (fun (r, v) -> Printf.sprintf "%s=%Ld" r v) o)

type cls = C_load | C_store

let cls_of = function
  | Lang.Load _ -> Some C_load
  | Lang.Store _ -> Some C_store
  | Lang.Fence _ -> None

let fence_orders model f a b =
  match model with
  | Tso -> (
    (* On TSO any full fence restores store->load order; weaker ARM
       fences are treated at full strength when "run" on TSO, which is
       conservative but irrelevant for the catalogue (TSO rows use the
       plain programs). *)
    match f with
    | Lang.F_dmb_full | Lang.F_dsb -> true
    | Lang.F_dmb_st -> a = C_store && b = C_store
    | Lang.F_dmb_ld | Lang.F_isb -> a = C_load)
  | Wmm -> (
    match f with
    | Lang.F_dmb_full | Lang.F_dsb -> true
    | Lang.F_dmb_st -> a = C_store && b = C_store
    (* ctrl+ISB has DMB ld's ordering force: every prior load performs
       before anything later; stores pass it freely. *)
    | Lang.F_dmb_ld | Lang.F_isb -> a = C_load)

(* Must instruction [j] perform before instruction [i] (j < i in
   program order)?  [prog] is the thread's instruction array. *)
let must_order model prog j i =
  let a = prog.(j) and b = prog.(i) in
  match (cls_of a, cls_of b) with
  | None, _ | _, None -> false (* fences are order constraints, not events *)
  | Some ca, Some cb -> (
    let base =
      (* Coherence: same-address accesses stay in program order. *)
      (match (a, b) with
      | Lang.Load { var = va; _ }, Lang.Load { var = vb; _ }
      | Lang.Load { var = va; _ }, Lang.Store { var = vb; _ }
      | Lang.Store { var = va; _ }, Lang.Load { var = vb; _ }
      | Lang.Store { var = va; _ }, Lang.Store { var = vb; _ } ->
        va = vb
      | _ -> false)
      (* Dependencies: b consumes a register written by a. *)
      || (match Lang.writes_reg a with
         | Some r -> List.mem r (Lang.reads_regs b)
         | None -> false)
      (* Acquire: nothing later may perform before an acquire load. *)
      || (match a with Lang.Load { acquire = true; _ } -> true | _ -> false)
      (* Release: a released store performs after everything earlier. *)
      || (match b with Lang.Store { release = true; _ } -> true | _ -> false)
      (* Fences strictly between the two. *)
      || (let rec scan k =
            if k >= i then false
            else
              match prog.(k) with
              | Lang.Fence f when fence_orders model f ca cb -> true
              | _ -> scan (k + 1)
          in
          scan (j + 1))
    in
    match model with
    | Wmm -> base
    | Tso ->
      (* TSO preserves all program order except store -> later load. *)
      base || not (ca = C_store && cb = C_load))

type state = {
  performed : int array; (* bitmask per thread *)
  mem : (string * int64) list; (* sorted assoc *)
  regs : (string * int64) list; (* sorted assoc *)
}

let key s =
  String.concat "|"
    (Array.to_list (Array.map string_of_int s.performed))
  ^ "#"
  ^ outcome_to_string s.mem
  ^ "#"
  ^ outcome_to_string s.regs

let assoc_set k v l =
  let rec go = function
    | [] -> [ (k, v) ]
    | (k', _) :: rest when k' = k -> (k, v) :: rest
    | kv :: rest -> kv :: go rest
  in
  List.sort compare (go l)

let assoc_get k l = match List.assoc_opt k l with Some v -> v | None -> 0L

let enumerate model (t : Lang.test) =
  let progs = List.map Array.of_list t.threads in
  let progs = Array.of_list progs in
  let nthreads = Array.length progs in
  let init_mem =
    List.sort compare (List.map (fun v -> (v, assoc_get v t.init)) (Lang.vars t))
  in
  let seen = Hashtbl.create 1024 in
  let outcomes = Hashtbl.create 64 in
  let reg_name th r = Printf.sprintf "%d:%s" th r in
  (* Registers produced by loads of thread th that are performed. *)
  let reg_resolved st th r =
    let prog = progs.(th) in
    let rec find i =
      if i >= Array.length prog then true (* not produced by a load: treat as resolved *)
      else
        match prog.(i) with
        | Lang.Load { reg; _ } when reg = r -> st.performed.(th) land (1 lsl i) <> 0
        | _ -> find (i + 1)
    in
    find 0
  in
  let ready st th i =
    let prog = progs.(th) in
    (match cls_of prog.(i) with None -> false | Some _ -> true)
    && st.performed.(th) land (1 lsl i) = 0
    && (* register operands resolved *)
    List.for_all (fun r -> reg_resolved st th r) (Lang.reads_regs prog.(i))
    && (* every earlier instruction that must stay ordered has performed *)
    (let rec chk j =
       j >= i
       ||
       match cls_of prog.(j) with
       | None -> chk (j + 1)
       | Some _ ->
         (st.performed.(th) land (1 lsl j) <> 0 || not (must_order model prog j i))
         && chk (j + 1)
     in
     chk 0)
  in
  let perform st th i =
    let prog = progs.(th) in
    let performed = Array.copy st.performed in
    performed.(th) <- performed.(th) lor (1 lsl i);
    match prog.(i) with
    | Lang.Load { var; reg; _ } ->
      let v = assoc_get var st.mem in
      { performed; mem = st.mem; regs = assoc_set (reg_name th reg) v st.regs }
    | Lang.Store { var; v; _ } ->
      let value =
        match v with Lang.Const c -> c | Lang.Reg r -> assoc_get (reg_name th r) st.regs
      in
      { performed; mem = assoc_set var value st.mem; regs = st.regs }
    | Lang.Fence _ -> assert false
  in
  let total_ops th =
    Array.fold_left
      (fun acc i -> match cls_of i with Some _ -> acc + 1 | None -> acc)
      0 progs.(th)
  in
  let done_ st =
    let ok = ref true in
    for th = 0 to nthreads - 1 do
      let cnt = ref 0 in
      Array.iteri
        (fun i instr ->
          match cls_of instr with
          | Some _ -> if st.performed.(th) land (1 lsl i) <> 0 then incr cnt
          | None -> ())
        progs.(th);
      if !cnt <> total_ops th then ok := false
    done;
    !ok
  in
  let final_outcome st =
    (* registers plus final memory (as "mem:<var>" bindings), so tests
       can constrain final state — needed for e.g. 2+2W. *)
    List.sort compare (st.regs @ List.map (fun (v, x) -> ("mem:" ^ v, x)) st.mem)
  in
  let rec dfs st =
    let k = key st in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      if done_ st then Hashtbl.replace outcomes (final_outcome st) ()
      else
        for th = 0 to nthreads - 1 do
          Array.iteri
            (fun i _ -> if ready st th i then dfs (perform st th i))
            progs.(th)
        done
    end
  in
  dfs { performed = Array.make nthreads 0; mem = init_mem; regs = [] };
  List.sort compare (Hashtbl.fold (fun o () acc -> o :: acc) outcomes [])

let allows model t =
  let outs = enumerate model t in
  List.exists (fun o -> t.interesting (fun r -> assoc_get r o)) outs

let verify_expectations t =
  let wmm = allows Wmm t and tso = allows Tso t in
  let ok = wmm = t.expect_wmm && tso = t.expect_tso in
  ( ok,
    Printf.sprintf "wmm: allowed=%b (expected %b); tso: allowed=%b (expected %b)" wmm
      t.expect_wmm tso t.expect_tso )
