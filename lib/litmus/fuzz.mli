(** Random litmus-test generation and differential checking.

    Generates small random tests (2-3 threads, a few loads/stores/fences
    over 2-3 locations, random dependencies and acquire/release
    attributes) and checks the structural soundness property that ties
    this library together:

    {e every outcome the timing simulator exhibits is allowed by the
    exhaustive WMM operational model.}

    A violation would mean the CPU/coherence model reorders something
    the architecture forbids — exactly the class of bug this fuzzer
    exists to catch. *)

val generate : ?with_isb:bool -> Armb_sim.Rng.t -> Lang.test
(** One random well-formed test.  [with_isb] (default false) lets the
    vocabulary include the first-class ctrl+ISB fence [Lang.F_isb]; it
    is opt-in so default streams stay bit-identical to the golden
    digests. *)

val generate_cfg : ?with_loop:bool -> Armb_sim.Rng.t -> Cfg.program
(** One random well-formed CFG program for the optimizer soak: 2-3
    threads drawn from four shapes — straight-line, two-block chain,
    diamond (branch + join), flag-poll loop with one back-edge (omitted
    when [with_loop] is false).  Branches always test a previously
    loaded register; register names are unique per thread.  Separate
    from {!generate} so the golden-pinned default streams are
    untouched. *)

type report = {
  tests_run : int;
  sim_outcomes_checked : int;
  violations : (Lang.test * string) list;
      (** test and the offending outcome rendering *)
  events : int;  (** kernel events processed across every simulator trial *)
}

val run :
  ?tests:int ->
  ?trials_per_test:int ->
  ?seed:int ->
  ?fault:Armb_fault.Plan.spec ->
  unit ->
  report
(** Differential fuzz: defaults 50 tests x 60 trials.  With [fault] the
    simulator side runs under the fault plan — since perturbations are
    pure latency, every perturbed outcome must {e still} fall inside the
    WMM-allowed set; a violation indicts the injection sites. *)

val pp_report : Format.formatter -> report -> unit
