module Rng = Armb_sim.Rng

(* Random instruction streams over a small vocabulary.  Register names
   are unique per thread; a load's register may feed later instructions
   as a data or address dependency. *)
let gen_thread rng ~vars ~max_len ~with_isb tid =
  let len = 1 + Rng.int rng max_len in
  let reg_count = ref 0 in
  let produced = ref [] in
  let fresh_reg () =
    incr reg_count;
    let r = Printf.sprintf "r%d" !reg_count in
    produced := r :: !produced;
    r
  in
  let any_var () = List.nth vars (Rng.int rng (List.length vars)) in
  let maybe_dep () =
    match !produced with
    | [] -> None
    | rs -> if Rng.int rng 3 = 0 then Some (List.nth rs (Rng.int rng (List.length rs))) else None
  in
  let rec build n acc =
    if n = 0 then List.rev acc
    else begin
      let instr =
        match Rng.int rng 10 with
        | 0 | 1 | 2 ->
          Lang.Load
            { var = any_var (); reg = fresh_reg (); acquire = Rng.int rng 4 = 0; addr_dep = maybe_dep () }
        | 3 | 4 | 5 ->
          let v =
            match maybe_dep () with
            | Some r when Rng.bool rng -> Lang.Reg r
            | _ -> Lang.Const (Int64.of_int (1 + Rng.int rng 3))
          in
          Lang.Store
            { var = any_var (); v; release = Rng.int rng 4 = 0; addr_dep = maybe_dep () }
        | 6 -> Lang.Fence Lang.F_dmb_full
        | 7 -> Lang.Fence Lang.F_dmb_st
        | 8 -> Lang.Fence Lang.F_dmb_ld
        (* The ctrl+ISB fence is opt-in so that default streams (pinned
           by the golden fuzz-round digest) are unchanged. *)
        | _ when with_isb -> Lang.Fence Lang.F_isb
        | _ ->
          Lang.Load
            { var = any_var (); reg = fresh_reg (); acquire = false; addr_dep = None }
      in
      build (n - 1) (instr :: acc)
    end
  in
  ignore tid;
  build len []

let generate ?(with_isb = false) rng =
  let nvars = 2 + Rng.int rng 2 in
  let vars = List.init nvars (fun i -> Printf.sprintf "v%d" i) in
  let nthreads = 2 + Rng.int rng 2 in
  let threads = List.init nthreads (gen_thread rng ~vars ~max_len:4 ~with_isb) in
  {
    Lang.name = "fuzz";
    description = "randomly generated";
    init = List.map (fun v -> (v, 0L)) vars;
    threads;
    interesting = (fun _ -> false);
    expect_tso = false;
    expect_wmm = false;
  }

(* ---------- random small CFGs ---------- *)

(* Thread shapes for the optimizer soak: straight-line, a two-block
   chain, a diamond (branch + join), and a flag-poll loop with one
   back-edge.  Register names stay unique per thread; a branch always
   tests a previously loaded register.  This is a separate generator on
   purpose: [generate]'s RNG consumption is pinned by the golden
   fuzz-round digest and must not change. *)
let gen_cfg_thread rng ~vars ~with_loop =
  let reg_count = ref 0 in
  let produced = ref [] in
  let fresh_reg () =
    incr reg_count;
    let r = Printf.sprintf "r%d" !reg_count in
    produced := r :: !produced;
    r
  in
  let any_var () = List.nth vars (Rng.int rng (List.length vars)) in
  let body n =
    List.init n (fun _ ->
        match Rng.int rng 6 with
        | 0 | 1 ->
          Lang.Load { var = any_var (); reg = fresh_reg (); acquire = false; addr_dep = None }
        | 2 | 3 ->
          Lang.Store
            { var = any_var (); v = Lang.Const (Int64.of_int (1 + Rng.int rng 3));
              release = false; addr_dep = None }
        | 4 -> Lang.Fence Lang.F_dmb_st
        | _ -> Lang.Fence Lang.F_dmb_ld)
  in
  let load_into_fresh () =
    let r = fresh_reg () in
    (Lang.Load { var = any_var (); reg = r; acquire = false; addr_dep = None }, r)
  in
  let shape = Rng.int rng (if with_loop then 4 else 3) in
  match shape with
  | 0 -> Cfg.cfg [ Cfg.blk "b0" (body (1 + Rng.int rng 3)) ]
  | 1 ->
    Cfg.cfg
      [
        Cfg.blk "b0" ~term:(Cfg.goto "b1") (body (1 + Rng.int rng 2));
        Cfg.blk "b1" (body (1 + Rng.int rng 2));
      ]
  | 2 ->
    (* diamond: branch on a loaded value, rejoin *)
    let ld, r = load_into_fresh () in
    Cfg.cfg
      [
        Cfg.blk "b0" ~term:(Cfg.branch r ~nonzero:"then" ~zero:"else") (body (Rng.int rng 2) @ [ ld ]);
        Cfg.blk "then" ~term:(Cfg.goto "join") (body (1 + Rng.int rng 2));
        Cfg.blk "else" ~term:(Cfg.goto "join") (body (Rng.int rng 2));
        Cfg.blk "join" (body (Rng.int rng 2));
      ]
  | _ ->
    (* flag-poll loop: one back-edge, exit on nonzero *)
    let ld, r = load_into_fresh () in
    Cfg.cfg
      [
        Cfg.blk "b0" ~term:(Cfg.goto "poll") (body (Rng.int rng 2));
        Cfg.blk "poll" ~term:(Cfg.branch r ~nonzero:"done" ~zero:"poll") (body (Rng.int rng 2) @ [ ld ]);
        Cfg.blk "done" (body (1 + Rng.int rng 2));
      ]

let generate_cfg ?(with_loop = true) rng =
  let nvars = 2 + Rng.int rng 2 in
  let vars = List.init nvars (fun i -> Printf.sprintf "v%d" i) in
  let nthreads = 2 + Rng.int rng 2 in
  let threads = List.init nthreads (fun _ -> gen_cfg_thread rng ~vars ~with_loop) in
  {
    Cfg.name = "fuzz-cfg";
    description = "randomly generated CFG";
    init = List.map (fun v -> (v, 0L)) vars;
    threads;
    interesting = (fun _ -> false);
    expect_tso = false;
    expect_wmm = false;
  }

type report = {
  tests_run : int;
  sim_outcomes_checked : int;
  violations : (Lang.test * string) list;
  events : int;
}

let run ?(tests = 50) ?(trials_per_test = 60) ?(seed = 1234) ?fault () =
  let rng = Rng.create seed in
  let checked = ref 0 in
  let violations = ref [] in
  let events = ref 0 in
  for i = 1 to tests do
    let t = generate rng in
    let t = { t with Lang.name = Printf.sprintf "fuzz-%d" i } in
    let allowed =
      List.map Enumerate.outcome_to_string (Enumerate.enumerate Enumerate.Wmm t)
    in
    let r = Sim_runner.run ~trials:trials_per_test ~seed:(seed + i) ?fault t in
    events := !events + r.Sim_runner.events;
    List.iter
      (fun (o, _) ->
        incr checked;
        if not (List.mem o allowed) then violations := (t, o) :: !violations)
      r.Sim_runner.outcomes
  done;
  {
    tests_run = tests;
    sim_outcomes_checked = !checked;
    violations = !violations;
    events = !events;
  }

let pp_report ppf r =
  Format.fprintf ppf "fuzz: %d tests, %d distinct simulated outcomes checked, %d violations"
    r.tests_run r.sim_outcomes_checked (List.length r.violations);
  List.iter
    (fun ((t : Lang.test), o) ->
      Format.fprintf ppf "@.VIOLATION in %s: %s@." t.name o;
      List.iteri
        (fun i th ->
          Format.fprintf ppf "  P%d:" i;
          List.iter (fun instr -> Format.fprintf ppf " %a;" Lang.pp_instr instr) th;
          Format.fprintf ppf "@.")
        t.threads)
    r.violations
