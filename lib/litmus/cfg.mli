(** Control-flow extension of the micro-op DSL: labeled basic blocks,
    conditional branches on loaded registers, and back-edges (loops).

    A {!program} generalizes {!Lang.test}: each thread is a small CFG
    instead of a straight line.  Straight-line programs round-trip
    through {!of_test}/{!lower} unchanged, so every existing consumer
    (enumerator, sanitizer, timing simulator, [armb fix]) works on the
    loop-free fragment for free.  Programs with branches or loops are
    given semantics by bounded unrolling: {!slices} enumerates the
    acyclic paths through each thread (each block entered at most
    [unroll] times per path), flattens them to straight-line
    {!Lang.test}s with SSA-ish register versioning and recorded branch
    constraints, and {!reachable} is the union over feasible slices of
    the enumerator's outcomes projected back onto the program's base
    registers — the reorder-bounded under-approximation that serves as
    the optimizer's soundness oracle. *)

type label = string

type terminator =
  | Goto of label
  | Branch of { reg : Lang.reg; if_nonzero : label; if_zero : label }
      (** branch on the last loaded value of [reg]; induces a control
          dependency to every later store on the taken path *)
  | Return

type block = { label : label; body : Lang.instr list; term : terminator }

type thread_cfg = { entry : label; blocks : block list }

type program = {
  name : string;
  description : string;
  init : (string * int64) list;
  threads : thread_cfg list;
  interesting : (string -> int64) -> bool;
      (** over base register names (["thread:reg"]) and ["mem:var"],
          exactly as in {!Lang.test} *)
  expect_tso : bool;
  expect_wmm : bool;
}

(** {2 Structure} *)

val single_label : label
(** The block label used by {!of_thread} ("b0"). *)

val block : thread_cfg -> label -> block option
val block_exn : thread_cfg -> label -> block
val successors : terminator -> label list

val validate : program -> (unit, string) result
(** Unique labels, entry present, every jump target defined. *)

val reachable_blocks : thread_cfg -> block list
(** Blocks reachable from the entry, in DFS order (nonzero side first).
    Analyses and lowerings ignore unreachable blocks. *)

val has_loop : thread_cfg -> bool

val fence_count : program -> int
(** Fences in reachable blocks across all threads. *)

val thread_regs : thread_cfg -> Lang.reg list
(** Base registers written by loads in reachable blocks, sorted. *)

val vars : program -> string list
(** Shared variables: init plus any referenced in reachable blocks. *)

(** {2 Lifting and lowering} *)

val of_thread : Lang.thread -> thread_cfg
val of_test : Lang.test -> program

val straight_line : thread_cfg -> Lang.thread option
(** [Some instrs] when following Goto edges from the entry meets no
    branch and no repeated block; [None] otherwise. *)

val lower : program -> Lang.test option
(** [Some t] iff every thread is straight-line.  [lower (of_test t) =
    Some t] for all [t]. *)

(** {2 Bounded-unroll path semantics} *)

type path = {
  instrs : Lang.instr list;  (** flattened, registers versioned *)
  constraints : (Lang.reg * bool) list;
      (** (versioned reg, must-be-nonzero) recorded at each branch *)
  last_version : (Lang.reg * Lang.reg) list;  (** base -> last version *)
}

val thread_paths : ?unroll:int -> thread_cfg -> path list
(** All paths entering each block at most [unroll] (default 2) times.
    Registers are versioned on reassignment (first write keeps the base
    name, the k-th becomes ["r#k"]), so each version is written at most
    once and a branch constraint pins the exact value the branch saw.
    Stores after a branch gain the branch register as an address
    dependency — the DSL's encoding of ARM's branch-to-store control
    dependency.  Paths longer than the enumerator can index are
    dropped. *)

type slice = { threads : path list }

val slices : ?unroll:int -> program -> slice list
(** Cartesian product of per-thread paths.  Raises [Invalid_argument]
    beyond 512 combinations or when a thread has no in-bound path. *)

val feasible : slice -> Enumerate.outcome -> bool
(** Do the slice's branch constraints hold in the outcome? *)

val project : program -> slice -> Enumerate.outcome -> Enumerate.outcome
(** Fold a slice outcome onto the program universe: base registers get
    their path-final version's value (0 if never written), every
    program variable gets its final (or initial) value. *)

val reachable : ?unroll:int -> Enumerate.model -> program -> Enumerate.outcome list
(** Sorted, de-duplicated union over all slices of feasible, projected
    enumerator outcomes.  On a loop-free program this is exact; with
    loops it under-approximates by bounding iterations — but comparing
    two programs at the same bound is an apples-to-apples check. *)

val allows : ?unroll:int -> Enumerate.model -> program -> bool
(** Is [interesting] satisfied by some reachable outcome? *)

val slice_test : name:string -> program -> slice -> Lang.test
(** The slice as a self-contained straight-line test: [interesting]
    holds only on feasible outcomes satisfying the program predicate
    (after projection), and expectations are recomputed per slice via
    the enumerator. *)

val verify_expectations : ?unroll:int -> program -> bool * string
(** Check [expect_tso]/[expect_wmm] against {!allows}. *)

(** {2 Construction helpers and printing} *)

val blk : label -> ?term:terminator -> Lang.instr list -> block
(** [term] defaults to [Return]. *)

val goto : label -> terminator
val branch : Lang.reg -> nonzero:label -> zero:label -> terminator

val cfg : ?entry:label -> block list -> thread_cfg
(** [entry] defaults to {!single_label}.  Raises [Invalid_argument] on
    an invalid thread (duplicate labels, missing targets). *)

val pp_terminator : Format.formatter -> terminator -> unit
val pp_thread : Format.formatter -> thread_cfg -> unit
val pp_program : Format.formatter -> program -> unit
