(** A tiny litmus-test language shared by the exhaustive enumerator and
    the timing-simulator runner.

    Registers are named per thread; in outcome predicates they are
    addressed as ["<thread>:<reg>"] (e.g. ["1:r2"]).  Dependencies are
    explicit: a store whose value is [Reg r] is data-dependent on the
    load that wrote [r]; [addr_dep] adds a (bogus) address dependency.
    Control dependency to a store has the same ordering force as a
    dependency here and is expressed with [addr_dep]; control+ISB is
    first-class as the {!fence} [F_isb] (a conditional branch on a prior
    loaded value followed by an ISB, which orders every earlier load
    before everything later — the paper's CTRL+ISB row of Table 3). *)

type reg = string

type value = Const of int64 | Reg of reg

type fence =
  | F_dmb_full
  | F_dmb_st
  | F_dmb_ld
  | F_dsb
  | F_isb
      (** control dependency + ISB: orders prior loads before all later
          accesses (load->load and load->store), never store->anything *)

type instr =
  | Load of { var : string; reg : reg; acquire : bool; addr_dep : reg option }
  | Store of { var : string; v : value; release : bool; addr_dep : reg option }
  | Fence of fence

type thread = instr list

type test = {
  name : string;
  description : string;
  init : (string * int64) list;  (** shared variables and initial values *)
  threads : thread list;
  interesting : (string -> int64) -> bool;
      (** the "weak" outcome predicate over final registers, looked up
          as ["thread:reg"]; unset registers read as 0 *)
  expect_tso : bool;  (** does TSO allow the interesting outcome? *)
  expect_wmm : bool;  (** does ARM's WMM allow it? *)
}

(** {2 Convenience constructors} *)

val ld : ?acquire:bool -> ?addr_dep:reg -> string -> reg -> instr
val st : ?release:bool -> ?addr_dep:reg -> string -> int64 -> instr
val st_reg : ?release:bool -> string -> reg -> instr
val fence : fence -> instr

val vars : test -> string list
(** All shared variables, including ones only referenced by threads. *)

val regs_of_thread : thread -> reg list
(** Registers written by the thread's loads, in program order. *)

val writes_reg : instr -> reg option
val reads_regs : instr -> reg list
val fence_to_string : fence -> string
val pp_instr : Format.formatter -> instr -> unit
