open Lang

let get o r = o r

let mp =
  {
    name = "MP";
    description =
      "Table 1: T0 publishes data then flag with no ordering; T1 reads flag then data. \
       Weak outcome: flag seen set but data stale.";
    init = [ ("data", 0L); ("flag", 0L) ];
    threads =
      [ [ st "data" 23L; st "flag" 1L ]; [ ld "flag" "r1"; ld "data" "r2" ] ];
    interesting = (fun o -> get o "1:r1" = 1L && get o "1:r2" <> 23L);
    expect_tso = false;
    expect_wmm = true;
  }

let mp_dmb =
  {
    mp with
    name = "MP+dmb.st+dmb.ld";
    description = "MP with DMB st between the stores and DMB ld between the loads: forbidden.";
    threads =
      [
        [ st "data" 23L; fence F_dmb_st; st "flag" 1L ];
        [ ld "flag" "r1"; fence F_dmb_ld; ld "data" "r2" ];
      ];
    expect_tso = false;
    expect_wmm = false;
  }

let mp_acq_rel =
  {
    mp with
    name = "MP+stlr+ldar";
    description = "MP with store-release / load-acquire: forbidden.";
    threads =
      [
        [ st "data" 23L; st ~release:true "flag" 1L ];
        [ ld ~acquire:true "flag" "r1"; ld "data" "r2" ];
      ];
    expect_tso = false;
    expect_wmm = false;
  }

let mp_addr_dep =
  {
    mp with
    name = "MP+dmb.st+addr";
    description =
      "MP with DMB st in the producer and a (bogus) address dependency from the flag \
       read to the data read: forbidden, with no consumer barrier. (The ctrl+ISB \
       alternative Table 3 ranks next to it is first-class too: fence F_isb, no \
       longer approximated by this dependency.)";
    threads =
      [
        [ st "data" 23L; fence F_dmb_st; st "flag" 1L ];
        [ ld "flag" "r1"; ld ~addr_dep:"r1" "data" "r2" ];
      ];
    expect_tso = false;
    expect_wmm = false;
  }

let sb =
  {
    name = "SB";
    description =
      "Store buffering: each thread stores its own flag then reads the other's. Both \
       reads returning 0 is allowed even under TSO.";
    init = [ ("x", 0L); ("y", 0L) ];
    threads = [ [ st "x" 1L; ld "y" "r1" ]; [ st "y" 1L; ld "x" "r1" ] ];
    interesting = (fun o -> get o "0:r1" = 0L && get o "1:r1" = 0L);
    expect_tso = true;
    expect_wmm = true;
  }

let sb_dmb =
  {
    sb with
    name = "SB+dmbs";
    description = "SB with a full barrier between store and load on both sides: forbidden.";
    threads =
      [
        [ st "x" 1L; fence F_dmb_full; ld "y" "r1" ];
        [ st "y" 1L; fence F_dmb_full; ld "x" "r1" ];
      ];
    expect_tso = false;
    expect_wmm = false;
  }

let lb =
  {
    name = "LB";
    description =
      "Load buffering: each thread loads then stores to the other's location. Both \
       loads observing the other thread's (program-order later) store is allowed under \
       WMM, forbidden under TSO.";
    init = [ ("x", 0L); ("y", 0L) ];
    threads = [ [ ld "x" "r1"; st "y" 1L ]; [ ld "y" "r1"; st "x" 1L ] ];
    interesting = (fun o -> get o "0:r1" = 1L && get o "1:r1" = 1L);
    expect_tso = false;
    expect_wmm = true;
  }

let lb_data_dep =
  {
    lb with
    name = "LB+datas";
    description = "LB with the stored values data-dependent on the loads: forbidden.";
    threads =
      [ [ ld "x" "r1"; st_reg "y" "r1" ]; [ ld "y" "r1"; st_reg "x" "r1" ] ];
    interesting = (fun o -> get o "0:r1" <> 0L && get o "1:r1" <> 0L);
    expect_tso = false;
    expect_wmm = false;
  }

let wrc =
  {
    name = "WRC+addrs";
    description =
      "Write-to-read causality: T0 writes x; T1 reads x then writes y (dependency); T2 \
       reads y then x (dependency — a ctrl+ISB fence F_isb would order the reads \
       equally). T2 seeing y=1 but x=0 is forbidden on multi-copy-atomic ARMv8.";
    init = [ ("x", 0L); ("y", 0L) ];
    threads =
      [
        [ st "x" 1L ];
        [ ld "x" "r1"; st_reg "y" "r1" ];
        [ ld "y" "r1"; ld ~addr_dep:"r1" "x" "r2" ];
      ];
    interesting = (fun o -> get o "2:r1" = 1L && get o "2:r2" = 0L);
    expect_tso = false;
    expect_wmm = false;
  }

let coherence =
  {
    name = "CoRR";
    description =
      "Coherence of read-read: two program-ordered loads of the same location may not \
       observe a newer value then an older one.";
    init = [ ("x", 0L) ];
    threads = [ [ st "x" 1L ]; [ ld "x" "r1"; ld "x" "r2" ] ];
    interesting = (fun o -> get o "1:r1" = 1L && get o "1:r2" = 0L);
    expect_tso = false;
    expect_wmm = false;
  }

let s_test =
  {
    name = "S+data";
    description =
      "S: T0 stores x=2 then y=1 (DMB st); T1 reads y and stores x=r1 (data dep). \
       x ending at 2 with r1=1 requires T1's store to be ordered before T0's first: \
       forbidden.";
    init = [ ("x", 0L); ("y", 0L) ];
    threads =
      [ [ st "x" 2L; fence F_dmb_st; st "y" 1L ]; [ ld "y" "r1"; st_reg "x" "r1" ] ];
    interesting = (fun o -> get o "1:r1" = 1L);
    (* the truly interesting S shape needs final-memory observation;
       with register-only outcomes we check the causality cycle via r1
       and final x below in the enumerator-level tests *)
    expect_tso = true;
    expect_wmm = true;
  }

let r_test =
  {
    name = "R";
    description =
      "R: T0 stores x then y; T1 stores y then reads x. r1=0 with T1's y-store losing \
       requires reordering; allowed under WMM and (store-load) under TSO.";
    init = [ ("x", 0L); ("y", 0L) ];
    threads = [ [ st "x" 1L; st "y" 1L ]; [ st "y" 2L; ld "x" "r1" ] ];
    interesting = (fun o -> get o "1:r1" = 0L);
    expect_tso = true;
    expect_wmm = true;
  }

let two_plus_two_w =
  {
    name = "2+2W";
    description =
      "2+2W: T0 stores x=1 then y=2; T1 stores y=1 then x=2. Final state x=1, y=1 \
       (each location kept the other thread's program-order-first write) requires a \
       cycle through both store pairs: allowed only when stores reorder — WMM yes, \
       TSO no.";
    init = [ ("x", 0L); ("y", 0L) ];
    threads = [ [ st "x" 1L; st "y" 2L ]; [ st "y" 1L; st "x" 2L ] ];
    interesting = (fun o -> get o "mem:x" = 1L && get o "mem:y" = 1L);
    expect_tso = false;
    expect_wmm = true;
  }

let two_plus_two_w_dmb =
  {
    two_plus_two_w with
    name = "2+2W+dmb.sts";
    description = "2+2W with DMB st between the stores on both sides: forbidden.";
    threads =
      [
        [ st "x" 1L; fence F_dmb_st; st "y" 2L ];
        [ st "y" 1L; fence F_dmb_st; st "x" 2L ];
      ];
    expect_tso = false;
    expect_wmm = false;
  }

let iriw_addr =
  {
    name = "IRIW+addrs";
    description =
      "Independent reads of independent writes, readers using address dependencies: \
       the two readers disagreeing on the write order is forbidden on \
       multi-copy-atomic ARMv8.";
    init = [ ("x", 0L); ("y", 0L) ];
    threads =
      [
        [ st "x" 1L ];
        [ st "y" 1L ];
        [ ld "x" "r1"; ld ~addr_dep:"r1" "y" "r2" ];
        [ ld "y" "r1"; ld ~addr_dep:"r1" "x" "r2" ];
      ];
    interesting =
      (fun o ->
        get o "2:r1" = 1L && get o "2:r2" = 0L && get o "3:r1" = 1L && get o "3:r2" = 0L);
    expect_tso = false;
    expect_wmm = false;
  }

let mp_pilot =
  {
    name = "MP+pilot";
    description =
      "MP with data and flag packed into one aligned 64-bit word (Pilot, paper §4): \
       single-copy atomicity publishes both together, so no barrier is needed. Flag \
       bit set with stale data is forbidden.";
    init = [ ("word", 0L) ];
    threads = [ [ st "word" 0x1_0000_0017L ]; [ ld "word" "r1" ] ];
    interesting =
      (fun o ->
        let v = get o "1:r1" in
        Int64.shift_right_logical v 32 = 1L && Int64.logand v 0xFFFF_FFFFL <> 0x17L);
    expect_tso = false;
    expect_wmm = false;
  }

let all =
  [
    mp;
    mp_pilot;
    mp_dmb;
    mp_acq_rel;
    mp_addr_dep;
    sb;
    sb_dmb;
    lb;
    lb_data_dep;
    wrc;
    coherence;
    s_test;
    r_test;
    two_plus_two_w;
    two_plus_two_w_dmb;
    iriw_addr;
  ]

(* ---------- control-flow tests ---------- *)

(* Loop- and branch-shaped programs for the fence optimizer.  They live
   in a separate list ([all] is pinned by the golden digests); [armb
   check]/[armb fix] see them through their bounded-unroll slices
   ({!cfg_slices}). *)

(* The producer used by every spin-wait MP variant below. *)
let spin_producer = Cfg.of_thread [ st "data" 23L; fence F_dmb_st; st "flag" 1L ]

let spin_consumer ~poll_body ~done_body =
  Cfg.cfg ~entry:"poll"
    [
      Cfg.blk "poll" ~term:(Cfg.branch "r1" ~nonzero:"done" ~zero:"poll") poll_body;
      Cfg.blk "done" done_body;
    ]

let spin_mp =
  {
    Cfg.name = "MP+spin";
    description =
      "MP with a spin-wait consumer: T1 polls flag in a loop, then reads data after \
       the loop exits. The branch gives only a control dependency to the data load — \
       no ordering on ARM — so the stale read survives the spin.";
    init = [ ("data", 0L); ("flag", 0L) ];
    threads =
      [
        spin_producer;
        spin_consumer ~poll_body:[ ld "flag" "r1" ] ~done_body:[ ld "data" "r2" ];
      ];
    interesting = (fun o -> get o "1:r1" = 1L && get o "1:r2" <> 23L);
    expect_tso = false;
    expect_wmm = true;
  }

let spin_mp_dmb =
  {
    spin_mp with
    Cfg.name = "MP+spin+dmb.ld";
    description = "Spin-wait MP with DMB ld after the loop, before the data read: forbidden.";
    threads =
      [
        spin_producer;
        spin_consumer ~poll_body:[ ld "flag" "r1" ]
          ~done_body:[ fence F_dmb_ld; ld "data" "r2" ];
      ];
    expect_wmm = false;
  }

let flag_poll_acquire =
  {
    spin_mp with
    Cfg.name = "MP+spin+ldar";
    description =
      "Spin-wait MP polling with a load-acquire: the iteration that sees the flag \
       orders everything after it, so the data read is fresh. Forbidden.";
    threads =
      [
        spin_producer;
        spin_consumer
          ~poll_body:[ ld ~acquire:true "flag" "r1" ]
          ~done_body:[ ld "data" "r2" ];
      ];
    expect_wmm = false;
  }

let spin_mp_full =
  {
    spin_mp with
    Cfg.name = "MP+spin+dmb.fulls";
    description =
      "Spin-wait MP over-fenced with DMB full on both sides (producer between the \
       stores, consumer inside the poll loop). Sound but overkill: the optimizer \
       should weaken producer to DMB st and the loop fence to DMB ld.";
    threads =
      [
        Cfg.of_thread [ st "data" 23L; fence F_dmb_full; st "flag" 1L ];
        spin_consumer
          ~poll_body:[ ld "flag" "r1"; fence F_dmb_full ]
          ~done_body:[ ld "data" "r2" ];
      ];
    expect_wmm = false;
  }

let cond_pub =
  {
    Cfg.name = "MP+cond";
    description =
      "Branch-shaped MP: T1 reads flag and only reads data on the nonzero arm of a \
       diamond. The branch is a control dependency to a LOAD, which ARM does not \
       order — the stale read is still allowed despite the producer's DMB st.";
    init = [ ("data", 0L); ("flag", 0L) ];
    threads =
      [
        spin_producer;
        Cfg.cfg
          [
            Cfg.blk "b0" ~term:(Cfg.branch "r1" ~nonzero:"read" ~zero:"skip")
              [ ld "flag" "r1" ];
            Cfg.blk "read" ~term:(Cfg.goto "join") [ ld "data" "r2" ];
            Cfg.blk "skip" ~term:(Cfg.goto "join") [];
            Cfg.blk "join" [];
          ];
      ];
    interesting = (fun o -> get o "1:r1" = 1L && get o "1:r2" <> 23L);
    expect_tso = false;
    expect_wmm = true;
  }

let cond_pub_isb =
  {
    cond_pub with
    Cfg.name = "MP+cond+isb";
    description =
      "Branch-shaped MP with ISB at the head of the read arm: ctrl+ISB orders the \
       flag read before the data read. Forbidden.";
    threads =
      [
        spin_producer;
        Cfg.cfg
          [
            Cfg.blk "b0" ~term:(Cfg.branch "r1" ~nonzero:"read" ~zero:"skip")
              [ ld "flag" "r1" ];
            Cfg.blk "read" ~term:(Cfg.goto "join") [ fence F_isb; ld "data" "r2" ];
            Cfg.blk "skip" ~term:(Cfg.goto "join") [];
            Cfg.blk "join" [];
          ];
      ];
    expect_wmm = false;
  }

let cfg_all = [ spin_mp; spin_mp_dmb; flag_poll_acquire; spin_mp_full; cond_pub; cond_pub_isb ]

let cfg_slices ?unroll () =
  List.concat_map
    (fun (p : Cfg.program) ->
      List.mapi
        (fun i s -> Cfg.slice_test ~name:(Printf.sprintf "%s@s%d" p.Cfg.name i) p s)
        (Cfg.slices ?unroll p))
    cfg_all
