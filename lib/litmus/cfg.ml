(* Control-flow extension of the micro-op DSL: labeled basic blocks,
   conditional branches on loaded registers, and back-edges (loops,
   explored under bounded unrolling).  Loop-free programs lower back to
   straight-line [Lang.t] slices so every existing consumer — the
   exhaustive enumerator, the sanitizer, the timing simulator, the
   synthesizer — keeps working unchanged on CFG programs too. *)

type label = string

type terminator =
  | Goto of label
  | Branch of { reg : Lang.reg; if_nonzero : label; if_zero : label }
  | Return

type block = { label : label; body : Lang.instr list; term : terminator }

type thread_cfg = { entry : label; blocks : block list }

type program = {
  name : string;
  description : string;
  init : (string * int64) list;
  threads : thread_cfg list;
  interesting : (string -> int64) -> bool;
  expect_tso : bool;
  expect_wmm : bool;
}

let single_label = "b0"

let block g l = List.find_opt (fun b -> b.label = l) g.blocks

let block_exn g l =
  match block g l with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Cfg: no block labeled %S" l)

let successors = function
  | Goto l -> [ l ]
  | Branch { if_nonzero; if_zero; _ } ->
    if if_nonzero = if_zero then [ if_nonzero ] else [ if_nonzero; if_zero ]
  | Return -> []

let validate_thread g =
  let seen = Hashtbl.create 8 in
  let dup =
    List.find_opt
      (fun b ->
        if Hashtbl.mem seen b.label then true
        else begin
          Hashtbl.add seen b.label ();
          false
        end)
      g.blocks
  in
  match dup with
  | Some b -> Error (Printf.sprintf "duplicate block label %S" b.label)
  | None ->
    if not (Hashtbl.mem seen g.entry) then
      Error (Printf.sprintf "entry %S is not a block" g.entry)
    else (
      let bad = ref None in
      List.iter
        (fun b ->
          List.iter
            (fun l ->
              if (not (Hashtbl.mem seen l)) && !bad = None then
                bad := Some (Printf.sprintf "block %S jumps to unknown label %S" b.label l))
            (successors b.term))
        g.blocks;
      match !bad with Some m -> Error m | None -> Ok ())

let validate p =
  let rec go i = function
    | [] -> Ok ()
    | g :: rest -> (
      match validate_thread g with
      | Error m -> Error (Printf.sprintf "thread %d: %s" i m)
      | Ok () -> go (i + 1) rest)
  in
  go 0 p.threads

(* Reachable blocks in DFS-from-entry order (successor order, nonzero
   side first); unreachable blocks are ignored by every analysis and
   lowering below. *)
let reachable_blocks g =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      let b = block_exn g l in
      acc := b :: !acc;
      List.iter dfs (successors b.term)
    end
  in
  dfs g.entry;
  List.rev !acc

let has_loop g =
  (* grey/black DFS: a back edge is an edge into a block still on the
     DFS stack *)
  let state = Hashtbl.create 8 in
  let rec dfs l =
    match Hashtbl.find_opt state l with
    | Some `Grey -> true
    | Some `Black -> false
    | None ->
      Hashtbl.replace state l `Grey;
      let cyc = List.exists dfs (successors (block_exn g l).term) in
      Hashtbl.replace state l `Black;
      cyc
  in
  dfs g.entry

let of_thread instrs = { entry = single_label; blocks = [ { label = single_label; body = instrs; term = Return } ] }

let of_test (t : Lang.test) =
  {
    name = t.Lang.name;
    description = t.Lang.description;
    init = t.Lang.init;
    threads = List.map of_thread t.Lang.threads;
    interesting = t.Lang.interesting;
    expect_tso = t.Lang.expect_tso;
    expect_wmm = t.Lang.expect_wmm;
  }

(* A thread is straight-line when following Goto edges from the entry
   visits each block at most once, meets no Branch, and ends at Return:
   exactly the programs today's [Lang.t] can express. *)
let straight_line g =
  let seen = Hashtbl.create 8 in
  let rec walk l acc =
    if Hashtbl.mem seen l then None
    else begin
      Hashtbl.add seen l ();
      let b = block_exn g l in
      let acc = List.rev_append b.body acc in
      match b.term with
      | Return -> Some (List.rev acc)
      | Goto l' -> walk l' acc
      | Branch _ -> None
    end
  in
  walk g.entry []

let lower p =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | g :: rest -> ( match straight_line g with Some th -> go (th :: acc) rest | None -> None)
  in
  match go [] p.threads with
  | None -> None
  | Some threads ->
    Some
      {
        Lang.name = p.name;
        description = p.description;
        init = p.init;
        threads;
        interesting = p.interesting;
        expect_tso = p.expect_tso;
        expect_wmm = p.expect_wmm;
      }

let fence_count p =
  List.fold_left
    (fun acc g ->
      List.fold_left
        (fun acc b ->
          acc
          + List.length (List.filter (function Lang.Fence _ -> true | _ -> false) b.body))
        acc (reachable_blocks g))
    0 p.threads

let thread_regs g =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun b ->
      List.iter
        (fun i -> match Lang.writes_reg i with Some r -> Hashtbl.replace tbl r () | None -> ())
        b.body)
    (reachable_blocks g);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let vars p =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (v, _) -> Hashtbl.replace tbl v ()) p.init;
  List.iter
    (fun g ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Lang.Load { var; _ } | Lang.Store { var; _ } -> Hashtbl.replace tbl var ()
              | Lang.Fence _ -> ())
            b.body)
        (reachable_blocks g))
    p.threads;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

(* ---------- bounded-unroll path lowering ---------- *)

(* One acyclic-after-unrolling path through a thread, flattened to a
   straight-line instruction list.  Registers are in SSA-ish form: the
   first write to [r] keeps the name, the k-th (k >= 2) becomes "r#k",
   so re-loads in unrolled loop iterations stay distinguishable and a
   branch constraint pins the exact value the branch observed (each
   version is written once, so its final value IS the branched-on
   value).  Stores after a branch gain the branch register as a (bogus)
   address dependency — the DSL's encoding of the control dependency a
   real ARM core enforces from a conditional branch to every later
   store. *)
type path = {
  instrs : Lang.instr list;
  constraints : (Lang.reg * bool) list;  (** versioned reg, must-be-nonzero *)
  last_version : (Lang.reg * Lang.reg) list;  (** base reg -> last version *)
}

let max_path_len = 58 (* the enumerator packs per-thread indices in an int bitmask *)

let thread_paths ?(unroll = 2) g =
  if unroll < 1 then invalid_arg "Cfg.thread_paths: unroll must be >= 1";
  let paths = ref [] in
  (* visits: block -> entries on the current path; versions: base reg ->
     count; current: base reg -> live version name *)
  let rec dfs l visits versions current ctrl instrs constraints =
    match List.assoc_opt l visits with
    | Some n when n >= unroll -> () (* unroll bound hit: abandon this path *)
    | prior ->
      let visits = (l, 1 + Option.value prior ~default:0) :: List.remove_assoc l visits in
      let b = block_exn g l in
      let rename_read versions_cur r =
        match List.assoc_opt r versions_cur with Some v -> v | None -> r
      in
      let step (versions, current, instrs) i =
        match i with
        | Lang.Load { var; reg; acquire; addr_dep } ->
          let addr_dep = Option.map (rename_read current) addr_dep in
          let n = 1 + Option.value (List.assoc_opt reg versions) ~default:0 in
          let v = if n = 1 then reg else Printf.sprintf "%s#%d" reg n in
          ( (reg, n) :: List.remove_assoc reg versions,
            (reg, v) :: List.remove_assoc reg current,
            Lang.Load { var; reg = v; acquire; addr_dep } :: instrs )
        | Lang.Store { var; v; release; addr_dep } ->
          let v =
            match v with Lang.Reg r -> Lang.Reg (rename_read current r) | c -> c
          in
          let addr_dep =
            match addr_dep with
            | Some r -> Some (rename_read current r)
            | None -> ctrl (* control dependency from the latest branch *)
          in
          (versions, current, Lang.Store { var; v; release; addr_dep } :: instrs)
        | Lang.Fence f -> (versions, current, Lang.Fence f :: instrs)
      in
      let versions, current, instrs =
        List.fold_left step (versions, current, instrs) b.body
      in
      if List.length instrs <= max_path_len then (
        match b.term with
        | Return ->
          paths :=
            {
              instrs = List.rev instrs;
              constraints = List.rev constraints;
              last_version = List.sort compare current;
            }
            :: !paths
        | Goto l' -> dfs l' visits versions current ctrl instrs constraints
        | Branch { reg; if_nonzero; if_zero } ->
          let v = rename_read current reg in
          dfs if_nonzero visits versions current (Some v) instrs ((v, true) :: constraints);
          if if_zero <> if_nonzero then
            dfs if_zero visits versions current (Some v) instrs ((v, false) :: constraints))
  in
  dfs g.entry [] [] [] None [] [];
  List.rev !paths

type slice = { threads : path list }

let max_slices = 512

let slices ?unroll (p : program) =
  let per_thread = List.map (thread_paths ?unroll) p.threads in
  List.iter
    (fun ps ->
      if ps = [] then
        invalid_arg
          (Printf.sprintf "Cfg.slices: %s has a thread with no path within the unroll bound"
             p.name))
    per_thread;
  let count = List.fold_left (fun acc ps -> acc * List.length ps) 1 per_thread in
  if count > max_slices then
    invalid_arg
      (Printf.sprintf "Cfg.slices: %s has %d path combinations (max %d)" p.name count
         max_slices);
  let rec product = function
    | [] -> [ [] ]
    | ps :: rest ->
      let tails = product rest in
      List.concat_map (fun head -> List.map (fun tl -> head :: tl) tails) ps
  in
  List.map (fun threads -> { threads }) (product per_thread)

let assoc_get k l = match List.assoc_opt k l with Some v -> v | None -> 0L

(* Do the branch outcomes recorded along the slice hold in [o]?  Each
   constraint names a versioned register written at most once on the
   path, so its final value is the value the branch saw. *)
let feasible s (o : Enumerate.outcome) =
  List.for_all
    (fun (th, (p : path)) ->
      List.for_all
        (fun (r, nonzero) ->
          let v = assoc_get (Printf.sprintf "%d:%s" th r) o in
          if nonzero then v <> 0L else v = 0L)
        p.constraints)
    (List.mapi (fun th p -> (th, p)) s.threads)

(* Project a slice outcome onto the program's register/variable
   universe: each base register maps to its path-final version (0 when
   the path never wrote it), each variable to its final memory value
   (its initial value when the slice never touched it). *)
let project (p : program) s (o : Enumerate.outcome) =
  let regs =
    List.concat
      (List.mapi
         (fun th (pa : path) ->
           let g = List.nth p.threads th in
           List.map
             (fun base ->
               let version =
                 match List.assoc_opt base pa.last_version with
                 | Some v -> v
                 | None -> base
               in
               (Printf.sprintf "%d:%s" th base, assoc_get (Printf.sprintf "%d:%s" th version) o))
             (thread_regs g))
         s.threads)
  in
  let mem =
    List.map
      (fun v ->
        let k = "mem:" ^ v in
        match List.assoc_opt k o with
        | Some x -> (k, x)
        | None -> (k, assoc_get v p.init))
      (vars p)
  in
  List.sort compare (regs @ mem)

let raw_slice_test (p : program) (s : slice) =
  {
    Lang.name = p.name;
    description = p.description;
    init = p.init;
    threads = List.map (fun (pa : path) -> pa.instrs) s.threads;
    interesting = (fun _ -> false);
    expect_tso = false;
    expect_wmm = false;
  }

let reachable ?unroll model p =
  let outs = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter
        (fun o -> if feasible s o then Hashtbl.replace outs (project p s o) ())
        (Enumerate.enumerate model (raw_slice_test p s)))
    (slices ?unroll p);
  List.sort compare (Hashtbl.fold (fun o () acc -> o :: acc) outs [])

let allows ?unroll model p =
  List.exists (fun o -> p.interesting (fun r -> assoc_get r o)) (reachable ?unroll model p)

let slice_test ~name p (s : slice) =
  let interesting o =
    (* reconstruct an outcome binding list from the lookup to reuse
       [feasible]/[project]; predicates only consult known keys *)
    let raw = raw_slice_test p s in
    let keys =
      List.concat
        (List.mapi
           (fun th th_instrs ->
             List.filter_map
               (fun i ->
                 Option.map (fun r -> Printf.sprintf "%d:%s" th r) (Lang.writes_reg i))
               th_instrs)
           raw.Lang.threads)
      @ List.map (fun v -> "mem:" ^ v) (Lang.vars raw)
    in
    let bindings = List.sort compare (List.map (fun k -> (k, o k)) keys) in
    feasible s bindings
    && p.interesting (fun r -> assoc_get r (project p s bindings))
  in
  let t = { (raw_slice_test p s) with Lang.name; interesting } in
  (* per-slice expectations are honest: a slice may not reach the weak
     outcome even when the whole program does *)
  {
    t with
    Lang.expect_wmm = Enumerate.allows Enumerate.Wmm t;
    expect_tso = Enumerate.allows Enumerate.Tso t;
  }

let verify_expectations ?unroll p =
  let wmm = allows ?unroll Enumerate.Wmm p and tso = allows ?unroll Enumerate.Tso p in
  let ok = wmm = p.expect_wmm && tso = p.expect_tso in
  ( ok,
    Printf.sprintf "wmm: allowed=%b (expected %b); tso: allowed=%b (expected %b)" wmm
      p.expect_wmm tso p.expect_tso )

(* ---------- construction helpers and printing ---------- *)

let blk label ?(term = Return) body = { label; body; term }
let goto l = Goto l
let branch reg ~nonzero ~zero = Branch { reg; if_nonzero = nonzero; if_zero = zero }

let cfg ?(entry = single_label) blocks =
  let g = { entry; blocks } in
  (match validate_thread g with Ok () -> () | Error m -> invalid_arg ("Cfg.cfg: " ^ m));
  g

let pp_terminator ppf = function
  | Goto l -> Format.fprintf ppf "goto %s" l
  | Branch { reg; if_nonzero; if_zero } ->
    Format.fprintf ppf "if %s != 0 goto %s else %s" reg if_nonzero if_zero
  | Return -> Format.fprintf ppf "return"

let pp_thread ppf g =
  List.iter
    (fun b ->
      Format.fprintf ppf "  %s%s:@." b.label (if b.label = g.entry then " (entry)" else "");
      List.iter (fun i -> Format.fprintf ppf "    %a@." Lang.pp_instr i) b.body;
      Format.fprintf ppf "    %a@." pp_terminator b.term)
    g.blocks

let pp_program ppf p =
  Format.fprintf ppf "%s@." p.name;
  List.iteri
    (fun i g ->
      Format.fprintf ppf "P%d:@." i;
      pp_thread ppf g)
    p.threads
