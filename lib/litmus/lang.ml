type reg = string

type value = Const of int64 | Reg of reg

type fence = F_dmb_full | F_dmb_st | F_dmb_ld | F_dsb | F_isb

type instr =
  | Load of { var : string; reg : reg; acquire : bool; addr_dep : reg option }
  | Store of { var : string; v : value; release : bool; addr_dep : reg option }
  | Fence of fence

type thread = instr list

type test = {
  name : string;
  description : string;
  init : (string * int64) list;
  threads : thread list;
  interesting : (string -> int64) -> bool;
  expect_tso : bool;
  expect_wmm : bool;
}

let ld ?(acquire = false) ?addr_dep var reg = Load { var; reg; acquire; addr_dep }

let st ?(release = false) ?addr_dep var v = Store { var; v = Const v; release; addr_dep }

let st_reg ?(release = false) var r = Store { var; v = Reg r; release; addr_dep = None }

let fence f = Fence f

let var_of = function
  | Load { var; _ } | Store { var; _ } -> Some var
  | Fence _ -> None

let vars t =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (v, _) -> Hashtbl.replace tbl v ()) t.init;
  List.iter
    (fun th ->
      List.iter
        (fun i -> match var_of i with Some v -> Hashtbl.replace tbl v () | None -> ())
        th)
    t.threads;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let writes_reg = function
  | Load { reg; _ } -> Some reg
  | Store _ | Fence _ -> None

let reads_regs = function
  | Load { addr_dep; _ } -> ( match addr_dep with Some r -> [ r ] | None -> [])
  | Store { v; addr_dep; _ } ->
    let l = match v with Reg r -> [ r ] | Const _ -> [] in
    (match addr_dep with Some r -> r :: l | None -> l)
  | Fence _ -> []

let regs_of_thread th = List.filter_map writes_reg th

let fence_to_string = function
  | F_dmb_full -> "dmb"
  | F_dmb_st -> "dmb st"
  | F_dmb_ld -> "dmb ld"
  | F_dsb -> "dsb"
  | F_isb -> "ctrl+isb"

let pp_instr ppf = function
  | Load { var; reg; acquire; addr_dep } ->
    Format.fprintf ppf "%s := %s%s%s" reg
      (if acquire then "ldar " else "ldr ")
      var
      (match addr_dep with Some r -> " [addr dep " ^ r ^ "]" | None -> "")
  | Store { var; v; release; addr_dep } ->
    Format.fprintf ppf "%s%s := %s%s"
      (if release then "stlr " else "str ")
      var
      (match v with Const c -> Int64.to_string c | Reg r -> r)
      (match addr_dep with Some r -> " [addr dep " ^ r ^ "]" | None -> "")
  | Fence f -> Format.fprintf ppf "%s" (fence_to_string f)
