(** Run litmus tests on the timing simulator.

    Unlike the exhaustive {!Enumerate}, this witnesses weak behaviours
    {e dynamically}: reorderings happen (or not) because of store-buffer
    drain timing, cache-line placement and issue overlap in the CPU
    model.  Each trial randomizes initial cache-line placement, thread
    start offsets and inter-instruction padding, and the harness counts
    how often each outcome appears.

    A modelling note: the runner issues both loads of a thread before
    awaiting either, so load-load reordering is visible; it cannot
    speculate past control flow (no branch prediction), so
    control-dependency-based tests are exercised only in their ordered
    form. *)

type result = {
  outcomes : (string * int) list;  (** outcome rendering -> occurrence count *)
  interesting_witnessed : bool;
  trials : int;
  findings : Armb_check.Sanitizer.finding list;
      (** sanitizer report, deduplicated across trials; empty unless
          [run ~check:true] *)
  events : int;  (** kernel events processed, summed over all trials *)
  cycles : int;
      (** simulated makespan cycles summed over all trials — the
          synthesizer's per-platform cost metric ([cycles / trials] is
          the average end-to-end latency of one run of the test) *)
  fault_digest : int64;
      (** replay witness folding every trial's fault-event digest; [0L]
          unless a fault plan was armed *)
  fault_delay : int;  (** total injected extra cycles across all trials *)
}

val run :
  ?cfg:Armb_cpu.Config.t ->
  ?trials:int ->
  ?seed:int ->
  ?check:bool ->
  ?fault:Armb_fault.Plan.spec ->
  ?tracer:(Armb_cpu.Trace.span -> unit) ->
  Lang.test ->
  result
(** Defaults: kunpeng916, 200 trials, seed 42, check off.  With
    [~check:true] every trial runs under the happens-before sanitizer
    ({!Armb_check.Sanitizer}) and [findings] carries the racy pairs.
    [fault] arms the plan on every trial's machine, re-seeded per trial
    ([plan.seed + trial]) so the sweep explores distinct fault schedules
    while remaining a pure function of (plan, seed, trials).  [tracer]
    receives a span per micro-operation of {e every} trial (see
    {!Armb_cpu.Trace}); for an inspectable Perfetto export run one trial
    ([armb trace --test] does). *)

val run_rc :
  ?check:bool ->
  ?fault:Armb_fault.Plan.spec ->
  ?tracer:(Armb_cpu.Trace.span -> unit) ->
  Armb_platform.Run_config.t ->
  Lang.test ->
  result
(** {!run} with (platform, trials, seed) taken from one validated
    {!Armb_platform.Run_config} — the pure entry point the job-service
    engine memoizes. *)

val consistent_with_model : result -> Lang.test -> bool
(** No witnessed interesting outcome unless the weak model allows it —
    the cross-check property between the two backends. *)

val pp_result : Format.formatter -> result -> unit

(** {2 Sanitizer cross-check}

    The sanitizer's own acceptance harness: every catalogue test whose
    weak outcome is forbidden must come out clean, and must be flagged
    again once its ordering devices (fences, acquire/release,
    dependencies) are stripped; racy-by-design tests must be flagged as
    they stand.

    The [strip_order]/[has_order_devices] aliases deprecated in PR 4
    are gone — use {!Mutate.strip_order} / {!Mutate.has_order_devices}. *)

type check_row = {
  test_name : string;
  forbidden : bool;  (** weak outcome forbidden ([not expect_wmm]) *)
  base_findings : int;
  stripped_findings : int option;  (** [None] when nothing to strip *)
  row_ok : bool;
}

val check_test :
  ?cfg:Armb_cpu.Config.t ->
  ?trials:int ->
  ?seed:int ->
  ?fault:Armb_fault.Plan.spec ->
  Lang.test ->
  result * result option
(** Run a test under the sanitizer, plus its stripped variant when it
    has ordering devices.  Default 50 trials. *)

val check_row_of : Lang.test -> base:result -> stripped:result option -> check_row
(** Judge one test from its {!check_test} results — the pure per-test
    verdict {!cross_check} folds over the catalogue (and the service
    engine's "check" job uses directly). *)

val cross_check :
  ?cfg:Armb_cpu.Config.t ->
  ?trials:int ->
  ?seed:int ->
  ?fault:Armb_fault.Plan.spec ->
  unit ->
  check_row list * bool
(** Apply {!check_test} to the whole {!Catalogue} and judge each row;
    the boolean is the conjunction. *)

val pp_check_row : Format.formatter -> check_row -> unit
