(** Perturbation sweeps: the litmus catalogue under fault injection.

    The fault subsystem's safety argument is that every injection is
    pure extra latency, so a perturbed run can only shift {e timing} —
    it may change how often each allowed outcome appears, but can never
    manufacture an outcome the weak memory model forbids, and can never
    create a happens-before violation in a correctly-fenced test.  This
    module turns that argument into a measured sweep: for each fault
    intensity and each plan seed it re-runs the whole catalogue and
    reports

    - {b legality}: any simulated outcome outside the WMM-allowed set
      (must be none);
    - {b sanitizer}: findings on tests whose weak outcome is forbidden
      (must be none — fences keep working under perturbation);
    - {b drift}: total-variation distance between the perturbed outcome
      distribution and the faults-off baseline at the same litmus seed —
      how strongly the plan reshapes the timing. *)

type row = {
  test_name : string;
  intensity : float;
  plan_seed : int;
  trials : int;
  forbidden : bool;  (** the test's weak outcome is forbidden ([not expect_wmm]) *)
  drift : float;  (** total-variation distance vs the faults-off baseline *)
  illegal : string list;  (** outcomes outside the WMM-allowed set (must be empty) *)
  findings : int;  (** sanitizer findings under perturbation *)
  fault_digest : int64;  (** replay witness of the perturbed run *)
  fault_delay : int;  (** extra cycles injected across the run's trials *)
  row_ok : bool;  (** legal and (if forbidden) sanitizer-clean *)
}

type summary = {
  intensity : float;
  rows : int;
  mean_drift : float;
  max_drift : float;
  illegal_total : int;  (** illegal outcome renderings across the catalogue *)
  findings_on_forbidden : int;
  delay_total : int;
}

type sweep = {
  results : row list;
  summaries : summary list;  (** one per intensity, ascending *)
  ok : bool;  (** conjunction of [row_ok] *)
}

val drift : (string * int) list -> (string * int) list -> float
(** Total-variation distance between two outcome histograms (0 = same
    distribution, 1 = disjoint support). *)

val sweep :
  ?cfg:Armb_cpu.Config.t ->
  ?trials:int ->
  ?seed:int ->
  ?intensities:float list ->
  ?plan_seeds:int list ->
  ?tests:Lang.test list ->
  unit ->
  sweep
(** Run every test (default: the whole {!Catalogue}) at every intensity
    x plan-seed point, under the sanitizer, against a shared faults-off
    baseline.  Defaults: kunpeng916, 40 trials, litmus seed 42,
    intensities [0.25; 0.5; 1.0], plan seeds [1; 2; 3].  The litmus seed
    is held fixed across baseline and perturbed runs so the drift
    isolates the fault plan's effect. *)

val pp_row : Format.formatter -> row -> unit
val pp_summary : Format.formatter -> summary -> unit
val pp_sweep : Format.formatter -> sweep -> unit
