(** Standard litmus tests, including the paper's Table 1 message-passing
    example in its unfenced and correctly-fenced variants. *)

val mp : Lang.test
(** Table 1: message passing with no ordering.  TSO forbids the stale
    read; WMM allows it. *)

val mp_dmb : Lang.test
(** MP with [DMB st] in the producer and [DMB ld] in the consumer:
    forbidden everywhere. *)

val mp_acq_rel : Lang.test
(** MP with STLR/LDAR. *)

val mp_addr_dep : Lang.test
(** MP with an address dependency on the consumer side and [DMB st] in
    the producer. *)

val mp_pilot : Lang.test
(** MP with data and flag packed into one aligned 64-bit word — the
    paper's Pilot optimization (§4): single-copy atomicity replaces the
    barrier, so the stale read is forbidden with no fence at all. *)

val sb : Lang.test
(** Store buffering: both loads may miss both stores — allowed under
    TSO {e and} WMM. *)

val sb_dmb : Lang.test
(** SB with full barriers: forbidden. *)

val lb : Lang.test
(** Load buffering: allowed under WMM, forbidden under TSO. *)

val lb_data_dep : Lang.test
(** LB with data dependencies: forbidden. *)

val wrc : Lang.test
(** Write-to-read causality with dependencies: forbidden on
    multi-copy-atomic ARMv8 (and under TSO). *)

val coherence : Lang.test
(** Same-location accesses stay ordered: the out-of-order read is
    forbidden under every model. *)

val s_test : Lang.test
(** S: write-after-write to one location vs a dependent store —
    forbidden with the data dependency under both models. *)

val r_test : Lang.test
(** R: store-store vs store-load; allowed under WMM without fences. *)

val two_plus_two_w : Lang.test
(** 2+2W: both locations ending with the other thread's first write —
    allowed under WMM, forbidden with DMB st on both sides. *)

val two_plus_two_w_dmb : Lang.test

val iriw_addr : Lang.test
(** IRIW with address dependencies on both readers: forbidden on
    multi-copy-atomic ARMv8 — the property Pulte et al. formalized and
    the paper's footnote 2 relies on. *)

val all : Lang.test list
