(** Standard litmus tests, including the paper's Table 1 message-passing
    example in its unfenced and correctly-fenced variants. *)

val mp : Lang.test
(** Table 1: message passing with no ordering.  TSO forbids the stale
    read; WMM allows it. *)

val mp_dmb : Lang.test
(** MP with [DMB st] in the producer and [DMB ld] in the consumer:
    forbidden everywhere. *)

val mp_acq_rel : Lang.test
(** MP with STLR/LDAR. *)

val mp_addr_dep : Lang.test
(** MP with an address dependency on the consumer side and [DMB st] in
    the producer. *)

val mp_pilot : Lang.test
(** MP with data and flag packed into one aligned 64-bit word — the
    paper's Pilot optimization (§4): single-copy atomicity replaces the
    barrier, so the stale read is forbidden with no fence at all. *)

val sb : Lang.test
(** Store buffering: both loads may miss both stores — allowed under
    TSO {e and} WMM. *)

val sb_dmb : Lang.test
(** SB with full barriers: forbidden. *)

val lb : Lang.test
(** Load buffering: allowed under WMM, forbidden under TSO. *)

val lb_data_dep : Lang.test
(** LB with data dependencies: forbidden. *)

val wrc : Lang.test
(** Write-to-read causality with dependencies: forbidden on
    multi-copy-atomic ARMv8 (and under TSO). *)

val coherence : Lang.test
(** Same-location accesses stay ordered: the out-of-order read is
    forbidden under every model. *)

val s_test : Lang.test
(** S: write-after-write to one location vs a dependent store —
    forbidden with the data dependency under both models. *)

val r_test : Lang.test
(** R: store-store vs store-load; allowed under WMM without fences. *)

val two_plus_two_w : Lang.test
(** 2+2W: both locations ending with the other thread's first write —
    allowed under WMM, forbidden with DMB st on both sides. *)

val two_plus_two_w_dmb : Lang.test

val iriw_addr : Lang.test
(** IRIW with address dependencies on both readers: forbidden on
    multi-copy-atomic ARMv8 — the property Pulte et al. formalized and
    the paper's footnote 2 relies on. *)

val all : Lang.test list

(** {2 Control-flow tests}

    Loop- and branch-shaped programs for the fence optimizer, kept out
    of [all] (whose behavior is pinned by the golden digests). *)

val spin_mp : Cfg.program
(** MP with a spin-wait consumer: the poll loop's branch is only a
    control dependency to the data {e load}, so the stale read is still
    allowed. *)

val spin_mp_dmb : Cfg.program
(** Spin-wait MP with DMB ld between loop exit and data read: forbidden. *)

val flag_poll_acquire : Cfg.program
(** Spin-wait MP polling with LDAR: forbidden. *)

val spin_mp_full : Cfg.program
(** Spin-wait MP over-fenced with DMB full on both sides — the
    optimizer's canonical weakening target (full -> st / ld). *)

val cond_pub : Cfg.program
(** Diamond-shaped MP: data read only on the nonzero arm; ctrl dep to a
    load does not order, so still allowed. *)

val cond_pub_isb : Cfg.program
(** Diamond-shaped MP with ISB heading the read arm: forbidden. *)

val cfg_all : Cfg.program list

val cfg_slices : ?unroll:int -> unit -> Lang.test list
(** Bounded-unroll straight-line slices of every [cfg_all] program
    ({!Cfg.slice_test}), named ["<test>@s<i>"] — the view [armb check]
    and [armb fix] consume. *)
