(** Fuzz-repair soak: generate -> arm -> strip -> repair -> re-verify.

    Each round takes a random fuzz test, reduces it to its access
    skeleton ({!Armb_litmus.Mutate.strip_order} with values kept), and
    re-arms it with a random {e ground-truth} device set drawn from the
    synthesizer's own placement vocabulary.  Stripping the armed test
    recovers the skeleton, so the repairer is asked to win back a
    minimal subset of exactly what was injected.

    Random tests have a trivially-false [interesting] predicate, so
    soundness here is {e behaviour preservation}: the repaired test's
    WMM-enumerated outcome set must be a subset of the armed test's.
    Soundness is monotone in the edit set (ordering devices only remove
    outcomes), so a sufficient repair within [max_edits] edits always
    exists — a complete search that finds none is itself a fatal
    finding.

    Hard failures are {e unsound} repairs (outcome set not a subset),
    {e redundant} repairs (a reported set survives dropping an edit),
    simulator outcomes outside the repaired test's own WMM set, and a
    complete-but-empty search.  Budget-exhausted searches are counted
    but not fatal. *)

type report = {
  tests : int;
  skipped_no_devices : int;  (** skeleton admits no candidate edits *)
  stripped_still_sound : int;
      (** the injected devices forbid nothing observable; no repair
          needed *)
  repaired : int;
  no_repair : int;  (** search exhausted without a repair (not fatal) *)
  unsound : int;  (** FATAL: repair enlarged the outcome set *)
  redundant : int;  (** FATAL: repair survives dropping an edit *)
  sim_violations : int;
      (** FATAL: simulator witnessed an outcome outside the repaired
          test's WMM set *)
  oracle_calls : int;
  failures : string list;  (** rendering of every fatal finding *)
}

val ok : report -> bool
(** No fatal findings. *)

(** {2 Per-round interface}

    One soak iteration as a first-class record — the unified soak
    subsystem ([lib/soak]) consumes rounds directly, and {!run} is a
    fold of {!report_of_rounds} over {!run_rounds}, so both views of a
    soak are byte-identical in report and rendering. *)

type status =
  | Skipped_no_devices  (** skeleton admits no candidate edits *)
  | Still_sound  (** injected devices forbid nothing observable *)
  | Repaired of int  (** minimal repair sets found *)
  | No_repair  (** search exhausted (or fatally complete-but-empty) *)

type round = {
  index : int;  (** 1-based *)
  test_name : string;
  status : status;
  unsound : int;
  redundant : int;
  sim_violations : int;
  oracle_calls : int;
  failures : string list;  (** fatal findings of this round, in order *)
}

val round_ok : round -> bool

val run_rounds :
  ?tests:int ->
  ?seed:int ->
  ?max_edits:int ->
  ?budget:int ->
  ?sim_trials:int ->
  unit ->
  round list
(** Same generation stream as {!run} (one shared RNG, rounds in order):
    [run args () = report_of_rounds (run_rounds args ())]. *)

val report_of_rounds : round list -> report

val run :
  ?tests:int ->
  ?seed:int ->
  ?max_edits:int ->
  ?budget:int ->
  ?sim_trials:int ->
  unit ->
  report
(** Defaults: 20 tests, seed 2024, 2 injected/searched edits, 1200
    oracle calls per test, 25 simulator trials on the cheapest repair.
    Generation runs with [~with_isb:true] so the first-class ctrl+ISB
    fence is exercised in the vocabulary on both sides. *)

val pp_report : Format.formatter -> report -> unit
