module Lang = Armb_litmus.Lang

let pp_costs = Cost.pp

let kind_str = function Fix.Edits _ -> "edits" | Fix.Pilot -> "pilot"

let pp_repair ppf (r : Fix.repair) =
  Format.fprintf ppf "@[<v 2>%s  (static %d, %s%s)@,cost: %a@]" r.label r.static_cost
    (kind_str r.kind)
    (if r.irredundant then "" else ", REDUNDANT")
    pp_costs r.costs;
  match r.advisor with
  | [] -> ()
  | hints -> Format.fprintf ppf "@,  advisor: %s" (String.concat "; " hints)

let pp_outcome ppf (o : Fix.outcome) =
  Format.fprintf ppf "@[<v>test: %s@," o.original.Lang.name;
  if o.already_sound then
    Format.fprintf ppf "already sound: forbidden outcome unreachable, nothing to do@]"
  else begin
    Format.fprintf ppf "search: %d oracle calls%s, %d repair(s)@," o.oracle_calls
      (if o.search_complete then "" else " (budget exhausted: may be incomplete)")
      (List.length o.repairs);
    List.iter (fun r -> Format.fprintf ppf "- %a@," pp_repair r) o.repairs;
    Format.fprintf ppf "winners:@,";
    List.iter
      (fun (p, (r : Fix.repair)) -> Format.fprintf ppf "  %-14s %s@," p r.label)
      o.winners;
    Format.fprintf ppf "@]"
  end

let verdict b = if b then "ok" else "FAIL"

let pp_round_trip ppf (rt : Fix.round_trip) =
  Format.fprintf ppf
    "@[<v>== %s (stripped -> resynthesized) ==@,original cost: %a@,%a@,sufficient:%s \
     irredundant:%s cost:%s pilot:%s => %s@]"
    rt.test_name pp_costs rt.original_costs pp_outcome rt.outcome
    (verdict rt.sufficient_ok) (verdict rt.irredundant_ok) (verdict rt.cost_ok)
    (if rt.pilot_expected then verdict rt.pilot_ok else "n/a")
    (verdict rt.ok)

(* ---------- markdown ---------- *)

let buf_add = Buffer.add_string

let cost_on platform costs =
  match List.find_opt (fun c -> c.Cost.platform = platform) costs with
  | Some c -> c.Cost.cycles
  | None -> nan

let round_trips_markdown rts =
  let b = Buffer.create 4096 in
  buf_add b "# Repair report: strip -> resynthesize round trips\n\n";
  buf_add b
    "Each eligible catalogue test is stripped of its ordering devices (data-dependency \
     values kept), handed to the synthesizer, and the per-platform winner is compared \
     against the original hand-fenced version (simulated cycles per trial, lower is \
     better).\n\n";
  buf_add b "| test | repairs | ";
  List.iter (fun p -> buf_add b (Printf.sprintf "%s (orig) | " p)) Cost.platforms;
  buf_add b "verdict |\n|---|---|";
  List.iter (fun _ -> buf_add b "---|") Cost.platforms;
  buf_add b "---|\n";
  List.iter
    (fun (rt : Fix.round_trip) ->
      buf_add b (Printf.sprintf "| %s | %d | " rt.test_name (List.length rt.outcome.repairs));
      List.iter
        (fun p ->
          let orig = cost_on p rt.original_costs in
          match List.assoc_opt p rt.outcome.winners with
          | Some (r : Fix.repair) ->
            buf_add b (Printf.sprintf "%.1f (%.1f) | " (cost_on p r.costs) orig)
          | None -> buf_add b (Printf.sprintf "- (%.1f) | " orig))
        Cost.platforms;
      buf_add b
        (Printf.sprintf "%s%s |\n"
           (if rt.ok then "ok" else "FAIL")
           (if rt.pilot_expected then " (pilot)" else "")))
    rts;
  buf_add b "\n";
  List.iter
    (fun (rt : Fix.round_trip) ->
      buf_add b (Printf.sprintf "## %s\n\n```\n" rt.test_name);
      buf_add b (Format.asprintf "%a" pp_round_trip rt);
      buf_add b "\n```\n\n")
    rts;
  Buffer.contents b

(* ---------- JSON (hand-rolled: the image carries no JSON library) ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> buf_add b "\\\""
      | '\\' -> buf_add b "\\\\"
      | '\n' -> buf_add b "\\n"
      | c when Char.code c < 0x20 -> buf_add b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""

let jlist f l = "[" ^ String.concat "," (List.map f l) ^ "]"

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let jbool b = if b then "true" else "false"

let jcosts costs =
  jlist
    (fun c ->
      jobj
        [
          ("platform", jstr c.Cost.platform);
          ("cycles", Printf.sprintf "%.2f" c.Cost.cycles);
        ])
    costs

let jrepair (r : Fix.repair) =
  jobj
    [
      ("label", jstr r.label);
      ("kind", jstr (kind_str r.kind));
      ("static_cost", string_of_int r.static_cost);
      ("irredundant", jbool r.irredundant);
      ("advisor", jlist jstr r.advisor);
      ("costs", jcosts r.costs);
    ]

let outcome_json (o : Fix.outcome) =
  jobj
    [
      ("test", jstr o.original.Lang.name);
      ("already_sound", jbool o.already_sound);
      ("oracle_calls", string_of_int o.oracle_calls);
      ("search_complete", jbool o.search_complete);
      ("repairs", jlist jrepair o.repairs);
      ( "winners",
        jobj (List.map (fun (p, (r : Fix.repair)) -> (p, jstr r.label)) o.winners) );
    ]

let round_trips_json rts =
  jlist
    (fun (rt : Fix.round_trip) ->
      jobj
        [
          ("test", jstr rt.test_name);
          ("original_costs", jcosts rt.original_costs);
          ("outcome", outcome_json rt.outcome);
          ("sufficient_ok", jbool rt.sufficient_ok);
          ("irredundant_ok", jbool rt.irredundant_ok);
          ("cost_ok", jbool rt.cost_ok);
          ("pilot_expected", jbool rt.pilot_expected);
          ("pilot_ok", jbool rt.pilot_ok);
          ("ok", jbool rt.ok);
        ])
    rts
