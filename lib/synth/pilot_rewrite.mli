(** The Pilot rewrite (paper §4) as a synthesis candidate.

    When a test is message-passing shaped — one thread publishes a data
    word then a flag word, the other polls the flag then reads the data
    — and both payloads fit in 32 bits, the two variables can be packed
    into one aligned 64-bit word.  Single-copy atomicity then publishes
    data and flag together, so the repaired test needs {e no} ordering
    device at all: a single plain store against a single plain load.

    Detection is structural on the threads plus behavioural on the
    [interesting] predicate: the predicate is an opaque function, so it
    is probed with four fabricated outcomes (stale-data-after-flag must
    be interesting; fully-ordered, nothing-seen and data-only-seen must
    not) to confirm the test really asks the MP question before the
    rewrite claims it. *)

module Lang = Armb_litmus.Lang

type shape = {
  data_var : string;
  flag_var : string;
  data_val : int64;
  flag_val : int64;
  producer : int;  (** thread index of the publishing side *)
  consumer : int;
}

val detect : Lang.test -> shape option
(** [None] unless the test is two-threaded MP with constant stores,
    distinct variables, 32-bit-representable values and an
    MP-interesting predicate (probed as described above).  Existing
    fences / acquire-release / dependencies on either side are ignored:
    the rewrite replaces the whole communication pattern. *)

val rewrite : Lang.test -> (shape * Lang.test) option
(** The packed single-word test, named ["<name>+pilot"].  Its
    [interesting] predicate is the packed translation of the weak
    outcome (flag half set, data half stale), and its expectations are
    forbidden-everywhere — which {!Armb_litmus.Enumerate} re-verifies
    downstream, the rewrite is not trusted blindly. *)

val word_var : string
(** Name of the packed variable (["word"], suffixed if the test already
    uses it). *)
