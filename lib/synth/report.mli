(** Markdown and JSON rendering of repair results (the [armb fix]
    report and the CI artifact). *)

val pp_outcome : Format.formatter -> Fix.outcome -> unit
(** Human-readable single-test report: repairs with static cost,
    advisor cross-reference, per-platform simulated cost, and the
    per-platform winners. *)

val pp_round_trip : Format.formatter -> Fix.round_trip -> unit

val round_trips_markdown : Fix.round_trip list -> string
(** Full Markdown report: summary table (one row per catalogue test,
    winner and cost delta per platform, verdict flags) followed by a
    per-test breakdown of every synthesized repair. *)

val round_trips_json : Fix.round_trip list -> string
(** The same data as a JSON document (hand-rolled; no JSON library in
    the image). *)

val outcome_json : Fix.outcome -> string
