module Lang = Armb_litmus.Lang
module Mutate = Armb_litmus.Mutate
module Ordering = Armb_core.Ordering
module Advisor = Armb_core.Advisor
module Barrier = Armb_cpu.Barrier

type edit =
  | Insert_fence of { thread : int; pos : int; fence : Lang.fence }
  | Make_acquire of { thread : int; idx : int }
  | Make_release of { thread : int; idx : int }
  | Add_addr_dep of { thread : int; idx : int; reg : Lang.reg }

(* Architectural cost prior (search order only; the simulator decides
   winners).  Follows Table 3 / Figure 3: bogus dependencies are nearly
   free, LDAR/STLR are one-way, DMB LD/ST wait on one access kind, ISB
   flushes the pipeline, DMB full waits on everything, DSB blocks the
   whole core until the domain boundary answers. *)
let static_cost = function
  | Add_addr_dep _ -> 1
  | Make_acquire _ -> 2
  | Make_release _ -> 3
  | Insert_fence { fence = Lang.F_dmb_ld; _ } -> 4
  | Insert_fence { fence = Lang.F_dmb_st; _ } -> 4
  | Insert_fence { fence = Lang.F_isb; _ } -> 6
  | Insert_fence { fence = Lang.F_dmb_full; _ } -> 8
  | Insert_fence { fence = Lang.F_dsb; _ } -> 20

let total_cost es = List.fold_left (fun a e -> a + static_cost e) 0 es

let thread_of = function
  | Insert_fence { thread; _ }
  | Make_acquire { thread; _ }
  | Make_release { thread; _ }
  | Add_addr_dep { thread; _ } -> thread

let ordering_of_edit = function
  | Insert_fence { fence = Lang.F_dmb_full; _ } -> Ordering.Bar (Barrier.Dmb Full)
  | Insert_fence { fence = Lang.F_dmb_st; _ } -> Ordering.Bar (Barrier.Dmb St)
  | Insert_fence { fence = Lang.F_dmb_ld; _ } -> Ordering.Bar (Barrier.Dmb Ld)
  | Insert_fence { fence = Lang.F_dsb; _ } -> Ordering.Bar (Barrier.Dsb Full)
  | Insert_fence { fence = Lang.F_isb; _ } -> Ordering.Ctrl_isb
  | Make_acquire _ -> Ordering.Ldar_acquire
  | Make_release _ -> Ordering.Stlr_release
  | Add_addr_dep _ -> Ordering.Addr_dep

let apply t edits =
  let is_insert = function Insert_fence _ -> true | _ -> false in
  let inserts, attrs = List.partition is_insert edits in
  let t =
    List.fold_left
      (fun t -> function
        | Make_acquire { thread; idx } -> Mutate.set_acquire ~thread ~idx t
        | Make_release { thread; idx } -> Mutate.set_release ~thread ~idx t
        | Add_addr_dep { thread; idx; reg } -> Mutate.set_addr_dep ~thread ~idx ~reg t
        | Insert_fence _ -> t)
      t attrs
  in
  (* Highest position first so earlier insertions don't shift later
     ones on the same thread. *)
  let inserts =
    List.sort
      (fun a b ->
        match (a, b) with
        | Insert_fence a, Insert_fence b ->
          if a.thread <> b.thread then compare a.thread b.thread else compare b.pos a.pos
        | _ -> 0)
      inserts
  in
  let t =
    List.fold_left
      (fun t -> function
        | Insert_fence { thread; pos; fence } -> Mutate.insert_fence ~thread ~pos fence t
        | _ -> t)
      t inserts
  in
  Mutate.rename (Printf.sprintf "%s+fix%d" t.Lang.name (List.length edits)) t

let fences = [ Lang.F_dmb_ld; Lang.F_dmb_st; Lang.F_isb; Lang.F_dmb_full; Lang.F_dsb ]

let candidates (t : Lang.test) =
  let acc = ref [] in
  let add e = acc := e :: !acc in
  List.iteri
    (fun thread instrs ->
      let n = List.length instrs in
      (* fences at every inter-instruction gap *)
      for pos = 1 to n - 1 do
        List.iter (fun fence -> add (Insert_fence { thread; pos; fence })) fences
      done;
      (* attribute upgrades *)
      List.iteri
        (fun idx i ->
          match i with
          | Lang.Load { acquire = false; _ } -> add (Make_acquire { thread; idx })
          | Lang.Store { release = false; _ } -> add (Make_release { thread; idx })
          | _ -> ())
        instrs;
      (* bogus address dependencies from each load to each later
         dependency-free access not already consuming its register *)
      List.iteri
        (fun i src ->
          match Lang.writes_reg src with
          | None -> ()
          | Some reg ->
            List.iteri
              (fun j dst ->
                if j > i then
                  match dst with
                  | (Lang.Load { addr_dep = None; _ } | Lang.Store { addr_dep = None; _ })
                    when not (List.mem reg (Lang.reads_regs dst)) ->
                    add (Add_addr_dep { thread; idx = j; reg })
                  | _ -> ())
              instrs)
        instrs)
    t.Lang.threads;
  List.stable_sort (fun a b -> compare (static_cost a) (static_cost b)) (List.rev !acc)

(* ---------- advisor cross-reference ---------- *)

let nth_thread (t : Lang.test) th = List.nth t.Lang.threads th

let classify_from instrs =
  let loads = List.exists (function Lang.Load _ -> true | _ -> false) instrs in
  let stores = List.exists (function Lang.Store _ -> true | _ -> false) instrs in
  match (loads, stores) with
  | false, false -> None
  | true, false -> Some Advisor.From_load
  | false, true -> Some Advisor.From_store
  | true, true -> Some Advisor.From_any

let classify_to instrs =
  let loads =
    List.length (List.filter (function Lang.Load _ -> true | _ -> false) instrs)
  in
  let stores =
    List.length (List.filter (function Lang.Store _ -> true | _ -> false) instrs)
  in
  match (loads, stores) with
  | 0, 0 -> None
  | 1, 0 -> Some Advisor.To_load
  | _, 0 -> Some Advisor.To_loads
  | 0, 1 -> Some Advisor.To_store
  | 0, _ -> Some Advisor.To_stores
  | _, _ -> Some Advisor.To_any

let take n l = List.filteri (fun i _ -> i < n) l
let drop n l = List.filteri (fun i _ -> i >= n) l

let advisor_hint t edit =
  let pair =
    match edit with
    | Insert_fence { thread; pos; _ } ->
      let instrs = nth_thread t thread in
      (classify_from (take pos instrs), classify_to (drop pos instrs))
    | Make_acquire { thread; idx } ->
      (* LDAR orders the load at [idx] before everything after it *)
      (Some Advisor.From_load, classify_to (drop (idx + 1) (nth_thread t thread)))
    | Make_release { thread; idx } ->
      (* STLR orders everything before it ahead of the store at [idx] *)
      (classify_from (take idx (nth_thread t thread)), Some Advisor.To_store)
    | Add_addr_dep { thread; idx; _ } ->
      ( Some Advisor.From_load,
        classify_to (take 1 (drop idx (nth_thread t thread))) )
  in
  match pair with
  | Some from_, Some to_ -> Some (Advisor.best ~from_ ~to_)
  | _ -> None

let edit_to_string t e =
  let instr_str th idx =
    match List.nth_opt (nth_thread t th) idx with
    | Some i -> Format.asprintf "%a" Lang.pp_instr i
    | None -> "?"
  in
  match e with
  | Insert_fence { thread; pos; fence } ->
    Printf.sprintf "P%d@%d: insert %s" thread pos (Lang.fence_to_string fence)
  | Make_acquire { thread; idx } ->
    Printf.sprintf "P%d@%d: acquire (%s)" thread idx (instr_str thread idx)
  | Make_release { thread; idx } ->
    Printf.sprintf "P%d@%d: release (%s)" thread idx (instr_str thread idx)
  | Add_addr_dep { thread; idx; reg } ->
    Printf.sprintf "P%d@%d: addr dep on %s (%s)" thread idx reg (instr_str thread idx)

let pp_edit t ppf e = Format.pp_print_string ppf (edit_to_string t e)
