module Lang = Armb_litmus.Lang
module Mutate = Armb_litmus.Mutate
module Catalogue = Armb_litmus.Catalogue
module Ordering = Armb_core.Ordering

type kind = Edits of Placement.edit list | Pilot

type repair = {
  label : string;
  kind : kind;
  test : Lang.test;
  static_cost : int;
  irredundant : bool;
  advisor : string list;
  costs : Cost.platform_cost list;
}

type outcome = {
  original : Lang.test;
  already_sound : bool;
  repairs : repair list;
  winners : (string * repair) list;
  search_complete : bool;
  oracle_calls : int;
}

let edits_label t es = String.concat " & " (List.map (Placement.edit_to_string t) es)

let advisor_hints t es =
  List.map
    (fun e ->
      match Placement.advisor_hint t e with
      | Some o -> Ordering.to_string o
      | None -> "-")
    es

let pick_winners repairs =
  List.filter_map
    (fun platform ->
      let best =
        List.fold_left
          (fun acc r ->
            match List.find_opt (fun c -> c.Cost.platform = platform) r.costs with
            | None -> acc
            | Some c -> (
              match acc with
              | Some (_, cy) when cy <= c.Cost.cycles -> acc
              | _ -> Some (r, c.Cost.cycles)))
          None repairs
      in
      Option.map (fun (r, _) -> (platform, r)) best)
    Cost.platforms

let fix ?max_edits ?budget ?trials ?seed ?(sound = Search.default_sound) t =
  if sound t then
    {
      original = t;
      already_sound = true;
      repairs = [];
      winners = [];
      search_complete = true;
      oracle_calls = 1;
    }
  else begin
    let s = Search.search ?max_edits ?budget ~sound t in
    let edit_repairs =
      List.map
        (fun es ->
          let repaired = Placement.apply t es in
          {
            label = edits_label t es;
            kind = Edits es;
            test = repaired;
            static_cost = Placement.total_cost es;
            irredundant = Search.irredundant ~sound t es;
            advisor = advisor_hints t es;
            costs = Cost.measure ?trials ?seed repaired;
          })
        s.Search.repairs
    in
    (* The Pilot candidate bypasses the placement IR entirely; it is
       admitted only if the rewritten program itself passes the
       soundness oracle. *)
    let pilot_calls = ref 0 in
    let pilot_repairs =
      match Pilot_rewrite.rewrite t with
      | None -> []
      | Some (_, rewritten) ->
        incr pilot_calls;
        if sound rewritten then
          [
            {
              label = "pilot: pack into one 64-bit word";
              kind = Pilot;
              test = rewritten;
              static_cost = 0;
              irredundant = true;
              advisor = [];
              costs = Cost.measure ?trials ?seed rewritten;
            };
          ]
        else []
    in
    let repairs = edit_repairs @ pilot_repairs in
    {
      original = t;
      already_sound = false;
      repairs;
      winners = pick_winners repairs;
      search_complete = s.Search.complete;
      oracle_calls = s.Search.oracle_calls + 1 + !pilot_calls;
    }
  end

type round_trip = {
  test_name : string;
  stripped : Lang.test;
  original_costs : Cost.platform_cost list;
  outcome : outcome;
  sufficient_ok : bool;
  irredundant_ok : bool;
  cost_ok : bool;
  pilot_expected : bool;
  pilot_ok : bool;
  ok : bool;
}

let strip_round_trip ?max_edits ?budget ?trials ?seed (t : Lang.test) =
  if t.Lang.expect_wmm || not (Mutate.has_strippable_devices ~keep_values:true t) then
    None
  else begin
    let stripped = Mutate.strip_order ~keep_values:true t in
    let original_costs = Cost.measure ?trials ?seed t in
    let outcome = fix ?max_edits ?budget ?trials ?seed stripped in
    let sufficient_ok =
      outcome.already_sound
      || (outcome.repairs <> []
         && List.for_all (fun r -> Search.default_sound r.test) outcome.repairs)
    in
    let irredundant_ok = List.for_all (fun r -> r.irredundant) outcome.repairs in
    let cost_ok =
      outcome.already_sound
      || List.for_all
           (fun (platform, r) ->
             match
               ( List.find_opt (fun c -> c.Cost.platform = platform) r.costs,
                 List.find_opt (fun c -> c.Cost.platform = platform) original_costs )
             with
             | Some w, Some o -> w.Cost.cycles <= o.Cost.cycles
             | _ -> true)
           outcome.winners
    in
    let pilot_expected = Pilot_rewrite.detect stripped <> None in
    let pilot_ok =
      (not pilot_expected)
      || (List.exists (fun r -> r.kind = Pilot) outcome.repairs
         && List.for_all (fun (_, r) -> r.kind = Pilot) outcome.winners)
    in
    let ok = sufficient_ok && irredundant_ok && cost_ok && pilot_ok in
    Some
      {
        test_name = t.Lang.name;
        stripped;
        original_costs;
        outcome;
        sufficient_ok;
        irredundant_ok;
        cost_ok;
        pilot_expected;
        pilot_ok;
        ok;
      }
  end

let catalogue_round_trips ?max_edits ?budget ?trials ?seed () =
  List.filter_map (strip_round_trip ?max_edits ?budget ?trials ?seed) Catalogue.all

let find_test name =
  let lower = String.lowercase_ascii name in
  List.find_opt
    (fun (t : Lang.test) -> String.lowercase_ascii t.Lang.name = lower)
    Catalogue.all

(* Service entry point: trials and seed from one validated Run_config
   (the platform sweep in [Cost.measure] still covers every calibrated
   platform — rc picks the seed/trials coordinates only). *)
let fix_rc ?max_edits ?budget (rc : Armb_platform.Run_config.t) t =
  fix ?max_edits ?budget ~trials:rc.trials ~seed:rc.seed t
