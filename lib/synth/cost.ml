module Lang = Armb_litmus.Lang
module Sim_runner = Armb_litmus.Sim_runner
module Platform = Armb_platform.Platform

type platform_cost = { platform : string; cycles : float }

let default_trials = 60
let default_seed = 42

let platforms = Platform.names

let measure ?(trials = default_trials) ?(seed = default_seed) t =
  List.map
    (fun cfg ->
      let r = Sim_runner.run ~cfg ~trials ~seed t in
      {
        platform = cfg.Armb_cpu.Config.name;
        cycles = float_of_int r.Sim_runner.cycles /. float_of_int trials;
      })
    Platform.all

let cheaper_or_equal a b =
  List.for_all
    (fun ca ->
      match List.find_opt (fun cb -> cb.platform = ca.platform) b with
      | None -> true
      | Some cb -> ca.cycles <= cb.cycles)
    a

let pp ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf c -> Format.fprintf ppf "%s:%.1f" c.platform c.cycles)
    ppf l
