(** Per-platform repair cost, measured on the timing simulator.

    Cost is the average simulated makespan of one run of the test
    ([Sim_runner.result.cycles / trials]) on each calibrated platform
    model.  Trials and seed are fixed, and the runner's random draws
    depend only on the test's shape, so two structurally identical
    programs always cost the same — which is what makes "winner cost
    less-or-equal to the original hand-fenced test" a meaningful
    acceptance bar. *)

module Lang = Armb_litmus.Lang

type platform_cost = {
  platform : string;
  cycles : float;  (** average simulated cycles per trial *)
}

val default_trials : int
val default_seed : int

val measure : ?trials:int -> ?seed:int -> Lang.test -> platform_cost list
(** One entry per {!Armb_platform.Platform.all} configuration, in that
    order.  Defaults: 60 trials, seed 42. *)

val platforms : string list

val cheaper_or_equal : platform_cost list -> platform_cost list -> bool
(** Pointwise comparison by platform name (missing platforms compare
    equal). *)

val pp : Format.formatter -> platform_cost list -> unit
