module Lang = Armb_litmus.Lang

type shape = {
  data_var : string;
  flag_var : string;
  data_val : int64;
  flag_val : int64;
  producer : int;
  consumer : int;
}

let word_var = "word"

let mask32 = 0xFFFF_FFFFL

let fits_u32 v = Int64.logand v mask32 = v

let accesses instrs =
  List.filter (function Lang.Load _ | Lang.Store _ -> true | Lang.Fence _ -> false) instrs

let init_of t var =
  match List.assoc_opt var t.Lang.init with Some v -> v | None -> 0L

(* Probe the opaque [interesting] predicate with a fabricated outcome:
   the consumer's two registers get the given values, final memory gets
   the published values (every complete execution performs both
   stores). *)
let probe t ~consumer ~flag_reg ~data_reg ~shape (flag_v, data_v) =
  let lookup key =
    if key = Printf.sprintf "%d:%s" consumer flag_reg then flag_v
    else if key = Printf.sprintf "%d:%s" consumer data_reg then data_v
    else if key = "mem:" ^ shape.data_var then shape.data_val
    else if key = "mem:" ^ shape.flag_var then shape.flag_val
    else 0L
  in
  t.Lang.interesting lookup

let detect_pair t ~producer ~consumer =
  let pt = accesses (List.nth t.Lang.threads producer) in
  let ct = accesses (List.nth t.Lang.threads consumer) in
  match (pt, ct) with
  | ( [
        Lang.Store { var = data_var; v = Lang.Const data_val; _ };
        Lang.Store { var = flag_var; v = Lang.Const flag_val; _ };
      ],
      [
        Lang.Load { var = lv1; reg = flag_reg; _ };
        Lang.Load { var = lv2; reg = data_reg; _ };
      ] )
    when data_var <> flag_var && lv1 = flag_var && lv2 = data_var ->
    let data_init = init_of t data_var and flag_init = init_of t flag_var in
    let shape = { data_var; flag_var; data_val; flag_val; producer; consumer } in
    if
      List.for_all fits_u32 [ data_val; flag_val; data_init; flag_init ]
      && flag_val <> flag_init && data_val <> data_init
      (* behavioural confirmation: stale-data-after-flag is the (only)
         interesting outcome among the four MP corners *)
      && probe t ~consumer ~flag_reg ~data_reg ~shape (flag_val, data_init)
      && (not (probe t ~consumer ~flag_reg ~data_reg ~shape (flag_val, data_val)))
      && (not (probe t ~consumer ~flag_reg ~data_reg ~shape (flag_init, data_init)))
      && not (probe t ~consumer ~flag_reg ~data_reg ~shape (flag_init, data_val))
    then Some shape
    else None
  | _ -> None

let detect (t : Lang.test) =
  match t.Lang.threads with
  | [ _; _ ] -> (
    match detect_pair t ~producer:0 ~consumer:1 with
    | Some s -> Some s
    | None -> detect_pair t ~producer:1 ~consumer:0)
  | _ -> None

let pick_word_var t =
  let used = Lang.vars t in
  let rec go base i =
    let v = if i = 0 then base else Printf.sprintf "%s%d" base i in
    if List.mem v used then go base (i + 1) else v
  in
  go word_var 0

let pack ~flag ~data = Int64.logor (Int64.shift_left flag 32) (Int64.logand data mask32)

let rewrite t =
  match detect t with
  | None -> None
  | Some s ->
    let w = pick_word_var t in
    let flag_init = init_of t s.flag_var and data_init = init_of t s.data_var in
    let reg = "r1" in
    let consumer_key = Printf.sprintf "%d:%s" s.consumer reg in
    let threads =
      List.mapi
        (fun i _ ->
          if i = s.producer then [ Lang.st w (pack ~flag:s.flag_val ~data:s.data_val) ]
          else [ Lang.ld w reg ])
        t.Lang.threads
    in
    let flag_val = s.flag_val and data_val = s.data_val in
    let rewritten =
      {
        Lang.name = t.Lang.name ^ "+pilot";
        description =
          Printf.sprintf
            "Pilot rewrite of %s: %s and %s packed into one aligned 64-bit word %s; \
             single-copy atomicity publishes both together, no barrier needed."
            t.Lang.name s.data_var s.flag_var w;
        init = [ (w, pack ~flag:flag_init ~data:data_init) ];
        threads;
        interesting =
          (fun o ->
            let v = o consumer_key in
            Int64.shift_right_logical v 32 = flag_val
            && Int64.logand v mask32 <> data_val);
        expect_tso = false;
        expect_wmm = false;
      }
    in
    Some (s, rewritten)
