(** End-to-end repair: search + Pilot rewrite + per-platform costing.

    [fix] turns a test that admits its forbidden outcome into a ranked
    set of repaired tests: every irredundant sufficient edit set from
    {!Search}, plus the {!Pilot_rewrite} candidate when the test is
    MP-shaped (itself re-verified against the enumerator before it is
    admitted).  Each survivor is costed on every calibrated platform
    model; winners are picked per platform and genuinely differ across
    them — the point of Observation 4.

    [strip_round_trip] is the acceptance harness: strip a hand-fenced
    catalogue test of its ordering devices (keeping data-dependency
    values so the repair vocabulary can win them back), re-synthesize,
    and check the result is sufficient, irredundant and no more
    expensive than the original hand-fenced version on any platform. *)

module Lang = Armb_litmus.Lang

type kind = Edits of Placement.edit list | Pilot

type repair = {
  label : string;
  kind : kind;
  test : Lang.test;  (** the repaired program *)
  static_cost : int;  (** {!Placement.total_cost}; 0 for Pilot *)
  irredundant : bool;  (** re-verified via {!Search.irredundant} *)
  advisor : string list;
      (** {!Armb_core.Advisor.best} hint per edit, for the report *)
  costs : Cost.platform_cost list;
}

type outcome = {
  original : Lang.test;
  already_sound : bool;  (** the input needed no repair *)
  repairs : repair list;  (** static-cost order, Pilot last *)
  winners : (string * repair) list;
      (** platform name -> simulated-cheapest repair *)
  search_complete : bool;
  oracle_calls : int;
}

val fix :
  ?max_edits:int ->
  ?budget:int ->
  ?trials:int ->
  ?seed:int ->
  ?sound:(Lang.test -> bool) ->
  Lang.test ->
  outcome
(** Defaults follow {!Search.search} and {!Cost.measure}. *)

type round_trip = {
  test_name : string;
  stripped : Lang.test;
  original_costs : Cost.platform_cost list;
  outcome : outcome;
  sufficient_ok : bool;  (** every repair passes the soundness oracle *)
  irredundant_ok : bool;
  cost_ok : bool;
      (** per-platform winner cost <= original hand-fenced cost *)
  pilot_expected : bool;  (** the stripped test is MP-shaped *)
  pilot_ok : bool;
      (** when expected: Pilot present and simulated-cheapest on every
          platform (trivially true otherwise) *)
  ok : bool;  (** conjunction of the above plus non-empty repairs *)
}

val strip_round_trip :
  ?max_edits:int ->
  ?budget:int ->
  ?trials:int ->
  ?seed:int ->
  Lang.test ->
  round_trip option
(** [None] when the test is not eligible: its weak outcome is expected
    under WMM, or stripping removes nothing the synthesizer could
    re-insert ({!Armb_litmus.Mutate.has_strippable_devices} with
    [~keep_values:true]). *)

val catalogue_round_trips :
  ?max_edits:int -> ?budget:int -> ?trials:int -> ?seed:int -> unit -> round_trip list
(** {!strip_round_trip} over every eligible catalogue test. *)

val find_test : string -> Lang.test option
(** Catalogue lookup by (case-insensitive) name. *)

val fix_rc :
  ?max_edits:int -> ?budget:int -> Armb_platform.Run_config.t -> Lang.test -> outcome
(** {!fix} with trials and seed drawn from a validated
    {!Armb_platform.Run_config} — the pure entry point the job-service
    engine memoizes. *)
