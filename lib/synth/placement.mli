(** Placement IR for the fence synthesizer: candidate point edits over a
    {!Armb_litmus.Lang.test}.

    Every edit is {e value-neutral}: it inserts a fence, upgrades an
    existing access to acquire/release, or threads a bogus address
    dependency from an earlier load — it never changes what values are
    stored, so the edited test computes the same outcomes as the
    original wherever the architecture forces order.  (Data
    dependencies are deliberately absent from the vocabulary: making a
    store's value register-dependent changes the stored value, which a
    repair must not do.) *)

module Lang = Armb_litmus.Lang

type edit =
  | Insert_fence of { thread : int; pos : int; fence : Lang.fence }
      (** insert [fence] before instruction [pos] of [thread] *)
  | Make_acquire of { thread : int; idx : int }
      (** turn the load at [idx] into a load-acquire (LDAR) *)
  | Make_release of { thread : int; idx : int }
      (** turn the store at [idx] into a store-release (STLR) *)
  | Add_addr_dep of { thread : int; idx : int; reg : Lang.reg }
      (** bogus address dependency: the access at [idx] indexes with the
          value loaded into [reg] by an earlier load of the same thread *)

val apply : Lang.test -> edit list -> Lang.test
(** Apply an edit set.  Attribute edits (acquire/release/addr-dep) are
    applied first so instruction indices stay valid, then fence
    insertions from the highest position down; the result is renamed
    ["<name>+fixN"] with [N] the edit count. *)

val candidates : Lang.test -> edit list
(** Every applicable point edit, cheapest first (see {!static_cost}):
    all five fences at every inter-instruction gap, acquire upgrades for
    plain loads, release upgrades for plain stores, and address
    dependencies from each load to each later dependency-free access
    that does not already consume its register. *)

val static_cost : edit -> int
(** Architectural cost prior, used only to order the search so cheap
    repairs are found first — platform-measured cycles (see {!Cost})
    decide winners.  Ranks follow the paper's Table 3 / Figure 3:
    dependency < acquire < release < one-direction DMB < ISB < DMB <
    DSB. *)

val total_cost : edit list -> int

val thread_of : edit -> int

val ordering_of_edit : edit -> Armb_core.Ordering.t
(** The Table-3 approach an edit corresponds to, for cross-referencing
    repairs against {!Armb_core.Advisor}. *)

val advisor_hint : Lang.test -> edit -> Armb_core.Ordering.t option
(** What {!Armb_core.Advisor.best} recommends for the program point the
    edit lands on (classified by the nearest preceding access and the
    accesses that follow it); [None] when the point has no preceding
    access to order. *)

val edit_to_string : Lang.test -> edit -> string
val pp_edit : Lang.test -> Format.formatter -> edit -> unit
