module Lang = Armb_litmus.Lang
module Enumerate = Armb_litmus.Enumerate

type outcome = {
  repairs : Placement.edit list list;
  oracle_calls : int;
  complete : bool;
}

let default_sound t = not (Enumerate.allows Enumerate.Wmm t)

exception Out_of_budget

let is_subset small big = List.for_all (fun e -> List.mem e big) small

let search ?(max_edits = 3) ?(budget = 4000) ?(sound = default_sound) ?candidates t =
  let cands =
    match candidates with Some c -> c | None -> Placement.candidates t
  in
  let calls = ref 0 in
  let found = ref [] in
  let check set =
    if !calls >= budget then raise Out_of_budget;
    incr calls;
    sound (Placement.apply t set)
  in
  (* Enumerate k-subsets of [cands] in lexicographic order of the
     static-cost-sorted candidate list; a subset that contains an
     already-found repair is sufficient but redundant, so it is pruned
     without an oracle call. *)
  let arr = Array.of_list cands in
  let n = Array.length arr in
  let rec walk k start acc_rev =
    if k = 0 then begin
      let set = List.rev acc_rev in
      if (not (List.exists (fun r -> is_subset r set) !found)) && check set then
        found := !found @ [ set ]
    end
    else
      for i = start to n - k do
        walk (k - 1) (i + 1) (arr.(i) :: acc_rev)
      done
  in
  let complete =
    try
      for k = 1 to min max_edits n do
        walk k 0 []
      done;
      true
    with Out_of_budget -> false
  in
  { repairs = !found; oracle_calls = !calls; complete }

let irredundant ~sound t set =
  sound (Placement.apply t set)
  && List.for_all
       (fun e -> not (sound (Placement.apply t (List.filter (fun x -> x <> e) set))))
       set
