module Lang = Armb_litmus.Lang
module Mutate = Armb_litmus.Mutate
module Enumerate = Armb_litmus.Enumerate
module Fuzz = Armb_litmus.Fuzz
module Sim_runner = Armb_litmus.Sim_runner
module Rng = Armb_sim.Rng

type report = {
  tests : int;
  skipped_no_devices : int;
  stripped_still_sound : int;
  repaired : int;
  no_repair : int;
  unsound : int;
  redundant : int;
  sim_violations : int;
  oracle_calls : int;
  failures : string list;
}

let ok r = r.unsound = 0 && r.redundant = 0 && r.sim_violations = 0

let outcome_set t =
  List.map Enumerate.outcome_to_string (Enumerate.enumerate Enumerate.Wmm t)

let subset a b = List.for_all (fun x -> List.mem x b) a

(* [k] distinct random picks from [arr] (k <= length). *)
let sample rng arr k =
  let n = Array.length arr in
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Rng.int rng (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  List.init k (fun i -> arr.(idx.(i)))

(* Tight two-thread skeletons: randomized instances of the classic
   communication shapes (MP, SB, LB, 2+2W) with shuffled variable roles,
   thread order and store values.  Broad fuzz tests have near-maximal
   outcome sets, so ordering devices are almost always inert on them;
   these shapes are exactly where a device forbids something, which is
   what makes the repair path exercise. *)
let shaped_skeleton rng =
  let x, y = if Rng.bool rng then ("x", "y") else ("y", "x") in
  let v () = Int64.of_int (1 + Rng.int rng 3) in
  let t0, t1 =
    match Rng.int rng 4 with
    | 0 ->
      (* MP: publish two locations / read them back in reverse *)
      ([ Lang.st x (v ()); Lang.st y (v ()) ], [ Lang.ld y "r1"; Lang.ld x "r2" ])
    | 1 ->
      (* SB: each side stores its own then reads the other's *)
      ([ Lang.st x (v ()); Lang.ld y "r1" ], [ Lang.st y (v ()); Lang.ld x "r1" ])
    | 2 ->
      (* LB: each side loads the other's then stores its own *)
      ([ Lang.ld x "r1"; Lang.st y (v ()) ], [ Lang.ld y "r1"; Lang.st x (v ()) ])
    | _ ->
      (* 2+2W: both sides store both locations, opposite orders *)
      ([ Lang.st x (v ()); Lang.st y (v ()) ], [ Lang.st y (v ()); Lang.st x (v ()) ])
  in
  let threads = if Rng.bool rng then [ t0; t1 ] else [ t1; t0 ] in
  {
    Lang.name = "shaped";
    description = "randomized two-thread communication skeleton";
    init = [ ("x", 0L); ("y", 0L) ];
    threads;
    interesting = (fun _ -> false);
    expect_tso = false;
    expect_wmm = false;
  }

(* One soak iteration as a first-class record, so the unified soak
   subsystem (lib/soak) and the classic aggregate report below both
   consume the same stream of rounds. *)

type status =
  | Skipped_no_devices
  | Still_sound
  | Repaired of int  (** minimal repair sets found *)
  | No_repair

type round = {
  index : int;
  test_name : string;
  status : status;
  unsound : int;
  redundant : int;
  sim_violations : int;
  oracle_calls : int;
  failures : string list;
}

let round_ok r = r.unsound = 0 && r.redundant = 0 && r.sim_violations = 0 && r.failures = []

let run_round ~seed ~max_edits ~budget ~sim_trials rng i =
  let unsound = ref 0 and redundant = ref 0 in
  let sim_violations = ref 0 and calls = ref 0 in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* A fuzzed test reduced to its access skeleton, then re-armed with
     a random ground-truth device set drawn from the same vocabulary
     the repairer uses.  Stripping the armed test recovers the
     skeleton, so the synthesizer is asked to win back (a minimal
     subset of) exactly what was injected — soundness is monotone in
     the edit set, so a sufficient repair within [max_edits] edits is
     guaranteed to exist whenever the budget lets the search reach
     it. *)
  let skeleton =
    if Rng.int rng 4 = 0 then
      Mutate.strip_order ~keep_values:true (Fuzz.generate ~with_isb:true rng)
    else shaped_skeleton rng
  in
  let skeleton = Mutate.rename (Printf.sprintf "fuzz-fix-%d" i) skeleton in
  let cands = Array.of_list (Placement.candidates skeleton) in
  let status =
    if Array.length cands = 0 then Skipped_no_devices
    else begin
      let k = min max_edits (Array.length cands) in
      let injected =
        (* A one-sided device set is almost always inert (MP needs both
           the producer and the consumer armed), so spread multi-edit
           injections across distinct threads when possible. *)
        let threads =
          List.sort_uniq compare (List.map Placement.thread_of (Array.to_list cands))
        in
        if k >= 2 && List.length threads >= 2 then
          let pick th =
            let pool = Array.of_list
                (List.filter (fun e -> Placement.thread_of e = th) (Array.to_list cands))
            in
            pool.(Rng.int rng (Array.length pool))
          in
          let ths = sample rng (Array.of_list threads) (min k (List.length threads)) in
          let spread = List.map pick ths in
          let extra = k - List.length spread in
          if extra > 0 then spread @ sample rng cands extra else spread
        else sample rng cands k
      in
      let injected = List.sort_uniq compare injected in
      let original = Placement.apply skeleton injected in
      let allowed = outcome_set original in
      let sound tt =
        incr calls;
        subset (outcome_set tt) allowed
      in
      if subset (outcome_set skeleton) allowed then
        (* the injected devices forbid nothing observable *)
        Still_sound
      else begin
        let s = Search.search ~max_edits ~budget ~sound skeleton in
        match s.Search.repairs with
        | [] ->
          if s.Search.complete then
            (* cannot happen: [injected] itself is sufficient and within
               [max_edits]; a complete search must find a subset of it *)
            fail "%s: complete search found no repair despite injected [%s]"
              skeleton.Lang.name
              (String.concat "; "
                 (List.map (Placement.edit_to_string skeleton) injected));
          No_repair
        | sets ->
          List.iter
            (fun set ->
              let rt = Placement.apply skeleton set in
              if not (subset (outcome_set rt) allowed) then begin
                incr unsound;
                fail "%s: UNSOUND repair [%s]" skeleton.Lang.name
                  (String.concat "; " (List.map (Placement.edit_to_string skeleton) set))
              end;
              if not (Search.irredundant ~sound skeleton set) then begin
                incr redundant;
                fail "%s: REDUNDANT repair [%s]" skeleton.Lang.name
                  (String.concat "; " (List.map (Placement.edit_to_string skeleton) set))
              end)
            sets;
          (* differential: the cheapest repair on the timing simulator
             must stay inside its own WMM set (the fuzzer's core
             property, now applied to synthesized programs) *)
          let cheapest = Placement.apply skeleton (List.hd sets) in
          let own = outcome_set cheapest in
          let r = Sim_runner.run ~trials:sim_trials ~seed:(seed + i) cheapest in
          List.iter
            (fun (o, _) ->
              if not (List.mem o own) then begin
                incr sim_violations;
                fail "%s: simulator outcome outside WMM set: %s" cheapest.Lang.name o
              end)
            r.Sim_runner.outcomes;
          Repaired (List.length sets)
      end
    end
  in
  {
    index = i;
    test_name = skeleton.Lang.name;
    status;
    unsound = !unsound;
    redundant = !redundant;
    sim_violations = !sim_violations;
    oracle_calls = !calls;
    failures = List.rev !failures;
  }

let run_rounds ?(tests = 20) ?(seed = 2024) ?(max_edits = 2) ?(budget = 1200)
    ?(sim_trials = 25) () =
  let rng = Rng.create seed in
  List.init tests (fun i -> run_round ~seed ~max_edits ~budget ~sim_trials rng (i + 1))

let report_of_rounds rounds =
  let count f = List.length (List.filter f rounds) in
  {
    tests = List.length rounds;
    skipped_no_devices = count (fun r -> r.status = Skipped_no_devices);
    stripped_still_sound = count (fun r -> r.status = Still_sound);
    repaired = count (fun r -> match r.status with Repaired _ -> true | _ -> false);
    no_repair = count (fun r -> r.status = No_repair);
    unsound = List.fold_left (fun a r -> a + r.unsound) 0 rounds;
    redundant = List.fold_left (fun a r -> a + r.redundant) 0 rounds;
    sim_violations = List.fold_left (fun a r -> a + r.sim_violations) 0 rounds;
    oracle_calls = List.fold_left (fun a r -> a + r.oracle_calls) 0 rounds;
    failures = List.concat_map (fun r -> r.failures) rounds;
  }

let run ?tests ?seed ?max_edits ?budget ?sim_trials () =
  report_of_rounds (run_rounds ?tests ?seed ?max_edits ?budget ?sim_trials ())

let pp_report ppf r =
  Format.fprintf ppf
    "fix-soak: %d tests (%d no candidates, %d inert devices), %d repaired, %d \
     exhausted, %d oracle calls; unsound %d, redundant %d, sim violations %d"
    r.tests r.skipped_no_devices r.stripped_still_sound r.repaired r.no_repair
    r.oracle_calls r.unsound r.redundant r.sim_violations;
  List.iter (fun f -> Format.fprintf ppf "@.  %s" f) r.failures
