(** Branch-and-bound search for minimal sufficient edit sets.

    Soundness is decided by an oracle over the edited test — by default
    "the forbidden outcome is unreachable under the exhaustive WMM
    enumerator" ({!Armb_litmus.Enumerate.allows}).  The search walks
    subsets of {!Placement.candidates} level by level (all singletons,
    then all pairs, ...), skipping any superset of an already-found
    repair.  Because every strict subset of a candidate set has been
    tested (and found insufficient) before the set itself, everything
    reported is exactly the set of {e irredundant} sufficient repairs:
    dropping any single edit re-admits the forbidden outcome. *)

module Lang = Armb_litmus.Lang

type outcome = {
  repairs : Placement.edit list list;
      (** every irredundant sufficient edit set found, in discovery
          order (static-cost-lexicographic, cheapest first) *)
  oracle_calls : int;
  complete : bool;
      (** false when the oracle-call budget truncated the walk — there
          may be further repairs beyond the ones reported *)
}

val default_sound : Lang.test -> bool
(** [not (Enumerate.allows Wmm t)] — the forbidden outcome is
    unreachable under the weak model. *)

val search :
  ?max_edits:int ->
  ?budget:int ->
  ?sound:(Lang.test -> bool) ->
  ?candidates:Placement.edit list ->
  Lang.test ->
  outcome
(** Defaults: [max_edits] 3, [budget] 4000 oracle calls,
    [sound] {!default_sound}, [candidates] {!Placement.candidates}.
    The original (zero-edit) test is {e not} checked: callers decide
    what an already-sound input means. *)

val irredundant : sound:(Lang.test -> bool) -> Lang.test -> Placement.edit list -> bool
(** Explicit re-verification that dropping any single edit of a
    sufficient set re-admits the forbidden outcome (the property the
    level-wise walk guarantees by construction; exposed for reports and
    tests). *)
