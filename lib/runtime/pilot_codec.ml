(* The native instance of the canonical Pilot codec: payloads are
   immediate OCaml ints, so pool draws are truncated to 62 bits (the
   same truncation Rng.int applies) to stay non-negative. *)
include Armb_primitives.Pilot_word.Make (struct
  type t = int

  let equal = Int.equal
  let logxor = ( lxor )
  let zero = 0
  let of_pool v = Int64.to_int (Int64.shift_right_logical v 2)
end)
