(* Release-word payloads follow the shared delegation encoding
   (Armb_primitives.Delegation): 0 waiting, 1 combiner handoff,
   (ret<<2)|3 completed.  In pilot mode the same payloads travel
   Pilot-encoded, so repeated releases of the same node always change
   the word. *)
module Delegation = Armb_primitives.Delegation.Over_int

type node = {
  mutable req : (unit -> int) option;
  release : int Atomic.t;
  release_flag : int Atomic.t; (* pilot collision fallback *)
  next : node option Atomic.t;
  mutable snd : Pilot_codec.sender;
  mutable rcv : Pilot_codec.receiver;
}

type t = {
  id : int;
  tail : node Atomic.t;
  pilot : bool;
  combine_bound : int;
  combine_count : int Atomic.t;
  pool : int array;
}

let make_node pool =
  {
    req = None;
    release = Atomic.make 0;
    release_flag = Atomic.make 0;
    next = Atomic.make None;
    snd = Pilot_codec.sender pool;
    rcv = Pilot_codec.receiver pool;
  }

let fresh_node t = make_node t.pool

let next_lock_id = Atomic.make 0

let create ?(pilot = false) ?(combine_bound = 64) () =
  if combine_bound < 1 then invalid_arg "Dsmsynch.create";
  let pool = Pilot_codec.make_pool ~seed:23 () in
  let boot = make_node pool in
  (* The bootstrap node is pre-released as "combiner handoff". *)
  (if pilot then
     match Pilot_codec.encode boot.snd Delegation.handoff with
     | Pilot_codec.Write_data d -> Atomic.set boot.release d
     | Pilot_codec.Toggle_flag -> assert false
   else Atomic.set boot.release Delegation.handoff);
  {
    id = Atomic.fetch_and_add next_lock_id 1;
    tail = Atomic.make boot;
    pilot;
    combine_bound;
    combine_count = Atomic.make 0;
    pool;
  }

let release t node payload =
  if t.pilot then begin
    match Pilot_codec.encode node.snd payload with
    | Pilot_codec.Write_data d -> Atomic.set node.release d
    | Pilot_codec.Toggle_flag ->
      Atomic.set node.release_flag (Atomic.get node.release_flag lxor 1)
  end
  else Atomic.set node.release payload

let await t node =
  let b = Backoff.create () in
  if t.pilot then begin
    let rec go () =
      let d = Atomic.get node.release in
      let f = Atomic.get node.release_flag in
      match Pilot_codec.try_decode node.rcv ~data:d ~flag:f with
      | Some payload -> payload
      | None ->
        Backoff.once b;
        go ()
    in
    go ()
  end
  else begin
    let rec go () =
      let v = Atomic.get node.release in
      if v <> 0 then v
      else begin
        Backoff.once b;
        go ()
      end
    in
    go ()
  end

(* Per-domain spare node, rotated CC-Synch style.  Domain-local storage
   keys the spare by (lock, domain). *)
let spares : (int * int, node) Hashtbl.t = Hashtbl.create 64

let spares_lock = Mutex.create ()

let get_spare t =
  let key = (t.id, (Domain.self () :> int)) in
  Mutex.lock spares_lock;
  let n =
    match Hashtbl.find_opt spares key with
    | Some n ->
      Hashtbl.remove spares key;
      n
    | None -> fresh_node t
  in
  Mutex.unlock spares_lock;
  n

let put_spare t node =
  let key = (t.id, (Domain.self () :> int)) in
  Mutex.lock spares_lock;
  Hashtbl.replace spares key node;
  Mutex.unlock spares_lock

let exec t f =
  let fresh = get_spare t in
  Atomic.set fresh.next None;
  if not t.pilot then Atomic.set fresh.release 0;
  let cur = Atomic.exchange t.tail fresh in
  cur.req <- Some f;
  Atomic.set cur.next (Some fresh);
  let payload = await t cur in
  let result =
    if Delegation.is_handoff payload then begin
      (* We are the combiner: serve the chain starting at our own node. *)
      let my_ret = ref 0 in
      let tmp = ref cur and budget = ref t.combine_bound and looping = ref true in
      while !looping do
        match Atomic.get !tmp.next with
        | None ->
          release t !tmp Delegation.handoff;
          looping := false
        | Some nxt when !budget = 0 ->
          ignore nxt;
          release t !tmp Delegation.handoff;
          looping := false
        | Some nxt ->
          let g = match !tmp.req with Some g -> g | None -> fun () -> 0 in
          let r = g () in
          !tmp.req <- None;
          decr budget;
          if !tmp == cur then my_ret := r
          else begin
            Atomic.incr t.combine_count;
            release t !tmp (Delegation.pack ~ret:r ~completed:true)
          end;
          tmp := nxt
      done;
      !my_ret
    end
    else fst (Delegation.unpack payload)
  in
  put_spare t cur;
  result

let combines t = Atomic.get t.combine_count
