type t = { next : int Atomic.t; serving : int Atomic.t }

(* Native instance of the shared ticket-lock protocol body
   (Armb_primitives.Ticket_proto): seq_cst atomics carry the fences, a
   waiter spins on [serving] under exponential backoff. *)
module Proto = Armb_primitives.Ticket_proto.Make (struct
  type ctx = unit
  type lock = t
  type value = int

  let succ v = v + 1
  let equal = Int.equal
  let take_ticket () l = Atomic.fetch_and_add l.next 1
  let read_serving () l = Atomic.get l.serving

  let wait_serving () l my =
    let b = Backoff.create () in
    while Atomic.get l.serving <> my do
      Backoff.once b
    done

  let acquired_fence () = ()
  let publish_serving () l v = Atomic.set l.serving v
end)

let create () = { next = Atomic.make 0; serving = Atomic.make 0 }

let acquire t = Proto.acquire () t

let release t = Proto.release () t

let with_lock t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e

let holders_served t = Atomic.get t.serving
