(* Native instance of the shared seqlock protocol body
   (Armb_primitives.Seqlock_proto): words are SC atomics (no explicit
   fences needed), readers back off exponentially while a writer is
   inside or after a torn snapshot. *)
module Proto = Armb_primitives.Seqlock_proto.Make (struct
  type ctx = Backoff.t
  type loc = int Atomic.t
  type value = int

  let succ v = v + 1
  let equal = Int.equal
  let odd v = v land 1 = 1
  let read _ l = Atomic.get l
  let write _ l v = Atomic.set l v
  let read_payload _ cells = Array.map Atomic.get cells
  let write_payload _ cells payload = Array.iteri (fun i v -> Atomic.set cells.(i) v) payload
  let enter_fence _ = ()
  let exit_fence _ = ()
  let pre_read_fence _ = ()
  let post_read_fence _ = ()
  let wait_writer b _ _ = Backoff.once b
  let on_retry b = Backoff.once b
end)

type t = Proto.t

let create ~words =
  if words <= 0 then invalid_arg "Seqlock.create";
  { Proto.seq = Atomic.make 0; cells = Array.init words (fun _ -> Atomic.make 0) }

let write t payload = Proto.write t (Backoff.create ()) payload

let read t = Proto.read t (Backoff.create ())

let writes t = Atomic.get t.Proto.seq / 2
