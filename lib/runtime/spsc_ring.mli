(** Native single-producer single-consumer ring buffer over OCaml 5
    atomics — the runtime counterpart of the paper's Algorithm 2.

    OCaml exposes only sequentially-consistent atomics, so the
    counter publication already carries (more than) the DMB st
    ordering; the structure still demonstrates Pilot's other benefit,
    fewer shared cache lines (see {!Pilot_channel}). *)

type t

val create : slots:int -> t
(** [slots] must be a power of two. *)

val try_send : t -> int -> bool

val send : t -> int -> unit
(** Blocking send with exponential backoff. *)

val try_recv : t -> int option

val recv : t -> int

val length : t -> int
(** Messages currently buffered (racy snapshot). *)

(** The same single-producer single-consumer protocol over arbitrary
    payloads: the slot write is published by the seq_cst producer-counter
    store and acquired by the consumer's counter load, so boxed payloads
    cross domains data-race free.  This is the request/response data
    plane of the sharded job service ({!Armb_service.Shard}). *)
module Poly : sig
  type 'a t

  val create : slots:int -> 'a t
  (** [slots] must be a power of two. *)

  val try_send : 'a t -> 'a -> bool

  val send : 'a t -> 'a -> unit
  (** Blocking send with exponential backoff. *)

  val try_recv : 'a t -> 'a option

  val recv : 'a t -> 'a

  val length : 'a t -> int
  (** Messages currently buffered (racy snapshot). *)
end
