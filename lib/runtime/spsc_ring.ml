type t = {
  slots : int array;
  mask : int;
  prod : int Atomic.t;
  cons : int Atomic.t;
}

let create ~slots =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Spsc_ring.create: slots must be a positive power of two";
  {
    slots = Array.make slots 0;
    mask = slots - 1;
    prod = Atomic.make 0;
    cons = Atomic.make 0;
  }

let try_send t v =
  let p = Atomic.get t.prod in
  if p - Atomic.get t.cons > t.mask then false
  else begin
    t.slots.(p land t.mask) <- v;
    (* Publishing the counter with a seq_cst store orders the slot fill
       before it — the native stand-in for "DMB st". *)
    Atomic.set t.prod (p + 1);
    true
  end

let send t v =
  let b = Backoff.create () in
  while not (try_send t v) do
    Backoff.once b
  done

let try_recv t =
  let c = Atomic.get t.cons in
  if Atomic.get t.prod = c then None
  else begin
    let v = t.slots.(c land t.mask) in
    Atomic.set t.cons (c + 1);
    Some v
  end

let recv t =
  let b = Backoff.create () in
  let rec go () =
    match try_recv t with
    | Some v -> v
    | None ->
      Backoff.once b;
      go ()
  in
  go ()

let length t = max 0 (Atomic.get t.prod - Atomic.get t.cons)

(* Generic payloads under the same protocol.  The slot write is plain;
   publishing the producer counter with a seq_cst store is the release
   edge, the consumer's counter load the acquire edge, so the payload
   is data-race free exactly like the int ring's slots.  The consumer
   clears the slot after reading so the ring never pins dead payloads
   live across a lap. *)
module Poly = struct
  type 'a t = {
    slots : 'a option array;
    mask : int;
    prod : int Atomic.t;
    cons : int Atomic.t;
  }

  let create ~slots =
    if slots <= 0 || slots land (slots - 1) <> 0 then
      invalid_arg "Spsc_ring.Poly.create: slots must be a positive power of two";
    {
      slots = Array.make slots None;
      mask = slots - 1;
      prod = Atomic.make 0;
      cons = Atomic.make 0;
    }

  let try_send t v =
    let p = Atomic.get t.prod in
    if p - Atomic.get t.cons > t.mask then false
    else begin
      t.slots.(p land t.mask) <- Some v;
      Atomic.set t.prod (p + 1);
      true
    end

  let send t v =
    let b = Backoff.create () in
    while not (try_send t v) do
      Backoff.once b
    done

  let try_recv t =
    let c = Atomic.get t.cons in
    if Atomic.get t.prod = c then None
    else begin
      let v = t.slots.(c land t.mask) in
      t.slots.(c land t.mask) <- None;
      Atomic.set t.cons (c + 1);
      v
    end

  let recv t =
    let b = Backoff.create () in
    let rec go () =
      match try_recv t with
      | Some v -> v
      | None ->
        Backoff.once b;
        go ()
    in
    go ()

  let length t = max 0 (Atomic.get t.prod - Atomic.get t.cons)
end
