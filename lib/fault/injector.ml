module Rng = Armb_sim.Rng

type t = {
  spec : Plan.spec;
  rng : Rng.t;
  mutable digest : int64;
  mutable queries : int;
  mutable faults : int;
  mutable barrier_nacks : int;
  mutable snoop_delays : int;
  mutable dram_jitters : int;
  mutable stalls : int;
  mutable delay_cycles : int;
}

let create spec =
  Plan.validate spec;
  {
    spec;
    rng = Rng.create (spec.Plan.seed lxor 0x0FA17);
    digest = 0L;
    queries = 0;
    faults = 0;
    barrier_nacks = 0;
    snoop_delays = 0;
    dram_jitters = 0;
    stalls = 0;
    delay_cycles = 0;
  }

let spec t = t.spec

(* SplitMix64 finalizer, same mixing constants as Rng: good avalanche,
   so the digest distinguishes single-query differences. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let record t ~site value =
  t.queries <- t.queries + 1;
  if value > 0 then t.faults <- t.faults + 1;
  t.digest <-
    mix (Int64.logxor t.digest (Int64.of_int ((site lsl 32) lxor (value lsl 3) lxor site)))

(* One Bernoulli draw followed by a magnitude draw on success.  The
   draw count depends only on the plan and the outcome of the plan's
   own stream, never on simulator state, so replays stay aligned. *)
let fire t prob = prob > 0. && Rng.float t.rng 1.0 < prob

let magnitude t cap = if cap <= 0 then 0 else 1 + Rng.int t.rng cap

let dram_jitter t =
  let s = t.spec in
  let d =
    if fire t s.Plan.dram_jitter_prob then magnitude t s.Plan.dram_jitter_cycles else 0
  in
  record t ~site:1 d;
  if d > 0 then begin
    t.dram_jitters <- t.dram_jitters + 1;
    t.delay_cycles <- t.delay_cycles + d
  end;
  d

let snoop_delay t ~rank =
  let s = t.spec in
  let rank = if rank < 1 then 1 else if rank > 3 then 3 else rank in
  let d =
    if fire t s.Plan.snoop_delay_prob then rank * magnitude t s.Plan.snoop_delay_cycles
    else 0
  in
  record t ~site:2 d;
  if d > 0 then begin
    t.snoop_delays <- t.snoop_delays + 1;
    t.delay_cycles <- t.delay_cycles + d
  end;
  d

let barrier_retries t =
  let s = t.spec in
  if s.Plan.barrier_nack_prob <= 0. || s.Plan.barrier_max_retries <= 0 then begin
    record t ~site:3 0;
    0
  end
  else begin
    (* Each retry round is NACKed again with the same probability, up
       to the plan's cap — geometric with a ceiling, like a fabric that
       must eventually sink the transaction (no livelock). *)
    let n = ref 0 in
    while !n < s.Plan.barrier_max_retries && fire t s.Plan.barrier_nack_prob do
      incr n
    done;
    record t ~site:3 !n;
    t.barrier_nacks <- t.barrier_nacks + !n;
    !n
  end

let backoff_total (b : Plan.backoff) retries =
  let total = ref 0 and step = ref b.Plan.base in
  for _ = 1 to retries do
    total := !total + min !step b.Plan.cap;
    step := !step * b.Plan.multiplier
  done;
  !total

let barrier_delay t =
  let retries = barrier_retries t in
  if retries = 0 then 0
  else begin
    let d = backoff_total t.spec.Plan.barrier_backoff retries in
    t.delay_cycles <- t.delay_cycles + d;
    d
  end

let stall t =
  let s = t.spec in
  let d = if fire t s.Plan.stall_prob then magnitude t s.Plan.stall_cycles else 0 in
  record t ~site:4 d;
  if d > 0 then begin
    t.stalls <- t.stalls + 1;
    t.delay_cycles <- t.delay_cycles + d
  end;
  d

let digest t = t.digest
let combine acc d = mix (Int64.logxor (Int64.add (Int64.mul acc 3L) 1L) d)

type counters = {
  queries : int;
  faults : int;
  barrier_nacks : int;
  snoop_delays : int;
  dram_jitters : int;
  stalls : int;
  delay_cycles : int;
}

let counters (t : t) =
  {
    queries = t.queries;
    faults = t.faults;
    barrier_nacks = t.barrier_nacks;
    snoop_delays = t.snoop_delays;
    dram_jitters = t.dram_jitters;
    stalls = t.stalls;
    delay_cycles = t.delay_cycles;
  }

let pp_counters ppf c =
  Format.fprintf ppf
    "queries=%d faults=%d nacks=%d snoop-delays=%d dram-jitters=%d stalls=%d extra-cycles=%d"
    c.queries c.faults c.barrier_nacks c.snoop_delays c.dram_jitters c.stalls c.delay_cycles
