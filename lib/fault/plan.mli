(** Declarative fault plans for the simulated machine.

    A plan is a pure description of {e which} timing perturbations the
    injector may apply and {e how hard}: it never touches simulator
    state itself.  All perturbations are pure delays — they stretch
    latencies the timing model already treats as unbounded, so they can
    change {e when} things happen but never {e what} the architecture
    allows.  Coherence state machines, store values and the
    forbidden/allowed outcome sets of every litmus test are untouched
    by construction; only schedules move.

    Sites (see {!Injector} for the draw protocol):
    - {b barrier transactions}: a DMB's ACE barrier transaction can be
      NACKed at the interconnect and retried with exponential backoff —
      the retry behaviour §2.3 of the paper describes and the happy
      path idealizes away.
    - {b snoop responses}: cache-to-cache transfers and invalidation
      snoops can be delayed, scaled by the topological distance of the
      hop (farther responders are more exposed).
    - {b DRAM fills}: miss-to-memory latency jitters.
    - {b core stalls}: a core can lose issue slots before a memory
      operation (frontend or dispatch hiccup). *)

type backoff = {
  base : int;  (** extra cycles charged for the first retry *)
  multiplier : int;  (** geometric growth factor between retries *)
  cap : int;  (** per-retry delay ceiling, cycles *)
}

type spec = {
  name : string;
  seed : int;  (** root of the injector's private RNG stream *)
  barrier_nack_prob : float;  (** P(one more NACK) per retry round *)
  barrier_max_retries : int;  (** NACK rounds before the fabric must accept *)
  barrier_backoff : backoff;
  snoop_delay_prob : float;  (** P(delay) per snooped transfer/invalidation *)
  snoop_delay_cycles : int;  (** max extra cycles at rank 1; scales with rank *)
  dram_jitter_prob : float;  (** P(jitter) per DRAM fill *)
  dram_jitter_cycles : int;  (** max extra cycles per jittered fill *)
  stall_prob : float;  (** P(stall) per issued memory operation *)
  stall_cycles : int;  (** max lost cycles per stall *)
}

val default_backoff : backoff

val none : spec
(** The null plan: every probability zero.  {!is_null} holds. *)

val is_null : spec -> bool
(** No site can ever fire: wiring this plan must be equivalent to
    wiring no plan at all (the machine drops it at creation). *)

val of_intensity : ?seed:int -> ?name:string -> float -> spec
(** A one-knob family used by sweeps: intensity 0.0 is {!none},
    intensity 1.0 is an aggressive but still coherent storm (every
    site armed).  Values outside [0,1] are clamped.  Probabilities and
    magnitudes grow linearly with intensity. *)

val scale : spec -> float -> spec
(** Multiply every probability by the factor (clamped to [0,1]),
    leaving magnitudes alone. *)

val with_seed : spec -> int -> spec

val validate : spec -> unit
(** Raises [Invalid_argument] on negative magnitudes, probabilities
    outside [0,1] or a non-positive backoff. *)

val pp : Format.formatter -> spec -> unit
