(** Deterministic fault injector: the runtime half of a {!Plan.spec}.

    One injector is shared by a whole simulated machine (memory system
    and every core), so all sites draw from a single seeded SplitMix64
    stream.  The simulation itself is deterministic, hence so is the
    sequence of site queries, hence so is every draw: the same plan on
    the same workload replays the same faults cycle for cycle.  The
    rolling {!digest} witnesses exactly that — it folds every query
    (site and magnitude, including the zeros) and must be identical
    across replays.

    Every query returns a {e non-negative extra delay in cycles} (or a
    retry count); callers only ever add it to a latency.  The injector
    never mutates simulator state. *)

type t

val create : Plan.spec -> t
(** Validates the plan. *)

val spec : t -> Plan.spec

(** {2 Site queries} *)

val dram_jitter : t -> int
(** Extra cycles on one DRAM fill. *)

val snoop_delay : t -> rank:int -> int
(** Extra cycles on one snooped transfer/invalidation whose farthest
    responder sits at topological distance [rank] (1 = same cluster,
    2 = same node, 3 = cross node).  Farther hops draw proportionally
    longer delays — the snoop-distance effect under perturbation. *)

val barrier_retries : t -> int
(** Number of NACK rounds this barrier transaction suffers before the
    fabric accepts it (0 = clean first try), capped by the plan. *)

val barrier_delay : t -> int
(** Total extra response delay of one barrier transaction: draws
    {!barrier_retries} and charges the plan's exponential backoff for
    each round.  [0] when the transaction goes through clean. *)

val stall : t -> int
(** Issue-slot cycles lost by a core before one memory operation. *)

(** {2 Determinism witness and accounting} *)

val digest : t -> int64
(** Rolling hash over every query made so far. *)

val combine : int64 -> int64 -> int64
(** Fold one digest into an accumulator (order-sensitive, avalanching) —
    for summarizing a sequence of per-machine digests, e.g. one per
    litmus trial, into a single replay witness. *)

type counters = {
  queries : int;  (** site queries answered *)
  faults : int;  (** queries that returned a non-zero perturbation *)
  barrier_nacks : int;  (** NACK rounds across all barrier transactions *)
  snoop_delays : int;
  dram_jitters : int;
  stalls : int;
  delay_cycles : int;  (** total extra cycles injected *)
}

val counters : t -> counters
val pp_counters : Format.formatter -> counters -> unit
