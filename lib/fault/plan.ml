type backoff = { base : int; multiplier : int; cap : int }

type spec = {
  name : string;
  seed : int;
  barrier_nack_prob : float;
  barrier_max_retries : int;
  barrier_backoff : backoff;
  snoop_delay_prob : float;
  snoop_delay_cycles : int;
  dram_jitter_prob : float;
  dram_jitter_cycles : int;
  stall_prob : float;
  stall_cycles : int;
}

let default_backoff = { base = 8; multiplier = 2; cap = 256 }

let none =
  {
    name = "none";
    seed = 0;
    barrier_nack_prob = 0.;
    barrier_max_retries = 0;
    barrier_backoff = default_backoff;
    snoop_delay_prob = 0.;
    snoop_delay_cycles = 0;
    dram_jitter_prob = 0.;
    dram_jitter_cycles = 0;
    stall_prob = 0.;
    stall_cycles = 0;
  }

let is_null s =
  s.barrier_nack_prob <= 0. && s.snoop_delay_prob <= 0. && s.dram_jitter_prob <= 0.
  && s.stall_prob <= 0.

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let of_intensity ?(seed = 1) ?name x =
  let x = clamp01 x in
  if x = 0. then { none with seed; name = "intensity-0.00" }
  else
    let name =
      match name with Some n -> n | None -> Printf.sprintf "intensity-%.2f" x
    in
    {
      name;
      seed;
      (* Probabilities ramp linearly; magnitudes ramp with intensity so a
         full-strength storm both fires often and hits hard. *)
      barrier_nack_prob = 0.5 *. x;
      barrier_max_retries = 4;
      barrier_backoff = default_backoff;
      snoop_delay_prob = 0.4 *. x;
      snoop_delay_cycles = 1 + int_of_float (60. *. x);
      dram_jitter_prob = 0.5 *. x;
      dram_jitter_cycles = 1 + int_of_float (120. *. x);
      stall_prob = 0.25 *. x;
      stall_cycles = 1 + int_of_float (30. *. x);
    }

let scale s f =
  {
    s with
    barrier_nack_prob = clamp01 (s.barrier_nack_prob *. f);
    snoop_delay_prob = clamp01 (s.snoop_delay_prob *. f);
    dram_jitter_prob = clamp01 (s.dram_jitter_prob *. f);
    stall_prob = clamp01 (s.stall_prob *. f);
  }

let with_seed s seed = { s with seed }

let validate s =
  let prob what p =
    if p < 0. || p > 1. then invalid_arg (Printf.sprintf "Fault.Plan: %s out of [0,1]" what)
  in
  let mag what n =
    if n < 0 then invalid_arg (Printf.sprintf "Fault.Plan: negative %s" what)
  in
  prob "barrier_nack_prob" s.barrier_nack_prob;
  prob "snoop_delay_prob" s.snoop_delay_prob;
  prob "dram_jitter_prob" s.dram_jitter_prob;
  prob "stall_prob" s.stall_prob;
  mag "barrier_max_retries" s.barrier_max_retries;
  mag "snoop_delay_cycles" s.snoop_delay_cycles;
  mag "dram_jitter_cycles" s.dram_jitter_cycles;
  mag "stall_cycles" s.stall_cycles;
  if s.barrier_backoff.base <= 0 || s.barrier_backoff.multiplier < 1
     || s.barrier_backoff.cap < s.barrier_backoff.base
  then invalid_arg "Fault.Plan: bad backoff"

let pp ppf s =
  Format.fprintf ppf
    "@[<v>fault plan %s (seed %d)@,\
     barrier: nack=%.2f retries<=%d backoff=%d*%d^k<=%d@,\
     snoop:   delay=%.2f <=%d cy/rank@,\
     dram:    jitter=%.2f <=%d cy@,\
     core:    stall=%.2f <=%d cy@]"
    s.name s.seed s.barrier_nack_prob s.barrier_max_retries s.barrier_backoff.base
    s.barrier_backoff.multiplier s.barrier_backoff.cap s.snoop_delay_prob
    s.snoop_delay_cycles s.dram_jitter_prob s.dram_jitter_cycles s.stall_prob
    s.stall_cycles
