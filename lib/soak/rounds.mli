(** The unified soak round: one record shape for every
    generate/execute/verify iteration in the tree.

    {!Armb_synth.Soak} and {!Armb_opt.Soak} now produce per-round
    records ([run_rounds]) that convert losslessly into this shape
    ({!of_synth}/{!of_opt}); the service-traffic driver ({!Driver})
    emits it natively for violations.  The classic aggregate reports
    (and their [armb fix --soak] / [armb opt --soak] renderings) are
    folds over the same rounds, so the one-shot CLIs and the farm
    cannot drift apart. *)

type round = {
  index : int;  (** 1-based position in its stream *)
  kind : string;  (** "fix" | "opt" | a service job kind *)
  subject : string;  (** test / program / request id *)
  ok : bool;  (** no fatal finding in this round *)
  detail : string;  (** one-line human outcome *)
  failures : string list;  (** fatal findings, in discovery order *)
}

val ok : round -> bool
val of_synth : Armb_synth.Soak.round -> round
val of_opt : Armb_opt.Soak.round -> round
val all_ok : round list -> bool
val failures : round list -> string list
val pp : Format.formatter -> round -> unit
