(** The deterministic job-stream generator: randomized service traffic
    over every correctness engine in the tree.

    A seeded pool of distinct jobs — catalogue litmus runs, sanitizer
    checks, fault-injection perturb sweeps, strip→repair fix jobs on
    inline communication skeletons with declarative weak-outcome
    predicates, fence-optimization jobs on named over-fenced catalogue
    programs and fuzzed CFGs, plus fuzz/ring/model filler — sampled
    under a Zipf law so a few hot keys dominate (memo-cache and
    coalescing traffic) while the tail keeps cold work arriving.

    Fully deterministic: the same [seed] (and pool parameters)
    reproduces the identical NDJSON line stream, byte for byte — the
    repro-bundle and CI-reproducibility contract.

    Every job carries the {!Invariant.expect} a correct service must
    satisfy, and the pool is built so each expectation is guaranteed by
    design: check/perturb jobs use only hand-verified catalogue tests
    at the cross-check-pinned trials/seed, fix skeletons are unfenced
    shapes whose weak outcome is WMM-reachable and repairable within
    the shipped edit budget, opt inputs are over-fenced. *)

type job = {
  id : string;  (** "soak-<n>", sequential *)
  kind : string;  (** {!Armb_service.Job.kind} of the request *)
  expect : Invariant.expect;
  line : string;  (** the NDJSON request, one line, no newline *)
}

type t
(** A stream cursor: pool plus sampling state. *)

val default_pool : int

val create : ?pool:int -> ?alpha:float -> ?clients:int -> seed:int -> unit -> t
(** Defaults: pool {!default_pool} (= 48) distinct jobs interleaved
    across kinds before truncation (a small pool still mixes every
    kind), Zipf exponent [alpha = 1.1], 16 client names. *)

val pool_size : t -> int

val pool_kinds : t -> string list
(** Distinct job kinds present in the pool, sorted. *)

val next : t -> job

val take_jobs : t -> int -> job list

val stream :
  ?pool:int ->
  ?alpha:float ->
  ?clients:int ->
  requests:int ->
  seed:int ->
  unit ->
  job list
(** [take_jobs (create ...) requests] — the one-shot form behind
    [armb soak --emit] and the determinism tests. *)
