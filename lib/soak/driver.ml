(* The long-lived bounded soak driver.

   Waves of generated requests are pushed through the real service
   stack — the single memoizing engine or the multi-domain sharded
   pool, unchanged — and every response is invariant-checked on the
   exact bytes a client would see.  Shed responses are resubmitted
   through the bounded-backoff Retry client (honoring the engine's
   retry_after_ms hint), so backpressure is exercised, never fatal:
   a request's terminal state is completed, gave-up (reported), or a
   violation (bundled).  Violations persist as self-contained repro
   bundles — seed, the verbatim request NDJSON line, the response —
   and a rolling `armb-soak-metrics-v1` snapshot merges the engine's
   own metrics with the farm's counters, rewritten atomically so a
   tailing reader never sees a torn artifact. *)

module Engine = Armb_service.Engine
module Serve = Armb_service.Serve
module Shard = Armb_service.Shard
module Metrics = Armb_service.Metrics
module Retry = Armb_service.Retry
module Codec = Armb_service.Codec
module Clock = Armb_service.Clock
module Json = Armb_service.Json
module Out = Armb_service.Out

type config = {
  seed : int;
  requests : int;  (** stop after this many submissions; 0 = no count bound *)
  duration_s : float option;  (** stop after this much wall clock *)
  wave : int;  (** requests per wave (one run_batch round trip) *)
  pool : int;
  alpha : float;
  queue_bound : int;
  cache_cap : int;
  domains : int;  (** >= 2 runs the sharded pool *)
  snapshot_every : int;  (** waves between rolling snapshots *)
  metrics_out : string option;
  bundle_dir : string option;
  retry : Retry.policy;
}

let default_config ~seed =
  {
    seed;
    requests = 500;
    duration_s = None;
    wave = 32;
    pool = Gen.default_pool;
    alpha = 1.1;
    queue_bound = 24;
    cache_cap = 512;
    domains = 1;
    snapshot_every = 4;
    metrics_out = None;
    bundle_dir = None;
    retry = Retry.default_policy;
  }

type violation = {
  index : int;  (** 1-based submission index *)
  job : Gen.job;
  response : Engine.response;
  reason : string;
  bundle : string option;  (** repro bundle path, when a dir was given *)
}

type report = {
  submitted : int;
  completed : int;
  cold : int;
  hits : int;
  coalesced : int;
  shed_seen : int;  (** shed responses observed before retrying *)
  retried_ok : int;  (** shed -> retry -> complete cycles *)
  gave_up : int;  (** still shed after the retry policy; reported *)
  errors : int;
  by_kind : (string * int) list;  (** submissions per job kind, sorted *)
  drift_total : float;
  violations : violation list;
  snapshots : int;
  wall_s : float;
  metrics : Metrics.t;
  ok : bool;  (** zero violations *)
}

type backend = Single of Engine.t | Sharded of Shard.t

let backend_metrics = function
  | Single e -> Engine.metrics e
  | Sharded s -> Shard.metrics s

let run_lines backend lines =
  match backend with
  | Single e -> (Serve.run_batch e ~lines).Serve.responses
  | Sharded s -> (Shard.run_batch s ~lines).Serve.responses

(* one-request round trip, for retries *)
let run_one backend (job : Gen.job) =
  match run_lines backend [ job.Gen.line ] with
  | r :: _ -> r
  | [] ->
    {
      Engine.id = job.Gen.id;
      client = "soak";
      reply = Engine.Error "retry produced no response";
    }

let violation_bundle_json ~seed ~index (job : Gen.job) (resp : Engine.response) reason =
  Json.Obj
    [
      ("schema", Json.Str "armb-soak-violation-v1");
      ("seed", Json.Int seed);
      ("index", Json.Int index);
      ("kind", Json.Str job.Gen.kind);
      ("expect", Json.Str (Invariant.expect_to_string job.Gen.expect));
      ("reason", Json.Str reason);
      (* the verbatim NDJSON line: `echo <request> | armb serve` replays it *)
      ("request", Json.Str job.Gen.line);
      ("response", Codec.response_to_json resp);
    ]

let snapshot_json ~cfg ~wall_s ~counters ~by_kind ~violations ~snapshots metrics =
  let c name = List.assoc name counters in
  Json.Obj
    [
      ("schema", Json.Str "armb-soak-metrics-v1");
      ("seed", Json.Int cfg.seed);
      ("domains", Json.Int (max 1 cfg.domains));
      ("pool", Json.Int cfg.pool);
      ("wall_s", Json.Float wall_s);
      ("submitted", Json.Int (c "submitted"));
      ("completed", Json.Int (c "completed"));
      ("cold", Json.Int (c "cold"));
      ("hits", Json.Int (c "hits"));
      ("coalesced", Json.Int (c "coalesced"));
      ("shed_seen", Json.Int (c "shed_seen"));
      ("retried_ok", Json.Int (c "retried_ok"));
      ("gave_up", Json.Int (c "gave_up"));
      ("errors", Json.Int (c "errors"));
      ("violations", Json.Int violations);
      ("drift_total", Json.Float (List.assoc "drift" counters |> float_of_int |> fun x -> x /. 1000.0));
      ( "jobs_by_kind",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) by_kind) );
      ("snapshots", Json.Int snapshots);
      ("engine", Metrics.to_json metrics);
    ]

let run ?(sleep = Retry.default_sleep) ?jobs ?(progress = fun _ -> ()) cfg =
  if cfg.wave < 1 then invalid_arg "Driver.run: wave must be >= 1";
  if cfg.requests <= 0 && cfg.duration_s = None && jobs = None then
    invalid_arg "Driver.run: unbounded soak (no requests, duration or job list)";
  let clock = Clock.create () in
  let t0 = Clock.now_us clock in
  let wall_s () = float_of_int (Clock.elapsed_us clock ~since:t0) /. 1e6 in
  let backend =
    if cfg.domains >= 2 then
      Sharded
        (Shard.create ~domains:cfg.domains ~cache_cap:cfg.cache_cap
           ~queue_bound:cfg.queue_bound ())
    else Single (Engine.create ~cache_cap:cfg.cache_cap ~queue_bound:cfg.queue_bound ())
  in
  let gen = Gen.create ~pool:cfg.pool ~alpha:cfg.alpha ~seed:cfg.seed () in
  (* injected job list (tests, fixtures) replaces the generator stream *)
  let injected = ref jobs in
  let submitted = ref 0 and completed = ref 0 in
  let cold = ref 0 and hits = ref 0 and coalesced = ref 0 in
  let shed_seen = ref 0 and retried_ok = ref 0 and gave_up = ref 0 in
  let errors = ref 0 in
  let drift_milli = ref 0 in
  let by_kind : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let violations = ref [] in
  let nviol = ref 0 in
  let snapshots = ref 0 in
  let bundle (job : Gen.job) resp reason =
    incr nviol;
    let path =
      match cfg.bundle_dir with
      | None -> None
      | Some dir ->
        let p = Filename.concat dir (Printf.sprintf "violation-%03d.json" !nviol) in
        (match
           Out.write ~path:p
             (Json.to_string
                (violation_bundle_json ~seed:cfg.seed ~index:!submitted job resp reason)
             ^ "\n")
         with
        | Ok () -> Some p
        | Error m ->
          progress (Printf.sprintf "bundle write failed: %s" m);
          None)
    in
    violations :=
      { index = !submitted; job; response = resp; reason; bundle = path } :: !violations
  in
  let counters () =
    [
      ("submitted", !submitted);
      ("completed", !completed);
      ("cold", !cold);
      ("hits", !hits);
      ("coalesced", !coalesced);
      ("shed_seen", !shed_seen);
      ("retried_ok", !retried_ok);
      ("gave_up", !gave_up);
      ("errors", !errors);
      ("drift", !drift_milli);
    ]
  in
  let kind_counts () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_kind [] |> List.sort compare
  in
  let snapshot () =
    match cfg.metrics_out with
    | None -> ()
    | Some path ->
      incr snapshots;
      let j =
        snapshot_json ~cfg ~wall_s:(wall_s ()) ~counters:(counters ())
          ~by_kind:(kind_counts ()) ~violations:!nviol ~snapshots:!snapshots
          (backend_metrics backend)
      in
      (match Out.write ~path (Json.to_string j ^ "\n") with
      | Ok () -> ()
      | Error m -> progress (Printf.sprintf "snapshot write failed: %s" m))
  in
  (* terminal (non-shed) response: account + invariant-check *)
  let settle (job : Gen.job) (resp : Engine.response) =
    (match resp.Engine.reply with
    | Engine.Result { origin; _ } ->
      incr completed;
      (match origin with
      | Engine.Cold -> incr cold
      | Engine.Hit -> incr hits
      | Engine.Coalesced -> incr coalesced)
    | Engine.Error _ -> incr errors
    | Engine.Shed _ -> ());
    let v = Invariant.check job.Gen.expect resp in
    drift_milli := !drift_milli + int_of_float (v.Invariant.drift *. 1000.0);
    match v.Invariant.reason with
    | None -> ()
    | Some reason -> bundle job resp reason
  in
  let handle (job : Gen.job) (resp : Engine.response) =
    match resp.Engine.reply with
    | Engine.Shed _ -> (
      incr shed_seen;
      match
        Retry.resubmit ~policy:cfg.retry ~sleep
          ~attempt:(fun () -> run_one backend job)
          resp
      with
      | Retry.Completed { response; retries = _ } ->
        incr retried_ok;
        settle job response
      | Retry.Gave_up { last = _; retries = _ } ->
        (* reported, never silent: the count is in every snapshot and
           the final report.  Exhausted backpressure is not a
           soundness violation. *)
        incr gave_up)
    | _ -> settle job resp
  in
  let hit_request_bound () = cfg.requests > 0 && !submitted >= cfg.requests in
  let hit_time_bound () =
    match cfg.duration_s with Some d -> wall_s () >= d | None -> false
  in
  let next_wave () =
    match !injected with
    | Some js ->
      let wave_js = List.filteri (fun i _ -> i < cfg.wave) js in
      let rest = List.filteri (fun i _ -> i >= cfg.wave) js in
      injected := Some rest;
      wave_js
    | None ->
      let budget =
        if cfg.requests > 0 then min cfg.wave (cfg.requests - !submitted)
        else cfg.wave
      in
      Gen.take_jobs gen budget
  in
  let waves = ref 0 in
  let finished = ref false in
  while not !finished do
    let wave_jobs = next_wave () in
    if wave_jobs = [] then finished := true
    else begin
      let lines = List.map (fun (j : Gen.job) -> j.Gen.line) wave_jobs in
      let responses = run_lines backend lines in
      let n = List.length wave_jobs in
      List.iteri
        (fun i (resp : Engine.response) ->
          if i < n then begin
            let job = List.nth wave_jobs i in
            submitted := !submitted + 1;
            Hashtbl.replace by_kind job.Gen.kind
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind job.Gen.kind));
            handle job resp
          end
          else
            (* conservation overflow: an orphan row means the backend
               answered something this wave never asked — a violation *)
            bundle
              { Gen.id = resp.Engine.id; kind = "?"; expect = Invariant.Status_ok; line = "" }
              resp "orphan response (conservation breach)")
        responses;
      incr waves;
      if cfg.snapshot_every > 0 && !waves mod cfg.snapshot_every = 0 then snapshot ();
      if hit_request_bound () || hit_time_bound () then finished := true
    end
  done;
  (* sharded engines merge their metrics into the aggregate at
     shutdown, so the *final* snapshot (below) is the complete one —
     rolling snapshots during a sharded run carry router-side counters
     only.  Leftover in-flight responses would be conservation
     breaches; surface them. *)
  (match backend with
  | Sharded s ->
    List.iter
      (fun (resp : Engine.response) ->
        bundle
          { Gen.id = resp.Engine.id; kind = "?"; expect = Invariant.Status_ok; line = "" }
          resp "response still in flight at shutdown")
      (Shard.shutdown s)
  | Single _ -> ());
  snapshot ();
  {
    submitted = !submitted;
    completed = !completed;
    cold = !cold;
    hits = !hits;
    coalesced = !coalesced;
    shed_seen = !shed_seen;
    retried_ok = !retried_ok;
    gave_up = !gave_up;
    errors = !errors;
    by_kind = kind_counts ();
    drift_total = float_of_int !drift_milli /. 1000.0;
    violations = List.rev !violations;
    snapshots = !snapshots;
    wall_s = wall_s ();
    metrics = backend_metrics backend;
    ok = !violations = [];
  }

let pp_report ppf r =
  let p50, p99 = Metrics.latency_us r.metrics in
  Format.fprintf ppf
    "@[<v>soak: %d submitted, %d completed (%d cold, %d hits, %d coalesced) in %.1f s@,\
     shed %d seen, %d retried to completion, %d gave up; %d errors@,\
     drift total %.3f; hit rate %.3f; latency p50=%dus p99=%dus@,\
     jobs by kind: %s@,\
     violations: %d => %s@]"
    r.submitted r.completed r.cold r.hits r.coalesced r.wall_s r.shed_seen
    r.retried_ok r.gave_up r.errors r.drift_total
    (Metrics.hit_rate r.metrics)
    p50 p99
    (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) r.by_kind))
    (List.length r.violations)
    (if r.ok then "OK" else "VIOLATIONS");
  List.iter
    (fun v ->
      Format.fprintf ppf "@.  #%d %s (%s): %s%s" v.index v.job.Gen.id v.job.Gen.kind
        v.reason
        (match v.bundle with Some p -> " [" ^ p ^ "]" | None -> ""))
    r.violations
