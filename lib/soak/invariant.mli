(** Per-response invariant checks: the soak farm's soundness oracle.

    Every generated job carries an {!expect} describing what a correct
    service must answer; {!check} validates the exact response bytes a
    client would see (cache hits and coalesced replies included),
    keying off the canonical result-text markers the job renderings
    expose — the same markers the CLI and golden tests pin. *)

type expect =
  | Status_ok  (** any ok result (litmus, fuzz, model, ring) *)
  | Check_clean  (** the sanitizer row must end "ok" *)
  | Perturb_legal
      (** no illegal outcome, no finding on forbidden tests:
          ["sweep: OK"], with a parseable drift total *)
  | Fix_must_repair
      (** the generator built the skeleton so a repair is needed and
          reachable: "already sound", a REDUNDANT repair, or a
          complete-but-empty search are all violations *)
  | Opt_sound  (** verifier accepts and the fence count did not grow *)

val expect_to_string : expect -> string

type verdict = {
  ok : bool;
  reason : string option;  (** set iff not ok *)
  drift : float;
      (** perturb jobs: the result's total-variation drift total
          (0 otherwise) — the farm's drift accounting feeds off it *)
}

val check_text : expect -> string -> verdict
(** Check a result text alone (used by tests). *)

val check : expect -> Armb_service.Engine.response -> verdict
(** [Error] replies are always violations; [Shed] replies must not
    reach the checker (the driver retries them — backpressure is not a
    soundness bug) and are flagged as driver bugs if they do. *)
