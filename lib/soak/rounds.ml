(* One soak round shape for the whole tree.

   Synth.Soak (strip->repair->re-verify), Opt.Soak (over-fence->
   optimize->re-verify) and the service-traffic driver each iterate a
   generate/execute/verify loop; this module is the common currency
   their iterations convert into, so every soak — CLI one-shots and
   the long-lived farm alike — reports through one shape and one
   renderer. *)

type round = {
  index : int;  (** 1-based position in its stream *)
  kind : string;  (** "fix" | "opt" | a service job kind *)
  subject : string;  (** test / program / request id *)
  ok : bool;  (** no fatal finding in this round *)
  detail : string;  (** one-line human outcome *)
  failures : string list;  (** fatal findings, in discovery order *)
}

let ok r = r.ok

let of_synth (r : Armb_synth.Soak.round) =
  let detail =
    match r.Armb_synth.Soak.status with
    | Armb_synth.Soak.Skipped_no_devices -> "no candidate edits"
    | Armb_synth.Soak.Still_sound -> "injected devices inert"
    | Armb_synth.Soak.Repaired n -> Printf.sprintf "%d repair set(s)" n
    | Armb_synth.Soak.No_repair -> "search exhausted"
  in
  {
    index = r.Armb_synth.Soak.index;
    kind = "fix";
    subject = r.Armb_synth.Soak.test_name;
    ok = Armb_synth.Soak.round_ok r;
    detail =
      Printf.sprintf "%s (%d oracle calls)" detail r.Armb_synth.Soak.oracle_calls;
    failures = r.Armb_synth.Soak.failures;
  }

let of_opt (r : Armb_opt.Soak.round) =
  {
    index = r.Armb_opt.Soak.index;
    kind = "opt";
    subject = r.Armb_opt.Soak.program_name;
    ok = Armb_opt.Soak.round_ok r;
    detail =
      Printf.sprintf "fences %d -> %d%s" r.Armb_opt.Soak.input_fences
        r.Armb_opt.Soak.output_fences
        (if r.Armb_opt.Soak.improved then " (improved)" else "");
    failures = r.Armb_opt.Soak.failures;
  }

let all_ok rounds = List.for_all ok rounds

let failures rounds = List.concat_map (fun r -> r.failures) rounds

let pp ppf r =
  Format.fprintf ppf "%4d %-8s %-24s %s %s" r.index r.kind r.subject
    (if r.ok then "ok  " else "FAIL")
    r.detail;
  List.iter (fun f -> Format.fprintf ppf "@.       %s" f) r.failures
