(* Per-response invariant checks: the soak farm's soundness oracle.

   Each generated job carries an [expect] describing what a correct
   service MUST answer for it, and the checks key off the canonical
   result-text markers the job renderings already expose (the same
   markers the CLI reports and the golden tests pin):

   - check rows end "ok"/"FAIL" (Sim_runner.pp_check_row);
   - perturb results end "drift-total=... sweep: OK|VIOLATIONS"
     (Job.run's Perturb trailer);
   - fix outcomes print "already sound", "N repair(s)",
     "budget exhausted" and ", REDUNDANT" (Report.pp_outcome);
   - opt results print "fences I -> O ... sound=B" (Job.run's Opt
     rendering).

   Checking text rather than re-running the job is the point: the soak
   validates what the service actually answered, on the exact bytes a
   client would see, cache hits and coalesced replies included. *)

module Engine = Armb_service.Engine
module Job = Armb_service.Job

type expect =
  | Status_ok  (** any ok result (litmus, fuzz, model, ring) *)
  | Check_clean  (** the sanitizer row must end "ok" *)
  | Perturb_legal  (** no illegal outcomes / findings: "sweep: OK" *)
  | Fix_must_repair
      (** built so a repair is needed and exists: neither "already
          sound" nor a redundant repair nor a complete-but-empty
          search is acceptable *)
  | Opt_sound  (** verifier must accept and fences must not increase *)

let expect_to_string = function
  | Status_ok -> "status-ok"
  | Check_clean -> "check-clean"
  | Perturb_legal -> "perturb-legal"
  | Fix_must_repair -> "fix-must-repair"
  | Opt_sound -> "opt-sound"

type verdict = {
  ok : bool;
  reason : string option;  (** set iff not ok *)
  drift : float;  (** perturb only: the job's total-variation total *)
}

let pass = { ok = true; reason = None; drift = 0.0 }
let fail reason = { ok = false; reason = Some reason; drift = 0.0 }

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* parse the float following [marker] (e.g. "drift-total=") *)
let float_after ~marker s =
  let n = String.length s and m = String.length marker in
  let rec find i = if i + m > n then None else if String.sub s i m = marker then Some (i + m) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < n
      && (match s.[!stop] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.sub s start (!stop - start))

let int_pair_after ~marker s =
  let n = String.length s and m = String.length marker in
  let rec find i = if i + m > n then None else if String.sub s i m = marker then Some (i + m) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start -> (
    try Scanf.sscanf (String.sub s start (n - start)) " %d -> %d" (fun a b -> Some (a, b))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)

let check_text expect text =
  match expect with
  | Status_ok -> pass
  | Check_clean ->
    if contains ~sub:"FAIL" text then fail "sanitizer row FAILed"
    else if contains ~sub:" ok" text then pass
    else fail "no verdict marker in check row"
  | Perturb_legal -> (
    if not (contains ~sub:"sweep: OK" text) then
      fail "perturb sweep reported VIOLATIONS (illegal outcome or finding)"
    else
      match float_after ~marker:"drift-total=" text with
      | Some d -> { pass with drift = d }
      | None -> fail "perturb result missing drift-total marker")
  | Fix_must_repair ->
    if contains ~sub:"already sound" text then
      fail "repair expected but fix reported already sound"
    else if contains ~sub:", REDUNDANT" text then fail "REDUNDANT repair reported"
    else if contains ~sub:" 0 repair(s)" text && not (contains ~sub:"budget exhausted" text)
    then fail "complete search found no repair on a repairable skeleton"
    else pass
  | Opt_sound -> (
    if contains ~sub:"sound=false" text then fail "optimizer verdict unsound"
    else
      match int_pair_after ~marker:"fences" text with
      | Some (fin, fout) when fout > fin ->
        fail (Printf.sprintf "fence count grew %d -> %d" fin fout)
      | Some _ -> pass
      | None -> fail "opt result missing fence counts")

(* Sheds never reach here (the driver retries them; exhausted retries
   are reported separately — backpressure is not a soundness bug).
   Error replies are always violations: the generator only emits
   well-formed jobs, so the service has no excuse. *)
let check expect (r : Engine.response) =
  match r.Engine.reply with
  | Engine.Result { result; _ } -> check_text expect result.Job.text
  | Engine.Error m -> fail ("service error: " ^ m)
  | Engine.Shed _ -> fail "shed response reached the invariant checker (driver bug)"
