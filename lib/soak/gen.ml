(* The job-stream generator: randomized-but-deterministic service
   traffic over every correctness engine in the tree.

   A seeded pool of distinct jobs is built once — catalogue litmus
   runs, sanitizer checks, fault-injection perturb sweeps, strip→repair
   fix jobs on freshly built communication skeletons (shipped inline
   with declarative predicates), and fence-optimization jobs on both
   named over-fenced catalogue programs and fuzzed CFGs — then requests
   are drawn from the pool under a Zipf law, exactly like production
   traffic: a few hot keys dominate (exercising the memo cache and
   coalescing), the long tail keeps cold work arriving, and the whole
   stream replays byte-identically from its seed.

   Every job carries the invariant a correct service must satisfy for
   it ({!Invariant.expect}); the pool is constructed so each
   expectation is guaranteed by design — check/perturb jobs use only
   hand-verified catalogue tests, fix skeletons are unfenced shapes
   whose weak outcome is WMM-reachable and repairable within the edit
   budget, opt inputs are over-fenced so the optimizer has sound work
   to do. *)

module Json = Armb_service.Json
module Codec = Armb_service.Codec
module Lang = Armb_litmus.Lang
module Cfg = Armb_litmus.Cfg
module Rng = Armb_sim.Rng

type job = { id : string; kind : string; expect : Invariant.expect; line : string }

type entry = {
  kind : string;
  expect : Invariant.expect;
  fields : (string * Json.t) list;
}

(* ---------- fix skeletons ---------- *)

(* Unfenced two-thread communication shapes with real (declarative)
   weak-outcome predicates.  Unlike fuzzed tests — whose trivially
   false predicate makes every fix job a no-op — these give the
   synthesizer genuine work with a guaranteed-reachable repair:
   the catalogue's own fenced variants witness that a <=2-edit
   sufficient set exists for each shape. *)
let mp_skeleton v =
  ( {
      Lang.name = Printf.sprintf "soak-mp-%d" v;
      description = "unfenced message passing; repair must forbid stale data";
      init = [ ("data", 0L); ("flag", 0L) ];
      threads =
        [
          [ Lang.st "data" (Int64.of_int v); Lang.st "flag" 1L ];
          [ Lang.ld "flag" "r1"; Lang.ld "data" "r2" ];
        ];
      interesting = (fun o -> o "1:r1" = 1L && o "1:r2" = 0L);
      expect_tso = false;
      expect_wmm = false;
    },
    [ ("1:r1", 1L); ("1:r2", 0L) ] )

let sb_skeleton v =
  ( {
      Lang.name = Printf.sprintf "soak-sb-%d" v;
      description = "unfenced store buffering; repair must forbid both-stale reads";
      init = [ ("x", 0L); ("y", 0L) ];
      threads =
        [
          [ Lang.st "x" (Int64.of_int v); Lang.ld "y" "r1" ];
          [ Lang.st "y" (Int64.of_int v); Lang.ld "x" "r1" ];
        ];
      interesting = (fun o -> o "0:r1" = 0L && o "1:r1" = 0L);
      expect_tso = false;
      expect_wmm = false;
    },
    [ ("0:r1", 0L); ("1:r1", 0L) ] )

let lb_skeleton v =
  ( {
      Lang.name = Printf.sprintf "soak-lb-%d" v;
      description = "unfenced load buffering; repair must forbid the causality loop";
      init = [ ("x", 0L); ("y", 0L) ];
      threads =
        [
          [ Lang.ld "x" "r1"; Lang.st "y" (Int64.of_int v) ];
          [ Lang.ld "y" "r1"; Lang.st "x" (Int64.of_int v) ];
        ];
      interesting =
        (fun o -> o "0:r1" = Int64.of_int v && o "1:r1" = Int64.of_int v);
      expect_tso = false;
      expect_wmm = false;
    },
    [ ("0:r1", Int64.of_int v); ("1:r1", Int64.of_int v) ] )

(* ---------- the pool ---------- *)

let take n l = List.filteri (fun i _ -> i < n) l

let catalogue = Armb_litmus.Catalogue.all

let litmus_entries () =
  List.map
    (fun (t : Lang.test) ->
      {
        kind = "litmus";
        expect = Invariant.Status_ok;
        fields =
          [
            ("kind", Json.Str "litmus");
            ("test", Json.Str t.Lang.name);
            ("trials", Json.Int 20);
            ("seed", Json.Int 42);
          ];
      })
    catalogue

let check_entries () =
  (* trials 10 / seed 42 is the cross-check configuration the tier-1
     suite pins all-rows-ok for, so Check_clean is guaranteed *)
  List.map
    (fun (t : Lang.test) ->
      {
        kind = "check";
        expect = Invariant.Check_clean;
        fields =
          [
            ("kind", Json.Str "check");
            ("test", Json.Str t.Lang.name);
            ("trials", Json.Int 10);
            ("seed", Json.Int 42);
          ];
      })
    (take 8 catalogue)

let perturb_entries () =
  List.map
    (fun (t : Lang.test) ->
      {
        kind = "perturb";
        expect = Invariant.Perturb_legal;
        fields =
          [
            ("kind", Json.Str "perturb");
            ("test", Json.Str t.Lang.name);
            ("intensities", Json.List [ Json.Float 0.5 ]);
            ("plan_seeds", Json.List [ Json.Int 1; Json.Int 2 ]);
            ("trials", Json.Int 8);
            ("seed", Json.Int 42);
          ];
      })
    (take 6 catalogue)

let fix_entries () =
  List.concat_map
    (fun v ->
      List.map
        (fun (t, conds) ->
          {
            kind = "fix";
            expect = Invariant.Fix_must_repair;
            fields =
              [
                ("kind", Json.Str "fix");
                ("test_inline", Codec.test_inline_to_json ~interesting_when:conds t);
                ("max_edits", Json.Int 2);
                ("budget", Json.Int 1500);
                ("trials", Json.Int 10);
                ("seed", Json.Int 42);
              ];
          })
        [ mp_skeleton v; sb_skeleton v; lb_skeleton v ])
    [ 1; 2 ]

let opt_named_entries () =
  List.filter_map
    (fun (name, algorithm) ->
      (* only emit names the optimizer actually knows, so a catalogue
         rename cannot silently turn pool entries into error jobs *)
      match Armb_opt.Optimizer.find_input name with
      | None -> None
      | Some _ ->
        Some
          {
            kind = "opt";
            expect = Invariant.Opt_sound;
            fields =
              [
                ("kind", Json.Str "opt");
                ("program", Json.Str name);
                ("algorithm", Json.Str algorithm);
                ("unroll", Json.Int 2);
                ("trials", Json.Int 10);
                ("seed", Json.Int 42);
              ];
          })
    [
      ("MP+overfenced", "linear-scan");
      ("SB+dmbs+overfenced", "second-chance");
      ("LB+datas+overfenced", "linear-scan");
      ("MP+spin+overfenced", "linear-scan");
      ("2+2W+dmb.sts+overfenced", "second-chance");
      ("MP+cond+overfenced", "single-bb");
    ]

let opt_inline_entries rng =
  List.init 4 (fun i ->
      let p =
        Armb_litmus.Mutate.rename_cfg
          (Printf.sprintf "soak-cfg-%d" (i + 1))
          (Armb_litmus.Fuzz.generate_cfg rng)
      in
      let q = Armb_opt.Passes.over_fence p in
      {
        kind = "opt";
        expect = Invariant.Opt_sound;
        fields =
          [
            ("kind", Json.Str "opt");
            ("program", Codec.program_to_json q);
            ("algorithm", Json.Str "linear-scan");
            ("unroll", Json.Int 2);
            ("trials", Json.Int 10);
            ("seed", Json.Int 42);
          ];
      })

let misc_entries () =
  [
    {
      kind = "fuzz";
      expect = Invariant.Status_ok;
      fields =
        [
          ("kind", Json.Str "fuzz");
          ("tests", Json.Int 2);
          ("trials", Json.Int 10);
          ("seed", Json.Int 7);
        ];
    };
    {
      kind = "fuzz";
      expect = Invariant.Status_ok;
      fields =
        [
          ("kind", Json.Str "fuzz");
          ("tests", Json.Int 3);
          ("trials", Json.Int 10);
          ("seed", Json.Int 9);
        ];
    };
    {
      kind = "ring";
      expect = Invariant.Status_ok;
      fields =
        [
          ("kind", Json.Str "ring");
          ("combo", Json.Str "DMB full - DMB full");
          ("messages", Json.Int 200);
        ];
    };
    {
      kind = "ring";
      expect = Invariant.Status_ok;
      fields =
        [
          ("kind", Json.Str "ring");
          ("combo", Json.Str "DMB ld - DMB st");
          ("messages", Json.Int 200);
        ];
    };
    {
      kind = "model";
      expect = Invariant.Status_ok;
      fields =
        [
          ("kind", Json.Str "model");
          ("mem_ops", Json.Str "st-st");
          ("approach", Json.Str "dmb");
          ("location", Json.Int 1);
          ("nops", Json.Int 100);
          ("iters", Json.Int 300);
        ];
    };
    {
      kind = "model";
      expect = Invariant.Status_ok;
      fields =
        [
          ("kind", Json.Str "model");
          ("mem_ops", Json.Str "st-st");
          ("approach", Json.Str "stlr");
          ("location", Json.Int 1);
          ("nops", Json.Int 100);
          ("iters", Json.Int 300);
        ];
    };
    (* two faulted litmus runs so the fault-plan path sees traffic *)
    {
      kind = "litmus";
      expect = Invariant.Status_ok;
      fields =
        [
          ("kind", Json.Str "litmus");
          ("test", Json.Str "MP+dmb.st+dmb.ld");
          ("trials", Json.Int 20);
          ("seed", Json.Int 42);
          ("fault", Json.Float 0.3);
        ];
    };
    {
      kind = "litmus";
      expect = Invariant.Status_ok;
      fields =
        [
          ("kind", Json.Str "litmus");
          ("test", Json.Str "SB+dmbs");
          ("trials", Json.Int 20);
          ("seed", Json.Int 42);
          ("fault", Json.Float 0.6);
        ];
    };
  ]

let build_pool rng =
  litmus_entries () @ check_entries () @ perturb_entries () @ fix_entries ()
  @ opt_named_entries () @ opt_inline_entries rng @ misc_entries ()

(* ---------- the stream ---------- *)

type t = {
  entries : entry array;
  cum : float array;  (* zipf cumulative weights over pool ranks *)
  total : float;
  rng : Rng.t;
  clients : int;
  mutable emitted : int;
}

let default_pool = 48

let create ?(pool = default_pool) ?(alpha = 1.1) ?(clients = 16) ~seed () =
  if pool < 1 then invalid_arg "Gen.create: pool must be >= 1";
  if alpha < 0.0 then invalid_arg "Gen.create: alpha must be >= 0";
  if clients < 1 then invalid_arg "Gen.create: clients must be >= 1";
  let rng = Rng.create seed in
  let all = Array.of_list (build_pool rng) in
  (* interleave kinds before truncating to [pool] so a small pool still
     mixes all kinds rather than only the catalogue prefix *)
  let by_kind = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      let q =
        match Hashtbl.find_opt by_kind e.kind with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add by_kind e.kind q;
          q
      in
      Queue.push e q)
    all;
  let kinds =
    (* deterministic kind order: first appearance in the pool *)
    Array.to_list all
    |> List.map (fun e -> e.kind)
    |> List.fold_left (fun acc k -> if List.mem k acc then acc else k :: acc) []
    |> List.rev
  in
  let interleaved = ref [] in
  let remaining = ref (Array.length all) in
  while !remaining > 0 do
    List.iter
      (fun k ->
        let q = Hashtbl.find by_kind k in
        if not (Queue.is_empty q) then begin
          interleaved := Queue.pop q :: !interleaved;
          decr remaining
        end)
      kinds
  done;
  let entries =
    Array.of_list (take (min pool (Array.length all)) (List.rev !interleaved))
  in
  let n = Array.length entries in
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) alpha);
    cum.(r) <- !total
  done;
  { entries; cum; total = !total; rng; clients; emitted = 0 }

let pool_size t = Array.length t.entries

let pool_kinds t =
  Array.to_list t.entries
  |> List.map (fun e -> e.kind)
  |> List.sort_uniq compare

let sample_rank t =
  let n = Array.length t.entries in
  let u = Rng.float t.rng t.total in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cum.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let next t =
  let e = t.entries.(sample_rank t) in
  t.emitted <- t.emitted + 1;
  let id = Printf.sprintf "soak-%d" t.emitted in
  let client = Printf.sprintf "soak-user-%02d" (Rng.int t.rng t.clients) in
  let priority =
    match Rng.int t.rng 8 with 0 -> "high" | 1 -> "low" | _ -> "normal"
  in
  let line =
    Json.to_string
      (Json.Obj
         (("id", Json.Str id)
         :: ("client", Json.Str client)
         :: ("priority", Json.Str priority)
         :: e.fields))
  in
  { id; kind = e.kind; expect = e.expect; line }

let take_jobs t n = List.init n (fun _ -> next t)

let stream ?pool ?alpha ?clients ~requests ~seed () =
  let t = create ?pool ?alpha ?clients ~seed () in
  take_jobs t requests
