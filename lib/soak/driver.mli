(** The long-lived bounded soak driver: generated job streams as
    production traffic against the real service stack.

    Waves of {!Gen} requests flow through an in-process engine (or the
    multi-domain sharded pool when [domains >= 2]) exactly as piped
    NDJSON would — same codec, same memo cache, coalescing, admission
    and shedding.  Every terminal response is checked against the
    job's {!Invariant.expect}; violations persist as self-contained
    repro bundles ([armb-soak-violation-v1]: seed, verbatim request
    line, response).  Shed responses are resubmitted through {!Retry}
    — a request ends completed, gave-up (counted, reported), or
    violated (bundled); never silently dropped.

    A rolling [armb-soak-metrics-v1] snapshot — engine metrics
    (hit/coalesce/shed rates, latency percentiles) merged with farm
    counters (jobs per kind, drift totals, violations, retry cycles)
    — is rewritten atomically every [snapshot_every] waves, so an
    external watcher can tail a live run without ever reading a torn
    file.  During a sharded run the rolling snapshots carry
    router-side counters only (shard engines merge their metrics into
    the aggregate at shutdown); the final snapshot, written after
    shutdown, is the complete one. *)

module Engine = Armb_service.Engine
module Metrics = Armb_service.Metrics
module Retry = Armb_service.Retry

type config = {
  seed : int;
  requests : int;  (** stop after this many submissions; 0 = no count bound *)
  duration_s : float option;  (** stop after this much wall clock *)
  wave : int;  (** requests per wave (one batch round trip) *)
  pool : int;
  alpha : float;
  queue_bound : int;
  cache_cap : int;
  domains : int;  (** >= 2 runs the sharded pool *)
  snapshot_every : int;  (** waves between rolling snapshots; 0 = final only *)
  metrics_out : string option;
  bundle_dir : string option;
  retry : Retry.policy;
}

val default_config : seed:int -> config
(** 500 requests, wave 32, pool {!Gen.default_pool}, alpha 1.1, queue
    bound 24, cache 512, single engine, snapshot every 4 waves, no
    artifact paths, {!Retry.default_policy}. *)

type violation = {
  index : int;  (** 1-based submission index *)
  job : Gen.job;
  response : Engine.response;
  reason : string;
  bundle : string option;  (** repro bundle path, when a dir was given *)
}

type report = {
  submitted : int;
  completed : int;
  cold : int;
  hits : int;
  coalesced : int;
  shed_seen : int;  (** shed responses observed before retrying *)
  retried_ok : int;  (** shed -> retry -> complete cycles *)
  gave_up : int;  (** still shed after the retry policy; reported *)
  errors : int;
  by_kind : (string * int) list;  (** submissions per job kind, sorted *)
  drift_total : float;  (** summed perturb drift, ms precision *)
  violations : violation list;
  snapshots : int;
  wall_s : float;
  metrics : Metrics.t;
  ok : bool;  (** zero violations; gave-up/errors are reported, not fatal *)
}

val run :
  ?sleep:(int -> unit) ->
  ?jobs:Gen.job list ->
  ?progress:(string -> unit) ->
  config ->
  report
(** Runs the soak to its bound.  Raises [Invalid_argument] for an
    unbounded config ([requests <= 0], no [duration_s], no [?jobs]).
    [?sleep] injects the retry backoff clock (tests pass [ignore]).
    [?jobs] replaces the generator stream with an explicit list —
    fixture injection for the violation-bundle tests.  [?progress]
    receives non-fatal operational notes (artifact write failures). *)

val pp_report : Format.formatter -> report -> unit
