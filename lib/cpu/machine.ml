module Event_queue = Armb_sim.Event_queue
module Memsys = Armb_mem.Memsys
module Topology = Armb_mem.Topology

type status = Completed | Deadlock of int list | Cycle_limit

exception Simulation_error of string

type thread = { core : Core.t; body : Core.t -> unit; mutable finished : bool }

type t = {
  cfg : Config.t;
  q : Event_queue.t;
  memory : Memsys.t;
  threads : thread option array; (* indexed by core id *)
  tracer : (Trace.span -> unit) option;
  observer : Observe.t option;
  injector : Armb_fault.Injector.t option;
  mutable next_line : int;
  mutable unfinished : int;
}

let create ?tracer ?observer ?fault cfg =
  Config.validate cfg;
  (* A null plan (all probabilities zero) is identical to no plan; drop
     it so the faults-off fast path in Memsys/Core stays branch-free on
     an [option] check and the golden digests cover it. *)
  let injector =
    match fault with
    | Some spec when not (Armb_fault.Plan.is_null spec) ->
      Some (Armb_fault.Injector.create spec)
    | Some _ | None -> None
  in
  {
    cfg;
    q = Event_queue.create ();
    memory = Memsys.create ?inj:injector ~topo:cfg.topo ~lat:cfg.lat ();
    threads = Array.make (Topology.num_cores cfg.topo) None;
    tracer;
    observer;
    injector;
    next_line = 0x1000;
    unfinished = 0;
  }

let config t = t.cfg
let mem t = t.memory
let queue t = t.q
let injector t = t.injector

let alloc_line t =
  let a = t.next_line in
  t.next_line <- t.next_line + 64;
  a

let alloc_lines t n =
  if n <= 0 then invalid_arg "Machine.alloc_lines";
  let a = t.next_line in
  t.next_line <- t.next_line + (64 * n);
  a

let spawn t ~core body =
  if core < 0 || core >= Array.length t.threads then
    raise (Simulation_error (Printf.sprintf "spawn: core %d out of range" core));
  if t.threads.(core) <> None then
    raise (Simulation_error (Printf.sprintf "spawn: core %d already has a thread" core));
  let c =
    Core.make ?tracer:t.tracer ?observer:t.observer ?fault:t.injector ~id:core ~cfg:t.cfg
      ~queue:t.q ~mem:t.memory ()
  in
  t.threads.(core) <- Some { core = c; body; finished = false };
  t.unfinished <- t.unfinished + 1

let core t id =
  if id < 0 || id >= Array.length t.threads then raise Not_found;
  match t.threads.(id) with Some th -> th.core | None -> raise Not_found

(* Run a thread body under the suspension handler.  The body executes
   synchronously until it performs Suspend; the continuation is then
   parked wherever the suspender put it (a token waiter or a line
   watch) and control returns here. *)
let start t th =
  let open Effect.Deep in
  match_with th.body th.core
    {
      retc =
        (fun () ->
          th.finished <- true;
          t.unfinished <- t.unfinished - 1);
      exnc =
        (fun e ->
          let bt = Printexc.get_backtrace () in
          raise
            (Simulation_error
               (Printf.sprintf "thread on core %d raised %s\n%s" (Core.id th.core)
                  (Printexc.to_string e) bt)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Core.Suspend register ->
            Some
              (fun (k : (a, unit) continuation) -> register (fun () -> continue k ()))
          | _ -> None);
    }

let run ?max_cycles t =
  (* The array is already in core-id order: launch in index order, no
     collect-and-sort pass over a hash table. *)
  Array.iter
    (function
      | Some th -> Event_queue.schedule t.q ~at:0 (fun () -> start t th)
      | None -> ())
    t.threads;
  (match max_cycles with
  | Some m -> Event_queue.run ~until:m t.q
  | None -> Event_queue.run t.q);
  if t.unfinished = 0 then Completed
  else if Event_queue.pending t.q > 0 then Cycle_limit
  else begin
    let blocked = ref [] in
    for id = Array.length t.threads - 1 downto 0 do
      match t.threads.(id) with
      | Some th when not th.finished -> blocked := id :: !blocked
      | _ -> ()
    done;
    Deadlock !blocked
  end

let run_exn ?max_cycles t =
  match run ?max_cycles t with
  | Completed -> ()
  | Deadlock ids ->
    raise
      (Simulation_error
         (Printf.sprintf "deadlock: cores [%s] blocked with empty event queue"
            (String.concat "; " (List.map string_of_int ids))))
  | Cycle_limit -> raise (Simulation_error "cycle limit reached")

let elapsed t =
  Array.fold_left
    (fun acc th -> match th with Some th -> max acc (Core.cursor th.core) | None -> acc)
    0 t.threads

let throughput t ~ops =
  Armb_sim.Stats.throughput_per_sec ~ops ~cycles:(elapsed t) ~freq_ghz:t.cfg.freq_ghz
