module Memsys = Armb_mem.Memsys
module Event_queue = Armb_sim.Event_queue
module Int_table = Armb_sim.Int_table
module Injector = Armb_fault.Injector

type token = {
  mutable completed : bool;
  mutable v : int64;
  mutable complete_at : int;
  mutable waiter : (unit -> unit) option;
  mutable obs : int; (* observer seq of the producing load/rmw, -1 if untracked *)
}

type counters = {
  loads : int;
  stores : int;
  barriers : int;
  rmws : int;
  spins : int;
}

(* Store-buffer forwarding entry for one word address: the youngest
   buffered value and the number of undrained stores to that word.  The
   cell stays in the table at [n = 0] (dead) so the hot path never
   deletes — it just flips counts. *)
type fwd_cell = { mutable fv : int64; mutable fn : int }

type t = {
  id : int;
  cfg : Config.t;
  q : Event_queue.t;
  memory : Memsys.t;
  mutable cursor : int;
  (* In-flight window (ROB): (op count, retire-ready time) entries in
     program order kept in a fixed ring (at most [rob_size] entries,
     since every entry covers >= 1 op); retire-ready is the running max
     of completion times, which encodes in-order retirement. *)
  if_counts : int array;
  if_retires : int array;
  mutable if_head : int;
  mutable if_len : int;
  mutable inflight_count : int;
  mutable retire_wm : int;
  (* Store buffer: completion times of undrained stores (unordered,
     at most [sb_size] live), plus the forwarding map. *)
  sb : int array;
  mutable sb_count : int;
  fwd : fwd_cell Int_table.t;
  (* Ordering state. *)
  mutable load_gate : int; (* earliest issue of subsequent loads *)
  mutable sb_gate : int; (* earliest drain start of subsequent stores *)
  line_load_until : int Int_table.t;
      (* per line: latest completion among this core's issued loads —
         a later same-line store may not commit before them (po-loc) *)
  mutable last_load_complete : int;
  mutable last_store_complete : int;
  mutable cross_load_until : int; (* a cross-node load outstanding until t *)
  mutable cross_store_until : int;
  tracer : (Trace.span -> unit) option;
  observer : Observe.t option;
  fault : Injector.t option;
  mutable op_seq : int; (* next observer event index *)
  (* Counters. *)
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_barriers : int;
  mutable n_rmws : int;
  mutable n_spins : int;
}

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let make ?tracer ?observer ?fault ~id ~cfg ~queue ~mem () =
  Config.validate cfg;
  {
    tracer;
    observer;
    fault;
    op_seq = 0;
    id;
    cfg;
    q = queue;
    memory = mem;
    cursor = 0;
    if_counts = Array.make (cfg.rob_size + 1) 0;
    if_retires = Array.make (cfg.rob_size + 1) 0;
    if_head = 0;
    if_len = 0;
    inflight_count = 0;
    retire_wm = 0;
    sb = Array.make (max 1 cfg.sb_size) 0;
    sb_count = 0;
    fwd = Int_table.create ~capacity:16 { fv = 0L; fn = 0 };
    load_gate = 0;
    sb_gate = 0;
    line_load_until = Int_table.create ~capacity:16 0;
    last_load_complete = 0;
    last_store_complete = 0;
    cross_load_until = 0;
    cross_store_until = 0;
    n_loads = 0;
    n_stores = 0;
    n_barriers = 0;
    n_rmws = 0;
    n_spins = 0;
  }

let id t = t.id
let cursor t = t.cursor
let config t = t.cfg
let mem t = t.memory

(* Yield to the event queue when the thread has run too far ahead of
   global simulated time, so concurrently-running threads interleave at
   [quantum] granularity and contend for cache lines realistically. *)
let maybe_yield t =
  if t.cursor - Event_queue.now t.q > t.cfg.quantum then begin
    let q = t.q and at = t.cursor in
    Effect.perform (Suspend (fun resume -> Event_queue.schedule q ~at resume))
  end

let counters t =
  { loads = t.n_loads; stores = t.n_stores; barriers = t.n_barriers; rmws = t.n_rmws; spins = t.n_spins }

(* Fault injection: lose issue slots before a memory operation (a
   frontend/dispatch hiccup).  Pure delay, zero-cost when unwired. *)
let[@inline] fault_stall t =
  match t.fault with
  | None -> ()
  | Some f ->
    let s = Injector.stall f in
    if s > 0 then t.cursor <- t.cursor + s

(* Extra response delay of a barrier's ACE transaction when the fault
   plan NACKs it: each retry round pays the plan's exponential backoff
   before the fabric accepts the transaction. *)
let[@inline] fault_barrier_delay t =
  match t.fault with None -> 0 | Some f -> Injector.barrier_delay f

let sync_to t time = if time > t.cursor then t.cursor <- time

let trace t ~kind ~name ~start_cycle ~duration =
  match t.tracer with
  | Some f -> f { Trace.core = t.id; kind; name; start_cycle; duration }
  | None -> ()

(* ---------- Observation ---------- *)

(* Emit one observer event; returns its per-core seq (-1 when no
   observer is installed, so tokens of unobserved runs carry no id). *)
let emit t ~kind ~addr ~deps ~issued ~completes =
  match t.observer with
  | None -> -1
  | Some f ->
    let seq = t.op_seq in
    t.op_seq <- seq + 1;
    let deps = List.filter_map (fun tok -> if tok.obs >= 0 then Some tok.obs else None) deps in
    f { Observe.core = t.id; seq; kind; addr; deps; issued_at = issued; completes_at = completes };
    seq

(* ---------- In-flight window ---------- *)

let[@inline] if_wrap t i = if i >= Array.length t.if_counts then i - Array.length t.if_counts else i

let retire_ready t =
  (* Free entries whose retire time has passed. *)
  while t.if_len > 0 && t.if_retires.(t.if_head) <= t.cursor do
    t.inflight_count <- t.inflight_count - t.if_counts.(t.if_head);
    t.if_head <- if_wrap t (t.if_head + 1);
    t.if_len <- t.if_len - 1
  done

let retire_oldest t =
  if t.if_len > 0 then begin
    let r = t.if_retires.(t.if_head) in
    t.inflight_count <- t.inflight_count - t.if_counts.(t.if_head);
    t.if_head <- if_wrap t (t.if_head + 1);
    t.if_len <- t.if_len - 1;
    if r > t.cursor then t.cursor <- r
  end

let if_push t count retire =
  let tail = if_wrap t (t.if_head + t.if_len) in
  t.if_counts.(tail) <- count;
  t.if_retires.(tail) <- retire;
  t.if_len <- t.if_len + 1;
  t.inflight_count <- t.inflight_count + count

let push_op t count completion =
  retire_ready t;
  while t.inflight_count + count > t.cfg.rob_size && t.if_len > 0 do
    retire_oldest t
  done;
  t.retire_wm <- max t.retire_wm completion;
  if_push t count t.retire_wm

(* ---------- ALU work ---------- *)

let compute t n =
  if n < 0 then invalid_arg "Core.compute: negative count";
  let trace_start = t.cursor in
  let rob = t.cfg.rob_size and ipc = t.cfg.alu_ipc in
  let remaining = ref n in
  while !remaining > 0 do
    retire_ready t;
    if t.if_len = 0 && t.retire_wm <= t.cursor then begin
      (* Steady state: the window is empty and nothing retires in the
         future, so every further batch is a full-width push that
         retires by the time the next one issues.  The remaining ops
         collapse to arithmetic — same cycles, same final window state
         (one entry: the last batch) as stepping the loop. *)
      let m = !remaining in
      let full = m / rob and rem = m mod rob in
      let per_full = (rob + ipc - 1) / ipc in
      let last = if rem = 0 then rob else rem in
      let cycles =
        ((if rem = 0 then full - 1 else full) * per_full) + ((last + ipc - 1) / ipc)
      in
      t.cursor <- t.cursor + cycles;
      t.retire_wm <- t.cursor;
      if_push t last t.cursor;
      remaining := 0
    end
    else begin
      let free = rob - t.inflight_count in
      if free <= 0 then retire_oldest t
      else begin
        let k = min free !remaining in
        let cycles = (k + ipc - 1) / ipc in
        t.cursor <- t.cursor + cycles;
        t.retire_wm <- max t.retire_wm t.cursor;
        if_push t k t.retire_wm;
        remaining := !remaining - k
      end
    end
  done;
  if n > 0 && t.tracer <> None then
    trace t ~kind:"compute" ~name:(string_of_int n ^ " ops") ~start_cycle:trace_start
      ~duration:(t.cursor - trace_start)
(* Note: compute does not yield — a thread doing pure ALU work cannot
   affect other cores, and long think times would otherwise flood the
   event queue.  Yields happen at memory operations. *)

(* ---------- Store buffer helpers ---------- *)

(* Drop drained entries (completion <= cursor) by in-place compaction;
   order among live entries is irrelevant. *)
let sb_trim t =
  let kept = ref 0 in
  for i = 0 to t.sb_count - 1 do
    let c = Array.unsafe_get t.sb i in
    if c > t.cursor then begin
      Array.unsafe_set t.sb !kept c;
      incr kept
    end
  done;
  t.sb_count <- !kept

let sb_add t completion =
  Array.unsafe_set t.sb t.sb_count completion;
  t.sb_count <- t.sb_count + 1

let sb_reserve t =
  sb_trim t;
  if t.sb_count >= t.cfg.sb_size then begin
    let earliest = ref max_int in
    for i = 0 to t.sb_count - 1 do
      if t.sb.(i) < !earliest then earliest := t.sb.(i)
    done;
    if !earliest > t.cursor then t.cursor <- !earliest;
    sb_trim t
  end

let word addr = addr lsr 3

let new_fwd_cell _w = { fv = 0L; fn = 0 }

let fwd_add t addr v =
  let cell = Int_table.find_or_add t.fwd (word addr) new_fwd_cell in
  cell.fv <- v;
  cell.fn <- cell.fn + 1

let fwd_remove t addr =
  let cell = Int_table.find_or_add t.fwd (word addr) new_fwd_cell in
  if cell.fn > 0 then cell.fn <- cell.fn - 1

let fwd_cell t addr = Int_table.find_or_add t.fwd (word addr) new_fwd_cell

(* ---------- Loads ---------- *)

let finished_token v at = { completed = true; v; complete_at = at; waiter = None; obs = -1 }

let note_line_load t addr completion =
  let ln = addr lsr 6 in
  if completion > Int_table.get t.line_load_until ln ~default:0 then
    Int_table.set t.line_load_until ln completion

let line_load_gate t addr = Int_table.get t.line_load_until (addr lsr 6) ~default:0

let load_aux t ~acquire ~deps addr =
  t.n_loads <- t.n_loads + 1;
  maybe_yield t;
  fault_stall t;
  let t_issue = max t.cursor t.load_gate in
  let cell = fwd_cell t addr in
  if cell.fn > 0 then begin
    (* Store-to-load forwarding out of the store buffer. *)
    let v = cell.fv in
    let completion = t_issue + t.cfg.lat.l1_hit in
    push_op t 1 completion;
    t.last_load_complete <- max t.last_load_complete completion;
    note_line_load t addr completion;
    let tok = finished_token v completion in
    (* Only materialize the observer event (and its record/variant) when
       an observer is actually installed — unobserved runs pay nothing. *)
    (match t.observer with
    | None -> ()
    | Some _ ->
      tok.obs <-
        emit t ~kind:(Observe.Load { acquire }) ~addr ~deps ~issued:t_issue
          ~completes:completion);
    tok
  end
  else begin
    let a = Memsys.read t.memory ~now:t_issue ~core:t.id ~addr in
    let completion = t_issue + a.latency in
    if a.cross_node then t.cross_load_until <- max t.cross_load_until completion;
    t.last_load_complete <- max t.last_load_complete completion;
    note_line_load t addr completion;
    push_op t 1 completion;
    if t.tracer <> None then
      trace t ~kind:"load" ~name:(Printf.sprintf "ld 0x%x" addr) ~start_cycle:t_issue
        ~duration:a.latency;
    let obs =
      match t.observer with
      | None -> -1
      | Some _ ->
        emit t ~kind:(Observe.Load { acquire }) ~addr ~deps ~issued:t_issue
          ~completes:completion
    in
    if a.hit && a.latency <= t.cfg.lat.l1_hit && completion <= Event_queue.now t.q + t.cfg.lat.l1_hit
    then begin
      (* L1 hits whose completion is (essentially) now sample
         synchronously — no commit can intervene — which keeps polling
         loops cheap to simulate.  Hits scheduled in this core's future
         (e.g. behind a load gate while the thread runs ahead of global
         time) must go through the event queue so they observe stores
         committed in between. *)
      let tok = finished_token (Memsys.load_value t.memory ~addr) completion in
      tok.obs <- obs;
      tok
    end
    else begin
      let tok = { completed = false; v = 0L; complete_at = completion; waiter = None; obs } in
      Event_queue.schedule t.q ~at:completion (fun () ->
          tok.v <- Memsys.load_value t.memory ~addr;
          tok.completed <- true;
          match tok.waiter with
          | Some w ->
            tok.waiter <- None;
            w ()
          | None -> ());
      tok
    end
  end

let load t ?(deps = []) addr = load_aux t ~acquire:false ~deps addr

let await t tok =
  if not tok.completed then
    Effect.perform (Suspend (fun resume -> tok.waiter <- Some resume));
  if tok.complete_at > t.cursor then t.cursor <- tok.complete_at;
  tok.v

let value tok =
  if not tok.completed then invalid_arg "Core.value: token still in flight";
  tok.v

(* ---------- Stores ---------- *)

let store_common t addr v ~drain_start ~extra ~release ~deps =
  let a = Memsys.write_begin t.memory ~now:drain_start ~core:t.id ~addr in
  let completion = drain_start + a.latency + extra in
  if extra > 0 then Memsys.extend_pending t.memory ~core:t.id ~addr ~until:completion;
  if a.cross_node then t.cross_store_until <- max t.cross_store_until completion;
  t.last_store_complete <- max t.last_store_complete completion;
  sb_add t completion;
  fwd_add t addr v;
  (* The store instruction itself retires once buffered. *)
  push_op t 1 (t.cursor + 1);
  if t.tracer <> None then
    trace t ~kind:"store" ~name:(Printf.sprintf "st 0x%x" addr) ~start_cycle:drain_start
      ~duration:(completion - drain_start);
  if t.observer <> None then
    ignore
      (emit t ~kind:(Observe.Store { release }) ~addr ~deps ~issued:drain_start
         ~completes:completion);
  let core_id = t.id in
  Event_queue.schedule t.q ~at:completion (fun () ->
      fwd_remove t addr;
      Memsys.write_finish t.memory ~now:completion ~core:core_id ~addr;
      Memsys.commit_store t.memory ~addr v)

let store t ?(deps = []) addr v =
  t.n_stores <- t.n_stores + 1;
  maybe_yield t;
  fault_stall t;
  sb_reserve t;
  (* po-loc: may not commit before earlier same-line loads complete *)
  let drain_start = max (max t.cursor t.sb_gate) (line_load_gate t addr) in
  store_common t addr v ~drain_start ~extra:0 ~release:false ~deps

let stlr t ?(deps = []) addr v =
  t.n_stores <- t.n_stores + 1;
  maybe_yield t;
  fault_stall t;
  sb_reserve t;
  (* Release: all prior loads and stores must be observable before the
     released store commits. *)
  let drain_start =
    max
      (max (max t.cursor t.sb_gate) (line_load_gate t addr))
      (max t.last_load_complete t.last_store_complete)
  in
  store_common t addr v ~drain_start ~extra:t.cfg.stlr_extra ~release:true ~deps

(* ---------- Load-acquire ---------- *)

let ldar t ?(deps = []) addr =
  let tok = load_aux t ~acquire:true ~deps addr in
  (* Subsequent memory accesses held until the acquire completes. *)
  t.load_gate <- max t.load_gate tok.complete_at;
  t.sb_gate <- max t.sb_gate tok.complete_at;
  tok

(* ---------- Barriers ---------- *)

(* Response time of a DMB's ACE memory barrier transaction: it reaches
   the inner bi-section boundary only after the outstanding snoop
   transactions (pending drains / in-flight loads) have finished — so
   cross-node snoops inflate it (Observation 5) — but when nothing
   relevant is outstanding the transaction terminates internally. *)
let dmb_response t resp_base =
  if resp_base <= t.cursor then t.cursor + t.cfg.dmb_min
  else
    (* A transaction that does travel to the boundary is exposed to the
       fabric: a fault plan may NACK it, charging backoff per retry. *)
    resp_base + t.cfg.lat.bisection_rt + fault_barrier_delay t

let barrier t (b : Barrier.t) =
  t.n_barriers <- t.n_barriers + 1;
  maybe_yield t;
  let trace_start = t.cursor in
  (match b with
  | Dmb opt ->
    let waits_loads = opt <> Barrier.St and waits_stores = opt <> Barrier.Ld in
    let resp_base =
      max
        (if waits_loads then t.last_load_complete else 0)
        (if waits_stores then t.last_store_complete else 0)
    in
    let resp =
      match opt with
      | Barrier.Ld ->
        (* Resolved core-locally: the core knows when loads finish. *)
        if resp_base <= t.cursor then t.cursor + t.cfg.dmb_min else resp_base
      | Barrier.Full | Barrier.St -> dmb_response t resp_base
    in
    (match opt with
    | Barrier.Full ->
      t.load_gate <- max t.load_gate resp;
      t.sb_gate <- max t.sb_gate resp;
      (* DMB full occupies the in-flight window until its response:
         long waits saturate the ROB and stall independent work. *)
      push_op t 1 resp
    | Barrier.St ->
      t.sb_gate <- max t.sb_gate resp;
      (* A more radical implementation: retires immediately, leaving
         only an ordering token in the store buffer. *)
      push_op t 1 (t.cursor + 1)
    | Barrier.Ld ->
      t.load_gate <- max t.load_gate resp;
      t.sb_gate <- max t.sb_gate resp;
      push_op t 1 resp)
  | Dsb opt ->
    let resp_base =
      max
        (if opt <> Barrier.St then t.last_load_complete else 0)
        (if opt <> Barrier.Ld then t.last_store_complete else 0)
    in
    (* The synchronization barrier transaction always travels to the
       inner domain boundary and blocks every subsequent instruction. *)
    let resp = max t.cursor resp_base + t.cfg.lat.domain_rt + fault_barrier_delay t in
    t.cursor <- resp;
    t.load_gate <- max t.load_gate resp;
    t.sb_gate <- max t.sb_gate resp;
    push_op t 1 resp
  | Isb ->
    (* Pipeline flush: refetch after every prior instruction retires. *)
    let resp = max t.cursor t.retire_wm + t.cfg.isb_cost in
    t.cursor <- resp;
    push_op t 1 resp);
  if t.observer <> None then
    ignore
      (emit t ~kind:(Observe.Fence b) ~addr:(-1) ~deps:[] ~issued:trace_start
         ~completes:(max trace_start (max t.load_gate t.sb_gate)));
  if t.tracer <> None then
    trace t ~kind:"barrier" ~name:(Barrier.to_string b) ~start_cycle:trace_start
      ~duration:(max 1 (max t.load_gate t.sb_gate - trace_start))

(* ---------- Atomics ---------- *)

let rmw t ?(acq = false) ?(rel = false) ?(deps = []) addr f =
  t.n_rmws <- t.n_rmws + 1;
  maybe_yield t;
  fault_stall t;
  let start = max (max t.cursor t.load_gate) (line_load_gate t addr) in
  let start =
    if rel then max start (max t.last_load_complete t.last_store_complete) else start
  in
  let a = Memsys.rmw t.memory ~now:start ~core:t.id ~addr in
  let completion = start + a.latency in
  if a.cross_node then begin
    t.cross_load_until <- max t.cross_load_until completion;
    t.cross_store_until <- max t.cross_store_until completion
  end;
  t.last_load_complete <- max t.last_load_complete completion;
  t.last_store_complete <- max t.last_store_complete completion;
  if acq then begin
    t.load_gate <- max t.load_gate completion;
    t.sb_gate <- max t.sb_gate completion
  end;
  if t.tracer <> None then
    trace t ~kind:"rmw" ~name:(Printf.sprintf "rmw 0x%x" addr) ~start_cycle:start
      ~duration:a.latency;
  push_op t 1 completion;
  let obs =
    match t.observer with
    | None -> -1
    | Some _ ->
      emit t ~kind:(Observe.Rmw { acq; rel }) ~addr ~deps ~issued:start ~completes:completion
  in
  let tok = { completed = false; v = 0L; complete_at = completion; waiter = None; obs } in
  Event_queue.schedule t.q ~at:completion (fun () ->
      let old = Memsys.load_value t.memory ~addr in
      Memsys.commit_store t.memory ~addr (f old);
      tok.v <- old;
      tok.completed <- true;
      match tok.waiter with
      | Some w ->
        tok.waiter <- None;
        w ()
      | None -> ());
  tok

let cas t ?acq ?rel ?deps addr ~expected ~desired =
  rmw t ?acq ?rel ?deps addr (fun old -> if Int64.equal old expected then desired else old)

let fetch_add t ?acq ?rel ?deps addr delta =
  rmw t ?acq ?rel ?deps addr (fun old -> Int64.add old delta)

(* ---------- Spinning ---------- *)

let rec spin_until t addr pred =
  t.n_spins <- t.n_spins + 1;
  let tok = load t addr in
  let v = await t tok in
  if pred v then v
  else begin
    (* Sleep until any store commits to the line, then poll again. *)
    Effect.perform (Suspend (fun resume -> Memsys.watch t.memory ~addr resume));
    sync_to t (Event_queue.now t.q);
    spin_until t addr pred
  end

(* Prepare-to-wait: [check] may suspend internally (it awaits loads), so
   a store could commit between its sampling and a later watch
   registration — registering the watch first closes that lost-wakeup
   window.  A watch left over from a successful poll only touches this
   round's refs, which is harmless. *)
let rec spin_poll t addr check =
  t.n_spins <- t.n_spins + 1;
  let fired_early = ref false in
  let parked = ref None in
  Memsys.watch t.memory ~addr (fun () ->
      match !parked with
      | Some resume ->
        parked := None;
        resume ()
      | None -> fired_early := true);
  match check () with
  | Some v -> v
  | None ->
    if not !fired_early then
      Effect.perform (Suspend (fun resume -> parked := Some resume));
    sync_to t (Event_queue.now t.q);
    spin_poll t addr check

let pause t n =
  if n < 0 then invalid_arg "Core.pause: negative duration";
  t.cursor <- t.cursor + n
