module Memsys = Armb_mem.Memsys
module Event_queue = Armb_sim.Event_queue

type token = {
  mutable completed : bool;
  mutable v : int64;
  mutable complete_at : int;
  mutable waiter : (unit -> unit) option;
  mutable obs : int; (* observer seq of the producing load/rmw, -1 if untracked *)
}

type counters = {
  loads : int;
  stores : int;
  barriers : int;
  rmws : int;
  spins : int;
}

type t = {
  id : int;
  cfg : Config.t;
  q : Event_queue.t;
  memory : Memsys.t;
  mutable cursor : int;
  (* In-flight window (ROB): (op count, retire-ready time) in program
     order; retire-ready is the running max of completion times, which
     encodes in-order retirement. *)
  inflight : (int * int) Queue.t;
  mutable inflight_count : int;
  mutable retire_wm : int;
  (* Store buffer: completion times of undrained stores, plus a
     forwarding map word-address -> (value, pending count). *)
  mutable sb : int list;
  fwd : (int, int64 * int) Hashtbl.t;
  (* Ordering state. *)
  mutable load_gate : int; (* earliest issue of subsequent loads *)
  mutable sb_gate : int; (* earliest drain start of subsequent stores *)
  line_load_until : (int, int) Hashtbl.t;
      (* per line: latest completion among this core's issued loads —
         a later same-line store may not commit before them (po-loc) *)
  mutable last_load_complete : int;
  mutable last_store_complete : int;
  mutable cross_load_until : int; (* a cross-node load outstanding until t *)
  mutable cross_store_until : int;
  tracer : (Trace.span -> unit) option;
  observer : Observe.t option;
  mutable op_seq : int; (* next observer event index *)
  (* Counters. *)
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_barriers : int;
  mutable n_rmws : int;
  mutable n_spins : int;
}

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let make ?tracer ?observer ~id ~cfg ~queue ~mem () =
  Config.validate cfg;
  {
    tracer;
    observer;
    op_seq = 0;
    id;
    cfg;
    q = queue;
    memory = mem;
    cursor = 0;
    inflight = Queue.create ();
    inflight_count = 0;
    retire_wm = 0;
    sb = [];
    fwd = Hashtbl.create 64;
    load_gate = 0;
    sb_gate = 0;
    line_load_until = Hashtbl.create 64;
    last_load_complete = 0;
    last_store_complete = 0;
    cross_load_until = 0;
    cross_store_until = 0;
    n_loads = 0;
    n_stores = 0;
    n_barriers = 0;
    n_rmws = 0;
    n_spins = 0;
  }

let id t = t.id
let cursor t = t.cursor
let config t = t.cfg
let mem t = t.memory

(* Yield to the event queue when the thread has run too far ahead of
   global simulated time, so concurrently-running threads interleave at
   [quantum] granularity and contend for cache lines realistically. *)
let maybe_yield t =
  if t.cursor - Event_queue.now t.q > t.cfg.quantum then begin
    let q = t.q and at = t.cursor in
    Effect.perform (Suspend (fun resume -> Event_queue.schedule q ~at resume))
  end

let counters t =
  { loads = t.n_loads; stores = t.n_stores; barriers = t.n_barriers; rmws = t.n_rmws; spins = t.n_spins }

let sync_to t time = if time > t.cursor then t.cursor <- time

let trace t ~kind ~name ~start_cycle ~duration =
  match t.tracer with
  | Some f -> f { Trace.core = t.id; kind; name; start_cycle; duration }
  | None -> ()

(* ---------- Observation ---------- *)

(* Emit one observer event; returns its per-core seq (-1 when no
   observer is installed, so tokens of unobserved runs carry no id). *)
let emit t ~kind ~addr ~deps ~issued ~completes =
  match t.observer with
  | None -> -1
  | Some f ->
    let seq = t.op_seq in
    t.op_seq <- seq + 1;
    let deps = List.filter_map (fun tok -> if tok.obs >= 0 then Some tok.obs else None) deps in
    f { Observe.core = t.id; seq; kind; addr; deps; issued_at = issued; completes_at = completes };
    seq

(* ---------- In-flight window ---------- *)

let retire_ready t =
  (* Free entries whose retire time has passed. *)
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.inflight with
    | Some (c, r) when r <= t.cursor ->
      ignore (Queue.pop t.inflight);
      t.inflight_count <- t.inflight_count - c
    | _ -> continue := false
  done

let retire_oldest t =
  match Queue.take_opt t.inflight with
  | Some (c, r) ->
    t.inflight_count <- t.inflight_count - c;
    if r > t.cursor then t.cursor <- r
  | None -> ()

let push_op t count completion =
  retire_ready t;
  while t.inflight_count + count > t.cfg.rob_size && not (Queue.is_empty t.inflight) do
    retire_oldest t
  done;
  t.retire_wm <- max t.retire_wm completion;
  Queue.push (count, t.retire_wm) t.inflight;
  t.inflight_count <- t.inflight_count + count

(* ---------- ALU work ---------- *)

let compute t n =
  if n < 0 then invalid_arg "Core.compute: negative count";
  let trace_start = t.cursor in
  let remaining = ref n in
  while !remaining > 0 do
    retire_ready t;
    let free = t.cfg.rob_size - t.inflight_count in
    if free <= 0 then retire_oldest t
    else begin
      let k = min free !remaining in
      let cycles = (k + t.cfg.alu_ipc - 1) / t.cfg.alu_ipc in
      t.cursor <- t.cursor + cycles;
      t.retire_wm <- max t.retire_wm t.cursor;
      Queue.push (k, t.retire_wm) t.inflight;
      t.inflight_count <- t.inflight_count + k;
      remaining := !remaining - k
    end
  done;
  if n > 0 then
    trace t ~kind:"compute" ~name:(string_of_int n ^ " ops") ~start_cycle:trace_start
      ~duration:(t.cursor - trace_start)
(* Note: compute does not yield — a thread doing pure ALU work cannot
   affect other cores, and long think times would otherwise flood the
   event queue.  Yields happen at memory operations. *)

(* ---------- Store buffer helpers ---------- *)

let sb_trim t = t.sb <- List.filter (fun c -> c > t.cursor) t.sb

let sb_reserve t =
  sb_trim t;
  if List.length t.sb >= t.cfg.sb_size then begin
    let earliest = List.fold_left min max_int t.sb in
    if earliest > t.cursor then t.cursor <- earliest;
    sb_trim t
  end

let word addr = addr lsr 3

let fwd_add t addr v =
  let w = word addr in
  match Hashtbl.find_opt t.fwd w with
  | Some (_, n) -> Hashtbl.replace t.fwd w (v, n + 1)
  | None -> Hashtbl.replace t.fwd w (v, 1)

let fwd_remove t addr =
  let w = word addr in
  match Hashtbl.find_opt t.fwd w with
  | Some (_, 1) -> Hashtbl.remove t.fwd w
  | Some (v, n) -> Hashtbl.replace t.fwd w (v, n - 1)
  | None -> ()

let fwd_lookup t addr =
  match Hashtbl.find_opt t.fwd (word addr) with Some (v, _) -> Some v | None -> None

(* ---------- Loads ---------- *)

let finished_token v at = { completed = true; v; complete_at = at; waiter = None; obs = -1 }

let note_line_load t addr completion =
  let ln = addr lsr 6 in
  match Hashtbl.find_opt t.line_load_until ln with
  | Some prev when prev >= completion -> ()
  | _ -> Hashtbl.replace t.line_load_until ln completion

let line_load_gate t addr =
  match Hashtbl.find_opt t.line_load_until (addr lsr 6) with Some x -> x | None -> 0

let load_aux t ~acquire ~deps addr =
  t.n_loads <- t.n_loads + 1;
  maybe_yield t;
  let t_issue = max t.cursor t.load_gate in
  let observe completion =
    emit t ~kind:(Observe.Load { acquire }) ~addr ~deps ~issued:t_issue ~completes:completion
  in
  match fwd_lookup t addr with
  | Some v ->
    (* Store-to-load forwarding out of the store buffer. *)
    let completion = t_issue + t.cfg.lat.l1_hit in
    push_op t 1 completion;
    t.last_load_complete <- max t.last_load_complete completion;
    note_line_load t addr completion;
    let tok = finished_token v completion in
    tok.obs <- observe completion;
    tok
  | None ->
    let a = Memsys.read t.memory ~now:t_issue ~core:t.id ~addr in
    let completion = t_issue + a.latency in
    if a.cross_node then t.cross_load_until <- max t.cross_load_until completion;
    t.last_load_complete <- max t.last_load_complete completion;
    note_line_load t addr completion;
    push_op t 1 completion;
    trace t ~kind:"load" ~name:(Printf.sprintf "ld 0x%x" addr) ~start_cycle:t_issue
      ~duration:a.latency;
    let obs = observe completion in
    if a.hit && a.latency <= t.cfg.lat.l1_hit && completion <= Event_queue.now t.q + t.cfg.lat.l1_hit
    then begin
      (* L1 hits whose completion is (essentially) now sample
         synchronously — no commit can intervene — which keeps polling
         loops cheap to simulate.  Hits scheduled in this core's future
         (e.g. behind a load gate while the thread runs ahead of global
         time) must go through the event queue so they observe stores
         committed in between. *)
      let tok = finished_token (Memsys.load_value t.memory ~addr) completion in
      tok.obs <- obs;
      tok
    end
    else begin
      let tok = { completed = false; v = 0L; complete_at = completion; waiter = None; obs } in
      Event_queue.schedule t.q ~at:completion (fun () ->
          tok.v <- Memsys.load_value t.memory ~addr;
          tok.completed <- true;
          match tok.waiter with
          | Some w ->
            tok.waiter <- None;
            w ()
          | None -> ());
      tok
    end

let load t ?(deps = []) addr = load_aux t ~acquire:false ~deps addr

let await t tok =
  if not tok.completed then
    Effect.perform (Suspend (fun resume -> tok.waiter <- Some resume));
  if tok.complete_at > t.cursor then t.cursor <- tok.complete_at;
  tok.v

let value tok =
  if not tok.completed then invalid_arg "Core.value: token still in flight";
  tok.v

(* ---------- Stores ---------- *)

let store_common t addr v ~drain_start ~extra ~release ~deps =
  let a = Memsys.write_begin t.memory ~now:drain_start ~core:t.id ~addr in
  let completion = drain_start + a.latency + extra in
  if extra > 0 then Memsys.extend_pending t.memory ~core:t.id ~addr ~until:completion;
  if a.cross_node then t.cross_store_until <- max t.cross_store_until completion;
  t.last_store_complete <- max t.last_store_complete completion;
  t.sb <- completion :: t.sb;
  fwd_add t addr v;
  (* The store instruction itself retires once buffered. *)
  push_op t 1 (t.cursor + 1);
  trace t ~kind:"store" ~name:(Printf.sprintf "st 0x%x" addr) ~start_cycle:drain_start
    ~duration:(completion - drain_start);
  ignore
    (emit t ~kind:(Observe.Store { release }) ~addr ~deps ~issued:drain_start
       ~completes:completion);
  let core_id = t.id in
  Event_queue.schedule t.q ~at:completion (fun () ->
      fwd_remove t addr;
      Memsys.write_finish t.memory ~now:completion ~core:core_id ~addr;
      Memsys.commit_store t.memory ~addr v)

let store t ?(deps = []) addr v =
  t.n_stores <- t.n_stores + 1;
  maybe_yield t;
  sb_reserve t;
  (* po-loc: may not commit before earlier same-line loads complete *)
  let drain_start = max (max t.cursor t.sb_gate) (line_load_gate t addr) in
  store_common t addr v ~drain_start ~extra:0 ~release:false ~deps

let stlr t ?(deps = []) addr v =
  t.n_stores <- t.n_stores + 1;
  maybe_yield t;
  sb_reserve t;
  (* Release: all prior loads and stores must be observable before the
     released store commits. *)
  let drain_start =
    max
      (max (max t.cursor t.sb_gate) (line_load_gate t addr))
      (max t.last_load_complete t.last_store_complete)
  in
  store_common t addr v ~drain_start ~extra:t.cfg.stlr_extra ~release:true ~deps

(* ---------- Load-acquire ---------- *)

let ldar t ?(deps = []) addr =
  let tok = load_aux t ~acquire:true ~deps addr in
  (* Subsequent memory accesses held until the acquire completes. *)
  t.load_gate <- max t.load_gate tok.complete_at;
  t.sb_gate <- max t.sb_gate tok.complete_at;
  tok

(* ---------- Barriers ---------- *)

(* Response time of a DMB's ACE memory barrier transaction: it reaches
   the inner bi-section boundary only after the outstanding snoop
   transactions (pending drains / in-flight loads) have finished — so
   cross-node snoops inflate it (Observation 5) — but when nothing
   relevant is outstanding the transaction terminates internally. *)
let dmb_response t resp_base =
  if resp_base <= t.cursor then t.cursor + t.cfg.dmb_min
  else resp_base + t.cfg.lat.bisection_rt

let barrier t (b : Barrier.t) =
  t.n_barriers <- t.n_barriers + 1;
  maybe_yield t;
  let trace_start = t.cursor in
  let finish () =
    trace t ~kind:"barrier" ~name:(Barrier.to_string b) ~start_cycle:trace_start
      ~duration:(max 1 (max t.load_gate t.sb_gate - trace_start))
  in
  (match b with
  | Dmb opt ->
    let waits_loads = opt <> Barrier.St and waits_stores = opt <> Barrier.Ld in
    let resp_base =
      max
        (if waits_loads then t.last_load_complete else 0)
        (if waits_stores then t.last_store_complete else 0)
    in
    let resp =
      match opt with
      | Barrier.Ld ->
        (* Resolved core-locally: the core knows when loads finish. *)
        if resp_base <= t.cursor then t.cursor + t.cfg.dmb_min else resp_base
      | Barrier.Full | Barrier.St -> dmb_response t resp_base
    in
    (match opt with
    | Barrier.Full ->
      t.load_gate <- max t.load_gate resp;
      t.sb_gate <- max t.sb_gate resp;
      (* DMB full occupies the in-flight window until its response:
         long waits saturate the ROB and stall independent work. *)
      push_op t 1 resp
    | Barrier.St ->
      t.sb_gate <- max t.sb_gate resp;
      (* A more radical implementation: retires immediately, leaving
         only an ordering token in the store buffer. *)
      push_op t 1 (t.cursor + 1)
    | Barrier.Ld ->
      t.load_gate <- max t.load_gate resp;
      t.sb_gate <- max t.sb_gate resp;
      push_op t 1 resp)
  | Dsb opt ->
    let resp_base =
      max
        (if opt <> Barrier.St then t.last_load_complete else 0)
        (if opt <> Barrier.Ld then t.last_store_complete else 0)
    in
    (* The synchronization barrier transaction always travels to the
       inner domain boundary and blocks every subsequent instruction. *)
    let resp = max t.cursor resp_base + t.cfg.lat.domain_rt in
    t.cursor <- resp;
    t.load_gate <- max t.load_gate resp;
    t.sb_gate <- max t.sb_gate resp;
    push_op t 1 resp
  | Isb ->
    (* Pipeline flush: refetch after every prior instruction retires. *)
    let resp = max t.cursor t.retire_wm + t.cfg.isb_cost in
    t.cursor <- resp;
    push_op t 1 resp);
  ignore
    (emit t ~kind:(Observe.Fence b) ~addr:(-1) ~deps:[] ~issued:trace_start
       ~completes:(max trace_start (max t.load_gate t.sb_gate)));
  finish ()

(* ---------- Atomics ---------- *)

let rmw t ?(acq = false) ?(rel = false) ?(deps = []) addr f =
  t.n_rmws <- t.n_rmws + 1;
  maybe_yield t;
  let start = max (max t.cursor t.load_gate) (line_load_gate t addr) in
  let start =
    if rel then max start (max t.last_load_complete t.last_store_complete) else start
  in
  let a = Memsys.rmw t.memory ~now:start ~core:t.id ~addr in
  let completion = start + a.latency in
  if a.cross_node then begin
    t.cross_load_until <- max t.cross_load_until completion;
    t.cross_store_until <- max t.cross_store_until completion
  end;
  t.last_load_complete <- max t.last_load_complete completion;
  t.last_store_complete <- max t.last_store_complete completion;
  if acq then begin
    t.load_gate <- max t.load_gate completion;
    t.sb_gate <- max t.sb_gate completion
  end;
  trace t ~kind:"rmw" ~name:(Printf.sprintf "rmw 0x%x" addr) ~start_cycle:start
    ~duration:a.latency;
  push_op t 1 completion;
  let obs =
    emit t ~kind:(Observe.Rmw { acq; rel }) ~addr ~deps ~issued:start ~completes:completion
  in
  let tok = { completed = false; v = 0L; complete_at = completion; waiter = None; obs } in
  Event_queue.schedule t.q ~at:completion (fun () ->
      let old = Memsys.load_value t.memory ~addr in
      Memsys.commit_store t.memory ~addr (f old);
      tok.v <- old;
      tok.completed <- true;
      match tok.waiter with
      | Some w ->
        tok.waiter <- None;
        w ()
      | None -> ());
  tok

let cas t ?acq ?rel ?deps addr ~expected ~desired =
  rmw t ?acq ?rel ?deps addr (fun old -> if Int64.equal old expected then desired else old)

let fetch_add t ?acq ?rel ?deps addr delta =
  rmw t ?acq ?rel ?deps addr (fun old -> Int64.add old delta)

(* ---------- Spinning ---------- *)

let rec spin_until t addr pred =
  t.n_spins <- t.n_spins + 1;
  let tok = load t addr in
  let v = await t tok in
  if pred v then v
  else begin
    (* Sleep until any store commits to the line, then poll again. *)
    Effect.perform (Suspend (fun resume -> Memsys.watch t.memory ~addr resume));
    sync_to t (Event_queue.now t.q);
    spin_until t addr pred
  end

(* Prepare-to-wait: [check] may suspend internally (it awaits loads), so
   a store could commit between its sampling and a later watch
   registration — registering the watch first closes that lost-wakeup
   window.  A watch left over from a successful poll only touches this
   round's refs, which is harmless. *)
let rec spin_poll t addr check =
  t.n_spins <- t.n_spins + 1;
  let fired_early = ref false in
  let parked = ref None in
  Memsys.watch t.memory ~addr (fun () ->
      match !parked with
      | Some resume ->
        parked := None;
        resume ()
      | None -> fired_early := true);
  match check () with
  | Some v -> v
  | None ->
    if not !fired_early then
      Effect.perform (Suspend (fun resume -> parked := Some resume));
    sync_to t (Event_queue.now t.q);
    spin_poll t addr check

let pause t n =
  if n < 0 then invalid_arg "Core.pause: negative duration";
  t.cursor <- t.cursor + n
