(** Multi-core machine: owns the event queue, the memory system and the
    simulated threads, and drives them to completion. *)

type t

type status =
  | Completed  (** every spawned thread returned *)
  | Deadlock of int list  (** ids of cores still blocked when the event queue drained *)
  | Cycle_limit  (** [max_cycles] reached first *)

exception Simulation_error of string

val create :
  ?tracer:(Trace.span -> unit) ->
  ?observer:Observe.t ->
  ?fault:Armb_fault.Plan.spec ->
  Config.t ->
  t
(** [tracer] receives a span per simulated micro-operation — see
    {!Trace} for collection and Chrome-trace export.  [observer] is the
    opt-in instrumentation hook fed to every spawned core — the
    happens-before sanitizer ([Armb_check.Sanitizer.observer]) plugs in
    here; runs without an observer pay no overhead.  [fault] arms a
    deterministic fault-injection plan (see {!Armb_fault.Plan}): one
    seeded injector is shared by the memory system and every core, so a
    given plan perturbs a given program identically on every run.  A
    null plan (all probabilities zero) is equivalent to omitting it. *)

val config : t -> Config.t
val mem : t -> Armb_mem.Memsys.t
val queue : t -> Armb_sim.Event_queue.t

val injector : t -> Armb_fault.Injector.t option
(** The armed fault injector, if any — for post-run fault counters and
    the per-run event digest. *)

val alloc_line : t -> int
(** Bump-allocate a fresh cache-line-aligned address (64-byte spacing),
    so unrelated shared variables never false-share. *)

val alloc_lines : t -> int -> int
(** Allocate [n] consecutive lines; returns the first address. *)

val spawn : t -> core:int -> (Core.t -> unit) -> unit
(** Bind a simulated thread to a core.  At most one thread per core.
    Threads begin executing when [run] is called. *)

val core : t -> int -> Core.t
(** The core state (for reading cursors/counters after a run).
    Raises [Not_found] if nothing was spawned on that core. *)

val run : ?max_cycles:int -> t -> status
(** Execute all spawned threads to completion. *)

val run_exn : ?max_cycles:int -> t -> unit
(** Like [run] but raises [Simulation_error] unless the result is
    [Completed]. *)

val elapsed : t -> int
(** Max cursor over all cores after a run — the makespan in cycles. *)

val throughput : t -> ops:int -> float
(** [ops] per second given the makespan and the platform frequency. *)
