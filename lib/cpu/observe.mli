(** Observation hook for the timing model.

    When a {!Core.t} is created with an observer, it emits one {!event}
    per executed micro-operation (loads, stores, RMWs and barriers) in
    program order, carrying the acquire/release/barrier annotations, the
    explicit address/data dependencies, and the completion timestamps
    assigned by the timing model.  This is the instrumentation surface
    the happens-before sanitizer ([armb_check]) is built on; it costs
    nothing when no observer is installed. *)

type kind =
  | Load of { acquire : bool }
  | Store of { release : bool }
  | Rmw of { acq : bool; rel : bool }
  | Fence of Barrier.t

type event = {
  core : int;
  seq : int;
      (** per-core program-order index; every observed op (fences
          included) takes one slot *)
  kind : kind;
  addr : int;  (** byte address of the access; meaningless for [Fence] *)
  deps : int list;
      (** seqs of same-core loads whose value this op's address or data
          depends on *)
  issued_at : int;
  completes_at : int;
      (** load: value-sample time; store: commit (drain) time; fence:
          barrier response time *)
}

type t = event -> unit

val is_access : kind -> bool
val kind_to_string : kind -> string
val pp_event : Format.formatter -> event -> unit
