(** Timing model of one simulated core, plus the split-phase micro-op DSL
    that simulated threads are written in.

    A simulated thread is an OCaml function receiving a [Core.t] and
    calling the operations below.  Program order is the call order;
    {e dependence} is explicit: anything executed after [await tok]
    depends on the load that produced [tok], anything issued before the
    [await] may overlap it.  The core model applies ARM's weakly-ordered
    semantics:

    - loads complete out of order with latencies from the coherence
      model; values are sampled at the completion timestamp;
    - stores enter a store buffer and drain in the background, becoming
      globally visible at drain completion (drains to different lines
      complete independently — store-store reordering is observable);
    - barriers gate issue/drain times per their architectural semantics
      and, for DMB/DSB, model the ACE barrier-transaction round trip to
      the inner bi-section or inner domain boundary;
    - a bounded in-flight window (ROB) retires in order, so a pending
      DMB full backs up the window and indirectly stalls independent
      ALU work (the paper's Figure 4 mechanism).

    Blocking operations ([await], [spin_until], [rmw] results) suspend
    the thread with an effect handled by {!Machine}. *)

type t

type token
(** Handle of an in-flight load / RMW result. *)

(** {2 Introspection} *)

val id : t -> int
val cursor : t -> int
(** Local cycle count: issue time of the next instruction. *)

val config : t -> Config.t
val mem : t -> Armb_mem.Memsys.t

(** {2 Micro-ops} *)

val compute : t -> int -> unit
(** [compute c n] executes [n] independent single-cycle ALU ops (NOPs in
    the paper's models), issued [alu_ipc] per cycle, bounded by the
    in-flight window. *)

val load : t -> ?deps:token list -> int -> token
(** Issue a load from a byte address.  Returns immediately; the value is
    available through [await].  Store-buffer forwarding applies.
    [deps] declares architectural address dependencies on earlier loads
    (tokens); they only matter to an installed {!Observe.t} observer —
    the timing model derives its ordering from [await] placement. *)

val await : t -> token -> int64
(** Wait for completion and return the loaded value.  Everything the
    thread does afterwards is ordered after the load (data/address/
    control dependence). *)

val value : token -> int64
(** Value of an already-completed token.  Raises [Invalid_argument] if
    the token is still in flight (use [await]). *)

val store : t -> ?deps:token list -> int -> int64 -> unit
(** Put a store into the store buffer.  Issue never blocks on the bus;
    it only stalls when the store buffer is full.  [deps] declares
    address/data dependencies on earlier loads (observer-only, like
    {!load}). *)

val barrier : t -> Barrier.t -> unit
(** Execute a barrier instruction (see {!Barrier.t}). *)

val ldar : t -> ?deps:token list -> int -> token
(** Load-acquire: subsequent memory accesses are held until it
    completes.  Resolved core-locally — no bus transaction. *)

val stlr : t -> ?deps:token list -> int -> int64 -> unit
(** Store-release: its commit waits for all prior loads and stores to be
    observable (plus a domain round trip when the platform's
    [stlr_domain] policy is set). *)

val rmw : t -> ?acq:bool -> ?rel:bool -> ?deps:token list -> int -> (int64 -> int64) -> token
(** Atomic read-modify-write: atomically replaces the word with
    [f old]; the token yields [old].  [acq]/[rel] attach
    acquire/release ordering. *)

val cas :
  t -> ?acq:bool -> ?rel:bool -> ?deps:token list -> int -> expected:int64 -> desired:int64 -> token
(** Compare-and-swap; token yields the previous value (success iff it
    equals [expected]). *)

val fetch_add : t -> ?acq:bool -> ?rel:bool -> ?deps:token list -> int -> int64 -> token
(** Atomic add; token yields the previous value. *)

val spin_until : t -> int -> (int64 -> bool) -> int64
(** [spin_until c addr pred] models a polling loop on [addr]: it costs
    one load per poll but sleeps on a cache-line watch between changes,
    so it is cheap to simulate.  Returns the first value satisfying
    [pred]. *)

val spin_poll : t -> int -> (unit -> 'a option) -> 'a
(** [spin_poll c addr check] generalizes [spin_until] to polling
    conditions that span several words: [check] (which may perform
    loads/awaits, and pays their cycles) is evaluated; on [None] the
    thread sleeps until the next committed store to [addr]'s cache line
    and polls again. *)

val pause : t -> int -> unit
(** Suspend the thread for [n] cycles of simulated time without issuing
    instructions (models a descheduled/idle thread). *)

(** {2 Counters} *)

type counters = {
  loads : int;
  stores : int;
  barriers : int;
  rmws : int;
  spins : int;
}

val counters : t -> counters

(** {2 Used by Machine} *)

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

val make :
  ?tracer:(Trace.span -> unit) ->
  ?observer:Observe.t ->
  ?fault:Armb_fault.Injector.t ->
  id:int ->
  cfg:Config.t ->
  queue:Armb_sim.Event_queue.t ->
  mem:Armb_mem.Memsys.t ->
  unit ->
  t

val sync_to : t -> int -> unit
(** Advance the core's cursor to at least the given time (used by the
    scheduler when resuming after a suspension). *)
