(* Observation hook: a per-core stream of micro-operation events emitted
   by Core at issue time.  Consumers (e.g. the happens-before sanitizer
   in armb_check) see program order, barrier/acquire/release annotations,
   explicit dependencies, and the timing model's completion timestamps,
   which is enough to reconstruct both the preserved program order and
   the per-location coherence order of a run. *)

type kind =
  | Load of { acquire : bool }
  | Store of { release : bool }
  | Rmw of { acq : bool; rel : bool }
  | Fence of Barrier.t

type event = {
  core : int;
  seq : int;
      (* per-core program-order index; every observed op (fences
         included) takes one slot, so [seq] doubles as an event id
         within its core *)
  kind : kind;
  addr : int; (* byte address of the access; meaningless for [Fence] *)
  deps : int list;
      (* seqs of same-core loads whose value this op's address or data
         depends on (architectural address/data dependencies) *)
  issued_at : int;
  completes_at : int;
      (* load: value-sample time; store: commit (drain) time; rmw:
         commit time; fence: barrier response time *)
}

type t = event -> unit

let is_access = function Load _ | Store _ | Rmw _ -> true | Fence _ -> false

let kind_to_string = function
  | Load { acquire } -> if acquire then "ldar" else "ldr"
  | Store { release } -> if release then "stlr" else "str"
  | Rmw { acq; rel } ->
    "rmw" ^ (if acq then ".acq" else "") ^ if rel then ".rel" else ""
  | Fence b -> Barrier.to_string b

let pp_event ppf e =
  if is_access e.kind then
    Format.fprintf ppf "[%d:%d] %s 0x%x @%d..%d" e.core e.seq (kind_to_string e.kind)
      e.addr e.issued_at e.completes_at
  else Format.fprintf ppf "[%d:%d] %s @%d" e.core e.seq (kind_to_string e.kind) e.issued_at
