module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Event_queue = Armb_sim.Event_queue

type kind = Central | Tree of int | Dissemination

let kind_name = function
  | Central -> "central"
  | Tree k -> Printf.sprintf "tree%d" k
  | Dissemination -> "dissemination"

type spec = {
  cfg : Armb_cpu.Config.t;
  kind : kind;
  cores : int list;
  episodes : int;
  work : int;
}

let default_spec cfg ~kind =
  let n = Armb_mem.Topology.num_cores cfg.Armb_cpu.Config.topo in
  { cfg; kind; cores = List.init n Fun.id; episodes = 4; work = 64 }

type result = {
  cycles : int;
  episodes : int;
  cycles_per_episode : float;
  events : int;
  counters : Armb_mem.Memsys.counters;
}

(* All three primitives are sense-reversing in the monotone-counter
   style: arrival counters only ever increase and the release word
   carries the episode number, so no counter is ever reset — the reset
   store of the textbook central barrier races the next episode's
   arrivals, and monotone counts sidestep that entirely (the 1024-core
   RISC-V cluster paper does the same).  Episode [ep] is complete at a
   counter when it reaches [ep * width].

   Synchronization is validated host-side, not through simulated loads:
   every core records its arrival in [progress] before joining, and
   checks all peers' recorded arrivals right after its release.  Event
   processing order respects simulated time, and a release observation
   strictly follows every arrival in simulated time, so the check is
   exact and costs no simulated traffic. *)

let check_progress ~kind ~progress ~self ~ep =
  Array.iteri
    (fun j arrived ->
      if arrived < ep then
        raise
          (Machine.Simulation_error
             (Printf.sprintf
                "%s barrier: core slot %d released from episode %d before slot %d arrived \
                 (at %d)"
                (kind_name kind) self ep j arrived)))
    progress

let spawn_central m ~cores ~episodes ~work ~progress =
  let n = List.length cores in
  let ctr = Machine.alloc_line m in
  let sense = Machine.alloc_line m in
  List.iteri
    (fun idx core ->
      Machine.spawn m ~core (fun c ->
          for ep = 1 to episodes do
            Core.compute c work;
            progress.(idx) <- ep;
            let prev = Core.await c (Core.fetch_add c ctr 1L) in
            if Int64.to_int prev = (ep * n) - 1 then begin
              (* Last arriver releases everyone: order the arrival rmw
                 before the sense publication. *)
              Core.barrier c (Barrier.Dmb St);
              Core.store c sense (Int64.of_int ep)
            end
            else begin
              ignore (Core.spin_until c sense (fun v -> Int64.to_int v >= ep));
              Core.barrier c (Barrier.Dmb Ld)
            end;
            check_progress ~kind:Central ~progress ~self:idx ~ep
          done))
    cores

(* Combining tree: groups of [arity] cores share a leaf counter; the
   last arriver at each node climbs to the parent; whoever completes
   the root publishes the episode on the (single, machine-wide) sense
   line.  Arrival traffic is spread over ~n/arity lines; the release is
   one store whose invalidation fans out to every spinning sharer —
   which is exactly the wide-sharer-set path the directory must walk in
   word steps, not per-core. *)
type tree_node = { addr : int; width : int; parent : int (* -1 at root *) }

let build_tree m ~arity ~leaves =
  let group count = (count + arity - 1) / arity in
  let nodes = ref [] and total = ref 0 in
  (* level widths: leaves is the number of participants *)
  let rec level ~count ~parent_base_hint:_ =
    let n_nodes = group count in
    let base = !total in
    total := !total + n_nodes;
    let widths =
      List.init n_nodes (fun i ->
          let lo = i * arity in
          min arity (count - lo))
    in
    nodes := (base, widths) :: !nodes;
    if n_nodes > 1 then level ~count:n_nodes ~parent_base_hint:()
  in
  level ~count:leaves ~parent_base_hint:();
  let levels = List.rev !nodes in
  let arr = Array.make !total { addr = 0; width = 0; parent = -1 } in
  List.iteri
    (fun li (base, widths) ->
      let parent_base =
        match List.nth_opt levels (li + 1) with Some (b, _) -> b | None -> -1
      in
      List.iteri
        (fun i width ->
          let parent = if parent_base < 0 then -1 else parent_base + (i / arity) in
          arr.(base + i) <- { addr = Machine.alloc_line m; width; parent })
        widths)
    levels;
  arr

let spawn_tree m ~arity ~cores ~episodes ~work ~progress =
  if arity < 2 then invalid_arg "Sync_barrier: tree arity must be >= 2";
  let n = List.length cores in
  let nodes = build_tree m ~arity ~leaves:n in
  let sense = Machine.alloc_line m in
  let kind = Tree arity in
  List.iteri
    (fun idx core ->
      Machine.spawn m ~core (fun c ->
          let rec climb ep node =
            let prev = Core.await c (Core.fetch_add c nodes.(node).addr 1L) in
            if Int64.to_int prev = (ep * nodes.(node).width) - 1 then
              if nodes.(node).parent >= 0 then climb ep nodes.(node).parent
              else begin
                Core.barrier c (Barrier.Dmb St);
                Core.store c sense (Int64.of_int ep);
                true
              end
            else false
          in
          for ep = 1 to episodes do
            Core.compute c work;
            progress.(idx) <- ep;
            if not (climb ep (idx / arity)) then begin
              ignore (Core.spin_until c sense (fun v -> Int64.to_int v >= ep));
              Core.barrier c (Barrier.Dmb Ld)
            end;
            check_progress ~kind ~progress ~self:idx ~ep
          done))
    cores

(* Dissemination: ceil(log2 n) rounds; in round r, slot i signals slot
   (i + 2^r) mod n on a dedicated flag line and waits for its own flag.
   No read-modify-writes and no hot line at all — O(n log n) stores per
   episode over distinct lines, each with a single-sharer invalidation.
   Signals carry the episode number, so flags are sense-free and
   monotone like the counters above. *)
let spawn_dissemination m ~cores ~episodes ~work ~progress =
  let n = List.length cores in
  let rounds =
    let r = ref 0 in
    while 1 lsl !r < n do
      incr r
    done;
    !r
  in
  let flags = Machine.alloc_lines m (max 1 (rounds * n)) in
  let flag r i = flags + (((r * n) + i) * 64) in
  List.iteri
    (fun idx core ->
      Machine.spawn m ~core (fun c ->
          for ep = 1 to episodes do
            Core.compute c work;
            progress.(idx) <- ep;
            for r = 0 to rounds - 1 do
              let peer = (idx + (1 lsl r)) mod n in
              (* order prior work and the previous round before the signal *)
              Core.barrier c (Barrier.Dmb St);
              Core.store c (flag r peer) (Int64.of_int ep);
              ignore (Core.spin_until c (flag r idx) (fun v -> Int64.to_int v >= ep))
            done;
            Core.barrier c (Barrier.Dmb Ld);
            check_progress ~kind:Dissemination ~progress ~self:idx ~ep
          done))
    cores

let run spec =
  let n = List.length spec.cores in
  if n = 0 then invalid_arg "Sync_barrier.run: no cores";
  if spec.episodes <= 0 then invalid_arg "Sync_barrier.run: episodes must be positive";
  if spec.work < 0 then invalid_arg "Sync_barrier.run: negative work";
  let m = Machine.create spec.cfg in
  let progress = Array.make n 0 in
  (match spec.kind with
  | Central -> spawn_central m ~cores:spec.cores ~episodes:spec.episodes ~work:spec.work ~progress
  | Tree arity ->
    spawn_tree m ~arity ~cores:spec.cores ~episodes:spec.episodes ~work:spec.work ~progress
  | Dissemination ->
    spawn_dissemination m ~cores:spec.cores ~episodes:spec.episodes ~work:spec.work ~progress);
  Machine.run_exn m;
  Array.iteri
    (fun j arrived ->
      if arrived <> spec.episodes then
        raise
          (Machine.Simulation_error
             (Printf.sprintf "%s barrier: slot %d finished %d of %d episodes"
                (kind_name spec.kind) j arrived spec.episodes)))
    progress;
  let cycles = Machine.elapsed m in
  {
    cycles;
    episodes = spec.episodes;
    cycles_per_episode = float_of_int cycles /. float_of_int spec.episodes;
    events = Event_queue.processed (Machine.queue m);
    counters = Armb_mem.Memsys.counters (Machine.mem m);
  }
