(** Barrier-synchronization primitives for the many-core crossover
    study (ROADMAP item 3).

    Three classic shapes, all sense-reversing with {e monotone} episode
    counters (no counter resets, so there is no reset/arrival race under
    the weak-memory model):

    - {b Central}: one fetch-add counter, one sense line.  O(n)
      serialized rmws per episode on a single hot line, plus one release
      store whose invalidation fans out to every spinner — the
      quadratic-ish pattern that melts past a few dozen cores.
    - {b Tree}: combining tree of the given arity; arrival rmws spread
      over ~n/arity lines, the root publishes the sense.  O(n) rmws but
      only O(arity) contention per line and O(log n) depth on the
      critical path.
    - {b Dissemination}: ceil(log2 n) rounds of point-to-point flag
      stores; no rmws, no hot line, latency O(log n) independent of
      arrival order.

    Each simulated core runs [episodes] iterations of [work] ALU cycles
    followed by the barrier.  Every episode is validated host-side (a
    release that precedes some peer's arrival raises
    [Machine.Simulation_error]), so a broken protocol fails loudly
    rather than producing a fast-but-wrong number. *)

type kind = Central | Tree of int  (** arity, >= 2 *) | Dissemination

val kind_name : kind -> string
(** ["central"], ["tree<arity>"], ["dissemination"]. *)

type spec = {
  cfg : Armb_cpu.Config.t;
  kind : kind;
  cores : int list;  (** participating cores, one simulated thread each *)
  episodes : int;  (** barrier episodes to run, >= 1 *)
  work : int;  (** ALU cycles of per-core work between barriers, >= 0 *)
}

val default_spec : Armb_cpu.Config.t -> kind:kind -> spec
(** All cores of the platform, 4 episodes, 64 cycles of work. *)

type result = {
  cycles : int;  (** makespan *)
  episodes : int;
  cycles_per_episode : float;
  events : int;  (** simulator events processed — the [armb perf] metric *)
  counters : Armb_mem.Memsys.counters;
}

val run : spec -> result
(** Raises [Invalid_argument] on an empty core list, non-positive
    [episodes], negative [work] or tree arity < 2;
    [Machine.Simulation_error] if synchronization is violated. *)
