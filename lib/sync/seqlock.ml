module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine

(* Simulator instance of the shared seqlock protocol body
   (Armb_primitives.Seqlock_proto): words are simulated addresses, the
   phases are separated by DMB st / DMB ld (togglable, so the protocol
   can be run deliberately unprotected), a waiting reader parks on the
   sequence line's watch list, and every wait/retry is counted. *)
module Substrate = struct
  type ctx = { core : Core.t; protected : bool; retries : int ref }
  type loc = int
  type value = int64

  let succ = Int64.add 1L
  let equal = Int64.equal
  let odd v = Int64.rem v 2L = 1L
  let read ctx a = Core.await ctx.core (Core.load ctx.core a)
  let write ctx a v = Core.store ctx.core a v

  (* issue all payload loads, then await: they may overlap *)
  let read_payload ctx cells =
    let toks = Array.map (fun a -> Core.load ctx.core a) cells in
    Array.map (fun tok -> Core.await ctx.core tok) toks

  let write_payload ctx cells payload =
    Array.iteri (fun i v -> Core.store ctx.core cells.(i) v) payload

  let st_fence ctx = if ctx.protected then Core.barrier ctx.core (Barrier.Dmb St)
  let ld_fence ctx = if ctx.protected then Core.barrier ctx.core (Barrier.Dmb Ld)
  let enter_fence = st_fence
  let exit_fence = st_fence
  let pre_read_fence = ld_fence
  let post_read_fence = ld_fence

  let wait_writer ctx a s1 =
    incr ctx.retries;
    ignore (Core.spin_until ctx.core a (fun v -> not (Int64.equal v s1)))

  let on_retry ctx = incr ctx.retries
end

module Proto = Armb_primitives.Seqlock_proto.Make (Substrate)

type t = {
  lock : Proto.t;
  words : int;
  retry_count : int ref;
}

let create m ~words =
  if words < 2 || words > 8 then invalid_arg "Seqlock.create: words must be in 2..8";
  (* one line per field: a realistic multi-line payload, whose partial
     visibility is exactly what the protocol must guard against *)
  let seq = Machine.alloc_line m in
  let data = Machine.alloc_lines m words in
  {
    lock = { Proto.seq; cells = Array.init words (fun i -> data + (i * 64)) };
    words;
    retry_count = ref 0;
  }

(* Payloads carry their own checksum in the last word so tearing is
   detectable by tests. *)
let checksum fields =
  let n = Array.length fields in
  let acc = ref 0L in
  for i = 0 to n - 2 do
    acc := Int64.add (Int64.mul !acc 31L) fields.(i)
  done;
  !acc

let make_payload t ~version =
  let p = Array.init t.words (fun i -> Int64.of_int ((version * 1000) + i)) in
  p.(t.words - 1) <- checksum p;
  p

let torn t snapshot =
  Array.length snapshot <> t.words
  || not (Int64.equal snapshot.(t.words - 1) (checksum snapshot))

let write ?(protected = true) t (c : Core.t) payload =
  Proto.write t.lock { core = c; protected; retries = t.retry_count } payload

let read ?(protected = true) t (c : Core.t) =
  Proto.read t.lock { core = c; protected; retries = t.retry_count }

let retries t = !(t.retry_count)

let data_addr t i =
  if i < 0 || i >= t.words then invalid_arg "Seqlock.data_addr";
  t.lock.Proto.cells.(i)
