(** Single-producer single-consumer ring buffer on the simulator —
    the paper's Algorithm 2, with the two producer-side barriers
    pluggable (§4.1/§4.2, Figure 6(a)).

    The producer checks buffer availability (shared [consCnt]), then
    - [avail] barrier (Algorithm 2 line 3): orders the availability
      load before the buffer fill;
    - fills the slot (the store that is typically a remote memory
      reference);
    - [publish] barrier (line 5): orders the fill before the counter
      store that informs the consumer — the {e fatal} barrier strictly
      following an RMR;
    - bumps [prodCnt].

    The consumer spins on [prodCnt], optionally guards the message load
    with [DMB ld], reads the slot and bumps [consCnt]. *)

type barriers = {
  avail : Armb_core.Ordering.t;  (** line-3 choice: DMB full / DMB ld / LDAR / none *)
  publish : Armb_core.Ordering.t;  (** line-5 choice: DMB full / DMB st / STLR / none *)
  consumer_guard : bool;  (** apply DMB ld between flag spin and data load *)
}

val combo : string -> barriers
(** Figure 6(a) legend names: ["DMB full - DMB full"],
    ["DMB full - DMB st"], ["DMB ld - DMB st"], ["LDAR - DMB st"],
    ["DMB full - STLR"], ["DMB ld - No Barrier"], ["Ideal"].
    Raises [Invalid_argument] on unknown names. *)

val combo_names : string list
(** The legend, in the paper's order. *)

type spec = {
  cfg : Armb_cpu.Config.t;
  producer_core : int;
  consumer_core : int;
  slots : int;
  messages : int;
  produce_nops : int;  (** cost of [produceMsg()] *)
  consume_nops : int;
  barriers : barriers;
  fault : Armb_fault.Plan.spec option;
      (** optional fault-injection plan armed on the run's machine
          (degradation studies); [None] is the exact unfaulted kernel *)
}

val default_spec : Armb_cpu.Config.t -> cores:int * int -> spec
(** 16 slots, 4000 messages, 60-nop production, 10-nop consumption,
    best-legal barriers (DMB ld - DMB st). *)

type result = {
  throughput : float;  (** messages per second *)
  cycles : int;
  lines_touched : Armb_mem.Memsys.counters;
}

val run : spec -> result

val verified_run : spec -> result
(** Like {!run} but additionally has the consumer check every received
    payload; raises [Failure] on corruption.  (With [Ideal] barriers
    the check is skipped — removing all barriers is unsound by design
    and serves only as a performance reference.) *)
