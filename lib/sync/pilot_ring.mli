(** The SPSC ring with Pilot applied (§4.3-§4.5): the producer
    piggybacks arrival detection on the message itself through the
    {!Armb_core.Pilot} codec, eliminating both the fatal publish barrier
    and the [prodCnt] line — the consumer detects a slot's change
    directly.  The availability barrier (Algorithm 2 line 3) is kept,
    as the paper requires.

    Each slot carries the data word and the fallback flag word in the
    same cache line, so a delivery touches exactly one shared line plus
    the consumer counter.

    [run_batched] generalizes to messages of [words] x 8 bytes
    (Figure 6(c)): Pilot is applied to every 64-bit slice; the baseline
    comparator stores the words then publishes with one DMB st. *)

type spec = {
  cfg : Armb_cpu.Config.t;
  producer_core : int;
  consumer_core : int;
  slots : int;
  messages : int;
  produce_nops : int;
  consume_nops : int;
  fault : Armb_fault.Plan.spec option;
      (** optional fault-injection plan armed on the run's machine
          (degradation studies); [None] is the exact unfaulted kernel *)
}

val default_spec : Armb_cpu.Config.t -> cores:int * int -> spec
(** Mirrors {!Spsc_ring.default_spec} so results are comparable. *)

type result = {
  throughput : float;  (** messages per second *)
  cycles : int;
  fallbacks : int;  (** deliveries that used the flag-toggle path *)
  lines_touched : Armb_mem.Memsys.counters;
}

val run : ?seed:int -> ?check:bool -> spec -> result
(** Pilot ring; [check] (default true) verifies every payload. *)

val run_batched : ?seed:int -> ?check:bool -> words:int -> spec -> result
(** Pilot on every 8-byte slice of a [words]-slice message. *)

val run_batched_baseline : ?check:bool -> words:int -> spec -> result
(** Best-legal original ring (DMB ld - DMB st) carrying [words]-slice
    messages, for the Figure 6(c) speedup ratio. *)
