module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Ordering = Armb_core.Ordering

(* next-ticket and now-serving words share the lock's cache line, as in
   compact kernel ticket locks. *)
type t = { next_addr : int; serving_addr : int }

(* Simulator instance of the shared ticket-lock protocol body
   (Armb_primitives.Ticket_proto): the ticket comes from an acquire RMW,
   a waiter parks on the serving word's watch list, the successful spin
   read gets acquire semantics from DMB ld, and the release-side
   ordering is chosen per call — the lock's experiment axis. *)
module Substrate = struct
  type ctx = { core : Core.t; release_barrier : Ordering.t }
  type lock = t
  type value = int64

  let succ = Int64.add 1L
  let equal = Int64.equal
  let take_ticket ctx l = Core.await ctx.core (Core.fetch_add ~acq:true ctx.core l.next_addr 1L)
  let read_serving ctx l = Core.await ctx.core (Core.load ctx.core l.serving_addr)
  let wait_serving ctx l my = ignore (Core.spin_until ctx.core l.serving_addr (Int64.equal my))

  (* Acquire semantics for the successful spin read. *)
  let acquired_fence ctx = Core.barrier ctx.core (Barrier.Dmb Ld)

  let publish_serving ctx l v =
    match ctx.release_barrier with
    | Ordering.No_barrier -> Core.store ctx.core l.serving_addr v
    | Ordering.Stlr_release -> Core.stlr ctx.core l.serving_addr v
    | Ordering.Bar b ->
      Core.barrier ctx.core b;
      Core.store ctx.core l.serving_addr v
    | other ->
      invalid_arg ("Ticket_lock.release: unsupported barrier " ^ Ordering.to_string other)
end

module Proto = Armb_primitives.Ticket_proto.Make (Substrate)

let create m =
  let base = Machine.alloc_line m in
  { next_addr = base; serving_addr = base + 8 }

let acquire t (c : Core.t) =
  Proto.acquire { core = c; release_barrier = Ordering.No_barrier } t

let release ?(barrier = Ordering.Bar (Barrier.Dmb Full)) t (c : Core.t) =
  Proto.release { core = c; release_barrier = barrier } t

let has_waiters t (c : Core.t) =
  let next = Core.await c (Core.load c t.next_addr) in
  let serving = Core.await c (Core.load c t.serving_addr) in
  Int64.compare next (Int64.add serving 1L) > 0

type spec = {
  cfg : Armb_cpu.Config.t;
  cores : int list;
  acquisitions : int;
  cs_lines : int;
  interval_nops : int;
  release_barrier : Ordering.t;
}

let default_spec cfg ~cores =
  {
    cfg;
    cores;
    acquisitions = 300;
    cs_lines = 1;
    interval_nops = 300;
    release_barrier = Ordering.Bar (Barrier.Dmb Full);
  }

type result = { throughput : float; cycles : int }

let run spec =
  if spec.cores = [] then invalid_arg "Ticket_lock.run: no cores";
  let m = Machine.create spec.cfg in
  let lock = create m in
  let shared = Machine.alloc_lines m (max 1 spec.cs_lines) in
  (* Host-side mutual-exclusion oracle. *)
  let owner = ref None in
  let total = List.length spec.cores * spec.acquisitions in
  let body (c : Core.t) =
    for _ = 1 to spec.acquisitions do
      acquire lock c;
      (match !owner with
      | Some o ->
        failwith
          (Printf.sprintf "Ticket_lock: mutual exclusion violated (%d and %d inside)" o
             (Core.id c))
      | None -> owner := Some (Core.id c));
      (* Read-modify a configurable number of global lines. *)
      for k = 0 to spec.cs_lines - 1 do
        let a = shared + (k * 64) in
        let v = Core.await c (Core.load c a) in
        Core.store c a (Int64.add v 1L)
      done;
      Core.compute c 2;
      owner := None;
      release ~barrier:spec.release_barrier lock c;
      Core.compute c spec.interval_nops
    done
  in
  List.iter (fun core -> Machine.spawn m ~core body) spec.cores;
  Machine.run_exn m;
  { throughput = Machine.throughput m ~ops:total; cycles = Machine.elapsed m }
