module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Pilot = Armb_core.Pilot

type critical = Core.t -> client:int -> int64 -> int64

(* Node layout (one cache line each):
     +0   release word.  Normal mode: 0 while waiting, 1 when released.
          Pilot mode: the Pilot channel word carrying the packed
          payload below.
     +8   pilot fallback flag word
     +16  request argument
     +24  next-node address (0 = not yet linked)
     +32  return value (normal mode)
     +40  completed flag (normal mode; 0 = combiner handoff)
   A node's request is valid once its next pointer is non-zero: the
   announcer writes req, a DMB st, then next.

   Release payloads use the shared delegation encoding
   (Armb_primitives.Delegation): (ret << 2) | (completed ? 3 : 1). *)

module Delegation = Armb_primitives.Delegation.Over_int64

let pack = Delegation.pack

let unpack = Delegation.unpack

type t = {
  parties : int;
  pilot : bool;
  combine_bound : int;
  critical : critical;
  tail : int;
  node_index : (int, int) Hashtbl.t;
  senders : Pilot.sender array;
  receivers : Pilot.receiver array;
  spare : int array; (* per party: node to donate next *)
  mutable combine_count : int;
  mutable fallback_count : int;
}

let create m ~parties ?(pilot = false) ?(combine_bound = 64) ~critical () =
  if parties <= 0 then invalid_arg "Dsmsynch.create: no parties";
  if combine_bound < 1 then invalid_arg "Dsmsynch.create: combine_bound < 1";
  let tail = Machine.alloc_line m in
  let node_index = Hashtbl.create 32 in
  let nodes =
    Array.init (parties + 1) (fun i ->
        let a = Machine.alloc_line m in
        Hashtbl.replace node_index a i;
        a)
  in
  let boot = nodes.(parties) in
  let pool = Pilot.make_pool ~seed:13 () in
  let senders = Array.map (fun _ -> Pilot.sender pool) nodes in
  let receivers = Array.map (fun _ -> Pilot.receiver pool) nodes in
  let mem = Machine.mem m in
  (* Seed: tail -> boot, already released as "you are the combiner". *)
  Armb_mem.Memsys.commit_store mem ~addr:tail (Int64.of_int boot);
  (if pilot then
     match Pilot.encode senders.(parties) (pack ~ret:0L ~completed:false) with
     | Pilot.Write_data v -> Armb_mem.Memsys.commit_store mem ~addr:boot v
     | Pilot.Toggle_flag -> assert false
   else
     (* released as combiner handoff: wait=1, completed word stays 0 *)
     Armb_mem.Memsys.commit_store mem ~addr:boot 1L);
  {
    parties;
    pilot;
    combine_bound;
    critical;
    tail;
    node_index;
    senders;
    receivers;
    spare = Array.init parties (fun i -> nodes.(i));
    combine_count = 0;
    fallback_count = 0;
  }

let combines t = t.combine_count

let fallbacks t = t.fallback_count

let release_node t (c : Core.t) node ~ret ~completed =
  if t.pilot then begin
    (* Algorithm 6: one single-copy-atomic store carries both the
       return value and the completed/handoff bit — no barrier after
       the RMR. *)
    match Pilot.encode t.senders.(Hashtbl.find t.node_index node) (pack ~ret ~completed) with
    | Pilot.Write_data v -> Core.store c node v
    | Pilot.Toggle_flag ->
      t.fallback_count <- t.fallback_count + 1;
      let fa = node + 8 in
      let cur = Core.await c (Core.load c fa) in
      Core.store c fa (Int64.logxor cur 1L)
  end
  else begin
    (* Real DSM-Synch: store the return value into the waiter's node
       (a remote memory reference), then a barrier strictly after it,
       then flip the wait word — the paper's fatal pattern. *)
    Core.store c (node + 32) ret;
    Core.store c (node + 40) (if completed then 1L else 0L);
    Core.barrier c (Barrier.Dmb St);
    Core.store c node 1L
  end

let await_release t (c : Core.t) node =
  if t.pilot then
    unpack
      (Core.spin_poll c node (fun () ->
           let d = Core.await c (Core.load c node) in
           let f = Core.await c (Core.load c (node + 8)) in
           Pilot.try_decode t.receivers.(Hashtbl.find t.node_index node) ~data:d ~flag:f))
  else begin
    ignore (Core.spin_until c node (fun v -> Int64.equal v 1L));
    Core.barrier c (Barrier.Dmb Ld);
    let ret = Core.await c (Core.load c (node + 32)) in
    let completed = Core.await c (Core.load c (node + 40)) in
    (ret, Int64.equal completed 1L)
  end

let exec t (c : Core.t) ~me arg =
  if me < 0 || me >= t.parties then invalid_arg "Dsmsynch.exec: bad party index";
  let fresh = t.spare.(me) in
  (* Reset the donated node.  The release word is only reset in normal
     mode: the Pilot codec detects changes, not values. *)
  Core.store c (fresh + 24) 0L;
  if not t.pilot then Core.store c fresh 0L;
  Core.barrier c (Barrier.Dmb St);
  let cur =
    Int64.to_int
      (Core.await c (Core.rmw ~acq:true ~rel:true c t.tail (fun _ -> Int64.of_int fresh)))
  in
  (* Announce: request, barrier, then link (next != 0 validates req). *)
  Core.store c (cur + 16) arg;
  Core.barrier c (Barrier.Dmb St);
  Core.store c (cur + 24) (Int64.of_int fresh);
  let ret0, completed = await_release t c cur in
  let ret =
    if completed then ret0
    else begin
      (* Combiner: serve the chain starting at our own node; a node may
         be served only once its next pointer is linked. *)
      let my_ret = ref 0L in
      let tmp = ref cur and budget = ref t.combine_bound and looping = ref true in
      while !looping do
        let nxt = Int64.to_int (Core.await c (Core.load c (!tmp + 24))) in
        if nxt = 0 || !budget = 0 then begin
          (* Hand the combiner role to this node's (future) owner. *)
          release_node t c !tmp ~ret:0L ~completed:false;
          looping := false
        end
        else begin
          let a = Core.await c (Core.load c (!tmp + 16)) in
          let r = t.critical c ~client:me a in
          decr budget;
          if !tmp = cur then my_ret := r
          else begin
            t.combine_count <- t.combine_count + 1;
            release_node t c !tmp ~ret:r ~completed:true
          end;
          tmp := nxt
        end
      done;
      !my_ret
    end
  in
  t.spare.(me) <- cur;
  ret

(* ---------- Figure 7 microbenchmark ---------- *)

type spec = {
  cfg : Armb_cpu.Config.t;
  cores : int list;
  rounds : int;
  interval_nops : int;
  combine_bound : int;
  pilot : bool;
}

let default_spec cfg ~cores =
  { cfg; cores; rounds = 200; interval_nops = 300; combine_bound = 64; pilot = false }

type result = { throughput : float; cycles : int; combines : int; fallbacks : int }

let run ?(check = true) spec =
  let n = List.length spec.cores in
  if n = 0 then invalid_arg "Dsmsynch.run: no cores";
  let m = Machine.create spec.cfg in
  let counter_line = Machine.alloc_line m in
  let count = ref 0 in
  let expected = Hashtbl.create 256 in
  let critical (c : Core.t) ~client:_ arg =
    let v = Core.await c (Core.load c counter_line) in
    Core.store c counter_line (Int64.add v 1L);
    Core.compute c 2;
    incr count;
    let r = Int64.add arg v in
    if check then Hashtbl.replace expected arg r;
    r
  in
  let t =
    create m ~parties:n ~pilot:spec.pilot ~combine_bound:spec.combine_bound ~critical ()
  in
  let thread idx (c : Core.t) =
    for round = 0 to spec.rounds - 1 do
      let arg = Int64.of_int (((idx + 1) * 1000000) + round) in
      let ret = exec t c ~me:idx arg in
      if check then begin
        match Hashtbl.find_opt expected arg with
        | Some r when Int64.equal r ret -> ()
        | Some r ->
          failwith
            (Printf.sprintf "Dsmsynch: thread %d round %d: ret %Ld, expected %Ld" idx round
               ret r)
        | None ->
          failwith
            (Printf.sprintf "Dsmsynch: thread %d round %d never executed" idx round)
      end;
      Core.compute c spec.interval_nops
    done
  in
  List.iteri (fun i core -> Machine.spawn m ~core (thread i)) spec.cores;
  Machine.run_exn m;
  if check && !count <> n * spec.rounds then
    failwith
      (Printf.sprintf "Dsmsynch: executed %d critical sections, expected %d" !count
         (n * spec.rounds));
  {
    throughput = Machine.throughput m ~ops:(n * spec.rounds);
    cycles = Machine.elapsed m;
    combines = combines t;
    fallbacks = fallbacks t;
  }
