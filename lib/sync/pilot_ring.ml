module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Pilot = Armb_core.Pilot

type spec = {
  cfg : Armb_cpu.Config.t;
  producer_core : int;
  consumer_core : int;
  slots : int;
  messages : int;
  produce_nops : int;
  consume_nops : int;
  fault : Armb_fault.Plan.spec option;
}

let default_spec cfg ~cores =
  let p, c = cores in
  {
    cfg;
    producer_core = p;
    consumer_core = c;
    slots = 32;
    messages = 4000;
    produce_nops = 20;
    consume_nops = 2;
    fault = None;
  }

type result = {
  throughput : float;
  cycles : int;
  fallbacks : int;
  lines_touched : Armb_mem.Memsys.counters;
}

let payload = Armb_primitives.Message.payload

(* Slot layout: data word at +0, fallback flag word at +8 — same cache
   line, so a delivery moves one line. *)
let data_addr buf slot = Armb_primitives.Message.lane_addr ~buf slot

let flag_addr buf slot = Armb_primitives.Message.lane_addr ~buf slot + 8

(* The producer still guards buffer reuse with the availability barrier
   (Algorithm 2 line 3 survives Pilot, §4.4). *)
let wait_free (c : Core.t) ~cons_cnt ~slots i =
  let avail v = Int64.to_int v > i - slots in
  let v = Core.await c (Core.load c cons_cnt) in
  if not (avail v) then ignore (Core.spin_until c cons_cnt avail);
  Core.barrier c (Barrier.Dmb Ld)

let producer spec ~cons_cnt ~buf ~senders ~fallbacks ~words ~msg_of (c : Core.t) =
  for i = 0 to spec.messages - 1 do
    wait_free c ~cons_cnt ~slots:spec.slots i;
    Core.compute c spec.produce_nops;
    let slot = i mod spec.slots in
    for w = 0 to words - 1 do
      (* one Pilot channel per 8-byte slice of the slot *)
      let chan = (slot * words) + w in
      match Pilot.encode senders.(chan) (msg_of i w) with
      | Pilot.Write_data v -> Core.store c (data_addr buf chan) v
      | Pilot.Toggle_flag ->
        incr fallbacks;
        let flag = flag_addr buf chan in
        let cur = Core.await c (Core.load c flag) in
        Core.store c flag (Int64.logxor cur 1L)
    done;
    Core.compute c 3
  done

(* Pilot's change detection makes speculative reads safe: a load issued
   before the producer writes the slot just observes the old value and
   decodes to "nothing new".  The consumer therefore keeps a small
   pipelined window of slot loads in flight, so back-to-back deliveries
   do not serialize on one miss latency per message. *)
let consumer spec ~cons_cnt ~buf ~receivers ~words ~msg_of ~check (c : Core.t) =
  let window = min spec.slots 4 in
  let toks : (Core.token * Core.token) Queue.t = Queue.create () in
  let next_issue = ref 0 in
  let issue_up_to target =
    while !next_issue < target && !next_issue < spec.messages * words do
      let chan_of k = (k / words mod spec.slots * words) + (k mod words) in
      let chan = chan_of !next_issue in
      Queue.push (Core.load c (data_addr buf chan), Core.load c (flag_addr buf chan)) toks;
      incr next_issue
    done
  in
  issue_up_to (window * words);
  for i = 0 to spec.messages - 1 do
    let slot = i mod spec.slots in
    for w = 0 to words - 1 do
      let chan = (slot * words) + w in
      let d_tok, f_tok = Queue.pop toks in
      let d = Core.await c d_tok and f = Core.await c f_tok in
      let v =
        match Pilot.try_decode receivers.(chan) ~data:d ~flag:f with
        | Some v -> v
        | None ->
          (* not arrived yet: fall back to watching the slot line *)
          let d_addr = data_addr buf chan and f_addr = flag_addr buf chan in
          Core.spin_poll c d_addr (fun () ->
              let d = Core.await c (Core.load c d_addr) in
              let f = Core.await c (Core.load c f_addr) in
              Pilot.try_decode receivers.(chan) ~data:d ~flag:f)
      in
      if check && not (Int64.equal v (msg_of i w)) then
        failwith
          (Printf.sprintf "Pilot_ring: message %d word %d corrupted: got %Ld, expected %Ld"
             i w v (msg_of i w))
    done;
    Core.compute c spec.consume_nops;
    Core.store c cons_cnt (Int64.of_int (i + 1));
    issue_up_to (((i + 1) * words) + (window * words))
  done

let run_words ?(seed = 7) ?(check = true) ~words spec =
  if words <= 0 || words > 8 then invalid_arg "Pilot_ring: words must be in 1..8";
  if spec.slots <= 0 || spec.messages <= 0 then invalid_arg "Pilot_ring: bad spec";
  let m = Machine.create ?fault:spec.fault spec.cfg in
  let cons_cnt = Machine.alloc_line m in
  (* one line per slice so each Pilot channel has its own line *)
  let buf = Machine.alloc_lines m (spec.slots * words) in
  let pool = Pilot.make_pool ~seed () in
  let channels = spec.slots * words in
  let senders = Array.init channels (fun _ -> Pilot.sender pool) in
  let receivers = Array.init channels (fun _ -> Pilot.receiver pool) in
  let fallbacks = ref 0 in
  let msg_of i w = Int64.add (payload i) (Int64.of_int w) in
  Machine.spawn m ~core:spec.producer_core
    (producer spec ~cons_cnt ~buf ~senders ~fallbacks ~words ~msg_of);
  Machine.spawn m ~core:spec.consumer_core
    (consumer spec ~cons_cnt ~buf ~receivers ~words ~msg_of ~check);
  Machine.run_exn m;
  {
    throughput = Machine.throughput m ~ops:spec.messages;
    cycles = Machine.elapsed m;
    fallbacks = !fallbacks;
    lines_touched = Armb_mem.Memsys.counters (Machine.mem m);
  }

let run ?seed ?check spec = run_words ?seed ?check ~words:1 spec

let run_batched ?seed ?check ~words spec = run_words ?seed ?check ~words spec

let run_batched_baseline ?(check = true) ~words spec =
  if words <= 0 || words > 8 then invalid_arg "Pilot_ring: words must be in 1..8";
  let m = Machine.create ?fault:spec.fault spec.cfg in
  let prod_cnt = Machine.alloc_line m in
  let cons_cnt = Machine.alloc_line m in
  let buf = Machine.alloc_lines m (spec.slots * words) in
  let msg_of i w = Int64.add (payload i) (Int64.of_int w) in
  let producer (c : Core.t) =
    for i = 0 to spec.messages - 1 do
      wait_free c ~cons_cnt ~slots:spec.slots i;
      Core.compute c spec.produce_nops;
      let slot = i mod spec.slots in
      for w = 0 to words - 1 do
        Core.store c (buf + (((slot * words) + w) * 64)) (msg_of i w)
      done;
      Core.barrier c (Barrier.Dmb St);
      Core.store c prod_cnt (Int64.of_int (i + 1));
      Core.compute c 3
    done
  in
  let consumer (c : Core.t) =
    for i = 0 to spec.messages - 1 do
      ignore (Core.spin_until c prod_cnt (fun v -> Int64.to_int v > i));
      Core.barrier c (Barrier.Dmb Ld);
      let slot = i mod spec.slots in
      (* issue all word loads, then await: misses pipeline, as in the
         Pilot consumer, so the comparison isolates the barriers *)
      let toks =
        List.init words (fun w -> (w, Core.load c (buf + (((slot * words) + w) * 64))))
      in
      List.iter
        (fun (w, tok) ->
          let v = Core.await c tok in
          if check && not (Int64.equal v (msg_of i w)) then
            failwith (Printf.sprintf "baseline ring: message %d word %d corrupted" i w))
        toks;
      Core.compute c spec.consume_nops;
      Core.store c cons_cnt (Int64.of_int (i + 1))
    done
  in
  Machine.spawn m ~core:spec.producer_core producer;
  Machine.spawn m ~core:spec.consumer_core consumer;
  Machine.run_exn m;
  {
    throughput = Machine.throughput m ~ops:spec.messages;
    cycles = Machine.elapsed m;
    fallbacks = 0;
    lines_touched = Armb_mem.Memsys.counters (Machine.mem m);
  }
