module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Ordering = Armb_core.Ordering

type barriers = { avail : Ordering.t; publish : Ordering.t; consumer_guard : bool }

let combo = function
  | "DMB full - DMB full" ->
    {
      avail = Ordering.Bar (Barrier.Dmb Full);
      publish = Ordering.Bar (Barrier.Dmb Full);
      consumer_guard = true;
    }
  | "DMB full - DMB st" ->
    {
      avail = Ordering.Bar (Barrier.Dmb Full);
      publish = Ordering.Bar (Barrier.Dmb St);
      consumer_guard = true;
    }
  | "DMB ld - DMB st" ->
    {
      avail = Ordering.Bar (Barrier.Dmb Ld);
      publish = Ordering.Bar (Barrier.Dmb St);
      consumer_guard = true;
    }
  | "LDAR - DMB st" ->
    {
      avail = Ordering.Ldar_acquire;
      publish = Ordering.Bar (Barrier.Dmb St);
      consumer_guard = true;
    }
  | "DMB full - STLR" ->
    {
      avail = Ordering.Bar (Barrier.Dmb Full);
      publish = Ordering.Stlr_release;
      consumer_guard = true;
    }
  | "DMB ld - No Barrier" ->
    {
      avail = Ordering.Bar (Barrier.Dmb Ld);
      publish = Ordering.No_barrier;
      consumer_guard = false;
    }
  | "Ideal" ->
    { avail = Ordering.No_barrier; publish = Ordering.No_barrier; consumer_guard = false }
  | s -> invalid_arg ("Spsc_ring.combo: unknown combination " ^ s)

let combo_names =
  [
    "DMB full - DMB full";
    "DMB full - DMB st";
    "DMB ld - DMB st";
    "LDAR - DMB st";
    "DMB full - STLR";
    "DMB ld - No Barrier";
    "Ideal";
  ]

type spec = {
  cfg : Armb_cpu.Config.t;
  producer_core : int;
  consumer_core : int;
  slots : int;
  messages : int;
  produce_nops : int;
  consume_nops : int;
  barriers : barriers;
  fault : Armb_fault.Plan.spec option;
}

let default_spec cfg ~cores =
  let p, c = cores in
  {
    cfg;
    producer_core = p;
    consumer_core = c;
    slots = 32;
    messages = 4000;
    produce_nops = 20;
    consume_nops = 2;
    barriers = combo "DMB ld - DMB st";
    fault = None;
  }

type result = {
  throughput : float;
  cycles : int;
  lines_touched : Armb_mem.Memsys.counters;
}

let payload = Armb_primitives.Message.payload

(* Apply the line-3 ordering right after the availability load. *)
let apply_avail (c : Core.t) approach ~cons_cnt =
  match approach with
  | Ordering.No_barrier -> ()
  | Ordering.Bar b -> Core.barrier c b
  | Ordering.Ldar_acquire ->
    (* Re-read the counter with acquire semantics (hits in L1). *)
    ignore (Core.await c (Core.ldar c cons_cnt))
  | other ->
    invalid_arg ("Spsc_ring: unsupported availability approach " ^ Ordering.to_string other)

let producer spec ~prod_cnt ~cons_cnt ~buf (c : Core.t) =
  for i = 0 to spec.messages - 1 do
    (* Algorithm 2 line 1-2: wait for a free slot. *)
    let avail v = Int64.to_int v > i - spec.slots in
    let ctok = Core.load c cons_cnt in
    let cval = Core.await c ctok in
    if not (avail cval) then ignore (Core.spin_until c cons_cnt avail);
    apply_avail c spec.barriers.avail ~cons_cnt;
    (* line 4: produce the message into the shared slot (usually an RMR). *)
    Core.compute c spec.produce_nops;
    let slot = Armb_primitives.Message.slot_addr ~buf ~slots:spec.slots i in
    (match spec.barriers.publish with
    | Ordering.Stlr_release ->
      Core.store c slot (payload i);
      (* inform the consumer with a store-release of the counter *)
      Core.stlr c prod_cnt (Int64.of_int (i + 1))
    | Ordering.No_barrier ->
      Core.store c slot (payload i);
      Core.store c prod_cnt (Int64.of_int (i + 1))
    | Ordering.Bar b ->
      Core.store c slot (payload i);
      Core.barrier c b;
      Core.store c prod_cnt (Int64.of_int (i + 1))
    | other ->
      invalid_arg ("Spsc_ring: unsupported publish approach " ^ Ordering.to_string other));
    Core.compute c 3
  done

(* The consumer drains every available message per counter observation
   (one guard barrier covers the batch, slot loads pipeline), so the
   producer is the bottleneck — the regime the paper's §4.1 sets up. *)
let consumer spec ~prod_cnt ~cons_cnt ~buf ~check (c : Core.t) =
  let consumed = ref 0 in
  while !consumed < spec.messages do
    let i = !consumed in
    let avail =
      Int64.to_int (Core.spin_until c prod_cnt (fun v -> Int64.to_int v > i))
    in
    if spec.barriers.consumer_guard then Core.barrier c (Barrier.Dmb Ld);
    let last = min avail spec.messages in
    (* issue all slot loads of the batch, then await them in order *)
    let toks =
      List.init (last - i) (fun k ->
          (i + k, Core.load c (Armb_primitives.Message.slot_addr ~buf ~slots:spec.slots (i + k))))
    in
    List.iter
      (fun (j, tok) ->
        let v = Core.await c tok in
        if check && not (Int64.equal v (payload j)) then
          failwith
            (Printf.sprintf "Spsc_ring: message %d corrupted: got %Ld, expected %Ld" j v
               (payload j));
        Core.compute c spec.consume_nops)
      toks;
    consumed := last;
    Core.store c cons_cnt (Int64.of_int last)
  done

let run_gen spec ~check =
  if spec.slots <= 0 || spec.messages <= 0 then invalid_arg "Spsc_ring: bad spec";
  let m = Machine.create ?fault:spec.fault spec.cfg in
  let prod_cnt = Machine.alloc_line m in
  let cons_cnt = Machine.alloc_line m in
  let buf = Machine.alloc_lines m spec.slots in
  Machine.spawn m ~core:spec.producer_core (producer spec ~prod_cnt ~cons_cnt ~buf);
  Machine.spawn m ~core:spec.consumer_core (consumer spec ~prod_cnt ~cons_cnt ~buf ~check);
  Machine.run_exn m;
  {
    throughput = Machine.throughput m ~ops:spec.messages;
    cycles = Machine.elapsed m;
    lines_touched = Armb_mem.Memsys.counters (Machine.mem m);
  }

let run spec = run_gen spec ~check:false

let verified_run spec =
  let sound = spec.barriers.publish <> Ordering.No_barrier in
  run_gen spec ~check:sound
