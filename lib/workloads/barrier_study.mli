(** The many-core barrier crossover study (ROADMAP item 3).

    Sweeps {!Armb_sync.Sync_barrier}'s three primitives over
    {!Armb_platform.Platform.manycore} machines of growing size and
    reports cycles per barrier episode, plus the {e crossover}: the
    smallest size at which the combining tree beats the central
    counter.  Centralized arrival serializes O(n) rmws on one line, so
    its episode cost grows linearly with a large constant (the line
    ping-pongs across clusters and nodes); the tree pays O(log n) depth
    with per-line contention capped at the arity, and dissemination
    pays O(log n) rounds of point-to-point flags with no rmws at all.

    Sizes must be valid manycore shapes (multiples of 8 within
    [Platform.manycore_min .. manycore_max] splitting into uniform
    nodes) — validated up front, before any simulation runs. *)

type cell = { cycles_per_episode : float; events : int }

type row = { cores : int; central : cell; tree : cell; dissemination : cell }

type t = {
  sizes : int list;
  episodes : int;
  work : int;
  arity : int;
  rows : row list;
  crossover : int option;
      (** smallest size where the tree's cycles-per-episode drops below
          the central counter's, if any in the sweep *)
}

val default_sizes : int list
(** [8; 16; 32; 64; 128; 256; 512]. *)

val run :
  ?sizes:int list ->
  ?episodes:int ->
  ?work:int ->
  ?arity:int ->
  ?progress:(int -> unit) ->
  unit ->
  t
(** Defaults: {!default_sizes}, 4 episodes, 64 work cycles, arity 4.
    [progress] is called with each size before it is simulated.  Raises
    [Invalid_argument] (with the {!Armb_platform.Platform.manycore_shape}
    message) on invalid sizes. *)

val pp : Format.formatter -> t -> unit
(** Cycles-per-episode table plus the crossover line. *)

val to_json : t -> string
(** Line-oriented JSON, same style as [Perf.to_json]. *)
