module P = Armb_platform.Platform
module B = Armb_sync.Sync_barrier

type cell = { cycles_per_episode : float; events : int }

type row = { cores : int; central : cell; tree : cell; dissemination : cell }

type t = {
  sizes : int list;
  episodes : int;
  work : int;
  arity : int;
  rows : row list;
  crossover : int option;
}

let default_sizes = [ 8; 16; 32; 64; 128; 256; 512 ]

let validate_sizes sizes =
  if sizes = [] then invalid_arg "Barrier_study: empty size list";
  List.iter
    (fun s ->
      match P.manycore_shape s with
      | Ok _ -> ()
      | Error m -> invalid_arg ("Barrier_study: " ^ m))
    sizes

let run ?(sizes = default_sizes) ?(episodes = 4) ?(work = 64) ?(arity = 4)
    ?(progress = fun _ -> ()) () =
  validate_sizes sizes;
  if episodes <= 0 then invalid_arg "Barrier_study: episodes must be positive";
  if work < 0 then invalid_arg "Barrier_study: negative work";
  if arity < 2 then invalid_arg "Barrier_study: tree arity must be >= 2";
  let rows =
    List.map
      (fun size ->
        progress size;
        let cfg = P.manycore ~cores:size in
        let cores = List.init size Fun.id in
        let measure kind =
          let r = B.run { cfg; kind; cores; episodes; work } in
          { cycles_per_episode = r.B.cycles_per_episode; events = r.B.events }
        in
        {
          cores = size;
          central = measure B.Central;
          tree = measure (B.Tree arity);
          dissemination = measure B.Dissemination;
        })
      sizes
  in
  let crossover =
    List.find_map
      (fun r ->
        if r.tree.cycles_per_episode < r.central.cycles_per_episode then Some r.cores
        else None)
      rows
  in
  { sizes; episodes; work; arity; rows; crossover }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>barrier crossover study (%d episodes, %d work cycles, tree arity %d)@,\
     cycles per episode:@,\
     %8s  %12s  %12s  %12s  %s@,"
    t.episodes t.work t.arity "cores" "central" "tree" "dissem" "winner";
  List.iter
    (fun r ->
      let winner =
        let best =
          List.fold_left min r.central.cycles_per_episode
            [ r.tree.cycles_per_episode; r.dissemination.cycles_per_episode ]
        in
        if best = r.central.cycles_per_episode then "central"
        else if best = r.tree.cycles_per_episode then B.kind_name (B.Tree t.arity)
        else "dissemination"
      in
      Format.fprintf ppf "%8d  %12.1f  %12.1f  %12.1f  %s@," r.cores
        r.central.cycles_per_episode r.tree.cycles_per_episode
        r.dissemination.cycles_per_episode winner)
    t.rows;
  (match t.crossover with
  | Some c ->
    Format.fprintf ppf "central -> tree%d crossover at %d cores@," t.arity c
  | None -> Format.fprintf ppf "no central -> tree%d crossover in this sweep@," t.arity);
  Format.fprintf ppf "@]"

(* Same line-oriented hand-rolled JSON style as Perf.to_json, so no JSON
   dependency is needed to consume it. *)
let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"armb-barrier-study-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"episodes\": %d,\n" t.episodes);
  Buffer.add_string b (Printf.sprintf "  \"work\": %d,\n" t.work);
  Buffer.add_string b (Printf.sprintf "  \"arity\": %d,\n" t.arity);
  Buffer.add_string b
    (Printf.sprintf "  \"crossover\": %s,\n"
       (match t.crossover with Some c -> string_of_int c | None -> "null"));
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b "    {\n";
      Buffer.add_string b (Printf.sprintf "      \"cores\": %d,\n" r.cores);
      Buffer.add_string b
        (Printf.sprintf "      \"central_cpe\": %.1f,\n" r.central.cycles_per_episode);
      Buffer.add_string b
        (Printf.sprintf "      \"tree_cpe\": %.1f,\n" r.tree.cycles_per_episode);
      Buffer.add_string b
        (Printf.sprintf "      \"dissemination_cpe\": %.1f,\n"
           r.dissemination.cycles_per_episode);
      Buffer.add_string b
        (Printf.sprintf "      \"events\": %d\n"
           (r.central.events + r.tree.events + r.dissemination.events));
      Buffer.add_string b (if i = List.length t.rows - 1 then "    }\n" else "    },\n"))
    t.rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
