(* 4-ary min-heap.  A wider node halves the tree depth, which is where
   the cycles go when hundreds of cores post events at the same
   timestamp: sift_down does one 4-way minimum per level instead of two
   comparisons, and the key array stays in cache.  Callers pack a total
   order into the integer key (the event queue packs (time, seq), so
   keys are unique) — any correct min-heap therefore pops the same
   sequence, and swapping the arity cannot change simulation results. *)

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable size : int;
}

let branch_log = 2
let branch = 1 lsl branch_log

let create ?(capacity = 64) () =
  { keys = Array.make (max 1 capacity) 0; vals = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h v =
  let cap = Array.length h.keys in
  let keys' = Array.make (2 * cap) 0 in
  Array.blit h.keys 0 keys' 0 h.size;
  h.keys <- keys';
  let vals' = Array.make (2 * cap) v in
  Array.blit h.vals 0 vals' 0 h.size;
  h.vals <- vals'

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) lsr branch_log in
    if h.keys.(i) < h.keys.(p) then begin
      let k = h.keys.(i) and v = h.vals.(i) in
      h.keys.(i) <- h.keys.(p);
      h.vals.(i) <- h.vals.(p);
      h.keys.(p) <- k;
      h.vals.(p) <- v;
      sift_up h p
    end
  end

let rec sift_down h i =
  let first = (i lsl branch_log) + 1 in
  if first < h.size then begin
    let last = min (first + branch - 1) (h.size - 1) in
    let smallest = ref i in
    for c = first to last do
      if h.keys.(c) < h.keys.(!smallest) then smallest := c
    done;
    if !smallest <> i then begin
      let s = !smallest in
      let k = h.keys.(i) and v = h.vals.(i) in
      h.keys.(i) <- h.keys.(s);
      h.vals.(i) <- h.vals.(s);
      h.keys.(s) <- k;
      h.vals.(s) <- v;
      sift_down h s
    end
  end

let add h ~key v =
  if h.size = 0 && Array.length h.vals = 0 then h.vals <- Array.make (Array.length h.keys) v;
  if h.size = Array.length h.keys then grow h v;
  h.keys.(h.size) <- key;
  h.vals.(h.size) <- v;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let k = h.keys.(0) and v = h.vals.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.keys.(0) <- h.keys.(h.size);
      h.vals.(0) <- h.vals.(h.size);
      sift_down h 0
    end;
    Some (k, v)
  end

let peek_key h = if h.size = 0 then None else Some h.keys.(0)

let min_key h =
  if h.size = 0 then invalid_arg "Heap.min_key: empty";
  h.keys.(0)

let pop_min_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_min_exn: empty";
  let v = h.vals.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.keys.(0) <- h.keys.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    sift_down h 0
  end;
  v

let clear h = h.size <- 0
