type time = int

(* Key packing: the heap key is [(time lsl seq_bits) lor seq], so a
   plain integer comparison orders events by time first and insertion
   order second.  Pops are therefore stable by construction — no batch
   staging or equal-time sort — and the payload is the bare closure.

   Budget: OCaml ints give 62 usable bits above the seq field, so with
   24 seq bits times up to 2^38 cycles pack losslessly, far beyond any
   simulated run.  When the per-queue sequence counter saturates we
   renumber the pending events (they keep their relative order and
   future events still sort after them), so the counter never limits
   queue lifetime. *)

let seq_bits = 24
let seq_mask = (1 lsl seq_bits) - 1

type t = {
  heap : (unit -> unit) Heap.t;
  mutable clock : time;
  mutable next_seq : int;
  mutable processed : int;
}

let create () = { heap = Heap.create (); clock = 0; next_seq = 0; processed = 0 }

let now t = t.clock

(* Compact the sequence space: pop every pending event in (time, seq)
   order and reinsert with seqs 0..n-1.  Relative order is preserved and
   reinsertion happens in ascending key order, so each add is O(1). *)
let renumber t =
  let n = Heap.length t.heap in
  if n > seq_mask then failwith "Event_queue: too many pending events";
  let keys = Array.make (max n 1) 0 in
  let fns = Array.make (max n 1) ignore in
  for i = 0 to n - 1 do
    let key = Heap.min_key t.heap in
    keys.(i) <- (key lsr seq_bits lsl seq_bits) lor i;
    fns.(i) <- Heap.pop_min_exn t.heap
  done;
  for i = 0 to n - 1 do
    Heap.add t.heap ~key:keys.(i) fns.(i)
  done;
  t.next_seq <- n

let schedule t ~at fn =
  let at = if at < t.clock then t.clock else at in
  if t.next_seq > seq_mask then renumber t;
  let key = (at lsl seq_bits) lor t.next_seq in
  t.next_seq <- t.next_seq + 1;
  Heap.add t.heap ~key fn

let schedule_in t ~delay fn = schedule t ~at:(t.clock + max 0 delay) fn

let run_next t =
  if Heap.is_empty t.heap then false
  else begin
    let time = Heap.min_key t.heap lsr seq_bits in
    let fn = Heap.pop_min_exn t.heap in
    if time > t.clock then t.clock <- time;
    t.processed <- t.processed + 1;
    fn ();
    true
  end

let run ?until ?max_events t =
  let budget_left () =
    match max_events with Some m -> t.processed < m | None -> true
  in
  (* Advance the clock to [until] when the run stops because the queue
     drained (or only holds later events) — time still passed even if
     nothing happened in it.  A [max_events] stop leaves the clock at
     the last processed event. *)
  let advance_to_until () =
    match until with Some u when u > t.clock -> t.clock <- u | _ -> ()
  in
  let rec loop () =
    if budget_left () then
      if Heap.is_empty t.heap then advance_to_until ()
      else begin
        let time = Heap.min_key t.heap lsr seq_bits in
        match until with
        | Some u when time > u -> advance_to_until ()
        | _ ->
          let fn = Heap.pop_min_exn t.heap in
          if time > t.clock then t.clock <- time;
          t.processed <- t.processed + 1;
          fn ();
          loop ()
      end
  in
  loop ()

let pending t = Heap.length t.heap

let processed t = t.processed
