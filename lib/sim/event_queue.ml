type time = int

(* Key packing: the heap key is [(time lsl seq_bits) lor seq], so a
   plain integer comparison orders events by time first and insertion
   order second.  Pops are therefore stable by construction — no batch
   staging or equal-time sort — and the payload is the bare closure.

   Budget: OCaml ints give 62 usable bits above the seq field, so with
   24 seq bits times up to 2^38 cycles pack losslessly, far beyond any
   simulated run.  When the per-queue sequence counter saturates we
   renumber the pending events (they keep their relative order and
   future events still sort after them), so the counter never limits
   queue lifetime.

   High fan-in fast path: events scheduled AT the current timestamp
   (thread launches, zero-delay wakeups, resumes that landed exactly on
   the clock) carry keys that are strictly larger than anything already
   pending at this instant and strictly smaller than any future-time
   key, and their keys arrive in increasing order — so they form a FIFO,
   not a heap problem.  They go into a ring buffer with O(1) push/pop
   instead of paying two O(log n) sifts each; with hundreds of cores
   posting at one timestamp this is the difference between linear and
   n-log-n behaviour at each barrier instant.  Dispatch always pops the
   smaller of (ring head, heap min), and since keys are unique and
   totally ordered the observable event sequence is identical to the
   pure-heap queue — the golden digests pin this. *)

let seq_bits = 24
let seq_mask = (1 lsl seq_bits) - 1

type t = {
  heap : (unit -> unit) Heap.t;
  mutable clock : time;
  mutable next_seq : int;
  mutable processed : int;
  (* ring of events scheduled at the current timestamp, FIFO by key *)
  mutable ikeys : int array;
  mutable ifns : (unit -> unit) array;
  mutable ihead : int;
  mutable icount : int;
}

let create () =
  {
    heap = Heap.create ();
    clock = 0;
    next_seq = 0;
    processed = 0;
    ikeys = Array.make 64 0;
    ifns = Array.make 64 ignore;
    ihead = 0;
    icount = 0;
  }

let now t = t.clock

(* ---------- immediate ring ---------- *)

let ring_grow t =
  let cap = Array.length t.ikeys in
  let ikeys = Array.make (2 * cap) 0 and ifns = Array.make (2 * cap) ignore in
  for i = 0 to t.icount - 1 do
    let j = (t.ihead + i) land (cap - 1) in
    ikeys.(i) <- t.ikeys.(j);
    ifns.(i) <- t.ifns.(j)
  done;
  t.ikeys <- ikeys;
  t.ifns <- ifns;
  t.ihead <- 0

let ring_push t key fn =
  if t.icount = Array.length t.ikeys then ring_grow t;
  let j = (t.ihead + t.icount) land (Array.length t.ikeys - 1) in
  t.ikeys.(j) <- key;
  t.ifns.(j) <- fn;
  t.icount <- t.icount + 1

let[@inline] ring_head_key t = t.ikeys.(t.ihead)

let ring_pop t =
  let fn = t.ifns.(t.ihead) in
  t.ifns.(t.ihead) <- ignore;
  t.ihead <- (t.ihead + 1) land (Array.length t.ikeys - 1);
  t.icount <- t.icount - 1;
  fn

(* Smallest pending key across ring and heap; [min_int] means empty.
   The ring is FIFO by construction, so its head is its minimum. *)
let next_key t =
  if t.icount = 0 then if Heap.is_empty t.heap then min_int else Heap.min_key t.heap
  else if Heap.is_empty t.heap then ring_head_key t
  else min (ring_head_key t) (Heap.min_key t.heap)

let pop_next t =
  if t.icount > 0 && (Heap.is_empty t.heap || ring_head_key t < Heap.min_key t.heap)
  then ring_pop t
  else Heap.pop_min_exn t.heap

(* Compact the sequence space: drain the ring into the heap, then pop
   every pending event in (time, seq) order and reinsert with seqs
   0..n-1.  Relative order is preserved and reinsertion happens in
   ascending key order, so each add is O(1). *)
let renumber t =
  while t.icount > 0 do
    let key = ring_head_key t in
    Heap.add t.heap ~key (ring_pop t)
  done;
  let n = Heap.length t.heap in
  if n > seq_mask then failwith "Event_queue: too many pending events";
  let keys = Array.make (max n 1) 0 in
  let fns = Array.make (max n 1) ignore in
  for i = 0 to n - 1 do
    let key = Heap.min_key t.heap in
    keys.(i) <- (key lsr seq_bits lsl seq_bits) lor i;
    fns.(i) <- Heap.pop_min_exn t.heap
  done;
  for i = 0 to n - 1 do
    Heap.add t.heap ~key:keys.(i) fns.(i)
  done;
  t.next_seq <- n

let schedule t ~at fn =
  let at = if at < t.clock then t.clock else at in
  if t.next_seq > seq_mask then renumber t;
  let key = (at lsl seq_bits) lor t.next_seq in
  t.next_seq <- t.next_seq + 1;
  if at = t.clock then ring_push t key fn else Heap.add t.heap ~key fn

let schedule_in t ~delay fn = schedule t ~at:(t.clock + max 0 delay) fn

let run_next t =
  let key = next_key t in
  if key = min_int then false
  else begin
    let time = key lsr seq_bits in
    let fn = pop_next t in
    if time > t.clock then t.clock <- time;
    t.processed <- t.processed + 1;
    fn ();
    true
  end

let run ?until ?max_events t =
  let budget_left () =
    match max_events with Some m -> t.processed < m | None -> true
  in
  (* Advance the clock to [until] when the run stops because the queue
     drained (or only holds later events) — time still passed even if
     nothing happened in it.  A [max_events] stop leaves the clock at
     the last processed event. *)
  let advance_to_until () =
    match until with Some u when u > t.clock -> t.clock <- u | _ -> ()
  in
  let rec loop () =
    if budget_left () then begin
      let key = next_key t in
      if key = min_int then advance_to_until ()
      else begin
        let time = key lsr seq_bits in
        match until with
        | Some u when time > u -> advance_to_until ()
        | _ ->
          let fn = pop_next t in
          if time > t.clock then t.clock <- time;
          t.processed <- t.processed + 1;
          fn ();
          loop ()
      end
    end
  in
  loop ()

let pending t = Heap.length t.heap + t.icount

let processed t = t.processed
