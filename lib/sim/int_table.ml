(* Open-addressed hash table specialised to non-negative int keys.

   The simulator's hot tables (address -> value, address -> line state,
   address -> forward entry) are all int-keyed, never delete, and sit on
   the per-memory-op path, where Stdlib.Hashtbl's bucket lists and boxed
   bindings dominate.  This table keeps keys in one flat int array
   (-1 = empty) with linear probing over a power-of-two capacity, and
   looks up with zero allocation. *)

type 'a t = {
  mutable keys : int array; (* -1 marks an empty slot *)
  mutable vals : 'a array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable count : int;
  dummy : 'a; (* fills unused value slots *)
}

let create ?(capacity = 16) dummy =
  let cap = ref 16 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    keys = Array.make !cap (-1);
    vals = Array.make !cap dummy;
    mask = !cap - 1;
    count = 0;
    dummy;
  }

let length t = t.count

(* Fibonacci-style multiplicative hash: cheap and well-spread for the
   mostly-sequential line addresses the simulator generates. *)
let[@inline] hash k mask =
  let h = k * 0x9E3779B9 in
  (h lxor (h lsr 16)) land mask

let rec probe keys mask k i =
  let key = Array.unsafe_get keys i in
  if key = k || key = -1 then i else probe keys mask k ((i + 1) land mask)

let[@inline] slot t k = probe t.keys t.mask k (hash k t.mask)

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap t.dummy;
  t.mask <- cap - 1;
  for i = 0 to Array.length old_keys - 1 do
    let k = Array.unsafe_get old_keys i in
    if k >= 0 then begin
      let j = slot t k in
      Array.unsafe_set t.keys j k;
      Array.unsafe_set t.vals j (Array.unsafe_get old_vals i)
    end
  done

let set t k v =
  if k < 0 then invalid_arg "Int_table.set: negative key";
  let i = slot t k in
  if Array.unsafe_get t.keys i = -1 then begin
    Array.unsafe_set t.keys i k;
    Array.unsafe_set t.vals i v;
    t.count <- t.count + 1;
    (* grow at 5/8 load to keep probe chains short *)
    if t.count * 8 > (t.mask + 1) * 5 then grow t
  end
  else Array.unsafe_set t.vals i v

let get t k ~default =
  if k < 0 then default
  else
    let i = slot t k in
    if Array.unsafe_get t.keys i = -1 then default else Array.unsafe_get t.vals i

let mem t k =
  k >= 0 && Array.unsafe_get t.keys (slot t k) <> -1

(* Find the value for [k], inserting [make k] first if absent.  The hot
   path (present) allocates nothing. *)
let find_or_add t k make =
  if k < 0 then invalid_arg "Int_table.find_or_add: negative key";
  let i = slot t k in
  if Array.unsafe_get t.keys i <> -1 then Array.unsafe_get t.vals i
  else begin
    let v = make k in
    (* [make] must not touch the table, so slot [i] is still free *)
    Array.unsafe_set t.keys i k;
    Array.unsafe_set t.vals i v;
    t.count <- t.count + 1;
    if t.count * 8 > (t.mask + 1) * 5 then grow t;
    v
  end

let iter t f =
  let keys = t.keys and vals = t.vals in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then f k (Array.unsafe_get vals i)
  done

let fold t f acc =
  let keys = t.keys and vals = t.vals in
  let acc = ref acc in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then acc := f k (Array.unsafe_get vals i) !acc
  done;
  !acc

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  Array.fill t.vals 0 (Array.length t.vals) t.dummy;
  t.count <- 0
