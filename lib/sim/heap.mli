(** Array-based 4-ary min-heap, specialised to integer keys.

    The simulation kernel orders events by (time, sequence) pairs; both
    are packed by the caller into a single comparison key plus payload.
    This heap is intentionally minimal and allocation-light: one growing
    array, no per-node boxing beyond the payload tuple. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key] (smaller pops first). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum (key, value), or [None] when empty. *)

val peek_key : 'a t -> int option
(** Key of the minimum element without removing it. *)

val min_key : 'a t -> int
(** Key of the minimum element, without the option box.  Raises
    [Invalid_argument] when empty — check [is_empty] first.  This is the
    hot-path variant of [peek_key]. *)

val pop_min_exn : 'a t -> 'a
(** Remove the minimum element and return its payload, without the
    tuple/option boxing of [pop].  Use [min_key] first if the key is
    needed.  Raises [Invalid_argument] when empty. *)

val clear : 'a t -> unit
