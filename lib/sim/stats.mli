(** Lightweight statistics for simulation measurements. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

type t
(** Streaming accumulator (Welford's algorithm). *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float

val stddev : t -> float

val summary : t -> summary

val pp_summary : Format.formatter -> summary -> unit

(** {2 Counters} *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

(** {2 Histogram with fixed-width buckets} *)

module Histogram : sig
  type t

  val create : bucket_width:int -> buckets:int -> t
  (** Values >= bucket_width*buckets land in the overflow bucket. *)

  val add : t -> int -> unit
  val total : t -> int
  val bucket_count : t -> int -> int

  (** [merge_into ~dst src] accumulates [src]'s samples into [dst]
      bucket-by-bucket (per-shard service metrics fold into one
      aggregate this way).  Raises [Invalid_argument] unless both
      histograms share bucket width and count. *)
  val merge_into : dst:t -> t -> unit
  val percentile : t -> float -> int
  (** [percentile h 0.99] returns an upper bound of the bucket containing
      the requested quantile; [percentile h 0.0] returns the lower bound
      of the first non-empty bucket.  A quantile landing in the overflow
      slot reports the largest sample recorded rather than a fictitious
      finite bucket edge. *)

  val pp : Format.formatter -> t -> unit
end

(** {2 Throughput helpers} *)

val throughput_per_sec : ops:int -> cycles:int -> freq_ghz:float -> float
(** Operations per wall-clock second given a cycle count at the platform
    frequency.  [cycles] = 0 yields 0. *)
