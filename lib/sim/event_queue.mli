(** Discrete-event scheduler core.

    Time is measured in integer processor cycles of the simulated
    machine.  Events scheduled at equal times fire in insertion order
    (FIFO tie-break), which keeps runs deterministic regardless of heap
    internals. *)

type time = int

type t

val create : unit -> t

val now : t -> time
(** Current simulation time: the timestamp of the event being processed
    (0 before the first event). *)

val schedule : t -> at:time -> (unit -> unit) -> unit
(** [schedule q ~at f] runs [f] when simulated time reaches [at].
    [at] is clamped to [now q] if it lies in the past, preserving the
    monotonic-clock invariant. *)

val schedule_in : t -> delay:int -> (unit -> unit) -> unit
(** [schedule_in q ~delay f] = [schedule q ~at:(now q + delay) f]. *)

val run_next : t -> bool
(** Process the single earliest event. Returns [false] when the queue is
    empty. *)

val run : ?until:time -> ?max_events:int -> t -> unit
(** Drain the queue.  [until] stops once [now] would exceed it, and the
    clock advances to [until] when the queue drains early — simulated
    time passes even when nothing is scheduled in it.  [max_events]
    bounds the number of processed events (guard against accidental
    livelock in tests); stopping on that bound leaves the clock at the
    last processed event. *)

val pending : t -> int
(** Number of events not yet fired. *)

val processed : t -> int
(** Total events fired since creation. *)
