type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n

let mean t = t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let summary t =
  {
    n = t.n;
    mean = t.mean;
    stddev = stddev t;
    min = (if t.n = 0 then 0.0 else t.min);
    max = (if t.n = 0 then 0.0 else t.max);
  }

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" s.n s.mean s.stddev s.min s.max

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let get t = t.v
  let reset t = t.v <- 0
end

module Histogram = struct
  type t = {
    width : int;
    shift : int; (* log2 width when width is a power of two, else -1 *)
    last : int; (* index of the overflow slot *)
    counts : int array; (* last slot is overflow *)
    mutable total : int;
    mutable max_sample : int; (* largest raw value, for the overflow slot *)
    mutable min_bucket : int; (* smallest non-empty bucket *)
  }

  let create ~bucket_width ~buckets =
    assert (bucket_width > 0 && buckets > 0);
    let shift =
      if bucket_width land (bucket_width - 1) = 0 then
        let rec lg i = if 1 lsl i = bucket_width then i else lg (i + 1) in
        lg 0
      else -1
    in
    {
      width = bucket_width;
      shift;
      last = buckets;
      counts = Array.make (buckets + 1) 0;
      total = 0;
      max_sample = 0;
      min_bucket = max_int;
    }

  let add t v =
    (* [asr] floors where [/] truncates toward zero, but negative inputs
       clamp to bucket 0 either way, so the shift path is equivalent *)
    let b = if t.shift >= 0 then v asr t.shift else v / t.width in
    let b = if b < 0 then 0 else if b > t.last then t.last else b in
    Array.unsafe_set t.counts b (Array.unsafe_get t.counts b + 1);
    t.total <- t.total + 1;
    if b < t.min_bucket then t.min_bucket <- b;
    if v > t.max_sample then t.max_sample <- v

  let total t = t.total

  let bucket_count t i = t.counts.(i)

  let merge_into ~dst src =
    if dst.width <> src.width || dst.last <> src.last then
      invalid_arg "Histogram.merge_into: shape mismatch";
    for i = 0 to src.last do
      dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
    done;
    dst.total <- dst.total + src.total;
    if src.max_sample > dst.max_sample then dst.max_sample <- src.max_sample;
    if src.min_bucket < dst.min_bucket then dst.min_bucket <- src.min_bucket

  let percentile t q =
    if t.total = 0 then 0
    else if q <= 0.0 then
      (* the tracked minimum non-empty bucket answers q = 0 directly *)
      if t.min_bucket >= t.last then t.max_sample else t.min_bucket * t.width
    else begin
      let n = Array.length t.counts in
      let target = max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
      let rec scan i acc =
        if i = n - 1 then
          (* the overflow slot has no finite upper bound; report the
             largest sample seen instead of a fictitious edge *)
          t.max_sample
        else
          let acc = acc + t.counts.(i) in
          if acc >= target then (i + 1) * t.width else scan (i + 1) acc
      in
      (* buckets below [min_bucket] are empty; skip them *)
      scan t.min_bucket 0
    end

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    let n = Array.length t.counts in
    Array.iteri
      (fun i c ->
        if c > 0 then
          if i = n - 1 then
            Format.fprintf ppf "[%6d..  +inf): %d (max %d)@," (i * t.width) c t.max_sample
          else
            Format.fprintf ppf "[%6d..%6d): %d@," (i * t.width) ((i + 1) * t.width) c)
      t.counts;
    Format.fprintf ppf "@]"
end

let throughput_per_sec ~ops ~cycles ~freq_ghz =
  if cycles <= 0 then 0.0
  else float_of_int ops /. (float_of_int cycles /. (freq_ghz *. 1e9))
