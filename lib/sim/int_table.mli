(** Open-addressed hash table for non-negative int keys.

    Built for the simulator's per-memory-op tables: no deletion, flat
    parallel key/value arrays, linear probing, and allocation-free
    lookups ([get] takes a [default] instead of returning an option).
    Keys must be [>= 0]; [-1] is the internal empty marker. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy] makes an empty table.  [dummy] fills unused value
    slots and is never observable through the API.  [capacity] is
    rounded up to a power of two (minimum 16). *)

val length : 'a t -> int

val set : 'a t -> int -> 'a -> unit
(** Insert or overwrite.  Raises [Invalid_argument] on a negative key. *)

val get : 'a t -> int -> default:'a -> 'a
(** [get t k ~default] is the bound value, or [default] when absent.
    Never allocates. *)

val mem : 'a t -> int -> bool

val find_or_add : 'a t -> int -> (int -> 'a) -> 'a
(** [find_or_add t k make] returns the bound value, inserting [make k]
    first when absent.  [make] must not touch the table.  The
    already-present path never allocates. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Iterate over bindings in unspecified (storage) order. *)

val fold : 'a t -> (int -> 'a -> 'b -> 'b) -> 'b -> 'b
(** Fold over bindings in unspecified (storage) order. *)

val clear : 'a t -> unit
