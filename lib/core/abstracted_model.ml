module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine

type mem_ops = No_mem | Store_store | Load_store | Load_load

type location = Loc1 | Loc2

type spec = {
  cfg : Armb_cpu.Config.t;
  cores : int * int;
  mem_ops : mem_ops;
  approach : Ordering.t;
  location : location;
  nops : int;
  iters : int;
  buffer_lines : int;
}

let default_spec cfg =
  {
    cfg;
    cores = (0, 1);
    mem_ops = Store_store;
    approach = Ordering.No_barrier;
    location = Loc1;
    nops = 100;
    iters = 2000;
    buffer_lines = 64;
  }

let label spec =
  let base = Ordering.to_string spec.approach in
  match spec.approach with
  | Ordering.Bar _ -> base ^ (match spec.location with Loc1 -> "-1" | Loc2 -> "-2")
  | _ -> base

let first_is_load spec =
  match spec.mem_ops with Load_store | Load_load -> true | No_mem | Store_store -> false

let second_is_store spec =
  match spec.mem_ops with Store_store | Load_store -> true | No_mem | Load_load -> false

let valid spec =
  spec.nops >= 0 && spec.iters > 0 && spec.buffer_lines > 0
  &&
  match spec.mem_ops with
  | No_mem -> ( match spec.approach with Ordering.No_barrier | Ordering.Bar _ -> true | _ -> false)
  | _ ->
    (not (Ordering.requires_leading_load spec.approach && not (first_is_load spec)))
    && not (Ordering.requires_trailing_store spec.approach && not (second_is_store spec))

(* One thread's loop body.  Both threads walk the same two line streams
   half a buffer apart, so each line a thread touches was last written
   by the other thread — every access around the barrier is a remote
   memory reference, as in the paper's harness, without the two threads
   colliding on the same line at the same instant. *)
let thread_body spec ~buf_a ~buf_b ~phase (c : Core.t) =
  let loop_overhead = 3 in
  (* add x0 / add x1 / add-cmp-branch of Algorithm 1 *)
  let n = spec.iters and lines = spec.buffer_lines in
  let offset = if phase = 0 then 0 else lines / 2 in
  for i = 0 to n - 1 do
    let slot = (i + offset) mod lines in
    let addr_a = buf_a + (slot * 64) and addr_b = buf_b + (slot * 64) in
    (match spec.mem_ops with
    | No_mem ->
      (* Barrier placed on the critical path between NOP batches. *)
      (match (spec.approach, spec.location) with
      | Ordering.Bar b, Loc1 -> Core.barrier c b
      | _ -> ());
      Core.compute c spec.nops;
      (match (spec.approach, spec.location) with
      | Ordering.Bar b, Loc2 -> Core.barrier c b
      | _ -> ())
    | Store_store -> (
      match spec.approach with
      | Ordering.Stlr_release ->
        Core.store c addr_a 1L;
        Core.compute c spec.nops;
        Core.stlr c addr_b 2L
      | Ordering.Bar b ->
        Core.store c addr_a 1L;
        if spec.location = Loc1 then Core.barrier c b;
        Core.compute c spec.nops;
        if spec.location = Loc2 then Core.barrier c b;
        Core.store c addr_b 2L
      | Ordering.No_barrier ->
        Core.store c addr_a 1L;
        Core.compute c spec.nops;
        Core.store c addr_b 2L
      | _ -> assert false)
    | Load_store -> (
      match spec.approach with
      | Ordering.No_barrier ->
        ignore (Core.load c addr_a);
        Core.compute c spec.nops;
        Core.store c addr_b 2L
      | Ordering.Bar b ->
        ignore (Core.load c addr_a);
        if spec.location = Loc1 then Core.barrier c b;
        Core.compute c spec.nops;
        if spec.location = Loc2 then Core.barrier c b;
        Core.store c addr_b 2L
      | Ordering.Ldar_acquire ->
        ignore (Core.ldar c addr_a);
        Core.compute c spec.nops;
        Core.store c addr_b 2L
      | Ordering.Stlr_release ->
        ignore (Core.load c addr_a);
        Core.compute c spec.nops;
        Core.stlr c addr_b 2L
      | Ordering.Data_dep ->
        (* NOPs are independent of the load; only the stored value is
           data-dependent (bogus xor), so they overlap the miss. *)
        let tok = Core.load c addr_a in
        Core.compute c spec.nops;
        let v = Core.await c tok in
        Core.compute c 1;
        Core.store c addr_b (Int64.logxor v v |> Int64.add 2L)
      | Ordering.Addr_dep ->
        let tok = Core.load c addr_a in
        Core.compute c spec.nops;
        let v = Core.await c tok in
        Core.compute c 1;
        let bogus = Int64.to_int (Int64.logxor v v) in
        Core.store c (addr_b + bogus) 2L
      | Ordering.Ctrl_dep ->
        let tok = Core.load c addr_a in
        Core.compute c spec.nops;
        let v = Core.await c tok in
        Core.compute c 1;
        if Int64.equal (Int64.logxor v v) 0L then Core.store c addr_b 2L
      | Ordering.Ctrl_isb ->
        let tok = Core.load c addr_a in
        Core.compute c spec.nops;
        let v = Core.await c tok in
        Core.compute c 1;
        if Int64.equal (Int64.logxor v v) 0L then begin
          Core.barrier c Barrier.Isb;
          Core.store c addr_b 2L
        end)
    | Load_load -> (
      match spec.approach with
      | Ordering.No_barrier ->
        ignore (Core.load c addr_a);
        Core.compute c spec.nops;
        ignore (Core.load c addr_b)
      | Ordering.Bar b ->
        ignore (Core.load c addr_a);
        if spec.location = Loc1 then Core.barrier c b;
        Core.compute c spec.nops;
        if spec.location = Loc2 then Core.barrier c b;
        ignore (Core.load c addr_b)
      | Ordering.Ldar_acquire ->
        ignore (Core.ldar c addr_a);
        Core.compute c spec.nops;
        ignore (Core.load c addr_b)
      | Ordering.Addr_dep ->
        let tok = Core.load c addr_a in
        Core.compute c spec.nops;
        let v = Core.await c tok in
        Core.compute c 1;
        let bogus = Int64.to_int (Int64.logxor v v) in
        ignore (Core.load c (addr_b + bogus))
      | Ordering.Ctrl_isb ->
        let tok = Core.load c addr_a in
        Core.compute c spec.nops;
        let v = Core.await c tok in
        Core.compute c 1;
        if Int64.equal (Int64.logxor v v) 0L then begin
          Core.barrier c Barrier.Isb;
          ignore (Core.load c addr_b)
        end
      | _ -> assert false));
    Core.compute c loop_overhead
  done

let run_machine spec =
  if not (valid spec) then
    invalid_arg
      (Printf.sprintf "Abstracted_model: invalid combination (%s)" (label spec));
  let m = Machine.create spec.cfg in
  let buf_a = Machine.alloc_lines m spec.buffer_lines in
  let buf_b = Machine.alloc_lines m spec.buffer_lines in
  let c0, c1 = spec.cores in
  Machine.spawn m ~core:c0 (thread_body spec ~buf_a ~buf_b ~phase:0);
  Machine.spawn m ~core:c1 (thread_body spec ~buf_a ~buf_b ~phase:1);
  Machine.run_exn m;
  m

let run_cycles spec = Machine.elapsed (run_machine spec)

let run_stats spec =
  let m = run_machine spec in
  (Machine.elapsed m, Armb_sim.Event_queue.processed (Machine.queue m))

let run spec =
  let m = run_machine spec in
  (* Per-thread loop throughput, as reported in the paper's figures. *)
  Armb_sim.Stats.throughput_per_sec ~ops:spec.iters ~cycles:(Machine.elapsed m)
    ~freq_ghz:spec.cfg.freq_ghz
