(** Order-preserving approaches compared throughout the paper:
    barrier instructions, the one-way LDAR/STLR pair, and bogus
    dependencies (§2.2). *)

type t =
  | No_barrier
  | Bar of Armb_cpu.Barrier.t
  | Ldar_acquire  (** turn the preceding load into a load-acquire *)
  | Stlr_release  (** turn the following store into a store-release *)
  | Data_dep  (** stored value depends on the loaded value *)
  | Addr_dep  (** following access' address depends on the loaded value *)
  | Ctrl_dep  (** conditional branch on the loaded value (orders load->store only) *)
  | Ctrl_isb  (** control dependency + ISB (orders load->load too) *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val named : (string * t) list
(** The stable machine-readable spellings ("dmb-st", "ldar",
    "ctrl-isb", ...) shared by the CLI's [--approach] enum and the
    service's JSON request codec. *)

val of_name : string -> t option
(** Case-insensitive lookup in {!named}. *)

val requires_leading_load : t -> bool
(** The approach only makes sense when the first of the two ordered
    accesses is a load. *)

val requires_trailing_store : t -> bool
(** The approach only makes sense when the second access is a store. *)

val orders_load_load : t -> bool
(** Architecturally sufficient to order a load before a later load. *)

val orders_load_store : t -> bool
val orders_store_store : t -> bool
val orders_store_load : t -> bool

val involves_bus : t -> bool
(** Whether the approach is (typically) implemented with an ACE barrier
    transaction — the axis of Observation 6. *)
