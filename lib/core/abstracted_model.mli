(** The paper's abstracted models (Algorithm 1): a loop of two memory
    operations to fresh cache lines with an order-preserving approach
    between them and a tunable batch of NOPs, executed by two threads on
    chosen cores so that the touched lines bounce between caches (making
    the accesses remote memory references).

    The three axes the paper varies are the constructor arguments:
    barrier occurrence frequency (via [nops]), the memory operations
    around the barrier (via [mem_ops]), and the choice of approach
    (via [approach] and [location]). *)

type mem_ops =
  | No_mem  (** Figure 2: barriers alone, no memory operations *)
  | Store_store  (** Figure 3: str / barrier / nops / str *)
  | Load_store  (** Figure 5: ldr / barrier / nops / str *)
  | Load_load  (** advisor validation: ldr / barrier / nops / ldr *)

type location =
  | Loc1  (** barrier strictly after the first access ("X-1") *)
  | Loc2  (** barrier after the NOPs, before the second access ("X-2") *)

type spec = {
  cfg : Armb_cpu.Config.t;
  cores : int * int;  (** where the two threads are bound *)
  mem_ops : mem_ops;
  approach : Ordering.t;
  location : location;
  nops : int;
  iters : int;  (** loop count per thread *)
  buffer_lines : int;  (** working-set size per access stream *)
}

val default_spec : Armb_cpu.Config.t -> spec
(** [Store_store], [No_barrier], [Loc1], 100 nops, cores (0,1),
    2000 iterations, 64-line streams. *)

val label : spec -> string
(** e.g. "DMB full-1", "STLR", "No Barrier" — the names used in the
    paper's figure legends (location suffix only for barrier
    instructions). *)

val valid : spec -> bool
(** Rejects combinations that make no sense (e.g. [Data_dep] in a
    store-store model). *)

val run : spec -> float
(** Execute the model and return throughput in loops/second (per
    thread).  Raises [Invalid_argument] if [valid spec] is false. *)

val run_cycles : spec -> int
(** Same run, returning the makespan in cycles (for tests that assert
    exact deterministic values). *)

val run_stats : spec -> int * int
(** Same run, returning [(cycles, events)] where [events] is the number
    of kernel events the run processed — the denominator of the perf
    harness' events/sec metric. *)
