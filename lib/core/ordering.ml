module Barrier = Armb_cpu.Barrier

type t =
  | No_barrier
  | Bar of Barrier.t
  | Ldar_acquire
  | Stlr_release
  | Data_dep
  | Addr_dep
  | Ctrl_dep
  | Ctrl_isb

let to_string = function
  | No_barrier -> "No Barrier"
  | Bar b -> Barrier.to_string b
  | Ldar_acquire -> "LDAR"
  | Stlr_release -> "STLR"
  | Data_dep -> "DATA DEP"
  | Addr_dep -> "ADDR DEP"
  | Ctrl_dep -> "CTRL"
  | Ctrl_isb -> "CTRL+ISB"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let named =
  [
    ("none", No_barrier);
    ("dmb", Bar (Barrier.Dmb Full));
    ("dmb-st", Bar (Barrier.Dmb St));
    ("dmb-ld", Bar (Barrier.Dmb Ld));
    ("dsb", Bar (Barrier.Dsb Full));
    ("dsb-st", Bar (Barrier.Dsb St));
    ("dsb-ld", Bar (Barrier.Dsb Ld));
    ("isb", Bar Barrier.Isb);
    ("ldar", Ldar_acquire);
    ("stlr", Stlr_release);
    ("data-dep", Data_dep);
    ("addr-dep", Addr_dep);
    ("ctrl", Ctrl_dep);
    ("ctrl-isb", Ctrl_isb);
  ]

let of_name s = List.assoc_opt (String.lowercase_ascii s) named

let requires_leading_load = function
  | Ldar_acquire | Data_dep | Addr_dep | Ctrl_dep | Ctrl_isb -> true
  | No_barrier | Bar _ | Stlr_release -> false

let requires_trailing_store = function
  | Stlr_release | Data_dep | Ctrl_dep -> true
  | No_barrier | Bar _ | Ldar_acquire | Addr_dep | Ctrl_isb -> false

let orders_load_load = function
  | Bar b -> Barrier.orders_loads b
  | Ldar_acquire | Addr_dep | Ctrl_isb -> true
  | Data_dep | Ctrl_dep | No_barrier | Stlr_release -> false

let orders_load_store = function
  | Bar b -> Barrier.orders_loads b
  | Ldar_acquire | Addr_dep | Ctrl_isb | Data_dep | Ctrl_dep | Stlr_release -> true
  | No_barrier -> false

let orders_store_store = function
  | Bar b -> Barrier.orders_stores b
  | Stlr_release -> true
  | No_barrier | Ldar_acquire | Data_dep | Addr_dep | Ctrl_dep | Ctrl_isb -> false

let orders_store_load = function
  | Bar (Barrier.Dmb Full) | Bar (Barrier.Dsb Full) -> true
  | Bar _ | No_barrier | Ldar_acquire | Stlr_release | Data_dep | Addr_dep | Ctrl_dep
  | Ctrl_isb ->
    false

let involves_bus = function
  | Bar (Barrier.Dmb Full) | Bar (Barrier.Dmb St) | Bar (Barrier.Dsb _) | Stlr_release -> true
  | Bar (Barrier.Dmb Ld) | Bar Barrier.Isb | No_barrier | Ldar_acquire | Data_dep | Addr_dep
  | Ctrl_dep | Ctrl_isb ->
    false
