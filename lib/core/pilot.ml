(* The simulator-facing instance of the canonical Pilot codec: machine
   words are int64, the shuffle pool uses the raw SplitMix64 draws. *)
include Armb_primitives.Pilot_word.Make (struct
  type t = int64

  let equal = Int64.equal
  let logxor = Int64.logxor
  let zero = 0L
  let of_pool v = v
end)
