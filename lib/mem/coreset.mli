(** Fixed-capacity core bitsets stored as arrays of 32-bit words.

    The directory's sharer sets and the topology's cluster/node
    membership sets were single-int bitmasks, hard-capping the simulated
    machine at 62 cores; this module lifts that to any capacity while
    keeping every hot-path query a short word loop (no per-core scans,
    no allocation).  Bits at or above the capacity are zero by
    invariant, and every core-indexed operation bounds-checks and raises
    [Invalid_argument] — out-of-range cores fail loudly instead of
    silently wrapping the way [1 lsl core] did past bit 62. *)

type t

val create : cores:int -> t
(** Empty set holding cores [0 .. cores-1].  Raises on [cores <= 0]. *)

val capacity : t -> int
val words : t -> int
(** Number of storage words ([ceil (capacity / 32)]). *)

val clear : t -> unit
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool

val set_only : t -> int -> unit
(** Make the set exactly [{i}] (clear + add, one pass). *)

val set_pair : t -> int -> int -> unit
(** Make the set exactly [{i; j}]. *)

val is_empty : t -> bool

val any_except : t -> int -> bool
(** Does the set contain any core other than [i]? *)

val intersects : t -> t -> bool

val outside_except : t -> t -> except:int -> bool
(** [outside_except a b ~except]: does [a] contain a core that is
    neither in [b] nor equal to [except]?  This is the farthest-snoop
    classification step: sharers outside the requester's node/cluster
    set, the requester itself excluded. *)

val cardinal : t -> int
val cardinal_except : t -> int -> int
(** [cardinal t] members; [cardinal_except t i] members other than [i]
    (the invalidation fan-out of a write by [i]). *)

val iter : t -> (int -> unit) -> unit
(** Ascending core order. *)

val equal : t -> t -> bool
val copy : t -> t
val to_list : t -> int list
val pp : Format.formatter -> t -> unit
