(* Multi-word core bitsets for the directory and topology.

   Sharer sets used to be one OCaml int, which capped the machine at 62
   cores and made every widening a silent wrap.  A set is now an array
   of 32-bit words (32 so that word/bit indexing stays shifts and masks
   — no division — while every word fits an OCaml int with room to
   spare), with the invariant that bits at or above [capacity] are
   always zero.  All hot-path queries iterate words, never cores, so a
   directory walk over 512 sharers costs 16 word operations.

   Every membership-changing operation bounds-checks its core index and
   fails loudly: the old [1 lsl core] sites wrapped silently past bit
   62, which is exactly the failure mode this module retires. *)

type t = { words : int array; cap : int }

let word_bits = 32
let shift = 5 (* log2 word_bits *)
let low_mask = word_bits - 1

let create ~cores =
  if cores <= 0 then invalid_arg "Coreset.create: non-positive capacity";
  { words = Array.make ((cores + word_bits - 1) lsr shift) 0; cap = cores }

let capacity t = t.cap
let words t = Array.length t.words

let[@inline] check t i op =
  if i < 0 || i >= t.cap then
    invalid_arg (Printf.sprintf "Coreset.%s: core %d outside 0..%d" op i (t.cap - 1))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let add t i =
  check t i "add";
  let w = i lsr shift in
  t.words.(w) <- t.words.(w) lor (1 lsl (i land low_mask))

let remove t i =
  check t i "remove";
  let w = i lsr shift in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i land low_mask))

let mem t i =
  check t i "mem";
  t.words.(i lsr shift) land (1 lsl (i land low_mask)) <> 0

(* Directory transitions replace the whole sharer set at once (DRAM
   fill, owner downgrade, write completion); doing clear+add in one
   entry point keeps those paths allocation-free and obvious. *)
let set_only t i =
  check t i "set_only";
  Array.fill t.words 0 (Array.length t.words) 0;
  t.words.(i lsr shift) <- 1 lsl (i land low_mask)

let set_pair t i j =
  check t i "set_pair";
  check t j "set_pair";
  Array.fill t.words 0 (Array.length t.words) 0;
  t.words.(i lsr shift) <- 1 lsl (i land low_mask);
  let wj = j lsr shift in
  t.words.(wj) <- t.words.(wj) lor (1 lsl (j land low_mask))

let is_empty t =
  let n = Array.length t.words in
  let rec go w = w >= n || (t.words.(w) = 0 && go (w + 1)) in
  go 0

(* Membership tests against another set (the topology's cluster/node
   sets): word loops with optional single-core exclusion, which is what
   the farthest-snoop and invalidation-fan-out walks ask. *)

let any_except t i =
  check t i "any_except";
  let wi = i lsr shift and bi = 1 lsl (i land low_mask) in
  let n = Array.length t.words in
  let rec go w =
    if w >= n then false
    else
      let v = if w = wi then t.words.(w) land lnot bi else t.words.(w) in
      v <> 0 || go (w + 1)
  in
  go 0

let intersects a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let rec go w = w < n && (a.words.(w) land b.words.(w) <> 0 || go (w + 1)) in
  go 0

(* Is any member of [a] (other than [except]) outside [b]?  [b] must
   have at least [a]'s capacity (true for topology sets by construction:
   all sets of one machine share one capacity). *)
let outside_except a b ~except =
  check a except "outside_except";
  let we = except lsr shift and be = 1 lsl (except land low_mask) in
  let n = Array.length a.words in
  let rec go w =
    if w >= n then false
    else
      let v = a.words.(w) land lnot b.words.(w) in
      let v = if w = we then v land lnot be else v in
      v <> 0 || go (w + 1)
  in
  go 0

let popcount_word m =
  let m = ref m and n = ref 0 in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr n
  done;
  !n

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let cardinal_except t i =
  check t i "cardinal_except";
  cardinal t - if mem t i then 1 else 0

let iter t f =
  let n = Array.length t.words in
  for w = 0 to n - 1 do
    let m = ref t.words.(w) in
    while !m <> 0 do
      let low = !m land - !m in
      (* count trailing zeros of the isolated low bit *)
      let rec tz bit acc = if bit = 1 then acc else tz (bit lsr 1) (acc + 1) in
      f ((w lsl shift) + tz low 0);
      m := !m land lnot low
    done
  done

let equal a b = a.cap = b.cap && a.words = b.words

let copy t = { words = Array.copy t.words; cap = t.cap }

let to_list t =
  let acc = ref [] in
  iter t (fun i -> acc := i :: !acc);
  List.rev !acc

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
