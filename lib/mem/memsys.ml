type access = { latency : int; cross_node : bool; hit : bool }

type line = {
  mutable owner : int; (* core holding the line exclusively, -1 if none *)
  sharers : Coreset.t; (* cores with a valid copy (multi-word set) *)
  mutable busy_until : int; (* serialization point for ownership changes *)
  mutable ready_at : int;
      (* completion time of the most recent fill/transfer: a subsequent
         hit cannot complete before the line has actually arrived
         (coherence of read-read) *)
  mutable pending_writer : int; (* core with an in-flight drain, -1 if none *)
  mutable pending_until : int; (* completion time of that drain *)
  mutable watchers : (unit -> unit) list;
}

type counters = {
  hits : int;
  transfers : int;
  cross_node_transfers : int;
  dram_fills : int;
  invalidations : int;
}

module Int_table = Armb_sim.Int_table
module Injector = Armb_fault.Injector

type t = {
  topo : Topology.t;
  lat : Latency.t;
  inj : Injector.t option;
  lines : line Int_table.t;
  values : int64 Int_table.t;
  mutable c_hits : int;
  mutable c_transfers : int;
  mutable c_cross : int;
  mutable c_dram : int;
  mutable c_inval : int;
}

let new_line ~cores _idx =
  {
    owner = -1;
    sharers = Coreset.create ~cores;
    busy_until = 0;
    ready_at = 0;
    pending_writer = -1;
    pending_until = 0;
    watchers = [];
  }

let create ?inj ~topo ~lat () =
  let cores = Topology.num_cores topo in
  {
    topo;
    lat;
    inj;
    lines = Int_table.create ~capacity:64 (new_line ~cores 0);
    values = Int_table.create ~capacity:64 0L;
    c_hits = 0;
    c_transfers = 0;
    c_cross = 0;
    c_dram = 0;
    c_inval = 0;
  }

let topology t = t.topo
let latencies t = t.lat
let injector t = t.inj

(* Fault-injection hooks: pure extra delay, zero when no injector is
   wired (the faults-off path must stay bit-identical to the seed
   kernel — the golden digests pin it). *)
let[@inline] jitter_dram t = match t.inj with None -> 0 | Some i -> Injector.dram_jitter i

let[@inline] delay_snoop t ~rank =
  match t.inj with None -> 0 | Some i -> Injector.snoop_delay i ~rank

let line_of addr = addr lsr 6

let line t addr =
  Int_table.find_or_add t.lines (line_of addr)
    (new_line ~cores:(Topology.num_cores t.topo))

(* The requester must wait for the farthest snoop response.  The
   "others" set of a write is the sharers minus the writer, plus the
   owner when one exists; it is classified against the topology's
   precomputed per-core membership sets with word-wise walks — no
   per-sharer loop, no materialized temporary set.  Only called when
   that set is non-empty (the caller established [has_others]); the
   owner, when present, is never the requesting core here. *)
let worst_rank t core l =
  let node = Topology.node_set t.topo core in
  if
    Coreset.outside_except l.sharers node ~except:core
    || (l.owner >= 0 && not (Coreset.mem node l.owner))
  then 3
  else
    let cluster = Topology.cluster_set t.topo core in
    if
      Coreset.outside_except l.sharers cluster ~except:core
      || (l.owner >= 0 && not (Coreset.mem cluster l.owner))
    then 2
    else 1

(* Serialize ownership-changing operations on a contended line. *)
let serialize l ~now lat_cycles =
  let start = max now l.busy_until in
  l.busy_until <- start + lat_cycles;
  start - now + lat_cycles

let read t ~now ~core ~addr =
  let l = line t addr in
  if Coreset.mem l.sharers core then begin
    t.c_hits <- t.c_hits + 1;
    { latency = max t.lat.l1_hit (l.ready_at - now); cross_node = false; hit = true }
  end
  else if l.owner >= 0 && l.owner <> core then begin
    let r = Topology.distance_rank t.topo core l.owner in
    let xfer = Latency.transfer t.lat (Topology.distance_of_rank r) + delay_snoop t ~rank:r in
    t.c_transfers <- t.c_transfers + 1;
    let cross = r = 3 in
    if cross then t.c_cross <- t.c_cross + 1;
    (* Owner downgrades to shared; reader gets a copy. *)
    Coreset.set_pair l.sharers l.owner core;
    l.owner <- -1;
    let latency = serialize l ~now xfer in
    (* An in-flight fill delays the transfer: the copy can't leave the
       owner before the line itself has arrived. *)
    let latency = max latency (l.ready_at - now) in
    l.ready_at <- now + latency;
    { latency; cross_node = cross; hit = false }
  end
  else if not (Coreset.is_empty l.sharers) then begin
    (* Fetch from the nearest sharer: intersection with the requester's
       cluster/node sets classifies the best distance directly.  The
       requester itself is never a sharer here — the hit branch above
       caught that. *)
    let best =
      if Coreset.intersects l.sharers (Topology.cluster_set t.topo core) then 1
      else if Coreset.intersects l.sharers (Topology.node_set t.topo core) then 2
      else 3
    in
    let xfer =
      Latency.transfer t.lat (Topology.distance_of_rank best) + delay_snoop t ~rank:best
    in
    t.c_transfers <- t.c_transfers + 1;
    let cross = best = 3 in
    if cross then t.c_cross <- t.c_cross + 1;
    Coreset.add l.sharers core;
    (* If the sharer's own copy is still in flight, this reader waits
       for that fill too — the returned latency must match ready_at,
       or a racing read would complete before the line exists. *)
    let latency = max xfer (l.ready_at - now) in
    l.ready_at <- now + latency;
    { latency; cross_node = cross; hit = false }
  end
  else begin
    t.c_dram <- t.c_dram + 1;
    Coreset.set_only l.sharers core;
    let latency = max (t.lat.dram + jitter_dram t) (l.ready_at - now) in
    l.ready_at <- now + latency;
    { latency; cross_node = false; hit = false }
  end

let write_latency t ~core l =
  (* Returns (cycles, cross_node, hit) without serialization applied.
     "Others" — the copies a write must invalidate — is the sharer set
     minus the writer, plus the owner when one exists; it is never
     materialized, only tested and counted word-wise. *)
  if l.owner = core then (t.lat.l1_hit, false, true)
  else begin
    let has_others = l.owner >= 0 || Coreset.any_except l.sharers core in
    if not has_others then
      if Coreset.mem l.sharers core then
        (* Upgrade from shared-alone to exclusive: local. *)
        (t.lat.l1_hit, false, true)
      else begin
        t.c_dram <- t.c_dram + 1;
        (t.lat.dram + jitter_dram t, false, false)
      end
    else begin
      let r = worst_rank t core l in
      let cycles =
        Latency.transfer t.lat (Topology.distance_of_rank r) + delay_snoop t ~rank:r
      in
      t.c_transfers <- t.c_transfers + 1;
      let fanout =
        Coreset.cardinal_except l.sharers core
        + if l.owner >= 0 && not (Coreset.mem l.sharers l.owner) then 1 else 0
      in
      t.c_inval <- t.c_inval + fanout;
      let cross = r = 3 in
      if cross then t.c_cross <- t.c_cross + 1;
      (cycles, cross, false)
    end
  end

let write_begin t ~now ~core ~addr =
  let l = line t addr in
  if l.pending_writer = core && l.pending_until > now then begin
    (* Coalesce with our own in-flight drain to the same line. *)
    t.c_hits <- t.c_hits + 1;
    { latency = max t.lat.l1_hit (l.pending_until - now); cross_node = false; hit = true }
  end
  else begin
    let cycles, cross, hit = write_latency t ~core l in
    if hit then t.c_hits <- t.c_hits + 1;
    let latency =
      if hit && l.owner = core then cycles else serialize l ~now cycles
    in
    l.pending_writer <- core;
    l.pending_until <- now + latency;
    { latency; cross_node = cross; hit }
  end

(* Ownership and invalidation take effect only when the drain completes:
   until then other cores keep reading their (old) copies, which is what
   lets the timing model exhibit store-buffer weak behaviours. *)
let write_finish t ~now ~core ~addr =
  let l = line t addr in
  l.owner <- core;
  Coreset.set_only l.sharers core;
  if now > l.ready_at then l.ready_at <- now;
  if l.pending_writer = core && l.pending_until <= now then l.pending_writer <- -1

let extend_pending t ~core ~addr ~until =
  let l = line t addr in
  if l.pending_writer = core && until > l.pending_until then l.pending_until <- until

let place t ~core ~addr =
  let l = line t addr in
  l.owner <- core;
  Coreset.set_only l.sharers core

let rmw t ~now ~core ~addr =
  (* Atomics claim the line for the whole operation. *)
  let l = line t addr in
  let cycles, cross, hit = write_latency t ~core l in
  if hit then t.c_hits <- t.c_hits + 1;
  let latency =
    (if hit && l.owner = core then cycles else serialize l ~now cycles) + t.lat.rmw_extra
  in
  l.owner <- core;
  Coreset.set_only l.sharers core;
  l.ready_at <- now + latency;
  { latency; cross_node = cross; hit = false }

let load_value t ~addr = Int_table.get t.values (addr lsr 3) ~default:0L

let commit_store t ~addr v =
  Int_table.set t.values (addr lsr 3) v;
  let l = line t addr in
  match l.watchers with
  | [] -> ()
  | ws ->
    l.watchers <- [];
    List.iter (fun f -> f ()) (List.rev ws)

let watch t ~addr f =
  let l = line t addr in
  l.watchers <- f :: l.watchers

let counters t =
  {
    hits = t.c_hits;
    transfers = t.c_transfers;
    cross_node_transfers = t.c_cross;
    dram_fills = t.c_dram;
    invalidations = t.c_inval;
  }

let reset_counters t =
  t.c_hits <- 0;
  t.c_transfers <- 0;
  t.c_cross <- 0;
  t.c_dram <- 0;
  t.c_inval <- 0

let pp_counters ppf c =
  Format.fprintf ppf "hits=%d transfers=%d cross-node=%d dram=%d inval=%d" c.hits c.transfers
    c.cross_node_transfers c.dram_fills c.invalidations
