type access = { latency : int; cross_node : bool; hit : bool }

type line = {
  mutable owner : int; (* core holding the line exclusively, -1 if none *)
  mutable sharers : int; (* bitmask of cores with a valid copy *)
  mutable busy_until : int; (* serialization point for ownership changes *)
  mutable ready_at : int;
      (* completion time of the most recent fill/transfer: a subsequent
         hit cannot complete before the line has actually arrived
         (coherence of read-read) *)
  mutable pending_writer : int; (* core with an in-flight drain, -1 if none *)
  mutable pending_until : int; (* completion time of that drain *)
  mutable watchers : (unit -> unit) list;
}

type counters = {
  hits : int;
  transfers : int;
  cross_node_transfers : int;
  dram_fills : int;
  invalidations : int;
}

type t = {
  topo : Topology.t;
  lat : Latency.t;
  lines : (int, line) Hashtbl.t;
  values : (int, int64) Hashtbl.t;
  mutable c_hits : int;
  mutable c_transfers : int;
  mutable c_cross : int;
  mutable c_dram : int;
  mutable c_inval : int;
}

let create ~topo ~lat =
  {
    topo;
    lat;
    lines = Hashtbl.create 4096;
    values = Hashtbl.create 4096;
    c_hits = 0;
    c_transfers = 0;
    c_cross = 0;
    c_dram = 0;
    c_inval = 0;
  }

let topology t = t.topo
let latencies t = t.lat

let line_of addr = addr lsr 6

let line t addr =
  let idx = line_of addr in
  match Hashtbl.find_opt t.lines idx with
  | Some l -> l
  | None ->
    let l =
      {
        owner = -1;
        sharers = 0;
        busy_until = 0;
        ready_at = 0;
        pending_writer = -1;
        pending_until = 0;
        watchers = [];
      }
    in
    Hashtbl.add t.lines idx l;
    l

let bit c = 1 lsl c

(* Fold over the set bits of a sharer mask. *)
let iter_mask mask f =
  let m = ref mask and c = ref 0 in
  while !m <> 0 do
    if !m land 1 = 1 then f !c;
    incr c;
    m := !m lsr 1
  done

let worst_distance t core mask =
  (* The requester must wait for the farthest snoop response. *)
  let worst = ref Topology.Same_core in
  let rank = function
    | Topology.Same_core -> 0
    | Topology.Same_cluster -> 1
    | Topology.Same_node -> 2
    | Topology.Cross_node -> 3
  in
  iter_mask mask (fun c ->
      if c <> core then
        let d = Topology.distance t.topo core c in
        if rank d > rank !worst then worst := d);
  !worst

(* Serialize ownership-changing operations on a contended line. *)
let serialize l ~now lat_cycles =
  let start = max now l.busy_until in
  l.busy_until <- start + lat_cycles;
  start - now + lat_cycles

let read t ~now ~core ~addr =
  let l = line t addr in
  if l.sharers land bit core <> 0 then begin
    t.c_hits <- t.c_hits + 1;
    { latency = max t.lat.l1_hit (l.ready_at - now); cross_node = false; hit = true }
  end
  else if l.owner >= 0 && l.owner <> core then begin
    let d = Topology.distance t.topo core l.owner in
    let xfer = Latency.transfer t.lat d in
    t.c_transfers <- t.c_transfers + 1;
    let cross = d = Topology.Cross_node in
    if cross then t.c_cross <- t.c_cross + 1;
    (* Owner downgrades to shared; reader gets a copy. *)
    l.sharers <- bit l.owner lor bit core;
    l.owner <- -1;
    let latency = serialize l ~now xfer in
    (* An in-flight fill delays the transfer: the copy can't leave the
       owner before the line itself has arrived. *)
    let latency = max latency (l.ready_at - now) in
    l.ready_at <- now + latency;
    { latency; cross_node = cross; hit = false }
  end
  else if l.sharers <> 0 then begin
    (* Fetch from the nearest sharer. *)
    let best = ref Topology.Cross_node in
    let rank = function
      | Topology.Same_core -> 0
      | Topology.Same_cluster -> 1
      | Topology.Same_node -> 2
      | Topology.Cross_node -> 3
    in
    iter_mask l.sharers (fun c ->
        let d = Topology.distance t.topo core c in
        if rank d < rank !best then best := d);
    let xfer = Latency.transfer t.lat !best in
    t.c_transfers <- t.c_transfers + 1;
    let cross = !best = Topology.Cross_node in
    if cross then t.c_cross <- t.c_cross + 1;
    l.sharers <- l.sharers lor bit core;
    (* If the sharer's own copy is still in flight, this reader waits
       for that fill too — the returned latency must match ready_at,
       or a racing read would complete before the line exists. *)
    let latency = max xfer (l.ready_at - now) in
    l.ready_at <- now + latency;
    { latency; cross_node = cross; hit = false }
  end
  else begin
    t.c_dram <- t.c_dram + 1;
    l.sharers <- bit core;
    let latency = max t.lat.dram (l.ready_at - now) in
    l.ready_at <- now + latency;
    { latency; cross_node = false; hit = false }
  end

let write_latency t ~core l =
  (* Returns (cycles, cross_node, hit) without serialization applied. *)
  if l.owner = core then (t.lat.l1_hit, false, true)
  else begin
    let others = l.sharers land lnot (bit core) in
    let others = if l.owner >= 0 then others lor bit l.owner else others in
    if others = 0 then
      if l.sharers land bit core <> 0 then
        (* Upgrade from shared-alone to exclusive: local. *)
        (t.lat.l1_hit, false, true)
      else begin
        t.c_dram <- t.c_dram + 1;
        (t.lat.dram, false, false)
      end
    else begin
      let d = worst_distance t core others in
      let cycles = Latency.transfer t.lat d in
      t.c_transfers <- t.c_transfers + 1;
      let inval_count = ref 0 in
      iter_mask others (fun _ -> incr inval_count);
      t.c_inval <- t.c_inval + !inval_count;
      let cross = d = Topology.Cross_node in
      if cross then t.c_cross <- t.c_cross + 1;
      (cycles, cross, false)
    end
  end

let write_begin t ~now ~core ~addr =
  let l = line t addr in
  if l.pending_writer = core && l.pending_until > now then begin
    (* Coalesce with our own in-flight drain to the same line. *)
    t.c_hits <- t.c_hits + 1;
    { latency = max t.lat.l1_hit (l.pending_until - now); cross_node = false; hit = true }
  end
  else begin
    let cycles, cross, hit = write_latency t ~core l in
    if hit then t.c_hits <- t.c_hits + 1;
    let latency =
      if hit && l.owner = core then cycles else serialize l ~now cycles
    in
    l.pending_writer <- core;
    l.pending_until <- now + latency;
    { latency; cross_node = cross; hit }
  end

(* Ownership and invalidation take effect only when the drain completes:
   until then other cores keep reading their (old) copies, which is what
   lets the timing model exhibit store-buffer weak behaviours. *)
let write_finish t ~now ~core ~addr =
  let l = line t addr in
  l.owner <- core;
  l.sharers <- bit core;
  if now > l.ready_at then l.ready_at <- now;
  if l.pending_writer = core && l.pending_until <= now then l.pending_writer <- -1

let extend_pending t ~core ~addr ~until =
  let l = line t addr in
  if l.pending_writer = core && until > l.pending_until then l.pending_until <- until

let place t ~core ~addr =
  let l = line t addr in
  l.owner <- core;
  l.sharers <- bit core

let rmw t ~now ~core ~addr =
  (* Atomics claim the line for the whole operation. *)
  let l = line t addr in
  let cycles, cross, hit = write_latency t ~core l in
  if hit then t.c_hits <- t.c_hits + 1;
  let latency =
    (if hit && l.owner = core then cycles else serialize l ~now cycles) + t.lat.rmw_extra
  in
  l.owner <- core;
  l.sharers <- bit core;
  l.ready_at <- now + latency;
  { latency; cross_node = cross; hit = false }

let load_value t ~addr =
  match Hashtbl.find_opt t.values (addr lsr 3) with Some v -> v | None -> 0L

let commit_store t ~addr v =
  Hashtbl.replace t.values (addr lsr 3) v;
  let l = line t addr in
  match l.watchers with
  | [] -> ()
  | ws ->
    l.watchers <- [];
    List.iter (fun f -> f ()) (List.rev ws)

let watch t ~addr f =
  let l = line t addr in
  l.watchers <- f :: l.watchers

let counters t =
  {
    hits = t.c_hits;
    transfers = t.c_transfers;
    cross_node_transfers = t.c_cross;
    dram_fills = t.c_dram;
    invalidations = t.c_inval;
  }

let reset_counters t =
  t.c_hits <- 0;
  t.c_transfers <- 0;
  t.c_cross <- 0;
  t.c_dram <- 0;
  t.c_inval <- 0

let pp_counters ppf c =
  Format.fprintf ppf "hits=%d transfers=%d cross-node=%d dram=%d inval=%d" c.hits c.transfers
    c.cross_node_transfers c.dram_fills c.invalidations
