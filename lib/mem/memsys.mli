(** Coherent memory system model.

    Combines a directory-style coherence state per 64-byte line (owner +
    sharer bitmask, MESI-like), a latency model, a word-addressed value
    store, and per-line watch lists used to simulate spin loops cheaply.

    Timing and data are deliberately split: [read]/[write]/[rmw] compute
    the {e latency} of an access and update directory state at issue
    time, while [load_value]/[commit_store] move {e data} and are meant
    to be called at the access' completion timestamp by the CPU model.
    Store visibility therefore happens exactly when the simulated store
    buffer drains — which is what makes weak behaviours observable. *)

type t

type access = {
  latency : int;  (** cycles from request to completion *)
  cross_node : bool;  (** servicing involved another NUMA node *)
  hit : bool;  (** satisfied in the local L1 *)
}

val create : ?inj:Armb_fault.Injector.t -> topo:Topology.t -> lat:Latency.t -> unit -> t
(** [inj] wires a fault injector into the directory and interconnect
    paths: cache-to-cache transfers and invalidation snoops may be
    delayed (scaled by hop distance) and DRAM fills may jitter.  All
    perturbations are pure extra latency — directory state transitions
    and committed values are untouched, so coherence safety is
    preserved by construction.  Without [inj] the timing is
    bit-identical to the unfaulted kernel. *)

val topology : t -> Topology.t
val latencies : t -> Latency.t

val injector : t -> Armb_fault.Injector.t option
(** The wired fault injector, if any (for post-run accounting). *)

val line_of : int -> int
(** Cache-line index of a byte address (64-byte lines). *)

val read : t -> now:int -> core:int -> addr:int -> access
(** Load timing: may transfer the line from its current owner/sharer. *)

val write_begin : t -> now:int -> core:int -> addr:int -> access
(** Start a store drain: computes its latency from the current directory
    state and reserves the line (competing writers serialize), but does
    {e not} yet invalidate other copies — readers keep hitting their
    cached copies until the drain completes.  The caller must invoke
    {!write_finish} at [now + latency]. *)

val write_finish : t -> now:int -> core:int -> addr:int -> unit
(** Complete a store drain begun with {!write_begin}: the writer becomes
    exclusive owner and every other copy is invalidated.  Call this at
    the drain's completion timestamp, before [commit_store]. *)

val extend_pending : t -> core:int -> addr:int -> until:int -> unit
(** Stretch the in-flight drain's completion horizon (used when the CPU
    model adds commit delay beyond the coherence latency, e.g. STLR's
    interconnect surcharge), so later same-line stores coalesce behind
    the {e full} completion and same-address commit order is kept. *)

val place : t -> core:int -> addr:int -> unit
(** Make [core] the exclusive owner of the line immediately (test /
    initial-placement helper; no timing). *)

val rmw : t -> now:int -> core:int -> addr:int -> access
(** Atomic read-modify-write timing: [write] plus the platform's RMW
    surcharge. *)

val load_value : t -> addr:int -> int64
(** Current committed value of the 8-byte word at [addr] (0 if never
    written). *)

val commit_store : t -> addr:int -> int64 -> unit
(** Make a store globally visible and wake all watchers of its line. *)

val watch : t -> addr:int -> (unit -> unit) -> unit
(** Register a one-shot callback fired at the next [commit_store]
    touching the same line. *)

(** {2 Traffic counters} (for the cache-lines-touched analyses) *)

type counters = {
  hits : int;
  transfers : int;  (** cache-to-cache transfers *)
  cross_node_transfers : int;
  dram_fills : int;
  invalidations : int;
}

val counters : t -> counters
val reset_counters : t -> unit
val pp_counters : Format.formatter -> counters -> unit
