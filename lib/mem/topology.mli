(** Machine topology: cores grouped into clusters, clusters into NUMA
    nodes.  Mirrors the ARM example system of the paper's Figure 1: each
    NUMA node sits behind an {e inner bi-section boundary}; the whole
    inner-shareable domain sits behind the {e inner domain boundary}. *)

type t

type distance =
  | Same_core
  | Same_cluster
  | Same_node  (** different cluster, same NUMA node *)
  | Cross_node

val make : nodes:int -> clusters_per_node:int -> cores_per_cluster:int -> t
(** Regular topology. Total cores must not exceed {!max_cores}. *)

val heterogeneous : nodes:int -> cluster_sizes:int list -> t
(** One NUMA node layout with explicitly-sized clusters, replicated over
    [nodes] nodes (for big.LITTLE parts such as Kirin 960/970 use
    [~nodes:1 ~cluster_sizes:[4;4]]). *)

val max_cores : int
(** Upper bound on core count.  Sharer and membership sets are
    multi-word {!Coreset}s, so the bound is a sanity limit on the
    precomputed distance-rank matrix (quadratic in cores), not a
    representation cap; currently 1024. *)

val num_cores : t -> int
val num_nodes : t -> int
val num_clusters : t -> int

val cluster_of : t -> int -> int
val node_of : t -> int -> int

val cores_of_node : t -> int -> int list
val cores_of_cluster : t -> int -> int list

val distance : t -> int -> int -> distance

val distance_rank : t -> int -> int -> int
(** Distance as its severity rank (0 = same core, 1 = same cluster,
    2 = same node, 3 = cross node), read from a precomputed core-pair
    matrix.  Hot-path variant of {!distance}: no variant allocation, one
    byte load. *)

val distance_of_rank : int -> distance
(** Inverse of the rank encoding ([3] and above map to [Cross_node]). *)

val cluster_set : t -> int -> Coreset.t
(** Set of the cores sharing [c]'s cluster (including [c]).  Shared and
    immutable: do not mutate. *)

val node_set : t -> int -> Coreset.t
(** Set of the cores sharing [c]'s NUMA node (including [c]).  Shared
    and immutable: do not mutate. *)

val pp : Format.formatter -> t -> unit
val pp_distance : Format.formatter -> distance -> unit
