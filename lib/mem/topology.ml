type t = {
  num_cores : int;
  num_clusters : int;
  num_nodes : int;
  cluster_of : int array;
  node_of : int array;
  cluster_mask : int array; (* per core: mask of cores sharing its cluster *)
  node_mask : int array; (* per core: mask of cores sharing its NUMA node *)
  rank : Bytes.t; (* num_cores x num_cores distance ranks, row-major *)
}

type distance = Same_core | Same_cluster | Same_node | Cross_node

let max_cores = 62

let build node_of cluster_of =
  let num_cores = Array.length node_of in
  if num_cores = 0 then invalid_arg "Topology: no cores";
  if num_cores > max_cores then invalid_arg "Topology: too many cores";
  (* Precompute what the memory system asks on every access: the
     distance class of a core pair and, per core, the bitmasks of its
     cluster and node peers.  Snoop-distance questions over sharer masks
     then reduce to a few bitwise tests instead of per-sharer loops. *)
  let cluster_mask = Array.make num_cores 0 in
  let node_mask = Array.make num_cores 0 in
  let rank = Bytes.create (num_cores * num_cores) in
  for a = 0 to num_cores - 1 do
    for b = 0 to num_cores - 1 do
      if cluster_of.(a) = cluster_of.(b) then
        cluster_mask.(a) <- cluster_mask.(a) lor (1 lsl b);
      if node_of.(a) = node_of.(b) then node_mask.(a) <- node_mask.(a) lor (1 lsl b);
      let r =
        if a = b then 0
        else if cluster_of.(a) = cluster_of.(b) then 1
        else if node_of.(a) = node_of.(b) then 2
        else 3
      in
      Bytes.unsafe_set rank ((a * num_cores) + b) (Char.unsafe_chr r)
    done
  done;
  {
    num_cores;
    num_clusters = 1 + Array.fold_left max 0 cluster_of;
    num_nodes = 1 + Array.fold_left max 0 node_of;
    cluster_of;
    node_of;
    cluster_mask;
    node_mask;
    rank;
  }

let make ~nodes ~clusters_per_node ~cores_per_cluster =
  if nodes <= 0 || clusters_per_node <= 0 || cores_per_cluster <= 0 then
    invalid_arg "Topology.make: non-positive dimension";
  let total = nodes * clusters_per_node * cores_per_cluster in
  let node_of = Array.make total 0 and cluster_of = Array.make total 0 in
  for c = 0 to total - 1 do
    let cluster = c / cores_per_cluster in
    cluster_of.(c) <- cluster;
    node_of.(c) <- cluster / clusters_per_node
  done;
  build node_of cluster_of

let heterogeneous ~nodes ~cluster_sizes =
  if nodes <= 0 || cluster_sizes = [] then invalid_arg "Topology.heterogeneous";
  let per_node = List.fold_left ( + ) 0 cluster_sizes in
  let clusters_per_node = List.length cluster_sizes in
  let total = nodes * per_node in
  let node_of = Array.make total 0 and cluster_of = Array.make total 0 in
  let core = ref 0 in
  for n = 0 to nodes - 1 do
    List.iteri
      (fun i size ->
        for _ = 1 to size do
          node_of.(!core) <- n;
          cluster_of.(!core) <- (n * clusters_per_node) + i;
          incr core
        done)
      cluster_sizes
  done;
  build node_of cluster_of

let num_cores t = t.num_cores
let num_nodes t = t.num_nodes
let num_clusters t = t.num_clusters

let check_core t c =
  if c < 0 || c >= t.num_cores then invalid_arg "Topology: core out of range"

let cluster_of t c =
  check_core t c;
  t.cluster_of.(c)

let node_of t c =
  check_core t c;
  t.node_of.(c)

let cores_of_node t n =
  List.filter (fun c -> t.node_of.(c) = n) (List.init t.num_cores Fun.id)

let cores_of_cluster t cl =
  List.filter (fun c -> t.cluster_of.(c) = cl) (List.init t.num_cores Fun.id)

let cluster_mask t c =
  check_core t c;
  t.cluster_mask.(c)

let node_mask t c =
  check_core t c;
  t.node_mask.(c)

let distance_rank t a b =
  check_core t a;
  check_core t b;
  Char.code (Bytes.unsafe_get t.rank ((a * t.num_cores) + b))

let distance_of_rank = function
  | 0 -> Same_core
  | 1 -> Same_cluster
  | 2 -> Same_node
  | _ -> Cross_node

let distance t a b = distance_of_rank (distance_rank t a b)

let pp_distance ppf = function
  | Same_core -> Format.pp_print_string ppf "same-core"
  | Same_cluster -> Format.pp_print_string ppf "same-cluster"
  | Same_node -> Format.pp_print_string ppf "same-node"
  | Cross_node -> Format.pp_print_string ppf "cross-node"

let pp ppf t =
  Format.fprintf ppf "%d cores / %d clusters / %d NUMA nodes" t.num_cores t.num_clusters
    t.num_nodes
