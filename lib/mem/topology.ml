type t = {
  num_cores : int;
  num_clusters : int;
  num_nodes : int;
  cluster_of : int array;
  node_of : int array;
  cluster_set : Coreset.t array; (* per core: set of cores sharing its cluster *)
  node_set : Coreset.t array; (* per core: set of cores sharing its NUMA node *)
  rank : Bytes.t; (* num_cores x num_cores distance ranks, row-major *)
}

type distance = Same_core | Same_cluster | Same_node | Cross_node

let max_cores = 1024

let build node_of cluster_of =
  let num_cores = Array.length node_of in
  if num_cores = 0 then invalid_arg "Topology: no cores";
  if num_cores > max_cores then
    invalid_arg
      (Printf.sprintf "Topology: %d cores exceeds the %d-core limit" num_cores max_cores);
  let num_clusters = 1 + Array.fold_left max 0 cluster_of in
  let num_nodes = 1 + Array.fold_left max 0 node_of in
  (* Precompute what the memory system asks on every access: the
     distance class of a core pair and, per core, the membership sets of
     its cluster and node peers.  Snoop-distance questions over sharer
     sets then reduce to a few word-wise tests instead of per-sharer
     loops.  Cores of one cluster/node share one set object — the sets
     are immutable after build. *)
  let cluster_members = Array.init num_clusters (fun _ -> Coreset.create ~cores:num_cores) in
  let node_members = Array.init num_nodes (fun _ -> Coreset.create ~cores:num_cores) in
  for c = 0 to num_cores - 1 do
    Coreset.add cluster_members.(cluster_of.(c)) c;
    Coreset.add node_members.(node_of.(c)) c
  done;
  let cluster_set = Array.init num_cores (fun c -> cluster_members.(cluster_of.(c))) in
  let node_set = Array.init num_cores (fun c -> node_members.(node_of.(c))) in
  let rank = Bytes.create (num_cores * num_cores) in
  for a = 0 to num_cores - 1 do
    for b = 0 to num_cores - 1 do
      let r =
        if a = b then 0
        else if cluster_of.(a) = cluster_of.(b) then 1
        else if node_of.(a) = node_of.(b) then 2
        else 3
      in
      Bytes.unsafe_set rank ((a * num_cores) + b) (Char.unsafe_chr r)
    done
  done;
  {
    num_cores;
    num_clusters;
    num_nodes;
    cluster_of;
    node_of;
    cluster_set;
    node_set;
    rank;
  }

let make ~nodes ~clusters_per_node ~cores_per_cluster =
  if nodes <= 0 || clusters_per_node <= 0 || cores_per_cluster <= 0 then
    invalid_arg "Topology.make: non-positive dimension";
  let total = nodes * clusters_per_node * cores_per_cluster in
  if total > max_cores then
    invalid_arg
      (Printf.sprintf "Topology.make: %dx%dx%d = %d cores exceeds the %d-core limit" nodes
         clusters_per_node cores_per_cluster total max_cores);
  let node_of = Array.make total 0 and cluster_of = Array.make total 0 in
  for c = 0 to total - 1 do
    let cluster = c / cores_per_cluster in
    cluster_of.(c) <- cluster;
    node_of.(c) <- cluster / clusters_per_node
  done;
  build node_of cluster_of

let heterogeneous ~nodes ~cluster_sizes =
  if nodes <= 0 || cluster_sizes = [] then invalid_arg "Topology.heterogeneous";
  let per_node = List.fold_left ( + ) 0 cluster_sizes in
  let clusters_per_node = List.length cluster_sizes in
  let total = nodes * per_node in
  if total > max_cores then
    invalid_arg
      (Printf.sprintf "Topology.heterogeneous: %d cores exceeds the %d-core limit" total
         max_cores);
  let node_of = Array.make total 0 and cluster_of = Array.make total 0 in
  let core = ref 0 in
  for n = 0 to nodes - 1 do
    List.iteri
      (fun i size ->
        for _ = 1 to size do
          node_of.(!core) <- n;
          cluster_of.(!core) <- (n * clusters_per_node) + i;
          incr core
        done)
      cluster_sizes
  done;
  build node_of cluster_of

let num_cores t = t.num_cores
let num_nodes t = t.num_nodes
let num_clusters t = t.num_clusters

let check_core t c =
  if c < 0 || c >= t.num_cores then
    invalid_arg
      (Printf.sprintf "Topology: core %d outside 0..%d" c (t.num_cores - 1))

let cluster_of t c =
  check_core t c;
  t.cluster_of.(c)

let node_of t c =
  check_core t c;
  t.node_of.(c)

let cores_of_node t n =
  List.filter (fun c -> t.node_of.(c) = n) (List.init t.num_cores Fun.id)

let cores_of_cluster t cl =
  List.filter (fun c -> t.cluster_of.(c) = cl) (List.init t.num_cores Fun.id)

let cluster_set t c =
  check_core t c;
  t.cluster_set.(c)

let node_set t c =
  check_core t c;
  t.node_set.(c)

let distance_rank t a b =
  check_core t a;
  check_core t b;
  Char.code (Bytes.unsafe_get t.rank ((a * t.num_cores) + b))

let distance_of_rank = function
  | 0 -> Same_core
  | 1 -> Same_cluster
  | 2 -> Same_node
  | _ -> Cross_node

let distance t a b = distance_of_rank (distance_rank t a b)

let pp_distance ppf = function
  | Same_core -> Format.pp_print_string ppf "same-core"
  | Same_cluster -> Format.pp_print_string ppf "same-cluster"
  | Same_node -> Format.pp_print_string ppf "same-node"
  | Cross_node -> Format.pp_print_string ppf "cross-node"

let pp ppf t =
  Format.fprintf ppf "%d cores / %d clusters / %d NUMA nodes" t.num_cores t.num_clusters
    t.num_nodes
