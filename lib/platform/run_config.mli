(** The run parameters every front end keeps re-threading — platform
    model, the two cores an experiment binds to, RNG seed and trial
    count — as one validated record, so the CLI, the bench driver and
    the tests stop passing positional tuples around and cannot disagree
    about defaults. *)

type t = {
  cfg : Armb_cpu.Config.t;  (** calibrated platform model *)
  cores : int * int;  (** cores the two communicating threads bind to *)
  seed : int;  (** base RNG seed (fault plans, fuzzing, pools) *)
  trials : int;  (** simulator trials per litmus experiment *)
}

val default_cores : Armb_cpu.Config.t -> int * int
(** Core 0 paired with the first core of the far half of the machine —
    the cross-chip placement the paper's figures default to. *)

val make : ?cores:int * int -> ?seed:int -> ?trials:int -> Armb_cpu.Config.t -> t
(** Validates against the platform topology: both cores in range and
    distinct, [seed >= 0], [trials > 0].  Raises [Invalid_argument]
    otherwise.  [cores] defaults to {!default_cores}, [seed] to 42,
    [trials] to 300. *)

val core_list : t -> int list
(** The two bound cores as a list (for multi-core harness specs). *)

val to_kv : t -> (string * string) list
(** Flat wire form: [("platform", name); ("cores", "A,B");
    ("seed", n); ("trials", n)] — the request codec the job service
    serializes run coordinates with. *)

val of_kv : ?defaults:t -> (string * string) list -> (t, string) result
(** Inverse of {!to_kv}; absent keys fall back to [defaults]
    (kunpeng916 with {!make}'s defaults when not given).  When the
    platform changes but no explicit cores are given, the core pair is
    re-derived from the new topology rather than inherited.  All
    {!make} validation applies; errors are returned, not raised. *)

val pp : Format.formatter -> t -> unit
