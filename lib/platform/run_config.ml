type t = {
  cfg : Armb_cpu.Config.t;
  cores : int * int;
  seed : int;
  trials : int;
}

let default_cores (cfg : Armb_cpu.Config.t) =
  let n = Armb_mem.Topology.num_cores cfg.topo in
  (0, n / 2)

let make ?cores ?(seed = 42) ?(trials = 300) cfg =
  let cores = match cores with Some c -> c | None -> default_cores cfg in
  let a, b = cores in
  let n = Armb_mem.Topology.num_cores cfg.topo in
  if a < 0 || b < 0 || a >= n || b >= n then
    invalid_arg
      (Printf.sprintf "Run_config.make: cores (%d,%d) outside 0..%d of %s" a b (n - 1) cfg.name);
  if a = b then invalid_arg "Run_config.make: the two threads must bind to distinct cores";
  if seed < 0 then invalid_arg "Run_config.make: seed must be non-negative";
  if trials <= 0 then invalid_arg "Run_config.make: trials must be positive";
  { cfg; cores; seed; trials }

let core_list t =
  let a, b = t.cores in
  [ a; b ]

(* ---------- wire codec (service job/request serialization) ---------- *)

let to_kv t =
  let a, b = t.cores in
  [
    ("platform", t.cfg.Armb_cpu.Config.name);
    ("cores", Printf.sprintf "%d,%d" a b);
    ("seed", string_of_int t.seed);
    ("trials", string_of_int t.trials);
  ]

let of_kv ?(defaults = make Platform.kunpeng916) kv =
  let find k = List.assoc_opt k kv in
  let ( let* ) = Result.bind in
  let* cfg =
    match find "platform" with
    | None -> Ok defaults.cfg
    | Some name -> (
      match Platform.by_name name with
      | Some cfg -> Ok cfg
      | None ->
        Error
          (Printf.sprintf "unknown platform %S (try: %s)" name
             (String.concat ", " Platform.names)))
  in
  let* cores =
    match find "cores" with
    | None ->
      (* a platform switch invalidates an inherited core pair *)
      Ok (if cfg == defaults.cfg then defaults.cores else default_cores cfg)
    | Some s -> (
      match String.split_on_char ',' s with
      | [ a; b ] -> (
        match (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b)) with
        | Some a, Some b -> Ok (a, b)
        | _ -> Error (Printf.sprintf "cores %S is not \"A,B\"" s))
      | _ -> Error (Printf.sprintf "cores %S is not \"A,B\"" s))
  in
  let int_field k default =
    match find k with
    | None -> Ok default
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "%s %S is not an integer" k s))
  in
  let* seed = int_field "seed" defaults.seed in
  let* trials = int_field "trials" defaults.trials in
  match make ~cores ~seed ~trials cfg with
  | rc -> Ok rc
  | exception Invalid_argument m -> Error m

let pp ppf t =
  let a, b = t.cores in
  Format.fprintf ppf "%s cores=(%d,%d) seed=%d trials=%d" t.cfg.Armb_cpu.Config.name a b t.seed
    t.trials
