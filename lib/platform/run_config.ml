type t = {
  cfg : Armb_cpu.Config.t;
  cores : int * int;
  seed : int;
  trials : int;
}

let default_cores (cfg : Armb_cpu.Config.t) =
  let n = Armb_mem.Topology.num_cores cfg.topo in
  (0, n / 2)

let make ?cores ?(seed = 42) ?(trials = 300) cfg =
  let cores = match cores with Some c -> c | None -> default_cores cfg in
  let a, b = cores in
  let n = Armb_mem.Topology.num_cores cfg.topo in
  if a < 0 || b < 0 || a >= n || b >= n then
    invalid_arg
      (Printf.sprintf "Run_config.make: cores (%d,%d) outside 0..%d of %s" a b (n - 1) cfg.name);
  if a = b then invalid_arg "Run_config.make: the two threads must bind to distinct cores";
  if seed < 0 then invalid_arg "Run_config.make: seed must be non-negative";
  if trials <= 0 then invalid_arg "Run_config.make: trials must be positive";
  { cfg; cores; seed; trials }

let core_list t =
  let a, b = t.cores in
  [ a; b ]

let pp ppf t =
  let a, b = t.cores in
  Format.fprintf ppf "%s cores=(%d,%d) seed=%d trials=%d" t.cfg.Armb_cpu.Config.name a b t.seed
    t.trials
