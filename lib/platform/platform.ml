module Topology = Armb_mem.Topology
module Latency = Armb_mem.Latency
module Config = Armb_cpu.Config

let kunpeng916 : Config.t =
  {
    name = "kunpeng916";
    freq_ghz = 2.4;
    (* 2 sockets x 32 cores; model each socket as 8 clusters of 4 (CCL
       granularity) behind one bi-section boundary.  61 usable cores
       would exceed the sharer-bitmask bound with 64, so we model 2x28
       (7 clusters); benchmark placements never ask for more than 56
       cores. *)
    topo = Topology.make ~nodes:2 ~clusters_per_node:7 ~cores_per_cluster:4;
    lat =
      {
        l1_hit = 2;
        same_cluster = 10;
        same_node = 10;
        cross_node = 62;
        dram = 90;
        bisection_rt = 5;
        domain_rt = 320;
        rmw_extra = 6;
      };
    alu_ipc = 10;
    rob_size = 32;
    sb_size = 24;
    isb_cost = 35;
    dmb_min = 2;
    stlr_extra = 70;
    quantum = 64;
  }

let kirin960 : Config.t =
  {
    name = "kirin960";
    freq_ghz = 2.1;
    topo = Topology.heterogeneous ~nodes:1 ~cluster_sizes:[ 4; 4 ];
    lat =
      {
        l1_hit = 2;
        same_cluster = 7;
        same_node = 24;
        cross_node = 60;
        (* unused: single node *)
        dram = 80;
        bisection_rt = 3;
        domain_rt = 90;
        rmw_extra = 5;
      };
    alu_ipc = 3;
    rob_size = 24;
    sb_size = 12;
    isb_cost = 14;
    dmb_min = 1;
    stlr_extra = 0;
    quantum = 64;
  }

let kirin970 : Config.t =
  {
    kirin960 with
    name = "kirin970";
    freq_ghz = 2.36;
    lat = { kirin960.lat with same_cluster = 6; domain_rt = 80 };
  }

let raspberrypi4 : Config.t =
  {
    name = "raspberrypi4";
    freq_ghz = 1.5;
    topo = Topology.make ~nodes:1 ~clusters_per_node:1 ~cores_per_cluster:4;
    lat =
      {
        l1_hit = 2;
        same_cluster = 9;
        same_node = 20;
        cross_node = 60;
        dram = 70;
        bisection_rt = 4;
        domain_rt = 110;
        rmw_extra = 5;
      };
    alu_ipc = 3;
    rob_size = 24;
    sb_size = 10;
    isb_cost = 16;
    dmb_min = 1;
    stlr_extra = 25;
    quantum = 64;
  }

(* Scaled-out Kunpeng-flavoured machine for the many-core barrier
   study: clusters of 8 cores, up to 8 clusters per NUMA node, as many
   nodes as the core count needs.  Latencies and core resources are the
   kunpeng916 numbers — the study varies the sharer-set width and the
   synchronization pattern, not the per-hop cost model. *)

let manycore_min = 8
let manycore_max = Topology.max_cores

let manycore_shape cores =
  if cores < manycore_min || cores > manycore_max then
    Error
      (Printf.sprintf "manycore size %d outside %d..%d (Topology.max_cores)" cores
         manycore_min manycore_max)
  else if cores mod 8 <> 0 then
    Error (Printf.sprintf "manycore size %d is not a multiple of 8 (one cluster)" cores)
  else begin
    let nodes = max 1 (cores / 64) in
    if cores mod (8 * nodes) <> 0 then
      Error
        (Printf.sprintf
           "manycore size %d does not split into %d uniform NUMA nodes of whole clusters"
           cores nodes)
    else Ok (nodes, cores / (8 * nodes))
  end

let manycore ~cores : Config.t =
  match manycore_shape cores with
  | Error m -> invalid_arg ("Platform.manycore: " ^ m)
  | Ok (nodes, clusters_per_node) ->
    {
      kunpeng916 with
      name = Printf.sprintf "manycore%d" cores;
      topo = Topology.make ~nodes ~clusters_per_node ~cores_per_cluster:8;
    }

let all = [ kunpeng916; kirin960; kirin970; raspberrypi4 ]

let by_name s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun (c : Config.t) -> String.lowercase_ascii c.name = s) all

let names = List.map (fun (c : Config.t) -> c.name) all

type placement = { label : string; cfg : Config.t; cores : int list }

let big_cluster_cores (cfg : Config.t) = Topology.cores_of_cluster cfg.topo 0

let comm_pairs =
  [
    { label = "Kunpeng916 Same Node"; cfg = kunpeng916; cores = [ 0; 4 ] };
    {
      label = "Kunpeng916 Cross Nodes";
      cfg = kunpeng916;
      cores = [ 0; Topology.num_cores kunpeng916.topo / 2 ];
    };
    { label = "Kirin960"; cfg = kirin960; cores = [ 0; 1 ] };
    { label = "Kirin970"; cfg = kirin970; cores = [ 0; 1 ] };
    { label = "Raspberry Pi 4"; cfg = raspberrypi4; cores = [ 0; 1 ] };
  ]
