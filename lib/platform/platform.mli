(** Calibrated simulator configurations for the paper's four target
    platforms (Table 2).

    Calibration method: resource sizes come from published
    micro-architecture data (Cortex-A72/A73, TaiShan/Hi1616); latency
    and boundary round trips are fitted so that the no-barrier baselines
    and the relative barrier costs of the paper's Figures 2/3/5 are
    approximated (see EXPERIMENTS.md for paper-vs-measured deltas).
    The server part has a deep interconnect (large domain round trip,
    expensive cross-node transfers); the mobile parts have a shallow bus
    where barrier-cost variation is compressed — the contrast behind
    Observation 4. *)

val kunpeng916 : Armb_cpu.Config.t
(** 2 NUMA nodes x 32 Cortex-A72 cores at 2.4 GHz (Hydra interface). *)

val kirin960 : Armb_cpu.Config.t
(** big.LITTLE 4xA73 + 4xA53 at 2.1 GHz on CCI-550; experiments bind to
    the big cluster (cores 0-3). *)

val kirin970 : Armb_cpu.Config.t
(** Same layout as Kirin 960 at 2.36 GHz. *)

val raspberrypi4 : Armb_cpu.Config.t
(** 4xA72 at 1.5 GHz, single cluster. *)

val manycore : cores:int -> Armb_cpu.Config.t
(** Scaled-out server machine for the many-core barrier study: clusters
    of 8 kunpeng916-calibrated cores, up to 8 clusters per NUMA node,
    nodes added as the count grows (so 512 = 8 nodes x 8 clusters x 8
    cores).  [cores] must be a multiple of 8 within
    [{!manycore_min} .. {!manycore_max}] that splits into uniform
    nodes; raises [Invalid_argument] with a sizing hint otherwise (use
    {!manycore_shape} to validate without raising). *)

val manycore_shape : int -> (int * int, string) result
(** [manycore_shape cores] is [Ok (nodes, clusters_per_node)] when the
    size is valid for {!manycore}, or [Error message] — front ends use
    it to reject bad [--cores]/sweep sizes early with a clear message
    instead of a deep topology failure. *)

val manycore_min : int
val manycore_max : int
(** Smallest / largest valid {!manycore} size ([manycore_max] equals
    [Armb_mem.Topology.max_cores]). *)

val all : Armb_cpu.Config.t list

val by_name : string -> Armb_cpu.Config.t option
(** Case-insensitive lookup ("kunpeng916", "kirin960", ...). *)

val names : string list

(** {2 Standard thread placements used throughout the benches} *)

type placement = {
  label : string;
  cfg : Armb_cpu.Config.t;
  cores : int list;  (** cores to bind communicating threads to, in order *)
}

val comm_pairs : placement list
(** The five two-thread configurations of Figures 3/5/6: kunpeng916
    same-node, kunpeng916 cross-node, kirin960 big cluster, kirin970 big
    cluster, raspberry pi 4. *)

val big_cluster_cores : Armb_cpu.Config.t -> int list
(** Cores of cluster 0 (the big cluster on big.LITTLE parts). *)
