(* Fixed-capacity dense bit sets over per-core operation indices.  The
   sanitizer's ordered-before sets are unions of arbitrary earlier ops
   (barrier-induced order leaves gaps), so a scalar watermark per core is
   not enough — each set is a small bitmap instead. *)

type t = Bytes.t

let create ~cap = Bytes.make ((cap + 7) lsr 3) '\000'

let copy = Bytes.copy

let add b i =
  let byte = i lsr 3 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl (i land 7))))

let mem b i =
  let byte = i lsr 3 in
  byte < Bytes.length b && Char.code (Bytes.get b byte) land (1 lsl (i land 7)) <> 0

let union dst src =
  let n = min (Bytes.length dst) (Bytes.length src) in
  for i = 0 to n - 1 do
    let o = Char.code (Bytes.get dst i) lor Char.code (Bytes.get src i) in
    Bytes.set dst i (Char.chr o)
  done

(* Set every bit in [0, n): the "everything earlier" prefix used by
   release stores and full barriers. *)
let add_below b n =
  let full = n lsr 3 in
  Bytes.fill b 0 full '\xff';
  let rest = n land 7 in
  if rest > 0 then
    Bytes.set b full (Char.chr (Char.code (Bytes.get b full) lor ((1 lsl rest) - 1)))
