(** Fixed-capacity dense bit sets over per-core operation indices. *)

type t

val create : cap:int -> t
(** All-empty set able to hold indices [0, cap). *)

val copy : t -> t
val add : t -> int -> unit
val mem : t -> int -> bool
(** [mem b i] is [false] for any [i] beyond the capacity. *)

val union : t -> t -> unit
(** [union dst src] adds every member of [src] to [dst]. *)

val add_below : t -> int -> unit
(** [add_below b n] adds every index in [0, n). *)
