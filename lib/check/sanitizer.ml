(* Dynamic happens-before sanitizer.

   Consumes the Observe event stream of a simulated run and reports
   ordering bugs as racy pairs: two same-core accesses (a po-before b)
   that are NOT ordered by any preserved-program-order device (barrier,
   acquire/release, dependency, same-address po-loc) yet sit on a
   communication cycle through other cores — the Shasha/Snir condition
   under which the pair's reordering is observable by a peer.

   The engine keeps, per core, one ordered-before set per operation
   (a set-valued clock over that core's op indices): the transitive
   closure of every ordering edge the architecture preserves.  Barriers
   fold class closures into the running gates exactly as DMB/DSB/LD/ST
   variants do in hardware; coherence order per location enters through
   the po-loc rule and through the conflict edges of the cycle search,
   and the timing model's commit/sample timestamps let a finding be
   tagged as actually witnessed (completion order inverted in this run)
   versus merely possible. *)

module Observe = Armb_cpu.Observe
module Barrier = Armb_cpu.Barrier

type access = Read | Write | Update

type op = {
  op_core : int;
  op_seq : int;
  op_access : access;
  op_addr : int;
  op_issued : int;
  op_completes : int;
}

type finding = {
  core : int;
  first : op;
  second : op;
  chain : op list;
  witnessed : bool;
  fix : string;
  context : (int * string list) list;
}

type cls = C_read | C_write | C_update | C_fence

type ev = {
  seq : int;
  cls : cls;
  word : int; (* 8-byte word index; -1 for fences *)
  label : string;
  issued : int;
  completes : int;
  ord : Bitset.t; (* same-core seqs architecturally ordered before this op *)
}

type cstate = {
  core_id : int;
  mutable evs : ev array;
  mutable n : int;
  mutable acq_set : Bitset.t; (* ordered before every subsequent op *)
  mutable st_set : Bitset.t; (* ordered before every subsequent store *)
  mutable loads_cl : Bitset.t; (* closure of the loads recorded so far *)
  mutable stores_cl : Bitset.t; (* closure of the stores recorded so far *)
  last_word : (int, int) Hashtbl.t; (* word -> seq of last access (po-loc) *)
  mutable dropped : int;
}

type t = {
  cores : (int, cstate) Hashtbl.t;
  max_ops : int;
  ctx : int;
}

let create ?(max_ops_per_core = 4096) ?(context = 5) () =
  { cores = Hashtbl.create 8; max_ops = max_ops_per_core; ctx = context }

let state t core =
  match Hashtbl.find_opt t.cores core with
  | Some c -> c
  | None ->
    let c =
      {
        core_id = core;
        evs = Array.make 16 (Obj.magic 0 : ev);
        n = 0;
        acq_set = Bitset.create ~cap:t.max_ops;
        st_set = Bitset.create ~cap:t.max_ops;
        loads_cl = Bitset.create ~cap:t.max_ops;
        stores_cl = Bitset.create ~cap:t.max_ops;
        last_word = Hashtbl.create 16;
        dropped = 0;
      }
    in
    Hashtbl.add t.cores core c;
    c

let push c ev =
  if c.n = Array.length c.evs then begin
    let bigger = Array.make (2 * c.n) ev in
    Array.blit c.evs 0 bigger 0 c.n;
    c.evs <- bigger
  end;
  c.evs.(c.n) <- ev;
  c.n <- c.n + 1

let word_of addr = addr lsr 3

let record t (e : Observe.event) =
  let c = state t e.core in
  if c.n >= t.max_ops || c.dropped > 0 then c.dropped <- c.dropped + 1
  else begin
    let seq = c.n in
    let label =
      if Observe.is_access e.kind then
        Printf.sprintf "%s 0x%x" (Observe.kind_to_string e.kind) e.addr
      else Observe.kind_to_string e.kind
    in
    match e.kind with
    | Observe.Fence b ->
      (match b with
      | Barrier.Dmb Barrier.Full | Barrier.Dsb Barrier.Full ->
        Bitset.add_below c.acq_set seq
      | Barrier.Dmb Barrier.Ld | Barrier.Dsb Barrier.Ld ->
        Bitset.union c.acq_set c.loads_cl
      | Barrier.Dmb Barrier.St | Barrier.Dsb Barrier.St ->
        Bitset.union c.st_set c.stores_cl
      (* ISB only appears in litmus programs as the ctrl+ISB idiom (a
         branch on a loaded value then ISB), and the timing model's
         pipeline refetch waits for prior loads to retire: credit it
         with DMB ld's force — prior loads ordered before everything. *)
      | Barrier.Isb -> Bitset.union c.acq_set c.loads_cl);
      push c
        {
          seq;
          cls = C_fence;
          word = -1;
          label;
          issued = e.issued_at;
          completes = e.completes_at;
          ord = Bitset.create ~cap:0;
        }
    | Observe.Load _ | Observe.Store _ | Observe.Rmw _ ->
      let cls, acquire, release =
        match e.kind with
        | Observe.Load { acquire } -> (C_read, acquire, false)
        | Observe.Store { release } -> (C_write, false, release)
        | Observe.Rmw { acq; rel } -> (C_update, acq, rel)
        | Observe.Fence _ -> assert false
      in
      let word = word_of e.addr in
      let ord = Bitset.copy c.acq_set in
      (match cls with
      | C_write | C_update -> Bitset.union ord c.st_set
      | C_read | C_fence -> ());
      if release then Bitset.add_below ord seq
      else begin
        (* po-loc: program order to the same address is preserved. *)
        (match Hashtbl.find_opt c.last_word word with
        | Some k ->
          Bitset.add ord k;
          Bitset.union ord c.evs.(k).ord
        | None -> ());
        List.iter
          (fun d ->
            if d >= 0 && d < c.n then begin
              Bitset.add ord d;
              Bitset.union ord c.evs.(d).ord
            end)
          e.deps
      end;
      let self = Bitset.copy ord in
      Bitset.add self seq;
      if acquire then Bitset.union c.acq_set self;
      (match cls with
      | C_read -> Bitset.union c.loads_cl self
      | C_write -> Bitset.union c.stores_cl self
      | C_update ->
        Bitset.union c.loads_cl self;
        Bitset.union c.stores_cl self
      | C_fence -> ());
      Hashtbl.replace c.last_word word seq;
      push c { seq; cls; word; label; issued = e.issued_at; completes = e.completes_at; ord }
  end

let observer t : Observe.t = record t

let truncated t = Hashtbl.fold (fun _ c acc -> acc || c.dropped > 0) t.cores false

(* ---------- Analysis ---------- *)

let is_access ev = ev.cls <> C_fence

let conflicts a b =
  a.word >= 0 && a.word = b.word && not (a.cls = C_read && b.cls = C_read)

let access_of_cls = function
  | C_read -> Read
  | C_write -> Write
  | C_update -> Update
  | C_fence -> assert false

let op_of (c : cstate) ev =
  {
    op_core = c.core_id;
    op_seq = ev.seq;
    op_access = access_of_cls ev.cls;
    op_addr = ev.word lsl 3;
    op_issued = ev.issued;
    op_completes = ev.completes;
  }

let fix_for a b =
  match (a.cls, b.cls) with
  | C_write, C_write ->
    "insert `dmb st` between the two stores (or make the second a store-release `stlr`; \
     if payload and flag fit one aligned 64-bit word, merge them into a single store and \
     piggyback on Pilot single-copy atomicity)"
  | C_read, C_read ->
    "insert `dmb ld` between the two loads (or make the first a load-acquire `ldar`, or \
     carry an address dependency into the second load)"
  | C_read, C_write ->
    "insert `dmb ld` after the load (or make the store's address/data depend on the \
     loaded value)"
  | C_write, C_read ->
    "insert a full `dmb` — only a full barrier orders an earlier store before a later load"
  | (C_update, _ | _, C_update) ->
    "give the atomic update acquire/release ordering (`rmw ~acq ~rel`) or insert a full \
     `dmb`"
  | _ -> assert false

(* Conflict index: word -> accesses of that word across all cores. *)
let build_word_index t =
  let idx : (int, (cstate * ev) list ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ c ->
      for i = 0 to c.n - 1 do
        let ev = c.evs.(i) in
        if is_access ev then begin
          match Hashtbl.find_opt idx ev.word with
          | Some l -> l := (c, ev) :: !l
          | None -> Hashtbl.add idx ev.word (ref [ (c, ev) ])
        end
      done)
    t.cores;
  idx

(* Is some event conflicting with [a] reachable from [b] through other
   cores, alternating conflict edges with (full) program order?  If so,
   a peer can observe [b] before [a] — the unfenced pair (a, b) is on a
   communication cycle.  Reachability per remote core is summarised by
   the minimum reached index: program order makes every later op of
   that core reachable too. *)
let cycle_back word_index ~anchor_core ~(a : ev) ~(b : ev) =
  let minreach : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let first_hop = ref None in
  let work = Queue.create () in
  let reach ?via (c2 : cstate) (ev2 : ev) =
    let cur = Option.value ~default:max_int (Hashtbl.find_opt minreach c2.core_id) in
    if ev2.seq < cur then begin
      Hashtbl.replace minreach c2.core_id ev2.seq;
      Queue.push (c2, ev2.seq, cur) work;
      match via with Some _ when !first_hop = None -> first_hop := via | _ -> ()
    end
  in
  (match Hashtbl.find_opt word_index b.word with
  | Some l ->
    List.iter
      (fun (c2, ev2) ->
        if c2.core_id <> anchor_core && conflicts b ev2 then reach ~via:(c2, ev2) c2 ev2)
      !l
  | None -> ());
  let found = ref None in
  while !found = None && not (Queue.is_empty work) do
    let c2, lo, hi = Queue.pop work in
    let stop = min hi c2.n in
    (* Newly reachable segment [lo, stop) on core c2: follow its
       conflict edges outward and test for one closing back to [a]. *)
    let i = ref lo in
    while !found = None && !i < stop do
      let ev2 = c2.evs.(!i) in
      if is_access ev2 then begin
        if conflicts ev2 a then found := Some (c2, ev2)
        else
          match Hashtbl.find_opt word_index ev2.word with
          | Some l ->
            List.iter
              (fun (c3, ev3) ->
                if c3.core_id <> anchor_core && c3.core_id <> c2.core_id
                   && conflicts ev2 ev3 then
                  reach c3 ev3)
              !l
          | None -> ()
      end;
      incr i
    done
  done;
  match !found with
  | None -> None
  | Some (cz, z) ->
    let chain =
      match !first_hop with
      | Some (cf, f) when not (cf.core_id = cz.core_id && f.seq = z.seq) ->
        [ op_of cf f; op_of cz z ]
      | _ -> [ op_of cz z ]
    in
    Some chain

let context_for t (f : finding) =
  let cores =
    List.sort_uniq compare
      (f.core :: List.map (fun o -> o.op_core) f.chain)
  in
  List.filter_map
    (fun core ->
      match Hashtbl.find_opt t.cores core with
      | None -> None
      | Some c ->
        let upto =
          if core = f.core then f.second.op_seq
          else
            List.fold_left
              (fun acc o -> if o.op_core = core then max acc o.op_seq else acc)
              (c.n - 1) f.chain
        in
        let lo = max 0 (upto - t.ctx + 1) in
        let lines =
          List.init (upto - lo + 1) (fun i ->
              let ev = c.evs.(lo + i) in
              Printf.sprintf "[%d] %s @%d..%d" ev.seq ev.label ev.issued ev.completes)
        in
        Some (core, lines))
    cores

let signature (f : finding) =
  let acc = function Read -> "R" | Write -> "W" | Update -> "U" in
  Printf.sprintf "%d:%s@0x%x->%s@0x%x" f.core
    (acc f.first.op_access) f.first.op_addr
    (acc f.second.op_access) f.second.op_addr

let findings t =
  let word_index = build_word_index t in
  let out = ref [] in
  let seen = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (c : cstate) ->
      for j = 0 to c.n - 1 do
        let b = c.evs.(j) in
        if is_access b then
          for i = 0 to j - 1 do
            let a = c.evs.(i) in
            if is_access a && not (Bitset.mem b.ord i) then begin
              (* quick dedup before the (costlier) cycle search *)
              let key = (c.core_id, a.cls, a.word, b.cls, b.word) in
              if not (Hashtbl.mem seen key) then begin
                match cycle_back word_index ~anchor_core:c.core_id ~a ~b with
                | None -> ()
                | Some chain ->
                  Hashtbl.add seen key ();
                  let f =
                    {
                      core = c.core_id;
                      first = op_of c a;
                      second = op_of c b;
                      chain;
                      witnessed = b.completes < a.completes;
                      fix = fix_for a b;
                      context = [];
                    }
                  in
                  out := { f with context = context_for t f } :: !out
              end
            end
          done
      done)
    t.cores;
  List.sort
    (fun f g -> compare (f.core, f.first.op_seq, f.second.op_seq)
        (g.core, g.first.op_seq, g.second.op_seq))
    !out

let clean t = findings t = []

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "ld"
  | Write -> Format.pp_print_string ppf "st"
  | Update -> Format.pp_print_string ppf "rmw"

let pp_op ppf o =
  Format.fprintf ppf "core %d: %a 0x%x [op %d, completes @%d]" o.op_core pp_access
    o.op_access o.op_addr o.op_seq o.op_completes

let pp_finding ppf f =
  Format.fprintf ppf "@[<v>racy pair on core %d%s:@,  %a@,  %a@," f.core
    (if f.witnessed then " (reordering witnessed in this run)" else "")
    pp_op f.first pp_op f.second;
  List.iter (fun o -> Format.fprintf ppf "  observable via %a@," pp_op o) f.chain;
  Format.fprintf ppf "  fix: %s@," f.fix;
  List.iter
    (fun (core, lines) ->
      Format.fprintf ppf "  recent ops, core %d:@," core;
      List.iter (fun l -> Format.fprintf ppf "    %s@," l) lines)
    f.context;
  Format.fprintf ppf "@]"
