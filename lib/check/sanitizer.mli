(** Dynamic happens-before sanitizer over the simulator's event stream.

    Plug {!observer} into [Armb_cpu.Machine.create ?observer] (or a bare
    [Core.make]); after the run, {!findings} reports every same-core
    program-order pair of accesses that no architectural device (barrier,
    acquire/release, dependency, same-address coherence) keeps ordered
    {i and} that sits on a communication cycle through other cores — the
    Shasha/Snir condition under which the reordering is observable.
    Detection is value-agnostic: a racy pair is flagged even on runs
    where the timing model happened to execute it in order. *)

type access = Read | Write | Update

type op = {
  op_core : int;
  op_seq : int;  (** per-core program-order index *)
  op_access : access;
  op_addr : int;  (** word-aligned address *)
  op_issued : int;
  op_completes : int;  (** simulated commit/sample time *)
}

type finding = {
  core : int;  (** core whose unfenced pair this is *)
  first : op;
  second : op;  (** po-later access not ordered after [first] *)
  chain : op list;  (** remote accesses closing the cycle *)
  witnessed : bool;  (** completion order actually inverted this run *)
  fix : string;  (** suggested minimal repair *)
  context : (int * string list) list;  (** last ops per involved core *)
}

type t

val create : ?max_ops_per_core:int -> ?context:int -> unit -> t
(** [max_ops_per_core] bounds memory; recording beyond it is dropped and
    {!truncated} becomes [true].  [context] is how many trailing ops per
    involved core a finding carries. *)

val observer : t -> Armb_cpu.Observe.t
(** The hook to pass to [Machine.create ?observer]. *)

val findings : t -> finding list
(** Analyse the recorded run.  Findings are deduplicated by
    (core, access kinds, addresses) and sorted by core and program
    order. *)

val clean : t -> bool
(** [clean t] iff {!findings} is empty. *)

val truncated : t -> bool
(** True when the per-core op bound was hit — results may be partial. *)

val signature : finding -> string
(** Stable key for deduplicating findings across trials. *)

val pp_finding : Format.formatter -> finding -> unit
