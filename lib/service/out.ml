(* Shared file-output helper: every artifact writer in the tree (the
   CLI's --out/--metrics-out plumbing, the soak driver's rolling
   snapshots and violation bundles) funnels through here so parent
   directories are created once, failures surface as one consistent
   error value, and the write is atomic: the text lands in a sibling
   temp file first and renames into place, so a reader polling the
   rolling artifact never observes a torn half-written JSON. *)

let rec ensure_dir d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let write ~path text =
  match
    ensure_dir (Filename.dirname path);
    (* same directory as the target so the rename cannot cross a
       filesystem boundary (rename is atomic only within one) *)
    let tmp =
      Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
    in
    let oc = open_out tmp in
    (try
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc text)
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error m -> Error m
