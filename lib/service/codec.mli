(** NDJSON wire codec for the service.

    One request per line.  Common fields (all optional unless noted):
    ["id"] (string or number; defaults to the line number assigned by
    the caller), ["client"] (default "anon"), ["priority"]
    ("high"|"normal"|"low", default normal), ["platform"], ["cores"]
    ([[a,b]] array or "a,b" string), ["seed"], ["trials"] (run
    coordinates, decoded through {!Armb_platform.Run_config.of_kv}),
    ["fault"] (intensity in [0,1], default 0).

    Kind-specific fields (["kind"] is required):
    - ["litmus"] | ["check"] | ["fix"]: ["test"] — catalogue test name
      (case-insensitive).  ["fix"] also takes ["max_edits"] (default 3)
      and ["budget"] (default 4000).
    - ["model"]: ["mem_ops"] ("no-mem"|"st-st"|"ld-st"|"ld-ld"),
      ["approach"] (a {!Armb_core.Ordering.named} spelling),
      ["location"] (1|2), ["nops"], ["iters"].
    - ["ring"]: ["combo"] (Figure 6(a) legend name), ["messages"].
    - ["fuzz"]: ["tests"].

    Responses are one JSON object per line: ["id"], ["client"],
    ["status"] ("ok"|"shed"|"error"); ok responses add ["origin"]
    ("cold"|"hit"|"coalesced"), ["key"], ["wall_us"], ["events"],
    ["cycles"] and ["result"] (the canonical text rendering); shed adds
    ["retry_after_ms"]; error adds ["message"]. *)

val request_of_json :
  ?default_id:string -> Json.t -> (Engine.request, string) result

val request_of_line :
  ?default_id:string -> string -> (Engine.request, string) result
(** Parse + decode one NDJSON line. *)

val response_to_json : Engine.response -> Json.t
val response_to_line : Engine.response -> string
(** One line, no trailing newline. *)

val find_test : string -> Armb_litmus.Lang.test option
(** Case-insensitive catalogue lookup (shared with the CLI). *)
