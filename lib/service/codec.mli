(** NDJSON wire codec for the service.

    One request per line.  Common fields (all optional unless noted):
    ["id"] (string or number; defaults to the line number assigned by
    the caller), ["client"] (default "anon"), ["priority"]
    ("high"|"normal"|"low", default normal), ["platform"], ["cores"]
    ([[a,b]] array or "a,b" string), ["seed"], ["trials"] (run
    coordinates, decoded through {!Armb_platform.Run_config.of_kv}),
    ["fault"] (intensity in [0,1], default 0).

    Kind-specific fields (["kind"] is required):
    - ["litmus"] | ["check"] | ["fix"] | ["perturb"]: ["test"] —
      catalogue test name (case-insensitive) — or ["test_inline"], a
      full inline test object (see below).  ["fix"] also takes
      ["max_edits"] (default 3) and ["budget"] (default 4000);
      ["perturb"] also takes ["intensities"] (numbers in [0,1], default
      [[0.5]]) and ["plan_seeds"] (integers, default [[1]]).
    - ["model"]: ["mem_ops"] ("no-mem"|"st-st"|"ld-st"|"ld-ld"),
      ["approach"] (a {!Armb_core.Ordering.named} spelling),
      ["location"] (1|2), ["nops"], ["iters"].
    - ["ring"]: ["combo"] (Figure 6(a) legend name), ["messages"].
    - ["fuzz"]: ["tests"].
    - ["opt"]: ["program"] — an {!Armb_opt.Optimizer.find_input} name or
      an inline CFG program object — plus ["algorithm"] (default
      "second-chance") and ["unroll"] (default 2).

    {b Inline tests.}  The [interesting] closure cannot cross a process
    boundary, so ["test_inline"] carries ["interesting_when"] instead: a
    list of [[key, value]] pairs denoting a conjunction of equalities
    over outcome bindings (key ["1:r1"] = register r1 of thread 1, or
    ["mem:x"]); absent/empty means trivially false.  Other fields:
    ["name"], ["init"] ([[var, int]] pairs), ["threads"] (lists of
    instruction objects: [{op:"ld", var, reg, acquire?, addr_dep?}],
    [{op:"st", var, const | from_reg, release?, addr_dep?}],
    [{op:"fence", fence:"dmb"|"dmb.st"|"dmb.ld"|"dsb"|"ctrl+isb"}]),
    ["expect_tso"]/["expect_wmm"] (default false).

    {b Inline programs} mirror inline tests with per-thread ["entry"]
    and ["blocks"] ([{label, body, term}]; ["term"] is ["ret"],
    [{goto: label}] or [{branch: [reg, nonzero, zero]}]) and carry no
    predicate (always trivially false — [Opt] jobs compare outcome sets,
    never the predicate).

    Responses are one JSON object per line: ["id"], ["client"],
    ["status"] ("ok"|"shed"|"error"); ok responses add ["origin"]
    ("cold"|"hit"|"coalesced"), ["key"], ["wall_us"], ["events"],
    ["cycles"] and ["result"] (the canonical text rendering); shed adds
    ["retry_after_ms"]; error adds ["message"]. *)

val request_of_json :
  ?default_id:string -> Json.t -> (Engine.request, string) result

val request_of_line :
  ?default_id:string -> string -> (Engine.request, string) result
(** Parse + decode one NDJSON line. *)

val response_to_json : Engine.response -> Json.t
val response_to_line : Engine.response -> string
(** One line, no trailing newline. *)

val find_test : string -> Armb_litmus.Lang.test option
(** Case-insensitive catalogue lookup (shared with the CLI). *)

val test_inline_to_json :
  interesting_when:(string * int64) list -> Armb_litmus.Lang.test -> Json.t
(** Serialize a test for a ["test_inline"] field.  The caller supplies
    the declarative predicate — the closure itself cannot be serialized,
    so the emitter must know the conjunction it was built from (the soak
    generator does; pass [[]] for trivially-false fuzzer tests). *)

val test_inline_of_json : Json.t -> (Armb_litmus.Lang.test, string) result

val program_to_json : Armb_litmus.Cfg.program -> Json.t
val program_of_json : Json.t -> (Armb_litmus.Cfg.program, string) result
(** Inline CFG programs; parsing validates with {!Armb_litmus.Cfg.validate}
    and installs the trivially-false predicate. *)
