type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f ->
      (* keep the rendering valid JSON: no "nan"/"inf" tokens *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
      else Buffer.add_string b "null"
    | Str s -> escape_into b s
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          escape_into b k;
          Buffer.add_char b ':';
          go x)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Bad of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char b e;
          go ()
        | 'n' ->
          Buffer.add_char b '\n';
          go ()
        | 't' ->
          Buffer.add_char b '\t';
          go ()
        | 'r' ->
          Buffer.add_char b '\r';
          go ()
        | 'b' ->
          Buffer.add_char b '\b';
          go ()
        | 'f' ->
          Buffer.add_char b '\012';
          go ()
        | 'u' ->
          (* [int_of_string_opt "0x…"] accepted underscores inside the
             four "hex" digits; scan them strictly instead. *)
          let hex4 () =
            if !pos + 4 > n then fail "short \\u escape";
            let v = ref 0 in
            for _ = 1 to 4 do
              let d =
                match s.[!pos] with
                | '0' .. '9' as c -> Char.code c - Char.code '0'
                | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                | _ -> fail "bad \\u escape"
              in
              v := (!v lsl 4) lor d;
              advance ()
            done;
            !v
          in
          let code = hex4 () in
          (* a high surrogate must pair with a following low surrogate;
             the pair combines into one supplementary code point instead
             of two raw unpaired triplets *)
          let code =
            if code >= 0xD800 && code <= 0xDBFF then begin
              if
                !pos + 2 > n
                || s.[!pos] <> '\\'
                || s.[!pos + 1] <> 'u'
              then fail "unpaired high surrogate";
              pos := !pos + 2;
              let low = hex4 () in
              if low < 0xDC00 || low > 0xDFFF then fail "unpaired high surrogate";
              0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
            end
            else if code >= 0xDC00 && code <= 0xDFFF then
              fail "unpaired low surrogate"
            else code
          in
          (* UTF-8 encode the code point *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else if code < 0x10000 then begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end;
          go ()
        | _ -> fail "bad escape")
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  (* The JSON number grammar, checked explicitly: an optional minus, an
     integer part without leading zeros, an optional ".digits" fraction
     and an optional "[eE][+-]digits" exponent.  [int_of_string_opt]
     alone accepted "+5", "0x1f", "1_000" and leading zeros — none of
     which are JSON. *)
  let valid_number tok =
    let m = String.length tok in
    let p = ref 0 in
    let digits () =
      let start = !p in
      while !p < m && (match tok.[!p] with '0' .. '9' -> true | _ -> false) do
        incr p
      done;
      !p > start
    in
    let ok = ref true in
    if !p < m && tok.[!p] = '-' then incr p;
    (match if !p < m then Some tok.[!p] else None with
    | Some '0' -> incr p (* a leading 0 must stand alone *)
    | Some ('1' .. '9') -> ignore (digits ())
    | _ -> ok := false);
    if !ok && !p < m && tok.[!p] = '.' then begin
      incr p;
      if not (digits ()) then ok := false
    end;
    if !ok && !p < m && (tok.[!p] = 'e' || tok.[!p] = 'E') then begin
      incr p;
      if !p < m && (tok.[!p] = '+' || tok.[!p] = '-') then incr p;
      if not (digits ()) then ok := false
    end;
    !ok && !p = m
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if not (valid_number tok) then fail (Printf.sprintf "bad number %S" tok);
    let has_frac =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok
    in
    if has_frac then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        (* magnitude beyond the int range: keep the value, lose precision *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, p) -> Error (Printf.sprintf "json: %s at offset %d" msg p)

(* ---------- accessors ---------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let str = function Str s -> Some s | _ -> None

let int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let number = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

let bool = function Bool b -> Some b | _ -> None

let list = function List xs -> Some xs | _ -> None

let mem_str k j = Option.bind (member k j) str
let mem_int k j = Option.bind (member k j) int
let mem_number k j = Option.bind (member k j) number
