type priority = High | Normal | Low

let priority_of_string s =
  match String.lowercase_ascii s with
  | "high" -> Some High
  | "normal" -> Some Normal
  | "low" -> Some Low
  | _ -> None

let priority_to_string = function High -> "high" | Normal -> "normal" | Low -> "low"

let priority_index = function High -> 0 | Normal -> 1 | Low -> 2

type request = { id : string; client : string; priority : priority; job : Job.t }

type origin = Cold | Hit | Coalesced

type reply =
  | Result of { origin : origin; key : string; wall_us : int; result : Job.result }
  | Shed of { retry_after_ms : int }
  | Error of string

type response = { id : string; client : string; reply : reply }

(* One queued computation and everyone waiting on it.  [waiters] is in
   arrival order; the front is the request that created the computation
   (its response is [Cold]), the rest coalesced onto it.  A FIFO keeps
   absorbing a duplicate O(1); the old [waiters @ [req]] list append
   was quadratic on exactly the hot keys skewed traffic coalesces. *)
type computation = { key : string; job : Job.t; waiters : request Queue.t }

(* Per-(priority, client) FIFO lane.  [lanes] indexes every lane with
   queued work by client in O(1); [rotation] is the round-robin ring —
   a lane is enqueued when it gains its first computation and retired
   (dropped from both structures) once drained, so client churn cannot
   grow either structure past the number of clients with work in
   flight.  The old list-append registration ([lanes <- lanes @ [l]])
   was O(clients^2) and never freed a drained lane. *)
type lane = { client : string; jobs : computation Queue.t; mutable enqueued : bool }

type level = { lanes : (string, lane) Hashtbl.t; rotation : lane Queue.t }

type t = {
  cache : Job.result Cache.t option;
  queue_bound : int;
  coalesce : bool;
  by_key : (string, computation) Hashtbl.t;
  levels : level array;  (* indexed by priority_index *)
  mutable queued : int;  (* distinct queued computations *)
  metrics : Metrics.t;
  clock : Clock.t;
  mutable wall_us_total : int;  (* completed computation time, for retry hints *)
  mutable computations_done : int;
}

let create ?(cache_cap = 512) ?(queue_bound = 256) ?(no_cache = false) ?clock () =
  if queue_bound < 1 then invalid_arg "Engine.create: queue_bound must be >= 1";
  {
    cache = (if no_cache then None else Some (Cache.create ~cap:cache_cap));
    queue_bound;
    coalesce = not no_cache;
    by_key = Hashtbl.create 64;
    levels =
      Array.init 3 (fun _ -> { lanes = Hashtbl.create 64; rotation = Queue.create () });
    queued = 0;
    metrics = Metrics.create ();
    clock = (match clock with Some c -> c | None -> Clock.create ());
    wall_us_total = 0;
    computations_done = 0;
  }

let pending t = t.queued
let metrics t = t.metrics
let totals t = (t.computations_done, t.wall_us_total)

let retry_after_ms t =
  (* expected time to drain the current queue, from the mean completed
     computation cost; 50ms until we have measured anything *)
  if t.computations_done = 0 then 50
  else max 1 (t.queued * t.wall_us_total / t.computations_done / 1000)

let lane_for level client =
  match Hashtbl.find_opt level.lanes client with
  | Some l -> l
  | None ->
    let l = { client; jobs = Queue.create (); enqueued = false } in
    Hashtbl.replace level.lanes client l;
    l

let live_lanes t =
  Array.fold_left (fun acc level -> acc + Hashtbl.length level.lanes) 0 t.levels

let submit t (req : request) =
  Metrics.submitted t.metrics;
  match Job.key req.job with
  | exception e ->
    Metrics.failed t.metrics;
    Some { id = req.id; client = req.client; reply = Error (Printexc.to_string e) }
  | key -> (
    match Option.bind t.cache (fun c -> Cache.find c key) with
    | Some result ->
      Metrics.hit t.metrics;
      Some
        {
          id = req.id;
          client = req.client;
          reply = Result { origin = Hit; key; wall_us = 0; result };
        }
    | None -> (
      match (if t.coalesce then Hashtbl.find_opt t.by_key key else None) with
      | Some comp ->
        Metrics.coalesced t.metrics;
        Queue.push req comp.waiters;
        None
      | None ->
        if t.queued >= t.queue_bound then begin
          Metrics.shed t.metrics;
          Some
            {
              id = req.id;
              client = req.client;
              reply = Shed { retry_after_ms = retry_after_ms t };
            }
        end
        else begin
          Metrics.miss t.metrics;
          let comp = { key; job = req.job; waiters = Queue.create () } in
          Queue.push req comp.waiters;
          if t.coalesce then Hashtbl.replace t.by_key key comp;
          let level = t.levels.(priority_index req.priority) in
          let lane = lane_for level req.client in
          Queue.push comp lane.jobs;
          if not lane.enqueued then begin
            lane.enqueued <- true;
            Queue.push lane level.rotation
          end;
          t.queued <- t.queued + 1;
          Metrics.observe_queue_depth t.metrics t.queued;
          None
        end))

(* Pick the next computation: highest non-empty priority level, then
   round-robin over that level's lanes.  The rotation queue *is* the
   cursor: the served lane goes to the back (or retires when drained),
   so the next pick starts after the last lane served. *)
let next_computation t =
  let rec from_level li =
    if li >= Array.length t.levels then None
    else begin
      let level = t.levels.(li) in
      let rec scan () =
        match Queue.take_opt level.rotation with
        | None -> from_level (li + 1)
        | Some lane -> (
          match Queue.take_opt lane.jobs with
          | None ->
            (* drained while waiting its turn: retire, keep scanning *)
            lane.enqueued <- false;
            Hashtbl.remove level.lanes lane.client;
            scan ()
          | Some comp ->
            if Queue.is_empty lane.jobs then begin
              lane.enqueued <- false;
              Hashtbl.remove level.lanes lane.client
            end
            else Queue.push lane level.rotation;
            Some comp)
      in
      scan ()
    end
  in
  from_level 0

let execute t (comp : computation) =
  let t0 = Clock.now_us t.clock in
  let outcome = try Ok (Job.run comp.job) with e -> Result.Error e in
  let wall_us = Clock.elapsed_us t.clock ~since:t0 in
  if t.coalesce then Hashtbl.remove t.by_key comp.key;
  t.queued <- t.queued - 1;
  (* materialize the waiter FIFO once, in arrival order *)
  let waiters = List.of_seq (Queue.to_seq comp.waiters) in
  match outcome with
  | Ok result ->
    Option.iter (fun c -> Cache.put c comp.key result) t.cache;
    Metrics.record_latency_us t.metrics wall_us;
    Metrics.completed t.metrics (List.length waiters);
    Metrics.add_events t.metrics result.Job.events;
    t.wall_us_total <- t.wall_us_total + wall_us;
    t.computations_done <- t.computations_done + 1;
    List.mapi
      (fun i (req : request) ->
        let origin = if i = 0 then Cold else Coalesced in
        {
          id = req.id;
          client = req.client;
          reply = Result { origin; key = comp.key; wall_us; result };
        })
      waiters
  | Error e ->
    Metrics.failed t.metrics;
    let msg = Printexc.to_string e in
    List.map
      (fun (req : request) -> { id = req.id; client = req.client; reply = Error msg })
      waiters

let drain t =
  let rec go acc =
    match next_computation t with
    | None -> List.rev acc
    | Some comp -> go (List.rev_append (execute t comp) acc)
  in
  go []
