type priority = High | Normal | Low

let priority_of_string s =
  match String.lowercase_ascii s with
  | "high" -> Some High
  | "normal" -> Some Normal
  | "low" -> Some Low
  | _ -> None

let priority_to_string = function High -> "high" | Normal -> "normal" | Low -> "low"

let priority_index = function High -> 0 | Normal -> 1 | Low -> 2

type request = { id : string; client : string; priority : priority; job : Job.t }

type origin = Cold | Hit | Coalesced

type reply =
  | Result of { origin : origin; key : string; wall_us : int; result : Job.result }
  | Shed of { retry_after_ms : int }
  | Error of string

type response = { id : string; client : string; reply : reply }

(* One queued computation and everyone waiting on it.  [waiters] is in
   arrival order; the head is the request that created the computation
   (its response is [Cold]), the rest coalesced onto it. *)
type computation = { key : string; job : Job.t; mutable waiters : request list }

(* Per-(priority, client) FIFO lane.  Lanes are scanned round-robin
   within a priority level, starting after the last lane served. *)
type lane = { client : string; jobs : computation Queue.t }

type level = { mutable lanes : lane list; mutable cursor : int }

type t = {
  cache : Job.result Cache.t option;
  queue_bound : int;
  coalesce : bool;
  by_key : (string, computation) Hashtbl.t;
  levels : level array;  (* indexed by priority_index *)
  mutable queued : int;  (* distinct queued computations *)
  metrics : Metrics.t;
  mutable wall_us_total : int;  (* completed computation time, for retry hints *)
  mutable computations_done : int;
}

let create ?(cache_cap = 512) ?(queue_bound = 256) ?(no_cache = false) () =
  if queue_bound < 1 then invalid_arg "Engine.create: queue_bound must be >= 1";
  {
    cache = (if no_cache then None else Some (Cache.create ~cap:cache_cap));
    queue_bound;
    coalesce = not no_cache;
    by_key = Hashtbl.create 64;
    levels = Array.init 3 (fun _ -> { lanes = []; cursor = 0 });
    queued = 0;
    metrics = Metrics.create ();
    wall_us_total = 0;
    computations_done = 0;
  }

let pending t = t.queued
let metrics t = t.metrics

let retry_after_ms t =
  (* expected time to drain the current queue, from the mean completed
     computation cost; 50ms until we have measured anything *)
  if t.computations_done = 0 then 50
  else max 1 (t.queued * t.wall_us_total / t.computations_done / 1000)

let lane_for level client =
  match List.find_opt (fun l -> l.client = client) level.lanes with
  | Some l -> l
  | None ->
    let l = { client; jobs = Queue.create () } in
    level.lanes <- level.lanes @ [ l ];
    l

let submit t (req : request) =
  Metrics.submitted t.metrics;
  match Job.key req.job with
  | exception e ->
    Metrics.failed t.metrics;
    Some { id = req.id; client = req.client; reply = Error (Printexc.to_string e) }
  | key -> (
    match Option.bind t.cache (fun c -> Cache.find c key) with
    | Some result ->
      Metrics.hit t.metrics;
      Some
        {
          id = req.id;
          client = req.client;
          reply = Result { origin = Hit; key; wall_us = 0; result };
        }
    | None -> (
      match (if t.coalesce then Hashtbl.find_opt t.by_key key else None) with
      | Some comp ->
        Metrics.coalesced t.metrics;
        comp.waiters <- comp.waiters @ [ req ];
        None
      | None ->
        if t.queued >= t.queue_bound then begin
          Metrics.shed t.metrics;
          Some
            {
              id = req.id;
              client = req.client;
              reply = Shed { retry_after_ms = retry_after_ms t };
            }
        end
        else begin
          Metrics.miss t.metrics;
          let comp = { key; job = req.job; waiters = [ req ] } in
          if t.coalesce then Hashtbl.replace t.by_key key comp;
          let level = t.levels.(priority_index req.priority) in
          Queue.push comp (lane_for level req.client).jobs;
          t.queued <- t.queued + 1;
          Metrics.observe_queue_depth t.metrics t.queued;
          None
        end))

(* Pick the next computation: highest non-empty priority level, then
   round-robin over that level's lanes starting after the last served. *)
let next_computation t =
  let rec from_level li =
    if li >= Array.length t.levels then None
    else begin
      let level = t.levels.(li) in
      let lanes = Array.of_list level.lanes in
      let n = Array.length lanes in
      let rec scan k =
        if k >= n then from_level (li + 1)
        else begin
          let idx = (level.cursor + k) mod n in
          let lane = lanes.(idx) in
          match Queue.take_opt lane.jobs with
          | Some comp ->
            level.cursor <- (idx + 1) mod n;
            Some comp
          | None -> scan (k + 1)
        end
      in
      if n = 0 then from_level (li + 1) else scan 0
    end
  in
  from_level 0

let execute t (comp : computation) =
  let t0 = Unix.gettimeofday () in
  let outcome = try Ok (Job.run comp.job) with e -> Result.Error e in
  let wall_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  if t.coalesce then Hashtbl.remove t.by_key comp.key;
  t.queued <- t.queued - 1;
  let waiters = comp.waiters in
  match outcome with
  | Ok result ->
    Option.iter (fun c -> Cache.put c comp.key result) t.cache;
    Metrics.record_latency_us t.metrics wall_us;
    Metrics.completed t.metrics (List.length waiters);
    Metrics.add_events t.metrics result.Job.events;
    t.wall_us_total <- t.wall_us_total + wall_us;
    t.computations_done <- t.computations_done + 1;
    List.mapi
      (fun i (req : request) ->
        let origin = if i = 0 then Cold else Coalesced in
        {
          id = req.id;
          client = req.client;
          reply = Result { origin; key = comp.key; wall_us; result };
        })
      waiters
  | Error e ->
    Metrics.failed t.metrics;
    let msg = Printexc.to_string e in
    List.map
      (fun (req : request) -> { id = req.id; client = req.client; reply = Error msg })
      waiters

let drain t =
  let rec go acc =
    match next_computation t with
    | None -> List.rev acc
    | Some comp -> go (List.rev_append (execute t comp) acc)
  in
  go []
