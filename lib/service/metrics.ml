module Stats = Armb_sim.Stats

type t = {
  submitted : Stats.Counter.t;
  hits : Stats.Counter.t;
  misses : Stats.Counter.t;
  coalesced : Stats.Counter.t;
  shed : Stats.Counter.t;
  failed : Stats.Counter.t;
  completed : Stats.Counter.t;
  events : Stats.Counter.t;
  mutable queue_depth_peak : int;
  (* 1ms buckets x 4096: sub-millisecond jobs land in bucket 0, multi-
     second synthesis jobs in the overflow slot, which reports the
     largest recorded sample rather than a fictitious edge. *)
  latency : Stats.Histogram.t;
  mutable latency_n : int;
}

let create () =
  {
    submitted = Stats.Counter.create ();
    hits = Stats.Counter.create ();
    misses = Stats.Counter.create ();
    coalesced = Stats.Counter.create ();
    shed = Stats.Counter.create ();
    failed = Stats.Counter.create ();
    completed = Stats.Counter.create ();
    events = Stats.Counter.create ();
    queue_depth_peak = 0;
    latency = Stats.Histogram.create ~bucket_width:1000 ~buckets:4096;
    latency_n = 0;
  }

let submitted t = Stats.Counter.incr t.submitted
let hit t = Stats.Counter.incr t.hits
let miss t = Stats.Counter.incr t.misses
let coalesced t = Stats.Counter.incr t.coalesced
let shed t = Stats.Counter.incr t.shed
let failed t = Stats.Counter.incr t.failed
let completed t n = Stats.Counter.add t.completed n

let record_latency_us t us =
  Stats.Histogram.add t.latency (max 0 us);
  t.latency_n <- t.latency_n + 1

let observe_queue_depth t d = if d > t.queue_depth_peak then t.queue_depth_peak <- d

let add_events t n = Stats.Counter.add t.events n

(* Fold one shard's metrics into an aggregate.  Counters add; queue
   depth peaks take the max (per-shard queues are independent); the
   latency histograms merge bucket-by-bucket so the aggregate p50/p99
   reflect every shard's computations. *)
let merge_into ~dst src =
  let addc get = Stats.Counter.add (get dst) (Stats.Counter.get (get src)) in
  addc (fun m -> m.submitted);
  addc (fun m -> m.hits);
  addc (fun m -> m.misses);
  addc (fun m -> m.coalesced);
  addc (fun m -> m.shed);
  addc (fun m -> m.failed);
  addc (fun m -> m.completed);
  addc (fun m -> m.events);
  if src.queue_depth_peak > dst.queue_depth_peak then
    dst.queue_depth_peak <- src.queue_depth_peak;
  Stats.Histogram.merge_into ~dst:dst.latency src.latency;
  dst.latency_n <- dst.latency_n + src.latency_n

let counts t =
  [
    ("submitted", Stats.Counter.get t.submitted);
    ("hits", Stats.Counter.get t.hits);
    ("misses", Stats.Counter.get t.misses);
    ("coalesced", Stats.Counter.get t.coalesced);
    ("shed", Stats.Counter.get t.shed);
    ("failed", Stats.Counter.get t.failed);
    ("completed", Stats.Counter.get t.completed);
    ("queue_depth_peak", t.queue_depth_peak);
    ("events", Stats.Counter.get t.events);
  ]

let get t name = match List.assoc_opt name (counts t) with Some n -> n | None -> 0

let latency_us t =
  if t.latency_n = 0 then (0, 0)
  else
    ( Stats.Histogram.percentile t.latency 0.50,
      Stats.Histogram.percentile t.latency 0.99 )

let hit_rate t =
  let h = float_of_int (Stats.Counter.get t.hits) in
  let denom =
    h
    +. float_of_int (Stats.Counter.get t.misses)
    +. float_of_int (Stats.Counter.get t.coalesced)
  in
  if denom <= 0. then 0. else h /. denom

let to_json t =
  let p50, p99 = latency_us t in
  Json.Obj
    ([ ("schema", Json.Str "armb-serve-metrics-v1") ]
    @ List.map (fun (k, v) -> (k, Json.Int v)) (counts t)
    @ [
        ("latency_p50_us", Json.Int p50);
        ("latency_p99_us", Json.Int p99);
        ("hit_rate", Json.Float (hit_rate t));
      ])

let pp ppf t =
  let p50, p99 = latency_us t in
  Format.fprintf ppf "@[<v>service metrics:@,";
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-18s %d@," k v) (counts t);
  Format.fprintf ppf "  %-18s %.3f@," "hit_rate" (hit_rate t);
  Format.fprintf ppf "  %-18s p50=%dus p99=%dus@]" "latency" p50 p99
