(** Front ends over {!Engine}: the NDJSON streaming loop behind
    [armb serve], the one-shot batch runner behind [armb serve --batch]
    / [armb batch], the deterministic duplicate-heavy demo batch the CI
    smoke and the perf harness share, and the warm-vs-cold comparison
    that verifies the cache instead of trusting it. *)

val serve :
  ?drain_every:int ->
  ?max_requests:int ->
  ?duration_s:float ->
  Engine.t ->
  in_channel ->
  out_channel ->
  unit
(** Streaming mode: read one JSON request per line, write one JSON
    response per line.  Immediate answers (hits, sheds, errors) are
    emitted as soon as the request is read; queued work is drained
    whenever [drain_every] (default 16) computations are pending and at
    end of input, so identical requests arriving close together
    coalesce.

    Termination: the loop stops reading at EOF, after [max_requests]
    accepted (non-blank) request lines, or once [duration_s] seconds of
    wall clock have elapsed (checked between lines — a request in
    flight is never abandoned), whichever comes first.  Shutdown drain
    semantics: stopping only stops {e reading}; every accepted request
    is drained to a response and flushed before return, and unread
    input is left unread — a bounded serve is a prefix of the unbounded
    one. *)

(** Matches drained responses back to input slots by request id (ids
    may repeat: each id keys a FIFO of slots).  Shared by {!run_batch}
    and the sharded workers ({!Shard}), so both enforce the same
    response-count conservation. *)
module Slot_map : sig
  type t

  val create : unit -> t

  val expect : t -> id:string -> slot:int -> unit
  (** Register a queued request's slot under its id. *)

  val resolve : t -> id:string -> int option
  (** Pop the oldest slot waiting under [id]; [None] means the response
      is an orphan (nothing in this batch asked for it). *)

  val pending : t -> int
  (** Slots still waiting for a response. *)

  val leftovers : t -> (string * int) list
  (** Unanswered (id, slot) pairs, in slot order. *)
end

val orphan_response : Engine.response -> Engine.response
(** Re-tag a drained response nothing was waiting for as an [Error] row
    (it can only mean the engine held work submitted outside the
    batch) — surfaced instead of silently dropped. *)

val unanswered_response : id:string -> Engine.response
(** The [Error] row standing in for a request the engine never
    answered. *)

type batch = {
  responses : Engine.response list;  (** in input order *)
  wall_s : float;  (** submit + drain time, monotonic, >= 0 *)
}

val run_batch : Engine.t -> lines:string list -> batch
(** One-shot mode: submit every request (admission control — shedding —
    applies at submit time, so a bounded queue sheds rather than
    stalls), then drain.  Blank lines are skipped; unparseable lines
    produce error responses.  Requests without an ["id"] get their
    1-based line number.

    Response-count conservation holds: every non-blank input line gets
    exactly one response row in input order, a drained response no slot
    was waiting for is appended as an [Error]-tagged row rather than
    dropped, and a slot the engine never answered becomes an [Error]
    row too — [List.length responses >= number of non-blank lines],
    with equality exactly when the engine started the batch empty. *)

val signature : Engine.response -> string * string
(** The identity-relevant projection of a response: (status, result
    text).  Wall time, retry hints and cache origin are excluded — two
    responses with equal signatures answer the request identically.
    Both the warm-vs-cold and the sharded-vs-single comparisons gate on
    it. *)

type comparison = {
  cold : batch;  (** computed by a [no_cache] engine: every request runs *)
  warm : batch;  (** computed by a caching engine: duplicates hit/coalesce *)
  cold_metrics : Metrics.t;
  warm_metrics : Metrics.t;
  identical : bool;  (** ok-response result texts agree request-by-request *)
  speedup : float;  (** cold wall / warm wall *)
}

val compare_cold :
  ?cache_cap:int -> ?queue_bound:int -> lines:string list -> unit -> comparison
(** Run the same batch through a cacheless engine and a caching engine
    and compare byte-for-byte — the determinism oracle for the memo
    cache, and the speedup measurement the CI gate asserts on. *)

val demo_requests : ?pool:int -> requests:int -> seed:int -> unit -> string list
(** A deterministic duplicate-heavy request batch: [requests] NDJSON
    lines drawn uniformly from a pool of [pool] (default 40) distinct
    jobs over the litmus catalogue, sanitizer, abstracted model, SPSC
    ring and fuzzer, spread over three clients and all three
    priorities.  With the defaults, at least half the lines duplicate
    an earlier one. *)

val zipf_requests :
  ?pool:int ->
  ?alpha:float ->
  ?clients:int ->
  requests:int ->
  seed:int ->
  unit ->
  string list
(** Production-shaped skewed traffic, fully deterministic in [seed]:
    job popularity follows a Zipf law over the demo pool (rank [r]
    with weight [r^-alpha], default [alpha = 1.1], so a handful of hot
    keys dominate — the coalescing/memoization stress case), and each
    request comes from one of [clients] (default 64) distinct client
    names so scheduler-lane registration churns.  Priorities mix as in
    {!demo_requests}. *)

val summary : batch -> Metrics.t -> string
(** Human summary table: totals by status/origin, hit rate, latency
    percentiles. *)
