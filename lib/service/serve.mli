(** Front ends over {!Engine}: the NDJSON streaming loop behind
    [armb serve], the one-shot batch runner behind [armb serve --batch]
    / [armb batch], the deterministic duplicate-heavy demo batch the CI
    smoke and the perf harness share, and the warm-vs-cold comparison
    that verifies the cache instead of trusting it. *)

val serve :
  ?drain_every:int -> Engine.t -> in_channel -> out_channel -> unit
(** Streaming mode: read one JSON request per line, write one JSON
    response per line.  Immediate answers (hits, sheds, errors) are
    emitted as soon as the request is read; queued work is drained
    whenever [drain_every] (default 16) computations are pending and at
    end of input, so identical requests arriving close together
    coalesce.  Returns on EOF with every response written and flushed
    (clean shutdown). *)

type batch = {
  responses : Engine.response list;  (** in input order *)
  wall_s : float;  (** submit + drain time for the whole batch *)
}

val run_batch : Engine.t -> lines:string list -> batch
(** One-shot mode: submit every request (admission control — shedding —
    applies at submit time, so a bounded queue sheds rather than
    stalls), then drain.  Blank lines are skipped; unparseable lines
    produce error responses.  Requests without an ["id"] get their
    1-based line number. *)

type comparison = {
  cold : batch;  (** computed by a [no_cache] engine: every request runs *)
  warm : batch;  (** computed by a caching engine: duplicates hit/coalesce *)
  cold_metrics : Metrics.t;
  warm_metrics : Metrics.t;
  identical : bool;  (** ok-response result texts agree request-by-request *)
  speedup : float;  (** cold wall / warm wall *)
}

val compare_cold :
  ?cache_cap:int -> ?queue_bound:int -> lines:string list -> unit -> comparison
(** Run the same batch through a cacheless engine and a caching engine
    and compare byte-for-byte — the determinism oracle for the memo
    cache, and the speedup measurement the CI gate asserts on. *)

val demo_requests : ?pool:int -> requests:int -> seed:int -> unit -> string list
(** A deterministic duplicate-heavy request batch: [requests] NDJSON
    lines drawn uniformly from a pool of [pool] (default 40) distinct
    jobs over the litmus catalogue, sanitizer, abstracted model, SPSC
    ring and fuzzer, spread over three clients and all three
    priorities.  With the defaults, at least half the lines duplicate
    an earlier one. *)

val summary : batch -> Metrics.t -> string
(** Human summary table: totals by status/origin, hit rate, latency
    percentiles. *)
