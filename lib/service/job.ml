module Lang = Armb_litmus.Lang
module AM = Armb_core.Abstracted_model
module RC = Armb_platform.Run_config
module Sim = Armb_litmus.Sim_runner
module Spsc = Armb_sync.Spsc_ring

type spec =
  | Litmus of Lang.test
  | Check of Lang.test
  | Model of {
      label : string;
      mem_ops : AM.mem_ops;
      approach : Armb_core.Ordering.t;
      location : AM.location;
      nops : int;
      iters : int;
    }
  | Ring of { combo : string; messages : int }
  | Fuzz of { tests : int }
  | Fix of { test : Lang.test; max_edits : int; budget : int }
  | Perturb of { test : Lang.test; intensities : float list; plan_seeds : int list }
  | Opt of { program : Armb_litmus.Cfg.program; algorithm : string; unroll : int }

type t = { spec : spec; rc : RC.t; fault : float }

type result = { text : string; events : int; cycles : int }

let kind t =
  match t.spec with
  | Litmus _ -> "litmus"
  | Check _ -> "check"
  | Model _ -> "model"
  | Ring _ -> "ring"
  | Fuzz _ -> "fuzz"
  | Fix _ -> "fix"
  | Perturb _ -> "perturb"
  | Opt _ -> "opt"

let mem_ops_tag = function
  | AM.No_mem -> "no-mem"
  | AM.Store_store -> "st-st"
  | AM.Load_store -> "ld-st"
  | AM.Load_load -> "ld-ld"

let location_tag = function AM.Loc1 -> 1 | AM.Loc2 -> 2

let label t =
  match t.spec with
  | Litmus test -> "litmus " ^ test.Lang.name
  | Check test -> "check " ^ test.Lang.name
  | Model { label; mem_ops; nops; _ } ->
    Printf.sprintf "model %s %s nops=%d" (mem_ops_tag mem_ops) label nops
  | Ring { combo; messages } -> Printf.sprintf "ring %s n=%d" combo messages
  | Fuzz { tests } -> Printf.sprintf "fuzz tests=%d" tests
  | Fix { test; _ } -> "fix " ^ test.Lang.name
  | Perturb { test; intensities; plan_seeds } ->
    Printf.sprintf "perturb %s x%d" test.Lang.name
      (List.length intensities * List.length plan_seeds)
  | Opt { program; algorithm; _ } ->
    Printf.sprintf "opt %s %s" algorithm program.Armb_litmus.Cfg.name

(* The fault plan is reconstructed from (intensity, rc.seed) at run
   time, so the key carries only the intensity — the seed is already a
   key component. *)
let key t =
  let b = Buffer.create 1024 in
  (match t.spec with
  | Litmus test ->
    Buffer.add_string b "litmus\n";
    Buffer.add_string b (Key.canonical_test test)
  | Check test ->
    Buffer.add_string b "check\n";
    Buffer.add_string b (Key.canonical_test test)
  | Model { mem_ops; approach; location; nops; iters; label = _ } ->
    Buffer.add_string b
      (Printf.sprintf "model|%s|%s|%d|%d|%d\n" (mem_ops_tag mem_ops)
         (Armb_core.Ordering.to_string approach)
         (location_tag location) nops iters)
  | Ring { combo; messages } ->
    (* validate the combo name now so an unkeyable job fails at submit *)
    ignore (Spsc.combo combo);
    Buffer.add_string b (Printf.sprintf "ring|%s|%d\n" combo messages)
  | Fuzz { tests } -> Buffer.add_string b (Printf.sprintf "fuzz|%d\n" tests)
  | Fix { test; max_edits; budget } ->
    Buffer.add_string b (Printf.sprintf "fix|%d|%d\n" max_edits budget);
    Buffer.add_string b (Key.canonical_test test)
  | Perturb { test; intensities; plan_seeds } ->
    Buffer.add_string b
      (Printf.sprintf "perturb|%s|%s\n"
         (String.concat "," (List.map (Printf.sprintf "%.6f") intensities))
         (String.concat "," (List.map string_of_int plan_seeds)));
    Buffer.add_string b (Key.canonical_test test)
  | Opt { program; algorithm; unroll } ->
    (* validate the algorithm name now so an unkeyable job fails at submit *)
    (match Armb_opt.Optimizer.algorithm_of_string algorithm with
    | Some _ -> ()
    | None -> invalid_arg (Printf.sprintf "Job.key: unknown algorithm %S" algorithm));
    Buffer.add_string b (Printf.sprintf "opt|%s|%d\n" algorithm unroll);
    Buffer.add_string b (Key.canonical_program program));
  let a, bcore = t.rc.cores in
  Buffer.add_string b
    (Printf.sprintf "@%s|%d,%d|seed=%d|trials=%d|fault=%.6f"
       t.rc.cfg.Armb_cpu.Config.name a bcore t.rc.seed t.rc.trials t.fault);
  Key.digest (Buffer.contents b)

(* A cheap structural identity hash for shard routing.  Unlike [key]
   it does no canonicalization and no outcome enumeration — just the
   spec's surface identity plus the run coordinates — so the router
   can compute it per request without doing the job's work.  Jobs with
   equal canonical keys route to the same shard whenever they share
   surface form (always true for requests built from the catalogue via
   the codec); a hand-built renamed variant may land on another shard,
   which costs a duplicate cache entry there, never a wrong answer. *)
let route_hash t =
  let spec_tag =
    match t.spec with
    | Litmus test -> "litmus|" ^ String.lowercase_ascii test.Lang.name
    | Check test -> "check|" ^ String.lowercase_ascii test.Lang.name
    | Model { mem_ops; approach; location; nops; iters; label = _ } ->
      Printf.sprintf "model|%s|%s|%d|%d|%d" (mem_ops_tag mem_ops)
        (Armb_core.Ordering.to_string approach)
        (location_tag location) nops iters
    | Ring { combo; messages } -> Printf.sprintf "ring|%s|%d" combo messages
    | Fuzz { tests } -> Printf.sprintf "fuzz|%d" tests
    | Fix { test; max_edits; budget } ->
      Printf.sprintf "fix|%s|%d|%d" (String.lowercase_ascii test.Lang.name) max_edits
        budget
    | Perturb { test; intensities; plan_seeds } ->
      Printf.sprintf "perturb|%s|%s|%s"
        (String.lowercase_ascii test.Lang.name)
        (String.concat "," (List.map (Printf.sprintf "%.6f") intensities))
        (String.concat "," (List.map string_of_int plan_seeds))
    | Opt { program; algorithm; unroll } ->
      Printf.sprintf "opt|%s|%s|%d"
        (String.lowercase_ascii program.Armb_litmus.Cfg.name)
        algorithm unroll
  in
  let a, b = t.rc.cores in
  Hashtbl.hash
    ( spec_tag,
      t.rc.cfg.Armb_cpu.Config.name,
      a,
      b,
      t.rc.seed,
      t.rc.trials,
      t.fault )

let fault_plan t =
  if t.fault <= 0.0 then None
  else
    Some
      (Armb_fault.Plan.of_intensity ~seed:t.rc.seed
         ~name:(Printf.sprintf "serve-%.2f" t.fault)
         t.fault)

let run t =
  let rc = t.rc in
  let fault = fault_plan t in
  match t.spec with
  | Litmus test ->
    let r = Sim.run_rc ?fault rc test in
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "%s witnessed=%b\n" test.Lang.name r.Sim.interesting_witnessed);
    List.iter
      (fun (o, n) -> Buffer.add_string b (Printf.sprintf "  %d %s\n" n o))
      r.Sim.outcomes;
    { text = Buffer.contents b; events = r.Sim.events; cycles = r.Sim.cycles }
  | Check test ->
    let base, stripped =
      Sim.check_test ~cfg:rc.cfg ~trials:rc.trials ~seed:rc.seed ?fault test
    in
    let row = Sim.check_row_of test ~base ~stripped in
    let events =
      base.Sim.events
      + match stripped with Some r -> r.Sim.events | None -> 0
    in
    let cycles =
      base.Sim.cycles
      + match stripped with Some r -> r.Sim.cycles | None -> 0
    in
    { text = Format.asprintf "%a\n" Sim.pp_check_row row; events; cycles }
  | Model { label; mem_ops; approach; location; nops; iters } ->
    let spec =
      { (AM.default_spec rc.cfg) with cores = rc.cores; mem_ops; approach; location; nops; iters }
    in
    if not (AM.valid spec) then
      invalid_arg (Printf.sprintf "Job.run: invalid model combination %s" (AM.label spec));
    let cycles, events = AM.run_stats spec in
    let a, b = rc.cores in
    {
      text =
        Printf.sprintf "%s %s (%d,%d) nops=%d cycles=%d\n" (mem_ops_tag mem_ops) label a b
          nops cycles;
      events;
      cycles;
    }
  | Ring { combo; messages } ->
    let spec =
      { (Spsc.default_spec rc.cfg ~cores:rc.cores) with
        messages;
        barriers = Spsc.combo combo;
        fault;
      }
    in
    let r = Spsc.run spec in
    {
      text =
        Format.asprintf "%s cycles=%d %a\n" combo r.Spsc.cycles Armb_mem.Memsys.pp_counters
          r.Spsc.lines_touched;
      events = 0;
      cycles = r.Spsc.cycles;
    }
  | Fuzz { tests } ->
    let r = Armb_litmus.Fuzz.run ?fault ~tests ~trials_per_test:rc.trials ~seed:rc.seed () in
    {
      text = Format.asprintf "%a@." Armb_litmus.Fuzz.pp_report r;
      events = r.Armb_litmus.Fuzz.events;
      cycles = 0;
    }
  | Fix { test; max_edits; budget } ->
    let o = Armb_synth.Fix.fix_rc ~max_edits ~budget rc test in
    {
      text = Format.asprintf "%a@." Armb_synth.Report.pp_outcome o;
      events = o.Armb_synth.Fix.oracle_calls;
      cycles = 0;
    }
  | Perturb { test; intensities; plan_seeds } ->
    let module P = Armb_litmus.Perturb in
    (* the job-level [fault] knob is ignored here: the sweep itself owns
       the injection (intensities x plan seeds vs a faults-off baseline) *)
    let s =
      P.sweep ~cfg:rc.cfg ~trials:rc.trials ~seed:rc.seed ~intensities
        ~plan_seeds ~tests:[ test ] ()
    in
    let b = Buffer.create 256 in
    List.iter
      (fun row -> Buffer.add_string b (Format.asprintf "%a\n" P.pp_row row))
      s.P.results;
    let drift_total =
      List.fold_left (fun acc r -> acc +. r.P.drift) 0.0 s.P.results
    in
    let delay_total =
      List.fold_left (fun acc r -> acc + r.P.fault_delay) 0 s.P.results
    in
    (* machine-parseable trailer: the soak driver's invariant checker and
       drift accounting key off these two markers *)
    Buffer.add_string b
      (Printf.sprintf "drift-total=%.3f sweep: %s\n" drift_total
         (if s.P.ok then "OK" else "VIOLATIONS"));
    { text = Buffer.contents b; events = delay_total; cycles = 0 }
  | Opt { program; algorithm; unroll } ->
    let module O = Armb_opt.Optimizer in
    let algorithm =
      match O.algorithm_of_string algorithm with
      | Some a -> a
      | None -> invalid_arg (Printf.sprintf "Job.run: unknown algorithm %S" algorithm)
    in
    let r =
      O.optimize ~algorithm ~unroll ~cost:false ~trials:rc.trials ~seed:rc.seed
        program
    in
    {
      text =
        Printf.sprintf
          "opt %s %s fences %d -> %d removed=%d weakened=%d merged=%d sound=%b reverted=%b\n"
          (O.algorithm_name r.O.algorithm)
          r.O.name r.O.input_fences r.O.output_fences r.O.removed r.O.weakened
          r.O.merged r.O.verdict.Armb_opt.Verify.sound r.O.reverted;
      events = 0;
      cycles = 0;
    }
