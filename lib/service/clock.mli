(** Monotonic service clock.

    [Unix.gettimeofday] is wall time and steps backwards under NTP
    corrections; timing a computation with two raw samples can yield a
    negative duration, which corrupted the engine's latency histogram
    and retry-after accounting.  This wrapper clamps readings to be
    non-decreasing, so every interval measured against it is >= 0.

    The raw source is injectable for tests (a deterministic stepping
    source reproduces the clock-step regression without touching the
    system clock). *)

type t

val create : ?source:(unit -> float) -> unit -> t
(** [source] returns seconds as a float; defaults to
    [Unix.gettimeofday]. *)

val now_us : t -> int
(** Current reading in microseconds, never less than any earlier
    reading of the same clock. *)

val elapsed_us : t -> since:int -> int
(** [elapsed_us t ~since:(now_us t)] later: microseconds elapsed,
    clamped at 0. *)
