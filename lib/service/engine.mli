(** The long-lived job engine: memoization, in-flight coalescing, a
    priority scheduler with fair share across clients, and explicit
    backpressure.

    {b Admission} ([submit]) is synchronous and cheap: the job is
    content-addressed ({!Job.key}); a finished result in the cache
    answers immediately ([Hit]); a computation already queued for the
    same key absorbs the request as a waiter ([submit] returns [None],
    the response arrives when that computation completes, marked
    [Coalesced]); otherwise the job joins its client's queue at its
    priority — unless the number of distinct queued computations has
    reached [queue_bound], in which case the request is {e shed} with a
    retry-after hint instead of growing the queue without bound.
    Coalesced waiters never count against the bound: absorbing a
    duplicate costs a list cell, not a computation.

    {b Execution} ([drain]) picks queued computations highest priority
    first; within a priority it round-robins across clients, so one
    client fanning out a thousand jobs cannot starve another's single
    request at equal priority.  Each computation runs once and answers
    every waiter; results enter the cache (unless [no_cache]).

    Jobs are pure ({!Job.run}), so scheduling order, coalescing and
    caching cannot change any response's [text] — a warm hit is
    bit-identical to a cold run by construction, and the tests pin that
    against the golden-digest workloads. *)

type priority = High | Normal | Low

val priority_of_string : string -> priority option
val priority_to_string : priority -> string

type request = { id : string; client : string; priority : priority; job : Job.t }

type origin =
  | Cold  (** computed by this request *)
  | Hit  (** answered from the memo cache *)
  | Coalesced  (** absorbed by an identical in-flight computation *)

type reply =
  | Result of { origin : origin; key : string; wall_us : int; result : Job.result }
  | Shed of { retry_after_ms : int }
  | Error of string

type response = { id : string; client : string; reply : reply }

type t

val create :
  ?cache_cap:int -> ?queue_bound:int -> ?no_cache:bool -> ?clock:Clock.t -> unit -> t
(** Defaults: cache capacity 512 results, queue bound 256 distinct
    computations.  [no_cache] disables {e both} memoization and
    coalescing — every request computes (the baseline the cache's
    speedup is measured against).  [clock] injects the monotonic time
    source computations are timed with (tests step it
    deterministically; the default reads the system clock). *)

val submit : t -> request -> response option
(** [Some] for an immediate answer (cache hit, shed, or a request that
    cannot be keyed/parsed → [Error]); [None] when the request was
    queued or coalesced — its response comes from {!drain}. *)

val drain : t -> response list
(** Run queued computations to exhaustion; responses in completion
    order (one per pending request, coalesced waiters included). *)

val pending : t -> int
(** Distinct computations currently queued. *)

val live_lanes : t -> int
(** Scheduler lanes currently registered, across all priority levels.
    Bounded by the number of (priority, client) pairs with queued work:
    a drained lane retires, so client churn cannot grow the scheduler
    (the regression the lane-index rewrite pins down). *)

val metrics : t -> Metrics.t

val totals : t -> int * int
(** [(computations_done, wall_us_total)] — the completed-work account
    behind retry-after hints.  The sharded router folds every shard's
    totals into one delegated cell so its hints reflect global
    progress. *)
