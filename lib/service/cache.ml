(* Classic hash-table + doubly-linked-list LRU.  The list is intrusive
   and sentinel-free: [head] is the most recently used node, [tail] the
   eviction candidate. *)

type 'a node = {
  nkey : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards head / more recent *)
  mutable next : 'a node option;  (* towards tail / less recent *)
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
}

let create ~cap =
  if cap < 1 then invalid_arg "Cache.create: cap must be >= 1";
  { capacity = cap; table = Hashtbl.create (2 * cap); head = None; tail = None }

let cap t = t.capacity
let size t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let is_head t n = match t.head with Some h -> h == n | None -> false

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
    if not (is_head t n) then begin
      unlink t n;
      push_front t n
    end;
    Some n.value

let mem t k = Hashtbl.mem t.table k

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    n.value <- v;
    if not (is_head t n) then begin
      unlink t n;
      push_front t n
    end
  | None ->
    if Hashtbl.length t.table >= t.capacity then (
      match t.tail with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.nkey
      | None -> ());
    let n = { nkey = k; value = v; prev = None; next = None } in
    Hashtbl.add t.table k n;
    push_front t n

let keys_mru t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.nkey :: acc) n.next
  in
  go [] t.head
