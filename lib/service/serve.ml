module Rng = Armb_sim.Rng

let emit oc (r : Engine.response) =
  output_string oc (Codec.response_to_line r);
  output_char oc '\n'

(* ---------- streaming mode ---------- *)

let serve ?(drain_every = 16) engine ic oc =
  let lineno = ref 0 in
  let drain () = List.iter (emit oc) (Engine.drain engine) in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         (match Codec.request_of_line ~default_id:(string_of_int !lineno) line with
         | Error e ->
           emit oc
             {
               Engine.id = string_of_int !lineno;
               client = "anon";
               reply = Engine.Error e;
             }
         | Ok req -> (
           match Engine.submit engine req with
           | Some resp -> emit oc resp
           | None -> ()));
         flush oc;
         if Engine.pending engine >= drain_every then begin
           drain ();
           flush oc
         end
       end
     done
   with End_of_file -> ());
  drain ();
  flush oc

(* ---------- one-shot batch mode ---------- *)

type batch = { responses : Engine.response list; wall_s : float }

let run_batch engine ~lines =
  let t0 = Unix.gettimeofday () in
  let items =
    List.mapi (fun i line -> (i, line)) lines
    |> List.filter (fun (_, line) -> String.trim line <> "")
  in
  let slots : Engine.response option array = Array.make (List.length items) None in
  (* ids are caller-chosen and may repeat: map id -> FIFO of slot
     indices still waiting for a drained response under that id *)
  let waiting : (string, int Queue.t) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun slot (lineno, line) ->
      let default_id = string_of_int (lineno + 1) in
      match Codec.request_of_line ~default_id line with
      | Error e ->
        slots.(slot) <-
          Some { Engine.id = default_id; client = "anon"; reply = Engine.Error e }
      | Ok req -> (
        match Engine.submit engine req with
        | Some resp -> slots.(slot) <- Some resp
        | None ->
          let q =
            match Hashtbl.find_opt waiting req.Engine.id with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.add waiting req.Engine.id q;
              q
          in
          Queue.push slot q))
    items;
  List.iter
    (fun (resp : Engine.response) ->
      match Hashtbl.find_opt waiting resp.Engine.id with
      | Some q when not (Queue.is_empty q) -> slots.(Queue.pop q) <- Some resp
      | _ -> ())
    (Engine.drain engine);
  let responses = List.filter_map Fun.id (Array.to_list slots) in
  { responses; wall_s = Unix.gettimeofday () -. t0 }

(* ---------- warm vs cold ---------- *)

type comparison = {
  cold : batch;
  warm : batch;
  cold_metrics : Metrics.t;
  warm_metrics : Metrics.t;
  identical : bool;
  speedup : float;
}

let signature (r : Engine.response) =
  match r.Engine.reply with
  | Engine.Result { result; _ } -> ("ok", result.Job.text)
  | Engine.Shed _ -> ("shed", "")
  | Engine.Error m -> ("error", m)

let compare_cold ?(cache_cap = 512) ?queue_bound ~lines () =
  let queue_bound =
    match queue_bound with Some b -> b | None -> max 256 (List.length lines)
  in
  let cold_engine = Engine.create ~queue_bound ~no_cache:true () in
  let warm_engine = Engine.create ~cache_cap ~queue_bound () in
  let cold = run_batch cold_engine ~lines in
  let warm = run_batch warm_engine ~lines in
  let identical =
    List.length cold.responses = List.length warm.responses
    && List.for_all2
         (fun a b -> signature a = signature b)
         cold.responses warm.responses
  in
  let speedup = if warm.wall_s > 0. then cold.wall_s /. warm.wall_s else 0. in
  {
    cold;
    warm;
    cold_metrics = Engine.metrics cold_engine;
    warm_metrics = Engine.metrics warm_engine;
    identical;
    speedup;
  }

(* ---------- deterministic demo batch ---------- *)

let demo_pool () =
  let tests = Armb_litmus.Catalogue.all in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let litmus =
    List.map
      (fun (t : Armb_litmus.Lang.test) ->
        [
          ("kind", Json.Str "litmus");
          ("test", Json.Str t.Armb_litmus.Lang.name);
          ("trials", Json.Int 20);
          ("seed", Json.Int 42);
        ])
      tests
  in
  let check =
    List.map
      (fun (t : Armb_litmus.Lang.test) ->
        [
          ("kind", Json.Str "check");
          ("test", Json.Str t.Armb_litmus.Lang.name);
          ("trials", Json.Int 8);
          ("seed", Json.Int 5);
        ])
      (take 8 tests)
  in
  let ring =
    List.map
      (fun (combo, messages) ->
        [
          ("kind", Json.Str "ring");
          ("combo", Json.Str combo);
          ("messages", Json.Int messages);
        ])
      [
        ("DMB full - DMB full", 300);
        ("DMB ld - DMB st", 300);
        ("LDAR - DMB st", 300);
        ("DMB ld - No Barrier", 300);
        ("DMB full - DMB st", 400);
        ("DMB full - STLR", 400);
      ]
  in
  let model =
    List.concat_map
      (fun approach ->
        List.map
          (fun nops ->
            [
              ("kind", Json.Str "model");
              ("mem_ops", Json.Str "st-st");
              ("approach", Json.Str approach);
              ("location", Json.Int 1);
              ("nops", Json.Int nops);
              ("iters", Json.Int 300);
            ])
          [ 100; 500 ])
      [ "none"; "dmb"; "dmb-st"; "stlr" ]
  in
  let fuzz =
    [
      [ ("kind", Json.Str "fuzz"); ("tests", Json.Int 3); ("trials", Json.Int 20); ("seed", Json.Int 7) ];
      [ ("kind", Json.Str "fuzz"); ("tests", Json.Int 5); ("trials", Json.Int 15); ("seed", Json.Int 9) ];
    ]
  in
  litmus @ check @ ring @ model @ fuzz

let demo_requests ?(pool = 40) ~requests ~seed () =
  let entries = Array.of_list (demo_pool ()) in
  let n = min pool (Array.length entries) in
  let rng = Rng.create seed in
  let clients = [| "alice"; "bob"; "carol" |] in
  List.init requests (fun i ->
      let fields = entries.(Rng.int rng n) in
      let client = clients.(Rng.int rng (Array.length clients)) in
      let priority =
        match Rng.int rng 8 with 0 -> "high" | 1 -> "low" | _ -> "normal"
      in
      Json.to_string
        (Json.Obj
           (("id", Json.Str (string_of_int (i + 1)))
           :: ("client", Json.Str client)
           :: ("priority", Json.Str priority)
           :: fields)))

(* ---------- summary ---------- *)

let summary (b : batch) (m : Metrics.t) =
  let count f = List.length (List.filter f b.responses) in
  let by_origin o (r : Engine.response) =
    match r.Engine.reply with
    | Engine.Result { origin; _ } -> origin = o
    | _ -> false
  in
  let shed (r : Engine.response) =
    match r.Engine.reply with Engine.Shed _ -> true | _ -> false
  in
  let error (r : Engine.response) =
    match r.Engine.reply with Engine.Error _ -> true | _ -> false
  in
  let p50, p99 = Metrics.latency_us m in
  let bb = Buffer.create 512 in
  Buffer.add_string bb
    (Printf.sprintf "%-12s %6d   (%.3f s wall)\n" "requests"
       (List.length b.responses) b.wall_s);
  Buffer.add_string bb
    (Printf.sprintf "%-12s %6d\n" "computed" (count (by_origin Engine.Cold)));
  Buffer.add_string bb
    (Printf.sprintf "%-12s %6d\n" "cache hits" (count (by_origin Engine.Hit)));
  Buffer.add_string bb
    (Printf.sprintf "%-12s %6d\n" "coalesced" (count (by_origin Engine.Coalesced)));
  Buffer.add_string bb (Printf.sprintf "%-12s %6d\n" "shed" (count shed));
  Buffer.add_string bb (Printf.sprintf "%-12s %6d\n" "errors" (count error));
  Buffer.add_string bb
    (Printf.sprintf "%-12s %6.3f\n" "hit rate" (Metrics.hit_rate m));
  Buffer.add_string bb
    (Printf.sprintf "%-12s p50=%dus p99=%dus\n" "latency" p50 p99);
  Buffer.contents bb
