module Rng = Armb_sim.Rng

let emit oc (r : Engine.response) =
  output_string oc (Codec.response_to_line r);
  output_char oc '\n'

(* ---------- streaming mode ---------- *)

(* Shutdown drain semantics: whichever bound fires first (EOF,
   [max_requests] accepted request lines, or [duration_s] of wall
   clock), the loop stops *reading* but never stops *answering* —
   every request already accepted is drained to a response before the
   stream closes, and unread input is simply left unread.  So a bounded
   serve is a prefix of the unbounded one: same responses, same order,
   truncated input. *)
let serve ?(drain_every = 16) ?max_requests ?duration_s engine ic oc =
  let lineno = ref 0 in
  let accepted = ref 0 in
  let clock = Clock.create () in
  let t0 = Clock.now_us clock in
  let hit_bound () =
    (match max_requests with Some m -> !accepted >= m | None -> false)
    || match duration_s with
       | Some d -> float_of_int (Clock.elapsed_us clock ~since:t0) /. 1e6 >= d
       | None -> false
  in
  let drain () = List.iter (emit oc) (Engine.drain engine) in
  (try
     while not (hit_bound ()) do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         incr accepted;
         (match Codec.request_of_line ~default_id:(string_of_int !lineno) line with
         | Error e ->
           emit oc
             {
               Engine.id = string_of_int !lineno;
               client = "anon";
               reply = Engine.Error e;
             }
         | Ok req -> (
           match Engine.submit engine req with
           | Some resp -> emit oc resp
           | None -> ()));
         flush oc;
         if Engine.pending engine >= drain_every then begin
           drain ();
           flush oc
         end
       end
     done
   with End_of_file -> ());
  drain ();
  flush oc

(* ---------- slot bookkeeping ---------- *)

(* Requests answered by a later drain are matched back to their input
   slot by id.  Ids are caller-chosen and may repeat, so each id keys a
   FIFO of slot indices; drain order within an id is submission order.
   The map also remembers each slot's id so unanswered slots can be
   surfaced instead of silently vanishing. *)
module Slot_map = struct
  type t = {
    waiting : (string, int Queue.t) Hashtbl.t;
    mutable expected : int;  (* slots still waiting for a response *)
  }

  let create () = { waiting = Hashtbl.create 64; expected = 0 }

  let expect t ~id ~slot =
    let q =
      match Hashtbl.find_opt t.waiting id with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.waiting id q;
        q
    in
    Queue.push slot q;
    t.expected <- t.expected + 1

  let resolve t ~id =
    match Hashtbl.find_opt t.waiting id with
    | Some q when not (Queue.is_empty q) ->
      t.expected <- t.expected - 1;
      Some (Queue.pop q)
    | _ -> None

  let pending t = t.expected

  let leftovers t =
    Hashtbl.fold
      (fun id q acc -> Queue.fold (fun acc slot -> (id, slot) :: acc) acc q)
      t.waiting []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
end

let orphan_response (resp : Engine.response) =
  {
    resp with
    Engine.reply =
      Engine.Error
        (Printf.sprintf "orphaned response (no request slot waiting under id %S)"
           resp.Engine.id);
  }

let unanswered_response ~id =
  {
    Engine.id;
    client = "anon";
    reply = Engine.Error "request produced no response (engine dropped it)";
  }

(* ---------- one-shot batch mode ---------- *)

type batch = { responses : Engine.response list; wall_s : float }

let run_batch engine ~lines =
  let clock = Clock.create () in
  let t0 = Clock.now_us clock in
  let items =
    List.mapi (fun i line -> (i, line)) lines
    |> List.filter (fun (_, line) -> String.trim line <> "")
  in
  let slots : Engine.response option array = Array.make (List.length items) None in
  let waiting = Slot_map.create () in
  List.iteri
    (fun slot (lineno, line) ->
      let default_id = string_of_int (lineno + 1) in
      match Codec.request_of_line ~default_id line with
      | Error e ->
        slots.(slot) <-
          Some { Engine.id = default_id; client = "anon"; reply = Engine.Error e }
      | Ok req -> (
        match Engine.submit engine req with
        | Some resp -> slots.(slot) <- Some resp
        | None -> Slot_map.expect waiting ~id:req.Engine.id ~slot))
    items;
  (* A drained response with no waiting slot is *not* silently dropped:
     it is surfaced as an error row (it can only mean the engine held
     work submitted outside this batch).  Conversely a slot left
     unanswered after the drain becomes an error row too, so
     |responses| >= |items| always — response-count conservation. *)
  let orphans = ref [] in
  List.iter
    (fun (resp : Engine.response) ->
      match Slot_map.resolve waiting ~id:resp.Engine.id with
      | Some slot -> slots.(slot) <- Some resp
      | None -> orphans := orphan_response resp :: !orphans)
    (Engine.drain engine);
  List.iter
    (fun (id, slot) ->
      if slots.(slot) = None then slots.(slot) <- Some (unanswered_response ~id))
    (Slot_map.leftovers waiting);
  let responses =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> unanswered_response ~id:"?")
         slots)
    @ List.rev !orphans
  in
  { responses; wall_s = float_of_int (Clock.elapsed_us clock ~since:t0) /. 1e6 }

(* ---------- warm vs cold ---------- *)

type comparison = {
  cold : batch;
  warm : batch;
  cold_metrics : Metrics.t;
  warm_metrics : Metrics.t;
  identical : bool;
  speedup : float;
}

let signature (r : Engine.response) =
  match r.Engine.reply with
  | Engine.Result { result; _ } -> ("ok", result.Job.text)
  | Engine.Shed _ -> ("shed", "")
  | Engine.Error m -> ("error", m)

let compare_cold ?(cache_cap = 512) ?queue_bound ~lines () =
  let queue_bound =
    match queue_bound with Some b -> b | None -> max 256 (List.length lines)
  in
  let cold_engine = Engine.create ~queue_bound ~no_cache:true () in
  let warm_engine = Engine.create ~cache_cap ~queue_bound () in
  let cold = run_batch cold_engine ~lines in
  let warm = run_batch warm_engine ~lines in
  let identical =
    List.length cold.responses = List.length warm.responses
    && List.for_all2
         (fun a b -> signature a = signature b)
         cold.responses warm.responses
  in
  let speedup = if warm.wall_s > 0. then cold.wall_s /. warm.wall_s else 0. in
  {
    cold;
    warm;
    cold_metrics = Engine.metrics cold_engine;
    warm_metrics = Engine.metrics warm_engine;
    identical;
    speedup;
  }

(* ---------- deterministic demo batch ---------- *)

let demo_pool () =
  let tests = Armb_litmus.Catalogue.all in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let litmus =
    List.map
      (fun (t : Armb_litmus.Lang.test) ->
        [
          ("kind", Json.Str "litmus");
          ("test", Json.Str t.Armb_litmus.Lang.name);
          ("trials", Json.Int 20);
          ("seed", Json.Int 42);
        ])
      tests
  in
  let check =
    List.map
      (fun (t : Armb_litmus.Lang.test) ->
        [
          ("kind", Json.Str "check");
          ("test", Json.Str t.Armb_litmus.Lang.name);
          ("trials", Json.Int 8);
          ("seed", Json.Int 5);
        ])
      (take 8 tests)
  in
  let ring =
    List.map
      (fun (combo, messages) ->
        [
          ("kind", Json.Str "ring");
          ("combo", Json.Str combo);
          ("messages", Json.Int messages);
        ])
      [
        ("DMB full - DMB full", 300);
        ("DMB ld - DMB st", 300);
        ("LDAR - DMB st", 300);
        ("DMB ld - No Barrier", 300);
        ("DMB full - DMB st", 400);
        ("DMB full - STLR", 400);
      ]
  in
  let model =
    List.concat_map
      (fun approach ->
        List.map
          (fun nops ->
            [
              ("kind", Json.Str "model");
              ("mem_ops", Json.Str "st-st");
              ("approach", Json.Str approach);
              ("location", Json.Int 1);
              ("nops", Json.Int nops);
              ("iters", Json.Int 300);
            ])
          [ 100; 500 ])
      [ "none"; "dmb"; "dmb-st"; "stlr" ]
  in
  let fuzz =
    [
      [ ("kind", Json.Str "fuzz"); ("tests", Json.Int 3); ("trials", Json.Int 20); ("seed", Json.Int 7) ];
      [ ("kind", Json.Str "fuzz"); ("tests", Json.Int 5); ("trials", Json.Int 15); ("seed", Json.Int 9) ];
    ]
  in
  litmus @ check @ ring @ model @ fuzz

let demo_requests ?(pool = 40) ~requests ~seed () =
  let entries = Array.of_list (demo_pool ()) in
  let n = min pool (Array.length entries) in
  let rng = Rng.create seed in
  let clients = [| "alice"; "bob"; "carol" |] in
  List.init requests (fun i ->
      let fields = entries.(Rng.int rng n) in
      let client = clients.(Rng.int rng (Array.length clients)) in
      let priority =
        match Rng.int rng 8 with 0 -> "high" | 1 -> "low" | _ -> "normal"
      in
      Json.to_string
        (Json.Obj
           (("id", Json.Str (string_of_int (i + 1)))
           :: ("client", Json.Str client)
           :: ("priority", Json.Str priority)
           :: fields)))

(* ---------- zipfian traffic ---------- *)

(* Skewed production-shaped traffic: job popularity follows a Zipf law
   (rank r drawn with probability proportional to r^-alpha), so a few
   hot keys dominate exactly as real user traffic does, and clients
   are drawn from a wide pool so lane registration churns.  Fully
   deterministic in [seed]: the CI gate and the scaling experiments
   replay byte-identical batches. *)
let zipf_requests ?(pool = 40) ?(alpha = 1.1) ?(clients = 64) ~requests ~seed () =
  if requests < 0 then invalid_arg "Serve.zipf_requests: requests must be >= 0";
  if pool < 1 then invalid_arg "Serve.zipf_requests: pool must be >= 1";
  if alpha < 0.0 then invalid_arg "Serve.zipf_requests: alpha must be >= 0";
  if clients < 1 then invalid_arg "Serve.zipf_requests: clients must be >= 1";
  let entries = Array.of_list (demo_pool ()) in
  let n = min pool (Array.length entries) in
  let rng = Rng.create seed in
  (* rank -> cumulative weight, for inverse-CDF sampling *)
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) alpha);
    cum.(r) <- !total
  done;
  let sample_rank () =
    let u = Rng.float rng !total in
    (* first rank whose cumulative weight covers u *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cum.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    search 0 (n - 1)
  in
  List.init requests (fun i ->
      let fields = entries.(sample_rank ()) in
      let client = Printf.sprintf "user-%03d" (Rng.int rng clients) in
      let priority =
        match Rng.int rng 8 with 0 -> "high" | 1 -> "low" | _ -> "normal"
      in
      Json.to_string
        (Json.Obj
           (("id", Json.Str (string_of_int (i + 1)))
           :: ("client", Json.Str client)
           :: ("priority", Json.Str priority)
           :: fields)))

(* ---------- summary ---------- *)

let summary (b : batch) (m : Metrics.t) =
  let count f = List.length (List.filter f b.responses) in
  let by_origin o (r : Engine.response) =
    match r.Engine.reply with
    | Engine.Result { origin; _ } -> origin = o
    | _ -> false
  in
  let shed (r : Engine.response) =
    match r.Engine.reply with Engine.Shed _ -> true | _ -> false
  in
  let error (r : Engine.response) =
    match r.Engine.reply with Engine.Error _ -> true | _ -> false
  in
  let p50, p99 = Metrics.latency_us m in
  let bb = Buffer.create 512 in
  Buffer.add_string bb
    (Printf.sprintf "%-12s %6d   (%.3f s wall)\n" "requests"
       (List.length b.responses) b.wall_s);
  Buffer.add_string bb
    (Printf.sprintf "%-12s %6d\n" "computed" (count (by_origin Engine.Cold)));
  Buffer.add_string bb
    (Printf.sprintf "%-12s %6d\n" "cache hits" (count (by_origin Engine.Hit)));
  Buffer.add_string bb
    (Printf.sprintf "%-12s %6d\n" "coalesced" (count (by_origin Engine.Coalesced)));
  Buffer.add_string bb (Printf.sprintf "%-12s %6d\n" "shed" (count shed));
  Buffer.add_string bb (Printf.sprintf "%-12s %6d\n" "errors" (count error));
  Buffer.add_string bb
    (Printf.sprintf "%-12s %6.3f\n" "hit rate" (Metrics.hit_rate m));
  Buffer.add_string bb
    (Printf.sprintf "%-12s p50=%dus p99=%dus\n" "latency" p50 p99);
  Buffer.contents bb
