(** The job service scaled across OCaml 5 domains.

    A pool of [domains] worker domains, each owning a private
    {!Engine.t}: memo cache, coalesce table and scheduler lanes are
    partitioned by job hash, so shards share no mutable job state and
    the hot path takes no lock.  The caller's domain acts as the
    router: it parses each NDJSON line, computes the cheap
    {!Job.route_hash} (the expensive canonical keying happens on the
    shard), picks a shard by consistent hashing (64 virtual nodes per
    shard, so the key->shard map is stable in the domain count and
    balanced across shards) and ships the request through a
    single-producer single-consumer ring
    ({!Armb_runtime.Spsc_ring.Poly}); responses come back on a second
    ring per worker.

    The router also enforces the {e global} queue bound in input order,
    mirroring the single engine's shed behaviour instead of letting the
    effective bound scale with the domain count: a route hash already
    in flight will coalesce on its shard and one already completed will
    hit its shard's cache, so neither claims budget.  Shed hints come
    from a completed-work account every shard folds into through a
    DSM-Synch combining lock ({!Armb_runtime.Dsmsynch}); per-shard
    engine metrics merge into one aggregate under a ticket lock at
    shutdown.

    A pool is single-router: drive each [t] from one domain at a time.
    All response-count conservation guarantees of {!Serve.run_batch}
    carry over. *)

type t

val create :
  ?domains:int ->
  ?cache_cap:int ->
  ?queue_bound:int ->
  ?no_cache:bool ->
  ?drain_every:int ->
  unit ->
  t
(** Spawn the worker domains.  [domains] defaults to 2; [cache_cap],
    [queue_bound] and [no_cache] configure each shard engine exactly as
    {!Engine.create} ([queue_bound] doubles as the router's global
    admission budget).  [drain_every] (default [max_int]) is the
    streaming drain threshold per shard: the batch default holds queued
    work until the router's drain barrier so duplicates coalesce
    deterministically, while {!serve} callers typically pass 16 as the
    single-domain loop does. *)

val domains : t -> int

val shard_of_hash : t -> int -> int
(** The consistent-hash ring lookup, exposed for the stability and
    balance tests: which shard owns a route hash. *)

val shard_of : t -> Engine.request -> int
(** [shard_of_hash] of the request's {!Job.route_hash}. *)

val run_batch : t -> lines:string list -> Serve.batch
(** One-shot batch over the pool: route every request (router-side
    admission sheds above the global bound), then barrier on every
    shard draining.  Responses come back in input order, orphans
    appended, with the same conservation contract as
    {!Serve.run_batch}.  The pool stays warm: a second batch on the
    same [t] hits the shard caches. *)

val serve :
  ?max_requests:int -> ?duration_s:float -> t -> in_channel -> out_channel -> unit
(** Streaming NDJSON loop over the pool: immediate answers (hits,
    sheds, errors) are emitted as their rows arrive; each shard drains
    eagerly when idle or when [drain_every] computations are pending.
    Returns on EOF — or after [max_requests] accepted request lines or
    [duration_s] seconds, whichever comes first, with the same shutdown
    drain semantics as {!Serve.serve}: bounds stop {e reading}, never
    answering; every outstanding response is written and flushed.
    The pool stays live; call {!shutdown} to stop it. *)

val shutdown : t -> Engine.response list
(** Stop and join every worker domain, folding per-shard engine metrics
    into the aggregate.  Returns any responses still in flight (always
    [[]] after a completed {!run_batch}/{!serve} — surfaced rather than
    silently dropped, per the conservation contract).  Idempotent. *)

val metrics : t -> Metrics.t
(** The pool aggregate: router-side sheds plus, after {!shutdown},
    every shard engine's counters and latency histogram merged. *)

type comparison = {
  single : Serve.batch;  (** one engine, one domain *)
  sharded : Serve.batch;  (** the same lines through a [domains]-pool *)
  single_metrics : Metrics.t;
  sharded_metrics : Metrics.t;
  identical : bool;
      (** response signatures agree slot-by-slot and nothing strayed *)
  coalesced : int;  (** sharded-side coalesced count (the CI gate) *)
  speedup : float;  (** single wall / sharded wall *)
}

val compare_single :
  ?cache_cap:int ->
  ?queue_bound:int ->
  domains:int ->
  lines:string list ->
  unit ->
  comparison
(** Run the same batch through one engine and through a sharded pool
    and compare signatures request-by-request — the determinism oracle
    for the shard layer (routing, coalescing and caching must not
    change any answer), and the byte-identity gate the CI smoke
    asserts on.  [queue_bound] defaults to covering the whole batch so
    neither side sheds. *)
