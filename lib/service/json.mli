(** A minimal JSON value type with a one-line printer and a recursive
    descent parser — just enough for the service's newline-delimited
    request/response protocol and metrics export, without pulling a
    JSON dependency into the build. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (strings escaped, no embedded
    newlines) — safe to emit as one NDJSON line. *)

val of_string : string -> (t, string) result
(** Parse one JSON document.  Trailing garbage, unterminated strings
    and malformed numbers all yield [Error] with a position message. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val str : t -> string option
val int : t -> int option
(** Accepts [Int] and integral [Float]. *)

val number : t -> float option
val bool : t -> bool option
val list : t -> t list option

val mem_str : string -> t -> string option
val mem_int : string -> t -> int option
val mem_number : string -> t -> float option
(** [mem_* k j] = accessor composed with {!member}. *)
