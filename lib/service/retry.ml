(* Shed responses carry a retry_after_ms hint that, until now, nothing
   consumed.  This is the consumer: a bounded exponential-backoff
   resubmit loop.  One attempt function is injected by the caller (the
   soak driver resubmits through its engine or shard pool; armb batch
   through a one-line run_batch), and the loop guarantees every shed
   request terminates in one of exactly two observable states —
   completed (possibly after several sheds) or given up with the last
   response in hand.  Nothing is ever silently dropped. *)

type policy = { max_retries : int; base_ms : int; cap_ms : int }

let default_policy = { max_retries = 6; base_ms = 10; cap_ms = 2000 }

type outcome =
  | Completed of { response : Engine.response; retries : int }
  | Gave_up of { last : Engine.response; retries : int }

let backoff_ms policy ~attempt ~retry_after_ms =
  (* honor the engine's hint but never back off less than the
     exponential floor (a hot engine hints 0 early on), and never more
     than the cap (a deep queue can hint minutes) *)
  let exp_ms =
    (* attempt is 0-based; shifting by >= 30 would overflow fast *)
    let shift = min attempt 20 in
    policy.base_ms * (1 lsl shift)
  in
  min policy.cap_ms (max retry_after_ms exp_ms)

let is_shed (r : Engine.response) =
  match r.Engine.reply with Engine.Shed _ -> true | _ -> false

let default_sleep ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0)

let resubmit ?(policy = default_policy) ?(sleep = default_sleep) ~attempt first =
  let rec go retries (last : Engine.response) =
    match last.Engine.reply with
    | Engine.Shed { retry_after_ms } when retries < policy.max_retries ->
      sleep (backoff_ms policy ~attempt:retries ~retry_after_ms);
      go (retries + 1) (attempt ())
    | Engine.Shed _ -> Gave_up { last; retries }
    | Engine.Result _ | Engine.Error _ -> Completed { response = last; retries }
  in
  go 0 first
