(* The engine used to time computations with raw [Unix.gettimeofday];
   an NTP step or manual clock change between the two samples produced
   a *negative* wall_us, which then corrupted wall_us_total (the
   retry-after estimator), the latency histogram and every summary
   derived from them.  This clock monotonizes the source: readings
   never go backwards, so intervals are >= 0 by construction. *)

type t = { source : unit -> float; mutable last_us : int }

let create ?(source = Unix.gettimeofday) () = { source; last_us = min_int }

let now_us t =
  let raw = int_of_float (t.source () *. 1e6) in
  if raw > t.last_us then t.last_us <- raw;
  t.last_us

let elapsed_us t ~since = max 0 (now_us t - since)
