(** Per-engine service counters and latency tracking.

    Counters use {!Armb_sim.Stats.Counter}; computation latency feeds an
    {!Armb_sim.Stats.Histogram} so p50/p99 come from the same machinery
    the simulator's measurements use.  Metrics describe the engine's
    {e operation} (they include wall-clock time) and are deliberately
    kept out of job results, which stay bit-deterministic. *)

type t

val create : unit -> t

(** {2 Recording} *)

val submitted : t -> unit
val hit : t -> unit
val miss : t -> unit
val coalesced : t -> unit
val shed : t -> unit
val failed : t -> unit
val completed : t -> int -> unit
(** [completed t n]: one computation finished, satisfying [n] waiting
    requests. *)

val record_latency_us : t -> int -> unit
(** One computation's wall time, microseconds. *)

val observe_queue_depth : t -> int -> unit
(** Track the high-water mark of distinct queued computations. *)

val add_events : t -> int -> unit

val merge_into : dst:t -> t -> unit
(** Fold [src] into [dst]: counters add, queue-depth peaks take the
    max, latency histograms merge bucket-by-bucket.  The sharded
    service aggregates per-domain engine metrics with this under a
    ticket lock at shutdown. *)

(** {2 Reading} *)

val counts : t -> (string * int) list
(** All counters by name (submitted, hits, misses, coalesced, shed,
    failed, completed, queue_depth_peak, events). *)

val get : t -> string -> int
(** Lookup in {!counts}; 0 for unknown names. *)

val latency_us : t -> int * int
(** (p50, p99) of computation wall time; (0, 0) before any
    computation. *)

val hit_rate : t -> float
(** hits / (hits + misses + coalesced), 0 when nothing was looked up.
    Coalesced requests count toward the denominator but not the
    numerator: they did not find a finished result. *)

val to_json : t -> Json.t
(** The metrics artifact schema ["armb-serve-metrics-v1"]. *)

val pp : Format.formatter -> t -> unit
