(** Canonical content-addressed keys for service jobs.

    Two requests must coalesce onto one computation exactly when they
    denote the same computation, so the key must not depend on
    presentation details: test and register {e names}, shared-variable
    names, or the order of [init] bindings.  [canonical_test] produces a
    normal form that is invariant under

    - renaming registers (per thread) and shared variables,
    - permuting the [init] binding list, and
    - dropping/adding explicit [= 0] initial bindings,

    while still separating genuinely different programs: the
    instruction sequences, fences, dependency shapes, initial values,
    model expectations and the {e extensional} behaviour of the outcome
    predicate (evaluated over every WMM-reachable outcome, with renamed
    bindings) all feed the serialization.

    The job key then appends the non-test coordinates that change the
    computation's result: platform, core binding, seed, trial count,
    job kind and parameters, and the fault intensity. *)

val canonical_test : Armb_litmus.Lang.test -> string
(** Name-independent canonical serialization of a litmus test,
    including the predicate fingerprint. *)

val canonical_program : Armb_litmus.Cfg.program -> string
(** Structural serialization of a CFG program (blocks, terminators,
    sorted init, expectation flags) for keying [Opt] jobs.  No renaming
    pass and no predicate fingerprint: codec-built programs always carry
    the trivially-false predicate, so structural equality implies
    computational equality; a hand-renamed variant only misses the
    cache, it can never coalesce wrongly. *)

val digest : string -> string
(** Hex MD5 of a canonical serialization — the content address. *)
