(* Sharded serving: the memoizing engine scaled across OCaml 5 domains.

   One router (the caller's domain) parses NDJSON lines, hashes each
   job's surface form ({!Job.route_hash} — cheap, none of the canonical
   key's outcome enumeration) and routes it through a consistent-hash
   ring to one of N worker domains.  Each worker owns a private
   {!Engine.t}, so the memo cache, the coalesce table and the scheduler
   lanes are partitioned by job hash and shards share no mutable job
   state — the hot path needs no lock at all.  The expensive per-request
   work (canonical keying, execution) happens on the shard; the router
   only parses and hashes.

   The data plane is one pair of SPSC rings per worker
   ({!Armb_runtime.Spsc_ring.Poly}, the paper's Algorithm 2 protocol
   over boxed payloads).  The control plane reuses the runtime's
   delegation primitives: every shard folds its completed-work account
   into one global cell through a DSM-Synch combining lock, so the
   router's shed hints reflect global progress, and per-shard engine
   metrics merge into one aggregate under a ticket lock at shutdown.

   Deadlock freedom: the only blocking sends are router -> requests and
   worker -> rows.  A router blocked on a full request ring polls every
   row ring while it waits, so a worker blocked on a full row ring is
   always eventually drained — each side unblocks the other. *)

module Ring = Armb_runtime.Spsc_ring.Poly
module Backoff = Armb_runtime.Backoff
module Ticket_lock = Armb_runtime.Ticket_lock
module Dsmsynch = Armb_runtime.Dsmsynch

type to_worker =
  | Req of { slot : int; req : Engine.request }
  | Drain
  | Stop

type from_worker =
  | Row of { slot : int; resp : Engine.response }  (* slot -1: orphan *)
  | Drained
  | Stopped

type worker = {
  requests : to_worker Ring.t;
  rows : from_worker Ring.t;
  domain : unit Domain.t;
}

(* Completed-work account shared by all shards; mutated only inside
   [Dsmsynch.exec] closures, which serializes access and publishes the
   writes to whichever domain delegates next. *)
type global = { mutable done_ : int; mutable wall_us : int }

type t = {
  domains : int;
  queue_bound : int;  (* the *global* distinct-computation budget *)
  no_cache : bool;
  workers : worker array;
  points : (int * int) array;  (* consistent-hash ring: (point, shard) sorted *)
  stats_lock : Dsmsynch.t;
  global : global;
  merge_lock : Ticket_lock.t;
  agg : Metrics.t;  (* per-shard engine metrics fold in at Stop *)
  router_metrics : Metrics.t;  (* router-side sheds *)
  mutable stopped : bool;
}

let domains t = t.domains

(* ---------- consistent hashing ---------- *)

let hash_mask = (1 lsl 30) - 1
let replicas = 64

let build_points domains =
  let pts =
    Array.init (domains * replicas) (fun i ->
        let shard = i / replicas and replica = i mod replicas in
        (Hashtbl.hash ("armb-shard", shard, replica) land hash_mask, shard))
  in
  Array.sort compare pts;
  pts

let shard_of_hash t h =
  let h = h land hash_mask in
  let pts = t.points in
  let n = Array.length pts in
  (* first ring point at or after h, wrapping past the top *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst pts.(mid) >= h then go lo mid else go (mid + 1) hi
  in
  let i = go 0 n in
  snd pts.(if i = n then 0 else i)

let shard_of t (req : Engine.request) = shard_of_hash t (Job.route_hash req.Engine.job)

(* ---------- worker domains ---------- *)

let worker_loop ~cache_cap ~queue_bound ~no_cache ~drain_every ~requests ~rows
    ~stats_lock ~global ~merge_lock ~agg =
  let engine = Engine.create ~cache_cap ~queue_bound ~no_cache () in
  let waiting = ref (Serve.Slot_map.create ()) in
  let last_done = ref 0 in
  let last_wall = ref 0 in
  (* fold this shard's completed-work delta into the global account *)
  let publish () =
    let d, w = Engine.totals engine in
    let dd = d - !last_done and dw = w - !last_wall in
    if dd > 0 || dw > 0 then begin
      last_done := d;
      last_wall := w;
      ignore
        (Dsmsynch.exec stats_lock (fun () ->
             global.done_ <- global.done_ + dd;
             global.wall_us <- global.wall_us + dw;
             0))
    end
  in
  let drain_all () =
    List.iter
      (fun (resp : Engine.response) ->
        match Serve.Slot_map.resolve !waiting ~id:resp.Engine.id with
        | Some slot -> Ring.send rows (Row { slot; resp })
        | None -> Ring.send rows (Row { slot = -1; resp = Serve.orphan_response resp }))
      (Engine.drain engine);
    (* [Engine.drain] runs to exhaustion, so anything still expected was
       dropped by the engine: surface it, same as the single-domain
       batch runner, and start a fresh map. *)
    if Serve.Slot_map.pending !waiting > 0 then begin
      List.iter
        (fun (id, slot) ->
          Ring.send rows (Row { slot; resp = Serve.unanswered_response ~id }))
        (Serve.Slot_map.leftovers !waiting);
      waiting := Serve.Slot_map.create ()
    end;
    publish ()
  in
  let b = Backoff.create () in
  let running = ref true in
  while !running do
    match Ring.try_recv requests with
    | Some (Req { slot; req }) ->
      Backoff.reset b;
      (match Engine.submit engine req with
      | Some resp -> Ring.send rows (Row { slot; resp })
      | None -> Serve.Slot_map.expect !waiting ~id:req.Engine.id ~slot);
      if Engine.pending engine >= drain_every then drain_all ()
    | Some Drain ->
      Backoff.reset b;
      drain_all ();
      Ring.send rows Drained
    | Some Stop ->
      drain_all ();
      Ticket_lock.with_lock merge_lock (fun () ->
          Metrics.merge_into ~dst:agg (Engine.metrics engine));
      Ring.send rows Stopped;
      running := false
    | None ->
      (* idle: in streaming mode run queued work eagerly; in batch mode
         ([drain_every = max_int]) hold it so duplicates keep coalescing
         until the router says Drain *)
      if drain_every < max_int && Engine.pending engine > 0 then drain_all ()
      else Backoff.once b
  done

let create ?(domains = 2) ?(cache_cap = 512) ?(queue_bound = 256) ?(no_cache = false)
    ?(drain_every = max_int) () =
  if domains < 1 then invalid_arg "Shard.create: domains must be >= 1";
  if queue_bound < 1 then invalid_arg "Shard.create: queue_bound must be >= 1";
  let stats_lock = Dsmsynch.create () in
  let global = { done_ = 0; wall_us = 0 } in
  let merge_lock = Ticket_lock.create () in
  let agg = Metrics.create () in
  let workers =
    Array.init domains (fun _ ->
        let requests = Ring.create ~slots:1024 in
        let rows = Ring.create ~slots:1024 in
        let domain =
          Domain.spawn (fun () ->
              worker_loop ~cache_cap ~queue_bound ~no_cache ~drain_every ~requests
                ~rows ~stats_lock ~global ~merge_lock ~agg)
        in
        { requests; rows; domain })
  in
  {
    domains;
    queue_bound;
    no_cache;
    workers;
    points = build_points domains;
    stats_lock;
    global;
    merge_lock;
    agg;
    router_metrics = Metrics.create ();
    stopped = false;
  }

let ensure_live t name =
  if t.stopped then invalid_arg (name ^ ": shard pool already shut down")

(* ---------- router-side admission ---------- *)

(* The single engine sheds when the number of distinct queued
   computations reaches its bound.  Per-shard bounds would multiply that
   by the domain count, so the router enforces the global bound itself,
   in line order, using the route hash as a stand-in for key
   distinctness: a hash already in flight will coalesce on its shard and
   a hash already completed will hit its shard's cache, so neither
   claims budget; anything else claims a slot or is shed.  The stand-in
   is exact for codec-built requests up to hash collisions and cache
   eviction, either of which costs at most a transient budget
   mismatch — never a wrong answer. *)
type admission = {
  inflight : (int, unit) Hashtbl.t;  (* route hashes holding a budget slot *)
  completed : (int, unit) Hashtbl.t;  (* route hashes with a cached result *)
  mutable budget : int;
}

let admission_create () =
  { inflight = Hashtbl.create 64; completed = Hashtbl.create 256; budget = 0 }

(* [Some consumed]: forward (claiming a budget slot iff [consumed]);
   [None]: shed. *)
let admit adm ~no_cache ~bound rh =
  if
    (not no_cache)
    && (Hashtbl.mem adm.inflight rh || Hashtbl.mem adm.completed rh)
  then Some false
  else if adm.budget >= bound then None
  else begin
    if not no_cache then Hashtbl.replace adm.inflight rh ();
    adm.budget <- adm.budget + 1;
    Some true
  end

(* Account for a row coming back for a tracked slot. *)
let settle adm ~no_cache ~rh ~consumed (resp : Engine.response) =
  (match resp.Engine.reply with
  | Engine.Result _ when not no_cache -> Hashtbl.replace adm.completed rh ()
  | _ -> ());
  if consumed then
    if no_cache then adm.budget <- adm.budget - 1
    else if Hashtbl.mem adm.inflight rh then begin
      Hashtbl.remove adm.inflight rh;
      adm.budget <- adm.budget - 1
    end

let retry_hint t ~queued =
  Dsmsynch.exec t.stats_lock (fun () ->
      if t.global.done_ = 0 then 50
      else max 1 (queued * t.global.wall_us / t.global.done_ / 1000))

let shed_response t adm (req : Engine.request) =
  Metrics.submitted t.router_metrics;
  Metrics.shed t.router_metrics;
  {
    Engine.id = req.Engine.id;
    client = req.Engine.client;
    reply = Engine.Shed { retry_after_ms = retry_hint t ~queued:adm.budget };
  }

(* Poll every worker's row ring to exhaustion. *)
let poll t handle =
  Array.iter
    (fun w ->
      let rec go () =
        match Ring.try_recv w.rows with
        | Some m ->
          handle m;
          go ()
        | None -> ()
      in
      go ())
    t.workers

(* Blocking send that keeps the row rings moving (see the deadlock note
   at the top of the file). *)
let forward t handle w msg =
  if not (Ring.try_send w.requests msg) then begin
    let b = Backoff.create () in
    while not (Ring.try_send w.requests msg) do
      poll t handle;
      Backoff.once b
    done
  end

let await_drained t handle drained =
  Array.iter (fun w -> forward t handle w Drain) t.workers;
  let b = Backoff.create () in
  while !drained < t.domains do
    let before = !drained in
    poll t handle;
    if !drained = before then Backoff.once b else Backoff.reset b
  done

(* ---------- one-shot batch mode ---------- *)

let run_batch t ~lines =
  ensure_live t "Shard.run_batch";
  let clock = Clock.create () in
  let t0 = Clock.now_us clock in
  let items =
    List.mapi (fun i line -> (i, line)) lines
    |> List.filter (fun (_, line) -> String.trim line <> "")
  in
  let nslots = List.length items in
  let slots : Engine.response option array = Array.make nslots None in
  let rh_of_slot = Array.make nslots (-1) in
  let consumed_of_slot = Array.make nslots false in
  let orphans = ref [] in
  let adm = admission_create () in
  let drained = ref 0 in
  let handle = function
    | Row { slot; resp } ->
      if slot < 0 then orphans := resp :: !orphans
      else begin
        slots.(slot) <- Some resp;
        if rh_of_slot.(slot) >= 0 then
          settle adm ~no_cache:t.no_cache ~rh:rh_of_slot.(slot)
            ~consumed:consumed_of_slot.(slot) resp
      end
    | Drained -> incr drained
    | Stopped -> ()
  in
  List.iteri
    (fun slot (lineno, line) ->
      let default_id = string_of_int (lineno + 1) in
      (match Codec.request_of_line ~default_id line with
      | Error e ->
        slots.(slot) <-
          Some { Engine.id = default_id; client = "anon"; reply = Engine.Error e }
      | Ok req -> (
        let rh = Job.route_hash req.Engine.job in
        match admit adm ~no_cache:t.no_cache ~bound:t.queue_bound rh with
        | None -> slots.(slot) <- Some (shed_response t adm req)
        | Some consumed ->
          rh_of_slot.(slot) <- rh;
          consumed_of_slot.(slot) <- consumed;
          forward t handle t.workers.(shard_of_hash t rh) (Req { slot; req })));
      poll t handle)
    items;
  await_drained t handle drained;
  (* same conservation contract as Serve.run_batch: one row per slot in
     input order, orphans appended, nothing silently dropped *)
  let responses =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> Serve.unanswered_response ~id:"?")
         slots)
    @ List.rev !orphans
  in
  {
    Serve.responses;
    wall_s = float_of_int (Clock.elapsed_us clock ~since:t0) /. 1e6;
  }

(* ---------- streaming mode ---------- *)

(* Same shutdown drain semantics as {!Serve.serve}: any bound (EOF,
   max_requests, duration) only stops reading — every forwarded request
   still drains to a response before return. *)
let serve ?max_requests ?duration_s t ic oc =
  ensure_live t "Shard.serve";
  let emit (r : Engine.response) =
    output_string oc (Codec.response_to_line r);
    output_char oc '\n'
  in
  let adm = admission_create () in
  let tracked : (int, int * bool) Hashtbl.t = Hashtbl.create 256 in
  let drained = ref 0 in
  let handle = function
    | Row { slot; resp } ->
      (match Hashtbl.find_opt tracked slot with
      | Some (rh, consumed) ->
        Hashtbl.remove tracked slot;
        settle adm ~no_cache:t.no_cache ~rh ~consumed resp
      | None -> ());
      emit resp
    | Drained -> incr drained
    | Stopped -> ()
  in
  let lineno = ref 0 in
  let accepted = ref 0 in
  let clock = Clock.create () in
  let t0 = Clock.now_us clock in
  let hit_bound () =
    (match max_requests with Some m -> !accepted >= m | None -> false)
    || match duration_s with
       | Some d -> float_of_int (Clock.elapsed_us clock ~since:t0) /. 1e6 >= d
       | None -> false
  in
  (try
     while not (hit_bound ()) do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         incr accepted;
         let default_id = string_of_int !lineno in
         (match Codec.request_of_line ~default_id line with
         | Error e ->
           emit { Engine.id = default_id; client = "anon"; reply = Engine.Error e }
         | Ok req -> (
           let rh = Job.route_hash req.Engine.job in
           match admit adm ~no_cache:t.no_cache ~bound:t.queue_bound rh with
           | None -> emit (shed_response t adm req)
           | Some consumed ->
             Hashtbl.replace tracked !lineno (rh, consumed);
             forward t handle t.workers.(shard_of_hash t rh) (Req { slot = !lineno; req })));
         poll t handle;
         flush oc
       end
     done
   with End_of_file -> ());
  await_drained t handle drained;
  flush oc

(* ---------- shutdown ---------- *)

let metrics t = t.agg

let shutdown t =
  if t.stopped then []
  else begin
    t.stopped <- true;
    let stray = ref [] in
    let handle = function
      | Row { resp; _ } -> stray := resp :: !stray
      | Drained | Stopped -> ()
    in
    Array.iter (fun w -> forward t handle w Stop) t.workers;
    Array.iter
      (fun w ->
        let b = Backoff.create () in
        let rec wait () =
          match Ring.try_recv w.rows with
          | Some Stopped -> ()
          | Some m ->
            handle m;
            Backoff.reset b;
            wait ()
          | None ->
            Backoff.once b;
            wait ()
        in
        wait ();
        Domain.join w.domain)
      t.workers;
    Ticket_lock.with_lock t.merge_lock (fun () ->
        Metrics.merge_into ~dst:t.agg t.router_metrics);
    List.rev !stray
  end

(* ---------- sharded vs single-domain comparison ---------- *)

type comparison = {
  single : Serve.batch;
  sharded : Serve.batch;
  single_metrics : Metrics.t;
  sharded_metrics : Metrics.t;
  identical : bool;
  coalesced : int;
  speedup : float;
}

let compare_single ?(cache_cap = 512) ?queue_bound ~domains:n ~lines () =
  let queue_bound =
    match queue_bound with Some b -> b | None -> max 256 (List.length lines)
  in
  let engine = Engine.create ~cache_cap ~queue_bound () in
  let single = Serve.run_batch engine ~lines in
  let pool = create ~domains:n ~cache_cap ~queue_bound () in
  let sharded = run_batch pool ~lines in
  let stray = shutdown pool in
  let sharded_metrics = metrics pool in
  let identical =
    stray = []
    && List.length single.Serve.responses = List.length sharded.Serve.responses
    && List.for_all2
         (fun a b -> Serve.signature a = Serve.signature b)
         single.Serve.responses sharded.Serve.responses
  in
  let speedup =
    if sharded.Serve.wall_s > 0. then single.Serve.wall_s /. sharded.Serve.wall_s
    else 0.
  in
  {
    single;
    sharded;
    single_metrics = Engine.metrics engine;
    sharded_metrics;
    identical;
    coalesced = Metrics.get sharded_metrics "coalesced";
    speedup;
  }
