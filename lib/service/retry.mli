(** Bounded-backoff consumer for shed responses.

    The engine's backpressure answer ([Shed { retry_after_ms }]) is a
    hint that previously nothing consumed.  [resubmit] drives a request
    through shed responses by re-attempting with capped exponential
    backoff, honoring the engine's hint as a per-attempt floor.  Every
    request reaches exactly one of two terminal states — {!Completed}
    (a [Result] or [Error] reply, possibly after several sheds) or
    {!Gave_up} (still shed after [max_retries] attempts, last response
    attached) — so a shed request can be retried, reported, or counted,
    but never silently dropped.  Used by the soak driver and
    [armb batch --retry-shed]. *)

type policy = {
  max_retries : int;  (** resubmission attempts after the first shed *)
  base_ms : int;  (** backoff floor for attempt 0; doubles per attempt *)
  cap_ms : int;  (** upper bound on any single backoff *)
}

val default_policy : policy
(** 6 retries, 10ms base, 2s cap. *)

type outcome =
  | Completed of { response : Engine.response; retries : int }
      (** terminal non-shed reply (ok {e or} error) *)
  | Gave_up of { last : Engine.response; retries : int }
      (** still shed after exhausting the policy *)

val backoff_ms : policy -> attempt:int -> retry_after_ms:int -> int
(** [min cap (max retry_after_ms (base * 2^attempt))]. *)

val is_shed : Engine.response -> bool

val default_sleep : int -> unit
(** [Unix.sleepf] on milliseconds; the default [?sleep]. *)

val resubmit :
  ?policy:policy ->
  ?sleep:(int -> unit) ->
  attempt:(unit -> Engine.response) ->
  Engine.response ->
  outcome
(** [resubmit ~attempt first] loops while the current response is shed
    and retries remain: sleep the backoff, call [attempt] for a fresh
    response.  [sleep] is injectable so tests run without wall-clock
    delays (default: [Unix.sleepf]). *)
