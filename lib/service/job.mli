(** Jobs: the existing engines packaged as pure, content-addressed
    computations.

    A job pairs a [spec] (what to compute) with the {!Armb_platform.Run_config}
    coordinates (where and how: platform, core binding, seed, trials)
    and a fault intensity.  [run] is a pure function of the job — no
    hidden state, no wall-clock dependence — so results can be memoized
    and a cached result is bit-identical to a cold recomputation by
    construction.  The canonical result [text] renderings deliberately
    match the golden-digest workloads of [test_golden], which is how
    the cache is verified against the seed kernel rather than merely
    trusted. *)

module Lang = Armb_litmus.Lang
module AM = Armb_core.Abstracted_model

type spec =
  | Litmus of Lang.test
      (** outcome histogram on the timing simulator ({!Armb_litmus.Sim_runner}) *)
  | Check of Lang.test  (** happens-before sanitizer verdict row *)
  | Model of {
      label : string;  (** display name for the rendering (not keyed) *)
      mem_ops : AM.mem_ops;
      approach : Armb_core.Ordering.t;
      location : AM.location;
      nops : int;
      iters : int;
    }  (** one abstracted-model point (the Figure 3 axes) *)
  | Ring of { combo : string; messages : int }
      (** SPSC ring with a named barrier combination *)
  | Fuzz of { tests : int }  (** one differential fuzz round *)
  | Fix of { test : Lang.test; max_edits : int; budget : int }
      (** fence synthesis ({!Armb_synth.Fix}) *)
  | Perturb of { test : Lang.test; intensities : float list; plan_seeds : int list }
      (** one-test fault-injection sweep ({!Armb_litmus.Perturb}); the
          job's own [fault] knob is ignored — the sweep owns the
          injection schedule.  The result text ends with a parseable
          ["drift-total=... sweep: OK|VIOLATIONS"] trailer. *)
  | Opt of {
      program : Armb_litmus.Cfg.program;
      algorithm : string;  (** "single-bb" | "linear-scan" | "second-chance" *)
      unroll : int;
    }
      (** whole-program fence optimization ({!Armb_opt.Optimizer}),
          costing off (the soak's mode) *)

type t = {
  spec : spec;
  rc : Armb_platform.Run_config.t;
  fault : float;  (** fault-plan intensity in [0,1]; 0 = no plan *)
}

type result = {
  text : string;  (** canonical deterministic rendering *)
  events : int;  (** kernel events processed (0 when not measurable) *)
  cycles : int;  (** simulated cycles (0 when not measurable) *)
}

val key : t -> string
(** Content address (hex digest): canonical test form ({!Key}), kind
    tag, job parameters, platform name, cores, seed, trials and fault
    intensity.  Raises on specs that cannot be keyed (unknown ring
    combo). *)

val kind : t -> string
(** "litmus" | "check" | "model" | "ring" | "fuzz" | "fix" | "perturb"
    | "opt". *)

val route_hash : t -> int
(** Structural identity hash for shard routing: spec surface form plus
    run coordinates, with none of [key]'s canonicalization or outcome
    enumeration, so a router can afford it per request.  Jobs with the
    same canonical key hash equal whenever they share surface form
    (always true for codec-built requests); a divergence only costs a
    duplicated cache entry on another shard. *)

val label : t -> string
(** Short human description for summary tables. *)

val run : t -> result
(** Execute the job.  Raises on invalid specs (e.g. a [Model]
    combination {!AM.valid} rejects); the engine maps exceptions to
    error responses. *)
