(** Atomic artifact writing, shared by the CLI's [--out] plumbing and
    the soak driver's rolling metrics snapshots and violation bundles.

    [write ~path text] creates missing parent directories, writes
    [text] to a temp file in the target's directory and renames it into
    place — so a reader polling a rolling artifact (the soak farm's
    metrics JSON) always sees either the previous complete snapshot or
    the new one, never a torn write.  I/O failures come back as
    [Error msg] rather than a raw [Sys_error]. *)

val write : path:string -> string -> (unit, string) result
