module Lang = Armb_litmus.Lang
module AM = Armb_core.Abstracted_model
module RC = Armb_platform.Run_config

let find_test name =
  let name = String.lowercase_ascii name in
  List.find_opt
    (fun (t : Lang.test) -> String.lowercase_ascii t.Lang.name = name)
    Armb_litmus.Catalogue.all

let ( let* ) = Result.bind

let required what = function Some v -> Ok v | None -> Error ("missing " ^ what)

let test_field j =
  let* name = required "\"test\"" (Json.mem_str "test" j) in
  match find_test name with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown test %S (try: %s)" name
         (String.concat ", "
            (List.map (fun (t : Lang.test) -> t.Lang.name) Armb_litmus.Catalogue.all)))

let mem_ops_of_string = function
  | "no-mem" -> Some AM.No_mem
  | "st-st" | "store-store" -> Some AM.Store_store
  | "ld-st" | "load-store" -> Some AM.Load_store
  | "ld-ld" | "load-load" -> Some AM.Load_load
  | _ -> None

let int_field ?default k j =
  match Json.member k j with
  | None -> (
    match default with Some d -> Ok d | None -> Error (Printf.sprintf "missing %S" k))
  | Some v -> (
    match Json.int v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%S is not an integer" k))

let spec_of_json j =
  let* kind = required "\"kind\"" (Json.mem_str "kind" j) in
  match String.lowercase_ascii kind with
  | "litmus" ->
    let* t = test_field j in
    Ok (Job.Litmus t)
  | "check" ->
    let* t = test_field j in
    Ok (Job.Check t)
  | "fix" ->
    let* t = test_field j in
    let* max_edits = int_field ~default:3 "max_edits" j in
    let* budget = int_field ~default:4000 "budget" j in
    Ok (Job.Fix { test = t; max_edits; budget })
  | "model" ->
    let* mem_ops_s = required "\"mem_ops\"" (Json.mem_str "mem_ops" j) in
    let* mem_ops =
      required (Printf.sprintf "valid \"mem_ops\" (got %S)" mem_ops_s)
        (mem_ops_of_string (String.lowercase_ascii mem_ops_s))
    in
    let* approach_s = required "\"approach\"" (Json.mem_str "approach" j) in
    let* approach =
      required
        (Printf.sprintf "valid \"approach\" (got %S; try: %s)" approach_s
           (String.concat ", " (List.map fst Armb_core.Ordering.named)))
        (Armb_core.Ordering.of_name approach_s)
    in
    let* loc = int_field ~default:1 "location" j in
    let* location =
      match loc with
      | 1 -> Ok AM.Loc1
      | 2 -> Ok AM.Loc2
      | n -> Error (Printf.sprintf "\"location\" must be 1 or 2, got %d" n)
    in
    let* nops = int_field ~default:100 "nops" j in
    let* iters = int_field ~default:300 "iters" j in
    let label =
      match Json.mem_str "label" j with
      | Some l -> l
      | None -> Armb_core.Ordering.to_string approach
    in
    Ok (Job.Model { label; mem_ops; approach; location; nops; iters })
  | "ring" ->
    let* combo = required "\"combo\"" (Json.mem_str "combo" j) in
    let* messages = int_field ~default:500 "messages" j in
    Ok (Job.Ring { combo; messages })
  | "fuzz" ->
    let* tests = int_field ~default:10 "tests" j in
    Ok (Job.Fuzz { tests })
  | k -> Error (Printf.sprintf "unknown kind %S" k)

let rc_of_json j =
  let kv = ref [] in
  (match Json.mem_str "platform" j with
  | Some p -> kv := ("platform", p) :: !kv
  | None -> ());
  (match Json.member "cores" j with
  | Some (Json.List [ a; b ]) -> (
    match (Json.int a, Json.int b) with
    | Some a, Some b -> kv := ("cores", Printf.sprintf "%d,%d" a b) :: !kv
    | _ -> kv := ("cores", "bad") :: !kv)
  | Some (Json.Str s) -> kv := ("cores", s) :: !kv
  | Some _ -> kv := ("cores", "bad") :: !kv
  | None -> ());
  (match Json.mem_int "seed" j with
  | Some s -> kv := ("seed", string_of_int s) :: !kv
  | None -> ());
  (match Json.mem_int "trials" j with
  | Some s -> kv := ("trials", string_of_int s) :: !kv
  | None -> ());
  RC.of_kv ~defaults:(RC.make ~seed:42 ~trials:40 Armb_platform.Platform.kunpeng916) !kv

let request_of_json ?(default_id = "?") j =
  let id =
    match Json.member "id" j with
    | Some (Json.Str s) -> s
    | Some (Json.Int n) -> string_of_int n
    | _ -> default_id
  in
  let client = Option.value ~default:"anon" (Json.mem_str "client" j) in
  let* priority =
    match Json.mem_str "priority" j with
    | None -> Ok Engine.Normal
    | Some p ->
      required
        (Printf.sprintf "valid \"priority\" (got %S)" p)
        (Engine.priority_of_string p)
  in
  let* spec = spec_of_json j in
  let* rc = rc_of_json j in
  let* fault =
    match Json.member "fault" j with
    | None -> Ok 0.0
    | Some v -> (
      match Json.number v with
      | Some f when f >= 0.0 && f <= 1.0 -> Ok f
      | Some f -> Error (Printf.sprintf "\"fault\" %g outside [0,1]" f)
      | None -> Error "\"fault\" is not a number")
  in
  Ok { Engine.id; client; priority; job = { Job.spec; rc; fault } }

let request_of_line ?default_id line =
  let* j = Json.of_string line in
  request_of_json ?default_id j

let response_to_json (r : Engine.response) =
  let base = [ ("id", Json.Str r.id); ("client", Json.Str r.client) ] in
  match r.reply with
  | Engine.Result { origin; key; wall_us; result } ->
    Json.Obj
      (base
      @ [
          ("status", Json.Str "ok");
          ( "origin",
            Json.Str
              (match origin with
              | Engine.Cold -> "cold"
              | Engine.Hit -> "hit"
              | Engine.Coalesced -> "coalesced") );
          ("key", Json.Str key);
          ("wall_us", Json.Int wall_us);
          ("events", Json.Int result.Job.events);
          ("cycles", Json.Int result.Job.cycles);
          ("result", Json.Str result.Job.text);
        ])
  | Engine.Shed { retry_after_ms } ->
    Json.Obj
      (base @ [ ("status", Json.Str "shed"); ("retry_after_ms", Json.Int retry_after_ms) ])
  | Engine.Error msg ->
    Json.Obj (base @ [ ("status", Json.Str "error"); ("message", Json.Str msg) ])

let response_to_line r = Json.to_string (response_to_json r)
