module Lang = Armb_litmus.Lang
module Cfg = Armb_litmus.Cfg
module AM = Armb_core.Abstracted_model
module RC = Armb_platform.Run_config

let find_test name =
  let name = String.lowercase_ascii name in
  List.find_opt
    (fun (t : Lang.test) -> String.lowercase_ascii t.Lang.name = name)
    Armb_litmus.Catalogue.all

let ( let* ) = Result.bind

let required what = function Some v -> Ok v | None -> Error ("missing " ^ what)

(* ------------------------------------------------------------------ *)
(* Inline tests and CFG programs on the wire.

   The [interesting] closure cannot cross a process boundary, so inline
   tests carry a declarative ["interesting_when"] instead: a list of
   [key, value] pairs denoting a conjunction of equalities over outcome
   bindings (["1:r1", 1] means register r1 of thread 1 reads 1).  An
   absent or empty list is the trivially-false predicate (the fuzzer's
   convention).  This covers every shape the soak generator emits
   (MP/SB/LB-style weak outcomes) and keeps {!Key.canonical_test}'s
   extensional predicate fingerprint deterministic across processes. *)

let fence_to_wire = function
  | Lang.F_dmb_full -> "dmb"
  | Lang.F_dmb_st -> "dmb.st"
  | Lang.F_dmb_ld -> "dmb.ld"
  | Lang.F_dsb -> "dsb"
  | Lang.F_isb -> "ctrl+isb"

let fence_of_wire = function
  | "dmb" -> Some Lang.F_dmb_full
  | "dmb.st" -> Some Lang.F_dmb_st
  | "dmb.ld" -> Some Lang.F_dmb_ld
  | "dsb" -> Some Lang.F_dsb
  | "isb" | "ctrl+isb" -> Some Lang.F_isb
  | _ -> None

let instr_to_json = function
  | Lang.Load { var; reg; acquire; addr_dep } ->
    Json.Obj
      ([ ("op", Json.Str "ld"); ("var", Json.Str var); ("reg", Json.Str reg) ]
      @ (if acquire then [ ("acquire", Json.Bool true) ] else [])
      @ match addr_dep with Some r -> [ ("addr_dep", Json.Str r) ] | None -> [])
  | Lang.Store { var; v; release; addr_dep } ->
    Json.Obj
      ([ ("op", Json.Str "st"); ("var", Json.Str var) ]
      @ (match v with
        | Lang.Const k -> [ ("const", Json.Int (Int64.to_int k)) ]
        | Lang.Reg r -> [ ("from_reg", Json.Str r) ])
      @ (if release then [ ("release", Json.Bool true) ] else [])
      @ match addr_dep with Some r -> [ ("addr_dep", Json.Str r) ] | None -> [])
  | Lang.Fence f -> Json.Obj [ ("op", Json.Str "fence"); ("fence", Json.Str (fence_to_wire f)) ]

let bool_field ?(default = false) k j =
  match Json.member k j with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "%S is not a boolean" k)

let instr_of_json j =
  let* op = required "instruction \"op\"" (Json.mem_str "op" j) in
  let addr_dep = Json.mem_str "addr_dep" j in
  match op with
  | "ld" ->
    let* var = required "load \"var\"" (Json.mem_str "var" j) in
    let* reg = required "load \"reg\"" (Json.mem_str "reg" j) in
    let* acquire = bool_field "acquire" j in
    Ok (Lang.Load { var; reg; acquire; addr_dep })
  | "st" ->
    let* var = required "store \"var\"" (Json.mem_str "var" j) in
    let* v =
      match (Json.mem_int "const" j, Json.mem_str "from_reg" j) with
      | Some k, None -> Ok (Lang.Const (Int64.of_int k))
      | None, Some r -> Ok (Lang.Reg r)
      | None, None -> Error "store needs \"const\" or \"from_reg\""
      | Some _, Some _ -> Error "store has both \"const\" and \"from_reg\""
    in
    let* release = bool_field "release" j in
    Ok (Lang.Store { var; v; release; addr_dep })
  | "fence" ->
    let* f = required "fence \"fence\"" (Json.mem_str "fence" j) in
    required (Printf.sprintf "valid fence (got %S)" f) (fence_of_wire f)
    |> Result.map (fun f -> Lang.Fence f)
  | op -> Error (Printf.sprintf "unknown instruction op %S" op)

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
    let* y = f x in
    let* tl = map_result f tl in
    Ok (y :: tl)

let pairs_of_json what j =
  match j with
  | Json.List l ->
    map_result
      (function
        | Json.List [ Json.Str k; v ] -> (
          match Json.int v with
          | Some n -> Ok (k, Int64.of_int n)
          | None -> Error (Printf.sprintf "%s: value for %S is not an integer" what k))
        | _ -> Error (Printf.sprintf "%s entries must be [name, int] pairs" what))
      l
  | _ -> Error (Printf.sprintf "%s must be a list" what)

let pairs_to_json l =
  Json.List
    (List.map (fun (k, v) -> Json.List [ Json.Str k; Json.Int (Int64.to_int v) ]) l)

let interesting_of_conds conds =
  if conds = [] then fun _ -> false
  else fun lookup -> List.for_all (fun (k, v) -> lookup k = v) conds

let test_inline_of_json j =
  let* name = required "inline test \"name\"" (Json.mem_str "name" j) in
  let* init =
    match Json.member "init" j with
    | None -> Ok []
    | Some l -> pairs_of_json "\"init\"" l
  in
  let* threads =
    match Json.member "threads" j with
    | Some (Json.List ths) ->
      map_result
        (function
          | Json.List instrs -> map_result instr_of_json instrs
          | _ -> Error "each thread must be a list of instructions")
        ths
    | _ -> Error "inline test needs a \"threads\" list"
  in
  let* conds =
    match Json.member "interesting_when" j with
    | None -> Ok []
    | Some l -> pairs_of_json "\"interesting_when\"" l
  in
  let* expect_tso = bool_field "expect_tso" j in
  let* expect_wmm = bool_field "expect_wmm" j in
  Ok
    {
      Lang.name;
      description = Option.value ~default:"" (Json.mem_str "description" j);
      init;
      threads;
      interesting = interesting_of_conds conds;
      expect_tso;
      expect_wmm;
    }

let test_inline_to_json ~interesting_when (t : Lang.test) =
  Json.Obj
    ([ ("name", Json.Str t.Lang.name) ]
    @ (if t.Lang.description = "" then []
       else [ ("description", Json.Str t.Lang.description) ])
    @ [
        ("init", pairs_to_json t.Lang.init);
        ( "threads",
          Json.List
            (List.map (fun th -> Json.List (List.map instr_to_json th)) t.Lang.threads)
        );
      ]
    @ (if interesting_when = [] then []
       else [ ("interesting_when", pairs_to_json interesting_when) ])
    @ [
        ("expect_tso", Json.Bool t.Lang.expect_tso);
        ("expect_wmm", Json.Bool t.Lang.expect_wmm);
      ])

let term_to_json = function
  | Cfg.Return -> Json.Str "ret"
  | Cfg.Goto l -> Json.Obj [ ("goto", Json.Str l) ]
  | Cfg.Branch { reg; if_nonzero; if_zero } ->
    Json.Obj [ ("branch", Json.List [ Json.Str reg; Json.Str if_nonzero; Json.Str if_zero ]) ]

let term_of_json = function
  | Json.Str "ret" -> Ok Cfg.Return
  | Json.Obj _ as j -> (
    match (Json.mem_str "goto" j, Json.member "branch" j) with
    | Some l, None -> Ok (Cfg.Goto l)
    | None, Some (Json.List [ Json.Str reg; Json.Str nz; Json.Str z ]) ->
      Ok (Cfg.Branch { reg; if_nonzero = nz; if_zero = z })
    | _ -> Error "terminator must be \"ret\", {goto}, or {branch:[reg,nz,z]}")
  | _ -> Error "terminator must be \"ret\", {goto}, or {branch:[reg,nz,z]}"

let block_of_json j =
  let* label = required "block \"label\"" (Json.mem_str "label" j) in
  let* body =
    match Json.member "body" j with
    | Some (Json.List instrs) -> map_result instr_of_json instrs
    | _ -> Error "block needs a \"body\" list"
  in
  let* term =
    match Json.member "term" j with
    | None -> Ok Cfg.Return
    | Some t -> term_of_json t
  in
  Ok { Cfg.label; body; term }

(* Programs on the wire always carry the trivially-false predicate —
   [Opt] jobs compare WMM-reachable outcome {e sets}, which never
   consult it — so no "interesting_when" field exists here; see
   {!Key.canonical_program} for why this keeps keying sound. *)
let program_of_json j =
  let* name = required "program \"name\"" (Json.mem_str "name" j) in
  let* init =
    match Json.member "init" j with
    | None -> Ok []
    | Some l -> pairs_of_json "\"init\"" l
  in
  let* threads =
    match Json.member "threads" j with
    | Some (Json.List ths) ->
      map_result
        (fun th ->
          let* entry = required "thread \"entry\"" (Json.mem_str "entry" th) in
          let* blocks =
            match Json.member "blocks" th with
            | Some (Json.List bs) -> map_result block_of_json bs
            | _ -> Error "thread needs a \"blocks\" list"
          in
          Ok { Cfg.entry; blocks })
        ths
    | _ -> Error "program needs a \"threads\" list"
  in
  let* expect_tso = bool_field "expect_tso" j in
  let* expect_wmm = bool_field "expect_wmm" j in
  let p =
    {
      Cfg.name;
      description = Option.value ~default:"" (Json.mem_str "description" j);
      init;
      threads;
      interesting = (fun _ -> false);
      expect_tso;
      expect_wmm;
    }
  in
  match Cfg.validate p with Ok () -> Ok p | Error m -> Error ("invalid program: " ^ m)

let program_to_json (p : Cfg.program) =
  Json.Obj
    ([ ("name", Json.Str p.Cfg.name) ]
    @ (if p.Cfg.description = "" then []
       else [ ("description", Json.Str p.Cfg.description) ])
    @ [
        ("init", pairs_to_json p.Cfg.init);
        ( "threads",
          Json.List
            (List.map
               (fun (th : Cfg.thread_cfg) ->
                 Json.Obj
                   [
                     ("entry", Json.Str th.Cfg.entry);
                     ( "blocks",
                       Json.List
                         (List.map
                            (fun (blk : Cfg.block) ->
                              Json.Obj
                                [
                                  ("label", Json.Str blk.Cfg.label);
                                  ("body", Json.List (List.map instr_to_json blk.Cfg.body));
                                  ("term", term_to_json blk.Cfg.term);
                                ])
                            th.Cfg.blocks) );
                   ])
               p.Cfg.threads) );
        ("expect_tso", Json.Bool p.Cfg.expect_tso);
        ("expect_wmm", Json.Bool p.Cfg.expect_wmm);
      ])

(* ------------------------------------------------------------------ *)

let test_field j =
  match Json.member "test_inline" j with
  | Some inline -> test_inline_of_json inline
  | None -> (
    let* name = required "\"test\" or \"test_inline\"" (Json.mem_str "test" j) in
    match find_test name with
    | Some t -> Ok t
    | None ->
      Error
        (Printf.sprintf "unknown test %S (try: %s)" name
           (String.concat ", "
              (List.map (fun (t : Lang.test) -> t.Lang.name) Armb_litmus.Catalogue.all))))

let mem_ops_of_string = function
  | "no-mem" -> Some AM.No_mem
  | "st-st" | "store-store" -> Some AM.Store_store
  | "ld-st" | "load-store" -> Some AM.Load_store
  | "ld-ld" | "load-load" -> Some AM.Load_load
  | _ -> None

let int_field ?default k j =
  match Json.member k j with
  | None -> (
    match default with Some d -> Ok d | None -> Error (Printf.sprintf "missing %S" k))
  | Some v -> (
    match Json.int v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%S is not an integer" k))

let spec_of_json j =
  let* kind = required "\"kind\"" (Json.mem_str "kind" j) in
  match String.lowercase_ascii kind with
  | "litmus" ->
    let* t = test_field j in
    Ok (Job.Litmus t)
  | "check" ->
    let* t = test_field j in
    Ok (Job.Check t)
  | "fix" ->
    let* t = test_field j in
    let* max_edits = int_field ~default:3 "max_edits" j in
    let* budget = int_field ~default:4000 "budget" j in
    Ok (Job.Fix { test = t; max_edits; budget })
  | "model" ->
    let* mem_ops_s = required "\"mem_ops\"" (Json.mem_str "mem_ops" j) in
    let* mem_ops =
      required (Printf.sprintf "valid \"mem_ops\" (got %S)" mem_ops_s)
        (mem_ops_of_string (String.lowercase_ascii mem_ops_s))
    in
    let* approach_s = required "\"approach\"" (Json.mem_str "approach" j) in
    let* approach =
      required
        (Printf.sprintf "valid \"approach\" (got %S; try: %s)" approach_s
           (String.concat ", " (List.map fst Armb_core.Ordering.named)))
        (Armb_core.Ordering.of_name approach_s)
    in
    let* loc = int_field ~default:1 "location" j in
    let* location =
      match loc with
      | 1 -> Ok AM.Loc1
      | 2 -> Ok AM.Loc2
      | n -> Error (Printf.sprintf "\"location\" must be 1 or 2, got %d" n)
    in
    let* nops = int_field ~default:100 "nops" j in
    let* iters = int_field ~default:300 "iters" j in
    let label =
      match Json.mem_str "label" j with
      | Some l -> l
      | None -> Armb_core.Ordering.to_string approach
    in
    Ok (Job.Model { label; mem_ops; approach; location; nops; iters })
  | "ring" ->
    let* combo = required "\"combo\"" (Json.mem_str "combo" j) in
    let* messages = int_field ~default:500 "messages" j in
    Ok (Job.Ring { combo; messages })
  | "fuzz" ->
    let* tests = int_field ~default:10 "tests" j in
    Ok (Job.Fuzz { tests })
  | "perturb" ->
    let* t = test_field j in
    let* intensities =
      match Json.member "intensities" j with
      | None -> Ok [ 0.5 ]
      | Some (Json.List l) ->
        map_result
          (fun v ->
            match Json.number v with
            | Some f when f >= 0.0 && f <= 1.0 -> Ok f
            | Some f -> Error (Printf.sprintf "intensity %g outside [0,1]" f)
            | None -> Error "\"intensities\" entries must be numbers")
          l
      | Some _ -> Error "\"intensities\" must be a list"
    in
    let* plan_seeds =
      match Json.member "plan_seeds" j with
      | None -> Ok [ 1 ]
      | Some (Json.List l) ->
        map_result
          (fun v ->
            match Json.int v with
            | Some n -> Ok n
            | None -> Error "\"plan_seeds\" entries must be integers")
          l
      | Some _ -> Error "\"plan_seeds\" must be a list"
    in
    if intensities = [] || plan_seeds = [] then
      Error "\"intensities\" and \"plan_seeds\" must be non-empty"
    else Ok (Job.Perturb { test = t; intensities; plan_seeds })
  | "opt" ->
    let* program =
      match Json.member "program" j with
      | Some (Json.Str name) ->
        required
          (Printf.sprintf "known program (got %S)" name)
          (Armb_opt.Optimizer.find_input name)
      | Some (Json.Obj _ as p) -> program_of_json p
      | Some _ -> Error "\"program\" must be a name or an inline object"
      | None -> Error "missing \"program\""
    in
    let* algorithm =
      match Json.mem_str "algorithm" j with
      | None -> Ok "second-chance"
      | Some a -> (
        match Armb_opt.Optimizer.algorithm_of_string a with
        | Some _ -> Ok a
        | None -> Error (Printf.sprintf "unknown algorithm %S" a))
    in
    let* unroll = int_field ~default:2 "unroll" j in
    Ok (Job.Opt { program; algorithm; unroll })
  | k -> Error (Printf.sprintf "unknown kind %S" k)

let rc_of_json j =
  let kv = ref [] in
  (match Json.mem_str "platform" j with
  | Some p -> kv := ("platform", p) :: !kv
  | None -> ());
  (match Json.member "cores" j with
  | Some (Json.List [ a; b ]) -> (
    match (Json.int a, Json.int b) with
    | Some a, Some b -> kv := ("cores", Printf.sprintf "%d,%d" a b) :: !kv
    | _ -> kv := ("cores", "bad") :: !kv)
  | Some (Json.Str s) -> kv := ("cores", s) :: !kv
  | Some _ -> kv := ("cores", "bad") :: !kv
  | None -> ());
  (match Json.mem_int "seed" j with
  | Some s -> kv := ("seed", string_of_int s) :: !kv
  | None -> ());
  (match Json.mem_int "trials" j with
  | Some s -> kv := ("trials", string_of_int s) :: !kv
  | None -> ());
  RC.of_kv ~defaults:(RC.make ~seed:42 ~trials:40 Armb_platform.Platform.kunpeng916) !kv

let request_of_json ?(default_id = "?") j =
  let id =
    match Json.member "id" j with
    | Some (Json.Str s) -> s
    | Some (Json.Int n) -> string_of_int n
    | _ -> default_id
  in
  let client = Option.value ~default:"anon" (Json.mem_str "client" j) in
  let* priority =
    match Json.mem_str "priority" j with
    | None -> Ok Engine.Normal
    | Some p ->
      required
        (Printf.sprintf "valid \"priority\" (got %S)" p)
        (Engine.priority_of_string p)
  in
  let* spec = spec_of_json j in
  let* rc = rc_of_json j in
  let* fault =
    match Json.member "fault" j with
    | None -> Ok 0.0
    | Some v -> (
      match Json.number v with
      | Some f when f >= 0.0 && f <= 1.0 -> Ok f
      | Some f -> Error (Printf.sprintf "\"fault\" %g outside [0,1]" f)
      | None -> Error "\"fault\" is not a number")
  in
  Ok { Engine.id; client; priority; job = { Job.spec; rc; fault } }

let request_of_line ?default_id line =
  let* j = Json.of_string line in
  request_of_json ?default_id j

let response_to_json (r : Engine.response) =
  let base = [ ("id", Json.Str r.id); ("client", Json.Str r.client) ] in
  match r.reply with
  | Engine.Result { origin; key; wall_us; result } ->
    Json.Obj
      (base
      @ [
          ("status", Json.Str "ok");
          ( "origin",
            Json.Str
              (match origin with
              | Engine.Cold -> "cold"
              | Engine.Hit -> "hit"
              | Engine.Coalesced -> "coalesced") );
          ("key", Json.Str key);
          ("wall_us", Json.Int wall_us);
          ("events", Json.Int result.Job.events);
          ("cycles", Json.Int result.Job.cycles);
          ("result", Json.Str result.Job.text);
        ])
  | Engine.Shed { retry_after_ms } ->
    Json.Obj
      (base @ [ ("status", Json.Str "shed"); ("retry_after_ms", Json.Int retry_after_ms) ])
  | Engine.Error msg ->
    Json.Obj (base @ [ ("status", Json.Str "error"); ("message", Json.Str msg) ])

let response_to_line r = Json.to_string (response_to_json r)
