(** A bounded memo cache with least-recently-used eviction.

    Keys are content addresses ({!Key}), values are whatever the engine
    memoizes (job results).  [find] counts as a use; [put] of an
    existing key refreshes both value and recency.  Capacity is a hard
    bound on resident entries — inserting the [cap+1]-th entry evicts
    the least recently used one in O(1). *)

type 'a t

val create : cap:int -> 'a t
(** Raises [Invalid_argument] when [cap < 1] (a cacheless engine is
    expressed by not consulting the cache, not by a zero-capacity
    one). *)

val cap : 'a t -> int
val size : 'a t -> int

val find : 'a t -> string -> 'a option
(** Bumps the entry to most-recently-used on a hit. *)

val mem : 'a t -> string -> bool
(** Pure lookup: does not touch recency. *)

val put : 'a t -> string -> 'a -> unit

val keys_mru : 'a t -> string list
(** All resident keys, most recently used first (introspection for
    tests and the metrics dump). *)
