module Lang = Armb_litmus.Lang
module Enumerate = Armb_litmus.Enumerate

(* Canonical renaming: shared variables in order of first appearance
   scanning threads in program order (variables referenced only by the
   init section follow, ordered by initial value — such variables are
   interchangeable, so ties cannot change the serialization); registers
   per thread in order of first occurrence (uses before definitions
   included, since a use of a never-written register reads 0 and is
   still part of the program's shape). *)

let build_maps (t : Lang.test) =
  let vmap : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let vnext = ref 0 in
  let see_var v =
    if not (Hashtbl.mem vmap v) then begin
      Hashtbl.add vmap v (Printf.sprintf "v%d" !vnext);
      incr vnext
    end
  in
  let rmaps =
    List.map
      (fun th ->
        let rmap : (string, string) Hashtbl.t = Hashtbl.create 8 in
        let rnext = ref 0 in
        let see_reg r =
          if not (Hashtbl.mem rmap r) then begin
            Hashtbl.add rmap r (Printf.sprintf "r%d" !rnext);
            incr rnext
          end
        in
        List.iter
          (fun instr ->
            (match instr with
            | Lang.Load { var; _ } | Lang.Store { var; _ } -> see_var var
            | Lang.Fence _ -> ());
            match instr with
            | Lang.Load { reg; addr_dep; _ } ->
              Option.iter see_reg addr_dep;
              see_reg reg
            | Lang.Store { v; addr_dep; _ } -> (
              Option.iter see_reg addr_dep;
              match v with Lang.Reg r -> see_reg r | Lang.Const _ -> ())
            | Lang.Fence _ -> ())
          th;
        rmap)
      t.threads
  in
  (* init-only variables, ordered by initial value *)
  let init_only =
    List.filter (fun (v, _) -> not (Hashtbl.mem vmap v)) t.init
    |> List.sort (fun (_, a) (_, b) -> Int64.compare a b)
  in
  List.iter (fun (v, _) -> see_var v) init_only;
  (vmap, rmaps)

let canonical_test (t : Lang.test) =
  let vmap, rmaps = build_maps t in
  let cvar v = try Hashtbl.find vmap v with Not_found -> "v?" ^ v in
  let creg i r =
    match List.nth_opt rmaps i with
    | Some m -> ( try Hashtbl.find m r with Not_found -> "r?" ^ r)
    | None -> "r?" ^ r
  in
  let b = Buffer.create 512 in
  (* threads *)
  List.iteri
    (fun i th ->
      Buffer.add_string b (Printf.sprintf "T%d|" i);
      List.iter
        (fun instr ->
          (match instr with
          | Lang.Load { var; reg; acquire; addr_dep } ->
            Buffer.add_string b
              (Printf.sprintf "L %s %s a%d d%s" (cvar var) (creg i reg)
                 (if acquire then 1 else 0)
                 (match addr_dep with Some r -> creg i r | None -> "-"))
          | Lang.Store { var; v; release; addr_dep } ->
            Buffer.add_string b
              (Printf.sprintf "S %s %s l%d d%s" (cvar var)
                 (match v with
                 | Lang.Const k -> Printf.sprintf "c%Ld" k
                 | Lang.Reg r -> creg i r)
                 (if release then 1 else 0)
                 (match addr_dep with Some r -> creg i r | None -> "-"))
          | Lang.Fence f -> Buffer.add_string b ("F " ^ Lang.fence_to_string f));
          Buffer.add_char b ';')
        th;
      Buffer.add_char b '\n')
    t.threads;
  (* init: every canonical variable with its (default-0) initial value,
     sorted by canonical name — binding order and explicit zeros are
     presentation *)
  let inits =
    Hashtbl.fold
      (fun v cv acc ->
        let x = match List.assoc_opt v t.init with Some x -> x | None -> 0L in
        (cv, x) :: acc)
      vmap []
    |> List.sort compare
  in
  List.iter (fun (cv, x) -> Buffer.add_string b (Printf.sprintf "I %s=%Ld\n" cv x)) inits;
  Buffer.add_string b (Printf.sprintf "E tso=%b wmm=%b\n" t.expect_tso t.expect_wmm);
  (* predicate fingerprint: the [interesting] closure cannot be hashed,
     but its extension over the reachable outcome set can — evaluate it
     on every WMM-reachable outcome and serialize (renamed outcome,
     verdict) pairs.  Renamed tests fingerprint identically; different
     predicates over the same program cannot collide unless they agree
     everywhere reachable (in which case the computations coincide). *)
  let rename_binding (k, v) =
    let canon =
      match String.index_opt k ':' with
      | Some colon -> (
        let pre = String.sub k 0 colon in
        let post = String.sub k (colon + 1) (String.length k - colon - 1) in
        if pre = "mem" then "mem:" ^ cvar post
        else
          match int_of_string_opt pre with
          | Some i -> Printf.sprintf "%d:%s" i (creg i post)
          | None -> k)
      | None -> k
    in
    (canon, v)
  in
  let fp =
    List.map
      (fun outcome ->
        let lookup r =
          match List.assoc_opt r outcome with Some v -> v | None -> 0L
        in
        let verdict = t.interesting lookup in
        let renamed = List.sort compare (List.map rename_binding outcome) in
        Printf.sprintf "O %s -> %b" (Enumerate.outcome_to_string renamed) verdict)
      (Enumerate.enumerate Enumerate.Wmm t)
    |> List.sort compare
  in
  List.iter
    (fun line ->
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    fp;
  Buffer.contents b

module Cfg = Armb_litmus.Cfg

(* CFG programs are keyed structurally — surface names and all.  Unlike
   [canonical_test] there is no renaming pass and no predicate
   fingerprint: every program that reaches the service was built by the
   codec, which only constructs programs with the trivially-false
   predicate, so two structurally-equal programs always denote the same
   computation, and a renamed variant merely misses the cache (costs a
   recomputation, never a wrong coalesce). *)
let canonical_program (p : Cfg.program) =
  let b = Buffer.create 512 in
  let add_instr i (instr : Lang.instr) =
    ignore i;
    (match instr with
    | Lang.Load { var; reg; acquire; addr_dep } ->
      Buffer.add_string b
        (Printf.sprintf "L %s %s a%d d%s" var reg
           (if acquire then 1 else 0)
           (match addr_dep with Some r -> r | None -> "-"))
    | Lang.Store { var; v; release; addr_dep } ->
      Buffer.add_string b
        (Printf.sprintf "S %s %s l%d d%s" var
           (match v with
           | Lang.Const k -> Printf.sprintf "c%Ld" k
           | Lang.Reg r -> r)
           (if release then 1 else 0)
           (match addr_dep with Some r -> r | None -> "-"))
    | Lang.Fence f -> Buffer.add_string b ("F " ^ Lang.fence_to_string f));
    Buffer.add_char b ';'
  in
  List.iteri
    (fun i (th : Cfg.thread_cfg) ->
      Buffer.add_string b (Printf.sprintf "T%d entry=%s\n" i th.Cfg.entry);
      List.iter
        (fun (blk : Cfg.block) ->
          Buffer.add_string b (Printf.sprintf "B %s|" blk.Cfg.label);
          List.iter (add_instr i) blk.Cfg.body;
          (match blk.Cfg.term with
          | Cfg.Goto l -> Buffer.add_string b ("goto " ^ l)
          | Cfg.Branch { reg; if_nonzero; if_zero } ->
            Buffer.add_string b
              (Printf.sprintf "br %s %s %s" reg if_nonzero if_zero)
          | Cfg.Return -> Buffer.add_string b "ret");
          Buffer.add_char b '\n')
        th.Cfg.blocks)
    p.Cfg.threads;
  List.iter
    (fun (v, x) -> Buffer.add_string b (Printf.sprintf "I %s=%Ld\n" v x))
    (List.sort compare p.Cfg.init);
  Buffer.add_string b
    (Printf.sprintf "E tso=%b wmm=%b\n" p.Cfg.expect_tso p.Cfg.expect_wmm);
  Buffer.contents b

let digest s = Digest.to_hex (Digest.string s)
