module AM = Armb_core.Abstracted_model
module Barrier = Armb_cpu.Barrier
module Core = Armb_cpu.Core
module Event_queue = Armb_sim.Event_queue
module Machine = Armb_cpu.Machine
module Ordering = Armb_core.Ordering
module P = Armb_platform.Platform

type sample = {
  name : string;
  events : int;
  wall_s : float;
  events_per_sec : float;
}

type results = { mode : string; fault : string; samples : sample list }

(* ---------- workloads ---------- *)

(* A slice of the Figure 3 store-store sweep: the abstracted model over
   the order-preserving approaches and NOP counts that dominate the
   figure, on both NUMA placements of the kunpeng916 model.  This is
   the per-op hot path: loads, stores, barriers, compute batches. *)
let fig3_slice ~iters ~nop_counts () =
  let kunpeng = P.kunpeng916 in
  let cross = Armb_mem.Topology.num_cores kunpeng.Armb_cpu.Config.topo / 2 in
  let placements = [ (0, 4); (0, cross) ] in
  let approaches =
    [
      (Ordering.No_barrier, AM.Loc1);
      (Ordering.Bar (Barrier.Dmb Full), AM.Loc1);
      (Ordering.Bar (Barrier.Dmb Full), AM.Loc2);
      (Ordering.Bar (Barrier.Dmb St), AM.Loc1);
      (Ordering.Stlr_release, AM.Loc1);
    ]
  in
  let events = ref 0 in
  List.iter
    (fun cores ->
      List.iter
        (fun (approach, location) ->
          List.iter
            (fun nops ->
              let spec =
                { (AM.default_spec kunpeng) with cores; approach; location; nops; iters }
              in
              let _cycles, ev = AM.run_stats spec in
              events := !events + ev)
            nop_counts)
        approaches)
    placements;
  !events

(* The whole litmus catalogue on the timing simulator: many short
   machines, so per-trial setup cost (allocating the memory system and
   event queue) weighs as much as the per-op path. *)
let litmus_catalogue ?fault ~trials () =
  List.fold_left
    (fun acc t ->
      let r = Armb_litmus.Sim_runner.run ?fault ~trials ~seed:42 t in
      acc + r.Armb_litmus.Sim_runner.events)
    0 Armb_litmus.Catalogue.all

(* The Figure 6(a) SPSC ring with the best-legal barrier combination
   (DMB ld - DMB st): spin loops, line watches and cross-core line
   bouncing — the event queue's wakeup machinery. *)
let fig6a_ring ?fault ~messages () =
  let cfg = P.kunpeng916 in
  let cross = Armb_mem.Topology.num_cores cfg.Armb_cpu.Config.topo / 2 in
  let m = Machine.create ?fault cfg in
  let prod_cnt = Machine.alloc_line m in
  let cons_cnt = Machine.alloc_line m in
  let slots = 16 in
  let buf = Machine.alloc_lines m slots in
  Machine.spawn m ~core:0 (fun c ->
      for i = 0 to messages - 1 do
        let avail v = Int64.to_int v > i - slots in
        let cv = Core.await c (Core.load c cons_cnt) in
        if not (avail cv) then ignore (Core.spin_until c cons_cnt avail);
        Core.barrier c (Barrier.Dmb Ld);
        Core.compute c 60;
        Core.store c (buf + (i mod slots * 64)) (Int64.of_int i);
        Core.barrier c (Barrier.Dmb St);
        Core.store c prod_cnt (Int64.of_int (i + 1))
      done);
  Machine.spawn m ~core:cross (fun c ->
      for i = 0 to messages - 1 do
        ignore (Core.spin_until c prod_cnt (fun v -> Int64.to_int v > i));
        Core.barrier c (Barrier.Dmb Ld);
        ignore (Core.await c (Core.load c (buf + (i mod slots * 64))));
        Core.compute c 10;
        Core.store c cons_cnt (Int64.of_int (i + 1))
      done);
  Machine.run_exn m;
  Event_queue.processed (Machine.queue m)

(* One differential fuzz round: random litmus tests checked against the
   operational model — simulator trials interleaved with enumeration. *)
let fuzz_round ?fault ~tests ~trials_per_test () =
  let r = Armb_litmus.Fuzz.run ?fault ~tests ~trials_per_test ~seed:1234 () in
  r.Armb_litmus.Fuzz.events

(* The job service over a duplicate-heavy demo batch.  serve-cold
   measures the engine's queue/key/execute overhead with memoization
   off; serve-warm serves the same batch out of a populated memo cache.
   Events count what each ok response *serves* (a cache hit credits its
   computation's events), so the warm number reflects cache throughput.
   Like fig3-slice these stay clean under a fault plan: demo requests
   carry fault intensity 0. *)
module Service = Armb_service

let served (b : Service.Serve.batch) =
  List.fold_left
    (fun acc (r : Service.Engine.response) ->
      match r.Service.Engine.reply with
      | Service.Engine.Result { result; _ } -> acc + result.Service.Job.events
      | _ -> acc)
    0 b.Service.Serve.responses

let serve_cold ~requests () =
  let lines = Service.Serve.demo_requests ~requests ~seed:11 () in
  let engine = Service.Engine.create ~no_cache:true ~queue_bound:(max 256 requests) () in
  served (Service.Serve.run_batch engine ~lines)

(* The populating pass runs at workload-construction time, outside the
   timed region: only cache service is measured. *)
let serve_warm ~requests =
  let lines = Service.Serve.demo_requests ~requests ~seed:11 () in
  let engine = Service.Engine.create ~queue_bound:(max 256 requests) () in
  ignore (Service.Serve.run_batch engine ~lines : Service.Serve.batch);
  fun () -> served (Service.Serve.run_batch engine ~lines)

(* The sharded service over the Zipf-skewed batch: serve-zipf-warm is
   the single-domain baseline on the same traffic the shard pool gets,
   so the sharded/single ratio isolates the domain layer from the
   traffic shape.  serve-sharded-cold includes pool spawn + shutdown
   (the deployment cost); serve-sharded-warm times a second batch
   against already-warm shard caches, pool construction and the warming
   pass outside the timed region.  On hosts with fewer cores than
   domains these measure time-slicing overhead, not scaling — the
   scaling table in EXPERIMENTS.md records both. *)
let serve_zipf_warm ~requests =
  let lines = Service.Serve.zipf_requests ~requests ~seed:11 () in
  let engine = Service.Engine.create ~queue_bound:(max 256 requests) () in
  ignore (Service.Serve.run_batch engine ~lines : Service.Serve.batch);
  fun () -> served (Service.Serve.run_batch engine ~lines)

let serve_sharded_cold ~domains ~requests () =
  let lines = Service.Serve.zipf_requests ~requests ~seed:11 () in
  let pool = Service.Shard.create ~domains ~queue_bound:(max 256 requests) () in
  let events = served (Service.Shard.run_batch pool ~lines) in
  ignore (Service.Shard.shutdown pool : Service.Engine.response list);
  events

(* The warm pool outlives the measurement (the process exits right
   after); keep sharded workloads last so idle shards never overlap a
   timed region. *)
let serve_sharded_warm ~domains ~requests =
  let lines = Service.Serve.zipf_requests ~requests ~seed:11 () in
  let pool = Service.Shard.create ~domains ~queue_bound:(max 256 requests) () in
  ignore (Service.Shard.run_batch pool ~lines : Service.Serve.batch);
  fun () -> served (Service.Shard.run_batch pool ~lines)

(* The many-core scalability workloads: a 256-core manycore machine
   running barrier episodes.  many-core-central hammers one fetch-add
   line with a 256-wide release fan-out — the widest sharer sets and
   deepest same-timestamp event bursts the kernel produces;
   many-core-tree spreads arrivals over a combining tree, so the event
   mix shifts from one hot line to many lukewarm ones.  Both are pure
   simulator workloads (no fault hook: a barrier that loses a wakeup
   deadlocks rather than measuring anything). *)
let many_core ~kind ~cores ~episodes ~work () =
  let spec =
    {
      Armb_sync.Sync_barrier.cfg = P.manycore ~cores;
      kind;
      cores = List.init cores Fun.id;
      episodes;
      work;
    }
  in
  (Armb_sync.Sync_barrier.run spec).Armb_sync.Sync_barrier.events

(* ---------- harness ---------- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let events = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let events_per_sec = if events > 0 && wall_s > 0. then float_of_int events /. wall_s else 0. in
  (events, wall_s, events_per_sec)

let run ?(quick = false) ?fault ?only ?(progress = fun _ -> ()) () =
  (* Record whether a fault plan perturbed the measurement: a perturbed
     number must never be confused with a clean baseline.  The null plan
     counts as faults-off (the machine drops it at creation anyway).
     fig3-slice runs on the analytic abstracted model, outside the
     machine and hence outside the injector's reach — it stays clean
     even under a plan. *)
  let fault =
    match fault with
    | Some (sp : Armb_fault.Plan.spec) when not (Armb_fault.Plan.is_null sp) -> Some sp
    | Some _ | None -> None
  in
  let fault_name = match fault with Some sp -> sp.Armb_fault.Plan.name | None -> "none" in
  let workloads =
    if quick then
      [
        ("fig3-slice", fig3_slice ~iters:4000 ~nop_counts:[ 100; 700 ]);
        ("litmus-catalogue", litmus_catalogue ?fault ~trials:800);
        ("fig6a-ring", fig6a_ring ?fault ~messages:40000);
        ("fuzz-round", fuzz_round ?fault ~tests:30 ~trials_per_test:120);
        ("serve-cold", serve_cold ~requests:120);
        ("serve-warm", serve_warm ~requests:120);
        ("serve-zipf-warm", serve_zipf_warm ~requests:120);
        ("serve-sharded-cold", serve_sharded_cold ~domains:2 ~requests:120);
        ("serve-sharded-warm", serve_sharded_warm ~domains:2 ~requests:120);
        ( "many-core-central",
          many_core ~kind:Armb_sync.Sync_barrier.Central ~cores:256 ~episodes:2 ~work:64 );
        ( "many-core-tree",
          many_core ~kind:(Armb_sync.Sync_barrier.Tree 4) ~cores:256 ~episodes:2 ~work:64 );
      ]
    else
      [
        ("fig3-slice", fig3_slice ~iters:15000 ~nop_counts:[ 100; 300; 500; 700 ]);
        ("litmus-catalogue", litmus_catalogue ?fault ~trials:2000);
        ("fig6a-ring", fig6a_ring ?fault ~messages:100000);
        ("fuzz-round", fuzz_round ?fault ~tests:60 ~trials_per_test:150);
        ("serve-cold", serve_cold ~requests:400);
        ("serve-warm", serve_warm ~requests:400);
        ("serve-zipf-warm", serve_zipf_warm ~requests:400);
        ("serve-sharded-cold", serve_sharded_cold ~domains:4 ~requests:400);
        ("serve-sharded-warm", serve_sharded_warm ~domains:4 ~requests:400);
        ( "many-core-central",
          many_core ~kind:Armb_sync.Sync_barrier.Central ~cores:256 ~episodes:32 ~work:64 );
        ( "many-core-tree",
          many_core ~kind:(Armb_sync.Sync_barrier.Tree 4) ~cores:256 ~episodes:32 ~work:64 );
      ]
  in
  let workloads =
    match only with
    | None -> workloads
    | Some ids ->
      let known = List.map fst workloads in
      List.iter
        (fun id ->
          if not (List.mem id known) then
            invalid_arg
              (Printf.sprintf "Perf.run: unknown workload %S (valid: %s)" id
                 (String.concat ", " known)))
        ids;
      List.filter (fun (name, _) -> List.mem name ids) workloads
  in
  let samples =
    List.map
      (fun (name, f) ->
        progress name;
        let events, wall_s, events_per_sec = time f in
        { name; events; wall_s; events_per_sec })
      workloads
  in
  { mode = (if quick then "quick" else "full"); fault = fault_name; samples }

let pp ppf r =
  Format.fprintf ppf "@[<v>kernel perf (%s mode%s)@," r.mode
    (if r.fault = "none" then "" else ", fault plan " ^ r.fault);
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-18s %9d events  %8.3f s  %12.0f events/s@," s.name s.events
        s.wall_s s.events_per_sec)
    r.samples;
  Format.fprintf ppf "@]"

(* ---------- JSON serialization ---------- *)

(* Hand-rolled, line-oriented JSON: one key per line, so the loader can
   be a trivial line scanner instead of pulling in a JSON dependency. *)
let to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"armb-perf-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": %S,\n" r.mode);
  Buffer.add_string b (Printf.sprintf "  \"fault\": %S,\n" r.fault);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b "    {\n";
      Buffer.add_string b (Printf.sprintf "      \"name\": %S,\n" s.name);
      Buffer.add_string b (Printf.sprintf "      \"events\": %d,\n" s.events);
      Buffer.add_string b (Printf.sprintf "      \"wall_s\": %.6f,\n" s.wall_s);
      Buffer.add_string b (Printf.sprintf "      \"events_per_sec\": %.1f\n" s.events_per_sec);
      Buffer.add_string b
        (if i = List.length r.samples - 1 then "    }\n" else "    },\n"))
    r.samples;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_json ~path r =
  let oc = open_out path in
  output_string oc (to_json r);
  close_out oc

let strip_trailing_comma s =
  let s = String.trim s in
  if String.length s > 0 && s.[String.length s - 1] = ',' then
    String.sub s 0 (String.length s - 1)
  else s

let field_value line key =
  let prefix = Printf.sprintf "\"%s\":" key in
  let line = String.trim line in
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then
    Some
      (strip_trailing_comma
         (String.sub line (String.length prefix) (String.length line - String.length prefix)))
  else None

let unquote s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    String.sub s 1 (String.length s - 2)
  else s

let load_json ~path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let lines = List.rev !lines in
    let mode = ref "" in
    (* pre-fault files simply never set the key: they read as faults-off *)
    let fault = ref "none" in
    let samples = ref [] in
    let cur_name = ref None and cur_events = ref None and cur_wall = ref None in
    let cur_eps = ref None in
    let flush () =
      match (!cur_name, !cur_events, !cur_wall, !cur_eps) with
      | Some name, Some events, Some wall_s, Some events_per_sec ->
        samples := { name; events; wall_s; events_per_sec } :: !samples;
        cur_name := None;
        cur_events := None;
        cur_wall := None;
        cur_eps := None
      | _ -> ()
    in
    List.iter
      (fun line ->
        (match field_value line "mode" with Some v -> mode := unquote v | None -> ());
        (match field_value line "fault" with Some v -> fault := unquote v | None -> ());
        (match field_value line "name" with
        | Some v ->
          flush ();
          cur_name := Some (unquote v)
        | None -> ());
        (match field_value line "events" with
        | Some v -> cur_events := int_of_string_opt (String.trim v)
        | None -> ());
        (match field_value line "wall_s" with
        | Some v -> cur_wall := float_of_string_opt (String.trim v)
        | None -> ());
        match field_value line "events_per_sec" with
        | Some v -> cur_eps := float_of_string_opt (String.trim v)
        | None -> ())
      lines;
    flush ();
    match (!mode, !samples) with
    | "", [] -> None
    | mode, samples -> Some { mode; fault = !fault; samples = List.rev samples }
  end

(* ---------- baseline comparison ---------- *)

type regression = { workload : string; baseline_eps : float; current_eps : float }

let compare_against ~baseline current ~tolerance =
  List.filter_map
    (fun s ->
      if s.events = 0 then None
      else
        match List.find_opt (fun b -> b.name = s.name) baseline.samples with
        | Some b when b.events > 0 && b.events_per_sec > 0. ->
          if s.events_per_sec < b.events_per_sec *. (1. -. tolerance) then
            Some
              {
                workload = s.name;
                baseline_eps = b.events_per_sec;
                current_eps = s.events_per_sec;
              }
          else None
        | _ -> None)
    current.samples
