(** Kernel-throughput benchmark harness.

    Runs a fixed set of representative simulator workloads — a slice of
    the Figure 3 store-store sweep, the full litmus catalogue, the
    Figure 6(a) SPSC ring, a differential fuzz round, the job service,
    and two 256-core barrier workloads (many-core-central /
    many-core-tree) that stress wide sharer sets and same-timestamp
    event bursts — and reports events processed, wall time and
    events/second for each.  The
    workloads are deterministic (fixed seeds); only the wall-clock
    measurements vary between runs.  Results serialize to
    [BENCH_perf.json] so successive PRs can track the kernel's
    throughput trajectory, and a committed baseline can gate
    regressions in CI. *)

type sample = {
  name : string;
  events : int;  (** kernel events processed (0 when not measurable) *)
  wall_s : float;
  events_per_sec : float;  (** 0 when [events] is 0 *)
}

type results = {
  mode : string;  (** "full" or "quick" *)
  fault : string;  (** fault plan active during the run; "none" when off *)
  samples : sample list;
}

val run :
  ?quick:bool ->
  ?fault:Armb_fault.Plan.spec ->
  ?only:string list ->
  ?progress:(string -> unit) ->
  unit ->
  results
(** Execute every workload.  [quick] shrinks iteration/trial counts
    (~5x) for CI smoke use; [fault] perturbs the machine-backed
    workloads with the given plan and stamps the results with its name
    so a perturbed measurement can never pass for a clean baseline (a
    null plan counts as faults-off); [only] restricts the run to the
    named workloads, preserving the canonical order — an unknown name
    raises [Invalid_argument] listing the valid ids; [progress]
    receives one message per workload as it starts. *)

val pp : Format.formatter -> results -> unit

val to_json : results -> string

val write_json : path:string -> results -> unit

val load_json : path:string -> results option
(** Minimal parser for files produced by {!write_json}; [None] when the
    file is missing or unparseable. *)

type regression = { workload : string; baseline_eps : float; current_eps : float }

val compare_against : baseline:results -> results -> tolerance:float -> regression list
(** Workloads whose events/sec dropped more than [tolerance]
    (fractional, e.g. 0.2 = 20%) below the baseline.  Workloads absent
    from either side, or without event counts, are skipped. *)
