(** The RPO barrier-merging pass and the over-fencing stress input.

    A fence is modelled as the set of (from-kind, to-kind) ordering
    pairs it enforces.  The sweep turns each fence into a pending
    barrier restricted to its {e alive} pairs (escape analysis on both
    sides), sinks it past accesses its pairs do not mention, and
    materializes it — as the cheapest covering fence — immediately
    before the first access they do mention, merging with other pends
    materializing at the same point.  Fences with no alive pair vanish;
    DSB is pinned (never weakened, sunk or dropped) but absorbs
    whatever is pending at its position.

    Soundness is structural: every emitted fence orders exactly the
    (earlier, later) access pairs its original ordered, so the
    program's outcome set is preserved by construction — and the
    optimizer still re-verifies against the enumerator afterwards. *)

module Lang = Armb_litmus.Lang
module Cfg = Armb_litmus.Cfg

type kind = Ld | St

val pairs_of : Lang.fence -> (kind * kind) list
(** The ordering-pair lattice: [dmb.st] = St->St; [dmb.ld] and ctrl+ISB
    = Ld->Ld, Ld->St; [dmb]/[dsb] = everything. *)

val cover : (kind * kind) list -> Lang.fence
(** Cheapest fence whose pairs are a superset of the (non-empty)
    needed set: DMB st, then DMB ld, then DMB full. *)

type stats = {
  mutable dead : int;  (** fences dropped: no ordering pair alive *)
  mutable weakened : int;  (** fences re-emitted as a cheaper kind *)
  mutable merged : int;  (** fences absorbed into another emission *)
}

val merge : ?cross_block:bool -> Cfg.program -> Cfg.program * stats
(** One RPO sweep per thread.  With [cross_block] (default true)
    pending barriers follow straight chain edges (unique successor
    whose only predecessor is this block, forward in RPO); without it
    they materialize at the block boundary — the SINGLE_BB flavor. *)

val over_fence : Cfg.program -> Cfg.program
(** DMB full at every instruction boundary of every block; the name
    gains ["+overfenced"]. *)
