(* Optimizer fuzz soak: generate a random small CFG, over-fence it,
   optimize, and re-verify — asserting soundness (the optimized
   program's bounded WMM outcome set is bit-identical to the
   over-fenced input's) and barrier-count monotonicity (optimization
   never emits more fences than it was given).  Costing is skipped:
   this loop is about correctness volume, not pricing. *)

module Cfg = Armb_litmus.Cfg
module Fuzz = Armb_litmus.Fuzz
module Mutate = Armb_litmus.Mutate
module Rng = Armb_sim.Rng

type report = {
  rounds : int;
  unsound : int;  (** FATAL: optimized outcome set diverged *)
  fence_increase : int;  (** FATAL: more fences out than in *)
  improved : int;  (** rounds where a fence was removed or weakened *)
  fences_in : int;
  fences_out : int;
  failures : string list;
}

let ok r = r.unsound = 0 && r.fence_increase = 0

let run ?(rounds = 12) ?(seed = 2025) ?(algorithm = Optimizer.Linear_scan) ?(unroll = 2) () =
  let rng = Rng.create seed in
  let unsound = ref 0 and fence_increase = ref 0 and improved = ref 0 in
  let fences_in = ref 0 and fences_out = ref 0 in
  let failures = ref [] in
  for i = 1 to rounds do
    let p = Mutate.rename_cfg (Printf.sprintf "fuzz-cfg-%d" i) (Fuzz.generate_cfg rng) in
    let q = Passes.over_fence p in
    let r = Optimizer.optimize ~algorithm ~unroll ~cost:false q in
    fences_in := !fences_in + r.Optimizer.input_fences;
    fences_out := !fences_out + r.Optimizer.output_fences;
    if not r.Optimizer.verdict.Verify.sound then begin
      incr unsound;
      failures :=
        Printf.sprintf "%s: UNSOUND (%s): %s" q.Cfg.name r.Optimizer.verdict.Verify.oracle
          r.Optimizer.verdict.Verify.detail
        :: !failures
    end;
    if r.Optimizer.output_fences > r.Optimizer.input_fences then begin
      incr fence_increase;
      failures :=
        Printf.sprintf "%s: fence count grew %d -> %d" q.Cfg.name r.Optimizer.input_fences
          r.Optimizer.output_fences
        :: !failures
    end;
    if Optimizer.improved r then incr improved
  done;
  {
    rounds;
    unsound = !unsound;
    fence_increase = !fence_increase;
    improved = !improved;
    fences_in = !fences_in;
    fences_out = !fences_out;
    failures = List.rev !failures;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "opt soak: %d rounds, %d improved, fences %d -> %d, %d unsound, %d fence increases"
    r.rounds r.improved r.fences_in r.fences_out r.unsound r.fence_increase;
  List.iter (fun f -> Format.fprintf ppf "@.  %s" f) r.failures
