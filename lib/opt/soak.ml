(* Optimizer fuzz soak: generate a random small CFG, over-fence it,
   optimize, and re-verify — asserting soundness (the optimized
   program's bounded WMM outcome set is bit-identical to the
   over-fenced input's) and barrier-count monotonicity (optimization
   never emits more fences than it was given).  Costing is skipped:
   this loop is about correctness volume, not pricing. *)

module Cfg = Armb_litmus.Cfg
module Fuzz = Armb_litmus.Fuzz
module Mutate = Armb_litmus.Mutate
module Rng = Armb_sim.Rng

type report = {
  rounds : int;
  unsound : int;  (** FATAL: optimized outcome set diverged *)
  fence_increase : int;  (** FATAL: more fences out than in *)
  improved : int;  (** rounds where a fence was removed or weakened *)
  fences_in : int;
  fences_out : int;
  failures : string list;
}

let ok r = r.unsound = 0 && r.fence_increase = 0

(* One soak iteration as a first-class record, mirroring
   Armb_synth.Soak.round — the unified soak subsystem (lib/soak)
   consumes rounds directly and [run] folds them into the classic
   aggregate, so both views agree by construction. *)

type round = {
  index : int;
  program_name : string;
  input_fences : int;
  output_fences : int;
  improved : bool;
  unsound : bool;
  fence_increase : bool;
  failures : string list;
}

let round_ok r = (not r.unsound) && not r.fence_increase

let run_round ~algorithm ~unroll rng i =
  let p = Mutate.rename_cfg (Printf.sprintf "fuzz-cfg-%d" i) (Fuzz.generate_cfg rng) in
  let q = Passes.over_fence p in
  let r = Optimizer.optimize ~algorithm ~unroll ~cost:false q in
  let failures = ref [] in
  let unsound = not r.Optimizer.verdict.Verify.sound in
  if unsound then
    failures :=
      Printf.sprintf "%s: UNSOUND (%s): %s" q.Cfg.name r.Optimizer.verdict.Verify.oracle
        r.Optimizer.verdict.Verify.detail
      :: !failures;
  let fence_increase = r.Optimizer.output_fences > r.Optimizer.input_fences in
  if fence_increase then
    failures :=
      Printf.sprintf "%s: fence count grew %d -> %d" q.Cfg.name r.Optimizer.input_fences
        r.Optimizer.output_fences
      :: !failures;
  {
    index = i;
    program_name = q.Cfg.name;
    input_fences = r.Optimizer.input_fences;
    output_fences = r.Optimizer.output_fences;
    improved = Optimizer.improved r;
    unsound;
    fence_increase;
    failures = List.rev !failures;
  }

let run_rounds ?(rounds = 12) ?(seed = 2025) ?(algorithm = Optimizer.Linear_scan)
    ?(unroll = 2) () =
  let rng = Rng.create seed in
  List.init rounds (fun i -> run_round ~algorithm ~unroll rng (i + 1))

let report_of_rounds rounds =
  let count f = List.length (List.filter f rounds) in
  {
    rounds = List.length rounds;
    unsound = count (fun r -> r.unsound);
    fence_increase = count (fun r -> r.fence_increase);
    improved = count (fun r -> r.improved);
    fences_in = List.fold_left (fun a r -> a + r.input_fences) 0 rounds;
    fences_out = List.fold_left (fun a r -> a + r.output_fences) 0 rounds;
    failures = List.concat_map (fun r -> r.failures) rounds;
  }

let run ?rounds ?seed ?algorithm ?unroll () =
  report_of_rounds (run_rounds ?rounds ?seed ?algorithm ?unroll ())

let pp_report ppf r =
  Format.fprintf ppf
    "opt soak: %d rounds, %d improved, fences %d -> %d, %d unsound, %d fence increases"
    r.rounds r.improved r.fences_in r.fences_out r.unsound r.fence_increase;
  List.iter (fun f -> Format.fprintf ppf "@.  %s" f) r.failures
