(** The optimizer's re-verification loop.

    Loop-free programs: exact — {!Armb_litmus.Cfg.reachable} enumerates
    every path of a DAG, so soundness is bit-identical WMM outcome-set
    equality.  Loopy programs: both sides are compared at the same
    unroll bound (reorder-bounded model checking), and the happens-
    before sanitizer additionally runs over the longest slices of both
    — every racy pair the optimized program exhibits must already be
    present in the input. *)

module Cfg = Armb_litmus.Cfg

type verdict = {
  sound : bool;
  loop_free : bool;
  oracle : string;  (** which oracle produced the verdict *)
  detail : string;  (** human-readable evidence on failure *)
}

val loop_free : Cfg.program -> bool

val longest_slice_indices : ?unroll:int -> int -> Cfg.program -> int list
(** Indices (into {!Cfg.slices}) of the [n] longest slices — stable
    across fence edits, which never change the path structure. *)

val equivalent :
  ?unroll:int -> ?check_trials:int -> ?check_seed:int -> Cfg.program -> Cfg.program -> verdict
(** [equivalent original optimized].  Defaults: unroll 2, 25 sanitizer
    trials, seed 11. *)
