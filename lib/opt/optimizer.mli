(** Cost-ranked whole-program fence optimization.

    The algorithm ladder (in the BarrierSetter spirit): SINGLE_BB
    confines the merge pass to one basic block; LINEAR_SCAN carries
    pending barriers across straight chain edges; SECOND_CHANCE runs
    LINEAR_SCAN and then offers every surviving fence an oracle-guided
    second chance to disappear or weaken (kept only when the
    WMM-reachable outcome set stays bit-identical to the original
    program's) — the pass that removes fences subsumed by
    acquire/release attributes or dependencies, which no static
    analysis here can prove redundant.  If the full verdict (sanitizer
    included) rejects the second-chance result, its edits are discarded
    and the merge-only program is reported instead.

    Results are priced per calibrated platform by summing the timing
    simulator's average makespan over the longest slices, and reverted
    wholesale if any platform got slower. *)

module Lang = Armb_litmus.Lang
module Cfg = Armb_litmus.Cfg
module Cost = Armb_synth.Cost

type algorithm = Single_bb | Linear_scan | Second_chance

val algorithm_name : algorithm -> string
val algorithm_of_string : string -> algorithm option

type result = {
  name : string;
  algorithm : algorithm;
  input : Cfg.program;
  optimized : Cfg.program;
  input_fences : int;
  output_fences : int;
  removed : int;
  weakened : int;
  merged : int;
  verdict : Verify.verdict;
  costs_before : Cost.platform_cost list;
  costs_after : Cost.platform_cost list;
  reverted : bool;  (** optimization undone: some platform got slower *)
}

val fence_sites : Cfg.program -> (int * Cfg.label * int * Lang.fence) list
(** (thread, label, in-block index, fence) of every reachable non-DSB
    fence. *)

val optimize :
  ?algorithm:algorithm ->
  ?unroll:int ->
  ?cost:bool ->
  ?trials:int ->
  ?seed:int ->
  Cfg.program ->
  result
(** Defaults: SECOND_CHANCE, unroll 2, costing on (30 trials, seed 42).
    With [~cost:false] the platform race and the revert guard are
    skipped (the soak's mode). *)

val sweep_inputs : unit -> Cfg.program list
(** Every catalogue test (straight-line lifted and control-flow), each
    as-is and over-fenced. *)

val find_input : string -> Cfg.program option
(** Case-insensitive lookup in {!sweep_inputs} (over-fenced variants
    included, e.g. ["MP+overfenced"]). *)

val sweep :
  ?algorithm:algorithm ->
  ?unroll:int ->
  ?cost:bool ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  result list
(** {!optimize} over {!sweep_inputs}. *)

val improved : result -> bool
(** A barrier was removed or weakened (and nothing was reverted). *)
