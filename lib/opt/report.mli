(** Markdown and JSON rendering of optimizer results (the [armb opt]
    report and the CI artifact). *)

val pp_result : Format.formatter -> Optimizer.result -> unit
(** Human-readable single-program report: fence counts, verdict,
    per-platform before/after cycles. *)

val markdown : Optimizer.result list -> string
(** Summary table: one row per program, fence deltas, soundness,
    per-platform estimated-cycle savings. *)

val json : Optimizer.result list -> string
(** The same data as a JSON document (hand-rolled; no JSON library in
    the image). *)
