(* Markdown and JSON rendering of optimizer results (the [armb opt]
   report and the CI artifact).  JSON is hand-rolled like the synth
   report: no JSON library in the image. *)

module Cfg = Armb_litmus.Cfg
module Cost = Armb_synth.Cost

let pct_saving before after =
  if before <= 0.0 then 0.0 else (before -. after) /. before *. 100.0

let cost_pairs (r : Optimizer.result) =
  List.map
    (fun (cb : Cost.platform_cost) ->
      let after =
        match
          List.find_opt (fun (ca : Cost.platform_cost) -> ca.Cost.platform = cb.Cost.platform)
            r.Optimizer.costs_after
        with
        | Some ca -> ca.Cost.cycles
        | None -> cb.Cost.cycles
      in
      (cb.Cost.platform, cb.Cost.cycles, after))
    r.Optimizer.costs_before

let pp_result ppf (r : Optimizer.result) =
  Format.fprintf ppf "%s [%s]@." r.Optimizer.name
    (Optimizer.algorithm_name r.Optimizer.algorithm);
  Format.fprintf ppf "  fences: %d -> %d (removed %d, weakened %d, merged %d)@."
    r.Optimizer.input_fences r.Optimizer.output_fences r.Optimizer.removed
    r.Optimizer.weakened r.Optimizer.merged;
  Format.fprintf ppf "  verdict: %s via %s — %s@."
    (if r.Optimizer.verdict.Verify.sound then "SOUND" else "UNSOUND")
    r.Optimizer.verdict.Verify.oracle r.Optimizer.verdict.Verify.detail;
  if r.Optimizer.reverted then
    Format.fprintf ppf "  REVERTED: some platform regressed; input kept@.";
  List.iter
    (fun (pl, before, after) ->
      Format.fprintf ppf "  %s: %.1f -> %.1f cycles (%.1f%%)@." pl before after
        (pct_saving before after))
    (cost_pairs r)

let summary_counts results =
  let count f = List.length (List.filter f results) in
  ( List.length results,
    count (fun (r : Optimizer.result) -> not r.Optimizer.verdict.Verify.sound),
    count (fun (r : Optimizer.result) -> r.Optimizer.output_fences > r.Optimizer.input_fences),
    count Optimizer.improved )

let markdown results =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let total, unsound, increase, improved = summary_counts results in
  add "# armb opt report\n\n";
  (match results with
  | r :: _ -> add "Algorithm: `%s`.\n\n" (Optimizer.algorithm_name r.Optimizer.algorithm)
  | [] -> ());
  add "%d programs; %d improved, %d unsound, %d with more fences than input.\n\n" total
    improved unsound increase;
  add "| test | loops | fences in → out | removed | weakened | merged | sound | reverted |";
  List.iter (fun p -> add " %s Δ%% |" p) Cost.platforms;
  add "\n|---|---|---|---|---|---|---|---|";
  List.iter (fun _ -> add "---|") Cost.platforms;
  add "\n";
  List.iter
    (fun (r : Optimizer.result) ->
      add "| %s | %s | %d → %d | %d | %d | %d | %s | %s |" r.Optimizer.name
        (if Verify.loop_free r.Optimizer.input then "no" else "yes")
        r.Optimizer.input_fences r.Optimizer.output_fences r.Optimizer.removed
        r.Optimizer.weakened r.Optimizer.merged
        (if r.Optimizer.verdict.Verify.sound then "yes" else "**NO**")
        (if r.Optimizer.reverted then "yes" else "no");
      List.iter
        (fun pl ->
          match
            List.find_opt (fun (p, _, _) -> p = pl) (cost_pairs r)
          with
          | Some (_, before, after) -> add " %.1f |" (pct_saving before after)
          | None -> add " – |")
        Cost.platforms;
      add "\n")
    results;
  add "\nPer-platform columns show estimated-cycle savings (positive = faster) on the\n";
  add "longest bounded-unroll slices, summed; a reverted row kept its input.\n";
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json results =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let total, unsound, increase, improved = summary_counts results in
  add "{\n";
  (match results with
  | r :: _ -> add "  \"algorithm\": \"%s\",\n" (Optimizer.algorithm_name r.Optimizer.algorithm)
  | [] -> ());
  add "  \"summary\": { \"programs\": %d, \"improved\": %d, \"unsound\": %d, \"fence_increase\": %d },\n"
    total improved unsound increase;
  add "  \"results\": [\n";
  List.iteri
    (fun i (r : Optimizer.result) ->
      add "    { \"name\": \"%s\", \"loop_free\": %b, \"input_fences\": %d, \"output_fences\": %d,\n"
        (json_escape r.Optimizer.name)
        (Verify.loop_free r.Optimizer.input)
        r.Optimizer.input_fences r.Optimizer.output_fences;
      add "      \"removed\": %d, \"weakened\": %d, \"merged\": %d, \"sound\": %b, \"reverted\": %b,\n"
        r.Optimizer.removed r.Optimizer.weakened r.Optimizer.merged
        r.Optimizer.verdict.Verify.sound r.Optimizer.reverted;
      add "      \"oracle\": \"%s\",\n" (json_escape r.Optimizer.verdict.Verify.oracle);
      add "      \"costs\": [";
      List.iteri
        (fun j (pl, before, after) ->
          add "%s{ \"platform\": \"%s\", \"before\": %.2f, \"after\": %.2f }"
            (if j > 0 then ", " else "")
            (json_escape pl) before after)
        (cost_pairs r);
      add "] }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  add "  ]\n}\n";
  Buffer.contents buf
