(* Cost-ranked whole-program fence optimization (BarrierSetter-style
   algorithm ladder):

   - SINGLE_BB:      the merge pass confined to one basic block — pends
                     die at the block boundary.
   - LINEAR_SCAN:    the merge pass carrying pends across straight
                     chain edges (the default pass shape).
   - SECOND_CHANCE:  LINEAR_SCAN, then a greedy oracle-guided pass that
                     offers every surviving fence a second chance to
                     disappear or weaken: a candidate edit is kept only
                     if the WMM-reachable outcome set stays bit-
                     identical to the *original* program's.  This is
                     what removes fences the static pass cannot prove
                     redundant — ones subsumed by acquire/release
                     attributes or dependencies.

   Every result is priced on all calibrated platform models by summing
   the timing simulator's average makespan over the longest slices
   (same paths on both sides), and reverted wholesale if any platform
   got slower — the optimizer never trades one platform against
   another. *)

module Lang = Armb_litmus.Lang
module Cfg = Armb_litmus.Cfg
module Enumerate = Armb_litmus.Enumerate
module Catalogue = Armb_litmus.Catalogue
module Cost = Armb_synth.Cost

type algorithm = Single_bb | Linear_scan | Second_chance

let algorithm_name = function
  | Single_bb -> "single-bb"
  | Linear_scan -> "linear-scan"
  | Second_chance -> "second-chance"

let algorithm_of_string s =
  match String.lowercase_ascii s with
  | "single-bb" | "single_bb" | "single" -> Some Single_bb
  | "linear-scan" | "linear_scan" | "linear" -> Some Linear_scan
  | "second-chance" | "second_chance" | "second" -> Some Second_chance
  | _ -> None

type result = {
  name : string;
  algorithm : algorithm;
  input : Cfg.program;
  optimized : Cfg.program;
  input_fences : int;
  output_fences : int;
  removed : int;
  weakened : int;
  merged : int;
  verdict : Verify.verdict;
  costs_before : Cost.platform_cost list;
  costs_after : Cost.platform_cost list;
  reverted : bool;  (** optimization undone: some platform got slower *)
}

(* ---------- second chance ---------- *)

let fence_rank = function
  | Lang.F_dmb_st | Lang.F_dmb_ld -> 4
  | Lang.F_isb -> 6
  | Lang.F_dmb_full -> 8
  | Lang.F_dsb -> 20

(* (thread, label, in-block index, fence) of every reachable non-DSB
   fence; DSB is pinned (see Passes). *)
let fence_sites (p : Cfg.program) =
  List.concat
    (List.mapi
       (fun th (g : Cfg.thread_cfg) ->
         List.concat_map
           (fun (b : Cfg.block) ->
             List.filteri (fun _ _ -> true) b.Cfg.body
             |> List.mapi (fun idx instr -> (idx, instr))
             |> List.filter_map (fun (idx, instr) ->
                    match instr with
                    | Lang.Fence Lang.F_dsb -> None
                    | Lang.Fence f -> Some (th, b.Cfg.label, idx, f)
                    | _ -> None))
           (Cfg.reachable_blocks g))
       p.Cfg.threads)

let edit_body (p : Cfg.program) th lbl f =
  {
    p with
    Cfg.threads =
      List.mapi
        (fun i (g : Cfg.thread_cfg) ->
          if i <> th then g
          else
            {
              g with
              Cfg.blocks =
                List.map
                  (fun (b : Cfg.block) ->
                    if b.Cfg.label = lbl then { b with Cfg.body = f b.Cfg.body } else b)
                  g.Cfg.blocks;
            })
        p.Cfg.threads;
  }

let delete_at p th lbl idx = edit_body p th lbl (List.filteri (fun i _ -> i <> idx))

let replace_at p th lbl idx f =
  edit_body p th lbl (List.mapi (fun i x -> if i = idx then Lang.Fence f else x))

(* Candidate screening uses the bounded reachable set alone (the full
   verdict, sanitizer included, runs once on the final program). *)
let second_chance ~unroll ~reference q0 =
  let ref_reachable = Cfg.reachable ~unroll Enumerate.Wmm reference in
  let keeps p = Cfg.reachable ~unroll Enumerate.Wmm p = ref_reachable in
  let removed = ref 0 and weakened = ref 0 in
  (* deletions first: cheapest possible outcome for a site *)
  let rec delete_pass q =
    let try_site q site =
      let th, lbl, idx, _ = site in
      let candidate = delete_at q th lbl idx in
      if keeps candidate then Some candidate else None
    in
    match List.find_map (fun s -> try_site q s) (fence_sites q) with
    | Some q' ->
      incr removed;
      delete_pass q'
    | None -> q
  in
  let q = delete_pass q0 in
  (* then weaken survivors to the cheapest kind the oracle accepts *)
  let weaken_site q (th, lbl, idx, f) =
    let candidates =
      List.filter
        (fun f' -> fence_rank f' < fence_rank f)
        [ Lang.F_dmb_st; Lang.F_dmb_ld; Lang.F_isb; Lang.F_dmb_full ]
    in
    let rec try_kinds = function
      | [] -> q
      | f' :: rest ->
        let candidate = replace_at q th lbl idx f' in
        if keeps candidate then begin
          incr weakened;
          candidate
        end
        else try_kinds rest
    in
    try_kinds candidates
  in
  let q = List.fold_left (fun q site -> weaken_site q site) q (fence_sites q) in
  (q, !removed, !weakened)

(* ---------- costing ---------- *)

(* Sum the per-platform average makespan over the [n] longest slices.
   Both programs are sampled at the same path indices — fence edits
   never change the path structure, so this is a like-for-like race. *)
let program_cost ?(unroll = 2) ?(slices = 3) ~trials ~seed (p : Cfg.program) =
  let indices = Verify.longest_slice_indices ~unroll slices p in
  let all = Cfg.slices ~unroll p in
  let per_slice =
    List.filter_map
      (fun i ->
        Option.map
          (fun s ->
            Cost.measure ~trials ~seed
              (Cfg.slice_test ~name:(Printf.sprintf "%s@cost%d" p.Cfg.name i) p s))
          (List.nth_opt all i))
      indices
  in
  match per_slice with
  | [] -> []
  | first :: rest ->
    List.fold_left
      (fun acc costs ->
        List.map2
          (fun (a : Cost.platform_cost) (c : Cost.platform_cost) ->
            { a with Cost.cycles = a.Cost.cycles +. c.Cost.cycles })
          acc costs)
      first rest

(* ---------- the driver ---------- *)

let optimize ?(algorithm = Second_chance) ?(unroll = 2) ?(cost = true) ?(trials = 30)
    ?(seed = 42) (p : Cfg.program) =
  let cross_block = algorithm <> Single_bb in
  let merged, stats = Passes.merge ~cross_block p in
  let rename q = { q with Cfg.name = p.Cfg.name ^ "+opt" } in
  (* The second-chance screen is reachable-set equality alone; the full
     verdict (sanitizer included) gates the result, and if it rejects
     the oracle-guided edits we fall back to the structurally sound
     merge-only program.  (The screen can accept a deletion whose
     reordering is invisible in the projected outcomes yet still
     introduces a racy pair — e.g. dropping MP+spin's producer dmb.st
     when the consumer side was already racy.) *)
  let q, sc_weakened, verdict =
    match algorithm with
    | Second_chance ->
      let q_sc, _sc_removed, sc_weakened = second_chance ~unroll ~reference:p merged in
      let q_sc = rename q_sc in
      let verdict_sc = Verify.equivalent ~unroll p q_sc in
      if verdict_sc.Verify.sound || q_sc = rename merged then (q_sc, sc_weakened, verdict_sc)
      else
        let q_m = rename merged in
        (q_m, 0, Verify.equivalent ~unroll p q_m)
    | Single_bb | Linear_scan ->
      let q_m = rename merged in
      (q_m, 0, Verify.equivalent ~unroll p q_m)
  in
  let input_fences = Cfg.fence_count p and output_fences = Cfg.fence_count q in
  let costs_before, costs_after =
    if cost then (program_cost ~unroll ~trials ~seed p, program_cost ~unroll ~trials ~seed q)
    else ([], [])
  in
  let reverted = cost && verdict.Verify.sound && not (Cost.cheaper_or_equal costs_after costs_before) in
  let q, output_fences, costs_after =
    if reverted then (p, input_fences, costs_before) else (q, output_fences, costs_after)
  in
  {
    name = p.Cfg.name;
    algorithm;
    input = p;
    optimized = q;
    input_fences;
    output_fences;
    removed = (if reverted then 0 else input_fences - output_fences);
    weakened = (if reverted then 0 else stats.Passes.weakened + sc_weakened);
    merged = (if reverted then 0 else stats.Passes.merged);
    verdict;
    costs_before;
    costs_after;
    reverted;
  }

(* ---------- the catalogue sweep ---------- *)

(* Every straight-line catalogue test (lifted) and every control-flow
   test, each both as-is and over-fenced — the benchmark [armb opt]
   and CI report on. *)
let sweep_inputs () =
  let base = List.map Cfg.of_test Catalogue.all @ Catalogue.cfg_all in
  base @ List.map Passes.over_fence base

let find_input name =
  let lc = String.lowercase_ascii name in
  List.find_opt (fun (p : Cfg.program) -> String.lowercase_ascii p.Cfg.name = lc) (sweep_inputs ())

let sweep ?algorithm ?unroll ?cost ?trials ?seed () =
  List.map (optimize ?algorithm ?unroll ?cost ?trials ?seed) (sweep_inputs ())

(* An input "improved" when a barrier disappeared or got weaker. *)
let improved r = (not r.reverted) && (r.removed > 0 || r.weakened > 0)
