(** Structure toolkit over one thread's CFG: reverse postorder,
    dominators, back edges, and the escape analysis the barrier passes
    consume. *)

module Cfg = Armb_litmus.Cfg

val labels : Cfg.thread_cfg -> Cfg.label list
(** Reachable block labels in DFS order. *)

val predecessors : Cfg.thread_cfg -> Cfg.label -> Cfg.label list
(** Predecessors among reachable blocks. *)

val rpo : Cfg.thread_cfg -> Cfg.label list
(** Reverse postorder of the reachable blocks from the entry. *)

val unreachable : Cfg.thread_cfg -> Cfg.label list
(** Blocks no path from the entry reaches. *)

val idom : Cfg.thread_cfg -> Cfg.label -> Cfg.label option
(** Immediate dominator (Cooper-Harvey-Kennedy iterative scheme); the
    entry maps to itself, unreachable blocks to [None]. *)

val dominates : Cfg.thread_cfg -> Cfg.label -> Cfg.label -> bool
(** [dominates g a b]: every path from the entry to [b] passes [a]. *)

val back_edges : Cfg.thread_cfg -> (Cfg.label * Cfg.label) list
(** Edges [u -> v] where [v] dominates [u] — the loop back edges. *)

(** {2 Escape analysis}

    Which access kinds may execute before / after each block — i.e. on
    which side of a program point a value can still become visible to
    (or have been observed from) another thread.  A fence ordering pair
    whose from-kind never precedes it or whose to-kind never follows it
    is vacuous. *)

type kinds = { loads : bool; stores : bool }

val no_kinds : kinds
val union : kinds -> kinds -> kinds
val kind_of : Armb_litmus.Lang.instr -> kinds
val body_kinds : Armb_litmus.Lang.instr list -> kinds

type escape = {
  before_in : Cfg.label -> kinds;
      (** kinds that may execute before entering the block, on some
          path from the entry (around loops too) *)
  after_out : Cfg.label -> kinds;
      (** kinds that may still execute after leaving the block *)
}

val escape : Cfg.thread_cfg -> escape
(** May-dataflow fixpoints over the reachable blocks. *)
