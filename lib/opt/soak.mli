(** Optimizer fuzz soak: generate a random small CFG
    ({!Armb_litmus.Fuzz.generate_cfg}), over-fence it, optimize, and
    re-verify — asserting soundness and barrier-count monotonicity. *)

type report = {
  rounds : int;
  unsound : int;  (** FATAL: optimized outcome set diverged *)
  fence_increase : int;  (** FATAL: more fences out than in *)
  improved : int;  (** rounds where a fence was removed or weakened *)
  fences_in : int;
  fences_out : int;
  failures : string list;
}

val ok : report -> bool
(** No fatal findings. *)

(** {2 Per-round interface}

    Mirrors {!Armb_synth.Soak}'s round records: the unified soak
    subsystem ([lib/soak]) consumes rounds directly; {!run} is a fold
    of {!report_of_rounds} over {!run_rounds}. *)

type round = {
  index : int;  (** 1-based *)
  program_name : string;  (** the over-fenced input's name *)
  input_fences : int;
  output_fences : int;
  improved : bool;
  unsound : bool;  (** FATAL *)
  fence_increase : bool;  (** FATAL *)
  failures : string list;
}

val round_ok : round -> bool

val run_rounds :
  ?rounds:int ->
  ?seed:int ->
  ?algorithm:Optimizer.algorithm ->
  ?unroll:int ->
  unit ->
  round list
(** Same generation stream as {!run} (one shared RNG, rounds in order):
    [run args () = report_of_rounds (run_rounds args ())]. *)

val report_of_rounds : round list -> report

val run :
  ?rounds:int ->
  ?seed:int ->
  ?algorithm:Optimizer.algorithm ->
  ?unroll:int ->
  unit ->
  report
(** Defaults: 12 rounds, seed 2025, LINEAR_SCAN (the oracle-guided
    second chance is exercised separately — here volume matters),
    unroll 2.  Costing is off. *)

val pp_report : Format.formatter -> report -> unit
