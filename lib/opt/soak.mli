(** Optimizer fuzz soak: generate a random small CFG
    ({!Armb_litmus.Fuzz.generate_cfg}), over-fence it, optimize, and
    re-verify — asserting soundness and barrier-count monotonicity. *)

type report = {
  rounds : int;
  unsound : int;  (** FATAL: optimized outcome set diverged *)
  fence_increase : int;  (** FATAL: more fences out than in *)
  improved : int;  (** rounds where a fence was removed or weakened *)
  fences_in : int;
  fences_out : int;
  failures : string list;
}

val ok : report -> bool
(** No fatal findings. *)

val run :
  ?rounds:int ->
  ?seed:int ->
  ?algorithm:Optimizer.algorithm ->
  ?unroll:int ->
  unit ->
  report
(** Defaults: 12 rounds, seed 2025, LINEAR_SCAN (the oracle-guided
    second chance is exercised separately — here volume matters),
    unroll 2.  Costing is off. *)

val pp_report : Format.formatter -> report -> unit
