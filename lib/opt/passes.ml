(* The barrier-merging pass: one RPO sweep per thread carrying a
   pending-barrier set forward (SNIPPETS-style OptimizeMemoryBarriers).

   A fence is modelled as the set of ordering pairs (from-kind,
   to-kind) it enforces.  When the sweep meets a fence it restricts the
   pairs to the ones that are *alive* at that point — the from-kind may
   actually have executed earlier on some path, the to-kind may still
   execute later (the escape analysis answers both) — and turns the
   fence into a pending barrier instead of emitting it.  A pending
   barrier sinks forward past accesses its pairs do not mention and
   materializes immediately before the first access they do mention,
   as the cheapest fence covering them; pending barriers materializing
   at the same point merge (one fence subsumes every pend whose pairs
   it covers).  With no pair alive the fence vanishes.

   Soundness is structural, independent of the verifier: a pend
   materializes before any access that could join its pairs' from-side
   or to-side, so the set of (earlier access, later access) pairs each
   emitted fence orders is exactly the set its original fence ordered —
   cover excess only ever names kinds that are dead on that side and
   orders nothing.  DSB is pinned: it is never weakened, sunk, or
   dropped (it may drain more than program-visible memory order), but
   it absorbs every barrier pending at its position. *)

module Lang = Armb_litmus.Lang
module Cfg = Armb_litmus.Cfg

type kind = Ld | St

let pairs_of = function
  | Lang.F_dmb_st -> [ (St, St) ]
  | Lang.F_dmb_ld | Lang.F_isb -> [ (Ld, Ld); (Ld, St) ]
  | Lang.F_dmb_full | Lang.F_dsb -> [ (Ld, Ld); (Ld, St); (St, Ld); (St, St) ]

let kind_in k (s : Analysis.kinds) = match k with Ld -> s.Analysis.loads | St -> s.Analysis.stores

let restrict pairs ~from_ ~to_ =
  List.filter (fun (a, b) -> kind_in a from_ && kind_in b to_) pairs

let subset a b = List.for_all (fun p -> List.mem p b) a
let same_pairs a b = subset a b && subset b a

(* Cheapest fence covering the needed pairs, in the architectural cost
   order the synthesizer uses (DMB st ~ DMB ld < ISB < DMB full; ISB is
   never picked because DMB ld covers the same pairs for less). *)
let cover needed =
  List.find
    (fun f -> subset needed (pairs_of f))
    [ Lang.F_dmb_st; Lang.F_dmb_ld; Lang.F_dmb_full ]

type pend = { orig : Lang.fence; pairs : (kind * kind) list }

type stats = {
  mutable dead : int;  (** fences dropped: no ordering pair alive *)
  mutable weakened : int;  (** fences re-emitted as a cheaper kind *)
  mutable merged : int;  (** fences absorbed into another emission *)
}

let fresh_stats () = { dead = 0; weakened = 0; merged = 0 }

(* Emit the pending barriers that must materialize here, strongest
   first so one fence subsumes the rest where possible.  Returns the
   emitted instructions in order. *)
let emit_pends stats pends =
  let sorted =
    List.sort (fun a b -> compare (List.length b.pairs) (List.length a.pairs)) pends
  in
  let rec go acc = function
    | [] -> List.rev acc
    | p :: rest ->
      let f = if same_pairs p.pairs (pairs_of p.orig) then p.orig else cover p.pairs in
      if f <> p.orig then stats.weakened <- stats.weakened + 1;
      let covered, remain = List.partition (fun q -> subset q.pairs (pairs_of f)) rest in
      stats.merged <- stats.merged + List.length covered;
      go (Lang.Fence f :: acc) remain
  in
  go [] sorted

let kind_of_access = function
  | Lang.Load _ -> Some Ld
  | Lang.Store _ -> Some St
  | Lang.Fence _ -> None

let mentions k pairs = List.exists (fun (a, b) -> a = k || b = k) pairs

let add_kind k (s : Analysis.kinds) =
  match k with
  | Ld -> { s with Analysis.loads = true }
  | St -> { s with Analysis.stores = true }

let run_thread ~cross_block stats g =
  let esc = Analysis.escape g in
  let order = Analysis.rpo g in
  let rpo_index = Hashtbl.create 8 in
  List.iteri (fun i l -> Hashtbl.replace rpo_index l i) order;
  let preds = Analysis.predecessors g in
  let carry : (Cfg.label, pend list) Hashtbl.t = Hashtbl.create 8 in
  let new_bodies = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let b = Cfg.block_exn g l in
      let body = Array.of_list b.Cfg.body in
      let n = Array.length body in
      (* suffix.(i) = kinds that may execute at or after body index i
         (falling through to every later path) *)
      let suffix = Array.make (n + 1) (esc.Analysis.after_out l) in
      for i = n - 1 downto 0 do
        suffix.(i) <- Analysis.union suffix.(i + 1) (Analysis.kind_of body.(i))
      done;
      let pending = ref (match Hashtbl.find_opt carry l with Some ps -> ps | None -> []) in
      let from_ = ref (esc.Analysis.before_in l) in
      let out = ref [] in
      let emit instrs = List.iter (fun i -> out := i :: !out) instrs in
      Array.iteri
        (fun i instr ->
          match instr with
          | Lang.Fence Lang.F_dsb ->
            (* pinned, and it absorbs everything pending here *)
            stats.merged <- stats.merged + List.length !pending;
            pending := [];
            out := instr :: !out
          | Lang.Fence f ->
            let alive = restrict (pairs_of f) ~from_:!from_ ~to_:suffix.(i + 1) in
            if alive = [] then stats.dead <- stats.dead + 1
            else pending := !pending @ [ { orig = f; pairs = alive } ]
          | access -> (
            match kind_of_access access with
            | None -> assert false
            | Some k ->
              let mat, keep = List.partition (fun p -> mentions k p.pairs) !pending in
              emit (emit_pends stats mat);
              out := access :: !out;
              from_ := add_kind k !from_;
              pending := keep))
        body;
      (* block end: re-restrict to what can still follow, then either
         carry along a straight chain edge or materialize here *)
      let live =
        List.filter_map
          (fun p ->
            match List.filter (fun (_, b') -> kind_in b' (esc.Analysis.after_out l)) p.pairs with
            | [] ->
              stats.dead <- stats.dead + 1;
              None
            | pairs -> Some { p with pairs })
          !pending
      in
      let carried =
        cross_block && live <> []
        &&
        match b.Cfg.term with
        | Cfg.Goto s
          when preds s = [ l ]
               && (match (Hashtbl.find_opt rpo_index s, Hashtbl.find_opt rpo_index l) with
                  | Some is, Some il -> is > il
                  | _ -> false) ->
          Hashtbl.replace carry s
            ((match Hashtbl.find_opt carry s with Some ps -> ps | None -> []) @ live);
          true
        | _ -> false
      in
      if not carried then emit (emit_pends stats live);
      Hashtbl.replace new_bodies l (List.rev !out))
    order;
  {
    g with
    Cfg.blocks =
      List.map
        (fun (b : Cfg.block) ->
          match Hashtbl.find_opt new_bodies b.Cfg.label with
          | Some body -> { b with Cfg.body = body }
          | None -> b (* unreachable: untouched *))
        g.Cfg.blocks;
  }

let merge ?(cross_block = true) (p : Cfg.program) =
  let stats = fresh_stats () in
  let threads = List.map (run_thread ~cross_block stats) p.Cfg.threads in
  ({ p with Cfg.threads }, stats)

(* ---------- the stress input ---------- *)

(* DMB full at every instruction boundary of every block: the
   over-fenced worst case the optimizer is asked to clean up. *)
let over_fence (p : Cfg.program) =
  let full = Lang.Fence Lang.F_dmb_full in
  let fence_body body = full :: List.concat_map (fun i -> [ i; full ]) body in
  {
    p with
    Cfg.name = p.Cfg.name ^ "+overfenced";
    description = p.Cfg.description ^ " (DMB full at every boundary)";
    threads =
      List.map
        (fun (g : Cfg.thread_cfg) ->
          {
            g with
            Cfg.blocks =
              List.map (fun (b : Cfg.block) -> { b with Cfg.body = fence_body b.Cfg.body }) g.Cfg.blocks;
          })
        p.Cfg.threads;
  }
