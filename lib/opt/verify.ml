(* The optimizer's re-verification loop.

   Loop-free programs get the exact oracle: the bounded-unroll slice
   semantics visits every block at most once per path on a DAG, so
   [Cfg.reachable] is the exhaustive WMM outcome set and soundness is
   bit-identical equality (fence edits only ever move the set in one
   direction, so equality also rules out silent strengthening).  Loopy
   programs are compared at the same unroll bound on both sides — the
   Joshi-Kroening reorder-bounded argument: any divergence within the
   bound is caught, and both programs are cut off identically — and
   additionally cross-checked dynamically: the happens-before sanitizer
   runs over the longest slices of both, and every racy pair the
   optimized program exhibits must already be present in the input. *)

module Lang = Armb_litmus.Lang
module Cfg = Armb_litmus.Cfg
module Enumerate = Armb_litmus.Enumerate
module Sim_runner = Armb_litmus.Sim_runner
module Sanitizer = Armb_check.Sanitizer

type verdict = {
  sound : bool;
  loop_free : bool;
  oracle : string;  (** which oracle produced the verdict *)
  detail : string;  (** human-readable evidence on failure *)
}

let loop_free (p : Cfg.program) =
  List.for_all (fun g -> not (Cfg.has_loop g)) p.Cfg.threads

(* The [n] longest slices, with their indices so both programs sample
   the same paths (fence edits never change the path structure). *)
let longest_slice_indices ?unroll n p =
  let len (s : Cfg.slice) =
    List.fold_left (fun acc (pa : Cfg.path) -> acc + List.length pa.Cfg.instrs) 0 s.Cfg.threads
  in
  Cfg.slices ?unroll p
  |> List.mapi (fun i s -> (i, len s))
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)
  |> List.map fst

let sanitizer_signatures ?unroll ~trials ~seed indices (p : Cfg.program) =
  let slices = Cfg.slices ?unroll p in
  List.concat_map
    (fun i ->
      match List.nth_opt slices i with
      | None -> []
      | Some s ->
        let t = Cfg.slice_test ~name:(Printf.sprintf "%s@hb%d" p.Cfg.name i) p s in
        let r = Sim_runner.run ~trials ~seed ~check:true t in
        List.map Sanitizer.signature r.Sim_runner.findings)
    indices
  |> List.sort_uniq compare

let equivalent ?(unroll = 2) ?(check_trials = 25) ?(check_seed = 11) (original : Cfg.program)
    (optimized : Cfg.program) =
  let ra = Cfg.reachable ~unroll Enumerate.Wmm original in
  let rb = Cfg.reachable ~unroll Enumerate.Wmm optimized in
  let equal = ra = rb in
  let lf = loop_free original && loop_free optimized in
  if lf then
    {
      sound = equal;
      loop_free = true;
      oracle = "enumerator (exact on loop-free)";
      detail =
        (if equal then "reachable outcome sets identical"
         else
           Printf.sprintf "outcome sets differ: %d vs %d outcomes" (List.length ra)
             (List.length rb));
    }
  else begin
    (* same paths on both sides: structure is fence-edit invariant *)
    let indices = longest_slice_indices ~unroll 2 original in
    let sa = sanitizer_signatures ~unroll ~trials:check_trials ~seed:check_seed indices original in
    let sb = sanitizer_signatures ~unroll ~trials:check_trials ~seed:check_seed indices optimized in
    let new_races = List.filter (fun s -> not (List.mem s sa)) sb in
    {
      sound = equal && new_races = [];
      loop_free = false;
      oracle = Printf.sprintf "bounded unroll (%d) + happens-before sanitizer" unroll;
      detail =
        (if not equal then
           Printf.sprintf "bounded outcome sets differ: %d vs %d outcomes" (List.length ra)
             (List.length rb)
         else if new_races <> [] then
           Printf.sprintf "optimized program introduces %d racy pair(s): %s"
             (List.length new_races)
             (String.concat "; " new_races)
         else "bounded outcome sets identical, no new racy pairs");
    }
  end
