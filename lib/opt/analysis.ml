(* Structure toolkit over one thread's CFG: reverse postorder,
   dominators (the iterative Cooper-Harvey-Kennedy scheme), back-edge
   detection, and the escape analysis the barrier passes consume — for
   each program point, which access kinds may already have executed
   before it (on some path from the entry, including around loops) and
   which may still execute after it.  A fence ordering pair whose
   from-kind never precedes it or whose to-kind never follows it is
   vacuous: nothing it orders can ever be observed escaping to another
   thread on that side. *)

module Lang = Armb_litmus.Lang
module Cfg = Armb_litmus.Cfg

let labels g = List.map (fun (b : Cfg.block) -> b.Cfg.label) (Cfg.reachable_blocks g)

let successors_of g l = Cfg.successors (Cfg.block_exn g l).Cfg.term

let predecessors g =
  let preds = Hashtbl.create 8 in
  let ls = labels g in
  List.iter (fun l -> Hashtbl.replace preds l []) ls;
  List.iter
    (fun l ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt preds s with
          | Some ps when not (List.mem l ps) -> Hashtbl.replace preds s (l :: ps)
          | _ -> ())
        (successors_of g l))
    ls;
  fun l -> match Hashtbl.find_opt preds l with Some ps -> List.rev ps | None -> []

(* Reverse postorder of the reachable blocks: every forward edge goes
   left to right, so one RPO sweep propagates acyclic dataflow in a
   single pass and loops need only the extra fixpoint rounds. *)
let rpo g =
  let seen = Hashtbl.create 8 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      List.iter dfs (successors_of g l);
      post := l :: !post
    end
  in
  dfs g.Cfg.entry;
  !post

let unreachable g =
  let r = labels g in
  List.filter_map
    (fun (b : Cfg.block) -> if List.mem b.Cfg.label r then None else Some b.Cfg.label)
    g.Cfg.blocks

(* Immediate dominators, iterating to fixpoint in RPO (Cooper, Harvey,
   Kennedy, "A simple, fast dominance algorithm").  The entry maps to
   itself. *)
let idom g =
  let order = rpo g in
  let index = Hashtbl.create 8 in
  List.iteri (fun i l -> Hashtbl.replace index l i) order;
  let preds = predecessors g in
  let idom = Hashtbl.create 8 in
  Hashtbl.replace idom g.Cfg.entry g.Cfg.entry;
  let rec intersect a b =
    if a = b then a
    else
      let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
      if ia > ib then intersect (Hashtbl.find idom a) b else intersect a (Hashtbl.find idom b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> g.Cfg.entry then begin
          let processed = List.filter (fun p -> Hashtbl.mem idom p) (preds l) in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if Hashtbl.find_opt idom l <> Some new_idom then begin
              Hashtbl.replace idom l new_idom;
              changed := true
            end
        end)
      order
  done;
  fun l -> Hashtbl.find_opt idom l

let dominates g =
  let idom = idom g in
  fun a b ->
    (* does [a] dominate [b]?  walk b's dominator chain up to the entry *)
    let rec up l = l = a || (l <> g.Cfg.entry && match idom l with Some p -> up p | None -> false) in
    up b

(* Edges u -> v where v dominates u: the loop back-edges. *)
let back_edges g =
  let dom = dominates g in
  List.concat_map
    (fun l -> List.filter_map (fun s -> if dom s l then Some (l, s) else None) (successors_of g l))
    (labels g)

(* ---------- escape analysis ---------- *)

type kinds = { loads : bool; stores : bool }

let no_kinds = { loads = false; stores = false }
let union a b = { loads = a.loads || b.loads; stores = a.stores || b.stores }
let kind_of = function
  | Lang.Load _ -> { loads = true; stores = false }
  | Lang.Store _ -> { loads = false; stores = true }
  | Lang.Fence _ -> no_kinds

let body_kinds body = List.fold_left (fun acc i -> union acc (kind_of i)) no_kinds body

type escape = {
  before_in : Cfg.label -> kinds;
      (** kinds that may execute before entering the block, on some
          path from the entry (around loops too) *)
  after_out : Cfg.label -> kinds;
      (** kinds that may still execute after leaving the block *)
}

let escape g =
  let order = rpo g in
  let preds = predecessors g in
  let bk = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace bk l (body_kinds (Cfg.block_exn g l).Cfg.body)) order;
  let fixpoint seed step neighbors sweep =
    let tbl = Hashtbl.create 8 in
    List.iter (fun l -> Hashtbl.replace tbl l no_kinds) order;
    Hashtbl.replace tbl (fst seed) (snd seed);
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun l ->
          let v =
            List.fold_left
              (fun acc n -> union acc (step n (Hashtbl.find tbl n)))
              (Hashtbl.find tbl l) (neighbors l)
          in
          if v <> Hashtbl.find tbl l then begin
            Hashtbl.replace tbl l v;
            changed := true
          end)
        sweep
    done;
    tbl
  in
  (* before_in[l] = U over preds p of before_in[p] + kinds(p) *)
  let before =
    fixpoint (g.Cfg.entry, no_kinds) (fun p v -> union v (Hashtbl.find bk p)) preds order
  in
  (* after_out[l] = U over succs s of kinds(s) + after_out[s] *)
  let after =
    fixpoint (g.Cfg.entry, no_kinds)
      (fun s v -> union v (Hashtbl.find bk s))
      (successors_of g) (List.rev order)
  in
  {
    before_in = (fun l -> match Hashtbl.find_opt before l with Some k -> k | None -> no_kinds);
    after_out = (fun l -> match Hashtbl.find_opt after l with Some k -> k | None -> no_kinds);
  }
