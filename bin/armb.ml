(* armb: command-line front end of the library.

   Subcommands: platforms, model, tipping, observations, advise, litmus,
   check, ring, report, fuzz, perf, trace.  See `armb --help`. *)

open Cmdliner

module AM = Armb_core.Abstracted_model
module Advisor = Armb_core.Advisor
module Barrier = Armb_cpu.Barrier
module Ordering = Armb_core.Ordering
module P = Armb_platform.Platform

let platform_arg =
  let parse s =
    match P.by_name s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown platform %S (try: %s)" s (String.concat ", " P.names)))
  in
  let print ppf (c : Armb_cpu.Config.t) = Format.fprintf ppf "%s" c.name in
  Arg.conv (parse, print)

let platform =
  Arg.(value & opt platform_arg P.kunpeng916 & info [ "p"; "platform" ] ~docv:"NAME" ~doc:"Target platform (kunpeng916, kirin960, kirin970, raspberrypi4).")

let cores =
  Arg.(value & opt (pair ~sep:',' int int) (0, 28) & info [ "cores" ] ~docv:"A,B" ~doc:"Cores the two threads bind to.")

let approaches =
  [
    ("none", Ordering.No_barrier);
    ("dmb", Ordering.Bar (Barrier.Dmb Full));
    ("dmb-st", Ordering.Bar (Barrier.Dmb St));
    ("dmb-ld", Ordering.Bar (Barrier.Dmb Ld));
    ("dsb", Ordering.Bar (Barrier.Dsb Full));
    ("dsb-st", Ordering.Bar (Barrier.Dsb St));
    ("dsb-ld", Ordering.Bar (Barrier.Dsb Ld));
    ("isb", Ordering.Bar Barrier.Isb);
    ("ldar", Ordering.Ldar_acquire);
    ("stlr", Ordering.Stlr_release);
    ("data-dep", Ordering.Data_dep);
    ("addr-dep", Ordering.Addr_dep);
    ("ctrl", Ordering.Ctrl_dep);
    ("ctrl-isb", Ordering.Ctrl_isb);
  ]

let approach =
  Arg.(value & opt (enum approaches) (Ordering.Bar (Barrier.Dmb Full)) & info [ "a"; "approach" ] ~docv:"APPROACH" ~doc:"Order-preserving approach.")

let mem_ops =
  Arg.(value
      & opt (enum [ ("none", AM.No_mem); ("store-store", AM.Store_store); ("load-store", AM.Load_store); ("load-load", AM.Load_load) ]) AM.Store_store
      & info [ "m"; "mem-ops" ] ~docv:"KIND" ~doc:"Memory operations around the barrier.")

let location =
  Arg.(value & opt (enum [ ("1", AM.Loc1); ("2", AM.Loc2) ]) AM.Loc1 & info [ "l"; "loc" ] ~docv:"1|2" ~doc:"Barrier placement: strictly after the first access (1) or after the NOPs (2).")

let nops = Arg.(value & opt int 300 & info [ "n"; "nops" ] ~docv:"N" ~doc:"NOPs between the accesses.")

let iters = Arg.(value & opt int 2000 & info [ "iters" ] ~docv:"N" ~doc:"Loop iterations per thread.")

(* ---------- platforms ---------- *)

let platforms_cmd =
  let run () = List.iter (fun c -> Format.printf "%a@.@." Armb_cpu.Config.pp c) P.all in
  Cmd.v (Cmd.info "platforms" ~doc:"List the calibrated platform models.") Term.(const run $ const ())

(* ---------- model ---------- *)

let model_cmd =
  let run cfg cores mem_ops approach location nops iters =
    let spec = { (AM.default_spec cfg) with cores; mem_ops; approach; location; nops; iters } in
    if not (AM.valid spec) then begin
      Printf.eprintf "invalid combination: %s with this mem-ops kind\n" (AM.label spec);
      exit 1
    end;
    let thr = AM.run spec in
    Printf.printf "%s on %s, %d nops: %.2f M loops/s (%d cycles)\n" (AM.label spec)
      cfg.Armb_cpu.Config.name nops (thr /. 1e6) (AM.run_cycles spec)
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Run one abstracted model (the paper's Algorithm 1).")
    Term.(const run $ platform $ cores $ mem_ops $ approach $ location $ nops $ iters)

(* ---------- tipping ---------- *)

let tipping_cmd =
  let run cfg cores =
    match Armb_core.Characterize.tipping_point cfg ~cores () with
    | Some n -> Printf.printf "DMB full fully hidden behind ~%d NOPs on %s\n" n cfg.Armb_cpu.Config.name
    | None -> print_endline "no tipping point found in the sweep"
  in
  Cmd.v
    (Cmd.info "tipping" ~doc:"Find the NOP count at which DMB full-2 matches No Barrier (Figure 4).")
    Term.(const run $ platform $ cores)

(* ---------- observations ---------- *)

let observations_cmd =
  let run () =
    List.iter
      (fun (name, (v : Armb_core.Observations.verdict)) ->
        Printf.printf "%-50s %s\n  %s\n" name (if v.holds then "HOLDS" else "FAILS") v.detail)
      (Armb_core.Observations.all ())
  in
  Cmd.v
    (Cmd.info "observations" ~doc:"Check the paper's six observations against the simulator.")
    Term.(const run $ const ())

(* ---------- advise ---------- *)

let advise_cmd =
  let from_a =
    Arg.(required
        & opt (some (enum [ ("load", Advisor.From_load); ("store", Advisor.From_store); ("any", Advisor.From_any) ])) None
        & info [ "from" ] ~docv:"ACCESS" ~doc:"Earlier access kind: load, store or any.")
  in
  let to_a =
    Arg.(required
        & opt (some (enum [ ("load", Advisor.To_load); ("loads", Advisor.To_loads); ("store", Advisor.To_store); ("stores", Advisor.To_stores); ("any", Advisor.To_any) ])) None
        & info [ "to" ] ~docv:"ACCESS" ~doc:"Later access kind: load, loads, store, stores or any.")
  in
  let run from_ to_ =
    List.iter
      (fun (s : Advisor.suggestion) ->
        Printf.printf "%d. %s%s\n" (s.rank + 1) (Ordering.to_string s.approach)
          (match s.caveat with Some c -> "  — " ^ c | None -> ""))
      (Advisor.suggest ~from_ ~to_)
  in
  Cmd.v
    (Cmd.info "advise" ~doc:"Suggest order-preserving approaches (the paper's Table 3).")
    Term.(const run $ from_a $ to_a)

(* ---------- litmus ---------- *)

let litmus_cmd =
  let test_name =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Test name (default: all).")
  in
  let trials = Arg.(value & opt int 300 & info [ "trials" ] ~docv:"N" ~doc:"Simulator trials.") in
  let run test_name trials =
    let tests =
      match test_name with
      | None -> Armb_litmus.Catalogue.all
      | Some n -> (
        match
          List.find_opt
            (fun (t : Armb_litmus.Lang.test) -> String.lowercase_ascii t.name = String.lowercase_ascii n)
            Armb_litmus.Catalogue.all
        with
        | Some t -> [ t ]
        | None ->
          Printf.eprintf "unknown test %S; available: %s\n" n
            (String.concat ", "
               (List.map (fun (t : Armb_litmus.Lang.test) -> t.name) Armb_litmus.Catalogue.all));
          exit 1)
    in
    List.iter
      (fun (t : Armb_litmus.Lang.test) ->
        let wmm = Armb_litmus.Enumerate.allows Armb_litmus.Enumerate.Wmm t in
        let tso = Armb_litmus.Enumerate.allows Armb_litmus.Enumerate.Tso t in
        let r = Armb_litmus.Sim_runner.run ~trials t in
        Printf.printf "%-18s TSO:%-9s WMM:%-9s witnessed:%b\n" t.name
          (if tso then "Allowed" else "Forbidden")
          (if wmm then "Allowed" else "Forbidden")
          r.interesting_witnessed;
        List.iter (fun (o, k) -> Printf.printf "    %5d  %s\n" k o) r.outcomes)
      tests
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Run litmus tests exhaustively and on the timing simulator.")
    Term.(const run $ test_name $ trials)

(* ---------- check ---------- *)

let check_cmd =
  let test_name =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"Litmus test to sanitize (default: cross-check the whole catalogue).")
  in
  let trials =
    Arg.(value & opt int 50 & info [ "trials" ] ~docv:"N" ~doc:"Simulator trials.")
  in
  let run cfg test_name trials =
    let module Sim = Armb_litmus.Sim_runner in
    match test_name with
    | None ->
      let rows, ok = Sim.cross_check ~cfg ~trials () in
      List.iter (fun r -> Format.printf "%a@." Sim.pp_check_row r) rows;
      Format.printf "cross-check: %s@." (if ok then "ok" else "FAIL");
      if not ok then exit 1
    | Some n -> (
      match
        List.find_opt
          (fun (t : Armb_litmus.Lang.test) ->
            String.lowercase_ascii t.name = String.lowercase_ascii n)
          Armb_litmus.Catalogue.all
      with
      | None ->
        Printf.eprintf "unknown test %S; available: %s\n" n
          (String.concat ", "
             (List.map (fun (t : Armb_litmus.Lang.test) -> t.name) Armb_litmus.Catalogue.all));
        exit 1
      | Some t ->
        let base, stripped = Sim.check_test ~cfg ~trials t in
        let report tag (r : Sim.result) =
          match r.findings with
          | [] -> Format.printf "%s: clean@." tag
          | fs ->
            Format.printf "%s: %d racy pair(s)@." tag (List.length fs);
            List.iter
              (fun f -> Format.printf "%a@." Armb_check.Sanitizer.pp_finding f)
              fs
        in
        report t.name base;
        (match stripped with
        | Some r -> report (t.name ^ " (order stripped)") r
        | None -> Format.printf "%s has no ordering devices to strip@." t.name);
        if base.findings <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Happens-before sanitizer: flag program-order pairs left unordered by \
             barriers/dependencies that other cores can observe reordered, with a \
             suggested minimal fix.")
    Term.(const run $ platform $ test_name $ trials)

(* ---------- ring ---------- *)

let ring_cmd =
  let combo =
    Arg.(value & opt string "DMB ld - DMB st" & info [ "combo" ] ~docv:"NAME" ~doc:"Barrier combination (Figure 6(a) legend name), or \"pilot\".")
  in
  let messages = Arg.(value & opt int 4000 & info [ "messages" ] ~docv:"N" ~doc:"Messages to transfer.") in
  let run cfg cores combo messages =
    if String.lowercase_ascii combo = "pilot" then begin
      let spec = { (Armb_sync.Pilot_ring.default_spec cfg ~cores) with messages } in
      let r = Armb_sync.Pilot_ring.run spec in
      Printf.printf "Pilot ring on %s: %.2f M msgs/s (%d fallbacks)\n" cfg.Armb_cpu.Config.name
        (r.throughput /. 1e6) r.fallbacks
    end
    else begin
      let spec =
        { (Armb_sync.Spsc_ring.default_spec cfg ~cores) with
          messages;
          barriers = Armb_sync.Spsc_ring.combo combo;
        }
      in
      let r = Armb_sync.Spsc_ring.verified_run spec in
      Printf.printf "%s on %s: %.2f M msgs/s\n" combo cfg.Armb_cpu.Config.name
        (r.throughput /. 1e6)
    end
  in
  Cmd.v
    (Cmd.info "ring" ~doc:"Run the producer-consumer ring with a chosen barrier combination.")
    Term.(const run $ platform $ cores $ combo $ messages)

(* ---------- report ---------- *)

let report_cmd =
  let run cfg =
    Armb_core.Report.print (Armb_core.Report.generate cfg)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Generate the full Markdown barrier-characterization report for a platform.")
    Term.(const run $ platform)

(* ---------- fuzz ---------- *)

let fuzz_cmd =
  let tests = Arg.(value & opt int 50 & info [ "tests" ] ~docv:"N" ~doc:"Random tests to generate.") in
  let trials = Arg.(value & opt int 60 & info [ "trials" ] ~docv:"N" ~doc:"Simulator trials per test.") in
  let seed = Arg.(value & opt int 1234 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.") in
  let run tests trials_per_test seed =
    let r = Armb_litmus.Fuzz.run ~tests ~trials_per_test ~seed () in
    Format.printf "%a@." Armb_litmus.Fuzz.pp_report r;
    if r.Armb_litmus.Fuzz.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzz: random litmus tests, simulator outcomes checked against the operational model.")
    Term.(const run $ tests $ trials $ seed)

(* ---------- perf ---------- *)

let perf_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller iteration/trial counts (CI smoke profile).")
  in
  let out =
    Arg.(value & opt string "BENCH_perf.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the results JSON.")
  in
  let baseline =
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc:"Committed baseline JSON to compare events/sec against (read before $(b,--out) overwrites it).")
  in
  let tolerance =
    Arg.(value & opt float 0.2 & info [ "tolerance" ] ~docv:"FRAC" ~doc:"Allowed fractional events/sec regression vs the baseline (default 0.2 = 20%).")
  in
  let run quick out baseline tolerance =
    let module Perf = Armb_perf.Perf in
    let base = Option.map (fun p -> (p, Perf.load_json ~path:p)) baseline in
    let r = Perf.run ~quick ~progress:(fun n -> Printf.printf "perf: %s...\n%!" n) () in
    Format.printf "%a@." Perf.pp r;
    Perf.write_json ~path:out r;
    Printf.printf "wrote %s\n" out;
    match base with
    | None -> ()
    | Some (p, None) ->
      Printf.eprintf "perf: baseline %s missing or unparseable; skipping comparison\n" p
    | Some (p, Some b) -> (
      match Perf.compare_against ~baseline:b r ~tolerance with
      | [] ->
        Printf.printf "perf: no workload regressed more than %.0f%% vs %s\n"
          (tolerance *. 100.) p
      | regs ->
        List.iter
          (fun (g : Perf.regression) ->
            Printf.eprintf "perf: REGRESSION %s: %.0f -> %.0f events/s (-%.1f%%)\n"
              g.workload g.baseline_eps g.current_eps
              (100. *. (1. -. (g.current_eps /. g.baseline_eps))))
          regs;
        exit 1)
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Kernel-throughput benchmark: events/sec over representative workloads, \
             persisted to BENCH_perf.json, optionally gated against a committed baseline.")
    Term.(const run $ quick $ out $ baseline $ tolerance)

(* ---------- trace ---------- *)

let trace_cmd =
  let out =
    Arg.(value & opt string "armb-trace.json" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (Chrome trace-event JSON).")
  in
  let messages = Arg.(value & opt int 200 & info [ "messages" ] ~docv:"N" ~doc:"Ring messages to trace.") in
  let run cfg cores out messages =
    let tr = Armb_cpu.Trace.create () in
    let spec =
      { (Armb_sync.Spsc_ring.default_spec cfg ~cores) with messages }
    in
    (* rebuild the ring run with a traced machine *)
    let m = Armb_cpu.Machine.create ~tracer:(Armb_cpu.Trace.emit tr) cfg in
    let prod_cnt = Armb_cpu.Machine.alloc_line m in
    let cons_cnt = Armb_cpu.Machine.alloc_line m in
    let buf = Armb_cpu.Machine.alloc_lines m spec.slots in
    let open Armb_cpu in
    Machine.spawn m ~core:spec.producer_core (fun c ->
        for i = 0 to messages - 1 do
          let avail v = Int64.to_int v > i - spec.slots in
          let cv = Core.await c (Core.load c cons_cnt) in
          if not (avail cv) then ignore (Core.spin_until c cons_cnt avail);
          Core.barrier c (Barrier.Dmb Ld);
          Core.compute c spec.produce_nops;
          Core.store c (buf + (i mod spec.slots * 64)) (Int64.of_int i);
          Core.barrier c (Barrier.Dmb St);
          Core.store c prod_cnt (Int64.of_int (i + 1))
        done);
    Machine.spawn m ~core:spec.consumer_core (fun c ->
        for i = 0 to messages - 1 do
          ignore (Core.spin_until c prod_cnt (fun v -> Int64.to_int v > i));
          Core.barrier c (Barrier.Dmb Ld);
          ignore (Core.await c (Core.load c (buf + (i mod spec.slots * 64))));
          Core.store c cons_cnt (Int64.of_int (i + 1))
        done);
    Machine.run_exn m;
    Trace.write_file tr out;
    Printf.printf "wrote %d spans (%d dropped) covering %d cycles to %s\n"
      (List.length (Trace.spans tr)) (Trace.dropped tr) (Machine.elapsed m) out;
    print_endline "open it at chrome://tracing or https://ui.perfetto.dev"
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Trace a producer-consumer run and export Chrome trace-event JSON.")
    Term.(const run $ platform $ cores $ out $ messages)

let () =
  let doc = "ARM barrier characterization and optimization toolkit (PPoPP'20 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "armb" ~version:"1.0.0" ~doc)
          [
            platforms_cmd;
            model_cmd;
            tipping_cmd;
            observations_cmd;
            advise_cmd;
            litmus_cmd;
            check_cmd;
            ring_cmd;
            report_cmd;
            fuzz_cmd;
            perf_cmd;
            trace_cmd;
          ]))
