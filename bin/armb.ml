(* armb: command-line front end of the library.

   Subcommands: platforms, model, tipping, observations, advise, litmus,
   check, fix, opt, ring, report, fuzz, perturb, perf, trace, serve, batch.
   See `armb --help`. *)

open Cmdliner

module AM = Armb_core.Abstracted_model
module Advisor = Armb_core.Advisor
module Barrier = Armb_cpu.Barrier
module Ordering = Armb_core.Ordering
module P = Armb_platform.Platform
module RC = Armb_platform.Run_config

(* Every subcommand that takes --out/--output routes file writing
   through here: Armb_service.Out creates missing parent directories
   and writes atomically (temp file + rename), so a watcher tailing a
   rolling artifact never reads a torn file.  Any I/O failure becomes
   one consistent message instead of a raw Sys_error. *)
let write_out path text =
  match Armb_service.Out.write ~path text with
  (* report on stderr: stdout may be a data stream (armb serve) *)
  | Ok () -> Printf.eprintf "wrote %s\n" path
  | Error m ->
    Printf.eprintf "armb: cannot write %s: %s\n" path m;
    exit 1

let read_lines path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  with
  | lines -> lines
  | exception Sys_error m ->
    Printf.eprintf "armb: cannot read %s: %s\n" path m;
    exit 1

let platform_arg =
  let parse s =
    match P.by_name s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown platform %S (try: %s)" s (String.concat ", " P.names)))
  in
  let print ppf (c : Armb_cpu.Config.t) = Format.fprintf ppf "%s" c.name in
  Arg.conv (parse, print)

let platform =
  Arg.(value & opt platform_arg P.kunpeng916 & info [ "p"; "platform" ] ~docv:"NAME" ~doc:"Target platform (kunpeng916, kirin960, kirin970, raspberrypi4).")

(* Every simulator-facing subcommand shares one validated Run_config
   term: platform, core pair, seed and trial count all parse and
   validate in one place instead of each command re-plumbing positional
   tuples.  [trials_default] keeps each command's historical default. *)
let run_config ?(trials_default = 300) () =
  let cores =
    Arg.(value & opt (some (pair ~sep:',' int int)) None
         & info [ "cores" ] ~docv:"A,B"
             ~doc:"Cores the two threads bind to (default: core 0 and the first core of the \
                   far half of the machine).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Base RNG seed (litmus harnesses, fault plans).")
  in
  let trials =
    Arg.(value & opt int trials_default
         & info [ "trials" ] ~docv:"N" ~doc:"Simulator trials per litmus experiment.")
  in
  let build cfg cores seed trials =
    match RC.make ?cores ~seed ~trials cfg with
    | rc -> Ok rc
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Term.(term_result (const build $ platform $ cores $ seed $ trials))

(* Fault intensity knob shared by the subcommands that can perturb a
   run (ring, perturb, fuzz, perf). *)
let fault_intensity =
  Arg.(value & opt float 0.0
       & info [ "fault" ] ~docv:"X"
           ~doc:"Fault-injection intensity in [0,1]: 0 disables (default), 1 arms every \
                 site of the deterministic fault plan.")

let fault_of ~(rc : RC.t) ~name intensity =
  if intensity <= 0.0 then None
  else Some (Armb_fault.Plan.of_intensity ~seed:rc.seed ~name intensity)

let approach =
  Arg.(value & opt (enum Ordering.named) (Ordering.Bar (Barrier.Dmb Full)) & info [ "a"; "approach" ] ~docv:"APPROACH" ~doc:"Order-preserving approach.")

let mem_ops =
  Arg.(value
      & opt (enum [ ("none", AM.No_mem); ("store-store", AM.Store_store); ("load-store", AM.Load_store); ("load-load", AM.Load_load) ]) AM.Store_store
      & info [ "m"; "mem-ops" ] ~docv:"KIND" ~doc:"Memory operations around the barrier.")

let location =
  Arg.(value & opt (enum [ ("1", AM.Loc1); ("2", AM.Loc2) ]) AM.Loc1 & info [ "l"; "loc" ] ~docv:"1|2" ~doc:"Barrier placement: strictly after the first access (1) or after the NOPs (2).")

let nops = Arg.(value & opt int 300 & info [ "n"; "nops" ] ~docv:"N" ~doc:"NOPs between the accesses.")

let iters = Arg.(value & opt int 2000 & info [ "iters" ] ~docv:"N" ~doc:"Loop iterations per thread.")

(* ---------- platforms ---------- *)

let platforms_cmd =
  let run () = List.iter (fun c -> Format.printf "%a@.@." Armb_cpu.Config.pp c) P.all in
  Cmd.v (Cmd.info "platforms" ~doc:"List the calibrated platform models.") Term.(const run $ const ())

(* ---------- model ---------- *)

let model_cmd =
  let run (rc : RC.t) mem_ops approach location nops iters =
    let spec =
      { (AM.default_spec rc.cfg) with cores = rc.cores; mem_ops; approach; location; nops; iters }
    in
    if not (AM.valid spec) then begin
      Printf.eprintf "invalid combination: %s with this mem-ops kind\n" (AM.label spec);
      exit 1
    end;
    let thr = AM.run spec in
    Printf.printf "%s on %s, %d nops: %.2f M loops/s (%d cycles)\n" (AM.label spec)
      rc.cfg.Armb_cpu.Config.name nops (thr /. 1e6) (AM.run_cycles spec)
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Run one abstracted model (the paper's Algorithm 1).")
    Term.(const run $ run_config () $ mem_ops $ approach $ location $ nops $ iters)

(* ---------- tipping ---------- *)

let tipping_cmd =
  let run (rc : RC.t) =
    match Armb_core.Characterize.tipping_point rc.cfg ~cores:rc.cores () with
    | Some n ->
      Printf.printf "DMB full fully hidden behind ~%d NOPs on %s\n" n rc.cfg.Armb_cpu.Config.name
    | None -> print_endline "no tipping point found in the sweep"
  in
  Cmd.v
    (Cmd.info "tipping" ~doc:"Find the NOP count at which DMB full-2 matches No Barrier (Figure 4).")
    Term.(const run $ run_config ())

(* ---------- observations ---------- *)

let observations_cmd =
  let run () =
    List.iter
      (fun (name, (v : Armb_core.Observations.verdict)) ->
        Printf.printf "%-50s %s\n  %s\n" name (if v.holds then "HOLDS" else "FAILS") v.detail)
      (Armb_core.Observations.all ())
  in
  Cmd.v
    (Cmd.info "observations" ~doc:"Check the paper's six observations against the simulator.")
    Term.(const run $ const ())

(* ---------- advise ---------- *)

let advise_cmd =
  let from_a =
    Arg.(required
        & opt (some (enum [ ("load", Advisor.From_load); ("store", Advisor.From_store); ("any", Advisor.From_any) ])) None
        & info [ "from" ] ~docv:"ACCESS" ~doc:"Earlier access kind: load, store or any.")
  in
  let to_a =
    Arg.(required
        & opt (some (enum [ ("load", Advisor.To_load); ("loads", Advisor.To_loads); ("store", Advisor.To_store); ("stores", Advisor.To_stores); ("any", Advisor.To_any) ])) None
        & info [ "to" ] ~docv:"ACCESS" ~doc:"Later access kind: load, loads, store, stores or any.")
  in
  let run from_ to_ =
    List.iter
      (fun (s : Advisor.suggestion) ->
        Printf.printf "%d. %s%s\n" (s.rank + 1) (Ordering.to_string s.approach)
          (match s.caveat with Some c -> "  — " ^ c | None -> ""))
      (Advisor.suggest ~from_ ~to_)
  in
  Cmd.v
    (Cmd.info "advise" ~doc:"Suggest order-preserving approaches (the paper's Table 3).")
    Term.(const run $ from_a $ to_a)

(* ---------- litmus ---------- *)

let litmus_cmd =
  let test_name =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Test name (default: all).")
  in
  let run (rc : RC.t) test_name =
    let tests =
      match test_name with
      | None -> Armb_litmus.Catalogue.all
      | Some n -> (
        match
          List.find_opt
            (fun (t : Armb_litmus.Lang.test) -> String.lowercase_ascii t.name = String.lowercase_ascii n)
            Armb_litmus.Catalogue.all
        with
        | Some t -> [ t ]
        | None ->
          Printf.eprintf "unknown test %S; available: %s\n" n
            (String.concat ", "
               (List.map (fun (t : Armb_litmus.Lang.test) -> t.name) Armb_litmus.Catalogue.all));
          exit 1)
    in
    List.iter
      (fun (t : Armb_litmus.Lang.test) ->
        let wmm = Armb_litmus.Enumerate.allows Armb_litmus.Enumerate.Wmm t in
        let tso = Armb_litmus.Enumerate.allows Armb_litmus.Enumerate.Tso t in
        let r = Armb_litmus.Sim_runner.run ~trials:rc.trials ~seed:rc.seed t in
        Printf.printf "%-18s TSO:%-9s WMM:%-9s witnessed:%b\n" t.name
          (if tso then "Allowed" else "Forbidden")
          (if wmm then "Allowed" else "Forbidden")
          r.interesting_witnessed;
        List.iter (fun (o, k) -> Printf.printf "    %5d  %s\n" k o) r.outcomes)
      tests
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Run litmus tests exhaustively and on the timing simulator.")
    Term.(const run $ run_config () $ test_name)

(* ---------- check ---------- *)

let check_cmd =
  let test_name =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"Litmus test to sanitize (default: cross-check the whole catalogue).")
  in
  let run (rc : RC.t) test_name =
    let cfg = rc.cfg and trials = rc.trials in
    let module Sim = Armb_litmus.Sim_runner in
    match test_name with
    | None ->
      let rows, ok = Sim.cross_check ~cfg ~trials () in
      List.iter (fun r -> Format.printf "%a@." Sim.pp_check_row r) rows;
      Format.printf "cross-check: %s@." (if ok then "ok" else "FAIL");
      if not ok then exit 1
    | Some n -> (
      match
        List.find_opt
          (fun (t : Armb_litmus.Lang.test) ->
            String.lowercase_ascii t.name = String.lowercase_ascii n)
          Armb_litmus.Catalogue.all
      with
      | None ->
        Printf.eprintf "unknown test %S; available: %s\n" n
          (String.concat ", "
             (List.map (fun (t : Armb_litmus.Lang.test) -> t.name) Armb_litmus.Catalogue.all));
        exit 1
      | Some t ->
        let base, stripped = Sim.check_test ~cfg ~trials t in
        let report tag (r : Sim.result) =
          match r.findings with
          | [] -> Format.printf "%s: clean@." tag
          | fs ->
            Format.printf "%s: %d racy pair(s)@." tag (List.length fs);
            List.iter
              (fun f -> Format.printf "%a@." Armb_check.Sanitizer.pp_finding f)
              fs
        in
        report t.name base;
        (match stripped with
        | Some r -> report (t.name ^ " (order stripped)") r
        | None -> Format.printf "%s has no ordering devices to strip@." t.name);
        if base.findings <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Happens-before sanitizer: flag program-order pairs left unordered by \
             barriers/dependencies that other cores can observe reordered, with a \
             suggested minimal fix.")
    Term.(const run $ run_config ~trials_default:50 () $ test_name)

(* ---------- ring ---------- *)

let ring_cmd =
  let combo =
    Arg.(value & opt string "DMB ld - DMB st" & info [ "combo" ] ~docv:"NAME" ~doc:"Barrier combination (Figure 6(a) legend name), or \"pilot\".")
  in
  let messages = Arg.(value & opt int 4000 & info [ "messages" ] ~docv:"N" ~doc:"Messages to transfer.") in
  let run (rc : RC.t) combo messages intensity =
    let cfg = rc.cfg in
    let fault = fault_of ~rc ~name:(Printf.sprintf "ring-%.2f" intensity) intensity in
    if String.lowercase_ascii combo = "pilot" then begin
      let spec = { (Armb_sync.Pilot_ring.default_spec cfg ~cores:rc.cores) with messages; fault } in
      let r = Armb_sync.Pilot_ring.run spec in
      Printf.printf "Pilot ring on %s: %.2f M msgs/s (%d fallbacks)\n" cfg.Armb_cpu.Config.name
        (r.throughput /. 1e6) r.fallbacks
    end
    else begin
      let spec =
        { (Armb_sync.Spsc_ring.default_spec cfg ~cores:rc.cores) with
          messages;
          barriers = Armb_sync.Spsc_ring.combo combo;
          fault;
        }
      in
      let r = Armb_sync.Spsc_ring.verified_run spec in
      Printf.printf "%s on %s: %.2f M msgs/s\n" combo cfg.Armb_cpu.Config.name
        (r.throughput /. 1e6)
    end
  in
  Cmd.v
    (Cmd.info "ring" ~doc:"Run the producer-consumer ring with a chosen barrier combination.")
    Term.(const run $ run_config () $ combo $ messages $ fault_intensity)

(* ---------- report ---------- *)

let report_cmd =
  let run cfg =
    Armb_core.Report.print (Armb_core.Report.generate cfg)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Generate the full Markdown barrier-characterization report for a platform.")
    Term.(const run $ platform)

(* ---------- fuzz ---------- *)

let fuzz_cmd =
  let tests = Arg.(value & opt int 50 & info [ "tests" ] ~docv:"N" ~doc:"Random tests to generate.") in
  let run (rc : RC.t) tests intensity =
    let fault = fault_of ~rc ~name:(Printf.sprintf "fuzz-%.2f" intensity) intensity in
    let r = Armb_litmus.Fuzz.run ?fault ~tests ~trials_per_test:rc.trials ~seed:rc.seed () in
    Format.printf "%a@." Armb_litmus.Fuzz.pp_report r;
    if r.Armb_litmus.Fuzz.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzz: random litmus tests, simulator outcomes checked against the operational model.")
    Term.(const run $ run_config ~trials_default:60 () $ tests $ fault_intensity)

(* ---------- perf ---------- *)

let perf_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller iteration/trial counts (CI smoke profile).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Where to write the results JSON (default BENCH_perf.json; with \
                   $(b,--only) nothing is written unless this is given, so a filtered \
                   run cannot clobber the full committed baseline).")
  in
  let baseline =
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc:"Committed baseline JSON to compare events/sec against (read before $(b,--out) overwrites it).")
  in
  let tolerance =
    Arg.(value & opt float 0.2 & info [ "tolerance" ] ~docv:"FRAC" ~doc:"Allowed fractional events/sec regression vs the baseline (default 0.2 = 20%).")
  in
  let only =
    Arg.(value & opt (some (list string)) None
         & info [ "only" ] ~docv:"ID,.."
             ~doc:"Run only the named workloads (comma-separated), e.g. \
                   $(b,--only many-core-central,many-core-tree).  Unknown ids are \
                   rejected with the valid list.")
  in
  let run quick out baseline tolerance only intensity =
    let module Perf = Armb_perf.Perf in
    let fault =
      if intensity <= 0.0 then None
      else
        Some
          (Armb_fault.Plan.of_intensity ~seed:42 ~name:(Printf.sprintf "perf-%.2f" intensity)
             intensity)
    in
    let base = Option.map (fun p -> (p, Perf.load_json ~path:p)) baseline in
    let r =
      try Perf.run ~quick ?fault ?only ~progress:(fun n -> Printf.printf "perf: %s...\n%!" n) ()
      with Invalid_argument msg ->
        Printf.eprintf "perf: %s\n" msg;
        exit 2
    in
    Format.printf "%a@." Perf.pp r;
    (match (out, only) with
    | Some f, _ -> write_out f (Perf.to_json r)
    | None, None -> write_out "BENCH_perf.json" (Perf.to_json r)
    | None, Some _ ->
      Printf.printf "perf: --only run, results not written (pass --out to save a partial file)\n");
    match base with
    | None -> ()
    | Some (p, None) ->
      Printf.eprintf "perf: baseline %s missing or unparseable; skipping comparison\n" p
    | Some (p, Some b) ->
      (* Comparing across fault plans measures the plan, not the kernel. *)
      if r.Perf.fault <> b.Perf.fault then
        Printf.eprintf
          "perf: baseline %s ran under fault plan %S but this run under %S; skipping comparison\n"
          p b.Perf.fault r.Perf.fault
      else (
        match Perf.compare_against ~baseline:b r ~tolerance with
        | [] ->
          Printf.printf "perf: no workload regressed more than %.0f%% vs %s\n"
            (tolerance *. 100.) p
        | regs ->
          List.iter
            (fun (g : Perf.regression) ->
              Printf.eprintf "perf: REGRESSION %s: %.0f -> %.0f events/s (-%.1f%%)\n"
                g.workload g.baseline_eps g.current_eps
                (100. *. (1. -. (g.current_eps /. g.baseline_eps))))
            regs;
          exit 1)
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Kernel-throughput benchmark: events/sec over representative workloads, \
             persisted to BENCH_perf.json, optionally gated against a committed baseline.")
    Term.(const run $ quick $ out $ baseline $ tolerance $ only $ fault_intensity)

(* ---------- barrier ---------- *)

let barrier_cmd =
  let module BS = Armb_workloads.Barrier_study in
  let sizes =
    Arg.(value & opt (list int) BS.default_sizes
         & info [ "sizes" ] ~docv:"N,.."
             ~doc:(Printf.sprintf
                     "Core counts to sweep.  Each must be a multiple of 8 between %d and \
                      %d that splits into uniform NUMA nodes (validated before any \
                      simulation runs)."
                     Armb_platform.Platform.manycore_min Armb_platform.Platform.manycore_max))
  in
  let episodes =
    Arg.(value & opt int 4 & info [ "episodes" ] ~docv:"N" ~doc:"Barrier episodes per run.")
  in
  let work =
    Arg.(value & opt int 64
         & info [ "work" ] ~docv:"CYCLES" ~doc:"ALU cycles of per-core work between barriers.")
  in
  let arity =
    Arg.(value & opt int 4 & info [ "arity" ] ~docv:"K" ~doc:"Combining-tree arity (>= 2).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the sweep as JSON.")
  in
  let run sizes episodes work arity out =
    (* Reject bad sizes before the first simulation, with the shape hint. *)
    List.iter
      (fun s ->
        match Armb_platform.Platform.manycore_shape s with
        | Ok _ -> ()
        | Error m ->
          Printf.eprintf "barrier: %s\n" m;
          exit 2)
      sizes;
    let t =
      try
        BS.run ~sizes ~episodes ~work ~arity
          ~progress:(fun n -> Printf.printf "barrier: %d cores...\n%!" n)
          ()
      with Invalid_argument msg ->
        Printf.eprintf "barrier: %s\n" msg;
        exit 2
    in
    Format.printf "%a@." BS.pp t;
    match out with None -> () | Some p -> write_out p (BS.to_json t)
  in
  Cmd.v
    (Cmd.info "barrier"
       ~doc:"Many-core barrier crossover study: central counter vs combining tree vs \
             dissemination on scaled-out manycore machines, cycles per episode and the \
             central-to-tree crossover point.")
    Term.(const run $ sizes $ episodes $ work $ arity $ out)

(* ---------- perturb ---------- *)

let perturb_cmd =
  let intensities =
    Arg.(value & opt (list float) [ 0.25; 0.5; 1.0 ]
         & info [ "intensities" ] ~docv:"X,Y,.."
             ~doc:"Fault intensities to sweep (0 is always measured as the baseline).")
  in
  let messages =
    Arg.(value & opt int 2000 & info [ "messages" ] ~docv:"N" ~doc:"Ring messages per degradation point.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the report to FILE (CI drift artifact).")
  in
  let run (rc : RC.t) intensities messages out =
    let buf = Buffer.create 4096 in
    let say fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; print_string s) fmt in
    let intensities = List.sort_uniq compare (List.filter (fun x -> x > 0.0) intensities) in
    if intensities = [] then begin
      Printf.eprintf "perturb: no positive intensities to sweep\n";
      exit 2
    end;
    (* 1. the litmus catalogue under perturbation: legality + drift *)
    say "== litmus catalogue under fault injection (%s, %d trials, seed %d) ==\n"
      rc.cfg.Armb_cpu.Config.name rc.trials rc.seed;
    let sweep =
      Armb_litmus.Perturb.sweep ~cfg:rc.cfg ~trials:rc.trials ~seed:rc.seed ~intensities ()
    in
    List.iter
      (fun (s : Armb_litmus.Perturb.summary) ->
        say "%s\n" (Format.asprintf "%a" Armb_litmus.Perturb.pp_summary s))
      sweep.summaries;
    let bad = List.filter (fun (r : Armb_litmus.Perturb.row) -> not r.row_ok) sweep.results in
    List.iter
      (fun (r : Armb_litmus.Perturb.row) ->
        say "VIOLATION %s\n" (Format.asprintf "%a" Armb_litmus.Perturb.pp_row r))
      bad;
    (* 2. degradation curve of the message-passing ring, Pilot included *)
    let a, b = rc.cores in
    say "\n== MP ring degradation (%s, cores %d,%d, %d messages) ==\n"
      rc.cfg.Armb_cpu.Config.name a b messages;
    let spsc intensity =
      let fault = fault_of ~rc ~name:(Printf.sprintf "perturb-%.2f" intensity) intensity in
      let spec =
        { (Armb_sync.Spsc_ring.default_spec rc.cfg ~cores:rc.cores) with messages; fault }
      in
      (Armb_sync.Spsc_ring.verified_run spec).Armb_sync.Spsc_ring.throughput
    in
    let pilot intensity =
      let fault = fault_of ~rc ~name:(Printf.sprintf "perturb-%.2f" intensity) intensity in
      let spec =
        { (Armb_sync.Pilot_ring.default_spec rc.cfg ~cores:rc.cores) with messages; fault }
      in
      (Armb_sync.Pilot_ring.run spec).Armb_sync.Pilot_ring.throughput
    in
    let base_spsc = spsc 0.0 and base_pilot = pilot 0.0 in
    say "  %-10s %22s %22s\n" "intensity" "DMB ld - DMB st" "Pilot";
    let point intensity s p =
      say "  %-10.2f %12.2f (%.2fx) %12.2f (%.2fx)\n" intensity (s /. 1e6) (s /. base_spsc)
        (p /. 1e6) (p /. base_pilot)
    in
    point 0.0 base_spsc base_pilot;
    List.iter (fun x -> point x (spsc x) (pilot x)) intensities;
    say "\nperturbation sweep: %s\n" (if sweep.ok then "ok" else "FAIL");
    (match out with
    | None -> ()
    | Some path -> write_out path (Buffer.contents buf));
    if not sweep.ok then exit 1
  in
  Cmd.v
    (Cmd.info "perturb"
       ~doc:"Sweep deterministic fault-injection intensity: litmus outcome drift and \
             legality plus the message-passing ring's degradation curve (Pilot included).")
    Term.(const run $ run_config ~trials_default:40 () $ intensities $ messages $ out)

(* ---------- fix ---------- *)

let fix_cmd =
  let module Fix = Armb_synth.Fix in
  let module Report = Armb_synth.Report in
  let module Soak = Armb_synth.Soak in
  let test_name =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME" ~doc:"Litmus test to repair (catalogue name).")
  in
  let all =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Strip-and-resynthesize every eligible catalogue test.")
  in
  let strip =
    Arg.(value & flag
         & info [ "strip" ]
             ~doc:"Round trip: strip NAME of its ordering devices first, then repair and \
                   compare the winner's simulated cost against the original.")
  in
  let soak =
    Arg.(value & opt int 0
         & info [ "soak" ] ~docv:"N"
             ~doc:"Fuzz-repair soak: generate N random tests, strip, repair, re-verify \
                   (0 disables).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text/Markdown.") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the report to FILE.")
  in
  let max_edits =
    Arg.(value & opt int 3
         & info [ "max-edits" ] ~docv:"N" ~doc:"Largest edit set the search considers.")
  in
  let budget =
    Arg.(value & opt int 4000
         & info [ "budget" ] ~docv:"N" ~doc:"Oracle-call budget per search.")
  in
  let run (rc : RC.t) test_name all strip soak json out max_edits budget =
    let trials = rc.trials and seed = rc.seed in
    let emit text =
      print_string text;
      if text <> "" && text.[String.length text - 1] <> '\n' then print_newline ();
      match out with
      | None -> ()
      | Some path -> write_out path text
    in
    if soak > 0 then begin
      let r = Soak.run ~tests:soak ~seed ~max_edits:(min max_edits 2) ~budget () in
      Format.printf "%a@." Soak.pp_report r;
      if not (Soak.ok r) then exit 1
    end
    else if all then begin
      let rts = Fix.catalogue_round_trips ~max_edits ~budget ~trials ~seed () in
      emit (if json then Report.round_trips_json rts else Report.round_trips_markdown rts);
      if List.exists (fun (rt : Fix.round_trip) -> not rt.ok) rts then exit 1
    end
    else
      match test_name with
      | None ->
        Printf.eprintf "fix: give a test NAME, or --all, or --soak N\n";
        exit 2
      | Some n -> (
        match Fix.find_test n with
        | None ->
          Printf.eprintf "unknown test %S; available: %s\n" n
            (String.concat ", "
               (List.map (fun (t : Armb_litmus.Lang.test) -> t.name) Armb_litmus.Catalogue.all));
          exit 1
        | Some t ->
          if strip then (
            match Fix.strip_round_trip ~max_edits ~budget ~trials ~seed t with
            | None ->
              Printf.eprintf
                "%s is not eligible for a strip round trip (weak outcome expected, or \
                 nothing strippable)\n"
                t.name;
              exit 1
            | Some rt ->
              emit
                (if json then Report.round_trips_json [ rt ]
                 else Format.asprintf "%a@." Report.pp_round_trip rt);
              if not rt.ok then exit 1)
          else begin
            let o = Fix.fix ~max_edits ~budget ~trials ~seed t in
            emit
              (if json then Report.outcome_json o
               else Format.asprintf "%a@." Report.pp_outcome o);
            if (not o.already_sound) && o.repairs = [] then exit 1
          end)
  in
  Cmd.v
    (Cmd.info "fix"
       ~doc:"Synthesize minimal-cost ordering repairs: irredundant sufficient fence/\
             acquire-release/dependency edit sets (plus the Pilot single-word rewrite \
             for MP-shaped tests), costed per platform on the timing simulator.")
    Term.(const run $ run_config ~trials_default:60 () $ test_name $ all $ strip $ soak
          $ json $ out $ max_edits $ budget)

(* ---------- opt ---------- *)

module Opt = Armb_opt.Optimizer
module Opt_verify = Armb_opt.Verify
module Opt_report = Armb_opt.Report
module Opt_soak = Armb_opt.Soak

let opt_cmd =
  let test_name =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"Program to optimize: any catalogue litmus test or control-flow test, \
                   plus the +overfenced variants (e.g. $(b,MP+overfenced)).")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Optimize the whole catalogue sweep.") in
  let soak =
    Arg.(value & opt int 0
         & info [ "soak" ] ~docv:"N"
             ~doc:"Optimizer soak: N rounds of random CFG programs (loops included), \
                   over-fenced, optimized and re-verified; fails on any unsoundness or \
                   barrier-count increase.")
  in
  let algorithm =
    Arg.(value & opt string "second-chance"
         & info [ "algorithm" ] ~docv:"ALGO"
             ~doc:"Placement algorithm: $(b,single-bb), $(b,linear-scan) or \
                   $(b,second-chance).")
  in
  let unroll =
    Arg.(value & opt int 2
         & info [ "unroll" ] ~docv:"K" ~doc:"Loop unroll bound for slicing and verification.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of Markdown.") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the report to FILE.")
  in
  let no_cost =
    Arg.(value & flag
         & info [ "no-cost" ]
             ~doc:"Skip platform costing (and with it the slower-platform revert guard).")
  in
  let min_improved =
    Arg.(value & opt int 0
         & info [ "min-improved" ] ~docv:"N"
             ~doc:"Fail unless at least N programs improved (the CI guard).")
  in
  let run (rc : RC.t) test_name all soak algo_s unroll json out no_cost min_improved =
    let algorithm =
      match Opt.algorithm_of_string algo_s with
      | Some a -> a
      | None ->
        Printf.eprintf "opt: unknown algorithm %S (single-bb | linear-scan | second-chance)\n"
          algo_s;
        exit 2
    in
    let cost = not no_cost in
    let finish results =
      let text = if json then Opt_report.json results else Opt_report.markdown results in
      print_string text;
      (match out with None -> () | Some path -> write_out path text);
      let unsound =
        List.filter (fun (r : Opt.result) -> not r.Opt.verdict.Opt_verify.sound) results
      in
      let increase =
        List.filter (fun (r : Opt.result) -> r.Opt.output_fences > r.Opt.input_fences) results
      in
      let improved = List.length (List.filter Opt.improved results) in
      List.iter
        (fun (r : Opt.result) -> Printf.eprintf "opt: UNSOUND on %s: %s\n" r.Opt.name r.Opt.verdict.Opt_verify.detail)
        unsound;
      List.iter
        (fun (r : Opt.result) ->
          Printf.eprintf "opt: barrier count increased on %s (%d -> %d)\n" r.Opt.name
            r.Opt.input_fences r.Opt.output_fences)
        increase;
      if unsound <> [] || increase <> [] then exit 1;
      if improved < min_improved then begin
        Printf.eprintf "opt: only %d program(s) improved (expected at least %d)\n" improved
          min_improved;
        exit 1
      end
    in
    if soak > 0 then begin
      let r = Opt_soak.run ~rounds:soak ~seed:rc.seed ~algorithm ~unroll () in
      Format.printf "%a@." Opt_soak.pp_report r;
      if not (Opt_soak.ok r) then exit 1
    end
    else if all then
      finish (Opt.sweep ~algorithm ~unroll ~cost ~trials:rc.trials ~seed:rc.seed ())
    else
      match test_name with
      | None ->
        Printf.eprintf "opt: give a program NAME, or --all, or --soak N\n";
        exit 2
      | Some n -> (
        match Opt.find_input n with
        | None ->
          Printf.eprintf "unknown program %S; available: %s\n" n
            (String.concat ", "
               (List.map
                  (fun (p : Armb_litmus.Cfg.program) -> p.Armb_litmus.Cfg.name)
                  (Opt.sweep_inputs ())));
          exit 1
        | Some p ->
          finish [ Opt.optimize ~algorithm ~unroll ~cost ~trials:rc.trials ~seed:rc.seed p ])
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:"Whole-program fence optimization: RPO barrier merging over the CFG IR plus \
             cost-ranked placement (single-bb / linear-scan / second-chance), verified \
             against the exhaustive WMM enumerator (loop-free) or bounded unrolling with \
             the happens-before sanitizer (loops), and priced per platform on the timing \
             simulator.")
    Term.(const run $ run_config ~trials_default:30 () $ test_name $ all $ soak $ algorithm
          $ unroll $ json $ out $ no_cost $ min_improved)

(* ---------- trace ---------- *)

let trace_cmd =
  let out =
    Arg.(value & opt string "armb-trace.json" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (Chrome trace-event JSON).")
  in
  let messages = Arg.(value & opt int 200 & info [ "messages" ] ~docv:"N" ~doc:"Ring messages to trace.") in
  let test_name =
    Arg.(value & opt (some string) None
         & info [ "test" ] ~docv:"NAME"
             ~doc:"Trace one simulator trial of a catalogue litmus test instead of the ring.")
  in
  let fixed =
    Arg.(value & flag
         & info [ "fixed" ]
             ~doc:"With $(b,--test): synthesize a repair first (armb fix) and trace this \
                   platform's winner instead of the test as written.")
  in
  let run_litmus (rc : RC.t) out test_name fixed =
    match Armb_synth.Fix.find_test test_name with
    | None ->
      Printf.eprintf "unknown test %S; available: %s\n" test_name
        (String.concat ", "
           (List.map (fun (t : Armb_litmus.Lang.test) -> t.name) Armb_litmus.Catalogue.all));
      exit 1
    | Some t ->
      let t =
        if not fixed then t
        else begin
          let o = Armb_synth.Fix.fix ~trials:rc.trials ~seed:rc.seed t in
          if o.already_sound then begin
            Printf.printf "%s is already sound; tracing it as written\n" t.name;
            t
          end
          else
            match List.assoc_opt rc.cfg.Armb_cpu.Config.name o.winners with
            | Some (r : Armb_synth.Fix.repair) ->
              Printf.printf "tracing winner on %s: %s\n" rc.cfg.Armb_cpu.Config.name r.label;
              r.test
            | None ->
              Printf.eprintf "no repair found for %s\n" t.name;
              exit 1
        end
      in
      let tr = Armb_cpu.Trace.create () in
      let r =
        Armb_litmus.Sim_runner.run ~cfg:rc.cfg ~trials:1 ~seed:rc.seed
          ~tracer:(Armb_cpu.Trace.emit tr) t
      in
      write_out out (Armb_cpu.Trace.to_chrome_json tr);
      Printf.printf "%d spans (%d dropped) covering %d cycles of %s\n"
        (List.length (Armb_cpu.Trace.spans tr))
        (Armb_cpu.Trace.dropped tr) r.Armb_litmus.Sim_runner.cycles t.name;
      print_endline "open it at chrome://tracing or https://ui.perfetto.dev"
  in
  let run (rc : RC.t) out messages test_name fixed =
    match test_name with
    | Some n -> run_litmus rc out n fixed
    | None ->
    ignore fixed;
    let cfg = rc.cfg in
    let tr = Armb_cpu.Trace.create () in
    let spec =
      { (Armb_sync.Spsc_ring.default_spec cfg ~cores:rc.cores) with messages }
    in
    (* rebuild the ring run with a traced machine *)
    let m = Armb_cpu.Machine.create ~tracer:(Armb_cpu.Trace.emit tr) cfg in
    let prod_cnt = Armb_cpu.Machine.alloc_line m in
    let cons_cnt = Armb_cpu.Machine.alloc_line m in
    let buf = Armb_cpu.Machine.alloc_lines m spec.slots in
    let open Armb_cpu in
    Machine.spawn m ~core:spec.producer_core (fun c ->
        for i = 0 to messages - 1 do
          let avail v = Int64.to_int v > i - spec.slots in
          let cv = Core.await c (Core.load c cons_cnt) in
          if not (avail cv) then ignore (Core.spin_until c cons_cnt avail);
          Core.barrier c (Barrier.Dmb Ld);
          Core.compute c spec.produce_nops;
          Core.store c (buf + (i mod spec.slots * 64)) (Int64.of_int i);
          Core.barrier c (Barrier.Dmb St);
          Core.store c prod_cnt (Int64.of_int (i + 1))
        done);
    Machine.spawn m ~core:spec.consumer_core (fun c ->
        for i = 0 to messages - 1 do
          ignore (Core.spin_until c prod_cnt (fun v -> Int64.to_int v > i));
          Core.barrier c (Barrier.Dmb Ld);
          ignore (Core.await c (Core.load c (buf + (i mod spec.slots * 64))));
          Core.store c cons_cnt (Int64.of_int (i + 1))
        done);
    Machine.run_exn m;
    write_out out (Trace.to_chrome_json tr);
    Printf.printf "%d spans (%d dropped) covering %d cycles\n"
      (List.length (Trace.spans tr)) (Trace.dropped tr) (Machine.elapsed m);
    print_endline "open it at chrome://tracing or https://ui.perfetto.dev"
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace a producer-consumer run — or, with $(b,--test), one simulator trial \
             of a litmus test (optionally after repair) — and export Chrome trace-event \
             JSON.")
    Term.(const run $ run_config () $ out $ messages $ test_name $ fixed)

(* ---------- serve / batch ---------- *)

module Engine = Armb_service.Engine
module Serve = Armb_service.Serve
module Shard = Armb_service.Shard
module Codec = Armb_service.Codec
module Json = Armb_service.Json
module Metrics = Armb_service.Metrics

let no_cache =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable memoization and coalescing: every request computes from \
                 scratch (cold baseline).")

let queue_bound =
  Arg.(value & opt int 256
       & info [ "queue-bound" ] ~docv:"N"
           ~doc:"Most distinct computations queued at once; beyond it requests are \
                 shed with a retry-after hint.")

let cache_cap =
  Arg.(value & opt int 512
       & info [ "cache-cap" ] ~docv:"N" ~doc:"Memo-cache capacity (LRU eviction).")

let metrics_out =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the engine's metrics JSON (schema armb-serve-metrics-v1) to \
                 FILE on exit.")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"N"
           ~doc:"Shard the engine across N worker domains (consistent-hash routing, \
                 per-domain memo caches).  1 keeps the single-domain engine.")

let dump_metrics engine = function
  | None -> ()
  | Some path ->
    write_out path (Json.to_string (Metrics.to_json (Engine.metrics engine)) ^ "\n")

let serve_cmd =
  let batch_file =
    Arg.(value & opt (some string) None
         & info [ "batch" ] ~docv:"FILE"
             ~doc:"One-shot mode: read every request from FILE, write all responses \
                   to stdout, then exit (instead of streaming stdin/stdout).")
  in
  let drain_every =
    Arg.(value & opt int 16
         & info [ "drain-every" ] ~docv:"N"
             ~doc:"Streaming mode: run queued computations whenever N are pending \
                   (and at end of input).")
  in
  let max_requests =
    Arg.(value & opt (some int) None
         & info [ "max-requests" ] ~docv:"N"
             ~doc:"Streaming mode: stop accepting input after N requests, drain \
                   everything already accepted, answer it all, then exit.  The \
                   bound stops reading, never answering: a bounded serve is a \
                   prefix of the unbounded one.")
  in
  let duration =
    Arg.(value & opt (some float) None
         & info [ "duration" ] ~docv:"SECONDS"
             ~doc:"Streaming mode: stop accepting input after SECONDS of wall \
                   clock, with the same drain-then-exit semantics as \
                   $(b,--max-requests).")
  in
  let run no_cache queue_bound cache_cap drain_every max_requests duration domains
      batch_file metrics_out =
    if queue_bound < 1 then begin
      Printf.eprintf "armb serve: --queue-bound must be >= 1\n";
      exit 2
    end;
    if domains < 1 then begin
      Printf.eprintf "armb serve: --domains must be >= 1\n";
      exit 2
    end;
    if domains = 1 then begin
      let engine = Engine.create ~cache_cap ~queue_bound ~no_cache () in
      (match batch_file with
      | None ->
        Serve.serve ~drain_every ?max_requests ?duration_s:duration engine stdin stdout
      | Some f ->
        let b = Serve.run_batch engine ~lines:(read_lines f) in
        List.iter (fun r -> print_endline (Codec.response_to_line r)) b.Serve.responses);
      dump_metrics engine metrics_out
    end
    else begin
      let pool =
        match batch_file with
        | None -> Shard.create ~domains ~cache_cap ~queue_bound ~no_cache ~drain_every ()
        | Some _ ->
          (* batch drain policy: hold queued work until the drain barrier
             so duplicates coalesce as they do on one domain *)
          Shard.create ~domains ~cache_cap ~queue_bound ~no_cache ()
      in
      (match batch_file with
      | None -> Shard.serve ?max_requests ?duration_s:duration pool stdin stdout
      | Some f ->
        let b = Shard.run_batch pool ~lines:(read_lines f) in
        List.iter (fun r -> print_endline (Codec.response_to_line r)) b.Serve.responses);
      let stray = Shard.shutdown pool in
      List.iter (fun r -> print_endline (Codec.response_to_line r)) stray;
      match metrics_out with
      | None -> ()
      | Some path ->
        write_out path (Json.to_string (Metrics.to_json (Shard.metrics pool)) ^ "\n")
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Job service: newline-delimited JSON requests in, responses out, with \
             content-addressed memoization, request coalescing, fair-share priority \
             scheduling and load shedding; $(b,--domains) shards it across OCaml 5 \
             domains.")
    Term.(const run $ no_cache $ queue_bound $ cache_cap $ drain_every $ max_requests
          $ duration $ domains_arg $ batch_file $ metrics_out)

let batch_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"NDJSON request file (one JSON object per line).")
  in
  let make_demo =
    Arg.(value & flag
         & info [ "make-demo" ]
             ~doc:"Write a deterministic duplicate-heavy demo batch to FILE and exit.")
  in
  let requests =
    Arg.(value & opt int 200
         & info [ "requests" ] ~docv:"N" ~doc:"Demo batch size (with $(b,--make-demo)).")
  in
  let demo_seed =
    Arg.(value & opt int 7
         & info [ "demo-seed" ] ~docv:"N" ~doc:"Demo batch RNG seed (with $(b,--make-demo)).")
  in
  let zipf =
    Arg.(value & flag
         & info [ "zipf" ]
             ~doc:"With $(b,--make-demo): draw jobs Zipf-distributed over the pool \
                   (hot keys dominate) from 64 clients instead of uniformly from 3.")
  in
  let alpha =
    Arg.(value & opt float 1.1
         & info [ "alpha" ] ~docv:"A"
             ~doc:"With $(b,--zipf): the Zipf skew exponent (higher = hotter head).")
  in
  let compare_cold =
    Arg.(value & flag
         & info [ "compare-cold" ]
             ~doc:"Run the batch through a cacheless engine and a caching engine, \
                   verify the responses are byte-identical, and report the speedup.")
  in
  let compare_single =
    Arg.(value & flag
         & info [ "compare-single" ]
             ~doc:"Run the batch through one engine and through a pool of \
                   $(b,--domains) shards, verify the response signatures are \
                   identical slot-by-slot, and report the speedup.")
  in
  let min_coalesced =
    Arg.(value & opt int 0
         & info [ "min-coalesced" ] ~docv:"N"
             ~doc:"With $(b,--compare-single): fail unless the sharded run coalesced \
                   at least N requests (0 disables the gate).")
  in
  let min_speedup =
    Arg.(value & opt float 0.0
         & info [ "min-speedup" ] ~docv:"X"
             ~doc:"With $(b,--compare-cold): fail unless warm is at least X times \
                   faster than cold (0 disables the gate).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the responses NDJSON to FILE.")
  in
  let retry_shed =
    Arg.(value & flag
         & info [ "retry-shed" ]
             ~doc:"Resubmit shed responses through the bounded-backoff retry client \
                   (capped exponential backoff honoring the engine's retry-after-ms \
                   hint) until each completes or the policy gives up; report the \
                   cycle counts.")
  in
  (* Pair each response with its request line (responses are in input
     order, one per non-blank line) and drive shed rows through Retry. *)
  let retry_shed_pass ~run_line lines (b : Serve.batch) =
    let module R = Armb_service.Retry in
    let nonblank = Array.of_list (List.filter (fun l -> String.trim l <> "") lines) in
    let retried = ref 0 and gave_up = ref 0 in
    let responses =
      List.mapi
        (fun i (r : Engine.response) ->
          if R.is_shed r && i < Array.length nonblank then
            match R.resubmit ~attempt:(fun () -> run_line nonblank.(i)) r with
            | R.Completed { response; _ } ->
              incr retried;
              response
            | R.Gave_up { last; _ } ->
              incr gave_up;
              last
          else r)
        b.Serve.responses
    in
    Printf.printf "retry-shed: %d retried to completion, %d gave up\n" !retried !gave_up;
    { b with Serve.responses }
  in
  let run file make_demo requests demo_seed zipf alpha compare_cold compare_single
      min_speedup min_coalesced domains no_cache queue_bound cache_cap out
      retry_shed metrics_out =
    if make_demo then begin
      let lines =
        if zipf then Serve.zipf_requests ~alpha ~requests ~seed:demo_seed ()
        else Serve.demo_requests ~requests ~seed:demo_seed ()
      in
      write_out file (String.concat "\n" lines ^ "\n")
    end
    else begin
      let lines = read_lines file in
      let responses_text (b : Serve.batch) =
        String.concat "" (List.map (fun r -> Codec.response_to_line r ^ "\n") b.responses)
      in
      if compare_cold then begin
        let c = Serve.compare_cold ~cache_cap ~lines () in
        Printf.printf "== cold (no cache) ==\n%s\n"
          (Serve.summary c.Serve.cold c.Serve.cold_metrics);
        Printf.printf "== warm (memoized) ==\n%s\n"
          (Serve.summary c.Serve.warm c.Serve.warm_metrics);
        Printf.printf "identical: %b\nspeedup: %.2fx\n" c.Serve.identical c.Serve.speedup;
        (match out with
        | None -> ()
        | Some path -> write_out path (responses_text c.Serve.warm));
        (* warm-engine metrics are the interesting artifact here *)
        (match metrics_out with
        | None -> ()
        | Some path ->
          write_out path (Json.to_string (Metrics.to_json c.Serve.warm_metrics) ^ "\n"));
        if not c.Serve.identical then begin
          Printf.eprintf "armb batch: warm responses differ from cold responses\n";
          exit 1
        end;
        if min_speedup > 0.0 && c.Serve.speedup < min_speedup then begin
          Printf.eprintf "armb batch: speedup %.2fx below required %.2fx\n"
            c.Serve.speedup min_speedup;
          exit 1
        end
      end
      else if compare_single then begin
        let domains = max 2 domains in
        let c = Shard.compare_single ~cache_cap ~domains ~lines () in
        Printf.printf "== single (1 domain) ==\n%s\n"
          (Serve.summary c.Shard.single c.Shard.single_metrics);
        Printf.printf "== sharded (%d domains) ==\n%s\n" domains
          (Serve.summary c.Shard.sharded c.Shard.sharded_metrics);
        Printf.printf "identical: %b\ncoalesced: %d\nspeedup: %.2fx\n"
          c.Shard.identical c.Shard.coalesced c.Shard.speedup;
        (match out with
        | None -> ()
        | Some path -> write_out path (responses_text c.Shard.sharded));
        (match metrics_out with
        | None -> ()
        | Some path ->
          write_out path
            (Json.to_string (Metrics.to_json c.Shard.sharded_metrics) ^ "\n"));
        if not c.Shard.identical then begin
          Printf.eprintf "armb batch: sharded responses differ from single-domain\n";
          exit 1
        end;
        if min_coalesced > 0 && c.Shard.coalesced < min_coalesced then begin
          Printf.eprintf "armb batch: coalesced %d below required %d\n"
            c.Shard.coalesced min_coalesced;
          exit 1
        end
      end
      else if domains > 1 then begin
        let pool = Shard.create ~domains ~cache_cap ~queue_bound ~no_cache () in
        let b = Shard.run_batch pool ~lines in
        let b =
          if retry_shed then
            retry_shed_pass lines b ~run_line:(fun line ->
                match (Shard.run_batch pool ~lines:[ line ]).Serve.responses with
                | r :: _ -> r
                | [] -> { Engine.id = "?"; client = "?"; reply = Engine.Error "no response" })
          else b
        in
        ignore (Shard.shutdown pool);
        print_string (Serve.summary b (Shard.metrics pool));
        (match out with
        | None -> ()
        | Some path -> write_out path (responses_text b));
        match metrics_out with
        | None -> ()
        | Some path ->
          write_out path (Json.to_string (Metrics.to_json (Shard.metrics pool)) ^ "\n")
      end
      else begin
        let engine = Engine.create ~cache_cap ~queue_bound ~no_cache () in
        let b = Serve.run_batch engine ~lines in
        let b =
          if retry_shed then
            retry_shed_pass lines b ~run_line:(fun line ->
                match (Serve.run_batch engine ~lines:[ line ]).Serve.responses with
                | r :: _ -> r
                | [] -> { Engine.id = "?"; client = "?"; reply = Engine.Error "no response" })
          else b
        in
        print_string (Serve.summary b (Engine.metrics engine));
        (match out with
        | None -> ()
        | Some path -> write_out path (responses_text b));
        dump_metrics engine metrics_out
      end
    end
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Client convenience over the job service: run an NDJSON request file \
             through an engine (optionally sharded with $(b,--domains)) and print a \
             summary table; verify the memo cache against a cold run \
             ($(b,--compare-cold)), verify sharding against one domain \
             ($(b,--compare-single)), or generate a demo batch ($(b,--make-demo), \
             optionally $(b,--zipf)).")
    Term.(const run $ file $ make_demo $ requests $ demo_seed $ zipf $ alpha
          $ compare_cold $ compare_single $ min_speedup $ min_coalesced $ domains_arg
          $ no_cache $ queue_bound $ cache_cap $ out $ retry_shed $ metrics_out)

(* ---------- soak ---------- *)

module Soak_gen = Armb_soak.Gen
module Soak_driver = Armb_soak.Driver
module Retry = Armb_service.Retry

let soak_cmd =
  let seed =
    Arg.(value & opt int 2026
         & info [ "seed" ] ~docv:"N"
             ~doc:"Stream seed.  The same seed (and pool parameters) reproduces the \
                   identical request stream, byte for byte.")
  in
  let requests =
    Arg.(value & opt int 500
         & info [ "requests" ] ~docv:"N"
             ~doc:"Stop after N submissions (0 = unbounded; requires $(b,--duration)).")
  in
  let duration =
    Arg.(value & opt (some float) None
         & info [ "duration" ] ~docv:"SECONDS"
             ~doc:"Also stop after SECONDS of wall clock, whichever bound hits first.")
  in
  let wave =
    Arg.(value & opt int 32
         & info [ "wave" ] ~docv:"N" ~doc:"Requests per wave (one batch round trip).")
  in
  let pool =
    Arg.(value & opt int Soak_gen.default_pool
         & info [ "pool" ] ~docv:"N"
             ~doc:"Distinct jobs in the sampling pool (interleaved across kinds, so \
                   a small pool still mixes every kind).")
  in
  let alpha =
    Arg.(value & opt float 1.1
         & info [ "alpha" ] ~docv:"A"
             ~doc:"Zipf skew over the pool: higher concentrates traffic on hot keys \
                   (memo-cache and coalescing pressure).")
  in
  let snapshot_every =
    Arg.(value & opt int 4
         & info [ "snapshot-every" ] ~docv:"N"
             ~doc:"Rewrite the rolling metrics artifact every N waves (0 = only the \
                   final snapshot).")
  in
  let bundle_dir =
    Arg.(value & opt (some string) None
         & info [ "bundle-dir" ] ~docv:"DIR"
             ~doc:"Persist each invariant violation as a self-contained repro bundle \
                   (schema armb-soak-violation-v1: seed, verbatim request line, \
                   response) under DIR.")
  in
  let retry_max =
    Arg.(value & opt int Retry.default_policy.Retry.max_retries
         & info [ "retry-max" ] ~docv:"N"
             ~doc:"Resubmission attempts for a shed response before giving up \
                   (gave-up requests are reported, not fatal).")
  in
  let emit =
    Arg.(value & opt (some string) None
         & info [ "emit" ] ~docv:"FILE"
             ~doc:"Do not run anything: write the deterministic NDJSON request \
                   stream for this seed to FILE and exit.  Two runs with the same \
                   seed produce byte-identical files (the reproducibility check).")
  in
  let run seed requests duration wave pool alpha snapshot_every metrics_out bundle_dir
      retry_max emit queue_bound cache_cap domains =
    if domains < 1 then begin
      Printf.eprintf "armb soak: --domains must be >= 1\n";
      exit 2
    end;
    if requests <= 0 && duration = None && emit = None then begin
      Printf.eprintf "armb soak: give --requests N (> 0) and/or --duration S\n";
      exit 2
    end;
    match emit with
    | Some path ->
      let jobs = Soak_gen.stream ~pool ~alpha ~requests:(max requests 1) ~seed () in
      write_out path
        (String.concat "" (List.map (fun j -> j.Soak_gen.line ^ "\n") jobs))
    | None ->
      let cfg =
        {
          (Soak_driver.default_config ~seed) with
          Soak_driver.requests;
          duration_s = duration;
          wave;
          pool;
          alpha;
          queue_bound;
          cache_cap;
          domains;
          snapshot_every;
          metrics_out;
          bundle_dir;
          retry = { Retry.default_policy with Retry.max_retries = retry_max };
        }
      in
      let r = Soak_driver.run cfg in
      Format.printf "%a@." Soak_driver.pp_report r;
      (match metrics_out with
      | Some p -> Printf.eprintf "metrics artifact: %s (%d snapshots)\n" p r.Soak_driver.snapshots
      | None -> ());
      if not r.Soak_driver.ok then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Continuous soak farm: a seeded, Zipf-skewed stream of litmus / check / \
             perturb / fix / opt jobs played against the in-process job service as \
             production traffic, every response invariant-checked (repair soundness, \
             optimizer safety, sanitizer cleanliness, perturbation legality), shed \
             responses retried with bounded backoff, violations persisted as repro \
             bundles, and a rolling armb-soak-metrics-v1 artifact written atomically.")
    Term.(const run $ seed $ requests $ duration $ wave $ pool $ alpha $ snapshot_every
          $ metrics_out $ bundle_dir $ retry_max $ emit $ queue_bound $ cache_cap
          $ domains_arg)

let () =
  let doc = "ARM barrier characterization and optimization toolkit (PPoPP'20 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "armb" ~version:"1.0.0" ~doc)
          [
            platforms_cmd;
            model_cmd;
            tipping_cmd;
            observations_cmd;
            advise_cmd;
            litmus_cmd;
            check_cmd;
            fix_cmd;
            opt_cmd;
            ring_cmd;
            report_cmd;
            fuzz_cmd;
            perturb_cmd;
            perf_cmd;
            barrier_cmd;
            trace_cmd;
            serve_cmd;
            batch_cmd;
            soak_cmd;
          ]))
