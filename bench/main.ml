(* Benchmark harness entry point.

   With no arguments, regenerates every table and figure of the paper's
   evaluation on the simulator and then runs the native Bechamel
   micro-benchmarks.  With arguments, runs only the named experiments:

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig3 fig6b # a selection
     dune exec bench/main.exe list       # show available ids *)

let perf () =
  let r = Armb_perf.Perf.run ~progress:(fun n -> Printf.printf "perf: %s...\n%!" n) () in
  Format.printf "%a@." Armb_perf.Perf.pp r;
  Armb_perf.Perf.write_json ~path:"BENCH_perf.json" r;
  print_endline "wrote BENCH_perf.json"

let registry = Figures.all @ [ ("perf", perf); ("native", Natives.run) ]

(* Every experiment reports its own wall time, so a slow regeneration
   can be blamed on a specific figure rather than the whole run. *)
let timed id f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "[%s: %.1f s]\n%!" id (Unix.gettimeofday () -. t0)

let list_ids () =
  print_endline "available experiments:";
  List.iter (fun (id, _) -> Printf.printf "  %s\n" id) registry

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] ->
    Printf.printf
      "Regenerating every table and figure (see EXPERIMENTS.md for analysis)...\n%!";
    List.iter (fun (id, f) -> timed id f) registry
  | _ :: [ "list" ] -> list_ids ()
  | _ :: ids ->
    (* Validate the whole selection before running anything: a typo at
       the end of the list must not leave earlier experiments already
       run with partial output emitted. *)
    let unknown = List.filter (fun id -> not (List.mem_assoc id registry)) ids in
    if unknown <> [] then begin
      List.iter (fun id -> Printf.eprintf "unknown experiment %S\n" id) unknown;
      list_ids ();
      exit 1
    end;
    List.iter (fun id -> timed id (List.assoc id registry)) ids
