(* Regeneration of every table and figure in the paper's evaluation,
   driven by the simulator.  Each entry prints one or more
   Armb_sim.Series tables; EXPERIMENTS.md records how the shapes
   compare against the published numbers. *)

module Barrier = Armb_cpu.Barrier
module AM = Armb_core.Abstracted_model
module Ch = Armb_core.Characterize
module Ordering = Armb_core.Ordering
module P = Armb_platform.Platform
module S = Armb_sync
module W = Armb_workloads
module Series = Armb_sim.Series

let kunpeng = P.kunpeng916

(* Shared run parameters: the same record the CLI builds from its
   flags, so bench and `armb` agree on placement, seed and trials. *)
let rc = Armb_platform.Run_config.make kunpeng

let cross_pair = rc.Armb_platform.Run_config.cores

let section title =
  Printf.printf "\n================ %s ================\n%!" title

(* ---------- Table 1 ---------- *)

let table1 () =
  section "Table 1: TSO vs WMM on message passing";
  let open Armb_litmus in
  List.iter
    (fun (t : Lang.test) ->
      let wmm = Enumerate.allows Enumerate.Wmm t in
      let tso = Enumerate.allows Enumerate.Tso t in
      let sim = Sim_runner.run ~trials:rc.Armb_platform.Run_config.trials t in
      Printf.printf "%-18s TSO:%-9s WMM:%-9s simulator witnessed: %b\n" t.Lang.name
        (if tso then "Allowed" else "Forbidden")
        (if wmm then "Allowed" else "Forbidden")
        sim.Sim_runner.interesting_witnessed)
    [ Catalogue.mp; Catalogue.mp_dmb; Catalogue.mp_acq_rel ];
  print_newline ()

(* ---------- Table 2 ---------- *)

let table2 () =
  section "Table 2: target platforms (simulator configurations)";
  List.iter (fun cfg -> Format.printf "%a@.@." Armb_cpu.Config.pp cfg) P.all

(* ---------- Figure 2 ---------- *)

let fig2 () =
  section "Figure 2: intrinsic overhead of barriers (no memory ops)";
  Series.print (Ch.fig2 kunpeng ~nop_counts:[ 100; 300; 500; 700 ] ~iters:1500);
  Series.print (Ch.fig2 P.kirin960 ~nop_counts:[ 10; 30; 50 ] ~iters:1500);
  Series.print (Ch.fig2 P.kirin970 ~nop_counts:[ 10; 30; 50 ] ~iters:1500);
  Series.print (Ch.fig2 P.raspberrypi4 ~nop_counts:[ 10; 30; 50 ] ~iters:1500)

(* ---------- Figure 3 ---------- *)

let fig3 () =
  section "Figure 3: store-store abstracted model";
  Series.print
    (Ch.fig3 kunpeng ~cores:(0, 4) ~label:"(a) kunpeng916, same NUMA node"
       ~nop_counts:[ 100; 300; 500; 700 ] ~iters:1500);
  Series.print
    (Ch.fig3 kunpeng ~cores:cross_pair ~label:"(b) kunpeng916, cross NUMA nodes"
       ~nop_counts:[ 100; 300; 500; 700 ] ~iters:1500);
  Series.print
    (Ch.fig3 P.kirin960 ~cores:(0, 1) ~label:"(c) kirin960 big cluster"
       ~nop_counts:[ 10; 30; 60 ] ~iters:1500);
  Series.print
    (Ch.fig3 P.kirin970 ~cores:(0, 1) ~label:"(d) kirin970 big cluster"
       ~nop_counts:[ 10; 30; 60 ] ~iters:1500);
  Series.print
    (Ch.fig3 P.raspberrypi4 ~cores:(0, 1) ~label:"(e) raspberry pi 4"
       ~nop_counts:[ 10; 30; 60 ] ~iters:1500)

(* ---------- Figure 4 ---------- *)

let fig4 () =
  section "Figure 4: tipping point where NOPs hide the barrier";
  List.iter
    (fun (label, cores) ->
      match Ch.tipping_point kunpeng ~cores () with
      | None -> Printf.printf "%s: no tipping point in sweep\n" label
      | Some nops ->
        let spec loc =
          {
            (AM.default_spec kunpeng) with
            cores;
            approach = Ordering.Bar (Barrier.Dmb Full);
            location = loc;
            nops;
            iters = 1500;
          }
        in
        let r1 = AM.run (spec AM.Loc1) /. 1e6 and r2 = AM.run (spec AM.Loc2) /. 1e6 in
        Printf.printf
          "%s: tipping at %d nops; DMB full-1 = %.2f, DMB full-2 = %.2f M loops/s (ratio %.2f, paper predicts 1/2)\n"
          label nops r1 r2 (r1 /. r2))
    [ ("same node ", (0, 4)); ("cross node", cross_pair) ];
  print_newline ()

(* ---------- Figure 5 ---------- *)

let fig5 () =
  section "Figure 5: load-store abstracted model, kunpeng916 cross-node";
  Series.print (Ch.fig5 kunpeng ~cores:cross_pair ~nop_counts:[ 300; 500 ] ~iters:1500)

(* ---------- Table 3 ---------- *)

let table3 () =
  section "Table 3: order-preserving suggestions";
  let open Armb_core.Advisor in
  List.iter
    (fun f ->
      List.iter
        (fun t ->
          let sugg = suggest ~from_:f ~to_:t in
          let names =
            String.concat " > "
              (List.map (fun s -> Ordering.to_string s.approach) sugg)
          in
          Printf.printf "%-6s -> %-7s : %s\n" (from_to_string f) (to_to_string t) names)
        all_to)
    all_from;
  print_newline ()

(* ---------- Figure 6(a) ---------- *)

let placements = P.comm_pairs

let fig6a () =
  section "Figure 6(a): producer-consumer barrier combinations (normalized)";
  let cols = List.map (fun (p : P.placement) -> p.label) placements in
  let rows =
    List.map
      (fun name ->
        ( name,
          List.map
            (fun (p : P.placement) ->
              let cores = match p.cores with [ a; b ] -> (a, b) | _ -> assert false in
              let spec =
                { (S.Spsc_ring.default_spec p.cfg ~cores) with barriers = S.Spsc_ring.combo name }
              in
              (S.Spsc_ring.run spec).S.Spsc_ring.throughput /. 1e6)
            placements ))
      S.Spsc_ring.combo_names
  in
  let t = Series.make ~title:"Fig 6(a): SPSC ring" ~unit_label:"10^6 msgs/s" ~cols rows in
  Series.print t;
  Series.print (Series.normalize_to t ~row:"DMB full - DMB full")

(* ---------- Figure 6(b) ---------- *)

let fig6b () =
  section "Figure 6(b): Pilot vs best / theoretical / ideal";
  let cols = List.map (fun (p : P.placement) -> p.label) placements in
  let run_combo (p : P.placement) name =
    let cores = match p.cores with [ a; b ] -> (a, b) | _ -> assert false in
    let spec = { (S.Spsc_ring.default_spec p.cfg ~cores) with barriers = S.Spsc_ring.combo name } in
    (S.Spsc_ring.run spec).S.Spsc_ring.throughput /. 1e6
  in
  let run_pilot (p : P.placement) =
    let cores = match p.cores with [ a; b ] -> (a, b) | _ -> assert false in
    (S.Pilot_ring.run (S.Pilot_ring.default_spec p.cfg ~cores)).S.Pilot_ring.throughput /. 1e6
  in
  let rows =
    [
      ("DMB ld - DMB st", List.map (fun p -> run_combo p "DMB ld - DMB st") placements);
      ("Theoretical", List.map (fun p -> run_combo p "DMB ld - No Barrier") placements);
      ("Pilot", List.map run_pilot placements);
      ("Ideal", List.map (fun p -> run_combo p "Ideal") placements);
    ]
  in
  Series.print (Series.make ~title:"Fig 6(b): Pilot" ~unit_label:"10^6 msgs/s" ~cols rows)

(* ---------- Figure 6(c) ---------- *)

let fig6c () =
  section "Figure 6(c): Pilot speedup vs batched message size";
  let words_list = [ 1; 2; 4; 8 ] in
  let cols = List.map (fun w -> string_of_int w) words_list in
  let rows =
    List.map
      (fun (p : P.placement) ->
        let cores = match p.cores with [ a; b ] -> (a, b) | _ -> assert false in
        let spec = { (S.Pilot_ring.default_spec p.cfg ~cores) with messages = 2000 } in
        ( p.label,
          List.map
            (fun words ->
              let pi = (S.Pilot_ring.run_batched ~words spec).S.Pilot_ring.throughput in
              let base = (S.Pilot_ring.run_batched_baseline ~words spec).S.Pilot_ring.throughput in
              (pi /. base) -. 1.0)
            words_list ))
      placements
  in
  Series.print
    (Series.make ~title:"Fig 6(c): Pilot speedup over best ring" ~unit_label:"fraction (x-1)"
       ~cols:(List.map (fun c -> c ^ "x8B") cols)
       rows)

(* ---------- Figure 6(d) ---------- *)

let fig6d () =
  section "Figure 6(d): dedup pipeline (normalized compress speed)";
  let cols = List.map W.Dedup.queue_name W.Dedup.all_queues in
  let rows =
    List.map
      (fun wl ->
        let thr q =
          (W.Dedup.run (W.Dedup.default_spec kunpeng ~queue:q ~workload:wl)).W.Dedup.throughput
        in
        let base = thr W.Dedup.Locked_queue in
        (W.Dedup.workload_name wl, List.map (fun q -> thr q /. base) W.Dedup.all_queues))
      W.Dedup.all_workloads
  in
  Series.print (Series.make ~title:"Fig 6(d): dedup" ~unit_label:"normalized to Q" ~cols rows)

(* ---------- Figure 7(a) ---------- *)

let fig7a () =
  section "Figure 7(a): ticket lock, unlock barrier vs CS global lines";
  let variants =
    [
      ("Normal (DMB full)", Ordering.Bar (Barrier.Dmb Full));
      ("DMB st", Ordering.Bar (Barrier.Dmb St));
      ("STLR", Ordering.Stlr_release);
      ("DSB full", Ordering.Bar (Barrier.Dsb Full));
      ("Removed", Ordering.No_barrier);
    ]
  in
  List.iter
    (fun (label, cfg, cores) ->
      let rows =
        List.map
          (fun (name, barrier) ->
            ( name,
              List.map
                (fun cs_lines ->
                  let spec =
                    {
                      (S.Ticket_lock.default_spec cfg ~cores) with
                      release_barrier = barrier;
                      cs_lines;
                      acquisitions = 150;
                    }
                  in
                  (S.Ticket_lock.run spec).S.Ticket_lock.throughput /. 1e6)
                [ 0; 1; 2 ] ))
          variants
      in
      let t =
        Series.make
          ~title:(Printf.sprintf "Fig 7(a): ticket lock, %s" label)
          ~unit_label:"10^6 cs/s" ~cols:[ "0 lines"; "1 line"; "2 lines" ] rows
      in
      Series.print t;
      Series.print (Series.normalize_to t ~row:"Normal (DMB full)"))
    [
      ("kunpeng916 (32 threads)", kunpeng, List.init 32 (fun i -> i));
      ("kirin960 (4 threads)", P.kirin960, [ 0; 1; 2; 3 ]);
      ("raspberrypi4 (4 threads)", P.raspberrypi4, [ 0; 1; 2; 3 ]);
    ]

(* ---------- Figure 7(b) ---------- *)

let fig7b () =
  section "Figure 7(b): delegation lock barrier combinations (kunpeng916)";
  let client_cores = List.init 24 (fun i -> i + 1) in
  let base = S.Ffwd.default_spec kunpeng ~server_core:0 ~client_cores in
  let base = { base with rounds = 120; interval_nops = 100 } in
  let combos =
    [
      ("DMB full-DMB st", Ordering.Bar (Barrier.Dmb Full), Ordering.Bar (Barrier.Dmb St), false);
      ("DMB ld-DMB st", Ordering.Bar (Barrier.Dmb Ld), Ordering.Bar (Barrier.Dmb St), false);
      ("LDAR-DMB st", Ordering.Ldar_acquire, Ordering.Bar (Barrier.Dmb St), false);
      ("CTRL+ISB-DMB st", Ordering.Ctrl_isb, Ordering.Bar (Barrier.Dmb St), false);
      ("ADDR-DMB st", Ordering.Addr_dep, Ordering.Bar (Barrier.Dmb St), false);
      ("LDAR-No Barrier", Ordering.Ldar_acquire, Ordering.No_barrier, false);
      ("Ideal", Ordering.No_barrier, Ordering.No_barrier, false);
    ]
  in
  let rows =
    List.map
      (fun (name, read_req, publish_resp, pilot) ->
        let spec = { base with barriers = { S.Ffwd.read_req; publish_resp }; pilot } in
        (name, [ (S.Ffwd.run ~check:false spec).S.Ffwd.throughput /. 1e6 ]))
      combos
  in
  let t = Series.make ~title:"Fig 7(b): FFWD-style server" ~unit_label:"10^6 cs/s" ~cols:[ "throughput" ] rows in
  Series.print t;
  Series.print (Series.normalize_to t ~row:"DMB full-DMB st")

(* ---------- Figure 7(c) ---------- *)

let fig7c () =
  section "Figure 7(c): lock throughput vs contention interval";
  let exps = [ 0; 1; 2; 3 ] in
  let cols = List.map (fun n -> Printf.sprintf "10^%d*128" n) exps in
  let rounds_of n = max 10 (240 / (1 + (n * n))) in
  let clients = 24 in
  let ticket n =
    let spec =
      {
        (S.Ticket_lock.default_spec kunpeng ~cores:(List.init clients (fun i -> i))) with
        acquisitions = rounds_of n;
        interval_nops = 128 * int_of_float (10.0 ** float_of_int n);
        cs_lines = 1;
      }
    in
    (S.Ticket_lock.run spec).S.Ticket_lock.throughput /. 1e6
  in
  let dsynch ~pilot n =
    let spec =
      {
        (S.Dsmsynch.default_spec kunpeng ~cores:(List.init clients (fun i -> i))) with
        rounds = rounds_of n;
        interval_nops = 128 * int_of_float (10.0 ** float_of_int n);
        pilot;
      }
    in
    (S.Dsmsynch.run spec).S.Dsmsynch.throughput /. 1e6
  in
  let ffwd ~pilot n =
    let spec =
      {
        (S.Ffwd.default_spec kunpeng ~server_core:0
           ~client_cores:(List.init clients (fun i -> i + 1)))
        with
        rounds = rounds_of n;
        interval_nops = 128 * int_of_float (10.0 ** float_of_int n);
        pilot;
      }
    in
    (S.Ffwd.run spec).S.Ffwd.throughput /. 1e6
  in
  let rows =
    [
      ("Ticket", List.map ticket exps);
      ("DSynch", List.map (dsynch ~pilot:false) exps);
      ("DSynch-P", List.map (dsynch ~pilot:true) exps);
      ("FFWD", List.map (ffwd ~pilot:false) exps);
      ("FFWD-P", List.map (ffwd ~pilot:true) exps);
    ]
  in
  Series.print
    (Series.make ~title:"Fig 7(c): contention sweep (kunpeng916, 24 threads)"
       ~unit_label:"10^6 cs/s" ~cols rows)

(* ---------- Figure 8(a,b,c) ---------- *)

let ds_spec lock = { (S.Ds_bench.default_spec kunpeng ~lock) with workers = 16; ops_per_worker = 100 }

let fig8a () =
  section "Figure 8(a): queue and stack under a global lock";
  let rows =
    List.map
      (fun lk ->
        let q = (S.Ds_bench.run_queue (ds_spec lk)).S.Ds_bench.throughput /. 1e6 in
        let s = (S.Ds_bench.run_stack (ds_spec lk)).S.Ds_bench.throughput /. 1e6 in
        (S.Ds_bench.lock_name lk, [ q; s ]))
      S.Ds_bench.all_locks
  in
  Series.print
    (Series.make ~title:"Fig 8(a): queue & stack" ~unit_label:"10^6 ops/s"
       ~cols:[ "Queue"; "Stack" ] rows)

let fig8b () =
  section "Figure 8(b): sorted linked list vs preloaded size";
  let preloads = [ 0; 50; 150; 300; 500 ] in
  let rows =
    List.map
      (fun lk ->
        ( S.Ds_bench.lock_name lk,
          List.map
            (fun preload ->
              let spec = { (ds_spec lk) with ops_per_worker = 48 } in
              (S.Ds_bench.run_sorted_list ~preload spec).S.Ds_bench.throughput /. 1e6)
            preloads ))
      S.Ds_bench.all_locks
  in
  Series.print
    (Series.make ~title:"Fig 8(b): sorted list" ~unit_label:"10^6 ops/s"
       ~cols:(List.map string_of_int preloads) rows)

let fig8c () =
  section "Figure 8(c): hash table vs bucket count (512 preloaded)";
  let buckets = [ 2; 8; 32; 128; 512 ] in
  let rows =
    List.map
      (fun lk ->
        ( S.Ds_bench.lock_name lk,
          List.map
            (fun b ->
              let spec = { (ds_spec lk) with workers = 24; ops_per_worker = 48 } in
              (S.Ds_bench.run_hash_table ~buckets:b ~preload:512 spec).S.Ds_bench.throughput
              /. 1e6)
            buckets ))
      S.Ds_bench.all_locks
  in
  Series.print
    (Series.make ~title:"Fig 8(c): hash table" ~unit_label:"10^6 ops/s"
       ~cols:(List.map (fun b -> "2^" ^ string_of_int (int_of_float (Float.round (Float.log2 (float_of_int b))))) buckets)
       rows)

(* ---------- Figure 8(d) ---------- *)

let fig8d () =
  section "Figure 8(d): BOTS floorplan execution time";
  let rows =
    List.map
      (fun inp ->
        let d = W.Floorplan.run (W.Floorplan.default_spec kunpeng ~input:inp) in
        let dp = W.Floorplan.run { (W.Floorplan.default_spec kunpeng ~input:inp) with pilot = true } in
        ( W.Floorplan.input_name inp,
          [
            float_of_int d.W.Floorplan.cycles;
            float_of_int dp.W.Floorplan.cycles;
            float_of_int dp.W.Floorplan.cycles /. float_of_int d.W.Floorplan.cycles;
          ] ))
      W.Floorplan.all_inputs
  in
  Series.print
    (Series.make ~title:"Fig 8(d): floorplan" ~unit_label:"cycles (lower is better)"
       ~cols:[ "DSynch"; "DSynch-P"; "normalized" ] rows)

(* ---------- Ablations ---------- *)

let ablations () =
  section "Ablation: store-buffer size (Observation 2's mechanism)";
  let sbs = [ 2; 8; 24; 64 ] in
  let rows =
    [
      ( "DMB st-1 cross-node",
        List.map
          (fun sb_size ->
            let cfg = { kunpeng with Armb_cpu.Config.sb_size } in
            AM.run
              {
                (AM.default_spec cfg) with
                cores = cross_pair;
                approach = Ordering.Bar (Barrier.Dmb St);
                nops = 300;
                iters = 1000;
              }
            /. 1e6)
          sbs );
    ]
  in
  Series.print
    (Series.make ~title:"store-buffer sweep" ~unit_label:"10^6 loops/s"
       ~cols:(List.map string_of_int sbs) rows);

  section "Ablation: in-flight window size (Figure 4's mechanism)";
  let robs = [ 8; 32; 128; 512 ] in
  let rows =
    [
      ( "DMB full-1 cross-node",
        List.map
          (fun rob_size ->
            let cfg = { kunpeng with Armb_cpu.Config.rob_size } in
            AM.run
              {
                (AM.default_spec cfg) with
                cores = cross_pair;
                approach = Ordering.Bar (Barrier.Dmb Full);
                nops = 700;
                iters = 1000;
              }
            /. 1e6)
          robs );
    ]
  in
  Series.print
    (Series.make ~title:"window sweep" ~unit_label:"10^6 loops/s"
       ~cols:(List.map string_of_int robs) rows);

  section "Ablation: domain-boundary round trip (Observation 4's axis)";
  let rts = [ 40; 160; 320; 640 ] in
  let rows =
    [
      ( "DSB full-1",
        List.map
          (fun domain_rt ->
            let cfg = { kunpeng with Armb_cpu.Config.lat = { kunpeng.Armb_cpu.Config.lat with domain_rt } } in
            AM.run
              {
                (AM.default_spec cfg) with
                cores = cross_pair;
                approach = Ordering.Bar (Barrier.Dsb Full);
                nops = 300;
                iters = 1000;
              }
            /. 1e6)
          rts );
    ]
  in
  Series.print
    (Series.make ~title:"boundary sweep" ~unit_label:"10^6 loops/s"
       ~cols:(List.map string_of_int rts) rows);

  section "Ablation: STLR interconnect surcharge (Observation 3's axis)";
  let extras = [ 0; 20; 70; 150 ] in
  let rows =
    [
      ( "STLR cross-node",
        List.map
          (fun stlr_extra ->
            let cfg = { kunpeng with Armb_cpu.Config.stlr_extra } in
            AM.run
              {
                (AM.default_spec cfg) with
                cores = cross_pair;
                approach = Ordering.Stlr_release;
                nops = 300;
                iters = 1000;
              }
            /. 1e6)
          extras );
      ( "DMB full-1 (reference)",
        List.map
          (fun _ ->
            AM.run
              {
                (AM.default_spec kunpeng) with
                cores = cross_pair;
                approach = Ordering.Bar (Barrier.Dmb Full);
                nops = 300;
                iters = 1000;
              }
            /. 1e6)
          extras );
    ]
  in
  Series.print
    (Series.make
       ~title:"STLR surcharge sweep: where STLR crosses below the stronger DMB full"
       ~unit_label:"10^6 loops/s" ~cols:(List.map string_of_int extras) rows);

  section "Ablation: Pilot fallback rate vs shuffle-pool size";
  let pools = [ 1; 2; 8; 64 ] in
  let rows =
    [
      ( "fallback fraction",
        List.map
          (fun size ->
            (* repeated identical messages through one Pilot channel *)
            let pool = Armb_core.Pilot.make_pool ~size ~seed:3 () in
            let s = Armb_core.Pilot.sender pool in
            let n = 10_000 and fb = ref 0 in
            for _ = 1 to n do
              match Armb_core.Pilot.encode s 42L with
              | Armb_core.Pilot.Write_data _ -> ()
              | Armb_core.Pilot.Toggle_flag -> incr fb
            done;
            float_of_int !fb /. float_of_int n)
          pools );
    ]
  in
  Series.print
    (Series.make ~title:"pilot collisions (identical messages)" ~unit_label:"fraction"
       ~cols:(List.map string_of_int pools) rows)

(* ---------- Extension: in-place lock family and NUMA cohorting ---------- *)

let locks () =
  section "Extension: in-place locks and NUMA cohorting (paper §5.3's suggestion)";
  let placements =
    [
      ("same node", List.init 16 (fun i -> i));
      ("cross node", List.init 16 (fun i -> if i < 8 then i else 20 + i));
    ]
  in
  List.iter
    (fun (label, cores) ->
      let rows =
        List.map
          (fun lk ->
            let r = S.Lock_compare.run (S.Lock_compare.default_spec kunpeng ~lock:lk ~cores) in
            (S.Lock_compare.lock_name lk, [ r.throughput /. 1e6; r.cross_node_per_cs ]))
          S.Lock_compare.all_locks
      in
      Series.print
        (Series.make
           ~title:(Printf.sprintf "in-place locks, kunpeng916, 16 threads, %s" label)
           ~unit_label:"10^6 cs/s | cross-node transfers per CS"
           ~cols:[ "throughput"; "xnode/cs" ] rows))
    placements

(* ---------- registry ---------- *)

let all : (string * (unit -> unit)) list =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("table3", table3);
    ("fig6a", fig6a);
    ("fig6b", fig6b);
    ("fig6c", fig6c);
    ("fig6d", fig6d);
    ("fig7a", fig7a);
    ("fig7b", fig7b);
    ("fig7c", fig7c);
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("fig8c", fig8c);
    ("fig8d", fig8d);
    ("locks", locks);
    ("ablations", ablations);
  ]
