(* Tests for the seqlock substrate — simulated and native.  The
   simulated variant demonstrates the weak-memory hazard: without
   barriers the protocol is racy — the happens-before sanitizer flags
   its unfenced store/load pairs — while with the four orderings in
   place it is clean and readers never observe torn snapshots. *)

module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module P = Armb_platform.Platform
module S = Armb_sync

let check = Alcotest.check

let run_sim ?(skew = false) ?observer ~protected ~writes ~readers () =
  let m = Machine.create ?observer P.kunpeng916 in
  let sl = S.Seqlock.create m ~words:4 in
  (* [skew] warms half the payload lines into the first reader's cache
     and leaves the rest with the writer, so the writer's stores (and
     the reader's loads) have asymmetric latencies — the regime where
     the missing store-store/load-load orderings actually bite. *)
  if skew then begin
    let first_reader = List.hd readers in
    List.iter
      (fun w -> Armb_mem.Memsys.place (Machine.mem m) ~core:first_reader ~addr:(S.Seqlock.data_addr sl w))
      [ 0; 1 ]
  end;
  let torn = ref 0 and good = ref 0 in
  Machine.spawn m ~core:0 (fun c ->
      for version = 1 to writes do
        S.Seqlock.write ~protected sl c (S.Seqlock.make_payload sl ~version);
        Core.compute c (40 + (version mod 7 * 9))
      done);
  List.iteri
    (fun i core ->
      Machine.spawn m ~core (fun c ->
          Core.pause c (17 * (i + 1));
          for k = 1 to writes / 2 do
            let snap = S.Seqlock.read ~protected sl c in
            if S.Seqlock.torn sl snap then incr torn else incr good;
            Core.compute c (25 + (k mod 5 * 11))
          done))
    readers;
  Machine.run_exn m;
  (!torn, !good, S.Seqlock.retries sl, sl)

let test_sim_protected_never_tears () =
  let torn, good, _, _ = run_sim ~skew:true ~protected:true ~writes:200 ~readers:[ 28; 29; 30 ] () in
  check Alcotest.int "no torn snapshots" 0 torn;
  check Alcotest.bool "snapshots observed" true (good > 0)

let test_sim_unprotected_racy () =
  (* The unfenced protocol is a genuine race even when a particular
     timing model happens to execute it in order: the memory system
     samples loads against globally committed state at completion time,
     and the writer's two seq stores merge in its store buffer, so the
     torn interleavings are vanishingly rare dynamically.  That is
     exactly the failure mode the happens-before sanitizer exists for —
     assert the race statically, on the observed execution, rather than
     hoping the timing dice land on it.

     One subtlety: even the fenced seqlock carries races on pairs of
     *payload* words (the dmb st / dmb ld fences order payload against
     seq, not payload words against each other).  Those are benign by
     protocol — the s1 = s2 recheck retries any snapshot a write
     overlapped — exactly like payload reads in Linux's seqlock.  So
     the discriminating property is: unfenced executions have racy
     pairs involving the seq word; fenced executions confine all
     findings to payload/payload pairs. *)
  let involves_seq sl (f : Armb_check.Sanitizer.finding) =
    let is_data a = List.exists (fun i -> S.Seqlock.data_addr sl i = a) [ 0; 1; 2; 3 ] in
    not (is_data f.first.op_addr) || not (is_data f.second.op_addr)
  in
  let san = Armb_check.Sanitizer.create () in
  let _torn, good, _, sl =
    run_sim
      ~observer:(Armb_check.Sanitizer.observer san)
      ~skew:true ~protected:false ~writes:20 ~readers:[ 28; 29; 30 ] ()
  in
  check Alcotest.bool "snapshots observed" true (good > 0);
  let fs = Armb_check.Sanitizer.findings san in
  check Alcotest.bool "unfenced seqlock flagged as racy" true (fs <> []);
  (* the writer's unfenced payload/seq store pairs are among the pairs *)
  check Alcotest.bool "writer race on the seq word reported" true
    (List.exists
       (fun (f : Armb_check.Sanitizer.finding) -> f.core = 0 && involves_seq sl f)
       fs);
  (* the fenced protocol has no racy pair involving the seq word: the
     protocol-critical publish/subscribe edges are all ordered *)
  let san = Armb_check.Sanitizer.create () in
  let _, _, _, sl =
    run_sim
      ~observer:(Armb_check.Sanitizer.observer san)
      ~skew:true ~protected:true ~writes:20 ~readers:[ 28; 29; 30 ] ()
  in
  check Alcotest.int "fenced seqlock: no race involves the seq word" 0
    (List.length (List.filter (involves_seq sl) (Armb_check.Sanitizer.findings san)))

let test_sim_retries_happen () =
  let _, _, retries, _ = run_sim ~protected:true ~writes:300 ~readers:[ 28; 29 ] () in
  check Alcotest.bool "readers retried at least once" true (retries > 0)

let test_sim_payload_checksum () =
  let m = Machine.create P.kunpeng916 in
  let sl = S.Seqlock.create m ~words:4 in
  let p = S.Seqlock.make_payload sl ~version:7 in
  check Alcotest.bool "well-formed payload not torn" false (S.Seqlock.torn sl p);
  let bad = Array.copy p in
  bad.(0) <- Int64.add bad.(0) 1L;
  check Alcotest.bool "mutated payload detected" true (S.Seqlock.torn sl bad)

let test_sim_word_bounds () =
  let m = Machine.create P.kunpeng916 in
  (match S.Seqlock.create m ~words:1 with
  | _ -> Alcotest.fail "1-word payload accepted"
  | exception Invalid_argument _ -> ());
  match S.Seqlock.create m ~words:9 with
  | _ -> Alcotest.fail "9-word payload accepted"
  | exception Invalid_argument _ -> ()

(* ---------- native ---------- *)

let test_native_single_threaded () =
  let sl = Armb_runtime.Seqlock.create ~words:3 in
  Armb_runtime.Seqlock.write sl [| 1; 2; 3 |];
  check (Alcotest.array Alcotest.int) "roundtrip" [| 1; 2; 3 |] (Armb_runtime.Seqlock.read sl);
  check Alcotest.int "write count" 1 (Armb_runtime.Seqlock.writes sl)

let test_native_concurrent_consistency () =
  let words = 4 in
  let sl = Armb_runtime.Seqlock.create ~words in
  Armb_runtime.Seqlock.write sl (Array.make words 0);
  let iters = 20_000 in
  let writer =
    Domain.spawn (fun () ->
        for v = 1 to iters do
          (* all fields equal per version: any mix is detectable *)
          Armb_runtime.Seqlock.write sl (Array.make words v)
        done)
  in
  let torn = ref 0 in
  for _ = 1 to iters / 2 do
    let s = Armb_runtime.Seqlock.read sl in
    if Array.exists (fun x -> x <> s.(0)) s then incr torn
  done;
  Domain.join writer;
  check Alcotest.int "no torn native snapshots" 0 !torn

let () =
  Alcotest.run "armb_seqlock"
    [
      ( "simulated",
        [
          Alcotest.test_case "protected never tears" `Quick test_sim_protected_never_tears;
          Alcotest.test_case "unprotected is racy (sanitizer)" `Quick
            test_sim_unprotected_racy;
          Alcotest.test_case "retries happen" `Quick test_sim_retries_happen;
          Alcotest.test_case "checksum detects mutation" `Quick test_sim_payload_checksum;
          Alcotest.test_case "word bounds" `Quick test_sim_word_bounds;
        ] );
      ( "native",
        [
          Alcotest.test_case "single-threaded roundtrip" `Quick test_native_single_threaded;
          Alcotest.test_case "concurrent consistency" `Slow test_native_concurrent_consistency;
        ] );
    ]
