(* Fault-injection subsystem tests: plan construction and clamping,
   injector determinism (same plan -> same event digest), the faults-off
   null-plan fast path, perturbed litmus legality (no outcome outside
   the WMM-allowed set, sanitizer-clean fenced tests) across several
   plan seeds, and perturbed differential fuzzing. *)

module Plan = Armb_fault.Plan
module Injector = Armb_fault.Injector
module Core = Armb_cpu.Core
module Machine = Armb_cpu.Machine
module Lang = Armb_litmus.Lang
module Cat = Armb_litmus.Catalogue
module Sim = Armb_litmus.Sim_runner
module Perturb = Armb_litmus.Perturb

let check = Alcotest.check

(* ---------- Plan ---------- *)

let test_plan_intensity () =
  check Alcotest.bool "null plan is null" true (Plan.is_null Plan.none);
  check Alcotest.bool "zero intensity is null" true (Plan.is_null (Plan.of_intensity 0.));
  check Alcotest.bool "full intensity is not null" false (Plan.is_null (Plan.of_intensity 1.));
  let p = Plan.of_intensity 2.5 in
  let q = Plan.of_intensity 1.0 in
  check (Alcotest.float 1e-9) "intensity clamps high" q.Plan.barrier_nack_prob
    p.Plan.barrier_nack_prob;
  let s = Plan.scale (Plan.of_intensity 1.0) 0.5 in
  check Alcotest.bool "scaled plan still valid" true (s.Plan.snoop_delay_prob <= 1.0);
  check Alcotest.bool "with_seed changes only the seed" true
    (Plan.with_seed p 7 = { p with Plan.seed = 7 })

let test_plan_validate () =
  Alcotest.check_raises "negative probability rejected"
    (Invalid_argument "Fault.Plan: barrier_nack_prob out of [0,1]") (fun () ->
      Plan.validate { Plan.none with Plan.barrier_nack_prob = -0.1 })

(* ---------- Injector determinism ---------- *)

let drain spec n =
  let i = Injector.create spec in
  for k = 1 to n do
    ignore (Injector.dram_jitter i);
    ignore (Injector.snoop_delay i ~rank:(1 + (k mod 3)));
    ignore (Injector.barrier_delay i);
    ignore (Injector.stall i)
  done;
  (Injector.digest i, Injector.counters i)

let test_injector_determinism () =
  let spec = Plan.of_intensity ~seed:99 0.8 in
  let d1, c1 = drain spec 500 in
  let d2, c2 = drain spec 500 in
  check Alcotest.bool "same plan, same digest" true (Int64.equal d1 d2);
  check Alcotest.bool "same plan, same counters" true (c1 = c2);
  let d3, _ = drain (Plan.with_seed spec 100) 500 in
  check Alcotest.bool "different seed, different digest" false (Int64.equal d1 d3);
  check Alcotest.bool "some fault fired at 0.8 intensity" true (c1.Injector.faults > 0);
  check Alcotest.bool "delay cycles accounted" true (c1.Injector.delay_cycles > 0)

let test_injector_null_draws_nothing () =
  (* Disabled sites must not consume RNG: a null plan's digest folds
     only zeros, and the digest is a pure function of the query count. *)
  let d1, c1 = drain Plan.none 100 in
  let d2, _ = drain (Plan.with_seed Plan.none 12345) 100 in
  check Alcotest.bool "null plan digest seed-independent" true (Int64.equal d1 d2);
  check Alcotest.int "null plan injects nothing" 0 c1.Injector.faults;
  check Alcotest.int "null plan adds no delay" 0 c1.Injector.delay_cycles

(* ---------- Machine wiring ---------- *)

let elapsed_mp ?fault () =
  let m = Machine.create ?fault Armb_platform.Platform.kunpeng916 in
  let data = Machine.alloc_line m in
  let flag = Machine.alloc_line m in
  Machine.spawn m ~core:0 (fun c ->
      Core.store c data 23L;
      Core.barrier c (Armb_cpu.Barrier.Dmb St);
      Core.store c flag 1L);
  Machine.spawn m ~core:28 (fun c ->
      ignore (Core.spin_until c flag (fun v -> Int64.equal v 1L));
      let d = Core.await c (Core.load c data) in
      assert (Int64.equal d 23L));
  Machine.run_exn m;
  (Machine.elapsed m, Machine.injector m)

let test_machine_null_plan_identity () =
  let base, inj0 = elapsed_mp () in
  let off, inj1 = elapsed_mp ~fault:Plan.none () in
  check Alcotest.bool "null plan arms no injector" true (inj0 = None && inj1 = None);
  check Alcotest.int "null plan is cycle-identical" base off

let test_machine_fault_replay () =
  let spec = Plan.of_intensity ~seed:5 1.0 in
  let e1, i1 = elapsed_mp ~fault:spec () in
  let e2, i2 = elapsed_mp ~fault:spec () in
  let d inj = Injector.digest (Option.get inj) in
  check Alcotest.bool "injector armed" true (i1 <> None);
  check Alcotest.int "same plan, same makespan" e1 e2;
  check Alcotest.bool "same plan, same event digest" true (Int64.equal (d i1) (d i2));
  let base, _ = elapsed_mp () in
  check Alcotest.bool "full-intensity plan perturbs timing" true (e1 > base)

(* ---------- Perturbed litmus sweep ---------- *)

let test_sim_runner_digest_replay () =
  let t = List.find (fun (t : Lang.test) -> t.Lang.name = "MP") Cat.all in
  let fault = Plan.of_intensity ~seed:3 0.7 in
  let r1 = Sim.run ~trials:30 ~seed:7 ~fault t in
  let r2 = Sim.run ~trials:30 ~seed:7 ~fault t in
  check Alcotest.bool "perturbed run replays bit-identically" true
    (Int64.equal r1.Sim.fault_digest r2.Sim.fault_digest
    && r1.Sim.outcomes = r2.Sim.outcomes);
  check Alcotest.bool "faults actually injected" true (r1.Sim.fault_delay > 0);
  let r0 = Sim.run ~trials:30 ~seed:7 t in
  check Alcotest.bool "faults-off digest is zero" true (Int64.equal r0.Sim.fault_digest 0L)

let test_catalogue_under_perturbation () =
  (* The acceptance sweep, at soak scale: three plan seeds, full
     catalogue, no illegal outcome, no sanitizer finding on any
     fenced-to-forbidden test. *)
  let s =
    Perturb.sweep ~trials:25 ~intensities:[ 0.5; 1.0 ] ~plan_seeds:[ 1; 2; 3 ] ()
  in
  List.iter
    (fun (r : Perturb.row) ->
      check (Alcotest.list Alcotest.string)
        (r.Perturb.test_name ^ " stays within the WMM-allowed set")
        [] r.Perturb.illegal;
      if r.Perturb.forbidden then
        check Alcotest.int
          (r.Perturb.test_name ^ " stays sanitizer-clean under perturbation")
          0 r.Perturb.findings)
    s.Perturb.results;
  check Alcotest.bool "sweep verdict" true s.Perturb.ok;
  check Alcotest.bool "perturbation measurably reshapes outcome timing" true
    (List.exists (fun (r : Perturb.row) -> r.Perturb.drift > 0.) s.Perturb.results)

let test_fuzz_under_perturbation () =
  let fault = Plan.of_intensity ~seed:11 0.9 in
  let r = Armb_litmus.Fuzz.run ~tests:8 ~trials_per_test:25 ~seed:77 ~fault () in
  check Alcotest.int "no WMM violation under perturbed fuzzing" 0 (List.length r.Armb_litmus.Fuzz.violations)

let () =
  Alcotest.run "armb_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "intensity ramp and clamping" `Quick test_plan_intensity;
          Alcotest.test_case "validation" `Quick test_plan_validate;
        ] );
      ( "injector",
        [
          Alcotest.test_case "deterministic digest" `Quick test_injector_determinism;
          Alcotest.test_case "null plan draws nothing" `Quick
            test_injector_null_draws_nothing;
        ] );
      ( "machine",
        [
          Alcotest.test_case "null plan identity" `Quick test_machine_null_plan_identity;
          Alcotest.test_case "fault replay" `Quick test_machine_fault_replay;
        ] );
      ( "perturbation",
        [
          Alcotest.test_case "sim-runner digest replay" `Quick
            test_sim_runner_digest_replay;
          Alcotest.test_case "catalogue legality under faults" `Slow
            test_catalogue_under_perturbation;
          Alcotest.test_case "differential fuzz under faults" `Slow
            test_fuzz_under_perturbation;
        ] );
    ]
